// Command benchcheck re-asserts the repository's recorded performance
// contracts. The checked-in BENCH_*.json files at the repo root are
// promises made on a reference machine; benchcheck re-measures the
// machine-independent shape of three of them and fails CI when a
// change breaks the promise by more than a generous tolerance:
//
//   - BENCH_shadow.json: shadow-wrapper overhead on the contract
//     workload (cholesky n=200) — sampled and full measurement modes
//     must stay within slack x the recorded overhead bounds.
//   - BENCH_jobs.json: ephemeral submit-to-complete throughput must
//     reach floor-frac x the recorded jobs/s.
//   - BENCH_lint.json: warm fact-cache RunRepo must beat cold by at
//     least lint-speedup x.
//
// The tolerances are deliberately loose (default 2x on overheads, an
// 8x headroom on throughput, 5x on a recorded ~760x speedup): this
// gate catches regressions that change the *mechanism* — a broken
// sampling stride, an accidental fsync on the ephemeral path, a fact
// cache that stopped hitting — not scheduler noise.
//
// Usage:
//
//	benchcheck [-C dir] [-only shadow,jobs,lint] [-slack f]
//	           [-floor-frac f] [-lint-speedup f] [-jobs-n n]
//
// Exit status is 0 when every re-asserted contract holds, 1 when any
// check fails (the diff table marks the failing rows), and 2 on usage,
// parse, or measurement errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

type config struct {
	root        string
	only        map[string]bool
	slack       float64
	floorFrac   float64
	lintSpeedup float64
	jobsN       int
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, liveMeasurers()))
}

func run(args []string, stdout, stderr io.Writer, m measurers) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("C", ".", "repo root holding the BENCH_*.json contracts")
	only := fs.String("only", "shadow,jobs,lint", "comma-separated subset of checks to run")
	slack := fs.Float64("slack", 2.0, "multiplier on the recorded shadow overhead bounds")
	floorFrac := fs.Float64("floor-frac", 0.125, "fraction of recorded jobs/s the throughput must reach")
	lintSpeedup := fs.Float64("lint-speedup", 5.0, "minimum warm/cold lint speedup")
	jobsN := fs.Int("jobs-n", 20000, "submit-to-complete cycles for the throughput measurement")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := config{
		root:        *root,
		only:        map[string]bool{},
		slack:       *slack,
		floorFrac:   *floorFrac,
		lintSpeedup: *lintSpeedup,
		jobsN:       *jobsN,
	}
	for _, name := range strings.Split(*only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		switch name {
		case "shadow", "jobs", "lint":
			cfg.only[name] = true
		default:
			fmt.Fprintf(stderr, "benchcheck: unknown check %q (want shadow, jobs, lint)\n", name)
			return 2
		}
	}
	rows, err := collectRows(cfg, m)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	allOK, err := renderTable(stdout, rows)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	if !allOK {
		fmt.Fprintln(stderr, "benchcheck: recorded performance contract violated (see FAIL rows)")
		return 1
	}
	return 0
}

// collectRows parses each selected contract file and re-measures its
// promise, returning the assembled diff-table rows.
func collectRows(cfg config, m measurers) ([]row, error) {
	var rows []row
	if cfg.only["shadow"] {
		data, err := os.ReadFile(filepath.Join(cfg.root, "BENCH_shadow.json"))
		if err != nil {
			return nil, err
		}
		c, err := parseShadowContract(data)
		if err != nil {
			return nil, err
		}
		off, sampled, full, err := m.shadow()
		if err != nil {
			return nil, fmt.Errorf("shadow measurement: %w", err)
		}
		if off <= 0 {
			return nil, fmt.Errorf("shadow measurement: non-positive baseline %v", off)
		}
		rows = append(rows, evalShadow(c, off, sampled, full, cfg.slack)...)
	}
	if cfg.only["jobs"] {
		data, err := os.ReadFile(filepath.Join(cfg.root, "BENCH_jobs.json"))
		if err != nil {
			return nil, err
		}
		c, err := parseJobsContract(data)
		if err != nil {
			return nil, err
		}
		jobsPerS, err := m.jobs(cfg.jobsN)
		if err != nil {
			return nil, fmt.Errorf("jobs measurement: %w", err)
		}
		rows = append(rows, evalJobs(c, jobsPerS, cfg.floorFrac))
	}
	if cfg.only["lint"] {
		data, err := os.ReadFile(filepath.Join(cfg.root, "BENCH_lint.json"))
		if err != nil {
			return nil, err
		}
		c, err := parseLintContract(data)
		if err != nil {
			return nil, err
		}
		coldS, warmS, err := m.lint(cfg.root)
		if err != nil {
			return nil, fmt.Errorf("lint measurement: %w", err)
		}
		if warmS <= 0 {
			return nil, fmt.Errorf("lint measurement: non-positive warm time %v", warmS)
		}
		rows = append(rows, evalLint(c, coldS, warmS, cfg.lintSpeedup))
	}
	return rows, nil
}
