package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const shadowJSON = `{
  "contract": {"sampled_max_overhead": 2, "full_max_overhead": 10, "workload": "cholesky n=200"},
  "runs": []
}`

const jobsJSON = `{
  "throughput": [
    {"name": "submit-complete ephemeral", "jobs_per_s": 120516.92},
    {"name": "submit-complete journaled", "jobs_per_s": 1604.31}
  ]
}`

const lintJSON = `{
  "benchmarks": [
    {"name": "BenchmarkRepoCold", "seconds_per_op": 5.32},
    {"name": "BenchmarkRepoWarm", "seconds_per_op": 0.007}
  ]
}`

func TestParseShadowContract(t *testing.T) {
	c, err := parseShadowContract([]byte(shadowJSON))
	if err != nil {
		t.Fatal(err)
	}
	if c.SampledMax != 2 || c.FullMax != 10 || c.Workload != "cholesky n=200" {
		t.Fatalf("got %+v", c)
	}
	if _, err := parseShadowContract([]byte(`{}`)); err == nil {
		t.Fatal("missing contract block accepted")
	}
	if _, err := parseShadowContract([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParseJobsContract(t *testing.T) {
	c, err := parseJobsContract([]byte(jobsJSON))
	if err != nil {
		t.Fatal(err)
	}
	if c.EphemeralJobsPerS != 120516.92 {
		t.Fatalf("got %+v", c)
	}
	if _, err := parseJobsContract([]byte(`{"throughput":[{"name":"other","jobs_per_s":5}]}`)); err == nil {
		t.Fatal("missing ephemeral row accepted")
	}
}

func TestParseLintContract(t *testing.T) {
	c, err := parseLintContract([]byte(lintJSON))
	if err != nil {
		t.Fatal(err)
	}
	if c.ColdS != 5.32 || c.WarmS != 0.007 {
		t.Fatalf("got %+v", c)
	}
	if _, err := parseLintContract([]byte(`{"benchmarks":[]}`)); err == nil {
		t.Fatal("missing rows accepted")
	}
}

// TestParseCheckedInContracts: the real BENCH files at the repo root
// must satisfy the parsers — otherwise the CI gate dies with exit 2
// instead of ever checking anything.
func TestParseCheckedInContracts(t *testing.T) {
	root := filepath.Join("..", "..")
	shadow, err := os.ReadFile(filepath.Join(root, "BENCH_shadow.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseShadowContract(shadow); err != nil {
		t.Errorf("checked-in BENCH_shadow.json: %v", err)
	}
	jobs, err := os.ReadFile(filepath.Join(root, "BENCH_jobs.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseJobsContract(jobs); err != nil {
		t.Errorf("checked-in BENCH_jobs.json: %v", err)
	}
	lint, err := os.ReadFile(filepath.Join(root, "BENCH_lint.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseLintContract(lint); err != nil {
		t.Errorf("checked-in BENCH_lint.json: %v", err)
	}
}

func TestEvalShadow(t *testing.T) {
	c := shadowContract{SampledMax: 2, FullMax: 10, Workload: "cholesky n=200"}
	rows := evalShadow(c, 8000, 10000, 72000, 2.0)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// 10000/8000 = 1.25x against bound 4x; 72000/8000 = 9x against 20x.
	if !rows[0].ok() || !rows[1].ok() {
		t.Fatalf("in-contract measurements failed: %+v", rows)
	}
	bad := evalShadow(c, 8000, 40000, 200000, 2.0) // 5x and 25x
	if bad[0].ok() || bad[1].ok() {
		t.Fatalf("out-of-contract measurements passed: %+v", bad)
	}
}

func TestEvalJobs(t *testing.T) {
	c := jobsContract{EphemeralJobsPerS: 120000}
	if r := evalJobs(c, 40000, 0.125); !r.ok() { // floor 15000
		t.Fatalf("40k jobs/s against 15k floor failed: %+v", r)
	}
	if r := evalJobs(c, 9000, 0.125); r.ok() {
		t.Fatalf("9k jobs/s against 15k floor passed: %+v", r)
	}
}

func TestEvalLint(t *testing.T) {
	c := lintContract{ColdS: 5.32, WarmS: 0.007}
	if r := evalLint(c, 6.0, 0.05, 5.0); !r.ok() { // 120x speedup
		t.Fatalf("120x speedup against 5x floor failed: %+v", r)
	}
	if r := evalLint(c, 6.0, 3.0, 5.0); r.ok() { // 2x speedup
		t.Fatalf("2x speedup against 5x floor passed: %+v", r)
	}
}

func TestRenderTable(t *testing.T) {
	var buf bytes.Buffer
	ok, err := renderTable(&buf, []row{
		{Check: "a", Recorded: 2, Bound: 4, Measured: 1.5, Unit: "x", Dir: '<'},
		{Check: "b", Recorded: 100, Bound: 50, Measured: 20, Unit: "/s", Dir: '>'},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("table with a failing row reported allOK")
	}
	out := buf.String()
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "FAIL") {
		t.Fatalf("table missing statuses:\n%s", out)
	}
	if !strings.Contains(out, "CHECK") || !strings.Contains(out, "MEASURED") {
		t.Fatalf("table missing header:\n%s", out)
	}
}

// stub measurers: run() end-to-end with synthetic measurements against
// temp-dir contract files, checking exit codes and the diff table.
func writeContracts(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range map[string]string{
		"BENCH_shadow.json": shadowJSON,
		"BENCH_jobs.json":   jobsJSON,
		"BENCH_lint.json":   lintJSON,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func stubMeasurers(off, sampled, full, jobsPerS, coldS, warmS float64) measurers {
	return measurers{
		shadow: func() (float64, float64, float64, error) { return off, sampled, full, nil },
		jobs:   func(n int) (float64, error) { return jobsPerS, nil },
		lint:   func(root string) (float64, float64, error) { return coldS, warmS, nil },
	}
}

func TestRunAllPass(t *testing.T) {
	dir := writeContracts(t)
	var out, errb bytes.Buffer
	m := stubMeasurers(8000, 10000, 72000, 60000, 6.0, 0.05)
	if code := run([]string{"-C", dir}, &out, &errb, m); code != 0 {
		t.Fatalf("exit %d, stderr: %s\ntable:\n%s", code, errb.String(), out.String())
	}
	if strings.Count(out.String(), "PASS") != 4 {
		t.Fatalf("want 4 PASS rows:\n%s", out.String())
	}
}

func TestRunFailingContract(t *testing.T) {
	dir := writeContracts(t)
	var out, errb bytes.Buffer
	// Full-shadow overhead 25x against a 20x bound: the broken-stride case.
	m := stubMeasurers(8000, 10000, 200000, 60000, 6.0, 0.05)
	if code := run([]string{"-C", dir}, &out, &errb, m); code != 1 {
		t.Fatalf("exit %d, want 1\ntable:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("no FAIL row:\n%s", out.String())
	}
}

func TestRunOnlySubset(t *testing.T) {
	dir := writeContracts(t)
	var out, errb bytes.Buffer
	m := measurers{ // shadow/lint stubs must not be called
		jobs: func(n int) (float64, error) { return 60000, nil },
	}
	if code := run([]string{"-C", dir, "-only", "jobs"}, &out, &errb, m); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if strings.Count(out.String(), "PASS") != 1 {
		t.Fatalf("want exactly the jobs row:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errb, stubMeasurers(1, 1, 1, 1, 1, 1)); code != 2 {
		t.Fatalf("unknown check: exit %d, want 2", code)
	}
	if code := run([]string{"-C", t.TempDir()}, &out, &errb, stubMeasurers(1, 1, 1, 1, 1, 1)); code != 2 {
		t.Fatalf("missing contract files: exit %d, want 2", code)
	}
}
