package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"positlab/internal/arith"
	"positlab/internal/jobs"
	"positlab/internal/linalg"
	"positlab/internal/lint"
	"positlab/internal/shadow"
	"positlab/internal/solvers"
)

// measurers are the live-measurement hooks; tests substitute stubs so
// the eval/table/exit-code logic is checked without running solvers.
type measurers struct {
	// shadow returns per-run wall times of the contract workload
	// unwrapped, default-sampled, and fully measured.
	shadow func() (off, sampled, full float64, err error)
	// jobs returns ephemeral submit-to-complete throughput in jobs/s.
	jobs func(n int) (float64, error)
	// lint returns cold and warm RunRepo wall times in seconds.
	lint func(root string) (coldS, warmS float64, err error)
}

func liveMeasurers() measurers {
	return measurers{shadow: measureShadow, jobs: measureJobsThroughput, lint: measureLint}
}

// timeWorkload reports the per-run wall time of fn, repeating until
// both a minimum run count and a minimum wall budget are met so one
// scheduler hiccup cannot decide the ratio.
func timeWorkload(minRuns int, fn func()) time.Duration {
	fn() // warm-up: lazy table builds, allocator steady state
	start := time.Now()
	runs := 0
	for runs < minRuns || time.Since(start) < 200*time.Millisecond {
		fn()
		runs++
	}
	return time.Since(start) / time.Duration(runs)
}

// laplacian1D is the SPD workload matrix the shadow contract is stated
// for: tridiagonal (2, -1), the 1-D Poisson operator.
func laplacian1D(n int) *linalg.Sparse {
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	s, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		panic(err) // static 200x200 operator; cannot fail
	}
	return s
}

// measureShadow times cholesky n=200 in Posit(16,2) — the workload
// named in the BENCH_shadow.json contract — unwrapped, with the
// default sampling stride, and with full measurement.
func measureShadow() (off, sampled, full float64, err error) {
	base := arith.Posit16e2
	lap := laplacian1D(200)
	mk := func(g arith.Format) func() {
		ad := lap.ToDense().ToFormat(g, false)
		return func() {
			if _, cerr := solvers.Cholesky(ad); cerr != nil {
				err = fmt.Errorf("cholesky: %w", cerr)
			}
		}
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	off = us(timeWorkload(10, mk(base)))
	sf, _ := shadow.Wrap(base, shadow.Config{SampleEvery: shadow.DefaultSampleEvery})
	sampled = us(timeWorkload(10, mk(sf)))
	ff, _ := shadow.Wrap(base, shadow.Config{SampleEvery: 1})
	full = us(timeWorkload(5, mk(ff)))
	return off, sampled, full, err
}

// noopRunner completes every job immediately: throughput over it
// measures the queue/settle machinery, not solver time — the same
// shape BENCH_jobs.json recorded.
type noopRunner struct{}

func (noopRunner) Run(ctx context.Context, job jobs.Job, sink jobs.Sink) ([]byte, error) {
	return []byte(`{"ok":true}`), nil
}

// measureJobsThroughput drives n submit-to-complete cycles through an
// ephemeral store (no journal) and reports jobs/s.
func measureJobsThroughput(n int) (float64, error) {
	s, err := jobs.Open("", jobs.Config{})
	if err != nil {
		return 0, err
	}
	p := jobs.NewPool(s, noopRunner{}, jobs.PoolConfig{Workers: 4})
	p.Start()
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < n; i++ {
		j, err := p.Submit("benchcheck", []byte(`{}`), jobs.SubmitOptions{})
		if err != nil {
			return 0, err
		}
		got, err := s.Wait(ctx, j.ID)
		if err != nil {
			return 0, err
		}
		if got.State != jobs.StateSucceeded {
			return 0, fmt.Errorf("job %s settled %s", j.ID, got.State)
		}
	}
	elapsed := time.Since(start)
	if !p.Drain(30 * time.Second) {
		return 0, errors.New("jobs pool did not drain")
	}
	if err := s.Close(); err != nil {
		return 0, err
	}
	return float64(n) / elapsed.Seconds(), nil
}

// measureLint runs lint.RunRepo against the module twice through one
// fresh fact cache: the first pass type-checks everything cold, the
// second must be served from the cache.
func measureLint(root string) (coldS, warmS float64, err error) {
	cacheDir, err := os.MkdirTemp("", "benchcheck-lint-")
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if rerr := os.RemoveAll(cacheDir); rerr != nil && err == nil {
			err = rerr
		}
	}()
	rules := lint.AllRules()
	t0 := time.Now()
	if _, err := lint.RunRepo(root, cacheDir, rules); err != nil {
		return 0, 0, fmt.Errorf("lint cold: %w", err)
	}
	coldS = time.Since(t0).Seconds()
	t1 := time.Now()
	if _, err := lint.RunRepo(root, cacheDir, rules); err != nil {
		return 0, 0, fmt.Errorf("lint warm: %w", err)
	}
	warmS = time.Since(t1).Seconds()
	return coldS, warmS, nil
}
