package main

import (
	"fmt"
	"io"
)

// row is one re-asserted contract line of the diff table. Dir says
// which side of Bound the Measured value must land on.
type row struct {
	Check    string  // human name of the asserted contract
	Recorded float64 // the value the BENCH file recorded
	Bound    float64 // the limit after applying the tolerance
	Measured float64 // what this run observed
	Unit     string  // display unit ("x", "/s")
	Dir      rune    // '<': measured <= bound passes; '>': measured >= bound passes
}

func (r row) ok() bool {
	if r.Dir == '>' {
		return r.Measured >= r.Bound
	}
	return r.Measured <= r.Bound
}

// evalShadow re-asserts the shadow overhead contract from measured
// per-run times of the contract workload. slack multiplies the
// recorded bounds: the contract machine is not the CI machine, and the
// check exists to catch a broken sampling discipline (an order of
// magnitude), not scheduler jitter (tens of percent).
func evalShadow(c shadowContract, off, sampled, full, slack float64) []row {
	return []row{
		{
			Check:    "shadow sampled overhead (" + c.Workload + ")",
			Recorded: c.SampledMax,
			Bound:    c.SampledMax * slack,
			Measured: sampled / off,
			Unit:     "x",
			Dir:      '<',
		},
		{
			Check:    "shadow full overhead (" + c.Workload + ")",
			Recorded: c.FullMax,
			Bound:    c.FullMax * slack,
			Measured: full / off,
			Unit:     "x",
			Dir:      '<',
		},
	}
}

// evalJobs re-asserts the ephemeral throughput floor. floorFrac is the
// fraction of the recorded jobs/s the CI machine must still reach —
// generous, because the recorded number came from a quiet reference
// host, but a queue-machinery regression (accidental fsync on the
// ephemeral path, a lock convoy) costs 10-100x and still trips it.
func evalJobs(c jobsContract, measured, floorFrac float64) row {
	return row{
		Check:    "jobs ephemeral throughput",
		Recorded: c.EphemeralJobsPerS,
		Bound:    c.EphemeralJobsPerS * floorFrac,
		Measured: measured,
		Unit:     "/s",
		Dir:      '>',
	}
}

// evalLint re-asserts that the lint fact cache still pays for itself:
// warm RunRepo must beat cold by at least minSpeedup. The recorded
// ratio is ~760x; requiring 5x is deliberately loose — it catches a
// cache that stopped hitting (ratio ~1), not one that got slower.
func evalLint(c lintContract, coldS, warmS, minSpeedup float64) row {
	return row{
		Check:    "lint warm-cache speedup",
		Recorded: c.ColdS / c.WarmS,
		Bound:    minSpeedup,
		Measured: coldS / warmS,
		Unit:     "x",
		Dir:      '>',
	}
}

// renderTable writes the diff table and reports whether every row
// passed.
func renderTable(w io.Writer, rows []row) (allOK bool, err error) {
	allOK = true
	if _, err = fmt.Fprintf(w, "%-46s %12s %14s %12s  %s\n",
		"CHECK", "RECORDED", "BOUND", "MEASURED", "STATUS"); err != nil {
		return allOK, err
	}
	for _, r := range rows {
		status := "PASS"
		if !r.ok() {
			status = "FAIL"
			allOK = false
		}
		if _, err = fmt.Fprintf(w, "%-46s %11.2f%s %2c= %9.2f%s %11.2f%s  %s\n",
			r.Check, r.Recorded, r.Unit, r.Dir, r.Bound, r.Unit,
			r.Measured, r.Unit, status); err != nil {
			return allOK, err
		}
	}
	return allOK, err
}
