package main

import (
	"encoding/json"
	"fmt"
)

// The checked-in BENCH_*.json files at the repo root are performance
// *contracts*, not just logs: each one records what the subsystem
// promised on the reference machine. benchcheck re-asserts the
// machine-independent shape of those promises — ratios and floors, at
// generous tolerances — so a regression that destroys the shadow
// sampling discipline, the jobs queue fast path, or the lint fact
// cache fails CI even on slower hardware.

// shadowContract is the "contract" block of BENCH_shadow.json.
type shadowContract struct {
	SampledMax float64 // max overhead_vs_off with default sampling
	FullMax    float64 // max overhead_vs_off with SampleEvery=1
	Workload   string  // the workload the bound is stated for
}

func parseShadowContract(data []byte) (shadowContract, error) {
	var doc struct {
		Contract struct {
			SampledMaxOverhead float64 `json:"sampled_max_overhead"`
			FullMaxOverhead    float64 `json:"full_max_overhead"`
			Workload           string  `json:"workload"`
		} `json:"contract"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return shadowContract{}, fmt.Errorf("BENCH_shadow.json: %w", err)
	}
	c := shadowContract{
		SampledMax: doc.Contract.SampledMaxOverhead,
		FullMax:    doc.Contract.FullMaxOverhead,
		Workload:   doc.Contract.Workload,
	}
	if c.SampledMax <= 0 || c.FullMax <= 0 || c.Workload == "" {
		return shadowContract{}, fmt.Errorf("BENCH_shadow.json: contract block missing or incomplete (%+v)", doc.Contract)
	}
	return c, nil
}

// jobsContract is the recorded ephemeral submit-to-complete
// throughput — the upper bound of the queue/settle machinery, with no
// journal in the way.
type jobsContract struct {
	EphemeralJobsPerS float64
}

// ephemeralRowName is the throughput row benchcheck keys on.
const ephemeralRowName = "submit-complete ephemeral"

func parseJobsContract(data []byte) (jobsContract, error) {
	var doc struct {
		Throughput []struct {
			Name     string  `json:"name"`
			JobsPerS float64 `json:"jobs_per_s"`
		} `json:"throughput"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return jobsContract{}, fmt.Errorf("BENCH_jobs.json: %w", err)
	}
	for _, t := range doc.Throughput {
		if t.Name == ephemeralRowName && t.JobsPerS > 0 {
			return jobsContract{EphemeralJobsPerS: t.JobsPerS}, nil
		}
	}
	return jobsContract{}, fmt.Errorf("BENCH_jobs.json: no %q throughput row", ephemeralRowName)
}

// lintContract is the recorded cold/warm RunRepo cost; the contract
// benchcheck re-asserts is their ratio (the fact cache must keep
// paying for itself), not the absolute seconds.
type lintContract struct {
	ColdS float64
	WarmS float64
}

func parseLintContract(data []byte) (lintContract, error) {
	var doc struct {
		Benchmarks []struct {
			Name         string  `json:"name"`
			SecondsPerOp float64 `json:"seconds_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return lintContract{}, fmt.Errorf("BENCH_lint.json: %w", err)
	}
	var c lintContract
	for _, b := range doc.Benchmarks {
		switch b.Name {
		case "BenchmarkRepoCold":
			c.ColdS = b.SecondsPerOp
		case "BenchmarkRepoWarm":
			c.WarmS = b.SecondsPerOp
		}
	}
	if c.ColdS <= 0 || c.WarmS <= 0 {
		return lintContract{}, fmt.Errorf("BENCH_lint.json: missing BenchmarkRepoCold/BenchmarkRepoWarm rows")
	}
	return c, nil
}
