package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positlab/internal/lint"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

func TestListRules(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range lint.RuleNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing rule %q", name)
		}
	}
}

// TestFindingsExitOne lints a fixture package that deliberately
// violates the locks and panics rules.
func TestFindingsExitOne(t *testing.T) {
	root := repoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-C", root, "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d (want 1), stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "locks:") || !strings.Contains(out.String(), "panics:") {
		t.Errorf("diagnostics missing expected rules:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	root := repoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-C", root, "-json", "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var report struct {
		Schema      string            `json:"schema"`
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if report.Schema != "positlint-diagnostics/v1" {
		t.Errorf("schema = %q", report.Schema)
	}
	if len(report.Diagnostics) == 0 {
		t.Error("no diagnostics decoded")
	}
	for _, d := range report.Diagnostics {
		if d.Rule == "" || d.File == "" || d.Line == 0 {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestRuleSelection drops the violated rules; the fixture then lints
// clean.
func TestRuleSelection(t *testing.T) {
	root := repoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-C", root, "-rules", "all,-locks,-panics", "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, out: %s stderr: %s", code, out.String(), errb.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-rules", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown rule: exit %d (want 2)", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", t.TempDir()}, &out, &errb); code != 2 {
		t.Errorf("no go.mod: exit %d (want 2)", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Errorf("-json with -sarif: exit %d (want 2)", code)
	}
}

func TestSARIFOutputFlag(t *testing.T) {
	root := repoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-C", root, "-sarif", "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d (want 1), stderr: %s", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("invalid SARIF: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "positlint" {
		t.Errorf("unexpected runs: %+v", log.Runs)
	}
	if len(log.Runs[0].Results) == 0 {
		t.Error("no SARIF results for a fixture with known findings")
	}
}

// TestBaselineFlags records the fixture's findings as a baseline, then
// re-lints against it: every finding is suppressed, so the exit is 0.
func TestBaselineFlags(t *testing.T) {
	root := repoRoot(t)
	base := filepath.Join(t.TempDir(), "baseline.json")
	var out, errb strings.Builder
	code := run([]string{"-C", root, "-write-baseline", base, "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 0 {
		t.Fatalf("-write-baseline exit %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-C", root, "-baseline", base, "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 0 {
		t.Fatalf("baselined lint exit %d, out: %s stderr: %s", code, out.String(), errb.String())
	}
}

// TestCacheFlag runs the whole-module analysis twice through the CLI
// with a cache dir; the second run must report zero analyzed packages.
func TestCacheFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo type check")
	}
	root := repoRoot(t)
	cache := t.TempDir()
	var out, errb strings.Builder
	if code := run([]string{"-C", root, "-cache", cache}, &out, &errb); code != 0 {
		t.Fatalf("cold run exit %d, out: %s stderr: %s", code, out.String(), errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", root, "-cache", cache}, &out, &errb); code != 0 {
		t.Fatalf("warm run exit %d, out: %s stderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "0 analyzed") {
		t.Errorf("warm run should analyze nothing, stderr: %s", errb.String())
	}
}
