package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positlab/internal/lint"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

func TestListRules(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range lint.RuleNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing rule %q", name)
		}
	}
}

// TestFindingsExitOne lints a fixture package that deliberately
// violates the locks and panics rules.
func TestFindingsExitOne(t *testing.T) {
	root := repoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-C", root, "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d (want 1), stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "locks:") || !strings.Contains(out.String(), "panics:") {
		t.Errorf("diagnostics missing expected rules:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	root := repoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-C", root, "-json", "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Error("no diagnostics decoded")
	}
	for _, d := range diags {
		if d.Rule == "" || d.File == "" || d.Line == 0 {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestRuleSelection drops the violated rules; the fixture then lints
// clean.
func TestRuleSelection(t *testing.T) {
	root := repoRoot(t)
	var out, errb strings.Builder
	code := run([]string{"-C", root, "-rules", "all,-locks,-panics", "internal/lint/testdata/src/lib"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, out: %s stderr: %s", code, out.String(), errb.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-rules", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown rule: exit %d (want 2)", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", t.TempDir()}, &out, &errb); code != 2 {
		t.Errorf("no go.mod: exit %d (want 2)", code)
	}
}
