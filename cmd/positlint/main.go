// Command positlint runs the repo's static-analysis suite
// (internal/lint): numerical-correctness and concurrency invariants
// that code review alone cannot guarantee at scale.
//
// Usage:
//
//	positlint [-C dir] [-json] [-rules list] [-list] [packages...]
//
// With no package arguments (or "./...") the whole module is analyzed.
// Package arguments are directories relative to the module root
// ("internal/solvers"). -rules selects a comma-separated subset
// ("precision,maporder"), with "-name" dropping a rule from the set
// ("-rules all,-maporder" or just "-rules -maporder"). -json emits
// machine-readable diagnostics. -list prints the rules and exits.
//
// Exit status is 0 when the tree is clean, 1 when any diagnostic was
// reported, and 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"positlab/internal/lint"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("positlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", "", "module root (default: walk up from the working directory to go.mod)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	ruleSpec := fs.String("rules", "all", "comma-separated rules to run; prefix with - to drop (e.g. all,-maporder)")
	list := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	rules, err := lint.SelectRules(*ruleSpec)
	if err != nil {
		fmt.Fprintf(stderr, "positlint: %v\n", err)
		return 2
	}
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-10s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	root := *chdir
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "positlint: %v\n", err)
		return 2
	}

	var pkgs []*lint.Package
	args := fs.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
	} else {
		for _, arg := range args {
			rel := filepath.ToSlash(filepath.Clean(arg))
			importPath := loader.ModulePath
			if rel != "." {
				importPath = loader.ModulePath + "/" + rel
			}
			pkg, err := loader.LoadDir(importPath, filepath.Join(root, filepath.FromSlash(rel)))
			if err != nil {
				fmt.Fprintf(stderr, "positlint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	diags := lint.Run(root, pkgs, rules)
	if *jsonOut {
		data, err := lint.JSON(diags)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "positlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
