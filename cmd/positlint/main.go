// Command positlint runs the repo's static-analysis suite
// (internal/lint): numerical-correctness, durability, and concurrency
// invariants that code review alone cannot guarantee at scale.
//
// Usage:
//
//	positlint [-C dir] [-json|-sarif] [-rules list] [-list] [-fix]
//	          [-baseline file] [-write-baseline file] [-cache dir]
//	          [packages...]
//
// With no package arguments (or "./...") the whole module is analyzed;
// that is the mode -cache accelerates, keying per-package fact/finding
// entries by content hash so warm re-runs skip unchanged packages
// entirely. Package arguments are directories relative to the module
// root ("internal/solvers") and always analyze cold.
//
// -rules selects a comma-separated subset ("precision,maporder"), with
// "-name" dropping a rule from the set ("-rules all,-maporder" or just
// "-rules -maporder"). -json emits the versioned diagnostic envelope;
// -sarif emits SARIF 2.1.0 for code-scanning upload. -fix applies the
// mechanical suggested fixes (acknowledged error discards, stale
// //lint:allow deletion) in place. -baseline subtracts a recorded
// finding snapshot; -write-baseline records one. -list prints the
// selected rules and exits.
//
// Exit status is 0 when the tree is clean (after baseline filtering
// and fixes), 1 when any diagnostic remains, and 2 on usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"positlab/internal/lint"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("positlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", "", "module root (default: walk up from the working directory to go.mod)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as the versioned JSON envelope")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	ruleSpec := fs.String("rules", "all", "comma-separated rules to run; prefix with - to drop (e.g. all,-maporder)")
	list := fs.Bool("list", false, "list available rules and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	cacheDir := fs.String("cache", "", "fact-cache directory for whole-module runs (created if missing)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "positlint: -json and -sarif are mutually exclusive")
		return 2
	}

	rules, err := lint.SelectRules(*ruleSpec)
	if err != nil {
		fmt.Fprintf(stderr, "positlint: %v\n", err)
		return 2
	}
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	root := *chdir
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
	}

	var diags []lint.Diagnostic
	args := fs.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		res, err := lint.RunRepo(root, *cacheDir, rules)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		diags = res.Diags
		if *cacheDir != "" {
			fmt.Fprintf(stderr, "positlint: %d package(s): %d cached, %d analyzed\n",
				res.Stats.Packages, res.Stats.CacheHits, res.Stats.CacheMisses)
		}
	} else {
		loader, err := lint.NewLoader(root)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		var pkgs []*lint.Package
		for _, arg := range args {
			rel := filepath.ToSlash(filepath.Clean(arg))
			importPath := loader.ModulePath
			if rel != "." {
				importPath = loader.ModulePath + "/" + rel
			}
			pkg, err := loader.LoadDir(importPath, filepath.Join(root, filepath.FromSlash(rel)))
			if err != nil {
				fmt.Fprintf(stderr, "positlint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
		diags = lint.Run(root, pkgs, rules)
	}

	if *baselinePath != "" {
		baseline, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		var suppressed int
		diags, suppressed = lint.FilterBaseline(diags, baseline)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "positlint: %d finding(s) suppressed by baseline %s\n", suppressed, *baselinePath)
		}
	}
	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "positlint: wrote %d finding(s) to baseline %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *fix {
		applied, files, err := lint.ApplyFixes(root, diags)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "positlint: applied %d fix(es) in %d file(s)\n", applied, len(files))
		// Fixed findings are resolved; report only what remains. The fix
		// edited sources out from under any -cache entries keyed on them,
		// so the next cached run re-analyzes the touched packages.
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if d.Fix == nil {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	switch {
	case *jsonOut:
		data, err := lint.JSON(diags)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", data)
	case *sarifOut:
		data, err := lint.SARIF(diags, rules)
		if err != nil {
			fmt.Fprintf(stderr, "positlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", data)
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "positlint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
