// Command experiments regenerates the paper's tables and figures on
// the synthetic Table I replica suite.
//
// Usage:
//
//	experiments [-matrices a,b,c] [-cgcap N] [-irmax N]
//	            [-svg dir] [-csv dir] [ids...]
//
// where ids are any of: table1 fig3 fig5 fig6 fig7 fig8 fig9 table2
// table3 fig10 ext-fft ext-shock ext-bicg ext-gmres all (default all).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"positlab/internal/experiments"
)

func main() {
	matrices := flag.String("matrices", "", "comma-separated matrix subset (default: all 19)")
	cgcap := flag.Int("cgcap", 10, "CG iteration cap as a multiple of N")
	irmax := flag.Int("irmax", 1000, "iterative-refinement iteration cap")
	svgDir := flag.String("svg", "", "also write each figure as SVG into this directory")
	csvDir := flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	flag.Parse()

	writeFile := func(dir, name, content string) {
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  (wrote %s)\n", path)
	}

	writeSVG := func(name, content string) { writeFile(*svgDir, name, content) }
	writeCSV := func(name, content string) { writeFile(*csvDir, name, content) }

	opt := experiments.Options{CGCapFactor: *cgcap, IRMaxIter: *irmax}
	if *matrices != "" {
		opt.Matrices = strings.Split(*matrices, ",")
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"all"}
	}
	known := []string{"table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "table2", "table3", "fig10", "ext-fft", "ext-shock", "ext-bicg", "ext-gmres"}
	want := map[string]bool{}
	for _, id := range ids {
		if id == "all" {
			for _, k := range known {
				want[k] = true
			}
			continue
		}
		ok := false
		for _, k := range known {
			if id == k {
				ok = true
				break
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s, all)\n", id, strings.Join(known, " "))
			os.Exit(2)
		}
		want[id] = true
	}

	run := func(id, title string, f func() string) {
		if !want[id] {
			return
		}
		t0 := time.Now()
		body := f()
		fmt.Printf("== %s: %s ==\n%s(%v)\n\n", id, title, body, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", "matrix suite inventory", func() string {
		rows := experiments.Table1(opt)
		writeCSV("table1.csv", experiments.Table1CSV(rows))
		return experiments.RenderTable1(rows)
	})
	run("fig3", "decimal digits of accuracy vs magnitude", func() string {
		pts := experiments.Fig3(nil, 4)
		writeSVG("fig3.svg", experiments.Fig3SVG(nil, pts))
		writeCSV("fig3.csv", experiments.Fig3CSV(nil, pts))
		return experiments.RenderFig3(nil, experiments.Fig3(nil, 1))
	})
	run("fig5", "posit32 extra fraction bits over Float32", func() string {
		hists := experiments.Fig5(opt)
		writeSVG("fig5.svg", experiments.Fig5SVG(hists))
		return experiments.RenderFig5(hists)
	})
	run("fig6", "CG iterations, unscaled", func() string {
		rows := experiments.Fig6(opt)
		writeCSV("fig6.csv", experiments.CGCSV(rows))
		writeSVG("fig6a.svg", experiments.CGSVG(rows, "Fig. 6(a): CG iterations, unscaled"))
		writeSVG("fig6b.svg", experiments.CGImprovementSVG(rows, "Fig. 6(b): % improvement over Float32, unscaled"))
		return experiments.RenderCG(rows)
	})
	run("fig7", "CG iterations, rescaled to ||A||inf ~ 2^10", func() string {
		rows := experiments.Fig7(opt)
		writeCSV("fig7.csv", experiments.CGCSV(rows))
		writeSVG("fig7a.svg", experiments.CGSVG(rows, "Fig. 7(a): CG iterations, rescaled"))
		writeSVG("fig7b.svg", experiments.CGImprovementSVG(rows, "Fig. 7(b): % improvement over Float32, rescaled"))
		return experiments.RenderCG(rows)
	})
	run("fig8", "Cholesky relative backward error, unscaled", func() string {
		rows := experiments.Fig8(opt)
		writeCSV("fig8.csv", experiments.CholCSV(rows))
		writeSVG("fig8a.svg", experiments.CholSVG(rows, "Fig. 8(a): digits advantage over Float32, unscaled"))
		writeSVG("fig8b.svg", experiments.CholNormScatterSVG(rows))
		return experiments.RenderChol(rows)
	})
	run("fig9", "Cholesky backward error, Algorithm 3 rescaling", func() string {
		rows := experiments.Fig9(opt)
		writeCSV("fig9.csv", experiments.CholCSV(rows))
		writeSVG("fig9.svg", experiments.CholSVG(rows, "Fig. 9: digits advantage over Float32, Algorithm 3 rescaling"))
		return experiments.RenderChol(rows)
	})
	run("table2", "naive mixed-precision iterative refinement", func() string {
		rows := experiments.Table2(opt)
		writeCSV("table2.csv", experiments.IRCSV(rows, *irmax))
		return experiments.RenderIR(rows, *irmax, false)
	})
	run("table3", "iterative refinement with Higham scaling", func() string {
		rows := experiments.Table3(opt)
		writeCSV("table3.csv", experiments.IRCSV(rows, *irmax))
		return experiments.RenderIR(rows, *irmax, true)
	})
	run("fig10", "refinement-step reduction and factor-error digits", func() string {
		rows := experiments.Fig10(opt)
		pctSVG, digitsSVG := experiments.Fig10SVG(rows)
		writeSVG("fig10a.svg", pctSVG)
		writeSVG("fig10b.svg", digitsSVG)
		return experiments.RenderFig10(rows)
	})
	run("ext-fft", "future work: FFT accuracy per format (§VII)", func() string {
		return experiments.RenderExtFFT(experiments.ExtFFT())
	})
	run("ext-shock", "future work: Sod shock tube per format (§VII)", func() string {
		return experiments.RenderExtShock(experiments.ExtShock())
	})
	run("ext-bicg", "future work: BiCG iterate growth vs CG (§VI)", func() string {
		s := experiments.RenderExtBiCG(experiments.ExtBiCG(opt))
		s += "\nconvection-diffusion Peclet sweep (n=400, nonsymmetric):\n"
		s += experiments.RenderExtBiCGPeclet(experiments.ExtBiCGPeclet(nil))
		return s
	})
	run("ext-gmres", "extension: GMRES-IR vs plain IR corrections (§V-D2)", func() string {
		return experiments.RenderExtGMRES(experiments.ExtGMRES(opt), *irmax)
	})
}
