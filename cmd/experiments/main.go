// Command experiments regenerates the paper's tables and figures on
// the synthetic Table I replica suite, scheduling them through the
// internal/runner subsystem: independent experiments fan out across a
// worker pool, results are cached on disk, and progress is reported
// live.
//
// Usage:
//
//	experiments [-matrices a,b,c] [-cgcap N] [-irmax N]
//	            [-jobs N] [-par N] [-timeout D] [-cache dir] [-runs file]
//	            [-instrument] [-svg dir] [-csv dir]
//	            [-shadow] [-shadow-sample N] [-pprof addr] [ids...]
//
// where ids are any of: table1 fig3 fig5 fig6 fig7 fig8 fig9 table2
// table3 fig10 ext-fft ext-shock ext-bicg ext-gmres all (default all).
//
// With -shadow, the shadow-precision diagnosis experiment (diagnose)
// joins the run — and "all" — re-running Higham-scaled IR under the
// shadow wrapper with per-op error telemetry; -shadow-sample sets its
// sampling stride (1 = measure every operation). The experiment can
// also be requested by id without the flag.
//
// With -pprof, net/http/pprof is served on the given address for the
// duration of the run (like positd's -pprof, but on its own listener
// since this command has no HTTP server otherwise).
//
// Exit status is 0 on success, 1 when any job or output write failed
// (completed experiments are still printed), and 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"positlab/internal/experiments"
	"positlab/internal/faultfs"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/runner"
)

// displayOrder is the canonical output order — the order the serial
// driver ran in — so parallel runs print byte-identical reports.
var displayOrder = []string{
	"table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
	"table2", "table3", "fig10",
	"ext-fft", "ext-shock", "ext-bicg", "ext-gmres",
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	matrices := fs.String("matrices", "", "comma-separated matrix subset (default: all 19)")
	cgcap := fs.Int("cgcap", 10, "CG iteration cap as a multiple of N")
	irmax := fs.Int("irmax", 1000, "iterative-refinement iteration cap")
	svgDir := fs.String("svg", "", "also write each figure as SVG into this directory")
	csvDir := fs.String("csv", "", "also write each experiment's rows as CSV into this directory")
	jobs := fs.Int("jobs", 0, "concurrent experiment jobs (0 = GOMAXPROCS)")
	par := fs.Int("par", 1, "in-solver workers for order-independent kernel loops (results are bit-identical for any value)")
	timeout := fs.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	cacheDir := fs.String("cache", "", "on-disk result cache directory (empty = no cache)")
	runsPath := fs.String("runs", "", "write a machine-readable runs.json report to this file")
	instrument := fs.Bool("instrument", false, "count per-job arithmetic operations into the run report")
	shadowOn := fs.Bool("shadow", false, "include the shadow-precision diagnosis experiment (diagnose) in the run and in \"all\"")
	shadowSample := fs.Int("shadow-sample", 0, "shadow diagnosis sampling stride: measure every Nth operation (1 = all, 0 = the default stride)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for the duration of the run (empty = off)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "experiments: "+format+"\n", args...)
		return 2
	}
	if *jobs < 0 {
		return usage("-jobs must be >= 0, got %d", *jobs)
	}
	if *par < 1 {
		return usage("-par must be >= 1, got %d", *par)
	}
	// Deterministic by construction: the sharded loops are
	// order-independent, so -par changes scheduling, never bits.
	linalg.SetWorkers(*par)
	if *cgcap < 1 {
		return usage("-cgcap must be >= 1, got %d", *cgcap)
	}
	if *irmax < 1 {
		return usage("-irmax must be >= 1, got %d", *irmax)
	}
	if *timeout < 0 {
		return usage("-timeout must be >= 0, got %v", *timeout)
	}
	if *shadowSample < 0 {
		return usage("-shadow-sample must be >= 0, got %d", *shadowSample)
	}
	if *pprofAddr != "" {
		// Own mux, not DefaultServeMux: only the pprof routes exist, and
		// only while this process runs.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return usage("-pprof: %v", err)
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "experiments: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			srv := &http.Server{Handler: pm, ReadHeaderTimeout: 10 * time.Second}
			_ = srv.Serve(ln) // advisory endpoint; errors just end profiling
		}()
	}

	opt := experiments.Options{CGCapFactor: *cgcap, IRMaxIter: *irmax, ShadowSample: *shadowSample}
	if *matrices != "" {
		opt.Matrices = strings.Split(*matrices, ",")
		for _, name := range opt.Matrices {
			if _, err := matgen.TargetByName(name); err != nil {
				return usage("-matrices: %v", err)
			}
		}
	}

	// The shadow diagnosis experiment is opt-in (it re-runs the IR
	// grid): -shadow appends it to the canonical order, and with it to
	// "all". Requesting the id explicitly works without the flag.
	order := displayOrder
	if *shadowOn {
		order = append(append([]string(nil), displayOrder...), "diagnose")
	}

	ids := fs.Args()
	if len(ids) == 0 {
		ids = []string{"all"}
	}
	want := map[string]bool{}
	for _, id := range ids {
		if id == "all" {
			for _, k := range order {
				want[k] = true
			}
			continue
		}
		if _, ok := runner.Default.Lookup(id); !ok {
			return usage("unknown experiment %q (known: %s, all)", id, strings.Join(order, " "))
		}
		want[id] = true
	}
	if want["diagnose"] && !*shadowOn {
		order = append(append([]string(nil), displayOrder...), "diagnose")
	}
	var selected []string
	for _, id := range order {
		if want[id] {
			selected = append(selected, id)
		}
	}

	cfg := runner.Config{
		Jobs:       *jobs,
		Timeout:    *timeout,
		Options:    opt,
		KeyData:    opt.Canonical(),
		Instrument: *instrument,
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		cfg.Cache = cache
	}
	cfg.Events = runner.Progress(stderr, scheduledCount(selected))

	// SIGTERM joins SIGINT so container/orchestrator shutdowns also
	// cancel in-flight solver loops promptly instead of killing the
	// process mid-write; the ctx threads through the runner into each
	// solver's per-iteration checkpoints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, rep, runErr := runner.Default.Run(ctx, selected, cfg)
	if runErr != nil && rep == nil {
		// Run-level failure before any job started (unknown dep,
		// cycle): nothing to print.
		fmt.Fprintf(stderr, "experiments: %v\n", runErr)
		return 1
	}

	failed := runErr != nil
	reports := map[string]runner.JobReport{}
	for _, jr := range rep.Jobs {
		reports[jr.ID] = jr
	}

	writeFile := func(dir, name, content string) {
		if err := faultfs.OS.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			failed = true
			return
		}
		path := filepath.Join(dir, name)
		// Atomic replace, like every other durable artifact: an
		// interrupted run leaves the previous CSV/SVG intact, never a
		// torn file that plots garbage.
		if err := faultfs.WriteFileAtomic(faultfs.OS, path, []byte(content)); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			failed = true
			return
		}
		fmt.Fprintf(stdout, "  (wrote %s)\n", path)
	}

	for _, id := range selected {
		jr := reports[id]
		if jr.Err != "" {
			fmt.Fprintf(stderr, "experiments: %s: %s\n", id, jr.Err)
			failed = true
			continue
		}
		res := results[id]
		if res == nil {
			fmt.Fprintf(stderr, "experiments: %s: no result\n", id)
			failed = true
			continue
		}
		for _, a := range res.Artifacts {
			switch {
			case a.Kind == runner.CSV && *csvDir != "":
				writeFile(*csvDir, a.Name, a.Content)
			case a.Kind == runner.SVG && *svgDir != "":
				writeFile(*svgDir, a.Name, a.Content)
			}
		}
		elapsed := "cached"
		if !jr.Cached {
			elapsed = fmt.Sprint(time.Duration(jr.WallMS * float64(time.Millisecond)).Round(time.Millisecond))
		}
		fmt.Fprintf(stdout, "== %s: %s ==\n%s(%s)\n\n", id, jr.Title, res.Body, elapsed)
	}

	if *runsPath != "" {
		if err := rep.WriteFile(*runsPath); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			failed = true
		}
	}
	fmt.Fprintln(stderr, rep.Summary())
	if runErr != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", runErr)
	}
	if failed {
		return 1
	}
	return 0
}

// scheduledCount sizes the progress display: the selected experiments
// plus any dependencies the scheduler will pull in.
func scheduledCount(selected []string) int {
	seen := map[string]bool{}
	var add func(id string)
	add = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		if s, ok := runner.Default.Lookup(id); ok {
			for _, d := range s.Deps {
				add(d)
			}
		}
	}
	for _, id := range selected {
		add(id)
	}
	return len(seen)
}
