// Command positlab inspects posit and IEEE small-float formats: it
// encodes values, decodes patterns, shows field decompositions and
// neighbors, and prints format summaries and precision maps.
//
// Usage:
//
//	positlab inspect <format> <value>     encode a decimal value
//	positlab pattern <format> <hexbits>   decode a raw pattern
//	positlab range <format>               format summary
//	positlab map <format> [lo hi]         digits-of-accuracy map
//	positlab enumerate <format>           all values (width <= 8 only)
//	positlab verify <format> [samples]    sampled differential self-check
//
// <format> is e.g. posit32es2, posit(16,1), float16, bfloat16.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"positlab/internal/arith"
	"positlab/internal/bigfp"
	"positlab/internal/posit"
	"positlab/internal/positio"
	"positlab/internal/report"
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
	}
	cmd, name := args[0], args[1]
	f, err := arith.ByName(name)
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "inspect":
		if len(args) != 3 {
			usage()
		}
		v, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			fatal(err)
		}
		inspect(f, v)
	case "pattern":
		if len(args) != 3 {
			usage()
		}
		c, ok := arith.PositConfig(f)
		if !ok {
			fatal(fmt.Errorf("pattern decoding is posit-only; use inspect for floats"))
		}
		u, err := strconv.ParseUint(args[2], 0, 64)
		if err != nil {
			fatal(err)
		}
		describePattern(c, posit.Bits(u))
	case "range":
		summary(f)
	case "map":
		lo, hi := -12.0, 12.0
		if len(args) == 4 {
			if lo, err = strconv.ParseFloat(args[2], 64); err != nil {
				fatal(err)
			}
			if hi, err = strconv.ParseFloat(args[3], 64); err != nil {
				fatal(err)
			}
		}
		precisionMap(f, lo, hi)
	case "enumerate":
		c, ok := arith.PositConfig(f)
		if !ok || c.N() > 8 {
			fatal(fmt.Errorf("enumerate requires a posit format of width <= 8"))
		}
		enumerate(c)
	case "verify":
		c, ok := arith.PositConfig(f)
		if !ok {
			fatal(fmt.Errorf("verify is posit-only (IEEE formats are verified in the test suite)"))
		}
		samples := 2000
		if len(args) == 3 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad sample count %q", args[2]))
			}
			samples = v
		}
		verify(c, samples)
	default:
		usage()
	}
}

// verify runs a sampled differential check of the arithmetic against
// the independent big.Float oracle — the library's correctness claim,
// reproducible by any user without running the test suite.
func verify(c posit.Config, samples int) {
	mask := uint64(1)<<uint(c.N()) - 1
	x := uint64(0x2545F4914F6CDD1D)
	next := func() posit.Bits {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return posit.Bits(x & mask)
	}
	checked, failures := 0, 0
	report := func(op string, a, b posit.Bits, got, want posit.Bits) {
		failures++
		fmt.Printf("MISMATCH %s(%#x, %#x) = %#x, oracle %#x\n",
			op, uint64(a), uint64(b), uint64(got), uint64(want))
	}
	for i := 0; i < samples; i++ {
		a, b := next(), next()
		if got, want := c.Add(a, b), bigfp.AddRef(c, a, b); got != want {
			report("add", a, b, got, want)
		}
		if got, want := c.Mul(a, b), bigfp.MulRef(c, a, b); got != want {
			report("mul", a, b, got, want)
		}
		if got, want := c.Div(a, b), bigfp.DivRef(c, a, b); got != want {
			report("div", a, b, got, want)
		}
		if got, want := c.Sqrt(a), bigfp.SqrtRef(c, a); got != want {
			report("sqrt", a, 0, got, want)
		}
		checked += 4
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d of %d operations disagreed with the oracle", failures, checked))
	}
	fmt.Printf("%v: %d operations verified against the big.Float oracle, 0 mismatches\n", c, checked)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: positlab {inspect|pattern|range|map|enumerate|verify} <format> [args]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positlab:", err)
	os.Exit(1)
}

func inspect(f arith.Format, v float64) {
	n := f.FromFloat64(v)
	got := f.ToFloat64(n)
	fmt.Printf("format:  %s\n", f.Name())
	fmt.Printf("input:   %.17g\n", v)
	fmt.Printf("rounded: %.17g\n", got)
	if v != 0 && !math.IsNaN(v) {
		fmt.Printf("relerr:  %.3e\n", math.Abs((got-v)/v))
	}
	if c, ok := arith.PositConfig(f); ok {
		describePattern(c, c.FromFloat64(v))
	}
}

func describePattern(c posit.Config, p posit.Bits) {
	fmt.Printf("pattern: %#0*x  (%s)\n", (c.N()+3)/4, uint64(p), positio.Fields(c, p))
	switch {
	case c.IsZero(p):
		fmt.Println("value:   0 (zero pattern)")
	case c.IsNaR(p):
		fmt.Println("value:   NaR (not a real)")
	default:
		sign, k, e, _, _ := c.Parts(p)
		fmt.Printf("value:   %s (exactly %.17g)\n", positio.Format(c, p), c.ToFloat64(p))
		fmt.Printf("fields:  sign=%v regime k=%d exponent=%d fracbits=%d\n",
			sign, k, e, c.FracBits(p))
		fmt.Printf("neighbors: prev=%s next=%s\n",
			positio.Format(c, c.Prev(p)), positio.Format(c, c.Next(p)))
	}
}

func summary(f arith.Format) {
	rows := [][]string{
		{"name", f.Name()},
		{"max finite", fmt.Sprintf("%.6g", f.MaxValue())},
		{"eps at 1.0", fmt.Sprintf("%.6g", f.Eps())},
		{"digits at 1.0", fmt.Sprintf("%.2f", -math.Log10(f.Eps()))},
	}
	if c, ok := arith.PositConfig(f); ok {
		rows = append(rows,
			[]string{"useed", fmt.Sprintf("%d", c.USEED())},
			[]string{"minpos", fmt.Sprintf("%.6g", c.ToFloat64(c.MinPos()))},
			[]string{"scale range", fmt.Sprintf("2^%d .. 2^%d", c.MinScale(), c.MaxScale())},
		)
	}
	fmt.Print(report.Table([]string{"property", "value"}, rows))
}

func precisionMap(f arith.Format, lo, hi float64) {
	labels := []string{}
	values := []float64{}
	for d := lo; d <= hi; d++ {
		x := math.Pow(10, d)
		n := f.FromFloat64(x)
		digits := 0.0
		if !f.Bad(n) && !f.IsZero(n) {
			v := f.ToFloat64(n)
			// Local gap probe: next representable above v.
			step := v * f.Eps()
			up := f.ToFloat64(f.Add(n, f.FromFloat64(step)))
			for up == v && step < v*1e6 {
				step *= 2
				up = f.ToFloat64(f.Add(n, f.FromFloat64(step)))
			}
			if up > v {
				digits = -math.Log10((up - v) / 2 / v)
			}
		}
		labels = append(labels, fmt.Sprintf("1e%+03.0f", d))
		values = append(values, digits)
	}
	fmt.Printf("decimal digits of accuracy, %s\n", f.Name())
	fmt.Print(report.Bars(labels, values, 40))
}

func enumerate(c posit.Config) {
	fmt.Printf("all %d patterns of %v:\n", 1<<uint(c.N()), c)
	var rows [][]string
	for pat := uint64(0); pat < 1<<uint(c.N()); pat++ {
		p := posit.Bits(pat)
		val := "NaR"
		if !c.IsNaR(p) {
			val = strconv.FormatFloat(c.ToFloat64(p), 'g', -1, 64)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%#04x", pat),
			fmt.Sprintf("%0*b", c.N(), pat),
			val,
		})
	}
	fmt.Print(report.Table([]string{"hex", "bits", "value"}, rows))
}
