// Command positd serves the experiment and solver stack over HTTP:
// batch format conversion, on-demand solver runs on suite or uploaded
// matrices, and cached experiment results, with admission control,
// per-request timeouts, structured access logs, and expvar metrics.
//
// Usage:
//
//	positd [-addr :8787] [-max-inflight N] [-cache-entries N]
//	       [-request-timeout D] [-drain-timeout D]
//	       [-cache dir] [-jobs N] [-par N] [-instrument]
//	       [-jobs-dir dir] [-job-workers N] [-checkpoint-every N]
//	       [-max-queued-jobs N]
//	       [-matrices a,b,c] [-cgcap N] [-irmax N] [-quiet]
//	       [-pprof] [-table-cache dir] [-fault-plan plan]
//
// Endpoints:
//
//	GET  /healthz                 liveness
//	POST /v1/convert              batch format conversion with error stats
//	POST /v1/solve                one CG / Cholesky / IR run
//	POST /v1/diagnose             one shadow-diagnosed solver run:
//	                              per-op error telemetry, divergence
//	                              trace, decimal-digits envelope check
//	GET  /v1/experiments/{name}   a registered experiment's rendered rows
//	POST /v1/jobs                 submit an async solve/experiment job
//	GET  /v1/jobs                 list jobs (?state= ?kind= ?limit=)
//	GET  /v1/jobs/{id}            job status/result (?wait=30s long-polls)
//	DEL  /v1/jobs/{id}            cancel a job
//	GET  /debug/metrics           per-route latency, cache, op, job counters
//	GET  /debug/vars              expvar
//	GET  /debug/pprof/...         runtime profiles (only with -pprof)
//
// With -table-cache, the exhaustive <=16-bit arithmetic lookup tables
// persist across restarts instead of being rebuilt on first use.
//
// With -jobs-dir, jobs are journaled to disk: a SIGKILLed or restarted
// positd replays the journal on startup and resumes interrupted solver
// jobs from their last checkpoint, with results bit-identical to an
// uninterrupted run.
//
// With -fault-plan (testing only, requires -jobs-dir), the job journal
// runs behind a deterministic fault injector: the plan's seed-driven
// rules turn journal writes, fsyncs, and renames into short writes,
// I/O errors, or ENOSPC, exercising the degraded-durability paths end
// to end. The same plan string always injects the same faults.
//
// positd drains gracefully on SIGINT/SIGTERM: the listener closes, in-
// flight requests get -drain-timeout to finish, in-flight jobs are
// requeued with their checkpoints, and a clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"positlab/internal/arith"
	"positlab/internal/experiments"
	"positlab/internal/faultfs"
	"positlab/internal/jobs"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/runner"
	"positlab/internal/service"
)

func main() { os.Exit(run(os.Args[1:], os.Stderr)) }

func run(argv []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("positd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8787", "listen address")
	maxInflight := fs.Int("max-inflight", service.DefaultMaxInflight, "concurrent /v1 requests admitted before refusing with 429")
	cacheEntries := fs.Int("cache-entries", service.DefaultCacheEntries, "in-memory response LRU capacity")
	requestTimeout := fs.Duration("request-timeout", service.DefaultRequestTimeout, "per-request deadline; expiry cancels in-flight solver loops")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long in-flight requests may finish after SIGTERM")
	cacheDir := fs.String("cache", "", "on-disk experiment result cache directory (empty = no disk cache)")
	runnerJobs := fs.Int("jobs", 0, "concurrent runner jobs per experiment request (0 = GOMAXPROCS)")
	jobsDir := fs.String("jobs-dir", "", "durable job journal directory for /v1/jobs (empty = in-memory only; jobs do not survive restarts)")
	jobWorkers := fs.Int("job-workers", service.DefaultJobWorkers, "async job pool workers")
	checkpointEvery := fs.Int("checkpoint-every", service.DefaultJobCheckpointEvery, "default solver-iteration cadence for journaling job checkpoints")
	maxQueuedJobs := fs.Int("max-queued-jobs", service.DefaultMaxQueuedJobs, "queued-job backlog bound; submissions beyond it get 429")
	par := fs.Int("par", 1, "in-solver workers for order-independent kernel loops")
	instrument := fs.Bool("instrument", true, "count experiment arithmetic into job reports")
	matrices := fs.String("matrices", "", "restrict the experiment suite to these matrices (comma-separated; default all 19)")
	cgcap := fs.Int("cgcap", 10, "CG iteration cap as a multiple of N for experiments")
	irmax := fs.Int("irmax", 1000, "iterative-refinement cap for experiments")
	quiet := fs.Bool("quiet", false, "suppress the JSON access log")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	tableCache := fs.String("table-cache", "", "on-disk arithmetic lookup-table cache directory (empty = build tables in memory each start)")
	faultPlan := fs.String("fault-plan", "", "inject deterministic filesystem faults into the job journal (testing only; faultfs plan syntax, e.g. \"seed=7;op=sync,mode=eio,after=10\")")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "positd: "+format+"\n", args...)
		return 2
	}
	if *maxInflight < 1 {
		return usage("-max-inflight must be >= 1, got %d", *maxInflight)
	}
	if *cacheEntries < 1 {
		return usage("-cache-entries must be >= 1, got %d", *cacheEntries)
	}
	if *requestTimeout <= 0 {
		return usage("-request-timeout must be > 0, got %v", *requestTimeout)
	}
	if *par < 1 {
		return usage("-par must be >= 1, got %d", *par)
	}
	if *jobWorkers < 1 {
		return usage("-job-workers must be >= 1, got %d", *jobWorkers)
	}
	if *checkpointEvery < 1 {
		return usage("-checkpoint-every must be >= 1, got %d", *checkpointEvery)
	}
	if *maxQueuedJobs < 1 {
		return usage("-max-queued-jobs must be >= 1, got %d", *maxQueuedJobs)
	}
	linalg.SetWorkers(*par)
	if *tableCache != "" {
		// An unusable cache directory degrades to building tables in
		// memory (SetTableCacheDir already disabled the disk cache);
		// warn and keep serving rather than refusing to start.
		if err := arith.SetTableCacheDir(*tableCache); err != nil {
			fmt.Fprintf(stderr, "positd: -table-cache unusable, building tables in memory: %v\n", err)
		}
	}

	opt := experiments.Options{CGCapFactor: *cgcap, IRMaxIter: *irmax}
	if *matrices != "" {
		opt.Matrices = strings.Split(*matrices, ",")
		for _, name := range opt.Matrices {
			if _, err := matgen.TargetByName(name); err != nil {
				return usage("-matrices: %v", err)
			}
		}
	}

	cfg := service.Config{
		RunnerConfig: runner.Config{
			Jobs:       *runnerJobs,
			Options:    opt,
			KeyData:    opt.Canonical(),
			Instrument: *instrument,
		},
		MaxInflight:        *maxInflight,
		CacheEntries:       *cacheEntries,
		RequestTimeout:     *requestTimeout,
		JobWorkers:         *jobWorkers,
		JobCheckpointEvery: *checkpointEvery,
		MaxQueuedJobs:      *maxQueuedJobs,
		EnablePprof:        *pprofOn,
	}
	if !*quiet {
		cfg.AccessLog = stderr
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "positd: %v\n", err)
			return 1
		}
		cfg.RunnerConfig.Cache = cache
	}
	if *faultPlan != "" && *jobsDir == "" {
		return usage("-fault-plan requires -jobs-dir (the plan injects faults into the job journal)")
	}
	if *jobsDir != "" {
		jcfg := jobs.Config{}
		if *faultPlan != "" {
			plan, err := faultfs.ParsePlan(*faultPlan)
			if err != nil {
				return usage("-fault-plan: %v", err)
			}
			fmt.Fprintf(stderr, "positd: WARNING: fault injection active on the job journal (%s); durability guarantees are deliberately broken for testing\n", plan)
			jcfg.FS = faultfs.New(faultfs.OS, plan)
		}
		store, err := jobs.Open(*jobsDir, jcfg)
		if err != nil {
			fmt.Fprintf(stderr, "positd: %v\n", err)
			return 1
		}
		defer func() {
			if cerr := store.Close(); cerr != nil {
				fmt.Fprintf(stderr, "positd: close job store: %v\n", cerr)
			}
		}()
		st := store.ReplayStats()
		fmt.Fprintf(stderr, "positd: job journal %s: %d snapshot + %d records replayed in %.1f ms, %d resumed, %d restarted\n",
			*jobsDir, st.SnapshotJobs, st.Records, st.MS, st.Resumed, st.Restarted)
		cfg.Jobs = store
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "positd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "positd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := service.New(cfg).Run(ctx, ln, *drainTimeout); err != nil {
		fmt.Fprintf(stderr, "positd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "positd: drained cleanly")
	return 0
}
