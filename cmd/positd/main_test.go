package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestHelperPositd is not a test: it is the subprocess body for the
// crash-recovery test below. The parent re-execs the test binary with
// POSITD_HELPER=1 and the flag set in POSITD_ARGS, so the child runs
// the real positd main loop — signal handling, journal replay, job
// pool — in its own process that can be SIGKILLed.
func TestHelperPositd(t *testing.T) {
	if os.Getenv("POSITD_HELPER") != "1" {
		t.Skip("subprocess helper, not a test")
	}
	os.Exit(run(strings.Fields(os.Getenv("POSITD_ARGS")), os.Stderr))
}

// startPositd launches the helper process and waits for its listen
// line, returning the base URL and the running command.
func startPositd(t *testing.T, args string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperPositd")
	cmd.Env = append(os.Environ(), "POSITD_HELPER=1", "POSITD_ARGS="+args)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	// Scan stderr for the listen address, then keep draining so the
	// child never blocks on a full pipe.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default:
			}
		}
		close(lines)
	}()
	deadline := time.After(20 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("positd exited before listening")
			}
			if _, addr, found := strings.Cut(line, "listening on "); found {
				go func() {
					for range lines {
					}
				}()
				return "http://" + addr, cmd
			}
		case <-deadline:
			t.Fatal("timed out waiting for positd to listen")
		}
	}
}

func positdJSON(t *testing.T, method, url, body string, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %v (%s)", method, url, err, raw)
		}
	}
	return resp.StatusCode, resp.Header
}

type jobStatus struct {
	ID             string          `json:"id"`
	State          string          `json:"state"`
	Recoveries     int             `json:"recoveries"`
	CheckpointIter int             `json:"checkpoint_iter"`
	Result         json.RawMessage `json:"result"`
}

func crashTestMM(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%%%%MatrixMarket matrix coordinate real symmetric\n%d %d %d\n", n, n, 2*n-1)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, "%d %d 2\n", i, i)
	}
	for i := 2; i <= n; i++ {
		fmt.Fprintf(&sb, "%d %d -1\n", i, i-1)
	}
	return sb.String()
}

// TestCrashRecoveryBitIdentical is the hard half of the durability
// contract: SIGKILL positd mid-solve (no drain, no cleanup), restart
// it on the same journal directory, and require the recovered job to
// resume from its last fsynced checkpoint and finish with a result
// byte-identical to an uninterrupted run.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	args := "-addr 127.0.0.1:0 -quiet -job-workers 1 -jobs-dir " + dir

	base, cmd := startPositd(t, args)

	// posit32es2 software arithmetic with an unreachable tolerance: the
	// solve runs its full 3000 iterations, checkpointing every 10, so
	// there is a wide window to kill it mid-flight.
	spec := map[string]any{
		"matrix_market": crashTestMM(120), "solver": "cg", "format": "posit32es2",
		"tol": 1e-300, "max_iter": 3000, "return_x": true,
	}
	submit, err := json.Marshal(map[string]any{"solve": spec, "checkpoint_every": 10})
	if err != nil {
		t.Fatal(err)
	}
	var job jobStatus
	if code, _ := positdJSON(t, "POST", base+"/v1/jobs", string(submit), &job); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	// Wait until at least one checkpoint is durably journaled, then
	// SIGKILL: no signal handler runs, no drain, no graceful anything.
	waitFor(t, base, job.ID, func(s jobStatus) bool { return s.CheckpointIter >= 10 })
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	base2, _ := startPositd(t, args)
	done := waitFor(t, base2, job.ID, func(s jobStatus) bool { return s.State != "queued" && s.State != "running" })
	if done.State != "succeeded" || done.Recoveries < 1 {
		t.Fatalf("recovered job = state=%s recoveries=%d, want succeeded with >=1 recovery", done.State, done.Recoveries)
	}

	// The uninterrupted reference run, on the same server.
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ref map[string]any
	if code, _ := positdJSON(t, "POST", base2+"/v1/solve", string(specJSON), &ref); code != 200 {
		t.Fatalf("reference solve = %d", code)
	}
	var got map[string]any
	if err := json.Unmarshal(done.Result, &got); err != nil {
		t.Fatal(err)
	}
	for _, m := range []map[string]any{ref, got} {
		delete(m, "wall_ms")
		delete(m, "ops")
	}
	if !reflect.DeepEqual(got, ref) {
		gb, _ := json.Marshal(got)
		rb, _ := json.Marshal(ref)
		t.Fatalf("recovered result diverges from uninterrupted run:\n%s\nvs\n%s", gb, rb)
	}
}

func waitFor(t *testing.T, base, id string, pred func(jobStatus) bool) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var s jobStatus
		if code, _ := positdJSON(t, "GET", base+"/v1/jobs/"+id, "", &s); code == 200 && pred(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the wanted condition (last: %+v)", id, s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunFlagValidation exercises the new flags' guard rails without
// starting a server.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"job-workers", []string{"-job-workers", "0"}},
		{"checkpoint-every", []string{"-checkpoint-every", "0"}},
		{"max-queued-jobs", []string{"-max-queued-jobs", "-3"}},
		{"cache-entries", []string{"-cache-entries", "0"}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if code := run(c.args, &buf); code != 2 {
			t.Errorf("%s: exit = %d, want 2 (%s)", c.name, code, buf.String())
		}
		if !strings.Contains(buf.String(), c.name) {
			t.Errorf("%s: usage message %q does not name the flag", c.name, buf.String())
		}
	}
	// -h documents the jobs flags.
	var buf bytes.Buffer
	if code := run([]string{"-h"}, &buf); code != 2 {
		t.Errorf("-h exit = %d, want 2", code)
	}
	for _, flag := range []string{"-jobs-dir", "-job-workers", "-checkpoint-every", "-max-queued-jobs", "-cache-entries"} {
		if !strings.Contains(buf.String(), flag+" ") && !strings.Contains(buf.String(), strings.TrimPrefix(flag, "-")+" ") {
			t.Errorf("-h output missing %s", flag)
		}
	}
}
