module positlab

go 1.22
