// Package scaling implements the paper's three matrix-rescaling
// strategies:
//
//   - power-of-two rescaling of the whole system so ‖A‖∞ lands near
//     2^10, used to pull CG iterates into the posit golden zone (§V-B);
//   - Algorithm 3: rescaling by the nearest power of two of the average
//     absolute diagonal entry, used for the Cholesky direct solver
//     (§V-C2);
//   - Algorithms 4–5: Higham's two-sided diagonal equilibration plus a
//     μ shift for squeezing a matrix into a half-precision format, with
//     the paper's format-aware choice of μ (a power of 4 near
//     0.1·Float16max for IEEE half precision, USEED for posits).
package scaling

import (
	"math"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/posit"
)

// NearestPowerOfTwo returns 2^round(log2(x)) for x > 0.
func NearestPowerOfTwo(x float64) float64 {
	if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Ldexp(1, int(math.Round(math.Log2(x))))
}

// NearestPowerOfFour returns 4^round(log4(x)) for x > 0 — the paper
// rounds Higham's μ to a power of four because Cholesky takes square
// roots, and USEED is itself a power of four for es ≥ 1 (§V-D2).
func NearestPowerOfFour(x float64) float64 {
	if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Pow(4, math.Round(math.Log2(x)/2))
}

// InfNormPow2 returns the power-of-two factor s such that s·‖A‖∞ is as
// close as possible to the target (the paper targets 2^10 for CG). The
// caller applies A ← s·A, b ← s·b; powers of two keep Float32 results
// bit-identical away from its exponent limits.
func InfNormPow2(a *linalg.Sparse, target float64) float64 {
	norm := a.NormInf()
	if norm == 0 {
		return 1
	}
	return NearestPowerOfTwo(target / norm)
}

// RescaleSystemCG applies the §V-B CG rescaling in place: scale the
// whole system by a power of two so ‖A‖∞ ≈ 2^10.
func RescaleSystemCG(a *linalg.Sparse, b []float64) (factor float64) {
	s := InfNormPow2(a, math.Ldexp(1, 10))
	a.Scale(s)
	for i := range b {
		b[i] *= s
	}
	return s
}

// DiagAvgPow2 implements Algorithm 3's scale factor: the nearest power
// of two of the average absolute diagonal entry. The system is solved
// as (A/s)·x = (b/s), leaving x unchanged.
func DiagAvgPow2(a *linalg.Sparse) float64 {
	d := a.Diag()
	sum := 0.0
	for _, v := range d {
		sum += math.Abs(v)
	}
	if sum == 0 {
		return 1
	}
	return NearestPowerOfTwo(sum / float64(len(d)))
}

// RescaleSystemCholesky applies Algorithm 3 in place: A ← A/s, b ← b/s
// with s = nearestPowerOfTwo(average(|A_kk|)).
func RescaleSystemCholesky(a *linalg.Sparse, b []float64) (factor float64) {
	s := DiagAvgPow2(a)
	inv := 1 / s
	a.Scale(inv)
	for i := range b {
		b[i] *= inv
	}
	return s
}

// HighamEquilibrate computes the diagonal R of Algorithm 5: iteratively
// r_i ← ‖A(i,:)‖∞^{-1/2}, A ← diag(r)·A·diag(r), R ← diag(r)·R until
// every row's largest magnitude is within tol of one. For symmetric A
// this is symmetry-preserving row/column equilibration; it converges in
// a handful of sweeps. The input matrix is not modified.
func HighamEquilibrate(a *linalg.Sparse, tol float64, maxSweeps int) []float64 {
	if tol <= 0 {
		tol = 1e-8
	}
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	work := a.Clone()
	r := make([]float64, a.N)
	for i := range r {
		r[i] = 1
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rows := work.RowNormInf()
		worst := 0.0
		for _, m := range rows {
			if d := math.Abs(m - 1); d > worst {
				worst = d
			}
		}
		if worst <= tol {
			break
		}
		d := make([]float64, a.N)
		for i, m := range rows {
			if m > 0 {
				d[i] = 1 / math.Sqrt(m)
			} else {
				d[i] = 1
			}
		}
		work.ScaleSym(d)
		for i := range r {
			r[i] *= d[i]
		}
	}
	return r
}

// MuForFloat16 is Higham's shift for IEEE half precision: 0.1 times the
// largest finite Float16, rounded to the nearest power of four (§V-D2).
func MuForFloat16(maxValue float64) float64 {
	return NearestPowerOfFour(0.1 * maxValue)
}

// MuForPosit is the paper's shift for posits: exactly USEED, so each
// equilibrated row and column has maximum entry equal to USEED and sits
// flush against the golden zone (§V-D2).
func MuForPosit(c posit.Config) float64 {
	return float64(c.USEED())
}

// MuFor picks the paper's μ for an arbitrary format: USEED for posit
// formats, the power-of-four rounding of 0.1·max for IEEE formats.
func MuFor(f arith.Format) float64 {
	if c, ok := arith.PositConfig(f); ok {
		return MuForPosit(c)
	}
	return MuForFloat16(f.MaxValue())
}
