package scaling_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/matgen"
	"positlab/internal/posit"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func TestNearestPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1}, {2, 2}, {3, 4}, {1.4, 1}, {1.5, 2}, {0.75, 1},
		{1000, 1024}, {0.3, 0.25}, {6e-1, 0.5},
	}
	for _, tc := range cases {
		if got := scaling.NearestPowerOfTwo(tc.in); got != tc.want {
			t.Errorf("NearestPowerOfTwo(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
	// Degenerate inputs fall back to 1.
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if got := scaling.NearestPowerOfTwo(bad); got != 1 {
			t.Errorf("NearestPowerOfTwo(%g) = %g, want 1", bad, got)
		}
	}
}

func TestNearestPowerOfFour(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1}, {4, 4}, {16, 16}, {3, 4}, {5, 4}, {10, 16}, {0.3, 0.25},
		{6550.4, 4096},
	}
	for _, tc := range cases {
		if got := scaling.NearestPowerOfFour(tc.in); got != tc.want {
			t.Errorf("NearestPowerOfFour(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestRescaleSystemCG(t *testing.T) {
	tgt, _ := matgen.TargetByName("nos1") // ‖A‖₂ = 2.5e9
	m := matgen.Generate(tgt)
	a := m.A.Clone()
	b := append([]float64(nil), m.B...)
	s := scaling.RescaleSystemCG(a, b)
	// Scale factor is a power of two.
	if f, _ := math.Frexp(s); f != 0.5 {
		t.Fatalf("scale %g not a power of two", s)
	}
	// ‖A‖∞ lands within a factor of two of 2^10.
	norm := a.NormInf()
	if norm < 512 || norm > 2048 {
		t.Fatalf("scaled ‖A‖∞ = %g, want near 1024", norm)
	}
	// The solution is unchanged: s·A·x̂ = s·b.
	ax := make([]float64, a.N)
	a.MatVecF64(m.XHat, ax)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-9*math.Abs(b[i])+1e-300 {
			t.Fatalf("scaled system no longer consistent at %d", i)
		}
	}
}

func TestRescaleSystemCholesky(t *testing.T) {
	tgt, _ := matgen.TargetByName("bcsstk01") // ‖A‖₂ = 3e9
	m := matgen.Generate(tgt)
	a := m.A.Clone()
	b := append([]float64(nil), m.B...)
	s := scaling.RescaleSystemCholesky(a, b)
	if f, _ := math.Frexp(s); f != 0.5 {
		t.Fatalf("scale %g not a power of two", s)
	}
	// After scaling, the average |diagonal| is within [0.5, 2].
	d := a.Diag()
	sum := 0.0
	for _, v := range d {
		sum += math.Abs(v)
	}
	avg := sum / float64(len(d))
	if avg < 0.5 || avg > 2 {
		t.Fatalf("scaled diagonal average = %g, want ~1", avg)
	}
	// Solution unchanged: x̂ still solves the scaled system.
	ax := make([]float64, a.N)
	a.MatVecF64(m.XHat, ax)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-9*math.Abs(b[i])+1e-300 {
			t.Fatal("scaled system inconsistent")
		}
	}
}

func TestHighamEquilibrate(t *testing.T) {
	for _, name := range []string{"nos1", "bcsstk01", "lund_b"} {
		tgt, _ := matgen.TargetByName(name)
		m := matgen.Generate(tgt)
		r := scaling.HighamEquilibrate(m.A, 1e-8, 100)
		// RAR must have every row's max |entry| equal to one.
		scaled := m.A.Clone()
		scaled.ScaleSym(r)
		for i, mx := range scaled.RowNormInf() {
			if math.Abs(mx-1) > 1e-6 {
				t.Fatalf("%s: row %d max = %g after equilibration", name, i, mx)
			}
		}
		if !scaled.IsSymmetric(1e-12) {
			t.Fatalf("%s: equilibration broke symmetry", name)
		}
	}
}

func TestMuChoices(t *testing.T) {
	// Float16: 0.1 * 65504 = 6550.4 -> nearest power of 4 is 4096.
	if got := scaling.MuForFloat16(65504); got != 4096 {
		t.Fatalf("MuForFloat16 = %g, want 4096", got)
	}
	// Posits: exactly USEED.
	if got := scaling.MuForPosit(posit.Posit16e2); got != 16 {
		t.Fatalf("MuForPosit(16,2) = %g, want 16", got)
	}
	if got := scaling.MuForPosit(posit.Posit16e1); got != 4 {
		t.Fatalf("MuForPosit(16,1) = %g, want 4", got)
	}
	if got := scaling.MuFor(arith.Posit16e2); got != 16 {
		t.Fatalf("MuFor(posit16e2) = %g", got)
	}
	if got := scaling.MuFor(arith.Float16); got != 4096 {
		t.Fatalf("MuFor(float16) = %g", got)
	}
}

// End-to-end: Higham scaling rescues Float16 IR on a matrix whose raw
// entries are far outside Float16 range — the Table III mechanism.
func TestHighamScalingRescuesFloat16(t *testing.T) {
	tgt, _ := matgen.TargetByName("bcsstk01") // ‖A‖₂ = 3e9, N = 48
	m := matgen.Generate(tgt)

	naive := solvers.MixedIR(m.A, m.B, arith.Float16, solvers.IRScaling{}, solvers.IROptions{})
	if naive.Converged {
		t.Log("note: naive Float16 IR converged; Table II marks bcsstk01 as failing")
	}

	r := scaling.HighamEquilibrate(m.A, 1e-8, 100)
	mu := scaling.MuFor(arith.Float16)
	sc := solvers.MixedIR(m.A, m.B, arith.Float16, solvers.IRScaling{R: r, Mu: mu}, solvers.IROptions{})
	if sc.FactorFailed || !sc.Converged {
		t.Fatalf("Higham-scaled Float16 IR failed: %+v", sc)
	}
	// And posit(16,1) with mu = USEED converges too.
	mp := scaling.MuFor(arith.Posit16e1)
	sp := solvers.MixedIR(m.A, m.B, arith.Posit16e1, solvers.IRScaling{R: r, Mu: mp}, solvers.IROptions{})
	if sp.FactorFailed || !sp.Converged {
		t.Fatalf("Higham-scaled posit(16,1) IR failed: %+v", sp)
	}
}
