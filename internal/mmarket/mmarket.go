// Package mmarket reads and writes the NIST MatrixMarket exchange
// format (coordinate, real, general/symmetric), the distribution format
// of the paper's test matrices. The synthetic replica suite is emitted
// as genuine .mtx files and re-read through this parser, so experiments
// exercise the same I/O path the paper's pipeline did.
package mmarket

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"positlab/internal/linalg"
)

// Header carries the banner and size line of a MatrixMarket file.
type Header struct {
	Object   string // "matrix"
	Format   string // "coordinate"
	Field    string // "real" | "integer"
	Symmetry string // "general" | "symmetric"
	Comments []string
	Rows     int
	Cols     int
	NNZ      int // stored entries (lower triangle only for symmetric)
}

// Read parses a coordinate real/integer matrix. Symmetric storage is
// expanded to both triangles in the returned Sparse.
func Read(r io.Reader) (*linalg.Sparse, *Header, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	if !sc.Scan() {
		return nil, nil, fmt.Errorf("mmarket: empty input")
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 5 || banner[0] != "%%matrixmarket" {
		return nil, nil, fmt.Errorf("mmarket: missing %%%%MatrixMarket banner")
	}
	h := &Header{Object: banner[1], Format: banner[2], Field: banner[3], Symmetry: banner[4]}
	if h.Object != "matrix" {
		return nil, nil, fmt.Errorf("mmarket: unsupported object %q", h.Object)
	}
	if h.Format != "coordinate" {
		return nil, nil, fmt.Errorf("mmarket: unsupported format %q (only coordinate)", h.Format)
	}
	if h.Field != "real" && h.Field != "integer" {
		return nil, nil, fmt.Errorf("mmarket: unsupported field %q", h.Field)
	}
	if h.Symmetry != "general" && h.Symmetry != "symmetric" {
		return nil, nil, fmt.Errorf("mmarket: unsupported symmetry %q", h.Symmetry)
	}

	// Comments, then the size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "%") {
			h.Comments = append(h.Comments, strings.TrimPrefix(line, "%"))
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, nil, fmt.Errorf("mmarket: missing size line")
	}
	dims := strings.Fields(sizeLine)
	if len(dims) != 3 {
		return nil, nil, fmt.Errorf("mmarket: malformed size line %q", sizeLine)
	}
	var err error
	if h.Rows, err = strconv.Atoi(dims[0]); err != nil {
		return nil, nil, fmt.Errorf("mmarket: bad row count: %v", err)
	}
	if h.Cols, err = strconv.Atoi(dims[1]); err != nil {
		return nil, nil, fmt.Errorf("mmarket: bad column count: %v", err)
	}
	if h.NNZ, err = strconv.Atoi(dims[2]); err != nil {
		return nil, nil, fmt.Errorf("mmarket: bad nnz count: %v", err)
	}
	if h.Rows != h.Cols {
		return nil, nil, fmt.Errorf("mmarket: matrix is %dx%d; only square matrices supported", h.Rows, h.Cols)
	}

	entries := make([]linalg.Entry, 0, h.NNZ)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("mmarket: malformed entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("mmarket: bad row index %q: %v", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("mmarket: bad column index %q: %v", fields[1], err)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("mmarket: bad value %q: %v", fields[2], err)
		}
		if i < 1 || i > h.Rows || j < 1 || j > h.Cols {
			return nil, nil, fmt.Errorf("mmarket: entry (%d,%d) outside %dx%d", i, j, h.Rows, h.Cols)
		}
		entries = append(entries, linalg.Entry{Row: i - 1, Col: j - 1, Val: v})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(entries) != h.NNZ {
		return nil, nil, fmt.Errorf("mmarket: size line promises %d entries, found %d", h.NNZ, len(entries))
	}
	s, err := linalg.NewSparseFromEntries(h.Rows, entries, h.Symmetry == "symmetric")
	if err != nil {
		return nil, nil, err
	}
	return s, h, nil
}

// ReadFile reads a .mtx file from disk.
func ReadFile(path string) (*linalg.Sparse, *Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits a coordinate real matrix. When symmetric is true only the
// lower triangle is stored (the caller asserts numerical symmetry).
// Values print with enough digits to round-trip float64 exactly.
func Write(w io.Writer, s *linalg.Sparse, symmetric bool, comments []string) error {
	bw := bufio.NewWriter(w)
	sym := "general"
	if symmetric {
		sym = "symmetric"
	}
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n", sym)
	for _, c := range comments {
		fmt.Fprintf(bw, "%% %s\n", c)
	}
	entries := s.Entries()
	kept := entries[:0]
	for _, e := range entries {
		if symmetric && e.Col > e.Row {
			continue
		}
		kept = append(kept, e)
	}
	fmt.Fprintf(bw, "%d %d %d\n", s.N, s.N, len(kept))
	for _, e := range kept {
		fmt.Fprintf(bw, "%d %d %s\n", e.Row+1, e.Col+1, strconv.FormatFloat(e.Val, 'g', 17, 64))
	}
	return bw.Flush()
}

// WriteFile writes a .mtx file to disk.
func WriteFile(path string, s *linalg.Sparse, symmetric bool, comments []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s, symmetric, comments); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
