package mmarket_test

import (
	"bytes"
	"strings"
	"testing"

	"positlab/internal/mmarket"
)

// FuzzRead: the parser must never panic and must round-trip whatever
// it accepts.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.5\n2 1 -0.25\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% c\n1 1 1\n1 1 2e-3\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n3 1 1e400\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, h, err := mmarket.Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if s.N != h.Rows {
			t.Fatalf("accepted matrix with N %d != header %d", s.N, h.Rows)
		}
		// Whatever was accepted must survive a write/read cycle with
		// identical entries.
		var buf bytes.Buffer
		if err := mmarket.Write(&buf, s, false, nil); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, _, err := mmarket.Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v\ninput: %q", err, input)
		}
		if back.NNZ() != s.NNZ() {
			t.Fatalf("round-trip NNZ %d != %d", back.NNZ(), s.NNZ())
		}
		for i := range s.Val {
			if !(back.Val[i] == s.Val[i]) && !(back.Val[i] != back.Val[i] && s.Val[i] != s.Val[i]) {
				t.Fatalf("round-trip value %v != %v", back.Val[i], s.Val[i])
			}
		}
	})
}
