package mmarket_test

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"positlab/internal/linalg"
	"positlab/internal/mmarket"
)

func sample() *linalg.Sparse {
	s, err := linalg.NewSparseFromEntries(3, []linalg.Entry{
		{Row: 0, Col: 0, Val: 4}, {Row: 1, Col: 1, Val: 5.5}, {Row: 2, Col: 2, Val: math.Pi},
		{Row: 1, Col: 0, Val: -1.25}, {Row: 2, Col: 1, Val: 1e-17},
	}, true)
	if err != nil {
		panic(err)
	}
	return s
}

func TestRoundTripSymmetric(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := mmarket.Write(&buf, s, true, []string{"test matrix", "generated"}); err != nil {
		t.Fatal(err)
	}
	got, h, err := mmarket.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Symmetry != "symmetric" || h.Rows != 3 || h.NNZ != 5 {
		t.Fatalf("header = %+v", h)
	}
	if len(h.Comments) != 2 || !strings.Contains(h.Comments[0], "test matrix") {
		t.Fatalf("comments = %v", h.Comments)
	}
	if got.NNZ() != s.NNZ() {
		t.Fatalf("nnz: got %d want %d", got.NNZ(), s.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != s.At(i, j) {
				t.Fatalf("entry (%d,%d): got %g want %g (must round-trip bit-exactly)", i, j, got.At(i, j), s.At(i, j))
			}
		}
	}
}

func TestRoundTripGeneral(t *testing.T) {
	s, _ := linalg.NewSparseFromEntries(2, []linalg.Entry{
		{Row: 0, Col: 1, Val: 2.5}, {Row: 1, Col: 0, Val: -3},
	}, false)
	var buf bytes.Buffer
	if err := mmarket.Write(&buf, s, false, nil); err != nil {
		t.Fatal(err)
	}
	got, h, err := mmarket.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Symmetry != "general" {
		t.Fatalf("symmetry = %s", h.Symmetry)
	}
	if got.At(0, 1) != 2.5 || got.At(1, 0) != -3 || got.At(0, 0) != 0 {
		t.Fatal("general round-trip failed")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.mtx")
	s := sample()
	if err := mmarket.WriteFile(path, s, true, []string{"file test"}); err != nil {
		t.Fatal(err)
	}
	got, _, err := mmarket.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 0) != -1.25 {
		t.Fatal("file round-trip failed")
	}
}

func TestReadRealWorldFormat(t *testing.T) {
	// A fragment in the exact style of a Matrix Market download,
	// with 1-based indices and exponent notation.
	input := `%%MatrixMarket matrix coordinate real symmetric
% Harwell-Boeing style comment
%   more comment
3 3 4
1 1 1.0e+00
2 1 -2.5e-01
2 2 2.0e+00
3 3 4.0e+00
`
	s, h, err := mmarket.Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if h.NNZ != 4 || s.NNZ() != 5 { // symmetric expansion adds (1,2)
		t.Fatalf("nnz: header %d stored %d", h.NNZ, s.NNZ())
	}
	if s.At(0, 1) != -0.25 || s.At(1, 0) != -0.25 {
		t.Fatal("symmetric expansion failed")
	}
}

func TestReadIntegerField(t *testing.T) {
	input := "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 3\n2 2 -4\n"
	s, _, err := mmarket.Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 3 || s.At(1, 1) != -4 {
		t.Fatal("integer field read failed")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no banner":      "1 1 1\n1 1 2.0\n",
		"bad object":     "%%MatrixMarket vector coordinate real general\n1 1 1\n",
		"bad format":     "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"bad field":      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 2 3\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 2.0\n",
		"nonsquare":      "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 2.0\n",
		"missing size":   "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"malformed size": "%%MatrixMarket matrix coordinate real general\n2 2\n",
		"bad entry":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 2.0\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 2.0\n",
		"count mismatch": "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 2.0\n",
	}
	for name, input := range cases {
		if _, _, err := mmarket.Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
