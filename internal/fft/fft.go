// Package fft implements a format-generic radix-2 complex FFT, the
// first of the paper's proposed future-work applications (§VII): "We
// suspect that FFT may be a good application for Posit because its
// narrow working range makes it easy to squeeze into the Posit
// golden-zone." The transform rounds after every operation in the
// chosen format, like the paper's solver experiments.
package fft

import (
	"fmt"
	"math"

	"positlab/internal/arith"
)

// Complex is a complex value in a format.
type Complex struct {
	Re, Im arith.Num
}

// Plan holds the precomputed twiddle factors for size n in a format.
type Plan struct {
	F arith.Format
	N int
	// twiddles[k] = exp(-2πi k/N) for k < N/2, rounded into the format.
	twRe, twIm []arith.Num
}

// NewPlan builds a plan. n must be a power of two and at least 2.
func NewPlan(f arith.Format, n int) (*Plan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a power of two", n)
	}
	p := &Plan{F: f, N: n, twRe: make([]arith.Num, n/2), twIm: make([]arith.Num, n/2)}
	// Twiddle factors are constants of the transform, computed once at
	// plan time in float64 and correctly rounded into the format — the
	// standard practice the paper's FFT experiment assumes. Per-element
	// transform arithmetic below stays in the format.
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twRe[k] = f.FromFloat64(math.Cos(ang)) //lint:allow precision twiddle constants rounded once at plan time
		p.twIm[k] = f.FromFloat64(math.Sin(ang)) //lint:allow precision twiddle constants rounded once at plan time
	}
	return p, nil
}

// Forward computes the in-place decimation-in-time FFT of x
// (len(x) == N).
func (p *Plan) Forward(x []Complex) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse FFT, including the 1/N
// normalization.
func (p *Plan) Inverse(x []Complex) {
	p.transform(x, true)
	f := p.F
	invN := f.Div(f.One(), f.FromFloat64(float64(p.N)))
	for i := range x {
		x[i].Re = f.Mul(x[i].Re, invN)
		x[i].Im = f.Mul(x[i].Im, invN)
	}
}

func (p *Plan) transform(x []Complex, inverse bool) {
	if len(x) != p.N {
		// Length mismatch is caller programmer error (a plan is built
		// for one size), not a runtime condition to handle.
		panic(fmt.Sprintf("fft: input length %d != plan size %d", len(x), p.N)) //lint:allow panics dimension invariant, caller bug by contract
	}
	f := p.F
	n := p.N
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		step := n / length
		for start := 0; start < n; start += length {
			for k := 0; k < length/2; k++ {
				wRe := p.twRe[k*step]
				wIm := p.twIm[k*step]
				if inverse {
					wIm = f.Neg(wIm)
				}
				a := x[start+k]
				b := x[start+k+length/2]
				// t = w * b, rounded per operation.
				tRe := f.Sub(f.Mul(wRe, b.Re), f.Mul(wIm, b.Im))
				tIm := f.Add(f.Mul(wRe, b.Im), f.Mul(wIm, b.Re))
				x[start+k] = Complex{Re: f.Add(a.Re, tRe), Im: f.Add(a.Im, tIm)}
				x[start+k+length/2] = Complex{Re: f.Sub(a.Re, tRe), Im: f.Sub(a.Im, tIm)}
			}
		}
	}
}

// FromReal rounds a real signal into format complex values.
func FromReal(f arith.Format, signal []float64) []Complex {
	out := make([]Complex, len(signal))
	z := f.Zero()
	for i, v := range signal {
		out[i] = Complex{Re: f.FromFloat64(v), Im: z}
	}
	return out
}

// ToFloat64 converts format complex values to complex128.
func ToFloat64(f arith.Format, x []Complex) []complex128 {
	out := make([]complex128, len(x))
	for i, c := range x {
		out[i] = complex(f.ToFloat64(c.Re), f.ToFloat64(c.Im))
	}
	return out
}

// RelErrorL2 returns ‖got-want‖₂/‖want‖₂ over complex slices.
func RelErrorL2(got, want []complex128) float64 {
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		w := want[i]
		den += real(w)*real(w) + imag(w)*imag(w)
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// ReferenceForward computes the exact-as-float64 FFT for comparison.
func ReferenceForward(signal []float64) []complex128 {
	n := len(signal)
	x := make([]complex128, n)
	for i, v := range signal {
		x[i] = complex(v, 0)
	}
	refTransform(x)
	return x
}

func refTransform(x []complex128) {
	n := len(x)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		for start := 0; start < n; start += length {
			for k := 0; k < length/2; k++ {
				ang := -2 * math.Pi * float64(k) / float64(length)
				w := complex(math.Cos(ang), math.Sin(ang))
				a := x[start+k]
				t := w * x[start+k+length/2]
				x[start+k] = a + t
				x[start+k+length/2] = a - t
			}
		}
	}
}
