package fft_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/fft"
)

func signal(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		x := float64(i) / float64(n)
		s[i] = math.Sin(2*math.Pi*3*x) + 0.5*math.Cos(2*math.Pi*7*x) + 0.25*math.Sin(2*math.Pi*11*x)
	}
	return s
}

func TestPlanValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12, 100} {
		if _, err := fft.NewPlan(arith.Float64, n); err == nil {
			t.Errorf("size %d must be rejected", n)
		}
	}
	if _, err := fft.NewPlan(arith.Float64, 64); err != nil {
		t.Fatal(err)
	}
}

// Float64 FFT must match the reference implementation exactly (they use
// the same butterfly order but different twiddle evaluation; tolerance
// covers the difference).
func TestForwardMatchesReference(t *testing.T) {
	n := 256
	sig := signal(n)
	p, _ := fft.NewPlan(arith.Float64, n)
	x := fft.FromReal(arith.Float64, sig)
	p.Forward(x)
	got := fft.ToFloat64(arith.Float64, x)
	want := fft.ReferenceForward(sig)
	if err := fft.RelErrorL2(got, want); err > 1e-12 {
		t.Fatalf("float64 forward error %g", err)
	}
}

// Parseval: energy is preserved by the unitary-scaled transform.
func TestParseval(t *testing.T) {
	n := 128
	sig := signal(n)
	p, _ := fft.NewPlan(arith.Float64, n)
	x := fft.FromReal(arith.Float64, sig)
	p.Forward(x)
	spec := fft.ToFloat64(arith.Float64, x)
	var eTime, eFreq float64
	for i := range sig {
		eTime += sig[i] * sig[i]
	}
	for _, c := range spec {
		eFreq += real(c)*real(c) + imag(c)*imag(c)
	}
	eFreq /= float64(n)
	if math.Abs(eTime-eFreq)/eTime > 1e-12 {
		t.Fatalf("Parseval violated: %g vs %g", eTime, eFreq)
	}
}

// Round trip in every format: forward then inverse returns the signal
// to within the format's precision.
func TestRoundTripAllFormats(t *testing.T) {
	n := 128
	sig := signal(n)
	for _, tc := range []struct {
		f   arith.Format
		tol float64
	}{
		{arith.Float64, 1e-13},
		{arith.Float32, 1e-5},
		{arith.Posit32e2, 1e-6},
		{arith.Float16, 2e-2},
		{arith.Posit16e2, 1e-2},
		{arith.Posit16e1, 5e-3},
	} {
		p, _ := fft.NewPlan(tc.f, n)
		x := fft.FromReal(tc.f, sig)
		p.Forward(x)
		p.Inverse(x)
		got := fft.ToFloat64(tc.f, x)
		var num, den float64
		for i := range sig {
			d := real(got[i]) - sig[i]
			num += d*d + imag(got[i])*imag(got[i])
			den += sig[i] * sig[i]
		}
		err := math.Sqrt(num / den)
		if err > tc.tol {
			t.Errorf("%s: round-trip error %g > %g", tc.f.Name(), err, tc.tol)
		}
		if err == 0 && tc.f.Name() != "Float64" {
			t.Errorf("%s: suspiciously exact", tc.f.Name())
		}
	}
}

// The paper's future-work hypothesis (§VII): posit16 beats float16 on
// FFT because the working range is narrow. Verify the direction.
func TestPositBeatsFloatAtSameWidth(t *testing.T) {
	n := 256
	sig := signal(n)
	ref := fft.ReferenceForward(sig)
	err16 := map[string]float64{}
	for _, f := range []arith.Format{arith.Float16, arith.Posit16e1, arith.Posit16e2} {
		p, _ := fft.NewPlan(f, n)
		x := fft.FromReal(f, sig)
		p.Forward(x)
		err16[f.Name()] = fft.RelErrorL2(fft.ToFloat64(f, x), ref)
	}
	if !(err16["Posit(16,1)"] < err16["Float16"]) {
		t.Errorf("posit(16,1) FFT error %g !< float16 %g", err16["Posit(16,1)"], err16["Float16"])
	}
	if !(err16["Posit(16,2)"] < err16["Float16"]) {
		t.Errorf("posit(16,2) FFT error %g !< float16 %g", err16["Posit(16,2)"], err16["Float16"])
	}
}
