package linalg_test

import (
	"sort"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/posit"
)

func TestSetWorkersClamp(t *testing.T) {
	prev := linalg.SetWorkers(1)
	defer linalg.SetWorkers(prev)
	if linalg.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", linalg.Workers())
	}
	linalg.SetWorkers(0)
	if linalg.Workers() != 1 {
		t.Fatalf("Workers after SetWorkers(0) = %d, want 1", linalg.Workers())
	}
	linalg.SetWorkers(1 << 20)
	if linalg.Workers() != 32 {
		t.Fatalf("Workers after huge SetWorkers = %d, want clamp 32", linalg.Workers())
	}
	if got := linalg.SetWorkers(4); got != 32 {
		t.Fatalf("SetWorkers returned previous = %d, want 32", got)
	}
}

// TestParRowsCoverage asserts the sharding covers [0, n) exactly once
// with disjoint contiguous ranges, for worker counts and sizes around
// the serial-fallback threshold.
func TestParRowsCoverage(t *testing.T) {
	prev := linalg.Workers()
	defer linalg.SetWorkers(prev)
	type span struct{ lo, hi int }
	for _, workers := range []int{1, 2, 3, 8} {
		linalg.SetWorkers(workers)
		for _, n := range []int{0, 1, 7, 100, 10000} {
			for _, perRow := range []int{1, 3, 5000} {
				var mu chan span = make(chan span, 64)
				linalg.ParRows(n, n*perRow, func(lo, hi int) { mu <- span{lo, hi} })
				close(mu)
				var spans []span
				for s := range mu {
					spans = append(spans, s)
				}
				sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
				at := 0
				for _, s := range spans {
					if s.lo != at || s.hi <= s.lo {
						t.Fatalf("workers=%d n=%d perRow=%d: bad shard %+v (cursor %d, all %v)",
							workers, n, perRow, s, at, spans)
					}
					at = s.hi
				}
				if at != n {
					t.Fatalf("workers=%d n=%d perRow=%d: covered [0,%d), want [0,%d)", workers, n, perRow, at, n)
				}
			}
		}
	}
}

// TestMatVecParallelDeterminism asserts the sharded CSR matvec is
// bit-for-bit identical across worker counts 1, 2, and 8 — the
// determinism contract the experiments' reproducibility rests on. The
// problem is sized so the pool actually engages (nnz well above the
// per-shard minimum).
func TestMatVecParallelDeterminism(t *testing.T) {
	prev := linalg.Workers()
	defer linalg.SetWorkers(prev)
	n := 8000
	s := laplacian1D(n)
	for _, f := range []arith.Format{
		arith.Posit16e2,
		arith.Float32,
		arith.Posit(posit.Posit16e2), // generic scalar-fallback kernels
	} {
		sn := s.ToFormat(f, false)
		x := make([]arith.Num, n)
		for i := range x {
			x[i] = f.FromFloat64(float64(i%17) - 8.25)
		}
		var ref []arith.Num
		for _, w := range []int{1, 2, 8} {
			linalg.SetWorkers(w)
			y := linalg.NewVec(f, n)
			sn.MatVec(x, y)
			if ref == nil {
				ref = append([]arith.Num(nil), y...)
				continue
			}
			for i := range y {
				if y[i] != ref[i] {
					t.Fatalf("%s: MatVec with %d workers differs at row %d: %#x vs %#x",
						f.Name(), w, i, y[i], ref[i])
				}
			}
		}
	}
}
