package linalg

import "positlab/internal/arith"

// Dense is a square dense float64 matrix, row-major. It backs the
// Cholesky paths (the paper's direct solver operates on dense
// symmetric matrices; the test matrices are at most ~1100×1100).
type Dense struct {
	N int
	A []float64
}

// NewDense allocates an N×N zero matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, A: make([]float64, n*n)}
}

// At returns A[i,j].
func (d *Dense) At(i, j int) float64 { return d.A[i*d.N+j] }

// Set assigns A[i,j].
func (d *Dense) Set(i, j int, v float64) { d.A[i*d.N+j] = v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{N: d.N, A: append([]float64(nil), d.A...)}
}

// MatVecF64 computes y = A·x.
func (d *Dense) MatVecF64(x, y []float64) {
	checkLen(len(x), d.N)
	checkLen(len(y), d.N)
	for i := 0; i < d.N; i++ {
		row := d.A[i*d.N : (i+1)*d.N]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// DenseNum is a dense matrix in a target format.
type DenseNum struct {
	F arith.Format
	N int
	A []arith.Num
}

// NewDenseNum allocates an N×N zero matrix in format f.
func NewDenseNum(f arith.Format, n int) *DenseNum {
	m := &DenseNum{F: f, N: n, A: make([]arith.Num, n*n)}
	z := f.Zero()
	for i := range m.A {
		m.A[i] = z
	}
	return m
}

// ToFormat rounds a dense float64 matrix into format f, clamping
// overflow to the largest finite value when clamp is set.
func (d *Dense) ToFormat(f arith.Format, clamp bool) *DenseNum {
	m := &DenseNum{F: f, N: d.N, A: make([]arith.Num, len(d.A))}
	for i, v := range d.A {
		if clamp {
			m.A[i] = arith.FromFloat64Clamped(f, v)
		} else {
			m.A[i] = f.FromFloat64(v)
		}
	}
	return m
}

// At returns A[i,j].
func (m *DenseNum) At(i, j int) arith.Num { return m.A[i*m.N+j] }

// Set assigns A[i,j].
func (m *DenseNum) Set(i, j int, v arith.Num) { m.A[i*m.N+j] = v }

// Row returns row i as a slice sharing the matrix's storage — the
// contiguous operand the slice kernels want (the row-oriented Cholesky
// feeds kernel calls whole row segments instead of At/Set scalars).
func (m *DenseNum) Row(i int) []arith.Num { return m.A[i*m.N : (i+1)*m.N] }

// Clone returns a deep copy.
func (m *DenseNum) Clone() *DenseNum {
	return &DenseNum{F: m.F, N: m.N, A: append([]arith.Num(nil), m.A...)}
}

// ToFloat64 converts back to a float64 dense matrix (exact).
func (m *DenseNum) ToFloat64() *Dense {
	d := NewDense(m.N)
	for i, v := range m.A {
		d.A[i] = m.F.ToFloat64(v)
	}
	return d
}

// HasBad reports any exceptional entry.
func (m *DenseNum) HasBad() bool { return HasBad(m.F, m.A) }
