package linalg

import (
	"errors"
	"math"
)

// ErrNotPD reports a float64 Cholesky breakdown.
var ErrNotPD = errors.New("linalg: matrix not positive definite")

// CholeskyF64 computes the upper-triangular R with A = RᵀR in float64.
// Used for reference solves and for condition-number measurement of the
// generated suite; the format-generic factorization lives in
// internal/solvers.
func CholeskyF64(a *Dense) (*Dense, error) {
	n := a.N
	r := NewDense(n)
	for j := 0; j < n; j++ {
		s := a.At(j, j)
		for k := 0; k < j; k++ {
			s -= r.At(k, j) * r.At(k, j)
		}
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, ErrNotPD
		}
		piv := math.Sqrt(s)
		r.Set(j, j, piv)
		for i := j + 1; i < n; i++ {
			t := a.At(j, i)
			for k := 0; k < j; k++ {
				t -= r.At(k, j) * r.At(k, i)
			}
			r.Set(j, i, t/piv)
		}
	}
	return r, nil
}

// SolveCholF64 solves (RᵀR)·x = b given the upper factor R.
func SolveCholF64(r *Dense, b []float64) []float64 {
	n := r.N
	y := append([]float64(nil), b...)
	for i := 0; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= r.At(j, i) * y[j]
		}
		y[i] = s / r.At(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * y[j]
		}
		y[i] = s / r.At(i, i)
	}
	return y
}

// CondViaCholesky measures the spectral condition number of an SPD
// matrix: λmax by Lanczos, λmin by inverse power iteration through a
// float64 Cholesky factorization. Unlike plain Lanczos, the inverse
// iteration resolves λmin reliably even at condition numbers ~1e11
// where the small end of the spectrum is exponentially clustered.
func CondViaCholesky(a *Sparse) float64 {
	_, lmax, err := Lanczos(a, 100)
	if err != nil || lmax <= 0 {
		return math.NaN()
	}
	r, err := CholeskyF64(a.ToDense())
	if err != nil {
		return math.NaN()
	}
	n := a.N
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
		if i%2 == 1 {
			v[i] = -v[i]
		}
	}
	var mu float64
	for k := 0; k < 40; k++ {
		w := SolveCholF64(r, v)
		nw := Norm2F64(w)
		if nw == 0 || math.IsNaN(nw) || math.IsInf(nw, 0) {
			return math.NaN()
		}
		mu = nw // ≈ 1/λmin once converged (‖v‖ = 1)
		for i := range w {
			v[i] = w[i] / nw
		}
	}
	// Rayleigh quotient through A for the final eigenvalue estimate.
	av := make([]float64, n)
	a.MatVecF64(v, av)
	lmin := DotF64(v, av)
	if lmin <= 0 {
		lmin = 1 / mu
	}
	return lmax / lmin
}
