package linalg_test

import (
	"math"
	"testing"

	"positlab/internal/linalg"
)

func TestSymEigenvaluesKnown(t *testing.T) {
	// Diagonal matrix.
	d := linalg.NewDense(3)
	d.Set(0, 0, 5)
	d.Set(1, 1, -2)
	d.Set(2, 2, 1)
	eigs, err := linalg.SymEigenvalues(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{-2, 1, 5} {
		if math.Abs(eigs[i]-want) > 1e-12 {
			t.Fatalf("diag eigs = %v", eigs)
		}
	}
	// 2x2 full: [[2,1],[1,2]] -> 1, 3.
	m := linalg.NewDense(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	eigs, err = linalg.SymEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eigs[0]-1) > 1e-12 || math.Abs(eigs[1]-3) > 1e-12 {
		t.Fatalf("2x2 eigs = %v", eigs)
	}
	// 1x1.
	one := linalg.NewDense(1)
	one.Set(0, 0, 7)
	eigs, err = linalg.SymEigenvalues(one)
	if err != nil || eigs[0] != 7 {
		t.Fatalf("1x1: %v %v", eigs, err)
	}
}

// Full Laplacian spectrum against the analytic eigenvalues.
func TestSymEigenvaluesLaplacian(t *testing.T) {
	n := 60
	s := laplacian1D(n)
	eigs, err := linalg.SymEigenvaluesSparse(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(eigs) != n {
		t.Fatalf("eigenvalue count %d", len(eigs))
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(eigs[k-1]-want) > 1e-10 {
			t.Fatalf("eig %d = %.14g, want %.14g", k, eigs[k-1], want)
		}
	}
}

// Trace and Frobenius invariants: Σλ = tr(A), Σλ² = ‖A‖²_F for
// symmetric A.
func TestSymEigenvaluesInvariants(t *testing.T) {
	// A pseudo-random dense symmetric matrix.
	n := 25
	d := linalg.NewDense(n)
	x := uint64(12345)
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := next()
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	eigs, err := linalg.SymEigenvalues(d)
	if err != nil {
		t.Fatal(err)
	}
	var trace, frob2, sumEig, sumEig2 float64
	for i := 0; i < n; i++ {
		trace += d.At(i, i)
		for j := 0; j < n; j++ {
			frob2 += d.At(i, j) * d.At(i, j)
		}
	}
	for _, l := range eigs {
		sumEig += l
		sumEig2 += l * l
	}
	if math.Abs(trace-sumEig) > 1e-10*math.Abs(trace)+1e-10 {
		t.Errorf("trace %v != sum of eigenvalues %v", trace, sumEig)
	}
	if math.Abs(frob2-sumEig2) > 1e-10*frob2 {
		t.Errorf("frobenius² %v != sum of λ² %v", frob2, sumEig2)
	}
}

// The full solver must agree with Lanczos extremes on a suite-sized
// random sparse SPD matrix.
func TestSymEigenvaluesMatchesLanczos(t *testing.T) {
	s := laplacian1D(120)
	eigs, err := linalg.SymEigenvaluesSparse(s)
	if err != nil {
		t.Fatal(err)
	}
	lmin, lmax, err := linalg.Lanczos(s, 120)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eigs[0]-lmin)/lmin > 1e-6 {
		t.Errorf("λmin: full %v vs Lanczos %v", eigs[0], lmin)
	}
	if math.Abs(eigs[len(eigs)-1]-lmax)/lmax > 1e-8 {
		t.Errorf("λmax: full %v vs Lanczos %v", eigs[len(eigs)-1], lmax)
	}
}
