package linalg

import (
	"fmt"
	"math"
)

// TridiagEigenvalues computes all eigenvalues of the symmetric
// tridiagonal matrix with diagonal d and off-diagonal e (len(e) =
// len(d)-1) using the implicit QL algorithm with Wilkinson shifts
// (the classic tql1). The inputs are not modified; eigenvalues are
// returned in ascending order.
func TridiagEigenvalues(d, e []float64) ([]float64, error) {
	n := len(d)
	if len(e) != n-1 && !(n == 1 && len(e) == 0) {
		return nil, fmt.Errorf("linalg: off-diagonal length %d, want %d", len(e), n-1)
	}
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)
	ee[n-1] = 0

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small off-diagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= math.SmallestNonzeroFloat64 || math.Abs(ee[m]) <= 1e-16*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 60 {
				return nil, fmt.Errorf("linalg: QL failed to converge at row %d", l)
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	sortFloat64s(dd)
	return dd, nil
}

func sortFloat64s(x []float64) {
	// Insertion sort is fine for the sizes involved (Lanczos subspace
	// dimensions of a few hundred); avoids importing sort for a slice
	// that is nearly ordered anyway.
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// Lanczos estimates the extreme eigenvalues of the symmetric matrix A
// (given as a float64 CSR) by m steps of the Lanczos iteration with
// full reorthogonalization, started from a fixed deterministic vector.
// It returns (λmin, λmax) estimates. For SPD matrices λmax converges in
// a few dozen steps; λmin of very ill-conditioned matrices is an
// estimate from below of limited relative accuracy.
func Lanczos(a *Sparse, steps int) (lmin, lmax float64, err error) {
	n := a.N
	if n == 0 {
		return 0, 0, fmt.Errorf("linalg: empty matrix")
	}
	if steps > n {
		steps = n
	}
	if steps < 1 {
		steps = 1
	}
	// Deterministic start vector: alternating pattern, normalized.
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
		if i%3 == 1 {
			v[i] = -v[i]
		}
	}
	nv := Norm2F64(v)
	for i := range v {
		v[i] /= nv
	}

	basis := make([][]float64, 0, steps)
	var alphas, betas []float64
	w := make([]float64, n)
	prev := make([]float64, n)
	beta := 0.0

	for k := 0; k < steps; k++ {
		basis = append(basis, append([]float64(nil), v...))
		a.MatVecF64(v, w)
		if beta != 0 {
			AxpyF64(-beta, prev, w)
		}
		alpha := DotF64(w, v)
		AxpyF64(-alpha, v, w)
		// Full reorthogonalization (twice for stability).
		for pass := 0; pass < 2; pass++ {
			for _, q := range basis {
				AxpyF64(-DotF64(w, q), q, w)
			}
		}
		alphas = append(alphas, alpha)
		nb := Norm2F64(w)
		if nb == 0 || math.IsNaN(nb) {
			break // invariant subspace found: Ritz values are exact
		}
		if k < steps-1 {
			betas = append(betas, nb)
		}
		copy(prev, v)
		for i := range w {
			v[i] = w[i] / nb
		}
		beta = nb
	}
	if len(betas) >= len(alphas) {
		betas = betas[:len(alphas)-1]
	}
	eigs, err := TridiagEigenvalues(alphas, betas)
	if err != nil {
		return 0, 0, err
	}
	return eigs[0], eigs[len(eigs)-1], nil
}

// Norm2Est estimates ‖A‖₂ = λmax for symmetric A via Lanczos.
func Norm2Est(a *Sparse) float64 {
	_, lmax, err := Lanczos(a, 120)
	if err != nil {
		return math.NaN()
	}
	return lmax
}

// CondEst estimates the spectral condition number λmax/λmin for
// symmetric positive definite A via Lanczos.
func CondEst(a *Sparse) float64 {
	lmin, lmax, err := Lanczos(a, 200)
	if err != nil || lmin <= 0 {
		return math.NaN()
	}
	return lmax / lmin
}
