package linalg_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
)

func laplacian1D(n int) *linalg.Sparse {
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	s, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		panic(err)
	}
	return s
}

func TestSparseConstruction(t *testing.T) {
	s := laplacian1D(5)
	if s.NNZ() != 5+2*4 {
		t.Fatalf("NNZ = %d, want 13", s.NNZ())
	}
	if s.At(0, 0) != 2 || s.At(0, 1) != -1 || s.At(1, 0) != -1 || s.At(0, 2) != 0 {
		t.Fatal("At() returned wrong entries")
	}
	if !s.IsSymmetric(1e-15) {
		t.Fatal("laplacian must be symmetric")
	}
	if got := s.NormInf(); got != 4 {
		t.Fatalf("NormInf = %g, want 4", got)
	}
	if got := s.MaxAbs(); got != 2 {
		t.Fatalf("MaxAbs = %g, want 2", got)
	}
	d := s.Diag()
	for _, v := range d {
		if v != 2 {
			t.Fatal("diag entries must be 2")
		}
	}
	// Duplicate entries accumulate.
	dup, err := linalg.NewSparseFromEntries(2, []linalg.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 1, Val: 3},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if dup.At(0, 0) != 3 || dup.At(0, 1) != 3 || dup.At(1, 0) != 3 {
		t.Fatal("duplicate accumulation or symmetrization failed")
	}
	// Out-of-range entries rejected.
	if _, err := linalg.NewSparseFromEntries(2, []linalg.Entry{{Row: 5, Col: 0, Val: 1}}, false); err == nil {
		t.Fatal("out-of-range entry must error")
	}
}

func TestSparseMatVec(t *testing.T) {
	s := laplacian1D(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	s.MatVecF64(x, y)
	want := []float64{0, 0, 0, 5} // tridiag(-1,2,-1)*[1,2,3,4]
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MatVecF64 = %v, want %v", y, want)
		}
	}
	// Format matvec agrees with float64 for exactly representable data.
	for _, f := range []arith.Format{arith.Float32, arith.Posit32e2, arith.Float16, arith.Posit16e2} {
		sn := s.ToFormat(f, false)
		xf := linalg.VecFromFloat64(f, x)
		yf := linalg.NewVec(f, 4)
		sn.MatVec(xf, yf)
		got := linalg.VecToFloat64(f, yf)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s MatVec = %v, want %v", f.Name(), got, want)
			}
		}
	}
}

func TestMatVecT(t *testing.T) {
	// Nonsymmetric 3x3: A = [[1,2,0],[0,3,4],[5,0,6]].
	s, err := linalg.NewSparseFromEntries(3, []linalg.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 1, Val: 3}, {Row: 1, Col: 2, Val: 4},
		{Row: 2, Col: 0, Val: 5}, {Row: 2, Col: 2, Val: 6},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []arith.Format{arith.Float64, arith.Posit32e2} {
		sn := s.ToFormat(f, false)
		x := linalg.VecFromFloat64(f, []float64{1, 2, 3})
		y := linalg.NewVec(f, 3)
		sn.MatVecT(x, y)
		// Aᵀx = [1+15, 2+6, 8+18] = [16, 8, 26].
		got := linalg.VecToFloat64(f, y)
		for i, want := range []float64{16, 8, 26} {
			if got[i] != want {
				t.Fatalf("%s: MatVecT = %v", f.Name(), got)
			}
		}
	}
	// On a symmetric matrix MatVecT equals MatVec up to rounding order;
	// in float64 on small integers it is exact.
	sym := laplacian1D(6)
	f := arith.Float64
	sn := sym.ToFormat(f, false)
	x := linalg.VecFromFloat64(f, []float64{1, -2, 3, -4, 5, -6})
	y1 := linalg.NewVec(f, 6)
	y2 := linalg.NewVec(f, 6)
	sn.MatVec(x, y1)
	sn.MatVecT(x, y2)
	for i := range y1 {
		if f.ToFloat64(y1[i]) != f.ToFloat64(y2[i]) {
			t.Fatalf("symmetric MatVecT mismatch at %d", i)
		}
	}
}

func TestScaling(t *testing.T) {
	s := laplacian1D(3)
	s2 := s.Clone()
	s2.Scale(0.5)
	if s2.At(0, 0) != 1 || s2.At(0, 1) != -0.5 {
		t.Fatal("Scale failed")
	}
	s3 := s.Clone()
	s3.ScaleSym([]float64{1, 2, 3})
	// (DAD)[i][j] = d_i d_j a_ij
	if s3.At(0, 0) != 2 || s3.At(0, 1) != -2 || s3.At(1, 1) != 8 || s3.At(1, 2) != -6 {
		t.Fatalf("ScaleSym failed: %v %v %v %v", s3.At(0, 0), s3.At(0, 1), s3.At(1, 1), s3.At(1, 2))
	}
	if !s3.IsSymmetric(1e-15) {
		t.Fatal("two-sided scaling must preserve symmetry")
	}
}

func TestVectorOps(t *testing.T) {
	for _, f := range []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2} {
		x := linalg.VecFromFloat64(f, []float64{1, 2, 3})
		y := linalg.VecFromFloat64(f, []float64{4, -5, 6})
		if got := f.ToFloat64(linalg.Dot(f, x, y)); got != 12 {
			t.Errorf("%s: dot = %g, want 12", f.Name(), got)
		}
		if got := f.ToFloat64(linalg.NormInf(f, y)); got != 6 {
			t.Errorf("%s: norminf = %g, want 6", f.Name(), got)
		}
		if got := f.ToFloat64(linalg.Norm2(f, linalg.VecFromFloat64(f, []float64{3, 4}))); got != 5 {
			t.Errorf("%s: norm2 = %g, want 5", f.Name(), got)
		}
		z := linalg.NewVec(f, 3)
		linalg.SubVec(f, z, x, y)
		if got := linalg.VecToFloat64(f, z); got[0] != -3 || got[1] != 7 || got[2] != -3 {
			t.Errorf("%s: subvec = %v", f.Name(), got)
		}
		linalg.Axpy(f, f.FromFloat64(2), x, y) // y += 2x
		if got := linalg.VecToFloat64(f, y); got[0] != 6 || got[1] != -1 || got[2] != 12 {
			t.Errorf("%s: axpy = %v", f.Name(), got)
		}
		linalg.Scal(f, f.FromFloat64(-1), x)
		if got := linalg.VecToFloat64(f, x); got[0] != -1 {
			t.Errorf("%s: scal = %v", f.Name(), got)
		}
	}
}

func TestHasBad(t *testing.T) {
	f := arith.Float16
	v := linalg.VecFromFloat64(f, []float64{1, 1e9, 2}) // overflows
	if !linalg.HasBad(f, v) {
		t.Fatal("overflowed vector must report bad")
	}
	p := arith.Posit16e2
	v2 := linalg.VecFromFloat64(p, []float64{1, 1e9, 2}) // clamps, no NaR
	if linalg.HasBad(p, v2) {
		t.Fatal("posit vector must clamp, not go bad")
	}
}

func TestNorm2F64OverflowSafe(t *testing.T) {
	x := []float64{3e300, 4e300}
	if got := linalg.Norm2F64(x); math.Abs(got-5e300) > 1e285 {
		t.Fatalf("overflow-safe norm = %g, want 5e300", got)
	}
	if got := linalg.Norm2F64([]float64{0, 0}); got != 0 {
		t.Fatalf("zero norm = %g", got)
	}
}

func TestTridiagEigenvalues(t *testing.T) {
	// Known: diag matrix.
	eigs, err := linalg.TridiagEigenvalues([]float64{3, 1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(eigs[i]-want[i]) > 1e-12 {
			t.Fatalf("diag eigs = %v", eigs)
		}
	}
	// Known: 1D Laplacian tridiag(-1, 2, -1), eigenvalues
	// 2 - 2cos(kπ/(n+1)).
	n := 20
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	eigs, err = linalg.TridiagEigenvalues(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(eigs[k-1]-want) > 1e-10 {
			t.Fatalf("laplacian eig %d = %.15g, want %.15g", k, eigs[k-1], want)
		}
	}
	// 2x2 known: [[2,1],[1,2]] -> 1, 3.
	eigs, err = linalg.TridiagEigenvalues([]float64{2, 2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eigs[0]-1) > 1e-12 || math.Abs(eigs[1]-3) > 1e-12 {
		t.Fatalf("2x2 eigs = %v", eigs)
	}
	// Dimension mismatch.
	if _, err := linalg.TridiagEigenvalues([]float64{1, 2}, []float64{}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestLanczosLaplacian(t *testing.T) {
	n := 100
	s := laplacian1D(n)
	lmin, lmax, err := linalg.Lanczos(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	wantMax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	if math.Abs(lmax-wantMax)/wantMax > 1e-8 {
		t.Errorf("lmax = %.12g, want %.12g", lmax, wantMax)
	}
	if math.Abs(lmin-wantMin)/wantMin > 1e-6 {
		t.Errorf("lmin = %.12g, want %.12g", lmin, wantMin)
	}
	if got := linalg.Norm2Est(s); math.Abs(got-wantMax)/wantMax > 1e-6 {
		t.Errorf("Norm2Est = %g, want %g", got, wantMax)
	}
	cond := linalg.CondEst(s)
	wantCond := wantMax / wantMin
	if math.Abs(cond-wantCond)/wantCond > 1e-4 {
		t.Errorf("CondEst = %g, want %g", cond, wantCond)
	}
}

func TestLanczosDiagonal(t *testing.T) {
	// Explicit spectrum: diag(1..50); extremes must be found exactly.
	n := 50
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: float64(i + 1)})
	}
	s, _ := linalg.NewSparseFromEntries(n, entries, false)
	lmin, lmax, err := linalg.Lanczos(s, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lmin-1) > 1e-8 || math.Abs(lmax-50) > 1e-8 {
		t.Fatalf("diag spectrum extremes = (%g, %g), want (1, 50)", lmin, lmax)
	}
}

func TestDense(t *testing.T) {
	s := laplacian1D(4)
	d := s.ToDense()
	if d.At(0, 0) != 2 || d.At(0, 1) != -1 || d.At(0, 3) != 0 {
		t.Fatal("ToDense wrong")
	}
	x := []float64{1, 2, 3, 4}
	ys, yd := make([]float64, 4), make([]float64, 4)
	s.MatVecF64(x, ys)
	d.MatVecF64(x, yd)
	for i := range ys {
		if ys[i] != yd[i] {
			t.Fatal("dense and sparse matvec disagree")
		}
	}
	// Format round trip.
	dn := d.ToFormat(arith.Posit32e2, false)
	back := dn.ToFloat64()
	for i := range back.A {
		if back.A[i] != d.A[i] {
			t.Fatal("dense format round-trip failed for exact values")
		}
	}
	if dn.HasBad() {
		t.Fatal("no exceptional entries expected")
	}
}
