package linalg

import (
	"fmt"
	"math"
)

// SymEigenvalues computes all eigenvalues of a dense symmetric matrix
// by Householder tridiagonalization followed by the implicit-QL
// iteration, returned in ascending order. It is the full-spectrum
// verification path for the generated suite (Lanczos only resolves the
// extremes reliably) and for small direct checks.
//
// Only the lower triangle of a is read; a is not modified.
func SymEigenvalues(a *Dense) ([]float64, error) {
	n := a.N
	if n == 0 {
		return nil, fmt.Errorf("linalg: empty matrix")
	}
	if n == 1 {
		return []float64{a.At(0, 0)}, nil
	}
	// Working copy of the lower triangle.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, i+1)
		for j := 0; j <= i; j++ {
			w[i][j] = a.At(i, j)
		}
	}
	d := make([]float64, n) // diagonal of the tridiagonal form
	e := make([]float64, n) // subdiagonal (e[1..n-1])

	// Householder reduction (tred1-style, eigenvalues only).
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h := 0.0
		scale := 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(w[i][k])
			}
			if scale == 0 {
				e[i] = w[i][l]
			} else {
				for k := 0; k <= l; k++ {
					w[i][k] /= scale
					h += w[i][k] * w[i][k]
				}
				f := w[i][l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				w[i][l] = f - g
				tau := 0.0
				p := make([]float64, n)
				for j := 0; j <= l; j++ {
					g = 0.0
					for k := 0; k <= j; k++ {
						g += w[j][k] * w[i][k]
					}
					for k := j + 1; k <= l; k++ {
						g += w[k][j] * w[i][k]
					}
					p[j] = g / h
					tau += p[j] * w[i][j]
				}
				hh := tau / (2 * h)
				for j := 0; j <= l; j++ {
					f = w[i][j]
					p[j] -= hh * f
					g = p[j]
					for k := 0; k <= j; k++ {
						w[j][k] -= f*p[k] + g*w[i][k]
					}
				}
			}
		} else {
			e[i] = w[i][l]
		}
		d[i] = h
	}
	for i := 0; i < n; i++ {
		d[i] = w[i][i]
	}
	return TridiagEigenvalues(d, e[1:])
}

// SymEigenvaluesSparse is SymEigenvalues on a sparse matrix, densified.
func SymEigenvaluesSparse(a *Sparse) ([]float64, error) {
	return SymEigenvalues(a.ToDense())
}
