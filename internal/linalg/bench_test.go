package linalg_test

import (
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
)

func benchMatVec(b *testing.B, f arith.Format) {
	a := laplacian1D(1000)
	an := a.ToFormat(f, false)
	x := linalg.NewVec(f, a.N)
	one := f.One()
	for i := range x {
		x[i] = one
	}
	y := linalg.NewVec(f, a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.MatVec(x, y)
	}
}

func BenchmarkMatVec1000Float64(b *testing.B)   { benchMatVec(b, arith.Float64) }
func BenchmarkMatVec1000Float32(b *testing.B)   { benchMatVec(b, arith.Float32) }
func BenchmarkMatVec1000Posit32e2(b *testing.B) { benchMatVec(b, arith.Posit32e2) }

func BenchmarkMatVecF64Native(b *testing.B) {
	a := laplacian1D(1000)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatVecF64(x, y)
	}
}

func benchDot(b *testing.B, f arith.Format) {
	n := 1024
	x := linalg.NewVec(f, n)
	y := linalg.NewVec(f, n)
	for i := range x {
		x[i] = f.FromFloat64(float64(i%13) - 6)
		y[i] = f.FromFloat64(float64(i%7) - 3)
	}
	var sink arith.Num
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = linalg.Dot(f, x, y)
	}
	sinkNum = sink
}

var sinkNum arith.Num

func BenchmarkDot1024Float64(b *testing.B)   { benchDot(b, arith.Float64) }
func BenchmarkDot1024Posit32e2(b *testing.B) { benchDot(b, arith.Posit32e2) }

func BenchmarkLanczos(b *testing.B) {
	a := laplacian1D(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linalg.Lanczos(a, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigenvalues100(b *testing.B) {
	a := laplacian1D(100).ToDense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SymEigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}
