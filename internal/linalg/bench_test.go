package linalg_test

import (
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

func benchMatVec(b *testing.B, f arith.Format) {
	a := laplacian1D(1000)
	an := a.ToFormat(f, false)
	x := linalg.NewVec(f, a.N)
	one := f.One()
	for i := range x {
		x[i] = one
	}
	y := linalg.NewVec(f, a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.MatVec(x, y)
	}
}

func BenchmarkMatVec1000Float64(b *testing.B)   { benchMatVec(b, arith.Float64) }
func BenchmarkMatVec1000Float32(b *testing.B)   { benchMatVec(b, arith.Float32) }
func BenchmarkMatVec1000Float16(b *testing.B)   { benchMatVec(b, arith.Float16) }
func BenchmarkMatVec1000Posit32e2(b *testing.B) { benchMatVec(b, arith.Posit32e2) }
func BenchmarkMatVec1000Posit16e1(b *testing.B) { benchMatVec(b, arith.Posit16e1) }

func BenchmarkMatVecF64Native(b *testing.B) {
	a := laplacian1D(1000)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatVecF64(x, y)
	}
}

func benchDot(b *testing.B, f arith.Format) {
	n := 1024
	x := linalg.NewVec(f, n)
	y := linalg.NewVec(f, n)
	for i := range x {
		x[i] = f.FromFloat64(float64(i%13) - 6)
		y[i] = f.FromFloat64(float64(i%7) - 3)
	}
	var sink arith.Num
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = linalg.Dot(f, x, y)
	}
	sinkNum = sink
}

var sinkNum arith.Num

func BenchmarkDot1024Float64(b *testing.B)   { benchDot(b, arith.Float64) }
func BenchmarkDot1024Float16(b *testing.B)   { benchDot(b, arith.Float16) }
func BenchmarkDot1024Posit32e2(b *testing.B) { benchDot(b, arith.Posit32e2) }
func BenchmarkDot1024Posit16e1(b *testing.B) { benchDot(b, arith.Posit16e1) }

// benchCholesky200 times the full kernel-backed factorization at the
// n=200 size used by the kernel-speedup records (the solvers package
// keeps its own n=100 series; this one stresses longer trailing rows).
func benchCholesky200(b *testing.B, f arith.Format) {
	a := laplacian1D(200).ToDense().ToFormat(f, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solvers.Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky200Float64(b *testing.B)   { benchCholesky200(b, arith.Float64) }
func BenchmarkCholesky200Float32(b *testing.B)   { benchCholesky200(b, arith.Float32) }
func BenchmarkCholesky200Float16(b *testing.B)   { benchCholesky200(b, arith.Float16) }
func BenchmarkCholesky200BFloat16(b *testing.B)  { benchCholesky200(b, arith.BFloat16) }
func BenchmarkCholesky200Posit32e2(b *testing.B) { benchCholesky200(b, arith.Posit32e2) }
func BenchmarkCholesky200Posit16e2(b *testing.B) { benchCholesky200(b, arith.Posit16e2) }
func BenchmarkCholesky200Posit16e1(b *testing.B) { benchCholesky200(b, arith.Posit16e1) }

func BenchmarkLanczos(b *testing.B) {
	a := laplacian1D(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linalg.Lanczos(a, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigenvalues100(b *testing.B) {
	a := laplacian1D(100).ToDense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SymEigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}
