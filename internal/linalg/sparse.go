package linalg

import (
	"fmt"
	"math"
	"sort"

	"positlab/internal/arith"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Entry is one coordinate-format matrix element.
type Entry struct {
	Row, Col int
	Val      float64
}

// Sparse is a square sparse matrix in CSR with float64 entries — the
// "master" representation the experiments cast down from, mirroring the
// paper's practice of loading matrices in extended precision before
// conversion to the format under test. Symmetric matrices store both
// triangles so that matvec needs no special casing.
type Sparse struct {
	N      int
	RowPtr []int // length N+1
	Col    []int
	Val    []float64
}

// NewSparseFromEntries builds CSR from coordinate entries. Duplicate
// coordinates are summed. If symmetrize is true, each off-diagonal
// (i,j) implies (j,i) with the same value (MatrixMarket "symmetric"
// storage convention).
func NewSparseFromEntries(n int, entries []Entry, symmetrize bool) (*Sparse, error) {
	type key struct{ r, c int }
	acc := make(map[key]float64, len(entries)*2)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("linalg: entry (%d,%d) outside %d×%d", e.Row, e.Col, n, n)
		}
		acc[key{e.Row, e.Col}] += e.Val
		if symmetrize && e.Row != e.Col {
			acc[key{e.Col, e.Row}] += e.Val
		}
	}
	s := &Sparse{N: n, RowPtr: make([]int, n+1)}
	keys := make([]key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].r != keys[j].r {
			return keys[i].r < keys[j].r
		}
		return keys[i].c < keys[j].c
	})
	s.Col = make([]int, len(keys))
	s.Val = make([]float64, len(keys))
	for i, k := range keys {
		s.Col[i] = k.c
		s.Val[i] = acc[k]
		s.RowPtr[k.r+1]++
	}
	for i := 0; i < n; i++ {
		s.RowPtr[i+1] += s.RowPtr[i]
	}
	return s, nil
}

// NNZ returns the stored nonzero count (both triangles for symmetric).
func (s *Sparse) NNZ() int { return len(s.Val) }

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	c := &Sparse{
		N:      s.N,
		RowPtr: append([]int(nil), s.RowPtr...),
		Col:    append([]int(nil), s.Col...),
		Val:    append([]float64(nil), s.Val...),
	}
	return c
}

// At returns A[i,j] (zero when not stored). Rows are column-sorted, so
// a binary search suffices.
func (s *Sparse) At(i, j int) float64 {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	idx := sort.SearchInts(s.Col[lo:hi], j)
	if idx < hi-lo && s.Col[lo+idx] == j {
		return s.Val[lo+idx]
	}
	return 0
}

// MatVecF64 computes y = A·x in float64.
func (s *Sparse) MatVecF64(x, y []float64) {
	checkLen(len(x), s.N)
	checkLen(len(y), s.N)
	for i := 0; i < s.N; i++ {
		sum := 0.0
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			sum += s.Val[idx] * x[s.Col[idx]]
		}
		y[i] = sum
	}
}

// Scale multiplies every entry by alpha in place.
func (s *Sparse) Scale(alpha float64) {
	for i := range s.Val {
		s.Val[i] *= alpha
	}
}

// ScaleSym applies the two-sided diagonal scaling A ← D·A·D in place,
// where D = diag(d).
func (s *Sparse) ScaleSym(d []float64) {
	checkLen(len(d), s.N)
	for i := 0; i < s.N; i++ {
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			s.Val[idx] *= d[i] * d[s.Col[idx]]
		}
	}
}

// Diag returns the diagonal as a dense slice.
func (s *Sparse) Diag() []float64 {
	d := make([]float64, s.N)
	for i := 0; i < s.N; i++ {
		d[i] = s.At(i, i)
	}
	return d
}

// NormInf returns the induced infinity norm: max row sum of |entries|.
func (s *Sparse) NormInf() float64 {
	m := 0.0
	for i := 0; i < s.N; i++ {
		sum := 0.0
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			sum += math.Abs(s.Val[idx])
		}
		if sum > m {
			m = sum
		}
	}
	return m
}

// MaxAbs returns the largest entry magnitude.
func (s *Sparse) MaxAbs() float64 {
	m := 0.0
	for _, v := range s.Val {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// NormFrob returns the Frobenius norm.
func (s *Sparse) NormFrob() float64 {
	return Norm2F64(s.Val)
}

// RowNormInf returns max|A[i,:]| for each row (entry magnitudes, not
// sums) — the quantity Higham's equilibration (Algorithm 5) uses.
func (s *Sparse) RowNormInf() []float64 {
	r := make([]float64, s.N)
	for i := 0; i < s.N; i++ {
		m := 0.0
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			if a := math.Abs(s.Val[idx]); a > m {
				m = a
			}
		}
		r[i] = m
	}
	return r
}

// IsSymmetric checks structural and numerical symmetry to a relative
// tolerance.
func (s *Sparse) IsSymmetric(tol float64) bool {
	scale := s.MaxAbs()
	for i := 0; i < s.N; i++ {
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			j := s.Col[idx]
			if math.Abs(s.Val[idx]-s.At(j, i)) > tol*scale {
				return false
			}
		}
	}
	return true
}

// Entries returns the coordinate list of stored entries.
func (s *Sparse) Entries() []Entry {
	out := make([]Entry, 0, len(s.Val))
	for i := 0; i < s.N; i++ {
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			out = append(out, Entry{Row: i, Col: s.Col[idx], Val: s.Val[idx]})
		}
	}
	return out
}

// ToDense expands to a dense float64 matrix (row-major).
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.N)
	for i := 0; i < s.N; i++ {
		for idx := s.RowPtr[i]; idx < s.RowPtr[i+1]; idx++ {
			d.Set(i, s.Col[idx], s.Val[idx])
		}
	}
	return d
}

// SparseNum is a sparse matrix cast into a target format.
type SparseNum struct {
	F      arith.Format
	N      int
	RowPtr []int
	Col    []int
	Val    []arith.Num
}

// ToFormat rounds every entry into format f. When clamp is true,
// magnitudes beyond f's largest finite value are clamped to it (the
// mixed-precision loading rule); otherwise they become Inf/NaR and the
// caller must detect the failure.
func (s *Sparse) ToFormat(f arith.Format, clamp bool) *SparseNum {
	m := &SparseNum{
		F:      f,
		N:      s.N,
		RowPtr: s.RowPtr,
		Col:    s.Col,
		Val:    make([]arith.Num, len(s.Val)),
	}
	for i, v := range s.Val {
		if clamp {
			m.Val[i] = arith.FromFloat64Clamped(f, v)
		} else {
			m.Val[i] = f.FromFloat64(v)
		}
	}
	return m
}

// MatVec computes y = A·x in the matrix's format, rounding after every
// multiply and add. Rows are independent sequential accumulations, so
// they shard across the worker pool (see SetWorkers) with bit-identical
// results for any worker count; within a row the accumulation stays
// strictly left-to-right.
func (m *SparseNum) MatVec(x, y []arith.Num) {
	checkLen(len(x), m.N)
	checkLen(len(y), m.N)
	bk := arith.BulkOf(m.F)
	parRange(m.N, m.NNZ(), func(lo, hi int) {
		bk.MatVecKernel(m.RowPtr[lo:hi+1], m.Col, m.Val, x, y[lo:hi])
	})
}

// NNZ returns the stored nonzero count.
func (m *SparseNum) NNZ() int { return len(m.Val) }

// MatVecT computes y = Aᵀ·x in the matrix's format by scattering along
// rows. Note the accumulation order differs from MatVec even for
// symmetric matrices, so results may differ in the last rounding.
func (m *SparseNum) MatVecT(x, y []arith.Num) {
	checkLen(len(x), m.N)
	checkLen(len(y), m.N)
	f := m.F
	z := f.Zero()
	for i := range y {
		y[i] = z
	}
	for i := 0; i < m.N; i++ {
		xi := x[i]
		if f.IsZero(xi) {
			continue
		}
		for idx := m.RowPtr[i]; idx < m.RowPtr[i+1]; idx++ {
			j := m.Col[idx]
			y[j] = f.Add(y[j], f.Mul(m.Val[idx], xi))
		}
	}
}

// HasBad reports any exceptional entry (overflow during conversion).
func (m *SparseNum) HasBad() bool {
	return HasBad(m.F, m.Val)
}
