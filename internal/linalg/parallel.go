package linalg

import (
	"sync"
	"sync/atomic"
)

// Deterministic in-solver parallelism.
//
// The only loops sharded here are provably order-independent: CSR
// matvec rows and Cholesky trailing-update rows, where each output
// element is produced by its own strictly sequential chain of rounded
// operations and no element is read by another shard. Splitting such a
// loop across workers changes *when* each chain runs, never the chain
// itself, so results are bit-identical to the serial path for every
// worker count — the differential tests assert this for counts 1, 2,
// and 8. Reductions (Dot, norms) are NOT sharded: their accumulation
// order is the rounding order, and the paper's methodology fixes it to
// strictly left-to-right serial.
//
// The pool is bounded and lazy: no goroutines exist until a caller
// raises the worker count above 1, and at most maxWorkers ever run.

// maxWorkers bounds the pool; SetWorkers clamps to it.
const maxWorkers = 32

// minParWork is the smallest per-shard element count worth handing to
// a worker; below workers*minParWork total elements the serial path is
// faster than the handoff.
const minParWork = 2048

var (
	workerCount atomic.Int32 // 0 or 1 = serial
	poolOnce    sync.Once
	poolCh      chan func()
)

// SetWorkers sets the in-solver worker count for order-independent
// loops and returns the previous value. n <= 1 selects the serial
// path; n is clamped to the pool bound (32). Safe for concurrent use,
// but intended to be set once at startup (the experiments binary's
// -par flag) or around a test.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	return int(workerCount.Swap(int32(n)))
}

// Workers returns the current in-solver worker count (minimum 1).
func Workers() int {
	if n := int(workerCount.Load()); n > 1 {
		return n
	}
	return 1
}

func ensurePool() {
	poolOnce.Do(func() {
		poolCh = make(chan func(), maxWorkers)
		for i := 0; i < maxWorkers; i++ {
			go func() {
				for fn := range poolCh {
					fn()
				}
			}()
		}
	})
}

// ParRows shards body over [0, n) row indices exactly like the
// package's own kernels do — callers (the solvers' trailing updates)
// must guarantee the rows are order-independent: each index's work is
// its own sequential chain of rounded operations and writes only state
// owned by that index. work is the total element count behind the n
// rows, used to decide whether sharding pays at all.
func ParRows(n, work int, body func(lo, hi int)) { parRange(n, work, body) }

// parRange runs body over [0, n) split into contiguous shards across
// the worker pool, and returns once every shard completes. work is the
// total element count behind the n indices (nnz for a matvec over n
// rows), used to decide how many shards the job can amortize. Shards
// are disjoint, so body must only write state owned by its own index
// range. Falls back to one serial call when the worker count is 1 or
// the work is too small to pay for the handoff.
func parRange(n, work int, body func(lo, hi int)) {
	w := Workers()
	if w > work/minParWork {
		w = work / minParWork
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	ensurePool()
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 0; k < w-1; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		fn := func() {
			defer wg.Done()
			body(lo, hi)
		}
		poolCh <- fn
	}
	body((w - 1) * n / w, n) // last shard runs on the caller
	wg.Wait()
}
