// Package linalg provides the linear-algebra substrate for the study:
// vectors and matrices over any arith.Format, float64 master
// representations of the test matrices, norms, and a Lanczos extreme
// eigenvalue estimator used to report ‖A‖₂ and condition numbers.
//
// Everything format-generic rounds after every operation (no fused
// accumulation), matching the paper's methodology.
package linalg

import (
	"fmt"

	"positlab/internal/arith"
)

// NewVec allocates a zero vector of length n in format f.
func NewVec(f arith.Format, n int) []arith.Num {
	v := make([]arith.Num, n)
	z := f.Zero()
	for i := range v {
		v[i] = z
	}
	return v
}

// VecFromFloat64 rounds a float64 vector into format f.
func VecFromFloat64(f arith.Format, xs []float64) []arith.Num {
	v := make([]arith.Num, len(xs))
	for i, x := range xs {
		v[i] = f.FromFloat64(x)
	}
	return v
}

// VecToFloat64 converts a format vector to float64 (exact for all
// supported formats).
func VecToFloat64(f arith.Format, x []arith.Num) []float64 {
	v := make([]float64, len(x))
	for i := range x {
		v[i] = f.ToFloat64(x[i])
	}
	return v
}

// CopyVec copies src into dst.
func CopyVec(dst, src []arith.Num) {
	copy(dst, src)
}

// Dot returns <x, y> accumulated in format f, rounding after every
// multiply and add (no deferred rounding). The accumulation is a
// reduction, so it always runs strictly left-to-right serial — only
// the per-element dispatch is batched through the kernel layer.
func Dot(f arith.Format, x, y []arith.Num) arith.Num {
	checkLen(len(x), len(y))
	return arith.BulkOf(f).DotKernel(x, y)
}

// Axpy computes y ← y + α·x in place.
func Axpy(f arith.Format, alpha arith.Num, x, y []arith.Num) {
	checkLen(len(x), len(y))
	arith.BulkOf(f).AxpyKernel(alpha, x, y)
}

// MulAddVec computes dst ← fl(fl(α·x)) + y elementwise — dst[i] =
// MulAdd(α, x[i], y[i]). dst may alias x or y (the CG direction update
// p ← r + β·p calls it with dst = x = p).
func MulAddVec(f arith.Format, alpha arith.Num, x, y, dst []arith.Num) {
	checkLen(len(x), len(y))
	checkLen(len(dst), len(x))
	arith.BulkOf(f).MulAddKernel(alpha, x, y, dst)
}

// Scal computes x ← α·x in place.
func Scal(f arith.Format, alpha arith.Num, x []arith.Num) {
	arith.BulkOf(f).ScaleKernel(alpha, x)
}

// SubVec computes dst ← a - b elementwise.
func SubVec(f arith.Format, dst, a, b []arith.Num) {
	checkLen(len(a), len(b))
	checkLen(len(dst), len(a))
	for i := range a {
		dst[i] = f.Sub(a[i], b[i])
	}
}

// Norm2 returns ‖x‖₂ computed in format f.
func Norm2(f arith.Format, x []arith.Num) arith.Num {
	return f.Sqrt(Dot(f, x, x))
}

// NormInf returns max|xᵢ| computed in format f.
func NormInf(f arith.Format, x []arith.Num) arith.Num {
	m := f.Zero()
	for i := range x {
		a := x[i]
		if f.Less(a, f.Zero()) {
			a = f.Neg(a)
		}
		if f.Less(m, a) {
			m = a
		}
	}
	return m
}

// HasBad reports whether any component is exceptional (NaR/NaN/Inf).
func HasBad(f arith.Format, x []arith.Num) bool {
	for i := range x {
		if f.Bad(x[i]) {
			return true
		}
	}
	return false
}

func checkLen(a, b int) {
	if a != b {
		// Mismatched vector lengths are caller programmer error, the
		// same contract as the stdlib's copy/append invariants.
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", a, b)) //lint:allow panics dimension invariant, caller bug by contract
	}
}

// --- float64 vector helpers (reference/working precision paths) ---

// DotF64 returns <x, y> in float64.
func DotF64(x, y []float64) float64 {
	checkLen(len(x), len(y))
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2F64 returns ‖x‖₂ in float64 with overflow-safe scaling.
func Norm2F64(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := v
		if a < 0 {
			a = -a
		}
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * sqrt(ssq)
}

// NormInfF64 returns max|xᵢ|.
func NormInfF64(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// AxpyF64 computes y ← y + α·x.
func AxpyF64(alpha float64, x, y []float64) {
	checkLen(len(x), len(y))
	for i := range x {
		y[i] += alpha * x[i]
	}
}
