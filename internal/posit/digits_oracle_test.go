package posit_test

// Oracle coverage for the decimal-digits envelope (paper Fig. 3):
// DecimalDigitsAt for the posit config behind every posit registry
// format is checked against a from-first-principles recomputation in
// 4096-bit big.Float arithmetic, and the minifloat equivalent behind
// every IEEE-minifloat registry format against a value-space
// enumeration of its representable grid. The shadow diagnosis report
// leans on these envelopes (shadow.EnvelopeCheck), so they get oracle
// treatment, not just spot checks.

import (
	"math"
	"math/big"
	"sort"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/bigfp"
	"positlab/internal/minifloat"
	"positlab/internal/posit"
)

// oracleDigits recomputes Config.DecimalDigitsAt independently: the
// conversion uses bigfp's reference rounder, the bracket values come
// from bigfp.PatternValue, and the relative half-gap is formed in
// 4096-bit arithmetic before the final log10.
func oracleDigits(c posit.Config, x float64) float64 {
	ax := math.Abs(x)
	if ax == 0 || math.IsNaN(ax) || math.IsInf(ax, 0) {
		return 0
	}
	n, es := c.N(), c.ES()
	maxPos := uint64(1)<<(n-1) - 1 // NaR's pattern predecessor
	bx := bigfp.New(ax)
	if bx.Cmp(bigfp.PatternValue(n, es, 1)) < 0 ||
		bx.Cmp(bigfp.PatternValue(n, es, maxPos)) > 0 {
		return 0
	}
	p := uint64(bigfp.FromFloat64Ref(c, ax))
	if p == 0 || p == uint64(c.NaR()) {
		return 0
	}
	if p == maxPos {
		p--
	}
	lo := bigfp.PatternValue(n, es, p)
	hi := bigfp.PatternValue(n, es, p+1)
	rel := new(big.Float).SetPrec(bigfp.Prec).Sub(hi, lo)
	rel.Quo(rel, new(big.Float).SetPrec(bigfp.Prec).SetInt64(2))
	rel.Quo(rel, bx)
	rf, _ := rel.Float64()
	if rf <= 0 {
		return 0
	}
	d := -math.Log10(rf)
	if d < 0 {
		return 0
	}
	return d
}

// registryPositConfigs collects the posit config behind every posit
// format in the arith registry.
func registryPositConfigs(t *testing.T) map[string]posit.Config {
	t.Helper()
	out := map[string]posit.Config{}
	for _, name := range arith.Names() {
		f := arith.MustByName(name)
		if c, ok := arith.PositConfig(f); ok {
			out[name] = c
		}
	}
	if len(out) < 16 {
		t.Fatalf("registry exposes only %d posit formats; expected the full n×es grid", len(out))
	}
	return out
}

func TestDecimalDigitsAtOracle(t *testing.T) {
	multipliers := []float64{1.0, 1.3178, 1.9371}
	for name, c := range registryPositConfigs(t) {
		c := c
		t.Run(name, func(t *testing.T) {
			minS, maxS := c.MinScale(), c.MaxScale()
			// ~60 scales per config, spanning past both range ends so the
			// zero-digit clamp regions are exercised too.
			step := (maxS - minS + 6) / 60
			if step < 1 {
				step = 1
			}
			for s := minS - 3; s <= maxS+3; s += step {
				for _, m := range multipliers {
					x := math.Ldexp(m, s)
					if math.IsInf(x, 0) || x == 0 {
						continue
					}
					got := c.DecimalDigitsAt(x)
					want := oracleDigits(c, x)
					if math.Abs(got-want) > 1e-9 {
						t.Fatalf("DecimalDigitsAt(%g) = %.12f, oracle %.12f", x, got, want)
					}
					// Sign symmetry: the envelope depends on |x| only.
					if neg := c.DecimalDigitsAt(-x); neg != got {
						t.Fatalf("DecimalDigitsAt(-%g) = %g, want %g", x, neg, got)
					}
				}
			}
		})
	}
}

func TestDecimalDigitsAtEdges(t *testing.T) {
	for name, c := range registryPositConfigs(t) {
		c := c
		t.Run(name, func(t *testing.T) {
			for _, x := range []float64{0, math.NaN(), math.Inf(1), math.Inf(-1)} {
				if d := c.DecimalDigitsAt(x); d != 0 {
					t.Errorf("DecimalDigitsAt(%v) = %g, want 0", x, d)
				}
			}
			minPos := c.ToFloat64(c.MinPos())
			maxPos := c.ToFloat64(c.MaxPos())
			if d := c.DecimalDigitsAt(minPos / 2); d != 0 {
				t.Errorf("below minpos: %g digits, want 0", d)
			}
			if d := c.DecimalDigitsAt(maxPos * 2); d != 0 {
				t.Errorf("above maxpos: %g digits, want 0", d)
			}
			// The range ends themselves use the one-sided bracket and
			// must still agree with the oracle.
			for _, x := range []float64{minPos, maxPos} {
				got, want := c.DecimalDigitsAt(x), oracleDigits(c, x)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("DecimalDigitsAt(%g) = %.12f, oracle %.12f", x, got, want)
				}
			}
		})
	}
}

// miniGrid enumerates every positive finite value of a minifloat
// format, ascending — the value-space oracle for its digit envelope.
func miniGrid(f minifloat.Format) []float64 {
	var vs []float64
	for pat := uint64(0); pat < 1<<f.Width(); pat++ {
		b := minifloat.Bits(pat)
		if f.IsNaN(b) || f.IsInf(b) {
			continue
		}
		v := f.ToFloat64(b)
		if v > 0 {
			vs = append(vs, v)
		}
	}
	sort.Float64s(vs)
	return vs
}

// miniOracleDigits recomputes minifloat DecimalDigitsAt from the
// enumerated grid: half the local gap around the rounded image of x,
// relative to x.
func miniOracleDigits(f minifloat.Format, grid []float64, x float64) float64 {
	ax := math.Abs(x)
	if ax == 0 || math.IsNaN(ax) || math.IsInf(ax, 0) {
		return 0
	}
	p := f.FromFloat64(ax)
	if f.IsInf(p) || f.IsZero(p) {
		return 0
	}
	v := f.ToFloat64(p)
	i := sort.SearchFloat64s(grid, v)
	var lo, hi float64
	if i+1 < len(grid) {
		lo, hi = grid[i], grid[i+1]
	} else {
		lo, hi = grid[i-1], grid[i] // max finite: one-sided bracket below
	}
	rel := (hi - lo) / 2 / ax
	if rel <= 0 {
		return 0
	}
	return -math.Log10(rel)
}

func TestMiniDecimalDigitsAtOracle(t *testing.T) {
	found := 0
	for _, name := range arith.Names() {
		f := arith.MustByName(name)
		m, ok := arith.MiniConfig(f)
		if !ok {
			continue
		}
		found++
		t.Run(name, func(t *testing.T) {
			grid := miniGrid(m)
			for s := math.Ilogb(grid[0]) - 2; s <= math.Ilogb(grid[len(grid)-1])+2; s++ {
				for _, mult := range []float64{1.0, 1.3178, 1.9371} {
					x := math.Ldexp(mult, s)
					got := m.DecimalDigitsAt(x)
					want := miniOracleDigits(m, grid, x)
					if math.Abs(got-want) > 1e-9 {
						t.Fatalf("DecimalDigitsAt(%g) = %.12f, oracle %.12f", x, got, want)
					}
				}
			}
			for _, x := range []float64{0, math.NaN(), math.Inf(1)} {
				if d := m.DecimalDigitsAt(x); d != 0 {
					t.Errorf("DecimalDigitsAt(%v) = %g, want 0", x, d)
				}
			}
		})
	}
	if found == 0 {
		t.Fatal("registry exposes no minifloat formats")
	}
}
