package posit

import (
	"math"
	"math/bits"
)

// unpacked is the exact interior representation of a finite nonzero
// posit: value = (-1)^sign * (sig / 2^63) * 2^scale with sig in
// [2^63, 2^64), i.e. a 1.63 fixed-point significand whose top bit is
// the implicit one. Decoding a canonical pattern is always exact.
type unpacked struct {
	sign  bool
	scale int
	sig   uint64
}

// decode unpacks a canonical nonzero non-NaR pattern. Callers must
// filter zero and NaR first.
func (c Config) decode(p Bits) unpacked {
	u := uint64(p)
	var neg bool
	if u&c.signBit() != 0 {
		neg = true
		u = (-u) & c.mask()
	}
	body := c.bodyBits() // n-1 bits after the sign
	// Left-align the body at bit 63 so the regime starts at the MSB.
	v := u << (64 - body)

	var k int
	var used uint // regime bits consumed, including terminator
	if v&(1<<63) != 0 {
		run := uint(bits.LeadingZeros64(^v))
		// A run of ones cannot extend past the body: the padding
		// below the body is zero, which terminates it.
		k = int(run) - 1
		used = run + 1
		if run >= body { // regime fills the body, no terminator
			used = body
			k = int(body) - 1
		}
	} else {
		run := uint(bits.LeadingZeros64(v))
		if run >= body { // all zeros would be 0/NaR, filtered above
			run = body
			used = body
		} else {
			used = run + 1
		}
		k = -int(run)
	}

	es := uint(c.es)
	rem := uint(0)
	if used < body {
		rem = body - used
	}
	// Exponent: up to es bits; missing low bits are implicitly zero.
	var e uint64
	if es > 0 {
		eb := es
		if rem < eb {
			eb = rem
		}
		if eb > 0 {
			e = (v << used) >> (64 - eb) << (es - eb)
		}
		if rem > es {
			rem -= es
		} else {
			rem = 0
		}
	}
	// Fraction: remaining rem bits, placed just below the implicit one.
	sig := uint64(1) << 63
	if rem > 0 {
		frac := (v << (used + es)) >> (64 - rem)
		sig |= frac << (63 - rem)
	}
	return unpacked{
		sign:  neg,
		scale: k*(1<<c.es) + int(e),
		sig:   sig,
	}
}

// Parts returns the interpreted fields of a finite nonzero posit:
// sign, regime value k, exponent e, and the fraction as a numerator
// over 2^63 (the significand below the implicit one). It is intended
// for inspection tools; arithmetic uses the unpacked form directly.
func (c Config) Parts(p Bits) (sign bool, k int, e int, frac uint64, ok bool) {
	if c.IsZero(p) || c.IsNaR(p) {
		return false, 0, 0, 0, false
	}
	u := c.decode(p)
	pow := 1 << c.es
	k = floorDiv(u.scale, pow)
	e = u.scale - k*pow
	return u.sign, k, e, u.sig << 1, true
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// ToFloat64 converts a posit to float64. The conversion is exact for
// every supported format (at most 31 significand bits and |scale| <=
// 496, both well within float64). NaR converts to NaN.
func (c Config) ToFloat64(p Bits) float64 {
	if c.IsZero(p) {
		return 0
	}
	if c.IsNaR(p) {
		return math.NaN()
	}
	u := c.decode(p)
	f := math.Ldexp(float64(u.sig), u.scale-63)
	if u.sign {
		f = -f
	}
	return f
}

// FracBits returns the number of explicit fraction bits in the encoding
// of p (0 for zero and NaR). This is the quantity histogrammed in
// Fig. 5 of the paper, where the posit advantage over Float32 is
// FracBits - 23.
func (c Config) FracBits(p Bits) int {
	if c.IsZero(p) || c.IsNaR(p) {
		return 0
	}
	u := c.decode(p)
	return c.FracBitsAtScale(u.scale)
}

// FracBitsAtScale returns how many fraction bits the format offers for
// a value of the given base-2 scale, i.e. n-1 minus regime and exponent
// field widths, clamped to [0, n-1-es].
func (c Config) FracBitsAtScale(scale int) int {
	pow := 1 << c.es
	k := floorDiv(scale, pow)
	var rlen int
	if k >= 0 {
		rlen = k + 2
	} else {
		rlen = -k + 1
	}
	fb := int(c.bodyBits()) - rlen - int(c.es)
	if fb < 0 {
		fb = 0
	}
	return fb
}
