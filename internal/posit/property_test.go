package posit_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"positlab/internal/posit"
)

// quickCfg draws patterns uniformly for a format.
func quickCfg(c posit.Config) *quick.Config {
	mask := uint64(1)<<uint(c.N()) - 1
	return &quick.Config{
		MaxCount: 3000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Uint64() & mask)
			}
		},
	}
}

func TestPropAddCommutative(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e1, posit.Posit16e1, posit.Posit16e2, posit.Posit32e2, posit.Posit32e3} {
		f := func(a, b uint64) bool {
			pa, pb := posit.Bits(a), posit.Bits(b)
			return c.Add(pa, pb) == c.Add(pb, pa)
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

func TestPropMulCommutative(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e1, posit.Posit16e2, posit.Posit32e2} {
		f := func(a, b uint64) bool {
			pa, pb := posit.Bits(a), posit.Bits(b)
			return c.Mul(pa, pb) == c.Mul(pb, pa)
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// x + (-x) == 0 exactly: posit negation is exact and subtraction of
// equal magnitudes cancels exactly.
func TestPropAddNegCancels(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e2, posit.Posit32e2} {
		f := func(a uint64) bool {
			pa := posit.Bits(a)
			if c.IsNaR(pa) {
				return c.IsNaR(c.Add(pa, c.Neg(pa)))
			}
			return c.IsZero(c.Add(pa, c.Neg(pa)))
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Multiplying by one and dividing by one are exact identities.
func TestPropMulDivByOne(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit16e1, posit.Posit32e2, posit.Posit32e3} {
		one := c.One()
		f := func(a uint64) bool {
			pa := posit.Bits(a)
			return c.Mul(pa, one) == pa && c.Div(pa, one) == pa
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// x/x == 1 for finite nonzero x.
func TestPropDivSelf(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e2, posit.Posit32e2} {
		f := func(a uint64) bool {
			pa := posit.Bits(a)
			if c.IsNaR(pa) || c.IsZero(pa) {
				return true
			}
			return c.Div(pa, pa) == c.One()
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Negation symmetry: op(-a, -b) == -op(a, b) for add; mul sign algebra.
func TestPropNegationSymmetry(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e1, posit.Posit32e2} {
		f := func(a, b uint64) bool {
			pa, pb := posit.Bits(a), posit.Bits(b)
			lhs := c.Add(c.Neg(pa), c.Neg(pb))
			rhs := c.Neg(c.Add(pa, pb))
			if lhs != rhs {
				return false
			}
			return c.Mul(c.Neg(pa), pb) == c.Neg(c.Mul(pa, pb))
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Monotonicity of conversion: float order maps to posit total order.
func TestPropFromFloat64Monotone(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e2, posit.Posit32e2} {
		f := func(xb, yb uint64) bool {
			x := math.Float64frombits(xb)
			y := math.Float64frombits(yb)
			if math.IsNaN(x) || math.IsNaN(y) {
				return true
			}
			if x > y {
				x, y = y, x
			}
			px, py := c.FromFloat64(x), c.FromFloat64(y)
			return c.Cmp(px, py) <= 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Conversion round-trip: posit -> float64 -> posit is the identity
// (every supported posit is exactly a float64).
func TestPropFloat64RoundTrip(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit32e2, posit.Posit32e3, posit.MustNew(32, 0)} {
		f := func(a uint64) bool {
			pa := posit.Bits(a)
			if c.IsNaR(pa) {
				return true
			}
			return c.FromFloat64(c.ToFloat64(pa)) == pa
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Sqrt(Mul(x,x)) tracks |x| to within the error budget imposed by the
// square's own rounding. In the golden zone that is one pattern; in the
// tapered tail, where the square may keep as few as zero fraction bits,
// the tolerance grows to about 2^(fbAbs - fbSq - 1) patterns.
func TestPropSqrtOfSquareNearAbs(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e2, posit.Posit32e2} {
		f := func(a uint64) bool {
			pa := posit.Bits(a)
			if c.IsNaR(pa) || c.IsZero(pa) {
				return true
			}
			abs := c.Abs(pa)
			sq := c.Mul(abs, abs)
			if sq == c.MaxPos() || sq == c.MinPos() {
				return true // clamped square loses the relationship
			}
			got := c.Sqrt(sq)
			// Error budget in log2 space: the square rounds by up to
			// half its local pattern gap, sqrt halves that, and the
			// sqrt itself rounds by up to half the gap at the result.
			gapLog2 := func(p posit.Bits) float64 {
				up, down := 0.0, 0.0
				if p != c.MaxPos() {
					up = math.Log2(c.ToFloat64(c.Next(p)) / c.ToFloat64(p))
				}
				if p != c.MinPos() {
					down = math.Log2(c.ToFloat64(p) / c.ToFloat64(c.Prev(p)))
				}
				return math.Max(up, down)
			}
			tol := 0.5*gapLog2(sq) + 0.5*gapLog2(abs) + 0.5*gapLog2(got) + 1e-3
			err := math.Abs(math.Log2(c.ToFloat64(got) / c.ToFloat64(abs)))
			return err <= tol
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Sqrt is monotone over nonnegative posits.
func TestPropSqrtMonotone(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e2, posit.Posit32e3} {
		f := func(a, b uint64) bool {
			pa, pb := c.Abs(posit.Bits(a)), c.Abs(posit.Bits(b))
			if c.IsNaR(pa) || c.IsNaR(pb) {
				return true
			}
			if c.Cmp(pa, pb) > 0 {
				pa, pb = pb, pa
			}
			return c.Cmp(c.Sqrt(pa), c.Sqrt(pb)) <= 0
		}
		if err := quick.Check(f, quickCfg(c)); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// Sqrt of representable even powers of two is exact.
func TestSqrtExactPowers(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e1, posit.Posit32e2} {
		for s := c.MinScale() / 2; s <= c.MaxScale()/2; s++ {
			x := c.FromFloat64(math.Ldexp(1, 2*s))
			want := c.FromFloat64(math.Ldexp(1, s))
			// At the extremes the regime squeezes out exponent bits and
			// 2^(2s) may not be representable; only exact powers apply.
			if c.ToFloat64(x) != math.Ldexp(1, 2*s) || c.ToFloat64(want) != math.Ldexp(1, s) {
				continue
			}
			if got := c.Sqrt(x); got != want {
				t.Errorf("%v: Sqrt(2^%d) = %#x, want %#x", c, 2*s, uint64(got), uint64(want))
			}
		}
	}
}

// Pattern-successor values strictly increase over the real patterns.
func TestNextStrictlyIncreasing(t *testing.T) {
	for _, cfg := range []struct{ n, es int }{{8, 0}, {8, 2}, {12, 1}, {16, 2}} {
		c := posit.MustNew(cfg.n, cfg.es)
		// Walk the total order from the most negative real to MaxPos.
		p := c.Next(c.NaR())
		prev := c.ToFloat64(p)
		for p != c.MaxPos() {
			p = c.Next(p)
			v := c.ToFloat64(p)
			if !(v > prev) {
				t.Fatalf("%v: order violation at %#x: %g !> %g", c, uint64(p), v, prev)
			}
			prev = v
		}
	}
}

// FracBitsAtScale must agree with the explicit encoding at every scale.
func TestFracBitsConsistency(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e1, posit.Posit32e2, posit.Posit32e3} {
		for s := c.MinScale(); s <= c.MaxScale(); s++ {
			p := c.FromFloat64(math.Ldexp(1, s))
			if c.IsZero(p) || c.IsNaR(p) {
				continue
			}
			if got, want := c.FracBits(p), c.FracBitsAtScale(s); got != want {
				t.Errorf("%v scale %d: FracBits=%d, FracBitsAtScale=%d", c, s, got, want)
			}
		}
	}
}

// The paper's §II numbers: posit(32,2) epsilon near one is 2^-28
// (3.73e-9); float32's is 5.96e-8. DecimalDigitsAt must reproduce the
// golden-zone advantage.
func TestGoldenZoneDigits(t *testing.T) {
	p32 := posit.Posit32e2
	dPosit := p32.DecimalDigitsAt(1.0)
	// Near 1.0 posit(32,2) has 27 fraction bits (body 31 = regime 2 +
	// es 2 + frac 27): digits = -log10(2^-28) ~ 8.43.
	if dPosit < 8.3 || dPosit > 8.6 {
		t.Errorf("posit(32,2) digits at 1.0 = %v, want ~8.43", dPosit)
	}
	// Far from one the advantage inverts: at 2^80 float32 still has 7.2
	// digits, posit(32,2) has regime ~22 bits -> ~7 fraction bits.
	dFar := p32.DecimalDigitsAt(math.Ldexp(1, 80))
	if dFar > 3.5 {
		t.Errorf("posit(32,2) digits at 2^80 = %v, want < 3.5", dFar)
	}
}

func TestDynamicRange(t *testing.T) {
	lo, hi := posit.Posit16e2.DynamicRange()
	// posit(16,2): maxpos = 2^56 ~ 7.2e16.
	if math.Abs(hi-16.86) > 0.1 || math.Abs(lo+16.86) > 0.1 {
		t.Errorf("posit(16,2) dynamic range = (%v, %v), want ±16.86", lo, hi)
	}
}
