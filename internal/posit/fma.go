package posit

import "math/bits"

// FMA returns the fused multiply-add a*b + d with a single rounding.
// The paper's headline experiments round after every operation, so the
// solvers do not use FMA; it is provided for completeness and for the
// deferred-rounding ablation alongside the quire.
func (c Config) FMA(a, b, d Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) || c.IsNaR(d) {
		return c.NaR()
	}
	if c.IsZero(a) || c.IsZero(b) {
		return d
	}
	if c.IsZero(d) {
		return c.Mul(a, b)
	}
	ua, ub, ud := c.decode(a), c.decode(b), c.decode(d)

	// Exact product as a 192-bit significand (top bit 191 set after
	// normalization), value = P / 2^191 * 2^pscale.
	phi, plo := bits.Mul64(ua.sig, ub.sig) // in [2^126, 2^128)
	pscale := ua.scale + ub.scale
	var p [3]uint64 // little-endian words: p[2] most significant
	if phi&(1<<63) != 0 {
		p = [3]uint64{0, plo, phi}
		pscale++
	} else {
		p = [3]uint64{0, plo << 1, phi<<1 | plo>>63}
	}
	psign := ua.sign != ub.sign

	// Addend as a 192-bit significand.
	q := [3]uint64{0, 0, ud.sig}
	qscale, qsign := ud.scale, ud.sign

	// Order so p has the larger magnitude.
	if qscale > pscale || (qscale == pscale && cmp192(q, p) > 0) {
		p, q = q, p
		pscale, qscale = qscale, pscale
		psign, qsign = qsign, psign
	}
	shift := uint(pscale - qscale)
	q, lost := shr192(q, shift)

	var r [3]uint64
	scale := pscale
	if psign == qsign {
		var carry uint64
		r[0], carry = bits.Add64(p[0], q[0], 0)
		r[1], carry = bits.Add64(p[1], q[1], carry)
		r[2], carry = bits.Add64(p[2], q[2], carry)
		if carry != 0 {
			if r[0]&1 != 0 {
				lost = true
			}
			r = shr192once(r)
			r[2] |= 1 << 63
			scale++
		}
	} else {
		if lost {
			// Borrow one ulp so truncation brackets from below.
			var carry uint64
			q[0], carry = bits.Add64(q[0], 1, 0)
			q[1], carry = bits.Add64(q[1], 0, carry)
			q[2], _ = bits.Add64(q[2], 0, carry)
		}
		var borrow uint64
		r[0], borrow = bits.Sub64(p[0], q[0], 0)
		r[1], borrow = bits.Sub64(p[1], q[1], borrow)
		r[2], _ = bits.Sub64(p[2], q[2], borrow)
		if r[0] == 0 && r[1] == 0 && r[2] == 0 {
			return c.Zero()
		}
		lz := leadingZeros192(r)
		if lz > 0 {
			// Massive cancellation only occurs with shift <= 1,
			// where every bit was held exactly (lost can only be set
			// for shift > 64, which forces r[2] >= 2^62).
			r = shl192(r, uint(lz))
			scale -= lz
		}
	}
	if r[0] != 0 || r[1] != 0 {
		lost = true
	}
	return c.round(psign, scale, r[2], lost)
}

func cmp192(a, b [3]uint64) int {
	for i := 2; i >= 0; i-- {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func shr192(a [3]uint64, d uint) (r [3]uint64, lost bool) {
	for d >= 64 {
		if a[0] != 0 {
			lost = true
		}
		a[0], a[1], a[2] = a[1], a[2], 0
		d -= 64
	}
	if d == 0 {
		return a, lost
	}
	if a[0]<<(64-d) != 0 {
		lost = true
	}
	r[0] = a[0]>>d | a[1]<<(64-d)
	r[1] = a[1]>>d | a[2]<<(64-d)
	r[2] = a[2] >> d
	return r, lost
}

func shr192once(a [3]uint64) [3]uint64 {
	return [3]uint64{a[0]>>1 | a[1]<<63, a[1]>>1 | a[2]<<63, a[2] >> 1}
}

func shl192(a [3]uint64, d uint) [3]uint64 {
	for d >= 64 {
		a[0], a[1], a[2] = 0, a[0], a[1]
		d -= 64
	}
	if d == 0 {
		return a
	}
	return [3]uint64{
		a[0] << d,
		a[1]<<d | a[0]>>(64-d),
		a[2]<<d | a[1]>>(64-d),
	}
}

func leadingZeros192(a [3]uint64) int {
	if a[2] != 0 {
		return bits.LeadingZeros64(a[2])
	}
	if a[1] != 0 {
		return 64 + bits.LeadingZeros64(a[1])
	}
	return 128 + bits.LeadingZeros64(a[0])
}
