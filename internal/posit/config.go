// Package posit implements posit arithmetic as described by Gustafson and
// Yonemoto ("Beating floating point at its own game", 2017) and used in
// Buoncristiani et al., "Evaluating the Numerical Stability of Posit
// Arithmetic" (2020).
//
// A posit format is parameterized by its total width n (2..32 bits here)
// and the exponent field size es (0..4). Values are stored as bit
// patterns in the low n bits of a uint64 (type Bits). All arithmetic is
// correctly rounded: operations compute the exact significand with
// integer arithmetic and round exactly once, using round-to-nearest-even
// in bit-pattern space (the SoftPosit / posit-standard convention, where
// real results never round to zero or NaR but clamp to minpos/maxpos).
//
// The package deliberately performs no deferred rounding: following the
// paper's methodology, every operation rounds. An exact quire
// accumulator is provided separately (see Quire) for ablation studies.
package posit

import (
	"fmt"
)

// MaxBits is the largest supported posit width. The uint64 significand
// pipeline guarantees correct rounding for widths up to 32 bits with
// room to spare; the paper only needs 8-, 16- and 32-bit formats.
const MaxBits = 32

// MaxES is the largest supported exponent field size. USEED for es=4 is
// 2^16, giving posit(32,4) a scale range of ±496, well inside the exact
// integer pipeline.
const MaxES = 4

// Config identifies a posit format by total width and exponent size.
// The zero Config is invalid; construct with New or MustNew.
type Config struct {
	n  uint8
	es uint8
}

// New validates and returns a posit format configuration.
func New(n, es int) (Config, error) {
	if n < 2 || n > MaxBits {
		return Config{}, fmt.Errorf("posit: width %d out of range [2,%d]", n, MaxBits)
	}
	if es < 0 || es > MaxES {
		return Config{}, fmt.Errorf("posit: es %d out of range [0,%d]", es, MaxES)
	}
	return Config{n: uint8(n), es: uint8(es)}, nil
}

// MustNew is New that panics on invalid parameters. Use for the
// standard compile-time-known formats.
func MustNew(n, es int) Config {
	c, err := New(n, es)
	if err != nil {
		panic(err)
	}
	return c
}

// Standard format configurations used throughout the paper.
var (
	Posit8e0  = MustNew(8, 0)
	Posit8e1  = MustNew(8, 1)
	Posit8e2  = MustNew(8, 2)
	Posit16e1 = MustNew(16, 1)
	Posit16e2 = MustNew(16, 2)
	Posit32e2 = MustNew(32, 2)
	Posit32e3 = MustNew(32, 3)
)

// Bits is an n-bit posit pattern stored LSB-aligned in a uint64. The
// bits above position n-1 are always zero in canonical patterns.
type Bits uint64

// N returns the total width in bits.
func (c Config) N() int { return int(c.n) }

// ES returns the exponent field size in bits.
func (c Config) ES() int { return int(c.es) }

// USEED returns 2^(2^es), the regime radix (equation 3 of the paper).
func (c Config) USEED() uint64 { return 1 << (1 << c.es) }

// String renders the format in the paper's Posit(n, es) notation.
func (c Config) String() string { return fmt.Sprintf("Posit(%d,%d)", c.n, c.es) }

// Valid reports whether c was produced by New/MustNew.
func (c Config) Valid() bool {
	return c.n >= 2 && c.n <= MaxBits && c.es <= MaxES
}

// mask returns the n-bit pattern mask.
func (c Config) mask() uint64 { return (uint64(1) << c.n) - 1 }

// signBit returns the bit pattern of the sign bit.
func (c Config) signBit() uint64 { return uint64(1) << (c.n - 1) }

// body returns n-1, the number of bits after the sign bit.
func (c Config) bodyBits() uint { return uint(c.n) - 1 }

// Zero returns the pattern of posit zero (all bits clear).
func (c Config) Zero() Bits { return 0 }

// NaR returns Not-a-Real: sign bit set, all other bits clear. NaR is
// the posit equivalent of both IEEE infinity and NaN.
func (c Config) NaR() Bits { return Bits(c.signBit()) }

// MaxPos returns the largest positive posit pattern (0111...1).
func (c Config) MaxPos() Bits { return Bits(c.signBit() - 1) }

// MinPos returns the smallest positive posit pattern (000...01).
func (c Config) MinPos() Bits { return 1 }

// MaxScale returns the base-2 scale of MaxPos: (n-2) * 2^es.
func (c Config) MaxScale() int { return int(c.n-2) * (1 << c.es) }

// MinScale returns the base-2 scale of MinPos: -(n-2) * 2^es.
func (c Config) MinScale() int { return -c.MaxScale() }

// IsZero reports whether p is posit zero.
func (c Config) IsZero(p Bits) bool { return p == 0 }

// IsNaR reports whether p is Not-a-Real.
func (c Config) IsNaR(p Bits) bool { return uint64(p) == c.signBit() }

// Signbit reports whether p is negative (sign bit set). NaR reports true.
func (c Config) Signbit(p Bits) bool { return uint64(p)&c.signBit() != 0 }

// Canonical reports whether the pattern has no stray bits above n-1.
func (c Config) Canonical(p Bits) bool { return uint64(p)&^c.mask() == 0 }

// Neg negates a posit: two's complement on n bits. Neg(0)=0 and
// Neg(NaR)=NaR fall out of the arithmetic.
func (c Config) Neg(p Bits) Bits {
	return Bits((-uint64(p)) & c.mask())
}

// Abs returns the absolute value of p. Abs(NaR) = NaR.
func (c Config) Abs(p Bits) Bits {
	if c.IsNaR(p) || !c.Signbit(p) {
		return p
	}
	return c.Neg(p)
}

// signExtend reinterprets the n-bit pattern as a signed integer, the
// total order on posits (with NaR smallest).
func (c Config) signExtend(p Bits) int64 {
	shift := 64 - uint(c.n)
	return int64(uint64(p)<<shift) >> shift
}

// Cmp compares two posits in the standard posit total order:
// NaR < all reals, then by value. It returns -1, 0 or +1.
func (c Config) Cmp(a, b Bits) int {
	ia, ib := c.signExtend(a), c.signExtend(b)
	switch {
	case ia < ib:
		return -1
	case ia > ib:
		return 1
	default:
		return 0
	}
}

// Less reports a < b in the posit total order.
func (c Config) Less(a, b Bits) bool { return c.Cmp(a, b) < 0 }
