package posit

import "fmt"

// Table8 is a fully tabulated 8-bit posit ALU: every binary operation
// precomputed into a 64 KiB byte table, the way hardware and embedded
// implementations typically realize posit8 arithmetic. Results are
// bit-identical to the computed pipeline (the constructor derives the
// tables from it), but each operation is a single indexed load.
type Table8 struct {
	c                  Config
	add, sub, mul, div [1 << 16]uint8
	sqrt               [1 << 8]uint8
}

// NewTable8 builds the tables for an 8-bit configuration.
func NewTable8(c Config) (*Table8, error) {
	if c.N() != 8 {
		return nil, fmt.Errorf("posit: Table8 requires an 8-bit format, got %v", c)
	}
	t := &Table8{c: c}
	for a := 0; a < 256; a++ {
		pa := Bits(a)
		t.sqrt[a] = uint8(c.Sqrt(pa))
		for b := 0; b < 256; b++ {
			pb := Bits(b)
			idx := a<<8 | b
			t.add[idx] = uint8(c.Add(pa, pb))
			t.sub[idx] = uint8(c.Sub(pa, pb))
			t.mul[idx] = uint8(c.Mul(pa, pb))
			t.div[idx] = uint8(c.Div(pa, pb))
		}
	}
	return t, nil
}

// Config returns the underlying format.
func (t *Table8) Config() Config { return t.c }

func idx8(a, b Bits) int { return int(a&0xff)<<8 | int(b&0xff) }

// Add returns the tabulated a + b.
func (t *Table8) Add(a, b Bits) Bits { return Bits(t.add[idx8(a, b)]) }

// Sub returns the tabulated a - b.
func (t *Table8) Sub(a, b Bits) Bits { return Bits(t.sub[idx8(a, b)]) }

// Mul returns the tabulated a * b.
func (t *Table8) Mul(a, b Bits) Bits { return Bits(t.mul[idx8(a, b)]) }

// Div returns the tabulated a / b.
func (t *Table8) Div(a, b Bits) Bits { return Bits(t.div[idx8(a, b)]) }

// Sqrt returns the tabulated square root.
func (t *Table8) Sqrt(a Bits) Bits { return Bits(t.sqrt[a&0xff]) }

// table8Bytes is the flat MarshalBinary size: four 64 KiB binary-op
// tables plus the 256-entry sqrt table.
const table8Bytes = 4*(1<<16) + 1<<8

// MarshalBinary flattens the tables (add, sub, mul, div, sqrt in
// order) for arith's on-disk table cache. The configuration is not
// encoded; the cache keys entries by format spec.
func (t *Table8) MarshalBinary() []byte {
	buf := make([]byte, 0, table8Bytes)
	buf = append(buf, t.add[:]...)
	buf = append(buf, t.sub[:]...)
	buf = append(buf, t.mul[:]...)
	buf = append(buf, t.div[:]...)
	buf = append(buf, t.sqrt[:]...)
	return buf
}

// UnmarshalTable8 reconstructs a Table8 for c from MarshalBinary
// bytes.
func UnmarshalTable8(c Config, data []byte) (*Table8, error) {
	if c.N() != 8 {
		return nil, fmt.Errorf("posit: Table8 requires an 8-bit format, got %v", c)
	}
	if len(data) != table8Bytes {
		return nil, fmt.Errorf("posit: Table8 payload is %d bytes, want %d", len(data), table8Bytes)
	}
	t := &Table8{c: c}
	data = data[copy(t.add[:], data):]
	data = data[copy(t.sub[:], data):]
	data = data[copy(t.mul[:], data):]
	data = data[copy(t.div[:], data):]
	copy(t.sqrt[:], data)
	return t, nil
}
