package posit_test

import (
	"testing"

	"positlab/internal/posit"
)

func TestValueTypesArithmetic(t *testing.T) {
	// P32 chains.
	x := posit.P32From(1.5).Add(posit.P32From(2.25))
	if x.Float64() != 3.75 {
		t.Errorf("P32 1.5+2.25 = %v", x)
	}
	if got := posit.P32From(9).Sqrt().Float64(); got != 3 {
		t.Errorf("P32 sqrt(9) = %g", got)
	}
	if got := posit.P32From(2).FMA(posit.P32From(3), posit.P32From(1)).Float64(); got != 7 {
		t.Errorf("P32 fma(2,3,1) = %g", got)
	}
	if !posit.P32From(1).Div(posit.P32From(0)).IsNaR() {
		t.Error("P32 1/0 must be NaR")
	}
	if posit.P32From(-2).Abs().Float64() != 2 || posit.P32From(2).Neg().Float64() != -2 {
		t.Error("P32 abs/neg wrong")
	}
	if !posit.P32From(1).Less(posit.P32From(2)) {
		t.Error("P32 ordering wrong")
	}
	if s := posit.P32From(0.5).String(); s != "0.5" {
		t.Errorf("P32 String = %q", s)
	}
	if s := posit.P32From(1).Div(posit.P32From(0)).String(); s != "NaR" {
		t.Errorf("NaR String = %q", s)
	}

	// P16 (es=1).
	y := posit.P16From(10).Mul(posit.P16From(0.5))
	if y.Float64() != 5 {
		t.Errorf("P16 10*0.5 = %v", y)
	}
	if got := posit.P16From(7).Sub(posit.P16From(7)); !got.IsZero() {
		t.Error("P16 7-7 must be zero")
	}
	if got := posit.P16From(3).FMA(posit.P16From(3), posit.P16From(-9)); !got.IsZero() {
		t.Error("P16 fma(3,3,-9) must be zero")
	}

	// P8 (es=0): coarse but consistent with the config API.
	z := posit.P8From(2).Div(posit.P8From(4))
	if z.Float64() != 0.5 {
		t.Errorf("P8 2/4 = %v", z)
	}
	if posit.P8From(1).Bits() != posit.Posit8e0.One() {
		t.Error("P8 Bits() accessor wrong")
	}
	if posit.P8From(2).Sqrt().IsNaR() {
		t.Error("P8 sqrt(2) must be real")
	}
	if posit.P8From(-1).Add(posit.P8From(1)).Float64() != 0 {
		t.Error("P8 -1+1 wrong")
	}
}

// Value-type results must be bit-identical to the Config API.
func TestValueTypesMatchConfigAPI(t *testing.T) {
	c := posit.Posit32e2
	vals := []float64{0, 1, -2.5, 3.14159, 1e10, 1e-10}
	for _, a := range vals {
		for _, b := range vals {
			got := posit.P32From(a).Mul(posit.P32From(b)).Bits()
			want := c.Mul(c.FromFloat64(a), c.FromFloat64(b))
			if got != want {
				t.Fatalf("P32 Mul(%g,%g) diverges from Config API", a, b)
			}
		}
	}
}
