package posit

import "math"

// Precision-inspection helpers behind the paper's Fig. 3 (digits of
// accuracy vs magnitude) and Fig. 5 (extra fraction bits over Float32).

// Next returns the next posit in the total order (pattern successor).
// Next(MaxPos) is NaR's predecessor wrap target in pattern space; the
// caller is expected to stop at MaxPos. Next(NaR) is the most negative
// real.
func (c Config) Next(p Bits) Bits {
	return Bits((uint64(p) + 1) & c.mask())
}

// Prev returns the previous posit in the total order.
func (c Config) Prev(p Bits) Bits {
	return Bits((uint64(p) - 1) & c.mask())
}

// ULP returns the gap between p and its successor as a float64, for a
// finite nonnegative p below MaxPos.
func (c Config) ULP(p Bits) float64 {
	return c.ToFloat64(c.Next(p)) - c.ToFloat64(p)
}

// DecimalDigitsAt reports the worst-case number of decimal digits of
// accuracy when representing values of magnitude |x|: the quantity
// plotted in Fig. 3(b), -log10 of the maximum relative rounding error
// at that magnitude (half the local relative gap).
func (c Config) DecimalDigitsAt(x float64) float64 {
	x = math.Abs(x)
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return 0
	}
	// Out-of-range magnitudes clamp to minpos/maxpos with unbounded
	// relative error; report zero digits like the IEEE formats do for
	// overflow/underflow.
	if x < c.ToFloat64(c.MinPos()) || x > c.ToFloat64(c.MaxPos()) {
		return 0
	}
	p := c.Abs(c.FromFloat64(x))
	if c.IsZero(p) || c.IsNaR(p) {
		return 0
	}
	if p == c.MaxPos() {
		p = c.Prev(p)
	}
	lo, hi := c.ToFloat64(p), c.ToFloat64(c.Next(p))
	relErr := (hi - lo) / 2 / x
	if relErr <= 0 {
		return 0
	}
	d := -math.Log10(relErr)
	if d < 0 {
		return 0
	}
	return d
}

// DynamicRange returns the base-10 logs of MinPos and MaxPos values.
func (c Config) DynamicRange() (lo, hi float64) {
	ln2 := math.Ln2 / math.Ln10
	return float64(c.MinScale()) * ln2, float64(c.MaxScale()) * ln2
}

// ExtraFracBitsVsFloat32 returns how many more explicit fraction bits
// the posit encoding of x carries than IEEE Float32's 23, the histogram
// quantity of Fig. 5. Values outside float32's normalized range still
// compare against 23 bits, matching the paper's methodology.
func (c Config) ExtraFracBitsVsFloat32(x float64) int {
	p := c.FromFloat64(x)
	if c.IsZero(p) || c.IsNaR(p) {
		return 0
	}
	return c.FracBits(p) - 23
}
