package posit_test

import (
	"math"
	"testing"

	"positlab/internal/bigfp"
	"positlab/internal/posit"
)

// knownValues spot-checks hand-computed encodings from the posit
// literature (Gustafson & Yonemoto 2017, Table 1 examples and basics).
func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		n, es int
		value float64
		want  uint64
	}{
		// posit(8,0): regime k then frac; 1.5 = 0 10 10000.
		{8, 0, 1, 0b01000000},
		{8, 0, 1.5, 0b01010000},
		{8, 0, 0.5, 0b00100000},
		{8, 0, 2, 0b01100000},
		// posit(8,1): scale = 2k + e; 2 = 0 10 1 0000, 4 = 0 110 0 000.
		{8, 1, 1, 0b01000000},
		{8, 1, 2, 0b01010000},
		{8, 1, 4, 0b01100000},
		{8, 1, 0.25, 0b00100000},
		// posit(16,1): 1 = 0100...0
		{16, 1, 1, 0x4000},
		// posit(32,2): 1 = 0x40000000
		{32, 2, 1, 0x40000000},
	}
	for _, tc := range cases {
		c := posit.MustNew(tc.n, tc.es)
		got := c.FromFloat64(tc.value)
		if uint64(got) != tc.want {
			t.Errorf("%v FromFloat64(%g) = %#x, want %#x", c, tc.value, uint64(got), tc.want)
		}
		back := c.ToFloat64(got)
		if back != tc.value {
			t.Errorf("%v ToFloat64(%#x) = %g, want %g", c, tc.want, back, tc.value)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit16e1, posit.Posit16e2, posit.Posit32e2} {
		if !c.IsZero(c.FromFloat64(0)) {
			t.Errorf("%v: 0 must encode to zero pattern", c)
		}
		for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			if !c.IsNaR(c.FromFloat64(x)) {
				t.Errorf("%v: %v must encode to NaR", c, x)
			}
		}
		if !math.IsNaN(c.ToFloat64(c.NaR())) {
			t.Errorf("%v: NaR must decode to NaN", c)
		}
		if c.ToFloat64(c.Zero()) != 0 {
			t.Errorf("%v: zero must decode to 0", c)
		}
		one := c.One()
		if c.ToFloat64(one) != 1 {
			t.Errorf("%v: One() = %#x decodes to %g, want 1", c, uint64(one), c.ToFloat64(one))
		}
		// NaR propagation through every operation.
		nar := c.NaR()
		for name, got := range map[string]posit.Bits{
			"add":     c.Add(nar, one),
			"sub":     c.Sub(one, nar),
			"mul":     c.Mul(nar, nar),
			"div":     c.Div(one, nar),
			"div0":    c.Div(one, c.Zero()),
			"sqrt":    c.Sqrt(nar),
			"sqrtNeg": c.Sqrt(c.Neg(one)),
			"fma":     c.FMA(nar, one, one),
		} {
			if !c.IsNaR(got) {
				t.Errorf("%v: %s must yield NaR, got %#x", c, name, uint64(got))
			}
		}
		// Zero behaviour.
		if got := c.Mul(c.Zero(), c.MaxPos()); !c.IsZero(got) {
			t.Errorf("%v: 0*maxpos = %#x, want 0", c, uint64(got))
		}
		if got := c.Div(c.Zero(), one); !c.IsZero(got) {
			t.Errorf("%v: 0/1 = %#x, want 0", c, uint64(got))
		}
		if got := c.Sqrt(c.Zero()); !c.IsZero(got) {
			t.Errorf("%v: sqrt(0) = %#x, want 0", c, uint64(got))
		}
	}
}

// TestRoundTripAllPatterns: decode→float64→encode is the identity for
// every pattern of every 8..16-bit format (float64 holds any supported
// posit exactly).
func TestRoundTripAllPatterns(t *testing.T) {
	for _, cfg := range []struct{ n, es int }{
		{3, 0}, {4, 1}, {5, 2}, {6, 0}, {7, 3},
		{8, 0}, {8, 1}, {8, 2}, {8, 3},
		{9, 1}, {10, 2}, {12, 0}, {14, 4},
		{16, 0}, {16, 1}, {16, 2},
	} {
		c := posit.MustNew(cfg.n, cfg.es)
		limit := uint64(1) << uint(cfg.n)
		for pat := uint64(0); pat < limit; pat++ {
			p := posit.Bits(pat)
			f := c.ToFloat64(p)
			if c.IsNaR(p) {
				if !math.IsNaN(f) {
					t.Fatalf("%v: NaR decoded to %g", c, f)
				}
				continue
			}
			back := c.FromFloat64(f)
			if back != p {
				t.Fatalf("%v: pattern %#x -> %g -> %#x (round-trip failed)", c, pat, f, uint64(back))
			}
		}
	}
}

// TestDecodeAgainstOracle: the library's ToFloat64 must agree exactly
// with the independent field-by-field big.Float reconstruction.
func TestDecodeAgainstOracle(t *testing.T) {
	for _, cfg := range []struct{ n, es int }{
		{8, 0}, {8, 1}, {8, 2}, {16, 1}, {16, 2}, {12, 3},
	} {
		c := posit.MustNew(cfg.n, cfg.es)
		limit := uint64(1) << uint(cfg.n)
		for pat := uint64(0); pat < limit; pat++ {
			p := posit.Bits(pat)
			if c.IsNaR(p) {
				continue
			}
			want, _ := bigfp.FromPosit(c, p)
			wf, _ := want.Float64()
			if got := c.ToFloat64(p); got != wf {
				t.Fatalf("%v: pattern %#x decodes to %g, oracle says %g", c, pat, got, wf)
			}
		}
	}
}

// exhaustive binary-op check against the oracle for a full format.
func checkBinaryExhaustive(t *testing.T, c posit.Config,
	name string,
	op func(a, b posit.Bits) posit.Bits,
	ref func(c posit.Config, a, b posit.Bits) posit.Bits,
) {
	t.Helper()
	limit := uint64(1) << uint(c.N())
	for a := uint64(0); a < limit; a++ {
		for b := uint64(0); b < limit; b++ {
			pa, pb := posit.Bits(a), posit.Bits(b)
			got := op(pa, pb)
			want := ref(c, pa, pb)
			if got != want {
				t.Fatalf("%v: %s(%#x, %#x) = %#x, oracle %#x (a=%g b=%g got=%g want=%g)",
					c, name, a, b, uint64(got), uint64(want),
					c.ToFloat64(pa), c.ToFloat64(pb), c.ToFloat64(got), c.ToFloat64(want))
			}
		}
	}
}

func TestAddExhaustivePosit8(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit8e1, posit.Posit8e2} {
		checkBinaryExhaustive(t, c, "Add", c.Add, bigfp.AddRef)
	}
}

func TestSubExhaustivePosit8(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	c := posit.Posit8e1
	checkBinaryExhaustive(t, c, "Sub", c.Sub, bigfp.SubRef)
}

func TestMulExhaustivePosit8(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit8e1, posit.Posit8e2} {
		checkBinaryExhaustive(t, c, "Mul", c.Mul, bigfp.MulRef)
	}
}

func TestDivExhaustivePosit8(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit8e1, posit.Posit8e2} {
		checkBinaryExhaustive(t, c, "Div", c.Div, bigfp.DivRef)
	}
}

// Tiny formats stress regime/exponent-field rounding edges, where the
// cut can fall inside the exponent field.
func TestOpsExhaustiveTinyFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	for _, cfg := range []struct{ n, es int }{
		{3, 0}, {3, 1}, {3, 2}, {4, 0}, {4, 2}, {5, 1}, {5, 3}, {6, 2}, {6, 4}, {7, 1},
	} {
		c := posit.MustNew(cfg.n, cfg.es)
		checkBinaryExhaustive(t, c, "Add", c.Add, bigfp.AddRef)
		checkBinaryExhaustive(t, c, "Mul", c.Mul, bigfp.MulRef)
		checkBinaryExhaustive(t, c, "Div", c.Div, bigfp.DivRef)
	}
}

func TestSqrtExhaustive16(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	for _, c := range []posit.Config{posit.Posit8e2, posit.Posit16e1, posit.Posit16e2} {
		limit := uint64(1) << uint(c.N())
		for a := uint64(0); a < limit; a++ {
			pa := posit.Bits(a)
			got := c.Sqrt(pa)
			want := bigfp.SqrtRef(c, pa)
			if got != want {
				t.Fatalf("%v: Sqrt(%#x)=%#x oracle %#x (a=%g)", c, a, uint64(got), uint64(want), c.ToFloat64(pa))
			}
		}
	}
}

// interestingPatterns returns boundary-heavy operands for a format:
// extremes, golden-zone values, regime transitions, and a pseudo-random
// spread (deterministic; no global RNG state).
func interestingPatterns(c posit.Config, extra int) []posit.Bits {
	set := map[posit.Bits]bool{}
	add := func(p posit.Bits) {
		set[posit.Bits(uint64(p)&((1<<uint(c.N()))-1))] = true
	}
	add(c.Zero())
	add(c.NaR())
	add(c.One())
	add(c.Neg(c.One()))
	add(c.MinPos())
	add(c.MaxPos())
	add(c.Neg(c.MinPos()))
	add(c.Neg(c.MaxPos()))
	for i := 0; i < 10; i++ {
		add(posit.Bits(uint64(c.MinPos()) + uint64(i)))
		add(posit.Bits(uint64(c.MaxPos()) - uint64(i)))
		add(posit.Bits(uint64(c.One()) + uint64(i)))
		add(posit.Bits(uint64(c.One()) - uint64(i)))
	}
	// Regime transitions: every power of USEED in range.
	for s := c.MinScale(); s <= c.MaxScale(); s += 1 << uint(c.ES()) {
		p := c.FromFloat64(math.Ldexp(1, s))
		add(p)
		add(c.Neg(p))
		add(c.Next(p))
		add(c.Prev(p))
	}
	// Deterministic xorshift spread.
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < extra; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		add(posit.Bits(x))
	}
	out := make([]posit.Bits, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return out
}

// TestOpsDirectedLargeFormats runs the differential check over
// boundary-heavy operand pairs for 16- and 32-bit formats.
func TestOpsDirectedLargeFormats(t *testing.T) {
	configs := []posit.Config{
		posit.Posit16e1, posit.Posit16e2, posit.Posit32e2, posit.Posit32e3,
		posit.MustNew(32, 0), posit.MustNew(32, 4), posit.MustNew(24, 2),
	}
	extra := 40
	if testing.Short() {
		extra = 10
	}
	for _, c := range configs {
		pats := interestingPatterns(c, extra)
		for _, a := range pats {
			for _, b := range pats {
				if got, want := c.Add(a, b), bigfp.AddRef(c, a, b); got != want {
					t.Fatalf("%v: Add(%#x,%#x)=%#x oracle %#x", c, uint64(a), uint64(b), uint64(got), uint64(want))
				}
				if got, want := c.Mul(a, b), bigfp.MulRef(c, a, b); got != want {
					t.Fatalf("%v: Mul(%#x,%#x)=%#x oracle %#x", c, uint64(a), uint64(b), uint64(got), uint64(want))
				}
				if got, want := c.Div(a, b), bigfp.DivRef(c, a, b); got != want {
					t.Fatalf("%v: Div(%#x,%#x)=%#x oracle %#x", c, uint64(a), uint64(b), uint64(got), uint64(want))
				}
				if got, want := c.Sub(a, b), bigfp.SubRef(c, a, b); got != want {
					t.Fatalf("%v: Sub(%#x,%#x)=%#x oracle %#x", c, uint64(a), uint64(b), uint64(got), uint64(want))
				}
			}
		}
		for _, a := range pats {
			if got, want := c.Sqrt(a), bigfp.SqrtRef(c, a); got != want {
				t.Fatalf("%v: Sqrt(%#x)=%#x oracle %#x", c, uint64(a), uint64(got), uint64(want))
			}
		}
	}
}

// TestFMADirected checks the fused multiply-add against the oracle on
// boundary-heavy triples.
func TestFMADirected(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit16e2, posit.Posit32e2} {
		pats := interestingPatterns(c, 8)
		// Subsample triples deterministically to bound the cube.
		for i, a := range pats {
			for j, b := range pats {
				if (i+j)%3 != 0 {
					continue
				}
				for k, d := range pats {
					if (i+j+k)%5 != 0 {
						continue
					}
					got := c.FMA(a, b, d)
					want := bigfp.FMARef(c, a, b, d)
					if got != want {
						t.Fatalf("%v: FMA(%#x,%#x,%#x)=%#x oracle %#x",
							c, uint64(a), uint64(b), uint64(d), uint64(got), uint64(want))
					}
				}
			}
		}
	}
}

// TestFMAExhaustiveTiny: every (a,b,d) triple of small formats against
// the oracle — full coverage of the 192-bit FMA pipeline's branches.
func TestFMAExhaustiveTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	for _, cfg := range []struct{ n, es int }{{4, 1}, {5, 0}, {5, 2}} {
		c := posit.MustNew(cfg.n, cfg.es)
		limit := uint64(1) << uint(cfg.n)
		for a := uint64(0); a < limit; a++ {
			for b := uint64(0); b < limit; b++ {
				for d := uint64(0); d < limit; d++ {
					pa, pb, pd := posit.Bits(a), posit.Bits(b), posit.Bits(d)
					got := c.FMA(pa, pb, pd)
					want := bigfp.FMARef(c, pa, pb, pd)
					if got != want {
						t.Fatalf("%v: FMA(%#x,%#x,%#x) = %#x, oracle %#x",
							c, a, b, d, uint64(got), uint64(want))
					}
				}
			}
		}
	}
}

// TestFromFloat64Directed: conversions of awkward float64s.
func TestFromFloat64Directed(t *testing.T) {
	values := []float64{
		0, 1, -1, 0.5, 2, 3, 1e-30, 1e30, 1e-300, 1e300,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		6.5504e4, 1.0000001, 0.9999999, math.Pi, -math.E,
		math.Ldexp(1, 120), math.Ldexp(1, -120),
		math.Ldexp(1.5, 24), math.Ldexp(1.99999988079071, 127),
	}
	for _, c := range []posit.Config{posit.Posit8e1, posit.Posit16e1, posit.Posit16e2, posit.Posit32e2, posit.Posit32e3} {
		for _, v := range values {
			got := c.FromFloat64(v)
			want := bigfp.FromFloat64Ref(c, v)
			if got != want {
				t.Fatalf("%v: FromFloat64(%g)=%#x oracle %#x", c, v, uint64(got), uint64(want))
			}
			if v != 0 {
				if got2, want2 := c.FromFloat64(-v), bigfp.FromFloat64Ref(c, -v); got2 != want2 {
					t.Fatalf("%v: FromFloat64(%g)=%#x oracle %#x", c, -v, uint64(got2), uint64(want2))
				}
			}
		}
	}
}
