package posit_test

import (
	"testing"

	"positlab/internal/posit"
)

// Operand streams exercise varied magnitudes so the benchmarks reflect
// real decode/round distributions rather than one hot path.
func operands(c posit.Config, n int) []posit.Bits {
	out := make([]posit.Bits, n)
	x := uint64(0x243F6A8885A308D3)
	mask := uint64(1)<<uint(c.N()) - 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p := posit.Bits(x & mask)
		if c.IsNaR(p) {
			p = c.One()
		}
		out[i] = p
	}
	return out
}

func benchBinary(b *testing.B, c posit.Config, op func(a, x posit.Bits) posit.Bits) {
	ops := operands(c, 256)
	var sink posit.Bits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = op(ops[i&255], ops[(i+7)&255])
	}
	sinkBits = sink
}

var sinkBits posit.Bits

func BenchmarkAdd16(b *testing.B) { benchBinary(b, posit.Posit16e2, posit.Posit16e2.Add) }
func BenchmarkAdd32(b *testing.B) { benchBinary(b, posit.Posit32e2, posit.Posit32e2.Add) }
func BenchmarkMul16(b *testing.B) { benchBinary(b, posit.Posit16e2, posit.Posit16e2.Mul) }
func BenchmarkMul32(b *testing.B) { benchBinary(b, posit.Posit32e2, posit.Posit32e2.Mul) }
func BenchmarkDiv32(b *testing.B) { benchBinary(b, posit.Posit32e2, posit.Posit32e2.Div) }

func BenchmarkSqrt32(b *testing.B) {
	c := posit.Posit32e2
	ops := operands(c, 256)
	for i := range ops {
		ops[i] = c.Abs(ops[i])
	}
	var sink posit.Bits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.Sqrt(ops[i&255])
	}
	sinkBits = sink
}

func BenchmarkFMA32(b *testing.B) {
	c := posit.Posit32e2
	ops := operands(c, 256)
	var sink posit.Bits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.FMA(ops[i&255], ops[(i+5)&255], ops[(i+11)&255])
	}
	sinkBits = sink
}

func BenchmarkToFloat64(b *testing.B) {
	c := posit.Posit32e2
	ops := operands(c, 256)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.ToFloat64(ops[i&255])
	}
	sinkF = sink
}

var sinkF float64

func BenchmarkFromFloat64(b *testing.B) {
	c := posit.Posit32e2
	vals := make([]float64, 256)
	for i, p := range operands(c, 256) {
		vals[i] = c.ToFloat64(p)
	}
	var sink posit.Bits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.FromFloat64(vals[i&255])
	}
	sinkBits = sink
}

func BenchmarkQuireAddProduct(b *testing.B) {
	c := posit.Posit32e2
	q := c.NewQuire()
	ops := operands(c, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.AddProduct(ops[i&255], ops[(i+3)&255])
	}
	if q.IsNaR() {
		b.Fatal("unexpected NaR")
	}
}
