package posit_test

import (
	"testing"

	"positlab/internal/posit"
)

func TestTable8MatchesComputed(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit8e1, posit.Posit8e2} {
		tab, err := posit.NewTable8(c)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Config() != c {
			t.Fatal("config not retained")
		}
		for a := uint64(0); a < 256; a++ {
			pa := posit.Bits(a)
			if got, want := tab.Sqrt(pa), c.Sqrt(pa); got != want {
				t.Fatalf("%v: Sqrt(%#x) = %#x, want %#x", c, a, uint64(got), uint64(want))
			}
			for b := uint64(0); b < 256; b++ {
				pb := posit.Bits(b)
				if got, want := tab.Add(pa, pb), c.Add(pa, pb); got != want {
					t.Fatalf("%v: Add(%#x,%#x)", c, a, b)
				}
				if got, want := tab.Sub(pa, pb), c.Sub(pa, pb); got != want {
					t.Fatalf("%v: Sub(%#x,%#x)", c, a, b)
				}
				if got, want := tab.Mul(pa, pb), c.Mul(pa, pb); got != want {
					t.Fatalf("%v: Mul(%#x,%#x)", c, a, b)
				}
				if got, want := tab.Div(pa, pb), c.Div(pa, pb); got != want {
					t.Fatalf("%v: Div(%#x,%#x)", c, a, b)
				}
			}
		}
	}
}

func TestTable8RejectsWideFormats(t *testing.T) {
	if _, err := posit.NewTable8(posit.Posit16e1); err == nil {
		t.Fatal("16-bit format must be rejected")
	}
}

func BenchmarkTable8Add(b *testing.B) {
	tab, err := posit.NewTable8(posit.Posit8e1)
	if err != nil {
		b.Fatal(err)
	}
	ops := operands(posit.Posit8e1, 256)
	var sink posit.Bits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = tab.Add(ops[i&255], ops[(i+7)&255])
	}
	sinkBits = sink
}
