package posit

// round encodes an exact or truncated unpacked value into the nearest
// posit pattern. sig must have bit 63 set (1.63 normalized); sticky
// records whether any nonzero value bits lie below sig. Rounding is
// round-to-nearest-even on the bit pattern, the posit-standard rule:
// real values never round to zero or NaR; magnitudes beyond the posit
// range clamp to MinPos/MaxPos.
func (c Config) round(sign bool, scale int, sig uint64, sticky bool) Bits {
	body := c.bodyBits()
	es := uint(c.es)
	pow := 1 << c.es

	k := floorDiv(scale, pow)
	e := uint64(scale - k*pow) // 0 <= e < 2^es

	// Regime saturation: |value| beyond the representable scale range
	// clamps without rounding (the standard forbids rounding to NaR or
	// to zero). Values with k == ±maxK flow through the general path,
	// which truncates them onto MaxPos/MinPos correctly.
	maxK := int(body) - 1
	if k > maxK {
		return c.withSign(c.MaxPos(), sign)
	}
	if k < -maxK {
		return c.withSign(c.MinPos(), sign)
	}

	// Materialize the top 64 bits of the ideal unbounded body string:
	// [regime][exponent][fraction...], MSB first, plus a sticky for
	// everything that falls off the end.
	var hi uint64
	var rlen uint
	if k >= 0 {
		rlen = uint(k) + 2
		hi = ^uint64(0) << (64 - (rlen - 1)) // k+1 ones, then a zero
	} else {
		rlen = uint(-k) + 1
		hi = uint64(1) << (64 - rlen) // -k zeros, then a one
	}
	// rlen <= body <= 31 and es <= 4, so the exponent always fits.
	if es > 0 {
		hi |= e << (64 - rlen - es)
	}
	fracTop := sig << 1 // fraction bits left-aligned at bit 63
	shift := rlen + es
	if shift < 64 {
		hi |= fracTop >> shift
		if shift > 0 && fracTop<<(64-shift) != 0 {
			sticky = true
		}
	} else if fracTop != 0 {
		sticky = true
	}

	// Keep the top n-1 bits; round-to-nearest-even on the pattern.
	pat := hi >> (64 - body)
	roundBit := (hi >> (63 - body)) & 1
	if hi<<(body+1) != 0 {
		sticky = true
	}
	if roundBit == 1 && (sticky || pat&1 == 1) {
		pat++
	}

	switch {
	case pat == 0:
		// A nonzero real never rounds to zero.
		pat = 1
	case pat >= uint64(1)<<body:
		// A real never rounds to NaR; clamp to MaxPos.
		pat = uint64(1)<<body - 1
	}
	return c.withSign(Bits(pat), sign)
}

// withSign applies a sign to a nonnegative magnitude pattern.
func (c Config) withSign(p Bits, neg bool) Bits {
	if neg {
		return c.Neg(p)
	}
	return p
}
