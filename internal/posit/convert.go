package posit

import (
	"math"
	"math/bits"
)

// FromFloat64 converts a float64 to the nearest posit. NaN and both
// infinities map to NaR (posits have no infinities; NaR is the sole
// exceptional value). Conversion of finite values is correctly rounded:
// a float64 significand is exact in the 1.63 pipeline.
func (c Config) FromFloat64(x float64) Bits {
	if x == 0 {
		return c.Zero()
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return c.NaR()
	}
	sign := math.Signbit(x)
	frac, exp := math.Frexp(math.Abs(x)) // frac in [0.5, 1)
	// frac * 2^53 is an integer for every finite float64, including
	// subnormals (Frexp renormalizes them).
	m := uint64(math.Ldexp(frac, 53)) // in [2^52, 2^53)
	return c.round(sign, exp-1, m<<11, false)
}

// FromInt converts an integer to the nearest posit.
func (c Config) FromInt(v int64) Bits {
	if v == 0 {
		return c.Zero()
	}
	sign := v < 0
	var mag uint64
	if sign {
		mag = uint64(-v)
	} else {
		mag = uint64(v)
	}
	scale := 63 - bits.LeadingZeros64(mag)
	return c.round(sign, scale, mag<<uint(63-scale), false)
}

// One returns the posit pattern for 1 (0b01000...).
func (c Config) One() Bits { return Bits(uint64(1) << (c.n - 2)) }

// FromParts builds a posit from an explicit sign, base-2 scale and 1.63
// significand with a sticky bit, rounding to nearest. It is the hook
// used by the extended-precision conversion in internal/bigfp.
func (c Config) FromParts(sign bool, scale int, sig uint64, sticky bool) Bits {
	if sig == 0 {
		return c.Zero()
	}
	for sig&(1<<63) == 0 {
		sig <<= 1
		scale--
	}
	return c.round(sign, scale, sig, sticky)
}
