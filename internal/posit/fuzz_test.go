package posit_test

import (
	"testing"

	"positlab/internal/bigfp"
	"positlab/internal/posit"
)

// Native fuzz targets: the seed corpus runs under plain `go test`, and
// `go test -fuzz` explores beyond it. Every target compares the library
// against the independent big.Float oracle, so any discrepancy the
// fuzzer can reach is a real bug.

func fuzzConfig(sel byte) posit.Config {
	cfgs := []posit.Config{
		posit.Posit8e0, posit.Posit8e1, posit.Posit8e2,
		posit.Posit16e1, posit.Posit16e2,
		posit.Posit32e2, posit.Posit32e3,
		posit.MustNew(5, 1), posit.MustNew(11, 3), posit.MustNew(24, 0),
	}
	return cfgs[int(sel)%len(cfgs)]
}

func FuzzBinaryOpsAgainstOracle(f *testing.F) {
	f.Add(uint64(0x40), uint64(0x3f), byte(0))
	f.Add(uint64(0x7fff), uint64(0x0001), byte(4))
	f.Add(uint64(0x80000000), uint64(0x40000000), byte(5))
	f.Add(uint64(0xffffffff), uint64(0x1), byte(6))
	f.Fuzz(func(t *testing.T, a, b uint64, sel byte) {
		c := fuzzConfig(sel)
		mask := uint64(1)<<uint(c.N()) - 1
		pa, pb := posit.Bits(a&mask), posit.Bits(b&mask)
		if got, want := c.Add(pa, pb), bigfp.AddRef(c, pa, pb); got != want {
			t.Fatalf("%v: Add(%#x,%#x) = %#x, oracle %#x", c, uint64(pa), uint64(pb), uint64(got), uint64(want))
		}
		if got, want := c.Mul(pa, pb), bigfp.MulRef(c, pa, pb); got != want {
			t.Fatalf("%v: Mul(%#x,%#x) = %#x, oracle %#x", c, uint64(pa), uint64(pb), uint64(got), uint64(want))
		}
		if got, want := c.Div(pa, pb), bigfp.DivRef(c, pa, pb); got != want {
			t.Fatalf("%v: Div(%#x,%#x) = %#x, oracle %#x", c, uint64(pa), uint64(pb), uint64(got), uint64(want))
		}
		if got, want := c.Sub(pa, pb), bigfp.SubRef(c, pa, pb); got != want {
			t.Fatalf("%v: Sub(%#x,%#x) = %#x, oracle %#x", c, uint64(pa), uint64(pb), uint64(got), uint64(want))
		}
	})
}

func FuzzSqrtAgainstOracle(f *testing.F) {
	f.Add(uint64(0x40), byte(0))
	f.Add(uint64(0x7fffffff), byte(5))
	f.Fuzz(func(t *testing.T, a uint64, sel byte) {
		c := fuzzConfig(sel)
		pa := posit.Bits(a & (uint64(1)<<uint(c.N()) - 1))
		if got, want := c.Sqrt(pa), bigfp.SqrtRef(c, pa); got != want {
			t.Fatalf("%v: Sqrt(%#x) = %#x, oracle %#x", c, uint64(pa), uint64(got), uint64(want))
		}
	})
}

func FuzzFMAAgainstOracle(f *testing.F) {
	f.Add(uint64(0x40), uint64(0x41), uint64(0xc0), byte(4))
	f.Fuzz(func(t *testing.T, a, b, d uint64, sel byte) {
		c := fuzzConfig(sel)
		mask := uint64(1)<<uint(c.N()) - 1
		pa, pb, pd := posit.Bits(a&mask), posit.Bits(b&mask), posit.Bits(d&mask)
		if got, want := c.FMA(pa, pb, pd), bigfp.FMARef(c, pa, pb, pd); got != want {
			t.Fatalf("%v: FMA(%#x,%#x,%#x) = %#x, oracle %#x",
				c, uint64(pa), uint64(pb), uint64(pd), uint64(got), uint64(want))
		}
	})
}

func FuzzFromFloat64AgainstOracle(f *testing.F) {
	f.Add(3.14159, byte(5))
	f.Add(-1e300, byte(6))
	f.Add(1e-300, byte(3))
	f.Fuzz(func(t *testing.T, x float64, sel byte) {
		c := fuzzConfig(sel)
		if got, want := c.FromFloat64(x), bigfp.FromFloat64Ref(c, x); got != want {
			t.Fatalf("%v: FromFloat64(%g) = %#x, oracle %#x", c, x, uint64(got), uint64(want))
		}
	})
}
