package posit

import "positlab/internal/fpcore"

// Arithmetic. Every operation decodes exactly, computes the exact
// result significand through the shared fpcore 128-bit pipeline (plus a
// sticky bit for anything beyond), and rounds exactly once via
// Config.round.
//
// NaR propagates through every operation, and division by zero and
// square roots of negative values produce NaR, per the posit standard.

func (u unpacked) mag() fpcore.Mag {
	return fpcore.Mag{Scale: u.scale, Sig: u.sig}
}

// Add returns the correctly rounded sum a + b.
func (c Config) Add(a, b Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) {
		return c.NaR()
	}
	if c.IsZero(a) {
		return b
	}
	if c.IsZero(b) {
		return a
	}
	ua, ub := c.decode(a), c.decode(b)
	if ua.sign == ub.sign {
		m, sticky := fpcore.Add(ua.mag(), ub.mag())
		return c.round(ua.sign, m.Scale, m.Sig, sticky)
	}
	m, sticky, zero, swapped := fpcore.Sub(ua.mag(), ub.mag())
	if zero {
		return c.Zero()
	}
	sign := ua.sign
	if swapped {
		sign = ub.sign
	}
	return c.round(sign, m.Scale, m.Sig, sticky)
}

// Sub returns the correctly rounded difference a - b. Posit negation is
// exact, so subtraction reduces to addition of the negation.
func (c Config) Sub(a, b Bits) Bits {
	return c.Add(a, c.Neg(b))
}

// Mul returns the correctly rounded product a * b.
func (c Config) Mul(a, b Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) {
		return c.NaR()
	}
	if c.IsZero(a) || c.IsZero(b) {
		return c.Zero()
	}
	ua, ub := c.decode(a), c.decode(b)
	m, sticky := fpcore.Mul(ua.mag(), ub.mag())
	return c.round(ua.sign != ub.sign, m.Scale, m.Sig, sticky)
}

// Div returns the correctly rounded quotient a / b. Division by zero
// yields NaR.
func (c Config) Div(a, b Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) || c.IsZero(b) {
		return c.NaR()
	}
	if c.IsZero(a) {
		return c.Zero()
	}
	ua, ub := c.decode(a), c.decode(b)
	m, sticky := fpcore.Div(ua.mag(), ub.mag())
	return c.round(ua.sign != ub.sign, m.Scale, m.Sig, sticky)
}

// Sqrt returns the correctly rounded square root of a. Square roots of
// negative values (and of NaR) are NaR; Sqrt(0) = 0.
func (c Config) Sqrt(a Bits) Bits {
	if c.IsNaR(a) {
		return c.NaR()
	}
	if c.IsZero(a) {
		return c.Zero()
	}
	if c.Signbit(a) {
		return c.NaR()
	}
	u := c.decode(a)
	m, sticky := fpcore.Sqrt(u.mag())
	return c.round(false, m.Scale, m.Sig, sticky)
}
