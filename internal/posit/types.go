package posit

import "strconv"

// Ergonomic value types for the three classic posit sizes of Gustafson
// & Yonemoto (2017): posit8 (es=0), posit16 (es=1), posit32 (es=2).
// They wrap the pattern-level API in method form, so numerical code
// reads like arithmetic:
//
//	sum := posit.P32From(1.5).Add(posit.P32From(2.25))
//
// For other configurations, use Config directly.

// P8 is a posit(8,0) value.
type P8 Bits

// P16 is a posit(16,1) value.
type P16 Bits

// P32 is a posit(32,2) value.
type P32 Bits

// P8From, P16From and P32From convert from float64 with correct
// rounding.
func P8From(x float64) P8   { return P8(Posit8e0.FromFloat64(x)) }
func P16From(x float64) P16 { return P16(Posit16e1.FromFloat64(x)) }
func P32From(x float64) P32 { return P32(Posit32e2.FromFloat64(x)) }

// P8 methods.

func (p P8) Add(q P8) P8      { return P8(Posit8e0.Add(Bits(p), Bits(q))) }
func (p P8) Sub(q P8) P8      { return P8(Posit8e0.Sub(Bits(p), Bits(q))) }
func (p P8) Mul(q P8) P8      { return P8(Posit8e0.Mul(Bits(p), Bits(q))) }
func (p P8) Div(q P8) P8      { return P8(Posit8e0.Div(Bits(p), Bits(q))) }
func (p P8) Sqrt() P8         { return P8(Posit8e0.Sqrt(Bits(p))) }
func (p P8) Neg() P8          { return P8(Posit8e0.Neg(Bits(p))) }
func (p P8) Abs() P8          { return P8(Posit8e0.Abs(Bits(p))) }
func (p P8) Float64() float64 { return Posit8e0.ToFloat64(Bits(p)) }
func (p P8) IsNaR() bool      { return Posit8e0.IsNaR(Bits(p)) }
func (p P8) IsZero() bool     { return Posit8e0.IsZero(Bits(p)) }
func (p P8) Less(q P8) bool   { return Posit8e0.Less(Bits(p), Bits(q)) }
func (p P8) Bits() Bits       { return Bits(p) }
func (p P8) String() string   { return positString(Posit8e0, Bits(p)) }

// P16 methods.

func (p P16) Add(q P16) P16    { return P16(Posit16e1.Add(Bits(p), Bits(q))) }
func (p P16) Sub(q P16) P16    { return P16(Posit16e1.Sub(Bits(p), Bits(q))) }
func (p P16) Mul(q P16) P16    { return P16(Posit16e1.Mul(Bits(p), Bits(q))) }
func (p P16) Div(q P16) P16    { return P16(Posit16e1.Div(Bits(p), Bits(q))) }
func (p P16) Sqrt() P16        { return P16(Posit16e1.Sqrt(Bits(p))) }
func (p P16) Neg() P16         { return P16(Posit16e1.Neg(Bits(p))) }
func (p P16) Abs() P16         { return P16(Posit16e1.Abs(Bits(p))) }
func (p P16) FMA(q, r P16) P16 { return P16(Posit16e1.FMA(Bits(p), Bits(q), Bits(r))) }
func (p P16) Float64() float64 { return Posit16e1.ToFloat64(Bits(p)) }
func (p P16) IsNaR() bool      { return Posit16e1.IsNaR(Bits(p)) }
func (p P16) IsZero() bool     { return Posit16e1.IsZero(Bits(p)) }
func (p P16) Less(q P16) bool  { return Posit16e1.Less(Bits(p), Bits(q)) }
func (p P16) Bits() Bits       { return Bits(p) }
func (p P16) String() string   { return positString(Posit16e1, Bits(p)) }

// P32 methods.

func (p P32) Add(q P32) P32    { return P32(Posit32e2.Add(Bits(p), Bits(q))) }
func (p P32) Sub(q P32) P32    { return P32(Posit32e2.Sub(Bits(p), Bits(q))) }
func (p P32) Mul(q P32) P32    { return P32(Posit32e2.Mul(Bits(p), Bits(q))) }
func (p P32) Div(q P32) P32    { return P32(Posit32e2.Div(Bits(p), Bits(q))) }
func (p P32) Sqrt() P32        { return P32(Posit32e2.Sqrt(Bits(p))) }
func (p P32) Neg() P32         { return P32(Posit32e2.Neg(Bits(p))) }
func (p P32) Abs() P32         { return P32(Posit32e2.Abs(Bits(p))) }
func (p P32) FMA(q, r P32) P32 { return P32(Posit32e2.FMA(Bits(p), Bits(q), Bits(r))) }
func (p P32) Float64() float64 { return Posit32e2.ToFloat64(Bits(p)) }
func (p P32) IsNaR() bool      { return Posit32e2.IsNaR(Bits(p)) }
func (p P32) IsZero() bool     { return Posit32e2.IsZero(Bits(p)) }
func (p P32) Less(q P32) bool  { return Posit32e2.Less(Bits(p), Bits(q)) }
func (p P32) Bits() Bits       { return Bits(p) }
func (p P32) String() string   { return positString(Posit32e2, Bits(p)) }

// positString renders the shortest float64 text of the exact value
// (every supported posit is an exact float64).
func positString(c Config, p Bits) string {
	if c.IsNaR(p) {
		return "NaR"
	}
	return strconv.FormatFloat(c.ToFloat64(p), 'g', -1, 64)
}
