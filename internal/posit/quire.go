package posit

import "math/bits"

// Quire is the exact fixed-point accumulator the posit standard
// prescribes for deferred-rounding collective operations (dot products,
// sums): products accumulate without intermediate rounding and the
// running value rounds once on read-out.
//
// The paper's headline experiments deliberately avoid the quire (§II-C)
// so that the comparison against IEEE floats — which round after every
// operation — isolates properties of the number format itself. The
// quire is provided here for the deferred-rounding ablation benchmark.
//
// The accumulator is wide enough that no sum of fewer than 2^63
// products can overflow: two's complement, LSB weight 2^(2*MinScale-126)
// (exact for any product pattern), 63 guard bits above 2^(2*MaxScale+2).
type Quire struct {
	c      Config
	w      []uint64 // little-endian two's complement
	lsbExp int      // base-2 weight of bit 0
	nar    bool
}

// NewQuire allocates a zeroed quire for the format.
func (c Config) NewQuire() *Quire {
	lsbExp := 2*c.MinScale() - 126
	msbExp := 2*c.MaxScale() + 2 + 63
	totalBits := msbExp - lsbExp + 2 // + sign headroom
	words := (totalBits + 63) / 64
	return &Quire{c: c, w: make([]uint64, words), lsbExp: lsbExp}
}

// Reset clears the accumulator to zero.
func (q *Quire) Reset() {
	for i := range q.w {
		q.w[i] = 0
	}
	q.nar = false
}

// IsNaR reports whether a NaR was absorbed.
func (q *Quire) IsNaR() bool { return q.nar }

// AddProduct accumulates a*b exactly.
func (q *Quire) AddProduct(a, b Bits) {
	q.mulAcc(a, b, false)
}

// SubProduct accumulates -(a*b) exactly.
func (q *Quire) SubProduct(a, b Bits) {
	q.mulAcc(a, b, true)
}

// Add accumulates a single posit value exactly.
func (q *Quire) Add(a Bits) {
	q.mulAcc(a, q.c.One(), false)
}

// Sub accumulates -a exactly.
func (q *Quire) Sub(a Bits) {
	q.mulAcc(a, q.c.One(), true)
}

func (q *Quire) mulAcc(a, b Bits, negate bool) {
	c := q.c
	if c.IsNaR(a) || c.IsNaR(b) {
		q.nar = true
		return
	}
	if c.IsZero(a) || c.IsZero(b) {
		return
	}
	ua, ub := c.decode(a), c.decode(b)
	phi, plo := bits.Mul64(ua.sig, ub.sig) // P in [2^126, 2^128)
	// value = P * 2^(s-126); LSB lands at bit s - 2*MinScale.
	shift := uint(ua.scale + ub.scale - 2*c.MinScale())
	neg := (ua.sign != ub.sign) != negate
	q.accumulate(phi, plo, shift, neg)
}

// accumulate adds or subtracts (hi,lo) << shift into the accumulator.
func (q *Quire) accumulate(hi, lo uint64, shift uint, neg bool) {
	word := int(shift / 64)
	s := shift % 64
	var w0, w1, w2 uint64
	if s == 0 {
		w0, w1, w2 = lo, hi, 0
	} else {
		w0 = lo << s
		w1 = hi<<s | lo>>(64-s)
		w2 = hi >> (64 - s)
	}
	if !neg {
		var carry uint64
		q.w[word], carry = bits.Add64(q.w[word], w0, 0)
		q.w[word+1], carry = bits.Add64(q.w[word+1], w1, carry)
		q.w[word+2], carry = bits.Add64(q.w[word+2], w2, carry)
		for i := word + 3; carry != 0 && i < len(q.w); i++ {
			q.w[i], carry = bits.Add64(q.w[i], 0, carry)
		}
	} else {
		var borrow uint64
		q.w[word], borrow = bits.Sub64(q.w[word], w0, 0)
		q.w[word+1], borrow = bits.Sub64(q.w[word+1], w1, borrow)
		q.w[word+2], borrow = bits.Sub64(q.w[word+2], w2, borrow)
		for i := word + 3; borrow != 0 && i < len(q.w); i++ {
			q.w[i], borrow = bits.Sub64(q.w[i], 0, borrow)
		}
	}
}

// Round reads the accumulated value out as a correctly rounded posit.
// The quire itself is unchanged.
func (q *Quire) Round() Bits {
	c := q.c
	if q.nar {
		return c.NaR()
	}
	// Determine sign from the top bit; negate to magnitude if needed.
	top := q.w[len(q.w)-1]
	neg := top&(1<<63) != 0
	mag := make([]uint64, len(q.w))
	if neg {
		var borrow uint64
		for i := range q.w {
			mag[i], borrow = bits.Sub64(0, q.w[i], borrow)
		}
	} else {
		copy(mag, q.w)
	}
	// Locate the most significant set bit.
	msWord := -1
	for i := len(mag) - 1; i >= 0; i-- {
		if mag[i] != 0 {
			msWord = i
			break
		}
	}
	if msWord < 0 {
		return c.Zero()
	}
	msBit := 63 - bits.LeadingZeros64(mag[msWord])
	bitPos := msWord*64 + msBit
	scale := bitPos + q.lsbExp

	// Extract the 64 bits [bitPos-63, bitPos] as the significand;
	// everything below is sticky.
	sig, sticky := extractWindow(mag, bitPos-63)
	return c.round(neg, scale, sig, sticky)
}

// extractWindow reads the 64 bits starting at lowBit (which may be
// negative, padding with zeros below) and reports whether any set bit
// lies below the window. The caller guarantees the value's MSB sits at
// lowBit+63, so a negative lowBit satisfies -lowBit < 64.
func extractWindow(mag []uint64, lowBit int) (sig uint64, sticky bool) {
	if lowBit <= 0 {
		return mag[0] << uint(-lowBit), false
	}
	word := lowBit / 64
	off := uint(lowBit % 64)
	if off == 0 {
		sig = mag[word]
	} else {
		sig = mag[word] >> off
		if word+1 < len(mag) {
			sig |= mag[word+1] << (64 - off)
		}
	}
	for i := 0; i < word; i++ {
		if mag[i] != 0 {
			return sig, true
		}
	}
	return sig, off > 0 && mag[word]<<(64-off) != 0
}
