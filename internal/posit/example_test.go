package posit_test

import (
	"fmt"

	"positlab/internal/posit"
)

func ExampleConfig_Add() {
	c := posit.Posit16e2
	a := c.FromFloat64(1.5)
	b := c.FromFloat64(2.25)
	fmt.Println(c.ToFloat64(c.Add(a, b)))
	// Output: 3.75
}

func ExampleConfig_Div_byZero() {
	c := posit.Posit32e2
	q := c.Div(c.One(), c.Zero())
	fmt.Println(c.IsNaR(q))
	// Output: true
}

func ExampleConfig_FromFloat64_clamping() {
	// Posits never overflow: values beyond maxpos clamp.
	c := posit.Posit16e2
	p := c.FromFloat64(1e300)
	fmt.Println(p == c.MaxPos(), c.ToFloat64(p))
	// Output: true 7.205759403792794e+16
}

func ExampleConfig_FracBits() {
	// Tapered precision: fraction bits shrink away from 1.0.
	c := posit.Posit32e2
	for _, v := range []float64{1, 1024, 1e9} {
		fmt.Println(c.FracBits(c.FromFloat64(v)))
	}
	// Output:
	// 27
	// 25
	// 20
}

func ExampleQuire() {
	// The quire defers rounding: a tiny addend survives cancellation
	// of two huge products.
	c := posit.Posit32e2
	q := c.NewQuire()
	big := c.FromFloat64(1e12)
	q.AddProduct(big, big)
	q.Add(c.FromFloat64(3))
	q.SubProduct(big, big)
	fmt.Println(c.ToFloat64(q.Round()))
	// Output: 3
}

func ExampleP32From() {
	sum := posit.P32From(1.5).Add(posit.P32From(2.25))
	fmt.Println(sum, sum.Sqrt().IsNaR(), sum.Neg())
	// Output: 3.75 false -3.75
}

func ExampleNewTable8() {
	tab, _ := posit.NewTable8(posit.Posit8e0)
	c := tab.Config()
	r := tab.Mul(c.FromFloat64(1.5), c.FromFloat64(2))
	fmt.Println(c.ToFloat64(r))
	// Output: 3
}
