package posit_test

import (
	"math/big"
	"testing"

	"positlab/internal/bigfp"
	"positlab/internal/posit"
)

// quireDotRef accumulates the exact dot product of posit vectors in
// big.Float and rounds once, which is the quire's contract.
func quireDotRef(c posit.Config, xs, ys []posit.Bits) posit.Bits {
	sum := new(big.Float).SetPrec(bigfp.Prec)
	for i := range xs {
		vx, okx := bigfp.FromPosit(c, xs[i])
		vy, oky := bigfp.FromPosit(c, ys[i])
		if !okx || !oky {
			return c.NaR()
		}
		prod := new(big.Float).SetPrec(bigfp.Prec).Mul(vx, vy)
		sum.Add(sum, prod)
	}
	return bigfp.RoundToPosit(c, sum)
}

func quireDot(c posit.Config, xs, ys []posit.Bits) posit.Bits {
	q := c.NewQuire()
	for i := range xs {
		q.AddProduct(xs[i], ys[i])
	}
	return q.Round()
}

func TestQuireDotAgainstOracle(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit8e2, posit.Posit16e1, posit.Posit16e2, posit.Posit32e2} {
		pats := interestingPatterns(c, 20)
		// Filter NaR out; it is tested separately.
		reals := pats[:0:0]
		for _, p := range pats {
			if !c.IsNaR(p) {
				reals = append(reals, p)
			}
		}
		// Deterministic pairing sweeps.
		for stride := 1; stride <= 7; stride += 2 {
			var xs, ys []posit.Bits
			for i, p := range reals {
				xs = append(xs, p)
				ys = append(ys, reals[(i*stride+3)%len(reals)])
			}
			got := quireDot(c, xs, ys)
			want := quireDotRef(c, xs, ys)
			if got != want {
				t.Fatalf("%v stride %d: quire dot = %#x, oracle %#x", c, stride, uint64(got), uint64(want))
			}
		}
	}
}

// The motivating case: pairwise-cancelling huge products followed by a
// tiny one. Round-per-op loses the tiny term; the quire keeps it.
func TestQuireExactCancellation(t *testing.T) {
	c := posit.Posit32e2
	big1 := c.FromFloat64(1e12)
	tiny := c.FromFloat64(3.0)
	one := c.One()

	q := c.NewQuire()
	q.AddProduct(big1, big1)
	q.AddProduct(tiny, one)
	q.SubProduct(big1, big1)
	got := q.Round()
	if got != tiny {
		t.Fatalf("quire cancellation: got %g, want 3", c.ToFloat64(got))
	}

	// Round-per-op for contrast: (big^2 + 3) - big^2 == 0 in posit32.
	perOp := c.Sub(c.Add(c.Mul(big1, big1), tiny), c.Mul(big1, big1))
	if !c.IsZero(perOp) {
		t.Logf("note: round-per-op kept the tiny term (%g); expected loss", c.ToFloat64(perOp))
	}
}

func TestQuireAddSubScalars(t *testing.T) {
	c := posit.Posit16e2
	q := c.NewQuire()
	vals := []float64{1.5, -2.25, 1024, 3.0e-4, -0.5, 7}
	sum := new(big.Float).SetPrec(bigfp.Prec)
	for _, v := range vals {
		p := c.FromFloat64(v)
		q.Add(p)
		pv, _ := bigfp.FromPosit(c, p)
		sum.Add(sum, pv)
	}
	want := bigfp.RoundToPosit(c, sum)
	if got := q.Round(); got != want {
		t.Fatalf("quire scalar sum = %#x, want %#x", uint64(got), uint64(want))
	}
	for _, v := range vals {
		q.Sub(c.FromFloat64(v))
	}
	if got := q.Round(); !c.IsZero(got) {
		t.Fatalf("quire sum minus itself = %g, want 0", c.ToFloat64(got))
	}
}

func TestQuireNaRAndReset(t *testing.T) {
	c := posit.Posit16e2
	q := c.NewQuire()
	q.AddProduct(c.One(), c.NaR())
	if !q.IsNaR() || !c.IsNaR(q.Round()) {
		t.Fatal("quire must absorb NaR")
	}
	q.Reset()
	if q.IsNaR() || !c.IsZero(q.Round()) {
		t.Fatal("reset quire must read zero")
	}
}

// Extremes: maxpos^2 and minpos^2 accumulate without overflow.
func TestQuireExtremes(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit16e2, posit.Posit32e2, posit.MustNew(32, 4)} {
		q := c.NewQuire()
		q.AddProduct(c.MaxPos(), c.MaxPos())
		if got := q.Round(); got != c.MaxPos() {
			t.Errorf("%v: maxpos^2 rounds to %#x, want maxpos %#x", c, uint64(got), uint64(c.MaxPos()))
		}
		q.Reset()
		q.AddProduct(c.MinPos(), c.MinPos())
		if got := q.Round(); got != c.MinPos() {
			t.Errorf("%v: minpos^2 rounds to %#x, want minpos clamp %#x", c, uint64(got), uint64(c.MinPos()))
		}
		q.Reset()
		q.AddProduct(c.MaxPos(), c.MaxPos())
		q.SubProduct(c.MaxPos(), c.MaxPos())
		q.AddProduct(c.MinPos(), c.MinPos())
		q.SubProduct(c.MinPos(), c.MinPos())
		if got := q.Round(); !c.IsZero(got) {
			t.Errorf("%v: exact telescoping sum = %#x, want 0", c, uint64(got))
		}
	}
}

// Accumulating 10_000 copies of the same product must equal the exact
// scaled value rounded once.
func TestQuireRepeatedAccumulation(t *testing.T) {
	c := posit.Posit16e2
	x := c.FromFloat64(1.0 / 3.0)
	q := c.NewQuire()
	const reps = 10000
	for i := 0; i < reps; i++ {
		q.AddProduct(x, x)
	}
	vx, _ := bigfp.FromPosit(c, x)
	prod := new(big.Float).SetPrec(bigfp.Prec).Mul(vx, vx)
	prod.Mul(prod, big.NewFloat(reps).SetPrec(bigfp.Prec))
	want := bigfp.RoundToPosit(c, prod)
	if got := q.Round(); got != want {
		t.Fatalf("repeated accumulation = %#x (%g), want %#x (%g)",
			uint64(got), c.ToFloat64(got), uint64(want), c.ToFloat64(want))
	}
}
