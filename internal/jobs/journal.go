package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The on-disk layout of a job directory:
//
//	journal.jsonl   append-only record stream, fsynced per record
//	snapshot.json   full job table at the last compaction
//
// Record types (rec.T):
//
//	submit   full Job envelope at submission
//	start    job began an attempt (id, attempt, ts)
//	ckpt     runner checkpoint (id, iter, opaque data)
//	done     job succeeded (id, result, ts)
//	fail     attempt failed (id, error, final; non-final means the job
//	         went back to queued with one retry consumed)
//	cancel   job canceled (id, ts)
//	requeue  running job returned to the queue with its work kept
//	         (graceful drain)
//
// Replay applies records in order on top of the snapshot. A torn final
// line — the signature of a crash mid-append — is dropped; everything
// before it is intact because records are written with a single
// buffered write followed by fsync.
type rec struct {
	T       string          `json:"t"`
	TS      int64           `json:"ts,omitempty"`
	Job     *Job            `json:"job,omitempty"`
	ID      string          `json:"id,omitempty"`
	Attempt int             `json:"attempt,omitempty"`
	Iter    int             `json:"iter,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	Final   bool            `json:"final,omitempty"`
}

const (
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"
)

// journal is the append side of the record stream.
type journal struct {
	f      *os.File
	noSync bool
}

func openJournal(dir string, noSync bool) (*journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	return &journal{f: f, noSync: noSync}, nil
}

// append writes one record as a single line and syncs it to disk, so
// an acknowledged transition survives a crash immediately after.
func (j *journal) append(r rec) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("jobs: marshal journal record: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("jobs: append journal: %w", err)
	}
	if j.noSync {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: sync journal: %w", err)
	}
	return nil
}

func (j *journal) close() error { return j.f.Close() }

// truncate resets the journal after a snapshot compaction.
func (j *journal) truncate() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("jobs: truncate journal: %w", err)
	}
	// O_APPEND writes reposition automatically; nothing else to do.
	return nil
}

// maxJournalLine bounds one journal record: a checkpoint for the
// largest admissible system (N = 2048, three vectors, base64) is well
// under 1 MiB; 16 MiB leaves a wide margin.
const maxJournalLine = 16 << 20

// replayJournal streams records from dir's journal into apply. It
// returns the number of applied records and whether a torn tail was
// dropped. A missing journal is an empty one.
func replayJournal(dir string, apply func(rec)) (records int, truncated bool, err error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("jobs: open journal for replay: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxJournalLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r rec
		if uerr := json.Unmarshal(line, &r); uerr != nil {
			// A torn line means the process died mid-append; every
			// complete record before it has already been applied.
			return records, true, nil
		}
		apply(r)
		records++
	}
	if serr := sc.Err(); serr != nil && !errors.Is(serr, io.EOF) {
		if errors.Is(serr, bufio.ErrTooLong) {
			return records, true, nil
		}
		return records, false, fmt.Errorf("jobs: replay journal: %w", serr)
	}
	return records, truncated, nil
}

// snapshot is the compacted full job table.
type snapshot struct {
	Seq  uint64 `json:"seq"`
	Jobs []*Job `json:"jobs"`
}

// writeSnapshot writes the snapshot atomically: tmp file, fsync,
// rename.
func writeSnapshot(dir string, snap *snapshot) error {
	// Deterministic order: sorted by submission sequence.
	sort.Slice(snap.Jobs, func(i, k int) bool { return snap.Jobs[i].Seq < snap.Jobs[k].Seq })
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("jobs: marshal snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: create snapshot: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		_ = f.Close() // surfacing the write error; close error is secondary
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("jobs: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobs: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("jobs: rename snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads the snapshot; a missing file is an empty one.
func readSnapshot(dir string) (*snapshot, error) {
	b, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &snapshot{}, nil
		}
		return nil, fmt.Errorf("jobs: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, fmt.Errorf("jobs: decode snapshot: %w", err)
	}
	return &snap, nil
}
