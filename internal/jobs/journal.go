package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"positlab/internal/faultfs"
)

// The on-disk layout of a job directory:
//
//	journal.jsonl   append-only record stream, fsynced per record
//	snapshot.json   full job table at the last compaction
//
// Record types (rec.T):
//
//	submit   full Job envelope at submission
//	start    job began an attempt (id, attempt, ts)
//	ckpt     runner checkpoint (id, iter, opaque data)
//	done     job succeeded (id, result, ts)
//	fail     attempt failed (id, error, final; non-final means the job
//	         went back to queued with one retry consumed)
//	cancel   job canceled (id, ts)
//	requeue  running job returned to the queue with its work kept
//	         (graceful drain)
//
// Replay applies records in order on top of the snapshot. A torn final
// line — the signature of a crash mid-append — is dropped; everything
// before it is intact because records are written with a single
// buffered write followed by fsync.
type rec struct {
	T       string          `json:"t"`
	TS      int64           `json:"ts,omitempty"`
	Job     *Job            `json:"job,omitempty"`
	ID      string          `json:"id,omitempty"`
	Attempt int             `json:"attempt,omitempty"`
	Iter    int             `json:"iter,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	Final   bool            `json:"final,omitempty"`
}

const (
	journalName  = "journal.jsonl"
	snapshotName = "snapshot.json"
)

// journal is the append side of the record stream. All I/O goes
// through the faultfs seam so the chaos suite can tear, fail, and
// crash individual appends.
type journal struct {
	f      faultfs.File
	noSync bool
	// broken is set when a failed append could not be repaired: the
	// file may end in a partial line that a later append would fuse
	// with, making replay stop there and drop every record after it.
	// A broken journal refuses all further appends — degraded
	// durability must never silently corrupt acknowledged history.
	broken bool
}

// errJournalBroken marks a journal wedged by an unrepairable partial
// append.
var errJournalBroken = errors.New("jobs: journal broken by unrepaired partial append")

func openJournal(fsys faultfs.FS, dir string, noSync bool) (*journal, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	return &journal{f: f, noSync: noSync}, nil
}

// append writes one record as a single line and syncs it to disk, so
// an acknowledged transition survives a crash immediately after.
//
// A failed write may have applied a prefix of the line (short write,
// ENOSPC). Left in place, that prefix would fuse with the next
// appended record into one unparsable line — and replay, which stops
// at the first garbled line, would drop every acknowledged record
// after it. So a failed append repairs itself by truncating the file
// back to its pre-append length; if the repair fails too, the journal
// wedges (broken) rather than risk corrupting history.
func (j *journal) append(r rec) error {
	if j.broken {
		return errJournalBroken
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("jobs: marshal journal record: %w", err)
	}
	info, err := j.f.Stat()
	if err != nil {
		j.broken = true
		return fmt.Errorf("jobs: stat journal before append: %w", err)
	}
	pre := info.Size()
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		if terr := j.f.Truncate(pre); terr != nil {
			j.broken = true
			return fmt.Errorf("jobs: append journal: %w (repair failed: %v)", err, terr)
		}
		return fmt.Errorf("jobs: append journal: %w", err)
	}
	if j.noSync {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: sync journal: %w", err)
	}
	return nil
}

func (j *journal) close() error { return j.f.Close() }

// truncate resets the journal after a snapshot compaction.
func (j *journal) truncate() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("jobs: truncate journal: %w", err)
	}
	// O_APPEND writes reposition automatically; nothing else to do.
	return nil
}

// maxJournalLine bounds one journal record: a checkpoint for the
// largest admissible system (N = 2048, three vectors, base64) is well
// under 1 MiB; 16 MiB leaves a wide margin.
const maxJournalLine = 16 << 20

// replayJournal streams records from dir's journal into apply. It
// returns the number of applied records and whether a torn tail was
// dropped. A missing journal is an empty one.
//
// A record is applied only if its line is complete (newline-terminated
// and valid JSON): a crash can tear the final append at any byte, and
// replay must never act on a half-written record. Because appends go
// through a single write syscall, only the last line can be torn.
func replayJournal(fsys faultfs.FS, dir string, apply func(rec)) (records int, truncated bool, err error) {
	f, err := fsys.Open(filepath.Join(dir, journalName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("jobs: open journal for replay: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	rd := bufio.NewReaderSize(f, 64<<10)
	for {
		line, rerr := rd.ReadBytes('\n')
		if rerr != nil {
			// Data without a trailing newline is a torn final append.
			if len(bytes.TrimSpace(line)) > 0 {
				return records, true, nil
			}
			if errors.Is(rerr, io.EOF) {
				return records, truncated, nil
			}
			return records, false, fmt.Errorf("jobs: replay journal: %w", rerr)
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if len(line) > maxJournalLine {
			return records, true, nil
		}
		var r rec
		if uerr := json.Unmarshal(line, &r); uerr != nil {
			// A torn line means the process died mid-append; every
			// complete record before it has already been applied.
			return records, true, nil
		}
		apply(r)
		records++
	}
}

// snapshot is the compacted full job table.
type snapshot struct {
	Seq  uint64 `json:"seq"`
	Jobs []*Job `json:"jobs"`
}

// writeSnapshot writes the snapshot with the atomic-replace protocol
// (tmp file, fsync, rename) via the faultfs seam.
func writeSnapshot(fsys faultfs.FS, dir string, snap *snapshot) error {
	// Deterministic order: sorted by submission sequence.
	sort.Slice(snap.Jobs, func(i, k int) bool { return snap.Jobs[i].Seq < snap.Jobs[k].Seq })
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("jobs: marshal snapshot: %w", err)
	}
	if err := faultfs.WriteFileAtomic(fsys, filepath.Join(dir, snapshotName), append(b, '\n')); err != nil {
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads the snapshot; a missing file is an empty one.
func readSnapshot(fsys faultfs.FS, dir string) (*snapshot, error) {
	b, err := fsys.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &snapshot{}, nil
		}
		return nil, fmt.Errorf("jobs: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, fmt.Errorf("jobs: decode snapshot: %w", err)
	}
	return &snap, nil
}
