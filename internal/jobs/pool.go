package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Runner executes one job attempt. Implementations interpret the
// job's Spec (and, on a resumed attempt, its Checkpoint), report
// progress and durable checkpoints through the sink, and return the
// final result payload. Returning an error wrapped with Permanent
// fails the job immediately; any other error consumes a retry. ctx
// cancellation must stop the work promptly — the pool cancels it on
// user cancel, job deadline, and drain.
type Runner interface {
	Run(ctx context.Context, job Job, sink Sink) ([]byte, error)
}

// Sink receives a running job's live progress and durable checkpoints.
type Sink interface {
	// Progress records advisory, memory-only progress.
	Progress(p Progress)
	// Checkpoint journals resumable state; on error the runner should
	// abort (durability can no longer be promised).
	Checkpoint(iter int, data []byte) error
}

// storeSink is the pool's Sink implementation.
type storeSink struct {
	store *Store
	id    string
}

func (s storeSink) Progress(p Progress)                 { s.store.setProgress(s.id, p) }
func (s storeSink) Checkpoint(iter int, d []byte) error { return s.store.saveCheckpoint(s.id, iter, d) }

// PoolConfig tunes the worker pool.
type PoolConfig struct {
	// Workers is the number of concurrent job executors. <= 0 means 2.
	Workers int
	// RetryBackoff is the base delay before re-running a transiently
	// failed job; it doubles per consumed retry. <= 0 means 250ms.
	RetryBackoff time.Duration
}

func (c PoolConfig) fill() PoolConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	return c
}

// Pool executes a Store's queued jobs on a bounded set of workers,
// interactive jobs first. Create with NewPool, call Start once, and
// Drain on shutdown — Drain cancels in-flight jobs and requeues them
// with their checkpoints, so a restarted process resumes them.
type Pool struct {
	store  *Store
	runner Runner
	cfg    PoolConfig

	mu       sync.Mutex
	cond     *sync.Cond
	qi, qb   []string // queued job IDs per priority class, FIFO
	running  map[string]*runningJob
	stopped  bool
	draining bool
	wg       sync.WaitGroup
	m        poolMetrics
}

type runningJob struct {
	cancel     context.CancelFunc
	userCancel bool
}

// NewPool builds a pool over store and runner.
func NewPool(store *Store, runner Runner, cfg PoolConfig) *Pool {
	p := &Pool{
		store:   store,
		runner:  runner,
		cfg:     cfg.fill(),
		running: map[string]*runningJob{},
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Start enqueues every job the store recovered in the queued state
// (submission order) and launches the workers.
func (p *Pool) Start() {
	for _, id := range p.store.queuedIDs() {
		p.enqueue(id)
	}
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Submit stores a new job and hands it to the workers.
func (p *Pool) Submit(kind string, spec []byte, opt SubmitOptions) (Job, error) {
	j, err := p.store.Submit(kind, spec, opt)
	if err != nil {
		return Job{}, err
	}
	p.mu.Lock()
	p.m.submitted++
	p.mu.Unlock()
	p.enqueue(j.ID)
	return j, nil
}

// enqueue makes a queued job visible to the workers. After the pool
// stops, the job simply stays queued in the store; the next process
// picks it up.
func (p *Pool) enqueue(id string) {
	j, ok := p.store.Get(id)
	if !ok {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	if j.Priority == PriorityInteractive {
		p.qi = append(p.qi, id)
	} else {
		p.qb = append(p.qb, id)
	}
	p.cond.Signal()
}

// next blocks until a job is available or the pool stops.
func (p *Pool) next() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return "", false
		}
		if len(p.qi) > 0 {
			id := p.qi[0]
			p.qi = p.qi[1:]
			return id, true
		}
		if len(p.qb) > 0 {
			id := p.qb[0]
			p.qb = p.qb[1:]
			return id, true
		}
		p.cond.Wait()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		id, ok := p.next()
		if !ok {
			return
		}
		p.run(id)
	}
}

// run executes one attempt of one job and applies the outcome policy:
// success, user cancel, drain requeue, deadline, permanent failure, or
// bounded retry with backoff.
func (p *Pool) run(id string) {
	job, ok := p.store.Get(id)
	if !ok || job.State != StateQueued {
		return // canceled (or otherwise settled) while waiting in queue
	}
	attempt := job.Attempt + 1

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if job.MaxRuntime > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, job.MaxRuntime)
		defer tcancel()
	}

	p.mu.Lock()
	if p.stopped {
		// Drain won the race; the job stays queued for the next
		// process.
		p.mu.Unlock()
		return
	}
	rj := &runningJob{cancel: cancel}
	p.running[id] = rj
	p.mu.Unlock()

	if err := p.store.markStart(id, attempt); err != nil {
		p.mu.Lock()
		delete(p.running, id)
		p.mu.Unlock()
		return
	}
	started := time.Now()
	job, _ = p.store.Get(id)
	waitMS := float64(job.StartedNS-job.SubmittedNS) / float64(time.Millisecond)

	result, err := p.runner.Run(ctx, job, storeSink{store: p.store, id: id})
	runMS := float64(time.Since(started)) / float64(time.Millisecond)

	p.mu.Lock()
	delete(p.running, id)
	userCancel := rj.userCancel
	draining := p.draining
	p.m.wait.observe(waitMS)
	p.m.run.observe(runMS)
	p.mu.Unlock()

	// outcome applies one settlement op; its counter is bumped only if
	// the transition won (a concurrent Cancel may have settled the job
	// first, in which case the store refuses with ErrFinished and the
	// cancel side already counted it).
	outcome := func(counter *uint64, op func() error) bool {
		if op() != nil {
			return false
		}
		p.mu.Lock()
		*counter++
		p.mu.Unlock()
		return true
	}

	switch {
	case err == nil:
		outcome(&p.m.completed, func() error { return p.store.finish(id, result) })
	case userCancel:
		outcome(&p.m.canceled, func() error { return p.store.markCanceled(id) })
	case draining && errors.Is(err, context.Canceled):
		outcome(&p.m.requeued, func() error { return p.store.requeueForDrain(id) })
	case errors.Is(err, context.DeadlineExceeded) && job.MaxRuntime > 0:
		outcome(&p.m.failed, func() error {
			return p.store.fail(id, fmt.Sprintf("job exceeded its %v runtime limit", job.MaxRuntime), true)
		})
	case IsPermanent(err):
		outcome(&p.m.failed, func() error { return p.store.fail(id, err.Error(), true) })
	default:
		if job.Retries >= job.MaxRetries {
			outcome(&p.m.failed, func() error { return p.store.fail(id, err.Error(), true) })
			return
		}
		if outcome(&p.m.retries, func() error { return p.store.fail(id, err.Error(), false) }) {
			backoff := p.cfg.RetryBackoff << uint(job.Retries)
			time.AfterFunc(backoff, func() { p.enqueue(id) })
		}
	}
}

// Cancel stops a job: a queued job is settled immediately, a running
// one has its context canceled (the worker settles it when the runner
// returns). Canceling a terminal job returns ErrFinished.
func (p *Pool) Cancel(id string) error {
	// The pool lock is held across the whole decision so a worker
	// cannot move the job from queued to running mid-cancel: run()
	// registers in p.running (under this lock) before markStart, so a
	// job absent from p.running here is queued or terminal, and the
	// store's transition guards settle any remaining race.
	p.mu.Lock()
	defer p.mu.Unlock()
	if rj, ok := p.running[id]; ok {
		rj.userCancel = true
		rj.cancel()
		return nil
	}
	if _, ok := p.store.Get(id); !ok {
		return ErrUnknownJob
	}
	// Queued (or mid-retry-backoff): settle directly. The queue slices
	// may still hold the ID; run() rechecks the state and skips it.
	if err := p.store.markCanceled(id); err != nil {
		return err
	}
	p.m.canceled++
	return nil
}

// Drain stops the pool gracefully: workers stop picking up queued work
// (it stays queued in the store), in-flight jobs are canceled and
// requeued with their last checkpoint, and Drain waits up to timeout
// for the workers to settle. It reports whether the drain completed in
// time.
func (p *Pool) Drain(timeout time.Duration) bool {
	p.mu.Lock()
	p.stopped = true
	p.draining = true
	cancels := make([]context.CancelFunc, 0, len(p.running))
	for _, rj := range p.running {
		cancels = append(cancels, rj.cancel)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Store exposes the pool's job table (read paths of the API layer).
func (p *Pool) Store() *Store { return p.store }
