package jobs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSubmitCancelList hammers every public entry point from
// many goroutines at once. It asserts only invariants (no lost jobs,
// terminal counts consistent) — its real job is to fail under -race if
// any path touches shared state without the lock.
func TestConcurrentSubmitCancelList(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{NoSync: true, CompactEvery: 64})
	p := NewPool(s, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		sink.Progress(Progress{Iterations: 1, Residual: 0.1, Tail: []float64{0.1}})
		if err := sink.Checkpoint(1, []byte(`{}`)); err != nil {
			return nil, Permanent(err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Duration(job.Seq%3) * time.Millisecond):
		}
		return []byte(`{}`), nil
	}), PoolConfig{Workers: 4, RetryBackoff: time.Millisecond})
	p.Start()

	const (
		submitters    = 8
		perSubmitter  = 25
		totalJobs     = submitters * perSubmitter
		hammerReaders = 4
	)
	var wg sync.WaitGroup
	ids := make(chan string, totalJobs)

	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				pri := PriorityBulk
				if (g+i)%2 == 0 {
					pri = PriorityInteractive
				}
				j, err := p.Submit("solve", []byte(fmt.Sprintf(`{"g":%d,"i":%d}`, g, i)), SubmitOptions{Priority: pri, MaxRetries: 1})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids <- j.ID
			}
		}(g)
	}

	stop := make(chan struct{})
	// Cancelers: race cancels against execution; any of queued /
	// running / finished outcomes is legal.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case id := <-ids:
					_ = p.Cancel(id)
				}
			}
		}()
	}
	// Readers: list, filter, metrics, long-poll.
	for g := 0; g < hammerReaders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.List(Filter{Limit: 10})
				_ = s.List(Filter{State: StateRunning})
				_ = p.Metrics()
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				_, _ = s.Wait(ctx, "j000001")
				cancel()
			}
		}()
	}

	// Wait for all jobs to settle or park in the queue-free steady
	// state (canceled jobs settle instantly, so this converges fast).
	deadline := time.Now().Add(30 * time.Second)
	for {
		settled := 0
		for _, j := range s.List(Filter{}) {
			if j.State.Terminal() {
				settled++
			}
		}
		if settled == totalJobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs settled", settled, totalJobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := s.Len(); got != totalJobs {
		t.Fatalf("store has %d jobs, want %d", got, totalJobs)
	}
	m := p.Metrics()
	if m.Submitted != totalJobs {
		t.Fatalf("metrics.Submitted = %d, want %d", m.Submitted, totalJobs)
	}
	if m.Completed+m.Failed+m.Canceled != totalJobs {
		t.Fatalf("terminal counters %d+%d+%d != %d", m.Completed, m.Failed, m.Canceled, totalJobs)
	}
	if !p.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
}
