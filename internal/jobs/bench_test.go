package jobs

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// noopRunner completes immediately; benchmarks over it measure the
// subsystem (journal, queue, settle), not the solver.
var noopRunner = runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
	return []byte(`{"ok":true}`), nil
})

func benchSubmitComplete(b *testing.B, dir string, cfg Config) {
	s, err := Open(dir, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			b.Errorf("Close: %v", err)
		}
	}()
	p := NewPool(s, noopRunner, PoolConfig{Workers: 4})
	p.Start()
	defer p.Drain(30 * time.Second)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := p.Submit("bench", []byte(`{}`), SubmitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		got, err := s.Wait(context.Background(), j.ID)
		if err != nil || got.State != StateSucceeded {
			b.Fatalf("job %s: state=%s err=%v", j.ID, got.State, err)
		}
	}
}

func BenchmarkSubmitCompleteEphemeral(b *testing.B) {
	benchSubmitComplete(b, "", Config{})
}

func BenchmarkSubmitCompleteJournaled(b *testing.B) {
	benchSubmitComplete(b, b.TempDir(), Config{})
}

func BenchmarkSubmitCompleteJournaledNoSync(b *testing.B) {
	benchSubmitComplete(b, b.TempDir(), Config{NoSync: true})
}

// seedJournal populates dir with n settled jobs plus one interrupted
// running job carrying a checkpoint — the worst realistic replay shape.
func seedJournal(tb testing.TB, dir string, n int, ckptBytes int) {
	tb.Helper()
	s, err := Open(dir, Config{NoSync: true, CompactEvery: 1 << 30})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j, err := s.Submit("bench", []byte(`{"i":1}`), SubmitOptions{})
		if err != nil {
			tb.Fatal(err)
		}
		if err := s.markStart(j.ID, 1); err != nil {
			tb.Fatal(err)
		}
		if err := s.finish(j.ID, []byte(`{"ok":true}`)); err != nil {
			tb.Fatal(err)
		}
	}
	j, err := s.Submit("bench", []byte(`{}`), SubmitOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.markStart(j.ID, 1); err != nil {
		tb.Fatal(err)
	}
	ckpt, err := json.Marshal(map[string]any{"state": make([]byte, ckptBytes)})
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.saveCheckpoint(j.ID, 100, ckpt); err != nil {
		tb.Fatal(err)
	}
	if err := s.Close(); err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkReplay1000Jobs(b *testing.B) {
	dir := b.TempDir()
	seedJournal(b, dir, 1000, 64<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != 1001 {
			b.Fatalf("replayed %d jobs, want 1001", s.Len())
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriteJobsBenchReport regenerates BENCH_jobs.json at the repo
// root. Gated behind POSITLAB_BENCH_JOBS=1 so ordinary test runs stay
// fast; `make bench-jobs` sets it.
func TestWriteJobsBenchReport(t *testing.T) {
	if os.Getenv("POSITLAB_BENCH_JOBS") != "1" {
		t.Skip("set POSITLAB_BENCH_JOBS=1 to regenerate BENCH_jobs.json")
	}

	type throughputResult struct {
		Name    string  `json:"name"`
		Jobs    int     `json:"jobs"`
		JobsPS  float64 `json:"jobs_per_s"`
		WaitP50 float64 `json:"wait_p50_ms"`
		WaitP99 float64 `json:"wait_p99_ms"`
		RunP50  float64 `json:"run_p50_ms"`
		RunP99  float64 `json:"run_p99_ms"`
		Note    string  `json:"note,omitempty"`
	}

	// measure drives jobs submit→complete for d and reports throughput
	// with the pool's own latency quantiles.
	measure := func(name, dir string, cfg Config, d time.Duration, note string) throughputResult {
		s, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPool(s, noopRunner, PoolConfig{Workers: 4})
		p.Start()
		n := 0
		start := time.Now()
		for time.Since(start) < d {
			j, err := p.Submit("bench", []byte(`{}`), SubmitOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got, err := s.Wait(context.Background(), j.ID); err != nil || got.State != StateSucceeded {
				t.Fatalf("job %s: %s %v", j.ID, got.State, err)
			}
			n++
		}
		elapsed := time.Since(start).Seconds()
		m := p.Metrics()
		if !p.Drain(30 * time.Second) {
			t.Fatal("drain timed out")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return throughputResult{
			Name:    name,
			Jobs:    n,
			JobsPS:  float64(n) / elapsed,
			WaitP50: m.WaitP50MS,
			WaitP99: m.WaitP99MS,
			RunP50:  m.RunP50MS,
			RunP99:  m.RunP99MS,
			Note:    note,
		}
	}

	runs := []throughputResult{
		measure("submit-complete ephemeral", "", Config{}, 3*time.Second,
			"no journal: upper bound of the queue/settle machinery"),
		measure("submit-complete journaled", t.TempDir(), Config{}, 3*time.Second,
			"fsync per record (production default): throughput is fsync-bound"),
		measure("submit-complete journaled nosync", t.TempDir(), Config{NoSync: true}, 3*time.Second,
			"journal without fsync: isolates the encoding/write cost from disk flushes"),
	}

	// Recovery replay: time Open over a journal of settled jobs plus an
	// interrupted checkpointed job.
	type replayResult struct {
		Jobs          int     `json:"jobs"`
		CheckpointKiB int     `json:"checkpoint_kib"`
		OpenMS        float64 `json:"open_ms"`
		ReplayMS      float64 `json:"replay_ms"`
		Resumed       int     `json:"resumed"`
	}
	replayCase := func(n, ckptKiB int) replayResult {
		dir := t.TempDir()
		seedJournal(t, dir, n, ckptKiB<<10)
		start := time.Now()
		s, err := Open(dir, Config{})
		if err != nil {
			t.Fatal(err)
		}
		openMS := float64(time.Since(start)) / float64(time.Millisecond)
		st := s.ReplayStats()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return replayResult{Jobs: n + 1, CheckpointKiB: ckptKiB, OpenMS: openMS, ReplayMS: st.MS, Resumed: st.Resumed}
	}
	replays := []replayResult{
		replayCase(100, 64),
		replayCase(1000, 64),
		replayCase(1000, 1024),
	}

	report := map[string]any{
		"benchmark": "jobs subsystem: submit-to-complete throughput over a no-op runner, and crash-recovery journal replay latency at Open",
		"date":      time.Now().UTC().Format("2006-01-02"),
		"host": map[string]any{
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"os":         runtime.GOOS + "/" + runtime.GOARCH,
			"go":         runtime.Version(),
		},
		"throughput": runs,
		"replay":     replays,
		"notes": []string{
			"throughput runner is a no-op: numbers bound the subsystem overhead, not solver time",
			"journaled throughput is fsync-bound by design: every acknowledged transition is durable",
			"replay cases include one interrupted running job with a checkpoint of the listed size; resumed=1 confirms recovery kicked in",
		},
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := "../../BENCH_jobs.json"
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
