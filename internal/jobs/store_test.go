package jobs

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func mustSubmit(t *testing.T, s *Store, kind string, opt SubmitOptions) Job {
	t.Helper()
	j, err := s.Submit(kind, []byte(`{"w":1}`), opt)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return j
}

func TestStoreSubmitGetList(t *testing.T) {
	s := mustOpen(t, "", Config{})
	a := mustSubmit(t, s, "solve", SubmitOptions{Priority: PriorityInteractive})
	b := mustSubmit(t, s, "experiment", SubmitOptions{})

	if a.ID == b.ID {
		t.Fatalf("duplicate IDs: %s", a.ID)
	}
	if a.State != StateQueued || b.Priority != PriorityBulk {
		t.Fatalf("defaults wrong: %+v %+v", a, b)
	}
	got, ok := s.Get(a.ID)
	if !ok || got.Kind != "solve" {
		t.Fatalf("Get(%s) = %+v, %v", a.ID, got, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get of unknown id succeeded")
	}

	all := s.List(Filter{})
	if len(all) != 2 || all[0].ID != b.ID {
		t.Fatalf("List = %+v, want newest first", all)
	}
	if l := s.List(Filter{Kind: "solve"}); len(l) != 1 || l[0].ID != a.ID {
		t.Fatalf("kind filter = %+v", l)
	}
	if l := s.List(Filter{Limit: 1}); len(l) != 1 {
		t.Fatalf("limit ignored: %+v", l)
	}
	qi, qb := s.QueueDepths()
	if qi != 1 || qb != 1 {
		t.Fatalf("queue depths = %d, %d", qi, qb)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustSubmit(t, s1, "solve", SubmitOptions{Priority: PriorityInteractive, MaxRetries: 3})
	b := mustSubmit(t, s1, "experiment", SubmitOptions{})
	c := mustSubmit(t, s1, "solve", SubmitOptions{})

	if err := s1.markStart(a.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := s1.saveCheckpoint(a.ID, 10, []byte(`{"iter":10}`)); err != nil {
		t.Fatal(err)
	}
	if err := s1.finish(a.ID, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s1.markStart(b.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := s1.fail(b.ID, "flaky", false); err != nil {
		t.Fatal(err)
	}
	if err := s1.markCanceled(c.ID); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Config{})
	ga, _ := s2.Get(a.ID)
	if ga.State != StateSucceeded || string(ga.Result) != `{"ok":true}` || ga.CheckpointIter != 10 {
		t.Fatalf("replayed a = %+v", ga)
	}
	if ga.MaxRetries != 3 || ga.Priority != PriorityInteractive {
		t.Fatalf("submit envelope lost: %+v", ga)
	}
	gb, _ := s2.Get(b.ID)
	if gb.State != StateQueued || gb.Retries != 1 || gb.Error != "flaky" {
		t.Fatalf("replayed b = %+v", gb)
	}
	gc, _ := s2.Get(c.ID)
	if gc.State != StateCanceled {
		t.Fatalf("replayed c = %+v", gc)
	}
	// Sequence numbers continue, no ID reuse.
	d := mustSubmit(t, s2, "solve", SubmitOptions{})
	if d.Seq <= c.Seq {
		t.Fatalf("seq went backwards: %d after %d", d.Seq, c.Seq)
	}
}

func TestCrashRecoveryRequeuesRunning(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run := mustSubmit(t, s1, "solve", SubmitOptions{})
	fresh := mustSubmit(t, s1, "solve", SubmitOptions{})
	if err := s1.markStart(run.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := s1.saveCheckpoint(run.ID, 25, []byte(`{"x":"state"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s1.markStart(fresh.ID, 1); err != nil {
		t.Fatal(err)
	}
	// Close only releases the file handle; it journals no transitions,
	// so the on-disk state is exactly what a SIGKILL would leave.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Config{})
	st := s2.ReplayStats()
	if st.Resumed != 1 || st.Restarted != 1 {
		t.Fatalf("replay stats = %+v, want 1 resumed + 1 restarted", st)
	}
	g, _ := s2.Get(run.ID)
	if g.State != StateQueued || g.Recoveries != 1 {
		t.Fatalf("interrupted job = %+v, want queued with 1 recovery", g)
	}
	if string(g.Checkpoint) != `{"x":"state"}` || g.CheckpointIter != 25 {
		t.Fatalf("checkpoint lost: %+v", g)
	}
	if ids := s2.queuedIDs(); len(ids) != 2 || ids[0] != run.ID {
		t.Fatalf("queued order = %v", ids)
	}
}

func TestTornJournalTailDropped(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustSubmit(t, s1, "solve", SubmitOptions{})
	if err := s1.finish(a.ID, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record at the tail.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"fail","id":"` + a.ID + `","fin`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Config{})
	if !s2.ReplayStats().Truncated {
		t.Fatal("torn tail not reported")
	}
	if g, _ := s2.Get(a.ID); g.State != StateSucceeded {
		t.Fatalf("job state corrupted by torn tail: %+v", g)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Config{CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	var last Job
	for i := 0; i < 10; i++ {
		j := mustSubmit(t, s1, "solve", SubmitOptions{})
		if err := s1.markStart(j.ID, 1); err != nil {
			t.Fatal(err)
		}
		if err := s1.finish(j.ID, []byte(`{"i":"`+j.ID+`"}`)); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot after 30 records with CompactEvery=8: %v", err)
	}
	info, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// The journal was truncated at least once; 30 records would be far
	// larger than the post-compaction residue.
	if info.Size() > 4096 {
		t.Fatalf("journal size %d, want truncated by compaction", info.Size())
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Config{})
	if s2.Len() != 10 {
		t.Fatalf("reopened store has %d jobs, want 10", s2.Len())
	}
	if g, _ := s2.Get(last.ID); g.State != StateSucceeded {
		t.Fatalf("last job = %+v", g)
	}
}

func TestWaitLongPoll(t *testing.T) {
	s := mustOpen(t, "", Config{})
	j := mustSubmit(t, s, "solve", SubmitOptions{})

	// Expires while still queued: returns the live view with ctx error.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	got, err := s.Wait(ctx, j.ID)
	if err == nil || got.State != StateQueued {
		t.Fatalf("Wait on live job = %+v, %v", got, err)
	}

	done := make(chan Job, 1)
	go func() {
		g, _ := s.Wait(context.Background(), j.ID)
		done <- g
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.finish(j.ID, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-done:
		if g.State != StateSucceeded {
			t.Fatalf("Wait returned %+v", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never woke")
	}

	if _, err := s.Wait(context.Background(), "nope"); err != ErrUnknownJob {
		t.Fatalf("Wait unknown = %v", err)
	}
}

func TestProgressScrubbed(t *testing.T) {
	s := mustOpen(t, "", Config{})
	j := mustSubmit(t, s, "solve", SubmitOptions{})
	nan := math.NaN()
	s.setProgress(j.ID, Progress{Iterations: 3, Residual: nan, Tail: []float64{1, nan, 2}})
	g, _ := s.Get(j.ID)
	if g.Progress.Residual != 0 || len(g.Progress.Tail) != 2 {
		t.Fatalf("progress not scrubbed: %+v", g.Progress)
	}
	if _, err := json.Marshal(g); err != nil {
		t.Fatalf("job with scrubbed progress fails to marshal: %v", err)
	}
}
