package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"positlab/internal/faultfs"
)

// Config tunes a Store. The zero value is the documented default.
type Config struct {
	// CompactEvery is the number of journal records after which the
	// store snapshots the job table and truncates the journal.
	// <= 0 means 4096.
	CompactEvery int
	// NoSync skips the per-record fsync. Only for benchmarks and
	// tests that measure the in-memory path; production journals sync.
	NoSync bool
	// FS is the filesystem seam every durable operation goes through.
	// Nil means the real filesystem (faultfs.OS); the chaos suite and
	// positd's -fault-plan flag substitute a fault injector.
	FS faultfs.FS
}

func (c Config) fill() Config {
	if c.CompactEvery <= 0 {
		c.CompactEvery = 4096
	}
	c.FS = faultfs.OrOS(c.FS)
	return c
}

// ReplayStats describes what Open reconstructed from disk.
type ReplayStats struct {
	// SnapshotJobs: jobs loaded from snapshot.json.
	SnapshotJobs int `json:"snapshot_jobs"`
	// Records: journal records replayed on top.
	Records int `json:"records"`
	// Resumed: interrupted running jobs requeued with a checkpoint to
	// resume from.
	Resumed int `json:"resumed"`
	// Restarted: interrupted running jobs requeued without a
	// checkpoint (they start over).
	Restarted int `json:"restarted"`
	// Truncated: a torn final journal line was dropped.
	Truncated bool `json:"truncated,omitempty"`
	// MS: wall time of the replay.
	MS float64 `json:"ms"`
}

// Store is the durable job table: an in-memory map of jobs mirrored to
// the journal. All methods are safe for concurrent use. A Store opened
// with an empty dir is ephemeral (no journal, no durability) — used by
// tests and by servers that opt out of persistence.
type Store struct {
	mu      sync.Mutex
	dir     string
	cfg     Config
	j       *journal // nil when ephemeral
	jobs    map[string]*Job
	order   []string // job IDs in submission order
	seq     uint64
	changed chan struct{} // closed and replaced on every mutation
	replay  ReplayStats
	// journalErrs counts append/compaction failures; the in-memory
	// state stays authoritative and the server keeps running with
	// degraded durability.
	journalErrs uint64
	recsSince   int
	closed      bool
}

// Open loads (or creates) the job store in dir. An empty dir yields an
// ephemeral in-memory store and never fails. Jobs found in the
// "running" state belong to a process that no longer exists; they are
// returned to the queue, keeping their last journaled checkpoint so
// the next attempt resumes rather than restarts.
func Open(dir string, cfg Config) (*Store, error) {
	s := &Store{
		dir:     dir,
		cfg:     cfg.fill(),
		jobs:    map[string]*Job{},
		changed: make(chan struct{}),
	}
	if dir == "" {
		return s, nil
	}
	start := time.Now()
	if err := s.cfg.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create dir: %w", err)
	}
	snap, err := readSnapshot(s.cfg.FS, dir)
	if err != nil {
		return nil, err
	}
	for _, j := range snap.Jobs {
		jc := j.clone()
		s.jobs[jc.ID] = &jc
		s.order = append(s.order, jc.ID)
		if jc.Seq > s.seq {
			s.seq = jc.Seq
		}
	}
	s.replay.SnapshotJobs = len(snap.Jobs)
	if snap.Seq > s.seq {
		s.seq = snap.Seq
	}
	records, truncated, err := replayJournal(s.cfg.FS, dir, s.applyLocked)
	if err != nil {
		return nil, err
	}
	s.replay.Records = records
	s.replay.Truncated = truncated
	// Crash recovery: a "running" job's process is gone. Requeue it;
	// the journaled checkpoint (when present) makes the next attempt a
	// resume.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != StateRunning {
			continue
		}
		j.State = StateQueued
		j.Recoveries++
		j.Progress = Progress{}
		if len(j.Checkpoint) > 0 {
			s.replay.Resumed++
		} else {
			s.replay.Restarted++
		}
	}
	if s.j, err = openJournal(s.cfg.FS, dir, s.cfg.NoSync); err != nil {
		return nil, err
	}
	s.recsSince = records
	if s.recsSince > s.cfg.CompactEvery {
		s.compactLocked()
	}
	s.replay.MS = float64(time.Since(start)) / float64(time.Millisecond)
	return s, nil
}

// applyLocked replays one journal record into the in-memory table.
// Unknown IDs and types are skipped: the journal may legitimately hold
// records for jobs already folded into the snapshot by a compaction
// race, and forward compatibility beats a refusal to start.
func (s *Store) applyLocked(r rec) {
	if r.T == "submit" {
		if r.Job == nil {
			return
		}
		jc := r.Job.clone()
		if _, dup := s.jobs[jc.ID]; dup {
			return
		}
		s.jobs[jc.ID] = &jc
		s.order = append(s.order, jc.ID)
		if jc.Seq > s.seq {
			s.seq = jc.Seq
		}
		return
	}
	j, ok := s.jobs[r.ID]
	if !ok {
		return
	}
	switch r.T {
	case "start":
		j.State = StateRunning
		j.Attempt = r.Attempt
		j.StartedNS = r.TS
	case "ckpt":
		j.Checkpoint = r.Data
		j.CheckpointIter = r.Iter
	case "done":
		j.State = StateSucceeded
		j.Result = r.Result
		j.Error = ""
		j.FinishedNS = r.TS
	case "fail":
		j.Error = r.Error
		if r.Final {
			j.State = StateFailed
			j.FinishedNS = r.TS
		} else {
			j.State = StateQueued
			j.Retries++
		}
	case "cancel":
		j.State = StateCanceled
		j.Error = "canceled"
		j.FinishedNS = r.TS
	case "requeue":
		j.State = StateQueued
		j.Recoveries++
		j.Progress = Progress{}
	}
}

// appendLocked journals a record, counting (not failing on) journal
// errors: the in-memory state is authoritative and the server keeps
// serving with degraded durability. Submission is the exception and
// uses appendStrictLocked.
func (s *Store) appendLocked(r rec) {
	if err := s.appendStrictLocked(r); err != nil {
		s.journalErrs++
	}
}

func (s *Store) appendStrictLocked(r rec) error {
	if s.j == nil {
		return nil
	}
	if s.closed {
		return ErrClosed
	}
	if err := s.j.append(r); err != nil {
		return err
	}
	s.recsSince++
	if s.recsSince > s.cfg.CompactEvery {
		s.compactLocked()
	}
	return nil
}

// compactLocked writes the full job table as a snapshot and truncates
// the journal. Failures leave the journal as-is (still correct, just
// longer) and are counted.
func (s *Store) compactLocked() {
	if s.j == nil {
		return
	}
	snap := &snapshot{Seq: s.seq}
	for _, id := range s.order {
		jc := s.jobs[id].clone()
		snap.Jobs = append(snap.Jobs, &jc)
	}
	if err := writeSnapshot(s.cfg.FS, s.dir, snap); err != nil {
		s.journalErrs++
		return
	}
	if err := s.j.truncate(); err != nil {
		s.journalErrs++
		return
	}
	s.recsSince = 0
}

// broadcastLocked wakes every Wait-er.
func (s *Store) broadcastLocked() {
	close(s.changed)
	s.changed = make(chan struct{})
}

func nowNS() int64 { return time.Now().UnixNano() }

// normRaw validates an opaque payload destined for the journal. Every
// record line and snapshot is JSON, so an invalid payload would poison
// them; reject it at the boundary instead. Empty means "no payload".
func normRaw(b []byte, what string) (json.RawMessage, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if !json.Valid(b) {
		return nil, fmt.Errorf("jobs: %s is not valid JSON", what)
	}
	return append(json.RawMessage(nil), b...), nil
}

// Submit appends a new queued job. Unlike the other transitions, a
// journal failure here fails the submission — acknowledging a job the
// journal never saw would break the durability contract.
func (s *Store) Submit(kind string, spec []byte, opt SubmitOptions) (Job, error) {
	if opt.Priority == "" {
		opt.Priority = PriorityBulk
	}
	rawSpec, err := normRaw(spec, "job spec")
	if err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, ErrClosed
	}
	s.seq++
	j := &Job{
		ID:              fmt.Sprintf("j%06d", s.seq),
		Seq:             s.seq,
		Kind:            kind,
		Priority:        opt.Priority,
		Spec:            rawSpec,
		State:           StateQueued,
		MaxRetries:      opt.MaxRetries,
		CheckpointEvery: opt.CheckpointEvery,
		MaxRuntime:      opt.MaxRuntime,
		SubmittedNS:     nowNS(),
	}
	// Insert before journaling: if this very record triggers a
	// compaction, the snapshot must already contain the job (the
	// truncation erases its submit record).
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if err := s.appendStrictLocked(rec{T: "submit", Job: j, TS: j.SubmittedNS}); err != nil {
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		// The sequence number is NOT rolled back: the record may have
		// reached the journal even though the append reported failure
		// (write landed, fsync errored). Reusing the ID would let a
		// later successful submit collide with the failed record on
		// replay — the replayed (failed) spec would shadow the
		// acknowledged one. A gap in the ID space is harmless; a
		// collision breaks the durability contract.
		s.journalErrs++
		return Job{}, err
	}
	s.broadcastLocked()
	return j.clone(), nil
}

// Get returns a copy of the job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.clone(), true
}

// List returns matching jobs, newest first.
func (s *Store) List(f Filter) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Job
	for i := len(s.order) - 1; i >= 0; i-- {
		j := s.jobs[s.order[i]]
		if !f.matches(j) {
			continue
		}
		out = append(out, j.clone())
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// queuedIDs returns queued job IDs in submission order (the pool's
// startup and FIFO source of truth).
func (s *Store) queuedIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, id := range s.order {
		if s.jobs[id].State == StateQueued {
			out = append(out, id)
		}
	}
	return out
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the job either way (zero Job if unknown).
func (s *Store) Wait(ctx context.Context, id string) (Job, error) {
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return Job{}, ErrUnknownJob
		}
		if j.State.Terminal() {
			jc := j.clone()
			s.mu.Unlock()
			return jc, nil
		}
		ch := s.changed
		jc := j.clone()
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return jc, ctx.Err()
		}
	}
}

// mutate runs fn on the live job under the lock, journals r, and
// broadcasts. It is the shared shape of every pool-side transition. fn
// returning an error (a lost transition race, e.g. cancel vs. finish)
// aborts the mutation: nothing is journaled or changed.
func (s *Store) mutate(id string, r rec, fn func(*Job) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if err := fn(j); err != nil {
		return err
	}
	s.appendLocked(r)
	s.broadcastLocked()
	return nil
}

// markStart transitions a queued job to running. A job settled between
// dequeue and start (canceled while in the worker's hand) returns
// ErrFinished and must not run.
func (s *Store) markStart(id string, attempt int) error {
	ts := nowNS()
	return s.mutate(id, rec{T: "start", ID: id, Attempt: attempt, TS: ts}, func(j *Job) error {
		if j.State != StateQueued {
			return ErrFinished
		}
		j.State = StateRunning
		j.Attempt = attempt
		j.StartedNS = ts
		j.Progress = Progress{}
		return nil
	})
}

// saveCheckpoint journals the runner's resumable state. Unlike other
// transitions this one reports journal failure to the caller (the
// solver aborts rather than running on with a durability guarantee it
// no longer has).
func (s *Store) saveCheckpoint(id string, iter int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	d, err := normRaw(data, "checkpoint")
	if err != nil {
		return err
	}
	// Update the job before journaling, like Submit: if this append
	// triggers a compaction, the snapshot must already carry the new
	// checkpoint — the compaction truncates the journal, taking the
	// just-written ckpt record with it. On append failure (no
	// compaction ran) the old values are restored.
	prevData, prevIter := j.Checkpoint, j.CheckpointIter
	j.Checkpoint = d
	j.CheckpointIter = iter
	if err := s.appendStrictLocked(rec{T: "ckpt", ID: id, Iter: iter, Data: d, TS: nowNS()}); err != nil {
		j.Checkpoint = prevData
		j.CheckpointIter = prevIter
		s.journalErrs++
		return err
	}
	s.broadcastLocked()
	return nil
}

// setProgress updates live progress (memory only, never journaled).
func (s *Store) setProgress(id string, p Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.Progress = p.scrub()
	}
	s.broadcastLocked()
}

// notTerminal is the shared precondition of every settle transition: a
// job that already reached a terminal state stays there, and the losing
// side of the race learns it via ErrFinished.
func notTerminal(j *Job) error {
	if j.State.Terminal() {
		return ErrFinished
	}
	return nil
}

// finish marks success. A result that is not valid JSON (a misbehaving
// runner) is preserved as a JSON string rather than poisoning the
// journal or leaving the job unsettleable.
func (s *Store) finish(id string, result []byte) error {
	ts := nowNS()
	res, err := normRaw(result, "result")
	if err != nil {
		quoted, qerr := json.Marshal(string(result))
		if qerr != nil {
			quoted = []byte(`"unencodable result"`)
		}
		res = quoted
	}
	return s.mutate(id, rec{T: "done", ID: id, Result: res, TS: ts}, func(j *Job) error {
		if err := notTerminal(j); err != nil {
			return err
		}
		j.State = StateSucceeded
		j.Result = res
		j.Error = ""
		j.FinishedNS = ts
		return nil
	})
}

// fail records a failed attempt; final decides between terminal
// failure and a retry requeue.
func (s *Store) fail(id string, msg string, final bool) error {
	ts := nowNS()
	return s.mutate(id, rec{T: "fail", ID: id, Error: msg, Final: final, TS: ts}, func(j *Job) error {
		if err := notTerminal(j); err != nil {
			return err
		}
		j.Error = msg
		if final {
			j.State = StateFailed
			j.FinishedNS = ts
		} else {
			j.State = StateQueued
			j.Retries++
		}
		return nil
	})
}

// markCanceled terminates a job at the user's request.
func (s *Store) markCanceled(id string) error {
	ts := nowNS()
	return s.mutate(id, rec{T: "cancel", ID: id, TS: ts}, func(j *Job) error {
		if err := notTerminal(j); err != nil {
			return err
		}
		j.State = StateCanceled
		j.Error = "canceled"
		j.FinishedNS = ts
		return nil
	})
}

// requeueForDrain returns a running job to the queue with its
// checkpoint intact (graceful shutdown: the work is not lost, the next
// process resumes it).
func (s *Store) requeueForDrain(id string) error {
	return s.mutate(id, rec{T: "requeue", ID: id, TS: nowNS()}, func(j *Job) error {
		if err := notTerminal(j); err != nil {
			return err
		}
		j.State = StateQueued
		j.Recoveries++
		j.Progress = Progress{}
		return nil
	})
}

// ReplayStats reports what Open reconstructed.
func (s *Store) ReplayStats() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replay
}

// JournalErrors reports accumulated journal write failures.
func (s *Store) JournalErrors() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalErrs
}

// QueueDepths reports queued jobs per priority class.
func (s *Store) QueueDepths() (interactive, bulk int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != StateQueued {
			continue
		}
		if j.Priority == PriorityInteractive {
			interactive++
		} else {
			bulk++
		}
	}
	return interactive, bulk
}

// Len reports the total number of jobs in the table.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Close closes the journal. Further journaled transitions fail with
// ErrClosed; in-memory reads keep working. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.j == nil {
		s.closed = true
		return nil
	}
	s.closed = true
	return s.j.close()
}
