package jobs

import "sort"

// latWindow is the latency reservoir size: quantiles are computed over
// the most recent latWindow observations (matching the serving layer's
// approach; a sliding window is what an operator wants under changing
// load).
const latWindow = 256

// latencyWindow is a fixed-size sliding reservoir of millisecond
// latencies. Methods require external locking (the pool's mutex).
type latencyWindow struct {
	buf [latWindow]float64
	n   int
}

func (w *latencyWindow) observe(ms float64) {
	w.buf[w.n%latWindow] = ms
	w.n++
}

// quantiles returns p50/p99 over the retained window; zeros before any
// observation (keeping the snapshot JSON-marshalable).
func (w *latencyWindow) quantiles() (p50, p99 float64) {
	n := w.n
	if n > latWindow {
		n = latWindow
	}
	if n == 0 {
		return 0, 0
	}
	s := make([]float64, n)
	copy(s, w.buf[:n])
	sort.Float64s(s)
	return s[int(0.50*float64(n-1))], s[int(0.99*float64(n-1))]
}

// poolMetrics is the pool's mutable aggregate, guarded by Pool.mu.
type poolMetrics struct {
	submitted, completed, failed, canceled uint64
	retries, requeued                      uint64
	wait, run                              latencyWindow
}

// MetricsSnapshot is the jobs section of /debug/metrics: queue depths
// per priority class, lifecycle counters, wait/run latency quantiles,
// and the journal/recovery health of the store.
type MetricsSnapshot struct {
	QueueInteractive int    `json:"queue_interactive"`
	QueueBulk        int    `json:"queue_bulk"`
	Running          int    `json:"running"`
	Jobs             int    `json:"jobs"`
	Submitted        uint64 `json:"submitted"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`
	Canceled         uint64 `json:"canceled"`
	Retries          uint64 `json:"retries"`
	Requeued         uint64 `json:"requeued"`
	// WaitP50MS/WaitP99MS: submit→start latency (includes retry
	// backoff); RunP50MS/RunP99MS: attempt wall time.
	WaitP50MS     float64     `json:"wait_p50_ms"`
	WaitP99MS     float64     `json:"wait_p99_ms"`
	RunP50MS      float64     `json:"run_p50_ms"`
	RunP99MS      float64     `json:"run_p99_ms"`
	JournalErrors uint64      `json:"journal_errors"`
	Replay        ReplayStats `json:"replay"`
}

// Metrics renders the pool's current aggregate.
func (p *Pool) Metrics() MetricsSnapshot {
	qi, qb := p.store.QueueDepths()
	snap := MetricsSnapshot{
		QueueInteractive: qi,
		QueueBulk:        qb,
		Jobs:             p.store.Len(),
		JournalErrors:    p.store.JournalErrors(),
		Replay:           p.store.ReplayStats(),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap.Running = len(p.running)
	snap.Submitted = p.m.submitted
	snap.Completed = p.m.completed
	snap.Failed = p.m.failed
	snap.Canceled = p.m.canceled
	snap.Retries = p.m.retries
	snap.Requeued = p.m.requeued
	snap.WaitP50MS, snap.WaitP99MS = p.m.wait.quantiles()
	snap.RunP50MS, snap.RunP99MS = p.m.run.quantiles()
	return snap
}
