// Package jobs is the durable asynchronous job-execution subsystem:
// a job store backed by an append-only JSONL journal with periodic
// snapshot compaction, and a bounded worker pool with priority
// classes, per-job cancellation, deadlines, and bounded retry with
// backoff.
//
// The package is deliberately generic: a job's Spec, Checkpoint, and
// Result are opaque json.RawMessage payloads interpreted only by the
// Runner the pool is constructed with (for positd, the serving layer's
// solve/experiment executor). Everything the subsystem itself needs —
// states, priorities, attempts, checkpoint cadence — lives in the Job
// envelope and is journaled, so a crashed or restarted process replays
// the journal on Open and resumes interrupted work from its last
// checkpoint instead of losing it.
//
// Durability model: every state transition (submit, start, checkpoint,
// done, fail, cancel, requeue) appends one JSON line to
// <dir>/journal.jsonl and fsyncs it. When the journal exceeds the
// compaction threshold, the store writes <dir>/snapshot.json (the full
// job table) atomically and truncates the journal. Open loads the
// snapshot, replays the journal — tolerating a torn final line from a
// mid-write crash — and converts every job found "running" back to
// "queued": the process that ran it is gone, and its journaled
// checkpoint (if any) lets the next attempt resume.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states. Queued and Running are live; the rest are
// terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Priority is a job's scheduling class. Workers always prefer
// interactive jobs over bulk ones; within a class, FIFO.
type Priority string

// Priority classes: interactive solves ahead of bulk experiment
// sweeps.
const (
	PriorityInteractive Priority = "interactive"
	PriorityBulk        Priority = "bulk"
)

// ParsePriority validates a priority name; empty defaults to bulk.
func ParsePriority(s string) (Priority, error) {
	switch Priority(s) {
	case PriorityInteractive, PriorityBulk:
		return Priority(s), nil
	case "":
		return PriorityBulk, nil
	}
	return "", fmt.Errorf("jobs: unknown priority %q (known: interactive, bulk)", s)
}

// Progress is the in-memory live progress of a running job: solver
// iterations completed, the latest residual-style metric, and a short
// tail of the metric series. Progress is advisory and not journaled —
// recovery reconstructs position from the last checkpoint instead.
type Progress struct {
	Iterations int       `json:"iterations,omitempty"`
	Residual   float64   `json:"residual,omitempty"`
	Tail       []float64 `json:"tail,omitempty"`
}

// scrub drops non-finite values so the containing Job always marshals
// (encoding/json rejects NaN and ±Inf; a diverged solve legitimately
// produces them).
func (p Progress) scrub() Progress {
	if math.IsNaN(p.Residual) || math.IsInf(p.Residual, 0) {
		p.Residual = 0
	}
	var tail []float64
	for _, v := range p.Tail {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			tail = append(tail, v)
		}
	}
	p.Tail = tail
	return p
}

// Job is one unit of durable asynchronous work. The envelope fields
// are managed by the store and pool; Spec, Checkpoint, and Result are
// opaque to this package.
type Job struct {
	// ID is the store-assigned identifier ("j000001", ...).
	ID string `json:"id"`
	// Seq is the monotone submission sequence number behind ID.
	Seq uint64 `json:"seq"`
	// Kind names the runner-interpreted job type ("solve",
	// "experiment", ...).
	Kind string `json:"kind"`
	// Priority is the scheduling class.
	Priority Priority `json:"priority"`
	// Spec is the runner-interpreted work description.
	Spec json.RawMessage `json:"spec,omitempty"`

	State State `json:"state"`
	// Attempt is the 1-based count of times the job has been started.
	Attempt int `json:"attempt,omitempty"`
	// Retries counts transient-failure retries consumed so far.
	Retries int `json:"retries,omitempty"`
	// Recoveries counts times the job was requeued with work already
	// done — after a crash replay or a graceful drain.
	Recoveries int `json:"recoveries,omitempty"`
	// MaxRetries bounds Retries; a transient failure beyond it is
	// final.
	MaxRetries int `json:"max_retries"`
	// CheckpointEvery is the solver-iteration checkpoint cadence the
	// runner should honor (0: runner default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// MaxRuntime bounds one attempt's wall time (0: unbounded).
	MaxRuntime time.Duration `json:"max_runtime_ns,omitempty"`

	// SubmittedNS/StartedNS/FinishedNS are Unix-nanosecond timestamps
	// (0 = not yet).
	SubmittedNS int64 `json:"submitted_ns"`
	StartedNS   int64 `json:"started_ns,omitempty"`
	FinishedNS  int64 `json:"finished_ns,omitempty"`

	// Error is the last failure message (kept across retries until a
	// successful attempt).
	Error string `json:"error,omitempty"`
	// Result is the runner's final payload, set when succeeded.
	Result json.RawMessage `json:"result,omitempty"`
	// Checkpoint is the runner's latest resumable state;
	// CheckpointIter its iteration stamp.
	Checkpoint     json.RawMessage `json:"checkpoint,omitempty"`
	CheckpointIter int             `json:"checkpoint_iter,omitempty"`
	// Progress is live, memory-only progress (empty after a restart).
	Progress Progress `json:"progress"`
}

// clone returns a copy safe to hand outside the store lock. RawMessage
// payloads are shared but treated as immutable by contract.
func (j *Job) clone() Job { return *j }

// Filter selects jobs for List. Zero fields match everything.
type Filter struct {
	State    State
	Kind     string
	Priority Priority
	// Limit caps the number of jobs returned (newest first); <= 0
	// means no cap.
	Limit int
}

func (f Filter) matches(j *Job) bool {
	if f.State != "" && j.State != f.State {
		return false
	}
	if f.Kind != "" && j.Kind != f.Kind {
		return false
	}
	if f.Priority != "" && j.Priority != f.Priority {
		return false
	}
	return true
}

// SubmitOptions carries the per-job knobs accepted at submission.
type SubmitOptions struct {
	Priority        Priority
	MaxRetries      int
	CheckpointEvery int
	MaxRuntime      time.Duration
}

// Sentinel errors for job lookups and lifecycle misuse.
var (
	// ErrUnknownJob: no job with that ID.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrFinished: the operation needs a live job but it already
	// reached a terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrClosed: the store has been closed.
	ErrClosed = errors.New("jobs: store closed")
)

// permanentError marks a failure that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the pool fails the job immediately instead of
// retrying — for errors that are a property of the job itself (a
// malformed spec, an unknown matrix), not of the attempt.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}
