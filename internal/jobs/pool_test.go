package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// runnerFunc adapts a function to the Runner interface.
type runnerFunc func(ctx context.Context, job Job, sink Sink) ([]byte, error)

func (f runnerFunc) Run(ctx context.Context, job Job, sink Sink) ([]byte, error) {
	return f(ctx, job, sink)
}

// waitTerminal long-polls until the job settles, with a test deadline.
func waitTerminal(t *testing.T, s *Store, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for {
		j, err := s.Wait(ctx, id)
		if j.State.Terminal() {
			return j
		}
		if err != nil {
			t.Fatalf("job %s never settled: state=%s err=%v", id, j.State, err)
		}
	}
}

func newTestPool(t *testing.T, runner Runner, cfg PoolConfig) *Pool {
	t.Helper()
	s := mustOpen(t, "", Config{})
	p := NewPool(s, runner, cfg)
	p.Start()
	t.Cleanup(func() { p.Drain(5 * time.Second) })
	return p
}

func TestPoolRunsJob(t *testing.T) {
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		sink.Progress(Progress{Iterations: 7, Residual: 0.5})
		return []byte(`{"answer":42}`), nil
	}), PoolConfig{Workers: 1})

	j, err := p.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, p.Store(), j.ID)
	if got.State != StateSucceeded || string(got.Result) != `{"answer":42}` {
		t.Fatalf("job = %+v", got)
	}
	if got.StartedNS == 0 || got.FinishedNS < got.StartedNS {
		t.Fatalf("timestamps not recorded: %+v", got)
	}
	m := p.Metrics()
	if m.Submitted != 1 || m.Completed != 1 || m.Running != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestPoolInteractiveBeforeBulk(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		<-release
		mu.Lock()
		order = append(order, string(job.Priority))
		mu.Unlock()
		return []byte(`{}`), nil
	}), PoolConfig{Workers: 1})

	// The first bulk job occupies the single worker; while it is
	// blocked, queue bulk then interactive. Interactive must jump ahead.
	first, err := p.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the worker picked up the first job before queueing more.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		running := len(p.running)
		p.mu.Unlock()
		if running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never started first job")
		}
		time.Sleep(time.Millisecond)
	}
	b, err := p.Submit("solve", []byte(`{}`), SubmitOptions{Priority: PriorityBulk})
	if err != nil {
		t.Fatal(err)
	}
	i, err := p.Submit("solve", []byte(`{}`), SubmitOptions{Priority: PriorityInteractive})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	waitTerminal(t, p.Store(), first.ID)
	waitTerminal(t, p.Store(), b.ID)
	waitTerminal(t, p.Store(), i.ID)

	mu.Lock()
	defer mu.Unlock()
	want := []string{"bulk", "interactive", "bulk"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
}

func TestPoolRetryThenSuccess(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n < 3 {
			return nil, errors.New("transient wobble")
		}
		return []byte(`{}`), nil
	}), PoolConfig{Workers: 1, RetryBackoff: time.Millisecond})

	j, err := p.Submit("solve", []byte(`{}`), SubmitOptions{MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, p.Store(), j.ID)
	if got.State != StateSucceeded || got.Retries != 2 || got.Attempt != 3 {
		t.Fatalf("job = %+v, want success on attempt 3", got)
	}
	if m := p.Metrics(); m.Retries != 2 || m.Completed != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestPoolRetriesExhausted(t *testing.T) {
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		return nil, errors.New("still broken")
	}), PoolConfig{Workers: 1, RetryBackoff: time.Millisecond})

	j, err := p.Submit("solve", []byte(`{}`), SubmitOptions{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, p.Store(), j.ID)
	if got.State != StateFailed || got.Retries != 1 || got.Error != "still broken" {
		t.Fatalf("job = %+v, want failure after 1 retry", got)
	}
}

func TestPoolPermanentErrorSkipsRetries(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, Permanent(errors.New("bad spec"))
	}), PoolConfig{Workers: 1, RetryBackoff: time.Millisecond})

	j, err := p.Submit("solve", []byte(`{}`), SubmitOptions{MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, p.Store(), j.ID)
	mu.Lock()
	n := calls
	mu.Unlock()
	if got.State != StateFailed || got.Retries != 0 || n != 1 {
		t.Fatalf("job = %+v after %d calls, want immediate failure", got, n)
	}
}

func TestPoolDeadlineFailsJob(t *testing.T) {
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}), PoolConfig{Workers: 1})

	j, err := p.Submit("solve", []byte(`{}`), SubmitOptions{MaxRuntime: 30 * time.Millisecond, MaxRetries: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, p.Store(), j.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "runtime limit") {
		t.Fatalf("job = %+v, want deadline failure", got)
	}
	if got.Retries != 0 {
		t.Fatalf("deadline consumed retries: %+v", got)
	}
}

func TestPoolCancelRunning(t *testing.T) {
	started := make(chan struct{})
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}), PoolConfig{Workers: 1})

	j, err := p.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel running: %v", err)
	}
	got := waitTerminal(t, p.Store(), j.ID)
	if got.State != StateCanceled {
		t.Fatalf("job = %+v, want canceled", got)
	}
	if err := p.Cancel(j.ID); err != ErrFinished {
		t.Fatalf("Cancel finished = %v, want ErrFinished", err)
	}
	if err := p.Cancel("nope"); err != ErrUnknownJob {
		t.Fatalf("Cancel unknown = %v, want ErrUnknownJob", err)
	}
}

func TestPoolCancelQueued(t *testing.T) {
	block := make(chan struct{})
	p := newTestPool(t, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return []byte(`{}`), nil
	}), PoolConfig{Workers: 1})

	hog, err := p.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := p.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cancel(queued.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	close(block)
	waitTerminal(t, p.Store(), hog.ID)
	got := waitTerminal(t, p.Store(), queued.ID)
	if got.State != StateCanceled || got.StartedNS != 0 {
		t.Fatalf("queued job = %+v, want canceled without running", got)
	}
}

func TestPoolDrainRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	p1 := NewPool(s1, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		if err := sink.Checkpoint(5, []byte(`{"iter":5}`)); err != nil {
			return nil, Permanent(err)
		}
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}), PoolConfig{Workers: 1})
	p1.Start()

	j, err := p1.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !p1.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	g, _ := s1.Get(j.ID)
	if g.State != StateQueued || g.Recoveries != 1 {
		t.Fatalf("drained job = %+v, want requeued with 1 recovery", g)
	}
	if string(g.Checkpoint) != `{"iter":5}` {
		t.Fatalf("checkpoint lost on drain: %+v", g)
	}
	if m := p1.Metrics(); m.Requeued != 1 {
		t.Fatalf("metrics = %+v, want 1 requeued", m)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// The next process resumes the drained job from its checkpoint.
	s2 := mustOpen(t, dir, Config{})
	var gotCkpt json.RawMessage
	var mu sync.Mutex
	p2 := NewPool(s2, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		mu.Lock()
		gotCkpt = job.Checkpoint
		mu.Unlock()
		return []byte(`{"resumed":true}`), nil
	}), PoolConfig{Workers: 1})
	p2.Start()
	t.Cleanup(func() { p2.Drain(5 * time.Second) })

	got := waitTerminal(t, s2, j.ID)
	if got.State != StateSucceeded {
		t.Fatalf("resumed job = %+v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if string(gotCkpt) != `{"iter":5}` {
		t.Fatalf("resumed attempt saw checkpoint %q", gotCkpt)
	}
}

// TestPoolCrashResume is the in-process crash drill: a pool is
// abandoned (no drain) while a checkpointing job is mid-flight, the
// directory is reopened, and the job must resume from the last durable
// checkpoint rather than restart.
func TestPoolCrashResume(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := make(chan struct{})
	hang := make(chan struct{})
	p1 := NewPool(s1, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		for iter := 1; iter <= 3; iter++ {
			if err := sink.Checkpoint(iter, []byte(`{"iter":`+string(rune('0'+iter))+`}`)); err != nil {
				return nil, Permanent(err)
			}
		}
		close(checkpointed)
		<-hang // simulated crash point: the process dies here
		return nil, ctx.Err()
	}), PoolConfig{Workers: 1})
	p1.Start()
	j, err := p1.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-checkpointed
	// Abandon p1/s1 without drain or settle — only release the file
	// handle so the reopen below reads a crash-consistent journal.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Config{})
	if st := s2.ReplayStats(); st.Resumed != 1 {
		t.Fatalf("replay stats = %+v, want 1 resumed", st)
	}
	resumedFrom := make(chan int, 1)
	p2 := NewPool(s2, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		resumedFrom <- job.CheckpointIter
		return []byte(`{}`), nil
	}), PoolConfig{Workers: 1})
	p2.Start()
	t.Cleanup(func() {
		close(hang)
		p2.Drain(5 * time.Second)
	})

	got := waitTerminal(t, s2, j.ID)
	if got.State != StateSucceeded || got.Recoveries != 1 {
		t.Fatalf("recovered job = %+v", got)
	}
	select {
	case iter := <-resumedFrom:
		if iter != 3 {
			t.Fatalf("resumed from iteration %d, want 3", iter)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resumed attempt never ran")
	}
}

func TestPoolDrainLeavesQueuedJobsQueued(t *testing.T) {
	s := mustOpen(t, "", Config{})
	p := NewPool(s, runnerFunc(func(ctx context.Context, job Job, sink Sink) ([]byte, error) {
		return []byte(`{}`), nil
	}), PoolConfig{Workers: 1})
	// Never started: submitted jobs stay queued across Drain.
	j, err := p.Submit("solve", []byte(`{}`), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Drain(time.Second) {
		t.Fatal("drain timed out with no workers running")
	}
	if g, _ := s.Get(j.ID); g.State != StateQueued {
		t.Fatalf("job = %+v, want still queued", g)
	}
	if _, err := p.Submit("solve", nil, SubmitOptions{}); err == nil {
		// Submission into a drained pool still lands in the store (the
		// next process runs it); it must not panic or deadlock.
		t.Log("post-drain submit accepted (stored for next process)")
	}
}
