package jobs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"positlab/internal/faultfs"
)

// The chaos suite drives a deterministic store workload under
// randomized fault schedules (faultfs.Explore) and asserts the
// durability contract after every one:
//
//   - a reopened store always starts (torn journals never poison
//     replay);
//   - a submit the caller was told succeeded is present after replay
//     with the exact spec submitted — never lost, never shadowed by a
//     failed submit's record;
//   - an acknowledged checkpoint is never rolled back: the replayed
//     checkpoint iteration is at least the last acked one, and its
//     data is bit-identical to what some attempt actually wrote;
//   - replay is idempotent — opening the same directory twice yields
//     the same job table.
//
// Non-strict transitions (done/fail/cancel journaled via appendLocked)
// carry documented degraded durability: they may be lost under faults,
// so no invariant pins them beyond general consistency.
//
// Reproduce a failure with the seed it prints:
//
//	POSITLAB_CHAOS_REPLAY=<seed> go test -run TestChaosJournal ./internal/jobs/

// chaosSpec and chaosCkpt generate the deterministic payloads the
// invariants compare against. Compact JSON: RawMessage round-trips it
// byte-for-byte.
func chaosSpec(i int) []byte { return []byte(fmt.Sprintf(`{"w":%d}`, i)) }

func chaosCkpt(iter int) []byte {
	return []byte(fmt.Sprintf(`{"iter":%d,"tag":"chaos"}`, iter))
}

// chaosModel records what the workload was acknowledged.
type chaosModel struct {
	ackedSpec map[string]string // job ID -> exact spec of an acked submit
	ackedCkpt map[string]int    // job ID -> last acked checkpoint iter
	ckptSeen  map[string]map[int]bool
}

func newChaosModel() *chaosModel {
	return &chaosModel{
		ackedSpec: map[string]string{},
		ackedCkpt: map[string]int{},
		ckptSeen:  map[string]map[int]bool{},
	}
}

// tolerate classifies a workload error: injected faults and their
// knock-on lifecycle errors are the point of the exercise; anything
// else is a real bug and fails the schedule.
func tolerate(err error) error {
	if err == nil ||
		errors.Is(err, faultfs.ErrInjected) ||
		errors.Is(err, ErrFinished) ||
		errors.Is(err, ErrUnknownJob) ||
		errors.Is(err, ErrClosed) ||
		errors.Is(err, errJournalBroken) ||
		errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// chaosWorkload is the deterministic operation sequence every schedule
// replays: two store generations over one directory, exercising
// submit, start, checkpoint, retry, cancel, drain-requeue, snapshot
// compaction (CompactEvery: 5), close, and recovery re-open — all
// through the fault-injecting FS.
func chaosWorkload(fsys faultfs.FS, dir string, m *chaosModel) error {
	cfg := Config{CompactEvery: 5, FS: fsys}

	submit := func(st *Store, i int) (string, error) {
		j, err := st.Submit("chaos", chaosSpec(i), SubmitOptions{MaxRetries: 2})
		if err != nil {
			return "", tolerate(err)
		}
		m.ackedSpec[j.ID] = string(chaosSpec(i))
		return j.ID, nil
	}
	ckpt := func(st *Store, id string, iter int) error {
		if id == "" {
			return nil
		}
		seen := m.ckptSeen[id]
		if seen == nil {
			seen = map[int]bool{}
			m.ckptSeen[id] = seen
		}
		seen[iter] = true // attempted: replay may surface it even unacked
		if err := st.saveCheckpoint(id, iter, chaosCkpt(iter)); err != nil {
			return tolerate(err)
		}
		if iter > m.ackedCkpt[id] {
			m.ackedCkpt[id] = iter
		}
		return nil
	}
	do := func(id string, err error) error {
		if id == "" {
			return nil
		}
		return tolerate(err)
	}

	st, err := Open(dir, cfg)
	if err != nil {
		return tolerate(err)
	}
	var ids [4]string
	for i := range ids {
		if ids[i], err = submit(st, i); err != nil {
			return err
		}
	}
	steps := []func() error{
		func() error { return do(ids[0], st.markStart(ids[0], 1)) },
		func() error { return ckpt(st, ids[0], 1) },
		func() error { return ckpt(st, ids[0], 2) },
		func() error { return do(ids[0], st.finish(ids[0], []byte(`{"ok":true}`))) },
		func() error { return do(ids[1], st.markStart(ids[1], 1)) },
		func() error { return ckpt(st, ids[1], 1) },
		func() error { return do(ids[1], st.fail(ids[1], "transient", false)) },
		func() error { return do(ids[1], st.markStart(ids[1], 2)) },
		func() error { return ckpt(st, ids[1], 3) },
		func() error { return do(ids[1], st.fail(ids[1], "fatal", true)) },
		func() error { return do(ids[2], st.markCanceled(ids[2])) },
		func() error { return do(ids[3], st.markStart(ids[3], 1)) },
		func() error { return ckpt(st, ids[3], 1) },
		func() error { return do(ids[3], st.requeueForDrain(ids[3])) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	if err := tolerate(st.Close()); err != nil {
		return err
	}

	// Second generation: recovery re-open through the same sick disk,
	// then more durable work on top of the replayed state.
	st2, err := Open(dir, cfg)
	if err != nil {
		return tolerate(err)
	}
	id5, err := submit(st2, 5)
	if err != nil {
		return err
	}
	if err := do(id5, st2.markStart(id5, 1)); err != nil {
		return err
	}
	if err := ckpt(st2, id5, 1); err != nil {
		return err
	}
	if err := do(id5, st2.finish(id5, []byte(`{"ok":true}`))); err != nil {
		return err
	}
	return tolerate(st2.Close())
}

// snapshotTable captures the replay-relevant view of a store's job
// table for the idempotence check.
func snapshotTable(st *Store) map[string]string {
	out := map[string]string{}
	for _, j := range st.List(Filter{}) {
		out[j.ID] = fmt.Sprintf("state=%s spec=%s ckpt=%d rec=%d retries=%d",
			j.State, j.Spec, j.CheckpointIter, j.Recoveries, j.Retries)
	}
	return out
}

func verifyChaosInvariants(dir string, m *chaosModel) error {
	st, err := Open(dir, Config{})
	if err != nil {
		return fmt.Errorf("reopen after faults failed: %w", err)
	}
	for id, spec := range m.ackedSpec {
		j, ok := st.Get(id)
		if !ok {
			return fmt.Errorf("acknowledged submit %s lost after replay", id)
		}
		if string(j.Spec) != spec {
			return fmt.Errorf("job %s spec corrupted: got %s want %s", id, j.Spec, spec)
		}
		if j.Kind != "chaos" {
			return fmt.Errorf("job %s kind corrupted: %q", id, j.Kind)
		}
	}
	for id, iter := range m.ackedCkpt {
		j, ok := st.Get(id)
		if !ok {
			return fmt.Errorf("job %s with acked checkpoint lost", id)
		}
		if j.CheckpointIter < iter {
			return fmt.Errorf("job %s checkpoint rolled back: iter %d < acked %d", id, j.CheckpointIter, iter)
		}
		if !m.ckptSeen[id][j.CheckpointIter] {
			return fmt.Errorf("job %s checkpoint iter %d was never written", id, j.CheckpointIter)
		}
		if want := string(chaosCkpt(j.CheckpointIter)); string(j.Checkpoint) != want {
			return fmt.Errorf("job %s checkpoint data torn: got %s want %s", id, j.Checkpoint, want)
		}
	}
	first := snapshotTable(st)
	if err := st.Close(); err != nil {
		return fmt.Errorf("close reopened store: %w", err)
	}
	st2, err := Open(dir, Config{})
	if err != nil {
		return fmt.Errorf("second reopen failed: %w", err)
	}
	second := snapshotTable(st2)
	if cerr := st2.Close(); cerr != nil {
		return fmt.Errorf("close second store: %w", cerr)
	}
	if len(first) != len(second) {
		return fmt.Errorf("replay not idempotent: %d jobs then %d", len(first), len(second))
	}
	for id, v := range first {
		if second[id] != v {
			return fmt.Errorf("replay not idempotent for %s: %q then %q", id, v, second[id])
		}
	}
	return nil
}

// TestChaosJournal is the CI chaos gate for the jobs journal. Seed
// matrix and count come from the POSITLAB_CHAOS_* environment (see
// faultfs.OptionsFromEnv); any failure prints the reproducing seed.
func TestChaosJournal(t *testing.T) {
	opts := faultfs.OptionsFromEnv(400, t.Logf)
	opts.Horizon = 72
	root := t.TempDir()
	var (
		cur   *chaosModel
		dir   string
		runID int
	)
	err := faultfs.Explore(opts,
		func(seed int64, fsys faultfs.FS) error {
			runID++
			dir = filepath.Join(root, fmt.Sprintf("s%06d", runID))
			cur = newChaosModel()
			return chaosWorkload(fsys, dir, cur)
		},
		func(seed int64, crashed bool) error {
			return verifyChaosInvariants(dir, cur)
		})
	if err != nil {
		t.Fatal(err)
	}
}
