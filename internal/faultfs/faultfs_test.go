package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeThrough writes data through fsys to path, optionally syncing,
// and returns the write/sync errors.
func writeThrough(fsys FS, path string, data []byte, sync bool) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() //lint:allow errcheck test helper: the write error wins
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			_ = f.Close() //lint:allow errcheck test helper: the sync error wins
			return err
		}
	}
	return f.Close()
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := writeThrough(OS, path, []byte("hello"), true); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedErrorOnSync(t *testing.T) {
	dir := t.TempDir()
	f := New(OS, Plan{Seed: 1, Rules: []Rule{{Op: OpSync, Mode: ModeEIO}}})
	err := writeThrough(f, filepath.Join(dir, "x"), []byte("data"), true)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
}

func TestShortWriteAppliesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	f := New(OS, Plan{Seed: 7, Rules: []Rule{{Op: OpWrite, Mode: ModeShort}}})
	err := writeThrough(f, path, []byte("0123456789"), false)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 10 {
		t.Fatalf("short write applied %d bytes, want < 10", len(got))
	}
	if string(got) != "0123456789"[:len(got)] {
		t.Fatalf("applied bytes are not a prefix: %q", got)
	}
}

// TestCrashLosesUnsyncedTail is the heart of the durability model: a
// synced write survives a crash bit-for-bit, an unsynced write is
// truncated back to (at most) a torn prefix.
func TestCrashLosesUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	synced := filepath.Join(dir, "synced")
	unsynced := filepath.Join(dir, "unsynced")
	// Crash on the 3rd sync (the two real writers sync once each
	// first... we arm it on a path filter instead for precision).
	f := New(OS, Plan{Seed: 3, Rules: []Rule{{Op: OpSync, Path: "trigger", Mode: ModeCrash}}})

	if err := writeThrough(f, synced, []byte(strings.Repeat("S", 100)), true); err != nil {
		t.Fatal(err)
	}
	wf, err := f.Create(unsynced)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte(strings.Repeat("U", 100))); err != nil {
		t.Fatal(err)
	}
	// Trip the crash-point via a third file whose path matches.
	crashed, err := CrashSafe(func() error {
		return writeThrough(f, filepath.Join(dir, "trigger"), []byte("t"), true)
	})
	if err != nil || !crashed {
		t.Fatalf("crashed=%v err=%v, want crash", crashed, err)
	}
	f.Shutdown()

	got, err := os.ReadFile(synced)
	if err != nil || string(got) != strings.Repeat("S", 100) {
		t.Fatalf("synced file after crash = %d bytes, %v; want 100 intact", len(got), err)
	}
	got, err = os.ReadFile(unsynced)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 100 && string(got) == strings.Repeat("U", 100) {
		// The seeded retention can keep the whole tail; re-run with a
		// seed known to tear. Seed 3 tears (asserted below), so
		// reaching here is a determinism bug.
		t.Fatalf("unsynced file survived crash intact: durability model broken")
	}
	for _, b := range got {
		if b != 'U' {
			t.Fatalf("unsynced remnant is not a prefix: %q", got)
		}
	}
	// The dead process rejects further work.
	if _, err := f.Create(filepath.Join(dir, "after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Create = %v, want ErrCrashed", err)
	}
}

func TestDroppedSyncIsNotDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	f := New(OS, Plan{Seed: 9, Rules: []Rule{
		{Op: OpSync, Mode: ModeSkip, Count: 1 << 20},
		{Op: OpCreate, Path: "crashfile", Mode: ModeCrash},
	}})
	// Sync reports success (the dropped-fsync regression)…
	if err := writeThrough(f, path, []byte(strings.Repeat("D", 4096)), true); err != nil {
		t.Fatalf("dropped sync must report success, got %v", err)
	}
	crashed, _ := CrashSafe(func() error {
		_, err := f.Create(filepath.Join(dir, "crashfile"))
		return err
	})
	if !crashed {
		t.Fatal("crash-point did not fire")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// …but the data was never durable: the crash may tear it.
	if len(got) == 4096 {
		t.Fatalf("seed 9 keeps %d bytes; expected the unsynced tail to tear (if this seed legitimately keeps all bytes, pick another)", len(got))
	}
}

func TestRenameMovesDurabilityState(t *testing.T) {
	dir := t.TempDir()
	tmp, final := filepath.Join(dir, "t.tmp"), filepath.Join(dir, "final")
	f := New(OS, Plan{Seed: 5, Rules: []Rule{{Op: OpCreate, Path: "nomatch", Mode: ModeEIO}}})
	if err := writeThrough(f, tmp, []byte("abcdef"), true); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	crashed, _ := CrashSafe(func() error {
		ff := New(OS, Plan{})
		_ = ff
		f.mu.Lock()
		defer f.mu.Unlock()
		f.crashLocked(OpSync, "manual")
		return nil
	})
	if !crashed {
		t.Fatal("manual crash did not fire")
	}
	got, err := os.ReadFile(final)
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("renamed synced file after crash = %q, %v", got, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(OS, path, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OS, path, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != `{"v":2}` {
		t.Fatalf("got %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("temp files leaked: %v", ents)
	}

	// Failed write: destination untouched, temp removed.
	f := New(OS, Plan{Seed: 11, Rules: []Rule{{Op: OpWrite, Mode: ModeENOSPC}}})
	if err := WriteFileAtomic(f, path, []byte(`{"v":3}`)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != `{"v":2}` {
		t.Fatalf("destination changed by failed atomic write: %q", got)
	}
	ents, _ = os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("failed atomic write leaked temp files: %v", ents)
	}

	// Crash mid-write: destination still the old complete content.
	f = New(OS, Plan{Seed: 13, Rules: []Rule{{Op: OpWrite, Mode: ModeTorn}}})
	crashed, _ := CrashSafe(func() error { return WriteFileAtomic(f, path, []byte(`{"v":4}`)) })
	f.Shutdown()
	if !crashed {
		t.Fatal("torn write did not crash")
	}
	got, _ = os.ReadFile(path)
	if string(got) != `{"v":2}` {
		t.Fatalf("crash mid-atomic-write corrupted destination: %q", got)
	}
}

func TestPlanParseRoundTrip(t *testing.T) {
	spec := "seed=42;op=sync,mode=eio,path=journal,after=3;op=write,mode=torn;op=rename,mode=enospc,after=1,count=2"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Rules) != 3 {
		t.Fatalf("parsed %+v", p)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip diverged: %q vs %q", p.String(), p2.String())
	}
	for _, bad := range []string{"", "seed=42", "op=write", "op=write,mode=bogus", "op=bogus,mode=eio", "seed=x;op=write,mode=eio", "op=write,mode=eio,after=-1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid plan", bad)
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	for seed := int64(1); seed < 50; seed++ {
		a, b := RandomPlan(seed, 0), RandomPlan(seed, 0)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a, b)
		}
		if len(a.Rules) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
	}
	if RandomPlan(1, 0).String() == RandomPlan(2, 0).String() {
		t.Fatal("distinct seeds produced identical plans (suspicious)")
	}
}

func TestScheduleSeedStability(t *testing.T) {
	// The derivation is part of the replay contract: a printed seed
	// from an old CI log must reproduce forever. Pin a few values.
	pins := map[int]int64{0: ScheduleSeed(1, 0), 1: ScheduleSeed(1, 1)}
	for i, want := range pins {
		if got := ScheduleSeed(1, i); got != want || got <= 0 {
			t.Fatalf("ScheduleSeed(1,%d) = %d unstable or non-positive", i, got)
		}
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := ScheduleSeed(7, i)
		if s <= 0 || seen[s] {
			t.Fatalf("ScheduleSeed(7,%d) = %d duplicate or non-positive", i, s)
		}
		seen[s] = true
	}
}

// TestReplayDeterminism runs one seeded schedule twice over the same
// workload and demands byte-identical operation traces and on-disk
// outcomes — the property that makes every chaos failure reproducible
// from its printed seed alone.
func TestReplayDeterminism(t *testing.T) {
	workload := func(fsys FS, dir string) {
		crashed, _ := CrashSafe(func() error {
			for i := 0; i < 6; i++ {
				name := filepath.Join(dir, "f"+string(rune('a'+i)))
				_ = writeThrough(fsys, name, []byte(strings.Repeat("x", 64+i*17)), i%2 == 0) //lint:allow errcheck chaos workload: injected errors are the point
				_ = fsys.Rename(name, name+".done")                                          //lint:allow errcheck chaos workload: injected errors are the point
			}
			return nil
		})
		_ = crashed
	}
	run := func(seed int64) (string, map[string]string) {
		dir := t.TempDir()
		f := New(OS, RandomPlan(seed, 24))
		workload(f, dir)
		f.Shutdown()
		files := map[string]string{}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = string(b)
		}
		trace := f.Trace()
		// Traces embed the temp dir; normalize for comparison.
		return strings.ReplaceAll(trace, dir, "DIR"), files
	}
	for i := 0; i < 40; i++ {
		seed := ScheduleSeed(99, i)
		t1, f1 := run(seed)
		t2, f2 := run(seed)
		if t1 != t2 {
			t.Fatalf("seed %d: traces diverge\n--- a ---\n%s\n--- b ---\n%s", seed, t1, t2)
		}
		if len(f1) != len(f2) {
			t.Fatalf("seed %d: file sets diverge: %v vs %v", seed, f1, f2)
		}
		for name, body := range f1 {
			if f2[name] != body {
				t.Fatalf("seed %d: file %s diverges (%d vs %d bytes)", seed, name, len(body), len(f2[name]))
			}
		}
	}
}
