package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is wrapped by every error the fault injector returns, so
// workloads can tell injected failures from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned (wrapping ErrInjected) by every operation
// attempted after a crash-point fired: the simulated process is dead.
var ErrCrashed = fmt.Errorf("%w: process already crashed", ErrInjected)

type faultErr struct {
	mode Mode
	op   Op
	path string
}

func (e *faultErr) Error() string {
	return fmt.Sprintf("faultfs: injected %s on %s %s", e.mode, e.op, e.path)
}

func (e *faultErr) Is(target error) bool { return target == ErrInjected }

// Crash is the panic value of a fired crash-point. The Explore
// supervisor (and CrashSafe) recover it and treat the workload as a
// dead process; any other panic propagates unchanged.
type Crash struct {
	Seed int64
	Op   Op
	Path string
}

func (c *Crash) String() string {
	return fmt.Sprintf("faultfs: crash-point at %s %s (seed %d)", c.Op, c.Path, c.Seed)
}

// CrashSafe runs fn, converting an injected crash-point panic into
// crashed=true. Every other panic propagates.
func CrashSafe(fn func() error) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*Crash); ok {
				crashed = true
				err = nil
				return
			}
			panic(r) //lint:allow panics re-panic: only injected crash-points are absorbed, real panics propagate
		}
	}()
	return false, fn()
}

// fileState is the durability model of one path: how many bytes the
// real file holds, and how many of them have been fsynced. On a crash
// the file is truncated to the durable length plus a seeded portion of
// the unsynced tail — the page cache is gone.
type fileState struct {
	realLen    int64
	durableLen int64
}

type ruleState struct {
	Rule
	seen  int
	fired int
}

// Fault is the fault-injecting FS. It wraps an inner FS (which must
// ultimately be backed by the real filesystem: crash truncation
// operates on real paths) and applies a Plan's rules to the operation
// stream. All operations are serialized under one mutex, so the
// random stream — and therefore every injected fault — is a pure
// function of the plan and the workload's operation sequence.
type Fault struct {
	inner FS

	mu       sync.Mutex
	seed     int64
	rng      *rand.Rand
	rules    []*ruleState
	files    map[string]*fileState
	open     map[*faultFile]struct{}
	trace    []string
	injected int
	crashed  bool
}

// New builds the injecting FS for one plan.
func New(inner FS, plan Plan) *Fault {
	f := &Fault{
		inner: inner,
		seed:  plan.Seed,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		files: map[string]*fileState{},
		open:  map[*faultFile]struct{}{},
	}
	for _, r := range plan.Rules {
		rs := &ruleState{Rule: r}
		f.rules = append(f.rules, rs)
	}
	return f
}

// Injected reports how many faults fired so far.
func (f *Fault) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether a crash-point fired.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Trace returns the operation log: one line per filesystem operation,
// with the injected fault (if any) and its seeded byte counts. Two
// runs of the same plan over the same workload produce identical
// traces — the determinism the replay contract rests on.
func (f *Fault) Trace() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return strings.Join(f.trace, "\n")
}

// Shutdown closes every file handle still open through the injector
// (a crashed workload cannot close its own). It performs no
// truncation: only a crash-point loses unsynced data.
func (f *Fault) Shutdown() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closeAllLocked()
}

func (f *Fault) closeAllLocked() {
	for ff := range f.open { //lint:allow maporder close order is unobservable: errors dropped, no rng or trace involved
		_ = ff.inner.Close() // abandoning a dead process's handles; nothing to report to
	}
	f.open = map[*faultFile]struct{}{}
}

const maxTrace = 20000

func (f *Fault) tracef(format string, args ...any) {
	if len(f.trace) < maxTrace {
		f.trace = append(f.trace, fmt.Sprintf(format, args...))
	}
}

// decide consults the rules for one operation. It must be called with
// the mutex held; it returns the effective fault mode ("" = none).
func (f *Fault) decide(op Op, path string) Mode {
	for _, r := range f.rules {
		if r.Op != op || !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen <= r.After || r.fired >= r.count() {
			continue
		}
		r.fired++
		f.injected++
		mode := r.Mode
		// Write-shaped modes degrade sensibly on non-write operations.
		if op != OpWrite {
			switch mode {
			case ModeTorn:
				mode = ModeCrash
			case ModeShort:
				mode = ModeEIO
			}
		}
		f.tracef("%-7s %s -> %s", op, path, mode)
		return mode
	}
	f.tracef("%-7s %s", op, path)
	return ""
}

// crashLocked is the simulated power cut: truncate every file with an
// unsynced tail back to its durable prefix plus a seeded partial
// writeback, close all handles, and kill the "process" via panic.
func (f *Fault) crashLocked(op Op, path string) {
	f.crashed = true
	paths := make([]string, 0, len(f.files))
	for p := range f.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st := f.files[p]
		if st.realLen <= st.durableLen {
			continue
		}
		keep := st.durableLen + f.rng.Int63n(st.realLen-st.durableLen+1)
		// Truncation acts on the real file: the inner FS is by
		// contract backed by the OS. A vanished file lost its tail
		// with it.
		if err := os.Truncate(p, keep); err != nil && !errors.Is(err, fs.ErrNotExist) {
			f.tracef("crash: truncate %s to %d: %v", p, keep, err)
		} else {
			f.tracef("crash: kept %d/%d bytes of %s", keep, st.realLen, p)
		}
		st.realLen = keep
		st.durableLen = keep
	}
	f.closeAllLocked()
	panic(&Crash{Seed: f.seed, Op: op, Path: path}) //lint:allow panics crash-point: process-style death, recovered by CrashSafe/Explore
}

func (f *Fault) sleepLocked() {
	time.Sleep(time.Duration(50+f.rng.Intn(950)) * time.Microsecond)
}

func (f *Fault) stateFor(path string) *fileState {
	st, ok := f.files[path]
	if !ok {
		st = &fileState{}
		f.files[path] = st
	}
	return st
}

// --- FS implementation ---

func clean(p string) string { return filepath.Clean(p) }

func (f *Fault) Open(name string) (File, error) {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch f.decide(OpOpen, name) {
	case ModeCrash:
		f.crashLocked(OpOpen, name)
	case ModeEIO, ModeENOSPC:
		return nil, &faultErr{ModeEIO, OpOpen, name}
	case ModeSkip:
		return nil, fs.ErrNotExist
	case ModeLatency:
		f.sleepLocked()
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return f.newFileLocked(inner, name, false), nil
}

func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = clean(name)
	op := OpOpen
	writing := flag&(os.O_WRONLY|os.O_RDWR) != 0
	if writing {
		op = OpCreate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch f.decide(op, name) {
	case ModeCrash:
		f.crashLocked(op, name)
	case ModeEIO, ModeENOSPC:
		return nil, &faultErr{ModeEIO, op, name}
	case ModeLatency:
		f.sleepLocked()
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f.newFileLocked(inner, name, writing), nil
}

func (f *Fault) Create(name string) (File, error) {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch f.decide(OpCreate, name) {
	case ModeCrash:
		f.crashLocked(OpCreate, name)
	case ModeEIO, ModeENOSPC:
		return nil, &faultErr{ModeENOSPC, OpCreate, name}
	case ModeLatency:
		f.sleepLocked()
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return f.newFileLocked(inner, name, true), nil
}

func (f *Fault) CreateTemp(dir, pattern string) (File, error) {
	match := clean(filepath.Join(dir, pattern))
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch f.decide(OpCreate, match) {
	case ModeCrash:
		f.crashLocked(OpCreate, match)
	case ModeEIO, ModeENOSPC:
		return nil, &faultErr{ModeENOSPC, OpCreate, match}
	case ModeLatency:
		f.sleepLocked()
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f.newFileLocked(inner, clean(inner.Name()), true), nil
}

// newFileLocked wraps a freshly opened inner file and (for writable
// handles) synchronizes the durability model with the file's current
// size. The first writable open of a path treats its pre-existing
// bytes as durable — they predate the simulated process; a re-open
// within the same process (O_TRUNC included) only resyncs lengths,
// and durability can only shrink.
func (f *Fault) newFileLocked(inner File, path string, writing bool) *faultFile {
	ff := &faultFile{fs: f, inner: inner, path: path}
	f.open[ff] = struct{}{}
	if writing {
		st, known := f.files[path]
		if !known {
			st = &fileState{}
			f.files[path] = st
			if info, err := inner.Stat(); err == nil {
				st.realLen = info.Size()
				st.durableLen = st.realLen
			}
		} else if info, err := inner.Stat(); err == nil {
			st.realLen = info.Size()
			if st.durableLen > st.realLen {
				st.durableLen = st.realLen
			}
		}
	}
	return ff
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch f.decide(OpOpen, name) {
	case ModeCrash:
		f.crashLocked(OpOpen, name)
	case ModeEIO, ModeENOSPC:
		return nil, &faultErr{ModeEIO, OpOpen, name}
	case ModeSkip:
		return nil, fs.ErrNotExist
	case ModeLatency:
		f.sleepLocked()
	}
	return f.inner.ReadFile(name)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	switch f.decide(OpRename, oldpath) {
	case ModeCrash:
		f.crashLocked(OpRename, oldpath)
	case ModeEIO, ModeENOSPC:
		return &faultErr{ModeEIO, OpRename, oldpath}
	case ModeSkip:
		return nil // rename silently lost: the canary for missing rename handling
	case ModeLatency:
		f.sleepLocked()
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	if st, ok := f.files[oldpath]; ok {
		f.files[newpath] = st
		delete(f.files, oldpath)
	}
	return nil
}

func (f *Fault) Remove(name string) error {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	switch f.decide(OpRemove, name) {
	case ModeCrash:
		f.crashLocked(OpRemove, name)
	case ModeEIO, ModeENOSPC:
		return &faultErr{ModeEIO, OpRemove, name}
	case ModeSkip:
		return nil
	case ModeLatency:
		f.sleepLocked()
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	delete(f.files, name)
	return nil
}

func (f *Fault) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) ReadDir(name string) ([]os.DirEntry, error) {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch f.decide(OpReadDir, name) {
	case ModeCrash:
		f.crashLocked(OpReadDir, name)
	case ModeEIO, ModeENOSPC:
		return nil, &faultErr{ModeEIO, OpReadDir, name}
	case ModeLatency:
		f.sleepLocked()
	}
	return f.inner.ReadDir(name)
}

// faultFile routes per-handle operations back through the injector.
type faultFile struct {
	fs    *Fault
	inner File
	path  string
}

func (ff *faultFile) Name() string               { return ff.path }
func (ff *faultFile) Stat() (fs.FileInfo, error) { return ff.inner.Stat() }

func (ff *faultFile) Read(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	ff.fs.mu.Unlock()
	return ff.inner.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	st := f.stateFor(ff.path)
	switch f.decide(OpWrite, ff.path) {
	case ModeCrash:
		f.crashLocked(OpWrite, ff.path)
	case ModeEIO:
		return 0, &faultErr{ModeEIO, OpWrite, ff.path}
	case ModeENOSPC, ModeShort:
		k := 0
		if len(p) > 0 {
			k = f.rng.Intn(len(p))
		}
		n, _ := ff.inner.Write(p[:k])
		st.realLen += int64(n)
		f.tracef("  short: applied %d/%d bytes", n, len(p))
		return n, &faultErr{ModeENOSPC, OpWrite, ff.path}
	case ModeTorn:
		k := 0
		if len(p) > 0 {
			k = f.rng.Intn(len(p))
		}
		n, _ := ff.inner.Write(p[:k])
		st.realLen += int64(n)
		f.tracef("  torn: applied %d/%d bytes, crashing", n, len(p))
		f.crashLocked(OpWrite, ff.path)
	case ModeSkip:
		return len(p), nil
	case ModeLatency:
		f.sleepLocked()
	}
	n, err := ff.inner.Write(p)
	st.realLen += int64(n)
	return n, err
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	switch f.decide(OpSync, ff.path) {
	case ModeCrash:
		f.crashLocked(OpSync, ff.path)
	case ModeEIO, ModeENOSPC:
		return &faultErr{ModeEIO, OpSync, ff.path}
	case ModeSkip:
		return nil // the dropped fsync: success reported, nothing durable
	case ModeLatency:
		f.sleepLocked()
	}
	if err := ff.inner.Sync(); err != nil {
		return err
	}
	st := f.stateFor(ff.path)
	st.durableLen = st.realLen
	return nil
}

func (ff *faultFile) Truncate(size int64) error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := ff.inner.Truncate(size); err != nil {
		return err
	}
	st := f.stateFor(ff.path)
	st.realLen = size
	if st.durableLen > size {
		st.durableLen = size
	}
	f.tracef("truncate %s to %d", ff.path, size)
	return nil
}

func (ff *faultFile) Close() error {
	f := ff.fs
	f.mu.Lock()
	delete(f.open, ff)
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return ff.inner.Close()
}
