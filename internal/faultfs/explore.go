package faultfs

import (
	"fmt"
	"os"
	"strconv"
)

// ExploreOptions tunes a randomized-schedule exploration.
type ExploreOptions struct {
	// N is the number of seeded schedules to run. <= 0 means 256.
	N int
	// Seed is the base seed; schedule i runs under
	// ScheduleSeed(Seed, i). Zero is a valid base.
	Seed int64
	// Horizon is the operation window within which random rules arm
	// (see RandomPlan). <= 0 means 48.
	Horizon int
	// Extra rules are appended to every schedule's plan. This is the
	// deliberate-regression hook: appending {Op: OpSync, Mode:
	// ModeSkip, Count: 1 << 20} simulates a writer whose fsync was
	// dropped, and a healthy invariant suite must catch it.
	Extra []Rule
	// ReplaySeed, when nonzero, runs exactly one schedule under that
	// seed — the reproduction path for a failure printed by a previous
	// run. N and Seed are ignored.
	ReplaySeed int64
	// Log, when set, receives per-run progress lines.
	Log func(format string, args ...any)
}

// OptionsFromEnv builds ExploreOptions from the chaos environment the
// CI job and manual reproduction use:
//
//	POSITLAB_CHAOS_N          override the schedule count
//	POSITLAB_CHAOS_SEED       base seed (CI derives one from the run ID
//	                          so every run explores new schedules)
//	POSITLAB_CHAOS_REPLAY     run exactly one schedule under this seed —
//	                          paste the seed a failure printed
//	POSITLAB_CHAOS_DROP_SYNC  non-empty: append a drop-every-fsync rule
//	                          to every schedule. This is the deliberate
//	                          regression canary: a healthy invariant
//	                          suite MUST fail under it.
//
// defaultN is the package's schedule budget when POSITLAB_CHAOS_N is
// unset; logf (usually t.Logf) receives progress lines.
func OptionsFromEnv(defaultN int, logf func(format string, args ...any)) ExploreOptions {
	opts := ExploreOptions{N: defaultN, Log: logf}
	if v := os.Getenv("POSITLAB_CHAOS_N"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			opts.N = n
		}
	}
	if v := os.Getenv("POSITLAB_CHAOS_SEED"); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil {
			opts.Seed = s
		}
	}
	if v := os.Getenv("POSITLAB_CHAOS_REPLAY"); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil && s != 0 {
			opts.ReplaySeed = s
		}
	}
	if os.Getenv("POSITLAB_CHAOS_DROP_SYNC") != "" {
		opts.Extra = append(opts.Extra, Rule{Op: OpSync, Mode: ModeSkip, Count: 1 << 20})
	}
	return opts
}

// ScheduleSeed derives the i-th schedule seed from a base seed with a
// splitmix64 round, so every schedule — and every base — explores a
// different fault pattern while remaining a pure function of (base, i).
func ScheduleSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// Keep seeds positive so they survive round-trips through shell
	// environments and log greps unambiguously.
	return int64(z >> 1)
}

// Explore runs a workload under many deterministic fault schedules and
// asserts package-supplied invariants after each.
//
// For every schedule it derives a seed, builds a random Plan from it,
// and invokes run with a fault-injecting FS. The workload performs its
// durable operations through that FS, tolerating injected errors
// (errors.Is(err, ErrInjected)) as it would tolerate a sick disk; a
// fired crash-point kills the workload mid-operation (Explore recovers
// it — simulated process death, unsynced data torn away). Explore then
// invokes verify, which must re-open the state through a clean FS and
// check the package's invariants: a journal replays to a consistent
// state with no acknowledged-then-lost record, cache entries are
// absent or checksum-valid but never torn, a resumed computation is
// bit-identical to an uninterrupted one.
//
// run returning a non-nil error (an unexpected, non-injected failure)
// or verify returning non-nil stops the exploration; the returned
// error carries the schedule seed, the plan, and the injector's
// operation trace, and the failure replays deterministically from the
// seed alone (ExploreOptions.ReplaySeed or the package's chaos-test
// replay hook).
func Explore(opts ExploreOptions, run func(seed int64, fsys FS) error, verify func(seed int64, crashed bool) error) error {
	n := opts.N
	if n <= 0 {
		n = 256
	}
	seeds := make([]int64, 0, n)
	if opts.ReplaySeed != 0 {
		seeds = append(seeds, opts.ReplaySeed)
	} else {
		for i := 0; i < n; i++ {
			seeds = append(seeds, ScheduleSeed(opts.Seed, i))
		}
	}
	for i, seed := range seeds {
		plan := RandomPlan(seed, opts.Horizon)
		plan.Rules = append(plan.Rules, opts.Extra...)
		fault := New(OS, plan)
		crashed, err := CrashSafe(func() error { return run(seed, fault) })
		fault.Shutdown()
		if err != nil {
			return fmt.Errorf("faultfs: schedule %d/%d seed=%d: workload failed unexpectedly: %w\nplan: %s\ntrace:\n%s",
				i+1, len(seeds), seed, err, plan, fault.Trace())
		}
		if err := verify(seed, crashed); err != nil {
			return fmt.Errorf("faultfs: invariant violated: seed=%d crashed=%v injected=%d\nreplay: run the suite with this seed alone to reproduce\nplan: %s\ntrace:\n%s\n%w",
				seed, crashed, fault.Injected(), plan, fault.Trace(), err)
		}
		if opts.Log != nil && (i+1)%64 == 0 {
			opts.Log("faultfs: %d/%d schedules ok", i+1, len(seeds))
		}
	}
	return nil
}
