// Package faultfs is the filesystem seam under every durable path in
// the repository — the jobs journal, the runner result cache, the
// arithmetic table cache, and the shadow/experiment artifact writers —
// plus a deterministic, seed-driven fault scheduler for exploring how
// those paths behave when the disk misbehaves.
//
// The seam is the FS interface: the handful of os-level operations the
// durable layers actually perform (open, create, write, sync, rename,
// remove, readdir). Production code holds an FS and uses OS, a zero-
// cost passthrough to the real os package. Tests substitute New(OS,
// plan), which injects short writes, torn writes at byte granularity,
// ENOSPC/EIO on write or fsync, rename failure, crash-points, and
// latency — all scheduled deterministically from Plan.Seed, so any
// failure replays from its printed seed alone.
//
// The injector models durability honestly: bytes written but not yet
// fsynced live only in the (simulated) page cache. A crash-point
// truncates every file back to its last-synced length plus a seeded
// portion of the unsynced tail — exactly the torn-tail shape a real
// power cut produces — before killing the "process" (a panic the
// Explore supervisor converts into process-style death). A dropped
// fsync therefore becomes an observable bug, not a silent slowdown.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the per-handle surface the durable writers use. *os.File
// satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage; durability claims rest
	// on it.
	Sync() error
	// Truncate resizes the file (the journal uses Truncate(0) after a
	// snapshot compaction).
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
	// Stat reports file metadata (size, for the durability model).
	Stat() (fs.FileInfo, error)
}

// FS is the filesystem seam. Implementations must be safe for
// concurrent use.
type FS interface {
	// Open opens a file for reading.
	Open(name string) (File, error)
	// OpenFile is the full-control open (the journal uses
	// O_APPEND|O_CREATE|O_WRONLY).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a uniquely named temp file in dir (atomic
	// write protocol: temp, write, sync, rename).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
}

// OS is the passthrough FS over the real os package — the production
// default everywhere a durable layer accepts an FS.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { //lint:allow durability seam primitive: the fsync-before-rename obligation sits with callers (WriteFileAtomic)
	return os.Rename(oldpath, newpath)
}
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }

// OrOS returns fsys, or OS when fsys is nil — the idiom durable
// layers use to make the seam optional in their configs.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// WriteFileAtomic writes data to path with the atomic-replace
// protocol every durable artifact in the repository uses: create a
// hidden temp file next to the destination, write, fsync, close, then
// rename over path. A reader therefore observes either the old file or
// the complete new one, never a torn mix, even across a crash — the
// fsync-before-rename ordering is what the positlint durability rule
// enforces.
//
// On failure the temp file is removed and its removal error, if any,
// is joined into the returned error: in durable paths a failed cleanup
// (temp files silently accreting on a sick disk) deserves surfacing
// too.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	f, err := fsys.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync() // data must reach disk before the rename can commit it
	cerr := f.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		return errors.Join(err, fsys.Remove(tmp))
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return errors.Join(err, fsys.Remove(tmp))
	}
	return nil
}
