package faultfs

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Op identifies one class of filesystem operation a Rule can target.
type Op string

const (
	OpOpen    Op = "open"    // Open / OpenFile for reading
	OpCreate  Op = "create"  // Create / CreateTemp / OpenFile with write flags
	OpWrite   Op = "write"   // File.Write
	OpSync    Op = "sync"    // File.Sync
	OpRename  Op = "rename"  // FS.Rename
	OpRemove  Op = "remove"  // FS.Remove
	OpReadDir Op = "readdir" // FS.ReadDir
)

// Mode is what happens when a rule fires.
type Mode string

const (
	// ModeEIO fails the operation with a synthetic I/O error; writes
	// apply nothing.
	ModeEIO Mode = "eio"
	// ModeENOSPC fails the operation with a synthetic no-space error;
	// a write applies a seeded prefix first, the way a filling disk
	// does.
	ModeENOSPC Mode = "enospc"
	// ModeShort applies a seeded prefix of a write and reports a short
	// write.
	ModeShort Mode = "short"
	// ModeTorn applies a seeded prefix of a write, then crashes: the
	// byte-granularity torn-write-then-death schedule.
	ModeTorn Mode = "torn"
	// ModeCrash crashes before the operation takes effect. The crash
	// truncates every file to its durable (synced) length plus a
	// seeded portion of its unsynced tail, then panics with a sentinel
	// the Explore supervisor (or CrashSafe) recovers — process-style
	// death without a process.
	ModeCrash Mode = "crash"
	// ModeLatency delays the operation a seeded sub-millisecond amount
	// and then performs it normally.
	ModeLatency Mode = "latency"
	// ModeSkip silently "succeeds" without performing the operation.
	// On sync this is precisely the dropped-fsync regression the chaos
	// suites exist to catch: the caller is told its data is durable
	// when it is not.
	ModeSkip Mode = "skip"
)

// Rule arms one fault: the (After+1)-th operation of class Op whose
// path contains Path fires Mode, Count times total.
type Rule struct {
	// Op is the operation class this rule watches.
	Op Op
	// Path is a substring filter on the operation's path; empty
	// matches every path.
	Path string
	// After skips the first After matching operations.
	After int
	// Count bounds how many times the rule fires; 0 means once.
	Count int
	// Mode is the injected fault.
	Mode Mode
}

func (r Rule) count() int {
	if r.Count <= 0 {
		return 1
	}
	return r.Count
}

func (r Rule) String() string {
	s := fmt.Sprintf("op=%s,mode=%s", r.Op, r.Mode)
	if r.Path != "" {
		s += ",path=" + r.Path
	}
	if r.After > 0 {
		s += ",after=" + strconv.Itoa(r.After)
	}
	if r.Count > 1 {
		s += ",count=" + strconv.Itoa(r.Count)
	}
	return s
}

// Plan is a deterministic fault schedule: the seed drives every
// random choice the injector makes (partial-write lengths, crash-tail
// retention, latencies), and the rules say which operations fail.
// The same plan over the same operation sequence injects byte-
// identical faults.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// String renders the plan in the same textual form ParsePlan accepts,
// so a logged plan is directly replayable.
func (p Plan) String() string {
	parts := []string{"seed=" + strconv.FormatInt(p.Seed, 10)}
	for _, r := range p.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ";")
}

// ParsePlan parses the textual plan form: semicolon-separated
// sections, the first (or any) being "seed=N", each other a rule of
// comma-separated key=value fields, e.g.
//
//	seed=42;op=sync,path=journal,after=3,mode=eio;op=write,mode=torn
//
// Keys: op (required), mode (required), path, after, count.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, fmt.Errorf("faultfs: empty plan")
	}
	for _, section := range strings.Split(s, ";") {
		section = strings.TrimSpace(section)
		if section == "" {
			continue
		}
		if v, ok := strings.CutPrefix(section, "seed="); ok && !strings.Contains(section, ",") {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return p, fmt.Errorf("faultfs: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		var r Rule
		for _, field := range strings.Split(section, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return p, fmt.Errorf("faultfs: rule field %q is not key=value", field)
			}
			switch k {
			case "op":
				r.Op = Op(v)
			case "mode":
				r.Mode = Mode(v)
			case "path":
				r.Path = v
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return p, fmt.Errorf("faultfs: bad after %q", v)
				}
				r.After = n
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return p, fmt.Errorf("faultfs: bad count %q", v)
				}
				r.Count = n
			default:
				return p, fmt.Errorf("faultfs: unknown rule key %q", k)
			}
		}
		if !validOp(r.Op) {
			return p, fmt.Errorf("faultfs: rule %q: unknown or missing op", section)
		}
		if !validMode(r.Mode) {
			return p, fmt.Errorf("faultfs: rule %q: unknown or missing mode", section)
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return p, fmt.Errorf("faultfs: plan has no rules")
	}
	return p, nil
}

var allOps = []Op{OpOpen, OpCreate, OpWrite, OpSync, OpRename, OpRemove, OpReadDir}

var allModes = []Mode{ModeEIO, ModeENOSPC, ModeShort, ModeTorn, ModeCrash, ModeLatency, ModeSkip}

func validOp(op Op) bool {
	for _, o := range allOps {
		if o == op {
			return true
		}
	}
	return false
}

func validMode(m Mode) bool {
	for _, mm := range allModes {
		if mm == m {
			return true
		}
	}
	return false
}

// randomPlanOps and randomPlanModes are the default fault surface
// RandomPlan draws from: the write-side operations where durability
// bugs live, and every fault flavor except ModeSkip (skip is the
// deliberate-regression canary, not a fault a healthy disk produces).
var randomPlanOps = []Op{OpWrite, OpWrite, OpSync, OpSync, OpCreate, OpOpen, OpRename, OpRemove}

var randomPlanModes = []Mode{ModeEIO, ModeENOSPC, ModeShort, ModeTorn, ModeCrash, ModeLatency}

// RandomPlan derives a fault schedule from seed alone: one to three
// rules over the write-side operation classes, each armed at a random
// point within horizon operations. Identical seeds yield identical
// plans — this is the generator Explore uses, and the reason a chaos
// failure replays from its seed.
func RandomPlan(seed int64, horizon int) Plan {
	if horizon <= 0 {
		horizon = 48
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(3)
	p := Plan{Seed: seed}
	for i := 0; i < n; i++ {
		r := Rule{
			Op:    randomPlanOps[rng.Intn(len(randomPlanOps))],
			Mode:  randomPlanModes[rng.Intn(len(randomPlanModes))],
			After: rng.Intn(horizon),
		}
		// Error-mode rules sometimes fire repeatedly, the way a sick
		// disk keeps failing; crash fires once by definition.
		if r.Mode != ModeCrash && r.Mode != ModeTorn && rng.Intn(4) == 0 {
			r.Count = 1 + rng.Intn(3)
		}
		p.Rules = append(p.Rules, r)
	}
	// Deterministic rule order regardless of generation order, so the
	// printed plan reads stably.
	sort.SliceStable(p.Rules, func(i, k int) bool { return p.Rules[i].After < p.Rules[k].After })
	return p
}
