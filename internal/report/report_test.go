package report_test

import (
	"math"
	"strings"
	"testing"

	"positlab/internal/report"
)

func TestTableAlignment(t *testing.T) {
	out := report.Table(
		[]string{"name", "value"},
		[][]string{{"a", "1"}, {"longer-name", "12345"}},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All rows share the same width up to trailing spaces.
	w := len(strings.TrimRight(lines[3], " "))
	if !strings.HasPrefix(lines[3], "longer-name") {
		t.Error("row content wrong")
	}
	if len(strings.TrimRight(lines[1], " ")) < w-6 {
		t.Error("separator not sized to columns")
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Error("header missing")
	}
}

func TestCSVQuoting(t *testing.T) {
	out := report.CSV(
		[]string{"a", "b"},
		[][]string{{`has,comma`, `has"quote`}, {"plain", "x"}},
	)
	if !strings.Contains(out, `"has,comma"`) {
		t.Error("comma cell not quoted")
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Error("quote cell not escaped")
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Error("header wrong")
	}
}

func TestBars(t *testing.T) {
	out := report.Bars([]string{"x", "y"}, []float64{1, 2}, 20)
	if !strings.Contains(out, "#") {
		t.Error("no bars drawn")
	}
	// Negative values draw a centered axis.
	out = report.Bars([]string{"neg", "pos"}, []float64{-1, 1}, 20)
	if !strings.Contains(out, "|") {
		t.Error("no axis for signed chart")
	}
	// NaN renders as n/a, zero max does not divide by zero.
	out = report.Bars([]string{"n"}, []float64{math.NaN()}, 20)
	if !strings.Contains(out, "n/a") {
		t.Error("NaN not handled")
	}
	if out := report.Bars([]string{"z"}, []float64{0}, 20); !strings.Contains(out, "0") {
		t.Error("zero row missing")
	}
}

func TestFormatCount(t *testing.T) {
	if got := report.FormatCount(5, true, false, 1000); got != "5" {
		t.Errorf("converged = %q", got)
	}
	if got := report.FormatCount(1000, false, false, 1000); got != "1000+" {
		t.Errorf("capped = %q", got)
	}
	if got := report.FormatCount(3, false, true, 1000); got != "-" {
		t.Errorf("failed = %q", got)
	}
}

func TestSci(t *testing.T) {
	if got := report.Sci(12345.678); got != "1.23e+04" {
		t.Errorf("Sci = %q", got)
	}
	if got := report.Sci(math.NaN()); got != "-" {
		t.Errorf("Sci(NaN) = %q", got)
	}
}
