// Package report renders experiment results as aligned text tables,
// CSV, and simple ASCII bar charts for terminal consumption.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table renders headers and rows as an aligned monospace table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders headers and rows as comma-separated values. Cells
// containing commas or quotes are quoted.
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders labeled values as a horizontal ASCII bar chart, scaled
// to width characters. Negative values draw to the left of a center
// axis when any value is negative.
func Bars(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxAbs := 0.0
	hasNeg := false
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < 0 {
			hasNeg = true
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		v := values[i]
		fmt.Fprintf(&b, "%-*s ", lw, l)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteString("(n/a)\n")
			continue
		}
		n := int(math.Round(math.Abs(v) / maxAbs * float64(width) / 2))
		if !hasNeg {
			n = int(math.Round(math.Abs(v) / maxAbs * float64(width)))
			b.WriteString(strings.Repeat("#", n))
		} else {
			half := width / 2
			if v < 0 {
				b.WriteString(strings.Repeat(" ", half-n))
				b.WriteString(strings.Repeat("#", n))
				b.WriteString("|")
			} else {
				b.WriteString(strings.Repeat(" ", half))
				b.WriteString("|")
				b.WriteString(strings.Repeat("#", n))
			}
		}
		fmt.Fprintf(&b, " %.4g\n", v)
	}
	return b.String()
}

// FormatCount renders an iteration count with the paper's conventions:
// failed runs render as "-", capped runs as "<cap>+".
func FormatCount(iters int, converged, failed bool, cap int) string {
	if failed {
		return "-"
	}
	if !converged {
		return fmt.Sprintf("%d+", cap)
	}
	return fmt.Sprintf("%d", iters)
}

// Sci renders a float in compact scientific notation, with "-" for NaN.
func Sci(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2e", v)
}
