package minifloat

import "math"

// DecimalDigitsAt reports the worst-case decimal digits of accuracy
// when representing magnitudes near |x| in this format: -log10 of the
// maximum relative rounding error (half the local gap). Out-of-range
// magnitudes report 0 digits (they overflow to Inf or flush toward
// zero). This backs the Fig. 3 comparison curves alongside the posit
// equivalent.
func (f Format) DecimalDigitsAt(x float64) float64 {
	x = math.Abs(x)
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	p := f.FromFloat64(x)
	if f.IsInf(p) || f.IsZero(p) {
		return 0
	}
	// Local gap from the pattern to its successor (positive patterns
	// order by value).
	lo := f.ToFloat64(p)
	next := Bits(uint64(p) + 1)
	if f.IsInf(next) || f.IsNaN(next) {
		p = Bits(uint64(p) - 1)
		lo = f.ToFloat64(p)
		next = Bits(uint64(p) + 1)
	}
	hi := f.ToFloat64(next)
	relErr := (hi - lo) / 2 / x
	if relErr <= 0 {
		return 0
	}
	return -math.Log10(relErr)
}
