package minifloat

import "positlab/internal/fpcore"

// Add returns the correctly rounded sum a + b with IEEE-754 semantics
// (round-to-nearest-even; Inf - Inf = NaN; exact cancellation gives +0).
func (f Format) Add(a, b Bits) Bits {
	switch {
	case f.IsNaN(a) || f.IsNaN(b):
		return f.NaN()
	case f.IsInf(a) && f.IsInf(b):
		if f.Signbit(a) != f.Signbit(b) {
			return f.NaN()
		}
		return a
	case f.IsInf(a):
		return a
	case f.IsInf(b):
		return b
	case f.IsZero(a) && f.IsZero(b):
		// (+0)+(−0) = +0 under RNE; (−0)+(−0) = −0.
		if f.Signbit(a) && f.Signbit(b) {
			return f.NegZero()
		}
		return f.Zero()
	case f.IsZero(a):
		return b
	case f.IsZero(b):
		return a
	}
	sa, sb := f.Signbit(a), f.Signbit(b)
	ma, mb := f.decode(a), f.decode(b)
	if sa == sb {
		m, sticky := fpcore.Add(ma, mb)
		return f.round(sa, m, sticky)
	}
	m, sticky, zero, swapped := fpcore.Sub(ma, mb)
	if zero {
		return f.Zero() // exact cancellation is +0 under RNE
	}
	sign := sa
	if swapped {
		sign = sb
	}
	return f.round(sign, m, sticky)
}

// Sub returns the correctly rounded difference a - b.
func (f Format) Sub(a, b Bits) Bits {
	if f.IsNaN(b) {
		return f.NaN()
	}
	return f.Add(a, f.Neg(b))
}

// Mul returns the correctly rounded product a * b (0 * Inf = NaN).
func (f Format) Mul(a, b Bits) Bits {
	sign := f.Signbit(a) != f.Signbit(b)
	switch {
	case f.IsNaN(a) || f.IsNaN(b):
		return f.NaN()
	case f.IsInf(a) || f.IsInf(b):
		if f.IsZero(a) || f.IsZero(b) {
			return f.NaN()
		}
		return f.signed(f.PosInf(), sign)
	case f.IsZero(a) || f.IsZero(b):
		return f.signedZero(sign)
	}
	m, sticky := fpcore.Mul(f.decode(a), f.decode(b))
	return f.round(sign, m, sticky)
}

// Div returns the correctly rounded quotient a / b (x/0 = ±Inf,
// 0/0 = Inf/Inf = NaN).
func (f Format) Div(a, b Bits) Bits {
	sign := f.Signbit(a) != f.Signbit(b)
	switch {
	case f.IsNaN(a) || f.IsNaN(b):
		return f.NaN()
	case f.IsInf(a):
		if f.IsInf(b) {
			return f.NaN()
		}
		return f.signed(f.PosInf(), sign)
	case f.IsInf(b):
		return f.signedZero(sign)
	case f.IsZero(b):
		if f.IsZero(a) {
			return f.NaN()
		}
		return f.signed(f.PosInf(), sign)
	case f.IsZero(a):
		return f.signedZero(sign)
	}
	m, sticky := fpcore.Div(f.decode(a), f.decode(b))
	return f.round(sign, m, sticky)
}

// Sqrt returns the correctly rounded square root (sqrt(-0) = -0,
// sqrt of negative = NaN).
func (f Format) Sqrt(a Bits) Bits {
	switch {
	case f.IsNaN(a):
		return f.NaN()
	case f.IsZero(a):
		return a
	case f.Signbit(a):
		return f.NaN()
	case f.IsInf(a):
		return f.PosInf()
	}
	m, sticky := fpcore.Sqrt(f.decode(a))
	return f.round(false, m, sticky)
}

// Cmp compares two finite-or-infinite values by value: -1, 0, +1. Any
// NaN operand returns 2 (unordered).
func (f Format) Cmp(a, b Bits) int {
	if f.IsNaN(a) || f.IsNaN(b) {
		return 2
	}
	va, vb := f.ToFloat64(a), f.ToFloat64(b)
	switch {
	case va < vb:
		return -1
	case va > vb:
		return 1
	default:
		return 0
	}
}

// Less reports a < b (false on NaN, IEEE ordered-compare semantics).
func (f Format) Less(a, b Bits) bool { return f.Cmp(a, b) == -1 }

func (f Format) signed(p Bits, neg bool) Bits {
	if neg {
		return p | Bits(f.signMask())
	}
	return p
}

func (f Format) signedZero(neg bool) Bits {
	if neg {
		return f.NegZero()
	}
	return f.Zero()
}
