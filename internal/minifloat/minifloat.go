// Package minifloat implements generic small IEEE-754 binary floating
// point formats in software: binary(expBits, fracBits) with subnormals,
// signed zeros, infinities, NaN, and round-to-nearest-even. It provides
// the Float16 (binary16) arithmetic the paper compares against
// Posit(16,·), plus BFloat16 as an extension format.
//
// All operations are correctly rounded: they compute the exact result
// significand through the shared fpcore integer pipeline and round
// once. Nothing is routed through float32/float64 arithmetic, so there
// is no double rounding anywhere.
package minifloat

import (
	"fmt"
	"math"
	"math/bits"

	"positlab/internal/fpcore"
)

// Format describes an IEEE-754-style binary interchange format.
type Format struct {
	exp  uint8 // exponent field width (2..11)
	frac uint8 // fraction field width (1..52)
}

// New validates and returns a format.
func New(expBits, fracBits int) (Format, error) {
	if expBits < 2 || expBits > 11 {
		return Format{}, fmt.Errorf("minifloat: exponent width %d out of range [2,11]", expBits)
	}
	if fracBits < 1 || fracBits > 52 {
		return Format{}, fmt.Errorf("minifloat: fraction width %d out of range [1,52]", fracBits)
	}
	return Format{exp: uint8(expBits), frac: uint8(fracBits)}, nil
}

// MustNew is New that panics on invalid parameters.
func MustNew(expBits, fracBits int) Format {
	f, err := New(expBits, fracBits)
	if err != nil {
		panic(err)
	}
	return f
}

// Standard formats.
var (
	// Float16 is IEEE binary16: 1 sign + 5 exponent + 10 fraction.
	Float16 = MustNew(5, 10)
	// BFloat16 is the truncated-binary32 brain float: 1+8+7.
	BFloat16 = MustNew(8, 7)
	// Float32 is IEEE binary32, usable for cross-checks against native
	// float32 arithmetic.
	Float32 = MustNew(8, 23)
)

// Bits is a pattern stored LSB-aligned in a uint64.
type Bits uint64

// Width returns the total format width in bits.
func (f Format) Width() int { return 1 + int(f.exp) + int(f.frac) }

// ExpBits and FracBits return the field widths.
func (f Format) ExpBits() int  { return int(f.exp) }
func (f Format) FracBits() int { return int(f.frac) }

func (f Format) String() string {
	switch f {
	case Float16:
		return "Float16"
	case BFloat16:
		return "BFloat16"
	case Float32:
		return "Float32(soft)"
	}
	return fmt.Sprintf("binary(1,%d,%d)", f.exp, f.frac)
}

// bias returns the exponent bias 2^(exp-1)-1.
func (f Format) bias() int { return 1<<(f.exp-1) - 1 }

// Emax returns the largest normal exponent (unbiased).
func (f Format) Emax() int { return f.bias() }

// Emin returns the smallest normal exponent (unbiased).
func (f Format) Emin() int { return 1 - f.bias() }

// precision returns the significand precision including the hidden bit.
func (f Format) precision() int { return int(f.frac) + 1 }

func (f Format) signMask() uint64 { return 1 << (f.exp + f.frac) }
func (f Format) expMask() uint64  { return (1<<f.exp - 1) << f.frac }
func (f Format) fracMask() uint64 { return 1<<f.frac - 1 }

// Canonical special patterns.

// PosInf and NegInf return the infinity patterns.
func (f Format) PosInf() Bits { return Bits(f.expMask()) }
func (f Format) NegInf() Bits { return Bits(f.signMask() | f.expMask()) }

// NaN returns the canonical quiet NaN.
func (f Format) NaN() Bits { return Bits(f.expMask() | 1<<(f.frac-1)) }

// Zero and NegZero return the signed zero patterns.
func (f Format) Zero() Bits    { return 0 }
func (f Format) NegZero() Bits { return Bits(f.signMask()) }

// One returns the pattern for 1.0.
func (f Format) One() Bits { return Bits(uint64(f.bias()) << f.frac) }

// MaxFinite returns the largest finite pattern.
func (f Format) MaxFinite() Bits {
	return Bits((f.expMask() - (1 << f.frac)) | f.fracMask())
}

// MinSubnormal returns the smallest positive pattern.
func (f Format) MinSubnormal() Bits { return 1 }

// MinNormal returns the smallest positive normal pattern.
func (f Format) MinNormal() Bits { return Bits(uint64(1) << f.frac) }

// MaxValue returns MaxFinite as a float64 (65504 for Float16).
func (f Format) MaxValue() float64 { return f.ToFloat64(f.MaxFinite()) }

// Classification.

func (f Format) IsNaN(p Bits) bool {
	return uint64(p)&f.expMask() == f.expMask() && uint64(p)&f.fracMask() != 0
}

func (f Format) IsInf(p Bits) bool {
	return uint64(p)&f.expMask() == f.expMask() && uint64(p)&f.fracMask() == 0
}

func (f Format) IsZero(p Bits) bool {
	return uint64(p)&^f.signMask() == 0
}

// IsSubnormal reports a nonzero pattern with a zero exponent field.
func (f Format) IsSubnormal(p Bits) bool {
	return uint64(p)&f.expMask() == 0 && uint64(p)&f.fracMask() != 0
}

func (f Format) Signbit(p Bits) bool { return uint64(p)&f.signMask() != 0 }

// Neg flips the sign bit (exact, also on NaN per IEEE negate).
func (f Format) Neg(p Bits) Bits { return p ^ Bits(f.signMask()) }

// Abs clears the sign bit.
func (f Format) Abs(p Bits) Bits { return p &^ Bits(f.signMask()) }

// decode unpacks a finite nonzero pattern into an exact fpcore
// magnitude.
func (f Format) decode(p Bits) fpcore.Mag {
	e := (uint64(p) & f.expMask()) >> f.frac
	m := uint64(p) & f.fracMask()
	if e == 0 {
		// Subnormal: value = m * 2^(emin - frac).
		return fpcore.Normalize(f.Emin()-int(f.frac)+63, m)
	}
	sig := (m | 1<<f.frac) << (63 - f.frac)
	return fpcore.Mag{Scale: int(e) - f.bias(), Sig: sig}
}

// round encodes a magnitude (with sticky) into the nearest pattern
// using round-to-nearest-even, handling subnormals, underflow to zero
// and overflow to infinity.
func (f Format) round(sign bool, m fpcore.Mag, sticky bool) Bits {
	s := Bits(0)
	if sign {
		s = Bits(f.signMask())
	}
	p := f.precision()
	keep := p
	if m.Scale < f.Emin() {
		keep = p - (f.Emin() - m.Scale)
	}
	if keep < 0 {
		return s // below half the smallest subnormal: rounds to zero
	}
	var kept, roundBit uint64
	var rest bool
	if keep == 0 {
		// Candidate is zero; the round bit is the significand MSB.
		kept = 0
		roundBit = m.Sig >> 63
		rest = m.Sig<<1 != 0 || sticky
	} else {
		kept = m.Sig >> (64 - uint(keep))
		roundBit = (m.Sig >> (63 - uint(keep))) & 1
		rest = m.Sig<<(uint(keep)+1) != 0 || sticky
	}
	scale := m.Scale
	if roundBit == 1 && (rest || kept&1 == 1) {
		kept++
		if kept == 1<<uint(keep) && keep == p {
			// Carried past the hidden bit: 2.0 * 2^scale.
			kept >>= 1
			scale++
		}
		// In the subnormal range a carry to 2^(p-1) simply promotes the
		// value to the smallest normal; the assembly below handles it.
	}
	if kept == 0 {
		return s
	}
	if scale > f.Emax() {
		return s | f.PosInf()
	}
	if kept >= 1<<(p-1) {
		// Normal number. A subnormal that rounded up to the hidden-bit
		// position is the smallest normal, 2^emin.
		if keep < p {
			scale = f.Emin()
		}
		e := uint64(scale+f.bias()) << f.frac
		return s | Bits(e|(kept&f.fracMask()))
	}
	// Subnormal: mantissa field holds kept directly.
	return s | Bits(kept)
}

// ToFloat64 converts exactly (every supported format fits in float64).
func (f Format) ToFloat64(p Bits) float64 {
	if f.IsNaN(p) {
		return math.NaN()
	}
	if f.IsInf(p) {
		if f.Signbit(p) {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	if f.IsZero(p) {
		if f.Signbit(p) {
			return math.Copysign(0, -1)
		}
		return 0
	}
	m := f.decode(p)
	v := math.Ldexp(float64(m.Sig), m.Scale-63)
	if f.Signbit(p) {
		v = -v
	}
	return v
}

// FromFloat64 converts a float64 to the format with a single correct
// rounding (the float64 is decomposed exactly first).
func (f Format) FromFloat64(x float64) Bits {
	if math.IsNaN(x) {
		return f.NaN()
	}
	if math.IsInf(x, 1) {
		return f.PosInf()
	}
	if math.IsInf(x, -1) {
		return f.NegInf()
	}
	if x == 0 {
		if math.Signbit(x) {
			return f.NegZero()
		}
		return f.Zero()
	}
	sign := math.Signbit(x)
	fr, exp := math.Frexp(math.Abs(x))
	m := uint64(math.Ldexp(fr, 53)) // exact: in [2^52, 2^53)
	lz := bits.LeadingZeros64(m)
	return f.round(sign, fpcore.Mag{Scale: exp - 1, Sig: m << uint(lz)}, false)
}

// FromBits reinterprets a raw pattern, masking stray high bits.
func (f Format) FromBits(u uint64) Bits {
	return Bits(u & (f.signMask() | f.expMask() | f.fracMask()))
}
