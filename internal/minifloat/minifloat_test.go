package minifloat_test

import (
	"math"
	"testing"

	"positlab/internal/minifloat"
)

// Float64 reference arithmetic is a valid oracle here: by the
// double-rounding innocuousness theorem (Figueroa), rounding an exact
// or 53-bit-rounded result of +,-,*,/,sqrt down to precision p is the
// correctly rounded result whenever 53 >= 2p+2, which holds for every
// format this package supports (p <= 24).
func refBinary(f minifloat.Format, op func(x, y float64) float64, a, b minifloat.Bits) minifloat.Bits {
	return f.FromFloat64(op(f.ToFloat64(a), f.ToFloat64(b)))
}

func eqBits(f minifloat.Format, got, want minifloat.Bits) bool {
	if f.IsNaN(got) && f.IsNaN(want) {
		return true // any NaN payload is acceptable
	}
	return got == want
}

func TestKnownFloat16Values(t *testing.T) {
	f := minifloat.Float16
	cases := []struct {
		v    float64
		bits uint64
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{65504, 0x7bff},                 // MaxFinite
		{6.103515625e-05, 0x0400},       // MinNormal 2^-14
		{5.960464477539063e-08, 0x0001}, // MinSubnormal 2^-24
		{0.333251953125, 0x3555},        // fl16(1/3)
		{65536, 0x7c00},                 // overflows to +Inf
	}
	for _, tc := range cases {
		if got := f.FromFloat64(tc.v); uint64(got) != tc.bits {
			t.Errorf("FromFloat64(%g) = %#04x, want %#04x", tc.v, uint64(got), tc.bits)
		}
	}
	if f.MaxValue() != 65504 {
		t.Errorf("Float16 MaxValue = %g, want 65504", f.MaxValue())
	}
	if got := f.FromFloat64(1.0 / 3.0); uint64(got) != 0x3555 {
		t.Errorf("fl16(1/3) = %#04x, want 0x3555", uint64(got))
	}
}

// Exhaustive round-trip for all 65536 Float16 patterns and all BFloat16
// patterns: decode to float64 and re-encode must reproduce the pattern.
func TestRoundTripExhaustive(t *testing.T) {
	for _, f := range []minifloat.Format{minifloat.Float16, minifloat.BFloat16, minifloat.MustNew(4, 3), minifloat.MustNew(3, 2)} {
		limit := uint64(1) << uint(f.Width())
		for u := uint64(0); u < limit; u++ {
			p := minifloat.Bits(u)
			v := f.ToFloat64(p)
			if f.IsNaN(p) {
				if !math.IsNaN(v) {
					t.Fatalf("%v: NaN pattern %#x decoded to %g", f, u, v)
				}
				continue
			}
			back := f.FromFloat64(v)
			if back != p {
				t.Fatalf("%v: %#x -> %g -> %#x", f, u, v, uint64(back))
			}
		}
	}
}

// Exhaustive binary ops for the 8-bit format binary(4,3) against the
// float64 reference.
func TestOpsExhaustiveTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential test")
	}
	for _, f := range []minifloat.Format{minifloat.MustNew(4, 3), minifloat.MustNew(3, 4), minifloat.MustNew(5, 2)} {
		limit := uint64(1) << uint(f.Width())
		for x := uint64(0); x < limit; x++ {
			for y := uint64(0); y < limit; y++ {
				a, b := minifloat.Bits(x), minifloat.Bits(y)
				checks := []struct {
					name string
					got  minifloat.Bits
					ref  func(x, y float64) float64
				}{
					{"add", f.Add(a, b), func(x, y float64) float64 { return x + y }},
					{"sub", f.Sub(a, b), func(x, y float64) float64 { return x - y }},
					{"mul", f.Mul(a, b), func(x, y float64) float64 { return x * y }},
					{"div", f.Div(a, b), func(x, y float64) float64 { return x / y }},
				}
				for _, ck := range checks {
					want := refBinary(f, ck.ref, a, b)
					if !eqBits(f, ck.got, want) {
						t.Fatalf("%v: %s(%#x,%#x) = %#x, ref %#x (a=%g b=%g)",
							f, ck.name, x, y, uint64(ck.got), uint64(want),
							f.ToFloat64(a), f.ToFloat64(b))
					}
				}
			}
		}
	}
}

// Exhaustive sqrt for all Float16 and BFloat16 patterns.
func TestSqrtExhaustive(t *testing.T) {
	for _, f := range []minifloat.Format{minifloat.Float16, minifloat.BFloat16, minifloat.MustNew(4, 3)} {
		limit := uint64(1) << uint(f.Width())
		for u := uint64(0); u < limit; u++ {
			p := minifloat.Bits(u)
			got := f.Sqrt(p)
			want := f.FromFloat64(math.Sqrt(f.ToFloat64(p)))
			if !eqBits(f, got, want) {
				t.Fatalf("%v: Sqrt(%#x) = %#x, ref %#x (v=%g)", f, u, uint64(got), uint64(want), f.ToFloat64(p))
			}
		}
	}
}

// Directed + pseudo-random pairs for Float16 and BFloat16 binary ops.
func TestOpsDirectedFloat16(t *testing.T) {
	for _, f := range []minifloat.Format{minifloat.Float16, minifloat.BFloat16} {
		var pats []minifloat.Bits
		for _, p := range []minifloat.Bits{
			f.Zero(), f.NegZero(), f.One(), f.Neg(f.One()),
			f.PosInf(), f.NegInf(), f.NaN(),
			f.MaxFinite(), f.Neg(f.MaxFinite()),
			f.MinSubnormal(), f.MinNormal(),
			f.FromFloat64(0.5), f.FromFloat64(2), f.FromFloat64(3),
			f.FromFloat64(1.5), f.FromFloat64(1e-7), f.FromFloat64(1e4),
		} {
			pats = append(pats, p)
			pats = append(pats, f.Neg(p))
		}
		// Deterministic xorshift spread.
		x := uint64(0x123456789ABCDEF)
		mask := uint64(1)<<uint(f.Width()) - 1
		for i := 0; i < 300; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			pats = append(pats, minifloat.Bits(x&mask))
		}
		for _, a := range pats {
			for _, b := range pats {
				if got, want := f.Add(a, b), refBinary(f, func(x, y float64) float64 { return x + y }, a, b); !eqBits(f, got, want) {
					t.Fatalf("%v: Add(%#x,%#x)=%#x ref %#x", f, uint64(a), uint64(b), uint64(got), uint64(want))
				}
				if got, want := f.Sub(a, b), refBinary(f, func(x, y float64) float64 { return x - y }, a, b); !eqBits(f, got, want) {
					t.Fatalf("%v: Sub(%#x,%#x)=%#x ref %#x", f, uint64(a), uint64(b), uint64(got), uint64(want))
				}
				if got, want := f.Mul(a, b), refBinary(f, func(x, y float64) float64 { return x * y }, a, b); !eqBits(f, got, want) {
					t.Fatalf("%v: Mul(%#x,%#x)=%#x ref %#x", f, uint64(a), uint64(b), uint64(got), uint64(want))
				}
				if got, want := f.Div(a, b), refBinary(f, func(x, y float64) float64 { return x / y }, a, b); !eqBits(f, got, want) {
					t.Fatalf("%v: Div(%#x,%#x)=%#x ref %#x", f, uint64(a), uint64(b), uint64(got), uint64(want))
				}
			}
		}
	}
}

func TestSpecialSemantics(t *testing.T) {
	f := minifloat.Float16
	one := f.One()
	inf := f.PosInf()
	if !f.IsNaN(f.Add(inf, f.NegInf())) {
		t.Error("Inf + -Inf must be NaN")
	}
	if !f.IsNaN(f.Mul(f.Zero(), inf)) {
		t.Error("0 * Inf must be NaN")
	}
	if !f.IsNaN(f.Div(f.Zero(), f.Zero())) {
		t.Error("0/0 must be NaN")
	}
	if !f.IsNaN(f.Div(inf, inf)) {
		t.Error("Inf/Inf must be NaN")
	}
	if got := f.Div(one, f.Zero()); got != inf {
		t.Errorf("1/0 = %#x, want +Inf", uint64(got))
	}
	if got := f.Div(f.Neg(one), f.Zero()); got != f.NegInf() {
		t.Errorf("-1/0 = %#x, want -Inf", uint64(got))
	}
	if got := f.Add(one, f.Neg(one)); got != f.Zero() || f.Signbit(got) {
		t.Errorf("1 + -1 = %#x, want +0", uint64(got))
	}
	if got := f.Sqrt(f.NegZero()); got != f.NegZero() {
		t.Errorf("sqrt(-0) = %#x, want -0", uint64(got))
	}
	if !f.IsNaN(f.Sqrt(f.Neg(one))) {
		t.Error("sqrt(-1) must be NaN")
	}
	// Overflow to infinity.
	if got := f.Mul(f.MaxFinite(), f.FromFloat64(2)); got != inf {
		t.Errorf("maxfinite*2 = %#x, want +Inf", uint64(got))
	}
	// Gradual underflow.
	tiny := f.MinSubnormal()
	if got := f.Div(tiny, f.FromFloat64(2)); !f.IsZero(got) {
		t.Errorf("minsub/2 = %#x, want 0 (ties to even)", uint64(got))
	}
	if got := f.Mul(f.MinNormal(), f.FromFloat64(0.5)); !f.IsSubnormal(got) {
		t.Errorf("minnormal/2 = %#x, want subnormal", uint64(got))
	}
}

func TestFormatQueries(t *testing.T) {
	f := minifloat.Float16
	if f.Width() != 16 || f.ExpBits() != 5 || f.FracBits() != 10 {
		t.Error("Float16 field widths wrong")
	}
	if f.Emax() != 15 || f.Emin() != -14 {
		t.Errorf("Float16 emax/emin = %d/%d, want 15/-14", f.Emax(), f.Emin())
	}
	if v := f.ToFloat64(f.MinNormal()); v != math.Ldexp(1, -14) {
		t.Errorf("MinNormal = %g, want 2^-14", v)
	}
	if v := f.ToFloat64(f.MinSubnormal()); v != math.Ldexp(1, -24) {
		t.Errorf("MinSubnormal = %g, want 2^-24", v)
	}
	b := minifloat.BFloat16
	if b.Emax() != 127 || b.Emin() != -126 || b.Width() != 16 {
		t.Error("BFloat16 parameters wrong")
	}
	if _, err := minifloat.New(1, 3); err == nil {
		t.Error("New(1,3) must fail")
	}
	if _, err := minifloat.New(5, 60); err == nil {
		t.Error("New(5,60) must fail")
	}
}
