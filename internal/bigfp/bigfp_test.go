package bigfp_test

import (
	"math"
	"testing"

	"positlab/internal/bigfp"
	"positlab/internal/posit"
)

func TestPatternValueKnown(t *testing.T) {
	// posit(8,1): 0b0100000 (body of 1.0) -> pattern 0x40 has body
	// 1000000: regime "10" -> k=0, e=0, frac 0 -> 1.0.
	cases := []struct {
		n, es int
		pat   uint64
		want  float64
	}{
		{8, 1, 0x40, 1},
		{8, 1, 0x50, 2},
		{8, 1, 0x60, 4},
		{8, 0, 0x50, 1.5},
		{8, 0, 0x01, math.Ldexp(1, -6)}, // minpos of posit(8,0)
		{8, 0, 0x7f, 64},                // maxpos of posit(8,0)
		{16, 2, 0x4000, 1},
		// 33-bit midpoint pattern 2*one32+1: one extra fraction bit
		// below posit(32,2)'s 27 at scale 0.
		{33, 2, 0x80000001, 1 + math.Ldexp(1, -28)},
	}
	for _, tc := range cases {
		got, _ := bigfp.PatternValue(tc.n, tc.es, tc.pat).Float64()
		if got != tc.want {
			t.Errorf("PatternValue(%d,%d,%#x) = %g, want %g", tc.n, tc.es, tc.pat, got, tc.want)
		}
	}
}

func TestFromPositSpecials(t *testing.T) {
	c := posit.Posit16e2
	if _, ok := bigfp.FromPosit(c, c.NaR()); ok {
		t.Error("NaR must report !ok")
	}
	v, ok := bigfp.FromPosit(c, c.Zero())
	if !ok || v.Sign() != 0 {
		t.Error("zero must decode to 0")
	}
	neg, ok := bigfp.FromPosit(c, c.Neg(c.One()))
	if !ok {
		t.Fatal("!ok for -1")
	}
	if f, _ := neg.Float64(); f != -1 {
		t.Errorf("-1 decoded to %g", f)
	}
}

func TestRoundToPositIdempotent(t *testing.T) {
	// Every representable value is a fixed point of the oracle rounder.
	c := posit.Posit8e1
	for pat := uint64(0); pat < 256; pat++ {
		p := posit.Bits(pat)
		if c.IsNaR(p) {
			continue
		}
		v, _ := bigfp.FromPosit(c, p)
		if got := bigfp.RoundToPosit(c, v); got != p {
			t.Fatalf("pattern %#x not fixed point: got %#x", pat, uint64(got))
		}
	}
}

func TestRoundToPositClamps(t *testing.T) {
	c := posit.Posit16e2
	if got := bigfp.RoundToPosit(c, bigfp.New(1e300)); got != c.MaxPos() {
		t.Error("huge value must clamp to maxpos")
	}
	if got := bigfp.RoundToPosit(c, bigfp.New(-1e300)); got != c.Neg(c.MaxPos()) {
		t.Error("huge negative must clamp to -maxpos")
	}
	if got := bigfp.RoundToPosit(c, bigfp.New(1e-300)); got != c.MinPos() {
		t.Error("tiny value must clamp to minpos, not zero")
	}
	if got := bigfp.RoundToPosit(c, bigfp.New(0)); got != c.Zero() {
		t.Error("zero must round to zero")
	}
}

func TestRoundToPositTies(t *testing.T) {
	// Midpoint between 1.0 and its successor in posit(8,0): successor
	// is 1 + 2^-5; midpoint 1 + 2^-6 must go to the even pattern (1.0,
	// pattern 0x40).
	c := posit.Posit8e0
	mid := bigfp.New(1 + math.Ldexp(1, -6))
	if got := bigfp.RoundToPosit(c, mid); got != c.One() {
		t.Errorf("tie at 1+2^-6 rounded to %#x, want 0x40", uint64(got))
	}
	// Midpoint between successor (odd pattern 0x41) and 0x42 rounds up
	// to the even pattern 0x42.
	mid2 := bigfp.New(1 + 3*math.Ldexp(1, -6))
	if got := bigfp.RoundToPosit(c, mid2); uint64(got) != 0x42 {
		t.Errorf("tie at 1+3*2^-6 rounded to %#x, want 0x42", uint64(got))
	}
}

func TestRefOpsSpecials(t *testing.T) {
	c := posit.Posit16e2
	one := c.One()
	if !c.IsNaR(bigfp.AddRef(c, c.NaR(), one)) {
		t.Error("AddRef NaR")
	}
	if !c.IsNaR(bigfp.DivRef(c, one, c.Zero())) {
		t.Error("DivRef by zero must be NaR")
	}
	if !c.IsZero(bigfp.DivRef(c, c.Zero(), one)) {
		t.Error("DivRef 0/1 must be 0")
	}
	if !c.IsNaR(bigfp.SqrtRef(c, c.Neg(one))) {
		t.Error("SqrtRef of negative must be NaR")
	}
	if !c.IsZero(bigfp.SqrtRef(c, c.Zero())) {
		t.Error("SqrtRef of zero must be zero")
	}
	if got := bigfp.MulRef(c, one, one); got != one {
		t.Error("MulRef 1*1")
	}
	if !c.IsNaR(bigfp.FMARef(c, c.NaR(), one, one)) {
		t.Error("FMARef NaR")
	}
	if !c.IsNaR(bigfp.FromFloat64Ref(c, math.NaN())) {
		t.Error("FromFloat64Ref NaN")
	}
	if !c.IsNaR(bigfp.FromFloat64Ref(c, math.Inf(1))) {
		t.Error("FromFloat64Ref Inf")
	}
}
