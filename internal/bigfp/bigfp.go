// Package bigfp provides the extended-precision ground truth for
// differential validation, playing the role GNU GMP played in the
// paper. It is built on the standard library's math/big.Float and is
// deliberately implemented independently of internal/posit's bit
// pipelines: pattern values are reconstructed field-by-field from the
// format definition, and rounding decisions are made by exact
// comparisons against bracketing patterns, never by reusing the
// library's own decode/round code.
package bigfp

import (
	"math"
	"math/big"

	"positlab/internal/posit"
)

// Prec is the working precision (bits) for reference computations. All
// oracle comparisons are arranged to be exact at far lower precision
// (sums of 32-bit posits span under 1100 bits); 4096 leaves a wide
// margin.
const Prec = 4096

// New returns a Prec-bit big.Float initialized to x.
func New(x float64) *big.Float {
	return big.NewFloat(x).SetPrec(Prec)
}

// PatternValue returns the exact value of the positive (sign bit clear,
// nonzero) pattern pat interpreted as an (n, es) posit, reconstructed
// from the format definition: useed^k * 2^e * (1 + frac/2^fb). It
// accepts any n up to 63, so it can evaluate the (n+1)-bit midpoint
// patterns used for rounding decisions.
func PatternValue(n, es int, pat uint64) *big.Float {
	body := n - 1
	bitAt := func(i int) uint64 { return (pat >> uint(i)) & 1 }

	first := bitAt(body - 1)
	run := 1
	for j := body - 2; j >= 0 && bitAt(j) == first; j-- {
		run++
	}
	used := run + 1 // regime run plus terminator
	if run == body {
		used = body // regime fills the body
	}
	var k int
	if first == 1 {
		k = run - 1
	} else {
		k = -run
	}
	rem := body - used

	e := 0
	eb := es
	if rem < eb {
		eb = rem
	}
	if eb > 0 {
		e = int((pat >> uint(rem-eb)) & ((1 << uint(eb)) - 1))
		e <<= uint(es - eb)
	}
	fb := rem - es
	if fb < 0 {
		fb = 0
	}
	var frac uint64
	if fb > 0 {
		frac = pat & ((1 << uint(fb)) - 1)
	}

	scale := k*(1<<uint(es)) + e
	// value = (2^fb + frac) * 2^(scale - fb)
	z := new(big.Float).SetPrec(Prec).SetUint64(1<<uint(fb) + frac)
	return z.SetMantExp(z, scale-fb)
}

// FromPosit returns the exact value of any posit pattern. ok is false
// for NaR.
func FromPosit(c posit.Config, p posit.Bits) (v *big.Float, ok bool) {
	if c.IsNaR(p) {
		return nil, false
	}
	if c.IsZero(p) {
		return new(big.Float).SetPrec(Prec), true
	}
	n := c.N()
	u := uint64(p)
	neg := false
	if u&(1<<(uint(n)-1)) != 0 {
		neg = true
		u = (-u) & ((1 << uint(n)) - 1)
	}
	v = PatternValue(n, c.ES(), u)
	if neg {
		v.Neg(v)
	}
	return v, true
}

// RoundPattern finds the correctly rounded positive posit pattern for a
// positive magnitude described abstractly by cmp, where cmp(v) returns
// the sign of (magnitude - v) for an exact candidate value v. Rounding
// follows the posit rule: round-to-nearest with the midpoint defined in
// bit-pattern space (the value of the (n+1)-bit pattern 2p+1), ties to
// the even pattern, and clamping to MinPos/MaxPos instead of rounding
// to zero or NaR.
func RoundPattern(n, es int, cmp func(v *big.Float) int) uint64 {
	maxpos := uint64(1)<<uint(n-1) - 1
	if cmp(PatternValue(n, es, 1)) <= 0 {
		return 1 // at or below MinPos: clamp (never round to zero)
	}
	if cmp(PatternValue(n, es, maxpos)) >= 0 {
		return maxpos
	}
	// Largest p with value(p) <= magnitude; pattern order is value
	// order for positive patterns.
	lo, hi := uint64(1), maxpos
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if cmp(PatternValue(n, es, mid)) >= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	p := lo
	if cmp(PatternValue(n, es, p)) == 0 {
		return p
	}
	switch cmp(PatternValue(n+1, es, 2*p+1)) {
	case -1:
		return p
	case 1:
		return p + 1
	default: // exactly on the pattern midpoint: even pattern wins
		if p&1 == 0 {
			return p
		}
		return p + 1
	}
}

// RoundToPosit rounds an exact big.Float to the nearest posit per the
// posit rounding rule. x must be exactly represented (the caller
// computes sums/products at full precision first).
func RoundToPosit(c posit.Config, x *big.Float) posit.Bits {
	if x.IsInf() {
		return c.NaR()
	}
	if x.Sign() == 0 {
		return c.Zero()
	}
	mag := new(big.Float).SetPrec(Prec).Abs(x)
	pat := RoundPattern(c.N(), c.ES(), func(v *big.Float) int {
		return mag.Cmp(v)
	})
	p := posit.Bits(pat)
	if x.Sign() < 0 {
		p = c.Neg(p)
	}
	return p
}

// AddRef returns the reference result of a+b: exact extended-precision
// sum, then oracle rounding.
func AddRef(c posit.Config, a, b posit.Bits) posit.Bits {
	va, oka := FromPosit(c, a)
	vb, okb := FromPosit(c, b)
	if !oka || !okb {
		return c.NaR()
	}
	sum := new(big.Float).SetPrec(Prec).Add(va, vb)
	return RoundToPosit(c, sum)
}

// SubRef returns the reference result of a-b.
func SubRef(c posit.Config, a, b posit.Bits) posit.Bits {
	va, oka := FromPosit(c, a)
	vb, okb := FromPosit(c, b)
	if !oka || !okb {
		return c.NaR()
	}
	diff := new(big.Float).SetPrec(Prec).Sub(va, vb)
	return RoundToPosit(c, diff)
}

// MulRef returns the reference result of a*b.
func MulRef(c posit.Config, a, b posit.Bits) posit.Bits {
	va, oka := FromPosit(c, a)
	vb, okb := FromPosit(c, b)
	if !oka || !okb {
		return c.NaR()
	}
	prod := new(big.Float).SetPrec(Prec).Mul(va, vb)
	return RoundToPosit(c, prod)
}

// DivRef returns the reference result of a/b. The quotient is never
// formed: rounding compares |a| against candidate*|b| exactly, so the
// oracle is exact even though the quotient may be irrational in binary.
func DivRef(c posit.Config, a, b posit.Bits) posit.Bits {
	va, oka := FromPosit(c, a)
	vb, okb := FromPosit(c, b)
	if !oka || !okb || vb.Sign() == 0 {
		return c.NaR()
	}
	if va.Sign() == 0 {
		return c.Zero()
	}
	magA := new(big.Float).SetPrec(Prec).Abs(va)
	magB := new(big.Float).SetPrec(Prec).Abs(vb)
	pat := RoundPattern(c.N(), c.ES(), func(v *big.Float) int {
		rhs := new(big.Float).SetPrec(Prec).Mul(v, magB)
		return magA.Cmp(rhs)
	})
	p := posit.Bits(pat)
	if (va.Sign() < 0) != (vb.Sign() < 0) {
		p = c.Neg(p)
	}
	return p
}

// SqrtRef returns the reference square root: rounding compares a
// against candidate^2 exactly.
func SqrtRef(c posit.Config, a posit.Bits) posit.Bits {
	va, okA := FromPosit(c, a)
	if !okA || va.Sign() < 0 {
		return c.NaR()
	}
	if va.Sign() == 0 {
		return c.Zero()
	}
	pat := RoundPattern(c.N(), c.ES(), func(v *big.Float) int {
		sq := new(big.Float).SetPrec(Prec).Mul(v, v)
		return va.Cmp(sq)
	})
	return posit.Bits(pat)
}

// FMARef returns the reference fused multiply-add a*b + d.
func FMARef(c posit.Config, a, b, d posit.Bits) posit.Bits {
	va, oka := FromPosit(c, a)
	vb, okb := FromPosit(c, b)
	vd, okd := FromPosit(c, d)
	if !oka || !okb || !okd {
		return c.NaR()
	}
	prod := new(big.Float).SetPrec(Prec).Mul(va, vb)
	sum := new(big.Float).SetPrec(Prec).Add(prod, vd)
	return RoundToPosit(c, sum)
}

// FromFloat64Ref is the reference float64-to-posit conversion.
func FromFloat64Ref(c posit.Config, x float64) posit.Bits {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return c.NaR()
	}
	return RoundToPosit(c, New(x))
}
