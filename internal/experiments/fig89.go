package experiments

import (
	"context"
	"fmt"
	"math"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/report"
	"positlab/internal/runner"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func init() {
	runner.Register(runner.Spec{
		ID:    "fig8",
		Title: "Cholesky relative backward error, unscaled",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			rows := Fig8(optFrom(ctx, env))
			if err := ctx.Err(); err != nil {
				return nil, err // canceled: never cache partial rows
			}
			return &runner.Result{
				Body: RenderChol(rows),
				Artifacts: []runner.Artifact{
					csvArt("fig8.csv", CholCSV(rows)),
					svgArt("fig8a.svg", CholSVG(rows, "Fig. 8(a): digits advantage over Float32, unscaled")),
					svgArt("fig8b.svg", CholNormScatterSVG(rows)),
				},
			}, nil
		},
	})
	runner.Register(runner.Spec{
		ID:    "fig9",
		Title: "Cholesky backward error, Algorithm 3 rescaling",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			rows := Fig9(optFrom(ctx, env))
			if err := ctx.Err(); err != nil {
				return nil, err // canceled: never cache partial rows
			}
			return &runner.Result{
				Body: RenderChol(rows),
				Artifacts: []runner.Artifact{
					csvArt("fig9.csv", CholCSV(rows)),
					svgArt("fig9.svg", CholSVG(rows, "Fig. 9: digits advantage over Float32, Algorithm 3 rescaling")),
				},
			}, nil
		},
	})
}

// CholFormats are the formats compared in Figs. 8 and 9.
var CholFormats = []arith.Format{
	arith.Float32, arith.Posit32e2, arith.Posit32e3,
}

// CholRow is one matrix of the Fig. 8/9 data: relative backward error
// per format and the digits-of-precision advantage panels,
// log10(float32 error / posit error).
type CholRow struct {
	Matrix string
	Norm2  float64
	// BackErr per format (parallel to CholFormats); NaN = factorization
	// failed in that format.
	BackErr []float64
	// DigitsAdvantage of each posit format over Float32.
	DigitsAdvantage map[string]float64
}

// Fig8 runs the unscaled single-precision Cholesky direct solve
// (paper §V-C1).
func Fig8(opt Options) []CholRow { return cholExperiment(opt, false) }

// Fig9 runs Cholesky after Algorithm 3's diagonal-average rescaling
// (paper §V-C2).
func Fig9(opt Options) []CholRow { return cholExperiment(opt, true) }

func cholExperiment(opt Options, rescale bool) []CholRow {
	opt = opt.fill()
	var rows []CholRow
	for _, m := range suite(opt.Matrices) {
		if opt.canceled() {
			return rows
		}
		a := m.A
		b := m.B
		if rescale {
			a = m.A.Clone()
			b = append([]float64(nil), m.B...)
			scaling.RescaleSystemCholesky(a, b)
		}
		dense := a.ToDense()
		row := CholRow{
			Matrix:          m.Target.Name,
			Norm2:           m.Target.Norm2,
			BackErr:         make([]float64, len(CholFormats)),
			DigitsAdvantage: map[string]float64{},
		}
		for i, f := range CholFormats {
			fi := opt.format(f)
			an := dense.ToFormat(fi, false)
			bn := linalg.VecFromFloat64(fi, b)
			x, err := solvers.CholeskySolveCtx(opt.ctx(), an, bn)
			if err != nil {
				if opt.canceled() {
					return rows // canceled mid-factorization, not a breakdown
				}
				row.BackErr[i] = math.NaN()
				continue
			}
			row.BackErr[i] = solvers.BackwardError(a, b, linalg.VecToFloat64(f, x))
		}
		f32 := 0 // CholFormats[0] is Float32
		for i, f := range CholFormats {
			if i == f32 {
				continue
			}
			row.DigitsAdvantage[f.Name()] = log10Ratio(row.BackErr[f32], row.BackErr[i])
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderChol prints backward errors and the digits-advantage panels.
func RenderChol(rows []CholRow) string {
	hdr := []string{"Matrix", "||A||2"}
	for _, f := range CholFormats {
		hdr = append(hdr, f.Name())
	}
	hdr = append(hdr, "digits adv (32,2)", "digits adv (32,3)")
	var out [][]string
	for _, r := range rows {
		row := []string{r.Matrix, report.Sci(r.Norm2)}
		for i := range CholFormats {
			row = append(row, report.Sci(r.BackErr[i]))
		}
		row = append(row,
			digits(r.DigitsAdvantage["Posit(32,2)"]),
			digits(r.DigitsAdvantage["Posit(32,3)"]))
		out = append(out, row)
	}
	return report.Table(hdr, out)
}

func digits(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.2f", v)
}
