package experiments

import (
	"context"
	"fmt"
	"math"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/report"
	"positlab/internal/runner"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func init() {
	cgSpec := func(id, title string, fn func(Options) []CGRow, svgA, svgB, titleA, titleB string) runner.Spec {
		return runner.Spec{
			ID:    id,
			Title: title,
			Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
				rows := fn(optFrom(ctx, env))
				if err := ctx.Err(); err != nil {
					return nil, err // canceled: never cache partial rows
				}
				iters := 0.0
				for _, r := range rows {
					for _, it := range r.Iters {
						iters += float64(it)
					}
				}
				return &runner.Result{
					Body: RenderCG(rows),
					Artifacts: []runner.Artifact{
						csvArt(id+".csv", CGCSV(rows)),
						svgArt(svgA, CGSVG(rows, titleA)),
						svgArt(svgB, CGImprovementSVG(rows, titleB)),
					},
					Metrics: map[string]float64{"cg_iterations": iters},
				}, nil
			},
		}
	}
	runner.Register(cgSpec("fig6", "CG iterations, unscaled", Fig6,
		"fig6a.svg", "fig6b.svg",
		"Fig. 6(a): CG iterations, unscaled",
		"Fig. 6(b): % improvement over Float32, unscaled"))
	runner.Register(cgSpec("fig7", "CG iterations, rescaled to ||A||inf ~ 2^10", Fig7,
		"fig7a.svg", "fig7b.svg",
		"Fig. 7(a): CG iterations, rescaled",
		"Fig. 7(b): % improvement over Float32, rescaled"))
}

// CGFormats are the formats compared in Figs. 6 and 7, with Float64 as
// the reference the paper plots alongside.
var CGFormats = []arith.Format{
	arith.Float64, arith.Float32, arith.Posit32e2, arith.Posit32e3,
}

// CGRow is one matrix of the Fig. 6/7 data: iterations per format plus
// the percent-improvement series of the (b) panels.
type CGRow struct {
	Matrix string
	Norm2  float64
	// Per format (parallel to CGFormats): iterations, convergence flag,
	// and arithmetic failure (NaR/NaN/Inf mid-run — rendered '-' like
	// the paper's divergent runs; hitting the cap renders 'N+').
	Iters     []int
	Converged []bool
	Failed    []bool
	// PctImprovement of each posit32 format over Float32:
	// (itFloat32 - itPosit)/itFloat32 * 100; NaN when either failed.
	PctImprovement map[string]float64
}

// Fig6 runs unscaled CG on the suite (paper §V-A).
func Fig6(opt Options) []CGRow { return cgExperiment(opt, false) }

// Fig7 runs CG after the power-of-two rescaling to ‖A‖∞ ≈ 2^10
// (paper §V-B).
func Fig7(opt Options) []CGRow { return cgExperiment(opt, true) }

func cgExperiment(opt Options, rescale bool) []CGRow {
	opt = opt.fill()
	var rows []CGRow
	for _, m := range suite(opt.Matrices) {
		if opt.canceled() {
			return rows
		}
		a := m.A
		b := m.B
		if rescale {
			a = m.A.Clone()
			b = append([]float64(nil), m.B...)
			scaling.RescaleSystemCG(a, b)
		}
		row := CGRow{
			Matrix:         m.Target.Name,
			Norm2:          m.Target.Norm2,
			Iters:          make([]int, len(CGFormats)),
			Converged:      make([]bool, len(CGFormats)),
			Failed:         make([]bool, len(CGFormats)),
			PctImprovement: map[string]float64{},
		}
		cap := opt.CGCapFactor * a.N
		for i, f := range CGFormats {
			fi := opt.format(f)
			an := a.ToFormat(fi, false)
			bn := linalg.VecFromFloat64(fi, b)
			res, err := solvers.CGCtx(opt.ctx(), an, bn, opt.CGTol, cap)
			if err != nil {
				return rows // canceled mid-solve; caller reports ctx.Err()
			}
			row.Iters[i] = res.Iterations
			row.Converged[i] = res.Converged
			row.Failed[i] = res.Failed
		}
		// Percent improvement panels compare posit32 against Float32.
		f32 := indexOfFormat(CGFormats, "Float32")
		for i, f := range CGFormats {
			if f.Name() == "Posit(32,2)" || f.Name() == "Posit(32,3)" {
				if row.Failed[i] || row.Failed[f32] || !row.Converged[i] || !row.Converged[f32] {
					row.PctImprovement[f.Name()] = math.NaN()
				} else {
					it32 := float64(row.Iters[f32])
					row.PctImprovement[f.Name()] = (it32 - float64(row.Iters[i])) / it32 * 100
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func indexOfFormat(fs []arith.Format, name string) int {
	for i, f := range fs {
		if f.Name() == name {
			return i
		}
	}
	return -1
}

// RenderCG prints the Fig. 6/7 (a) panel as a table and the (b) panel
// as percent-improvement columns.
func RenderCG(rows []CGRow) string {
	hdr := []string{"Matrix", "||A||2"}
	for _, f := range CGFormats {
		hdr = append(hdr, f.Name())
	}
	hdr = append(hdr, "%impr (32,2)", "%impr (32,3)")
	var out [][]string
	for _, r := range rows {
		row := []string{r.Matrix, report.Sci(r.Norm2)}
		for i := range CGFormats {
			switch {
			case r.Failed[i]:
				row = append(row, "-") // arithmetic exception: diverged
			case !r.Converged[i]:
				row = append(row, fmt.Sprintf("%d+", r.Iters[i]))
			default:
				row = append(row, fmt.Sprintf("%d", r.Iters[i]))
			}
		}
		row = append(row,
			pct(r.PctImprovement["Posit(32,2)"]),
			pct(r.PctImprovement["Posit(32,3)"]))
		out = append(out, row)
	}
	return report.Table(hdr, out)
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v)
}
