package experiments_test

import (
	"strings"
	"testing"

	"positlab/internal/experiments"
)

func TestExtFFT(t *testing.T) {
	rows, err := experiments.ExtFFT()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiments.ExtFFTRow{}
	for _, r := range rows {
		byName[r.Format] = r
	}
	// Precision ordering and the §VII hypothesis: posit16 beats
	// float16; posit(32,2) beats float32 on this unit-range signal.
	if !(byName["Posit(16,2)"].ForwardErr < byName["Float16"].ForwardErr) {
		t.Errorf("posit(16,2) %g !< float16 %g",
			byName["Posit(16,2)"].ForwardErr, byName["Float16"].ForwardErr)
	}
	if !(byName["Posit(32,2)"].ForwardErr < byName["Float32"].ForwardErr) {
		t.Errorf("posit(32,2) %g !< float32 %g",
			byName["Posit(32,2)"].ForwardErr, byName["Float32"].ForwardErr)
	}
	if byName["Float64"].ForwardErr > 1e-12 {
		t.Errorf("float64 self-error %g", byName["Float64"].ForwardErr)
	}
	for _, r := range rows {
		if r.RoundTripErr < 0 || (r.Format != "Float64" && r.RoundTripErr == 0) {
			t.Errorf("%s round-trip err %g", r.Format, r.RoundTripErr)
		}
	}
	if s := experiments.RenderExtFFT(rows); !strings.Contains(s, "forward err") {
		t.Error("render missing content")
	}
}

func TestExtShock(t *testing.T) {
	rows, err := experiments.ExtShock()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiments.ExtShockRow{}
	for _, r := range rows {
		byName[r.Format] = r
		if r.Failed {
			t.Errorf("%s shock run failed", r.Format)
		}
	}
	if !(byName["Float32"].DensityErr < byName["Float16"].DensityErr) {
		t.Error("float32 should beat float16 on the shock tube")
	}
	if s := experiments.RenderExtShock(rows); !strings.Contains(s, "density") {
		t.Error("render missing content")
	}
}

func TestExtGMRES(t *testing.T) {
	rows := experiments.ExtGMRES(smallOpt)
	for _, r := range rows {
		for i := range experiments.IRFormats {
			p, g := r.Plain[i], r.GMRES[i]
			// Same factorization stage: failure flags must agree.
			if p.FactorFailed != g.FactorFailed {
				t.Errorf("%s: factor flags diverge", r.Matrix)
			}
			if p.FactorFailed {
				continue
			}
			// GMRES corrections never lose to plain corrections by
			// more than a couple of outer iterations.
			if p.Converged && g.Converged && g.Iterations > p.Iterations+2 {
				t.Errorf("%s: GMRES-IR %d vs plain %d", r.Matrix, g.Iterations, p.Iterations)
			}
			if p.Converged && !g.Converged {
				t.Errorf("%s: GMRES-IR failed where plain IR converged", r.Matrix)
			}
		}
	}
	if s := experiments.RenderExtGMRES(rows, 1000); !strings.Contains(s, "GMRES-IR") {
		t.Error("render missing content")
	}
}

// The Peclet sweep is the §VI hypothesis test: float64 BiCG converges,
// iterates grow with nonsymmetry, and 32-bit formats lose convergence
// once the transient iterates dwarf the working precision.
func TestExtBiCGPeclet(t *testing.T) {
	rows, err := experiments.ExtBiCGPeclet([]float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	if !rows[0].Float64Converged || !rows[0].PositConverged {
		t.Error("p=0 (symmetric Laplacian) must converge everywhere")
	}
	if !rows[1].Float64Converged {
		t.Error("float64 BiCG must converge at p=10")
	}
	if rows[1].Float64MaxIterate <= rows[0].Float64MaxIterate {
		t.Errorf("iterate growth with Peclet not observed: %g vs %g",
			rows[1].Float64MaxIterate, rows[0].Float64MaxIterate)
	}
	if s := experiments.RenderExtBiCGPeclet(rows); !strings.Contains(s, "Peclet") {
		t.Error("render missing content")
	}
}

func TestExtBiCG(t *testing.T) {
	rows := experiments.ExtBiCG(smallOpt)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BiCGMaxIterate <= 0 {
			t.Errorf("%s: iterate growth not tracked", r.Matrix)
		}
	}
	if s := experiments.RenderExtBiCG(rows); !strings.Contains(s, "BiCG") {
		t.Error("render missing content")
	}
}
