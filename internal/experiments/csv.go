package experiments

import (
	"fmt"
	"strconv"

	"positlab/internal/report"
)

// CSV exports: machine-readable versions of each experiment's rows,
// suitable for external plotting tools.

// Table1CSV exports the suite inventory.
func Table1CSV(rows []Table1Row) string {
	hdr := []string{"matrix", "cond_target", "cond_measured", "n", "norm2_target", "norm2_measured", "nnz_target", "nnz_measured"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fl(r.CondTarget), fl(r.CondMeasured),
			strconv.Itoa(r.N),
			fl(r.Norm2Target), fl(r.Norm2),
			strconv.Itoa(r.NNZTarget), strconv.Itoa(r.NNZ),
		})
	}
	return report.CSV(hdr, out)
}

// Fig3CSV exports the precision curves.
func Fig3CSV(formats []string, pts []Fig3Point) string {
	if formats == nil {
		formats = Fig3Formats
	}
	hdr := append([]string{"log10_x"}, formats...)
	var out [][]string
	for _, p := range pts {
		row := []string{fl(p.Log10X)}
		for _, d := range p.Digits {
			row = append(row, fl(d))
		}
		out = append(out, row)
	}
	return report.CSV(hdr, out)
}

// CGCSV exports the Fig. 6/7 rows.
func CGCSV(rows []CGRow) string {
	hdr := []string{"matrix", "norm2"}
	for _, f := range CGFormats {
		hdr = append(hdr, f.Name()+"_iters", f.Name()+"_converged", f.Name()+"_failed")
	}
	hdr = append(hdr, "pct_impr_posit32e2", "pct_impr_posit32e3")
	var out [][]string
	for _, r := range rows {
		row := []string{r.Matrix, fl(r.Norm2)}
		for i := range CGFormats {
			row = append(row,
				strconv.Itoa(r.Iters[i]),
				strconv.FormatBool(r.Converged[i]),
				strconv.FormatBool(r.Failed[i]))
		}
		row = append(row, fl(r.PctImprovement["Posit(32,2)"]), fl(r.PctImprovement["Posit(32,3)"]))
		out = append(out, row)
	}
	return report.CSV(hdr, out)
}

// CholCSV exports the Fig. 8/9 rows.
func CholCSV(rows []CholRow) string {
	hdr := []string{"matrix", "norm2"}
	for _, f := range CholFormats {
		hdr = append(hdr, f.Name()+"_backerr")
	}
	hdr = append(hdr, "digits_adv_posit32e2", "digits_adv_posit32e3")
	var out [][]string
	for _, r := range rows {
		row := []string{r.Matrix, fl(r.Norm2)}
		for i := range CholFormats {
			row = append(row, fl(r.BackErr[i]))
		}
		row = append(row, fl(r.DigitsAdvantage["Posit(32,2)"]), fl(r.DigitsAdvantage["Posit(32,3)"]))
		out = append(out, row)
	}
	return report.CSV(hdr, out)
}

// IRCSV exports the Table II/III rows.
func IRCSV(rows []IRRow, cap int) string {
	hdr := []string{"matrix"}
	for _, f := range IRFormats {
		hdr = append(hdr, f.Name()+"_result", f.Name()+"_factor_err")
	}
	hdr = append(hdr, "pct_diff")
	var out [][]string
	for _, r := range rows {
		row := []string{r.Matrix}
		for _, res := range r.Res {
			row = append(row, irCell(res, cap), fl(res.FactorError))
		}
		row = append(row, fl(r.PctDiff))
		out = append(out, row)
	}
	return report.CSV(hdr, out)
}

func fl(v float64) string {
	return fmt.Sprintf("%g", v)
}
