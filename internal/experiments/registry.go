// Registration of every experiment into the runner's Default
// registry. Each experiment file contributes its own init() with the
// spec(s) it owns; this file holds the shared glue.
package experiments

import (
	"context"

	"positlab/internal/runner"
)

// optFrom extracts the experiments.Options a driver placed in the
// job environment (zero Options when absent) and attaches the job's
// operation counter and cancellation context.
func optFrom(ctx context.Context, env *runner.Env) Options {
	opt, _ := env.Options.(Options)
	opt.Ops = env.Ops
	opt.Ctx = ctx
	return opt
}

// csvArt and svgArt build the artifact entries the CLI writes to its
// -csv and -svg sinks, with the same file names the serial driver
// used.
func csvArt(name, content string) runner.Artifact {
	return runner.Artifact{Name: name, Kind: runner.CSV, Content: content}
}

func svgArt(name, content string) runner.Artifact {
	return runner.Artifact{Name: name, Kind: runner.SVG, Content: content}
}
