package experiments

// The shadow-diagnosis experiment: Table III's mixed-precision
// iterative refinement re-run under the shadow wrapper, one diagnosis
// per matrix × 16-bit factorization format. Iteration counts are
// bit-identical to Table III's (the wrapper never perturbs results);
// what this adds is the per-op error telemetry, the forward-error
// decay against the Float64 solution, and the decimal-digits envelope
// comparison. Not part of "all" — it roughly doubles the IR work — so
// the CLI exposes it behind -shadow.

import (
	"context"
	"fmt"

	"positlab/internal/report"
	"positlab/internal/runner"
	"positlab/internal/shadow"
)

func init() {
	runner.Register(runner.Spec{
		ID:    "diagnose",
		Title: "shadow-precision diagnosis of Higham-scaled IR",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			opt := optFrom(ctx, env)
			rows, err := DiagnoseIR(opt)
			if err != nil {
				return nil, err // canceled or failed: never cache partial rows
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			arts := []runner.Artifact{csvArt("diagnose.csv", DiagnoseCSV(rows))}
			var measured float64
			for _, r := range rows {
				measured += float64(r.Rep.Telemetry.MeasuredOps)
				// One decay figure per format, from the first matrix of
				// the selection (bounded: the full suite would emit 57).
				if r.Matrix == rows[0].Matrix {
					if svg := r.Rep.DecaySVG(); svg != "" {
						arts = append(arts, svgArt(fmt.Sprintf("diagnose_%s.svg", r.Format), svg))
					}
				}
			}
			return &runner.Result{
				Body:      RenderDiagnose(rows),
				Artifacts: arts,
				Metrics:   map[string]float64{"shadow_measured_ops": measured},
			}, nil
		},
	})
}

// DiagRow is one matrix × format shadow diagnosis.
type DiagRow struct {
	Matrix string
	Format string
	Rep    *shadow.Report
}

// DiagnoseIR runs the shadow-diagnosed Higham-scaled IR experiment
// over the suite × IRFormats grid.
func DiagnoseIR(opt Options) ([]DiagRow, error) {
	opt = opt.fill()
	var rows []DiagRow
	for _, m := range suite(opt.Matrices) {
		for _, f := range IRFormats {
			if opt.canceled() {
				return nil, opt.ctx().Err()
			}
			// Deliberately not opt.format(f): operation instrumentation
			// must compose outside the shadow wrapper (its replay of
			// sampled reduction chains would inflate an inner count), and
			// the diagnosis report already carries its own op totals.
			rep, err := shadow.Diagnose(opt.ctx(), m.A, m.B, m.Target.Name, shadow.Options{
				Solver:  "ir",
				Format:  f,
				Sample:  shadow.Config{SampleEvery: opt.ShadowSample},
				Tol:     opt.IRTol,
				MaxIter: opt.IRMaxIter,
				Higham:  true,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, DiagRow{Matrix: m.Target.Name, Format: f.Name(), Rep: rep})
		}
	}
	return rows, nil
}

// RenderDiagnose prints the diagnosis grid: Table III's iteration
// counts with the shadow columns alongside.
func RenderDiagnose(rows []DiagRow) string {
	hdr := []string{"Matrix", "Format", "Iters", "FwdErr", "Digits", "Envelope", "Measured", "MaxRel"}
	var out [][]string
	for _, r := range rows {
		rep := r.Rep
		cell := "-"
		if !rep.Failed {
			cell = fmt.Sprintf("%d", rep.Iterations)
			if !rep.Converged {
				cell += "+"
			}
		}
		digits, env := "-", "-"
		if rep.Envelope != nil {
			digits = fmt.Sprintf("%.1f", float64(rep.Envelope.AchievedDigits))
			env = fmt.Sprintf("%.1f", float64(rep.Envelope.EnvelopeDigits))
		}
		out = append(out, []string{
			r.Matrix, r.Format, cell,
			report.Sci(float64(rep.ForwardError)),
			digits, env,
			fmt.Sprintf("%d", rep.Telemetry.MeasuredOps),
			report.Sci(maxRelOf(rep)),
		})
	}
	return report.Table(hdr, out)
}

// DiagnoseCSV renders the full numeric grid as CSV.
func DiagnoseCSV(rows []DiagRow) string {
	var out [][]string
	for _, r := range rows {
		rep := r.Rep
		digits, env, ratio := "", "", ""
		if rep.Envelope != nil {
			digits = fmt.Sprintf("%.3f", float64(rep.Envelope.AchievedDigits))
			env = fmt.Sprintf("%.3f", float64(rep.Envelope.EnvelopeDigits))
			ratio = fmt.Sprintf("%.3f", float64(rep.Envelope.Ratio))
		}
		out = append(out, []string{
			r.Matrix, r.Format,
			fmt.Sprintf("%d", rep.Iterations),
			fmt.Sprintf("%t", rep.Converged),
			fmt.Sprintf("%t", rep.Failed),
			report.Sci(float64(rep.FinalResidual)),
			report.Sci(float64(rep.ForwardError)),
			digits, env, ratio,
			fmt.Sprintf("%d", rep.Telemetry.TotalOps),
			fmt.Sprintf("%d", rep.Telemetry.MeasuredOps),
			report.Sci(maxRelOf(rep)),
		})
	}
	return report.CSV([]string{
		"matrix", "format", "iterations", "converged", "failed",
		"backward_error", "forward_error", "achieved_digits",
		"envelope_digits", "ratio", "total_ops", "measured_ops", "max_rel",
	}, out)
}

// maxRelOf is the largest relative error any telemetry cell recorded.
func maxRelOf(rep *shadow.Report) float64 {
	var v float64
	for _, s := range rep.Telemetry.Stats {
		if float64(s.MaxRel) > v {
			v = float64(s.MaxRel)
		}
	}
	return v
}
