// Package experiments regenerates every table and figure of the
// paper's evaluation section on the synthetic Table I replica suite:
//
//	Table I   — matrix inventory (Table1)
//	Fig. 3    — digits of accuracy vs magnitude per format (Fig3)
//	Fig. 5    — histogram of posit32 extra fraction bits (Fig5)
//	Fig. 6/7  — CG iteration counts, unscaled/rescaled (Fig6, Fig7)
//	Fig. 8/9  — Cholesky backward error, unscaled/rescaled (Fig8, Fig9)
//	Table II  — naive mixed-precision IR (Table2)
//	Table III — IR with Higham scaling (Table3)
//	Fig. 10   — refinement-step reduction and factorization-error
//	            digits (Fig10)
//
// Each experiment returns typed rows; Render* helpers print the same
// layout the paper reports. Absolute values will not match the paper
// (the matrices are synthetic replicas; see DESIGN.md) but the shape —
// who wins, by how much, where failures begin — is the reproduction
// target and is recorded against the paper in EXPERIMENTS.md.
package experiments

import (
	"context"
	"sync"

	"positlab/internal/arith"
	"positlab/internal/matgen"
)

// Options tunes experiment scope and caps.
type Options struct {
	// Matrices filters the suite by name; nil means all 19.
	Matrices []string `json:"matrices,omitempty"`
	// CGTol is the CG relative-residual convergence threshold
	// (paper: 1e-5).
	CGTol float64 `json:"cg_tol,omitempty"`
	// CGCapFactor caps CG at CGCapFactor*N iterations (default 10).
	CGCapFactor int `json:"cg_cap_factor,omitempty"`
	// IRTol is the refinement backward-error threshold (default 1e-15,
	// "accurate to Float64 precision").
	IRTol float64 `json:"ir_tol,omitempty"`
	// IRMaxIter caps refinement (paper: 1000).
	IRMaxIter int `json:"ir_max_iter,omitempty"`
	// ShadowSample is the shadow-diagnosis sampling stride: the
	// diagnose experiment measures every ShadowSample-th format
	// operation against the high-precision reference (1 = every
	// operation; 0 = the shadow package default). Part of the JSON
	// encoding — and therefore of runner cache keys — because the
	// stride changes the reported telemetry.
	ShadowSample int `json:"shadow_sample,omitempty"`
	// Ops, when non-nil, receives a count of every format operation
	// the experiment performs (see arith.InstrumentAtomic). Excluded
	// from JSON — and therefore from runner cache keys — because
	// instrumentation never changes results.
	Ops *arith.AtomicOpCounts `json:"-"`
	// Ctx, when non-nil, is the run's cancellation context: experiment
	// loops check it between solver calls and the solver loops check
	// it at their per-iteration checkpoints, so a driver timeout stops
	// in-flight work promptly. Excluded from JSON — and therefore from
	// runner cache keys — because cancellation never changes rows that
	// do complete (a canceled experiment returns an error, never a
	// partial result).
	Ctx context.Context `json:"-"`
}

// ctx returns the run context, defaulting to context.Background.
func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// canceled reports whether the run context has expired; experiment
// loops use it to bail out between solver calls.
func (o Options) canceled() bool { return o.ctx().Err() != nil }

// Canonical returns the options with all defaults filled in, so two
// spellings of the same configuration hash to the same cache key.
func (o Options) Canonical() Options { return o.fill() }

// format returns f wrapped to count operations into o.Ops, or f
// itself when instrumentation is off. The wrapper is transparent:
// results are bit-identical either way.
func (o Options) format(f arith.Format) arith.Format {
	if o.Ops == nil {
		return f
	}
	return arith.InstrumentAtomic(f, o.Ops)
}

func (o Options) fill() Options {
	if o.CGTol == 0 {
		o.CGTol = 1e-5
	}
	if o.CGCapFactor == 0 {
		o.CGCapFactor = 10
	}
	if o.IRTol == 0 {
		o.IRTol = 1e-15
	}
	if o.IRMaxIter == 0 {
		o.IRMaxIter = 1000
	}
	return o
}

// suiteEntry is one per-name singleflight slot: the mutex-protected
// map only hands out entries, and generation happens under the
// entry's own once, so distinct matrices generate concurrently while
// concurrent requests for the same matrix do the work exactly once.
type suiteEntry struct {
	once sync.Once
	m    *matgen.Matrix
}

var (
	suiteMu    sync.Mutex
	suiteCache = map[string]*suiteEntry{}
)

// suite returns the requested matrices (all of Table I when names is
// nil), generating each at most once per process. Generation includes
// the condition-number calibration passes, so caching matters — and
// the per-name singleflight keeps parallel experiment jobs from
// serializing on one global lock while unrelated matrices generate.
func suite(names []string) []*matgen.Matrix {
	if names == nil {
		for _, t := range matgen.TableI {
			names = append(names, t.Name)
		}
	}
	entries := make([]*suiteEntry, len(names))
	suiteMu.Lock()
	for i, name := range names {
		e, ok := suiteCache[name]
		if !ok {
			e = &suiteEntry{}
			suiteCache[name] = e
		}
		entries[i] = e
	}
	suiteMu.Unlock()
	out := make([]*matgen.Matrix, len(names))
	for i, e := range entries {
		name := names[i]
		e.once.Do(func() {
			t, err := matgen.TargetByName(name)
			if err != nil {
				// The runner's safeRun recovers suite panics into job
				// failures; runner_test exercises that path.
				panic(err) //lint:allow panics recovered by runner.safeRun, tested in runner_test
			}
			e.m = matgen.Generate(t)
		})
		if e.m == nil {
			// A concurrent caller's generation panicked; re-surface
			// the failure here instead of returning a nil matrix.
			panic("experiments: generation of " + name + " failed in a concurrent caller") //lint:allow panics recovered by runner.safeRun, tested in runner_test
		}
		out[i] = e.m
	}
	return out
}

// Suite exposes the cached replica suite for tools and examples.
func Suite(names []string) []*matgen.Matrix { return suite(names) }
