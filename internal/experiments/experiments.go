// Package experiments regenerates every table and figure of the
// paper's evaluation section on the synthetic Table I replica suite:
//
//	Table I   — matrix inventory (Table1)
//	Fig. 3    — digits of accuracy vs magnitude per format (Fig3)
//	Fig. 5    — histogram of posit32 extra fraction bits (Fig5)
//	Fig. 6/7  — CG iteration counts, unscaled/rescaled (Fig6, Fig7)
//	Fig. 8/9  — Cholesky backward error, unscaled/rescaled (Fig8, Fig9)
//	Table II  — naive mixed-precision IR (Table2)
//	Table III — IR with Higham scaling (Table3)
//	Fig. 10   — refinement-step reduction and factorization-error
//	            digits (Fig10)
//
// Each experiment returns typed rows; Render* helpers print the same
// layout the paper reports. Absolute values will not match the paper
// (the matrices are synthetic replicas; see DESIGN.md) but the shape —
// who wins, by how much, where failures begin — is the reproduction
// target and is recorded against the paper in EXPERIMENTS.md.
package experiments

import (
	"sync"

	"positlab/internal/matgen"
)

// Options tunes experiment scope and caps.
type Options struct {
	// Matrices filters the suite by name; nil means all 19.
	Matrices []string
	// CGTol is the CG relative-residual convergence threshold
	// (paper: 1e-5).
	CGTol float64
	// CGCapFactor caps CG at CGCapFactor*N iterations (default 10).
	CGCapFactor int
	// IRTol is the refinement backward-error threshold (default 1e-15,
	// "accurate to Float64 precision").
	IRTol float64
	// IRMaxIter caps refinement (paper: 1000).
	IRMaxIter int
}

func (o Options) fill() Options {
	if o.CGTol == 0 {
		o.CGTol = 1e-5
	}
	if o.CGCapFactor == 0 {
		o.CGCapFactor = 10
	}
	if o.IRTol == 0 {
		o.IRTol = 1e-15
	}
	if o.IRMaxIter == 0 {
		o.IRMaxIter = 1000
	}
	return o
}

var (
	suiteMu    sync.Mutex
	suiteCache = map[string]*matgen.Matrix{}
)

// suite returns the requested matrices (all of Table I when names is
// nil), generating each at most once per process. Generation includes
// the condition-number calibration passes, so caching matters.
func suite(names []string) []*matgen.Matrix {
	if names == nil {
		for _, t := range matgen.TableI {
			names = append(names, t.Name)
		}
	}
	suiteMu.Lock()
	defer suiteMu.Unlock()
	out := make([]*matgen.Matrix, 0, len(names))
	for _, name := range names {
		m, ok := suiteCache[name]
		if !ok {
			t, err := matgen.TargetByName(name)
			if err != nil {
				panic(err)
			}
			m = matgen.Generate(t)
			suiteCache[name] = m
		}
		out = append(out, m)
	}
	return out
}

// Suite exposes the cached replica suite for tools and examples.
func Suite(names []string) []*matgen.Matrix { return suite(names) }
