package experiments

import (
	"context"
	"fmt"

	"positlab/internal/linalg"
	"positlab/internal/report"
	"positlab/internal/runner"
)

func init() {
	runner.Register(runner.Spec{
		ID:    "table1",
		Title: "matrix suite inventory",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			rows := Table1(optFrom(ctx, env))
			return &runner.Result{
				Body:      RenderTable1(rows),
				Artifacts: []runner.Artifact{csvArt("table1.csv", Table1CSV(rows))},
				Metrics:   map[string]float64{"matrices": float64(len(rows))},
			}, nil
		},
	})
}

// Table1Row is one matrix of the paper's Table I, with both the paper's
// reported values (targets) and the measured values of the synthetic
// replica.
type Table1Row struct {
	Name         string
	CondTarget   float64
	CondMeasured float64
	N            int
	Norm2Target  float64
	Norm2        float64
	NNZTarget    int
	NNZ          int
}

// Table1 regenerates the matrix inventory. Measured values come from
// Lanczos (‖A‖₂) and inverse iteration through a float64 Cholesky
// factorization (λmin).
func Table1(opt Options) []Table1Row {
	opt = opt.fill()
	var rows []Table1Row
	for _, m := range suite(opt.Matrices) {
		rows = append(rows, Table1Row{
			Name:         m.Target.Name,
			CondTarget:   m.Target.Cond,
			CondMeasured: linalg.CondViaCholesky(m.A),
			N:            m.A.N,
			Norm2Target:  m.Target.Norm2,
			Norm2:        linalg.Norm2Est(m.A),
			NNZTarget:    m.Target.NNZ,
			NNZ:          m.A.NNZ(),
		})
	}
	return rows
}

// RenderTable1 prints the Table I layout plus replica-fidelity columns.
func RenderTable1(rows []Table1Row) string {
	hdr := []string{"Matrix", "k(A)", "k(A) meas", "N", "||A||2", "||A||2 meas", "NNZ", "NNZ meas"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			report.Sci(r.CondTarget),
			report.Sci(r.CondMeasured),
			fmt.Sprintf("%d", r.N),
			report.Sci(r.Norm2Target),
			report.Sci(r.Norm2),
			fmt.Sprintf("%d", r.NNZTarget),
			fmt.Sprintf("%d", r.NNZ),
		})
	}
	return report.Table(hdr, out)
}
