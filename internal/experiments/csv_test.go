package experiments_test

import (
	"encoding/csv"
	"strings"
	"testing"

	"positlab/internal/experiments"
)

func TestCSVExports(t *testing.T) {
	t1 := experiments.Table1CSV(experiments.Table1(smallOpt))
	if !strings.HasPrefix(t1, "matrix,cond_target") || strings.Count(t1, "\n") != 3 {
		t.Errorf("table1 csv:\n%s", t1)
	}

	f3pts, err := experiments.Fig3(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	f3 := experiments.Fig3CSV(nil, f3pts)
	if !strings.Contains(f3, "log10_x,") || !strings.Contains(f3, "posit(32,2)") {
		t.Error("fig3 csv header wrong")
	}

	cg := experiments.CGCSV(experiments.Fig6(smallOpt))
	if !strings.Contains(cg, "Float32_iters") || !strings.Contains(cg, "bcsstk01") {
		t.Error("cg csv missing content")
	}

	ch := experiments.CholCSV(experiments.Fig8(smallOpt))
	if !strings.Contains(ch, "digits_adv_posit32e2") {
		t.Error("chol csv missing content")
	}

	ir := experiments.IRCSV(experiments.Table3(smallOpt), 1000)
	if !strings.Contains(ir, "pct_diff") || !strings.Contains(ir, "Float16_result") {
		t.Error("ir csv missing content")
	}
	// Every document parses as CSV with rectangular records (quoted
	// headers like "Posit(16,1)_result" included).
	for i, doc := range []string{t1, f3, cg, ch, ir} {
		records, err := csv.NewReader(strings.NewReader(doc)).ReadAll()
		if err != nil {
			t.Errorf("doc %d: %v", i, err)
			continue
		}
		if len(records) < 2 {
			t.Errorf("doc %d: only %d records", i, len(records))
		}
	}
}
