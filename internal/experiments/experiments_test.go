package experiments_test

import (
	"math"
	"strings"
	"testing"

	"positlab/internal/experiments"
	"positlab/internal/posit"
)

// Small subsets keep the test suite fast; the full tables are exercised
// by cmd/experiments and the benchmarks.
var smallOpt = experiments.Options{
	Matrices: []string{"lund_b", "bcsstk01"},
}

func TestTable1Fidelity(t *testing.T) {
	rows := experiments.Table1(smallOpt)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(math.Log10(r.CondMeasured)-math.Log10(r.CondTarget)) > 0.15 {
			t.Errorf("%s: measured cond %.3g vs target %.3g", r.Name, r.CondMeasured, r.CondTarget)
		}
		if math.Abs(r.Norm2-r.Norm2Target)/r.Norm2Target > 1e-6 {
			t.Errorf("%s: measured norm %.6g vs target %.6g", r.Name, r.Norm2, r.Norm2Target)
		}
		ratio := float64(r.NNZ) / float64(r.NNZTarget)
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: NNZ ratio %.2f", r.Name, ratio)
		}
	}
	text := experiments.RenderTable1(rows)
	if !strings.Contains(text, "lund_b") || !strings.Contains(text, "k(A)") {
		t.Error("render missing content")
	}
}

func TestFig3GoldenZone(t *testing.T) {
	pts, err := experiments.Fig3(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// Locate the x = 1 sample and the format columns.
	idx := func(name string) int {
		for i, f := range experiments.Fig3Formats {
			if f == name {
				return i
			}
		}
		t.Fatalf("format %s missing", name)
		return -1
	}
	var atOne experiments.Fig3Point
	found := false
	for _, p := range pts {
		if p.Log10X == 0 {
			atOne = p
			found = true
		}
	}
	if !found {
		t.Fatal("no x=1 sample")
	}
	p32 := atOne.Digits[idx("posit(32,2)")]
	f32 := atOne.Digits[idx("float32")]
	// The golden zone: posit(32,2) carries ~1.2 more digits than
	// Float32 near one (§V-C2).
	if p32-f32 < 1.0 || p32-f32 > 1.4 {
		t.Errorf("posit32 advantage at 1.0 = %.2f digits, want ~1.2", p32-f32)
	}
	// Far from one the posit taper loses to float32's flat precision.
	last := pts[len(pts)-1] // 1e12
	if last.Digits[idx("posit(32,2)")] >= last.Digits[idx("float32")] {
		t.Error("posit(32,2) should trail float32 at 1e12")
	}
	// Float16 runs out of range before 1e12 entirely.
	if last.Digits[idx("float16")] != 0 {
		t.Errorf("float16 at 1e12 = %.2f digits, want 0 (overflow)", last.Digits[idx("float16")])
	}
	// posit(16,2) still has range there (maxpos 2^56 ~ 7.2e16).
	if last.Digits[idx("posit(16,2)")] <= 0 {
		t.Error("posit(16,2) should retain digits at 1e12")
	}
}

func TestFig5WeightsSum(t *testing.T) {
	hists := experiments.Fig5(smallOpt, posit.Posit32e2)
	if len(hists) != 1 {
		t.Fatal("want one histogram")
	}
	sum := 0.0
	for _, w := range hists[0].Weights {
		sum += w
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("weights sum to %.4f, want 100", sum)
	}
	if s := experiments.RenderFig5(hists); !strings.Contains(s, "bits") {
		t.Error("render missing content")
	}
}

func TestCGExperimentsShape(t *testing.T) {
	rows6 := experiments.Fig6(smallOpt)
	rows7 := experiments.Fig7(smallOpt)
	if len(rows6) != 2 || len(rows7) != 2 {
		t.Fatal("row counts wrong")
	}
	for i, r := range rows6 {
		// Float64 reference must converge on every suite matrix.
		if !r.Converged[0] {
			t.Errorf("%s: float64 CG did not converge", r.Matrix)
		}
		// bcsstk01 (‖A‖₂ = 3e9) unscaled: posit(32,2) must do worse
		// than float32 — the Fig. 6 signature.
		if r.Matrix == "bcsstk01" {
			if v := r.PctImprovement["Posit(32,2)"]; !(v < 0) {
				t.Errorf("bcsstk01 unscaled posit(32,2) improvement = %v, want negative", v)
			}
			// After rescaling the deficit must close (Fig. 7).
			if v := rows7[i].PctImprovement["Posit(32,2)"]; !(v > -10) {
				t.Errorf("bcsstk01 rescaled posit(32,2) improvement = %v, want recovered", v)
			}
		}
	}
	if s := experiments.RenderCG(rows6); !strings.Contains(s, "%impr") {
		t.Error("render missing content")
	}
}

func TestCholExperimentsShape(t *testing.T) {
	rows8 := experiments.Fig8(smallOpt)
	rows9 := experiments.Fig9(smallOpt)
	for i, r := range rows9 {
		// After Algorithm 3 rescaling both posit formats beat Float32
		// on every matrix (Fig. 9).
		for name, adv := range r.DigitsAdvantage {
			if !(adv > 0) {
				t.Errorf("%s rescaled: %s advantage %.2f, want positive", r.Matrix, name, adv)
			}
		}
		_ = rows8[i]
	}
	// bcsstk01 unscaled (‖A‖₂=3e9): posit(32,2) should NOT beat float32
	// (Fig. 8's norm-dependent degradation).
	for _, r := range rows8 {
		if r.Matrix == "bcsstk01" {
			if adv := r.DigitsAdvantage["Posit(32,2)"]; !(adv < 0.3) {
				t.Errorf("bcsstk01 unscaled posit(32,2) advantage = %.2f, want degraded", adv)
			}
		}
	}
	if s := experiments.RenderChol(rows9); !strings.Contains(s, "digits adv") {
		t.Error("render missing content")
	}
}

func TestIRTables(t *testing.T) {
	rows2 := experiments.Table2(smallOpt)
	rows3 := experiments.Table3(smallOpt)
	byName := func(rows []experiments.IRRow, name string) experiments.IRRow {
		for _, r := range rows {
			if r.Matrix == name {
				return r
			}
		}
		t.Fatalf("matrix %s missing", name)
		return experiments.IRRow{}
	}
	// bcsstk01 naive: Float16 must fail (entries ~3e9 >> 65504);
	// posit(16,2) must factor successfully (Table II's reach story).
	b1 := byName(rows2, "bcsstk01")
	if !b1.Res[0].FactorFailed && b1.Res[0].Converged {
		t.Error("bcsstk01 naive Float16 should fail")
	}
	if b1.Res[2].FactorFailed {
		t.Error("bcsstk01 naive posit(16,2) should factor")
	}
	// Higham scaling: everything converges, posits no worse than
	// Float16 (Table III).
	for _, r := range rows3 {
		for i, res := range r.Res {
			if res.FactorFailed || !res.Converged {
				t.Errorf("%s scaled %s: %+v", r.Matrix, experiments.IRFormats[i].Name(), res)
			}
		}
		if r.PctDiff < 0 {
			t.Errorf("%s: %% diff = %.1f, want >= 0", r.Matrix, r.PctDiff)
		}
	}
	if s := experiments.RenderIR(rows3, 1000, true); !strings.Contains(s, "% diff") {
		t.Error("render missing content")
	}
}

func TestFig10(t *testing.T) {
	rows := experiments.Fig10(smallOpt)
	for _, r := range rows {
		for name, d := range r.DigitsImprovement {
			if math.IsNaN(d) {
				t.Errorf("%s: %s digits NaN", r.Matrix, name)
				continue
			}
			// Posit16 factorization error should be no more than
			// slightly worse and at best ~0.6 digits better (Fig 10b).
			if d < -0.3 || d > 1.2 {
				t.Errorf("%s: %s digits improvement %.2f out of plausible band", r.Matrix, name, d)
			}
		}
	}
	if s := experiments.RenderFig10(rows); !strings.Contains(s, "reduction") {
		t.Error("render missing content")
	}
}
