package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"positlab/internal/arith"
	"positlab/internal/report"
	"positlab/internal/runner"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func init() {
	irSpec := func(id, title string, fn func(Options) []IRRow, higham bool) runner.Spec {
		return runner.Spec{
			ID:    id,
			Title: title,
			Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
				opt := optFrom(ctx, env)
				rows := fn(opt)
				if err := ctx.Err(); err != nil {
					return nil, err // canceled: never cache partial rows
				}
				cap := opt.fill().IRMaxIter
				iters := 0.0
				for _, r := range rows {
					for _, res := range r.Res {
						iters += float64(res.Iterations)
					}
				}
				return &runner.Result{
					Body:      RenderIR(rows, cap, higham),
					Artifacts: []runner.Artifact{csvArt(id+".csv", IRCSV(rows, cap))},
					Metrics:   map[string]float64{"ir_iterations": iters},
				}, nil
			},
		}
	}
	runner.Register(irSpec("table2", "naive mixed-precision iterative refinement", Table2, false))
	runner.Register(irSpec("table3", "iterative refinement with Higham scaling", Table3, true))
}

// IRFormats are the 16-bit factorization formats of Tables II and III.
var IRFormats = []arith.Format{
	arith.Float16, arith.Posit16e1, arith.Posit16e2,
}

// IRRow is one matrix of the Table II/III data.
type IRRow struct {
	Matrix string
	// Res per format, parallel to IRFormats.
	Res []solvers.IRResult
	// PctDiff is Table III's "% diff" column: the percent reduction in
	// refinement steps from Float16 to the better posit16 format, with
	// capped runs counted at the cap.
	PctDiff float64
}

// Table2 runs naive mixed-precision IR: the matrix is cast directly
// into each 16-bit format (overflow clamped to the largest finite
// value) and factored there; refinement runs in Float64 (paper §V-D2,
// first experiment).
func Table2(opt Options) []IRRow { return irExperiment(opt, false) }

// Table3 runs IR after Higham's Algorithm 5 equilibration with the
// paper's format-aware μ: a power of four near 0.1·max for Float16,
// USEED for the posit formats (paper §V-D2, second experiment).
//
// Its rows are memoized per option set because Fig10 derives both of
// its panels from the same runs: when the runner schedules fig10
// after table3 (a declared dep), the refinement solves happen once.
func Table3(opt Options) []IRRow {
	key := opt.fill().memoKey()
	table3Mu.Lock()
	e, ok := table3Memo[key]
	if !ok {
		e = &table3Entry{}
		table3Memo[key] = e
	}
	table3Mu.Unlock()
	// Per-entry singleflight with cancellation awareness: a run cut
	// short by its context must not poison the memo for later callers
	// (sync.Once would latch the partial rows forever), so completion
	// is only recorded when the run finished under a live context.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.rows
	}
	rows := irExperiment(opt, true)
	if opt.canceled() {
		return rows // partial; the next caller recomputes
	}
	e.rows, e.done = rows, true
	return e.rows
}

type table3Entry struct {
	mu   sync.Mutex
	done bool
	rows []IRRow
}

var (
	table3Mu   sync.Mutex
	table3Memo = map[string]*table3Entry{}
)

// memoKey identifies filled options for in-process memoization. Ops
// is deliberately excluded: instrumentation does not change rows.
func (o Options) memoKey() string {
	return fmt.Sprintf("%s|%g|%d|%g|%d",
		strings.Join(o.Matrices, ","), o.CGTol, o.CGCapFactor, o.IRTol, o.IRMaxIter)
}

func irExperiment(opt Options, higham bool) []IRRow {
	opt = opt.fill()
	var rows []IRRow
	for _, m := range suite(opt.Matrices) {
		if opt.canceled() {
			return rows
		}
		row := IRRow{Matrix: m.Target.Name, Res: make([]solvers.IRResult, len(IRFormats))}
		var r []float64
		if higham {
			r = scaling.HighamEquilibrate(m.A, 1e-8, 100)
		}
		for i, f := range IRFormats {
			sc := solvers.IRScaling{}
			if higham {
				sc = solvers.IRScaling{R: r, Mu: scaling.MuFor(f)}
			}
			res, err := solvers.MixedIRCtx(opt.ctx(), m.A, m.B, opt.format(f), sc, solvers.IROptions{
				Tol:     opt.IRTol,
				MaxIter: opt.IRMaxIter,
			})
			if err != nil {
				return rows // canceled mid-refinement; caller reports ctx.Err()
			}
			row.Res[i] = res
		}
		row.PctDiff = pctDiff(row.Res, opt.IRMaxIter)
		rows = append(rows, row)
	}
	return rows
}

// pctDiff computes Table III's "% diff": improvement of the better
// posit16 over Float16, counting failures and caps at the cap value.
func pctDiff(res []solvers.IRResult, cap int) float64 {
	count := func(r solvers.IRResult) float64 {
		if r.FactorFailed || !r.Converged {
			return float64(cap)
		}
		return float64(r.Iterations)
	}
	f16 := count(res[0])
	best := math.Min(count(res[1]), count(res[2]))
	if f16 == 0 {
		return 0
	}
	return (f16 - best) / f16 * 100
}

// RenderIR prints the Table II/III layout.
func RenderIR(rows []IRRow, cap int, withPct bool) string {
	hdr := []string{"Matrix"}
	for _, f := range IRFormats {
		hdr = append(hdr, f.Name())
	}
	if withPct {
		hdr = append(hdr, "% diff")
	}
	var out [][]string
	for _, r := range rows {
		row := []string{r.Matrix}
		for _, res := range r.Res {
			row = append(row, irCell(res, cap))
		}
		if withPct {
			row = append(row, fmt.Sprintf("%.1f", r.PctDiff))
		}
		out = append(out, row)
	}
	return report.Table(hdr, out)
}

// irCell renders one table cell with the paper's conventions: '-' for
// factorization failure or arithmetic error, '<cap>+' for refinement
// that did not converge, the count otherwise.
func irCell(r solvers.IRResult, cap int) string {
	if r.FactorFailed || math.IsNaN(r.BackwardError) {
		return "-"
	}
	if !r.Converged {
		return fmt.Sprintf("%d+", cap)
	}
	return fmt.Sprintf("%d", r.Iterations)
}
