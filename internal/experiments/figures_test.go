package experiments_test

import (
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"positlab/internal/experiments"
)

func checkSVG(t *testing.T, name, s string) {
	t.Helper()
	if !strings.HasPrefix(s, "<svg") {
		t.Errorf("%s: not an SVG document", name)
	}
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		if _, err := dec.Token(); err != nil {
			if err == io.EOF {
				return
			}
			t.Fatalf("%s: malformed XML: %v", name, err)
		}
	}
}

func TestFigureSVGs(t *testing.T) {
	pts, err := experiments.Fig3(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSVG(t, "fig3", experiments.Fig3SVG(nil, pts))

	hists := experiments.Fig5(smallOpt)
	checkSVG(t, "fig5", experiments.Fig5SVG(hists))

	rows := experiments.Fig6(smallOpt)
	checkSVG(t, "fig6a", experiments.CGSVG(rows, "t"))
	checkSVG(t, "fig6b", experiments.CGImprovementSVG(rows, "t"))

	chol := experiments.Fig8(smallOpt)
	checkSVG(t, "fig8a", experiments.CholSVG(chol, "t"))
	checkSVG(t, "fig8b", experiments.CholNormScatterSVG(chol))

	f10 := experiments.Fig10(smallOpt)
	a, b := experiments.Fig10SVG(f10)
	checkSVG(t, "fig10a", a)
	checkSVG(t, "fig10b", b)

	// Every matrix label appears in the bar charts.
	for _, r := range rows {
		if !strings.Contains(experiments.CGSVG(rows, "t"), r.Matrix) {
			t.Errorf("fig6a missing label %s", r.Matrix)
		}
	}
}
