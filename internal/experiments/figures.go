package experiments

import (
	"math"
	"sort"
	"strconv"

	"positlab/internal/svgplot"
)

// SVG renderers: the same experiment rows as the text tables, drawn as
// figures in the layout of the paper's panels.

// Fig3SVG draws the digits-of-accuracy curves (Fig. 3b).
func Fig3SVG(formats []string, pts []Fig3Point) string {
	if formats == nil {
		formats = Fig3Formats
	}
	series := make([]svgplot.Series, len(formats))
	for i, name := range formats {
		s := svgplot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.Log10X)
			s.Y = append(s.Y, p.Digits[i])
		}
		series[i] = s
	}
	plot := &svgplot.Plot{
		Title:  "Fig. 3: worst-case decimal digits of accuracy vs magnitude",
		XLabel: "log10(|x|)",
		YLabel: "decimal digits",
		Series: series,
	}
	return plot.SVG()
}

// Fig5SVG draws the extra-fraction-bits histograms as grouped bars.
func Fig5SVG(hists []Fig5Histogram) string {
	// Union of buckets across configs.
	set := map[int]bool{}
	for _, h := range hists {
		for b := range h.Weights {
			set[b] = true
		}
	}
	var buckets []int
	for b := range set {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	labels := make([]string, len(buckets))
	for i, b := range buckets {
		labels[i] = formatSigned(b)
	}
	groups := map[string][]float64{}
	var order []string
	for _, h := range hists {
		name := h.Config.String()
		order = append(order, name)
		vs := make([]float64, len(buckets))
		for i, b := range buckets {
			vs[i] = h.Weights[b]
		}
		groups[name] = vs
	}
	c := &svgplot.BarChart{
		Title:      "Fig. 5: extra fraction bits vs Float32 (% of suite entries)",
		YLabel:     "% of entries",
		Labels:     labels,
		Groups:     groups,
		GroupOrder: order,
	}
	return c.SVG()
}

func formatSigned(b int) string {
	if b >= 0 {
		return "+" + strconv.Itoa(b)
	}
	return strconv.Itoa(b)
}

// CGSVG draws iteration counts (panel a) as grouped bars across the
// suite for Fig. 6/7.
func CGSVG(rows []CGRow, title string) string {
	labels := make([]string, len(rows))
	groups := map[string][]float64{}
	var order []string
	for _, f := range CGFormats {
		order = append(order, f.Name())
		groups[f.Name()] = make([]float64, len(rows))
	}
	for i, r := range rows {
		labels[i] = r.Matrix
		for fi, f := range CGFormats {
			v := float64(r.Iters[fi])
			if r.Failed[fi] {
				v = math.NaN()
			}
			groups[f.Name()][i] = v
		}
	}
	c := &svgplot.BarChart{
		Title:      title,
		YLabel:     "CG iterations",
		Labels:     labels,
		Groups:     groups,
		GroupOrder: order,
	}
	return c.SVG()
}

// CGImprovementSVG draws the percent-improvement panel (b) of
// Fig. 6/7.
func CGImprovementSVG(rows []CGRow, title string) string {
	labels := make([]string, len(rows))
	groups := map[string][]float64{
		"Posit(32,2)": make([]float64, len(rows)),
		"Posit(32,3)": make([]float64, len(rows)),
	}
	for i, r := range rows {
		labels[i] = r.Matrix
		groups["Posit(32,2)"][i] = r.PctImprovement["Posit(32,2)"]
		groups["Posit(32,3)"][i] = r.PctImprovement["Posit(32,3)"]
	}
	c := &svgplot.BarChart{
		Title:      title,
		YLabel:     "% improvement over Float32",
		Labels:     labels,
		Groups:     groups,
		GroupOrder: []string{"Posit(32,2)", "Posit(32,3)"},
	}
	return c.SVG()
}

// CholSVG draws the digits-advantage bars of Fig. 8(a)/9.
func CholSVG(rows []CholRow, title string) string {
	labels := make([]string, len(rows))
	groups := map[string][]float64{
		"Posit(32,2)": make([]float64, len(rows)),
		"Posit(32,3)": make([]float64, len(rows)),
	}
	for i, r := range rows {
		labels[i] = r.Matrix
		groups["Posit(32,2)"][i] = r.DigitsAdvantage["Posit(32,2)"]
		groups["Posit(32,3)"][i] = r.DigitsAdvantage["Posit(32,3)"]
	}
	c := &svgplot.BarChart{
		Title:      title,
		YLabel:     "extra decimal digits vs Float32",
		Labels:     labels,
		Groups:     groups,
		GroupOrder: []string{"Posit(32,2)", "Posit(32,3)"},
	}
	return c.SVG()
}

// CholNormScatterSVG draws Fig. 8(b): posit(32,2) digits advantage
// against ‖A‖₂ on a log x-axis.
func CholNormScatterSVG(rows []CholRow) string {
	s := svgplot.Series{Name: "Posit(32,2)", Points: true}
	for _, r := range rows {
		s.X = append(s.X, r.Norm2)
		s.Y = append(s.Y, r.DigitsAdvantage["Posit(32,2)"])
	}
	plot := &svgplot.Plot{
		Title:  "Fig. 8(b): Posit(32,2) advantage vs matrix norm",
		XLabel: "||A||_2",
		YLabel: "extra decimal digits",
		LogX:   true,
		Series: []svgplot.Series{s},
	}
	return plot.SVG()
}

// Fig10SVG draws both panels of Fig. 10 stacked as two bar groups.
func Fig10SVG(rows []Fig10Row) (pctSVG, digitsSVG string) {
	labels := make([]string, len(rows))
	pct := make([]float64, len(rows))
	d1 := make([]float64, len(rows))
	d2 := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Matrix
		pct[i] = r.PctReduction
		d1[i] = r.DigitsImprovement["Posit(16,1)"]
		d2[i] = r.DigitsImprovement["Posit(16,2)"]
	}
	a := &svgplot.BarChart{
		Title:      "Fig. 10(a): % reduction of refinement steps (Float16 -> best Posit16)",
		YLabel:     "% reduction",
		Labels:     labels,
		Groups:     map[string][]float64{"best posit16": pct},
		GroupOrder: []string{"best posit16"},
	}
	b := &svgplot.BarChart{
		Title:  "Fig. 10(b): factorization backward-error digits improvement vs Float16",
		YLabel: "extra decimal digits",
		Labels: labels,
		Groups: map[string][]float64{
			"Posit(16,1)": d1,
			"Posit(16,2)": d2,
		},
		GroupOrder: []string{"Posit(16,1)", "Posit(16,2)"},
	}
	return a.SVG(), b.SVG()
}
