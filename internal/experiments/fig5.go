package experiments

import (
	"context"
	"fmt"
	"sort"

	"positlab/internal/posit"
	"positlab/internal/report"
	"positlab/internal/runner"
)

func init() {
	runner.Register(runner.Spec{
		ID:    "fig5",
		Title: "posit32 extra fraction bits over Float32",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			hists := Fig5(optFrom(ctx, env))
			return &runner.Result{
				Body:      RenderFig5(hists),
				Artifacts: []runner.Artifact{svgArt("fig5.svg", Fig5SVG(hists))},
			}, nil
		},
	})
}

// Fig5Histogram is the Fig. 5 result for one posit configuration: the
// distribution of extra fraction bits offered by the posit encoding of
// each suite nonzero relative to Float32's 23, with every matrix
// weighted equally.
type Fig5Histogram struct {
	Config  posit.Config
	Weights map[int]float64 // extra bits -> percentage of entries
}

// Fig5 builds the histograms for posit(32,2) and posit(32,3) (or the
// provided configs).
func Fig5(opt Options, configs ...posit.Config) []Fig5Histogram {
	opt = opt.fill()
	if len(configs) == 0 {
		configs = []posit.Config{posit.Posit32e2, posit.MustNew(32, 3)}
	}
	ms := suite(opt.Matrices)
	out := make([]Fig5Histogram, 0, len(configs))
	for _, c := range configs {
		h := Fig5Histogram{Config: c, Weights: map[int]float64{}}
		for _, m := range ms {
			per := 100.0 / float64(len(ms)) / float64(len(m.A.Val))
			for _, v := range m.A.Val {
				if v == 0 {
					continue
				}
				h.Weights[c.ExtraFracBitsVsFloat32(v)] += per
			}
		}
		out = append(out, h)
	}
	return out
}

// RenderFig5 prints each histogram as an ASCII bar chart over the extra-
// bits buckets.
func RenderFig5(hists []Fig5Histogram) string {
	var s string
	for _, h := range hists {
		s += fmt.Sprintf("%v extra fraction bits vs Float32 (%% of entries, equal matrix weight)\n", h.Config)
		var buckets []int
		for b := range h.Weights {
			buckets = append(buckets, b)
		}
		sort.Ints(buckets)
		labels := make([]string, len(buckets))
		values := make([]float64, len(buckets))
		for i, b := range buckets {
			labels[i] = fmt.Sprintf("%+d bits", b)
			values[i] = h.Weights[b]
		}
		s += report.Bars(labels, values, 50) + "\n"
	}
	return s
}
