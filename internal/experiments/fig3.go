package experiments

import (
	"context"
	"fmt"
	"math"

	"positlab/internal/minifloat"
	"positlab/internal/posit"
	"positlab/internal/report"
	"positlab/internal/runner"
)

func init() {
	runner.Register(runner.Spec{
		ID:    "fig3",
		Title: "decimal digits of accuracy vs magnitude",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			pts, err := Fig3(nil, 4)
			if err != nil {
				return nil, err
			}
			coarse, err := Fig3(nil, 1)
			if err != nil {
				return nil, err
			}
			return &runner.Result{
				Body: RenderFig3(nil, coarse),
				Artifacts: []runner.Artifact{
					svgArt("fig3.svg", Fig3SVG(nil, pts)),
					csvArt("fig3.csv", Fig3CSV(nil, pts)),
				},
				Metrics: map[string]float64{"samples": float64(len(pts))},
			}, nil
		},
	})
}

// Fig3Point is one magnitude sample of the precision-vs-magnitude
// curves in Fig. 3: decimal digits of accuracy per format.
type Fig3Point struct {
	Log10X float64
	Digits []float64 // parallel to the Formats list passed to Fig3
}

// Fig3Formats is the default format list of the figure.
var Fig3Formats = []string{
	"posit(32,2)", "posit(32,3)", "float32",
	"posit(16,1)", "posit(16,2)", "float16",
}

// Fig3 samples worst-case decimal digits of accuracy over
// [10^-12, 10^12] (the paper's Fig. 3 range) for the requested formats.
// An unknown format name is reported as an error.
func Fig3(formats []string, pointsPerDecade int) ([]Fig3Point, error) {
	if formats == nil {
		formats = Fig3Formats
	}
	if pointsPerDecade <= 0 {
		pointsPerDecade = 4
	}
	digitFns := make([]func(float64) float64, len(formats))
	for i, name := range formats {
		fn, err := digitsFn(name)
		if err != nil {
			return nil, err
		}
		digitFns[i] = fn
	}
	var pts []Fig3Point
	for k := -12 * pointsPerDecade; k <= 12*pointsPerDecade; k++ {
		lx := float64(k) / float64(pointsPerDecade)
		x := math.Pow(10, lx)
		p := Fig3Point{Log10X: lx, Digits: make([]float64, len(formats))}
		for i, fn := range digitFns {
			p.Digits[i] = fn(x)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

func digitsFn(name string) (func(float64) float64, error) {
	switch name {
	case "float16":
		return minifloat.Float16.DecimalDigitsAt, nil
	case "bfloat16":
		return minifloat.BFloat16.DecimalDigitsAt, nil
	case "float32":
		return minifloat.Float32.DecimalDigitsAt, nil
	case "float64":
		return func(x float64) float64 {
			if x == 0 {
				return 0
			}
			return -math.Log10(0x1p-53)
		}, nil
	}
	var n, es int
	if _, err := fmt.Sscanf(name, "posit(%d,%d)", &n, &es); err == nil {
		c := posit.MustNew(n, es)
		return c.DecimalDigitsAt, nil
	}
	return nil, fmt.Errorf("experiments: unknown Fig3 format %q", name)
}

// RenderFig3 prints the sampled curves as a table (one row per
// magnitude, one column per format).
func RenderFig3(formats []string, pts []Fig3Point) string {
	if formats == nil {
		formats = Fig3Formats
	}
	hdr := append([]string{"log10(x)"}, formats...)
	var rows [][]string
	for _, p := range pts {
		row := []string{fmt.Sprintf("%+.2f", p.Log10X)}
		for _, d := range p.Digits {
			row = append(row, fmt.Sprintf("%.2f", d))
		}
		rows = append(rows, row)
	}
	return report.Table(hdr, rows)
}
