package experiments

import (
	"context"
	"math"

	"positlab/internal/report"
	"positlab/internal/runner"
)

func init() {
	runner.Register(runner.Spec{
		ID:    "fig10",
		Title: "refinement-step reduction and factor-error digits",
		// fig10 derives from the Table III runs; scheduling it after
		// table3 lets it reuse the memoized rows instead of repeating
		// every refinement solve.
		Deps: []string{"table3"},
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			rows := Fig10(optFrom(ctx, env))
			if err := ctx.Err(); err != nil {
				return nil, err // canceled: never cache partial rows
			}
			pctSVG, digitsSVG := Fig10SVG(rows)
			return &runner.Result{
				Body: RenderFig10(rows),
				Artifacts: []runner.Artifact{
					svgArt("fig10a.svg", pctSVG),
					svgArt("fig10b.svg", digitsSVG),
				},
			}, nil
		},
	})
}

// Fig10Row is one matrix of Fig. 10: the percent reduction of
// refinement steps (panel a) and the factorization backward-error
// digits improvement of each posit16 format over Float16 (panel b),
// all under Higham's scaling.
type Fig10Row struct {
	Matrix string
	// PctReduction of refinement steps, Float16 -> best posit16.
	PctReduction float64
	// DigitsImprovement: log10(factErr_Float16 / factErr_posit) per
	// posit format name.
	DigitsImprovement map[string]float64
}

// Fig10 derives both panels from the Table III runs.
func Fig10(opt Options) []Fig10Row {
	opt = opt.fill()
	rows := Table3(opt)
	var out []Fig10Row
	for _, r := range rows {
		fr := Fig10Row{
			Matrix:            r.Matrix,
			PctReduction:      r.PctDiff,
			DigitsImprovement: map[string]float64{},
		}
		f16 := r.Res[0].FactorError
		for i, f := range IRFormats {
			if i == 0 {
				continue
			}
			pe := r.Res[i].FactorError
			if f16 <= 0 || pe <= 0 || r.Res[0].FactorFailed || r.Res[i].FactorFailed {
				fr.DigitsImprovement[f.Name()] = math.NaN()
				continue
			}
			fr.DigitsImprovement[f.Name()] = log10Ratio(f16, pe)
		}
		out = append(out, fr)
	}
	return out
}

// log10Ratio is the digits-of-accuracy comparison metric shared by the
// Fig. 10(b) and Fig. 8/9 panels. It operates on already-measured
// float64 error magnitudes, never on format-carried values.
func log10Ratio(num, den float64) float64 {
	return math.Log10(num / den)
}

// RenderFig10 prints both panels as bar charts.
func RenderFig10(rows []Fig10Row) string {
	labels := make([]string, len(rows))
	pct := make([]float64, len(rows))
	d1 := make([]float64, len(rows))
	d2 := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Matrix
		pct[i] = r.PctReduction
		d1[i] = r.DigitsImprovement["Posit(16,1)"]
		d2[i] = r.DigitsImprovement["Posit(16,2)"]
	}
	s := "(a) % reduction of refinement steps, Float16 -> best Posit16 (Higham scaling)\n"
	s += report.Bars(labels, pct, 50)
	s += "\n(b) factorization backward-error digits improvement, Posit(16,1) vs Float16\n"
	s += report.Bars(labels, d1, 50)
	s += "\n(b) factorization backward-error digits improvement, Posit(16,2) vs Float16\n"
	s += report.Bars(labels, d2, 50)
	return s
}
