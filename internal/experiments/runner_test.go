package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"positlab/internal/runner"
)

// smallOpt scopes runner integration tests to the two smallest Table I
// replicas so solver work stays fast.
func smallOpt() Options {
	return Options{Matrices: []string{"bcsstk01", "bcsstk02"}}
}

func TestRegisteredSpecsCoverCLI(t *testing.T) {
	want := []string{
		"table1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
		"table2", "table3", "fig10",
		"ext-fft", "ext-shock", "ext-bicg", "ext-gmres",
	}
	for _, id := range want {
		if _, ok := runner.Default.Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if s, _ := runner.Default.Lookup("fig10"); !reflect.DeepEqual(s.Deps, []string{"table3"}) {
		t.Errorf("fig10.Deps = %v, want [table3]", s.Deps)
	}
}

// TestRunnerCacheGolden is the satellite acceptance check: a warm
// cache re-run must return rows (bodies and CSV artifacts) identical
// to the cold run, without invoking any experiment code.
func TestRunnerCacheGolden(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpt()
	ids := []string{"table1", "fig6"}
	cfg := runner.Config{Jobs: 2, Cache: cache, Options: opt, KeyData: opt.Canonical()}

	cold, coldRep, err := runner.Default.Run(context.Background(), ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmRep, err := runner.Default.Run(context.Background(), ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range coldRep.Jobs {
		if jr.Cached {
			t.Errorf("cold run reported %s as cached", jr.ID)
		}
	}
	for _, jr := range warmRep.Jobs {
		if !jr.Cached {
			t.Errorf("warm run recomputed %s", jr.ID)
		}
	}
	for _, id := range ids {
		if cold[id] == nil || warm[id] == nil {
			t.Fatalf("missing result for %s", id)
		}
		if cold[id].Body != warm[id].Body {
			t.Errorf("%s: warm body differs from cold", id)
		}
		if !reflect.DeepEqual(cold[id].Artifacts, warm[id].Artifacts) {
			t.Errorf("%s: warm artifacts differ from cold", id)
		}
	}
}

// TestRunnerParallelMatchesSerial checks the headline acceptance
// property: fanning jobs out over workers changes nothing about the
// rendered rows.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	ids := []string{"table1", "fig6", "table2"}
	run := func(jobs int) map[string]*runner.Result {
		res, _, err := runner.Default.Run(context.Background(), ids,
			runner.Config{Jobs: jobs, Options: smallOpt()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	for _, id := range ids {
		if serial[id].Body != parallel[id].Body {
			t.Errorf("%s: parallel body differs from serial", id)
		}
		if !reflect.DeepEqual(serial[id].Artifacts, parallel[id].Artifacts) {
			t.Errorf("%s: parallel artifacts differ from serial", id)
		}
	}
}

// TestRunnerBadMatrixSurfacesAsJobError exercises the panic-recovery
// path end to end: suite() panics on an unknown matrix deep inside a
// job, and the scheduler must convert that into a per-job error.
func TestRunnerBadMatrixSurfacesAsJobError(t *testing.T) {
	_, rep, err := runner.Default.Run(context.Background(), []string{"table1"},
		runner.Config{Jobs: 1, Options: Options{Matrices: []string{"bcsstk01"}}})
	if err != nil || rep.Jobs[0].Err != "" {
		t.Fatalf("healthy run failed: %v %q", err, rep.Jobs[0].Err)
	}
	_, rep, err = runner.Default.Run(context.Background(), []string{"table1"},
		runner.Config{Jobs: 1, Options: Options{Matrices: []string{"no-such-matrix"}}})
	if err != nil {
		t.Fatalf("run-level error, want per-job error: %v", err)
	}
	if got := rep.Jobs[0].Err; !strings.Contains(got, "no-such-matrix") {
		t.Fatalf("job error = %q, want matrix name", got)
	}
}

// TestSuiteSingleflightParallel hammers suite() from concurrent
// goroutines (as parallel jobs do) and checks every caller sees the
// same generated matrices. Run with -race this also proves the
// per-name singleflight is sound.
func TestSuiteSingleflightParallel(t *testing.T) {
	names := []string{"bcsstk01", "bcsstk02"}
	ref := suite(names)
	done := make(chan []int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			ms := suite(names)
			ptrs := make([]int, len(ms))
			for j, m := range ms {
				if m != ref[j] {
					ptrs[j] = 1
				}
			}
			done <- ptrs
		}()
	}
	for i := 0; i < 8; i++ {
		for j, bad := range <-done {
			if bad != 0 {
				t.Errorf("caller %d got a different instance of %s", i, names[j])
			}
		}
	}
}

// TestRunnerTimeoutCancelsSolverLoops exercises the -timeout path: an
// already-expired context must stop experiment jobs at the solver
// cancellation checkpoints, surface a per-job cancellation error, and
// never cache partial rows.
func TestRunnerTimeoutCancelsSolverLoops(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpt()
	cfg := runner.Config{Jobs: 1, Cache: cache, Options: opt, KeyData: opt.Canonical()}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, rep, err := runner.Default.Run(ctx, []string{"table2"}, cfg)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if len(results) != 0 {
		t.Fatalf("canceled run produced results: %v", results)
	}
	for _, jr := range rep.Jobs {
		if jr.Err == "" || !strings.Contains(jr.Err, "canceled") {
			t.Errorf("job %s: err = %q, want a cancellation error", jr.ID, jr.Err)
		}
		if jr.Cached {
			t.Errorf("job %s cached a canceled run", jr.ID)
		}
	}

	// The cache must stay empty: a fresh run with the same key must
	// recompute (and now succeed).
	results, rep, err = runner.Default.Run(context.Background(), []string{"table2"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, jr := range rep.Jobs {
		if jr.Cached {
			t.Errorf("job %s hit cache populated by a canceled run", jr.ID)
		}
	}
	if results["table2"] == nil || results["table2"].Body == "" {
		t.Fatal("post-cancellation run returned no table2 body")
	}
}
