package experiments

import (
	"context"
	"fmt"
	"math"

	"positlab/internal/arith"
	"positlab/internal/fft"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/report"
	"positlab/internal/runner"
	"positlab/internal/scaling"
	"positlab/internal/shocktube"
	"positlab/internal/solvers"
)

func init() {
	runner.Register(runner.Spec{
		ID:    "ext-fft",
		Title: "future work: FFT accuracy per format (§VII)",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			rows, err := ExtFFT()
			if err != nil {
				return nil, err
			}
			return &runner.Result{Body: RenderExtFFT(rows)}, nil
		},
	})
	runner.Register(runner.Spec{
		ID:    "ext-shock",
		Title: "future work: Sod shock tube per format (§VII)",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			rows, err := ExtShock()
			if err != nil {
				return nil, err
			}
			return &runner.Result{Body: RenderExtShock(rows)}, nil
		},
	})
	runner.Register(runner.Spec{
		ID:    "ext-bicg",
		Title: "future work: BiCG iterate growth vs CG (§VI)",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			pec, err := ExtBiCGPeclet(nil)
			if err != nil {
				return nil, err
			}
			s := RenderExtBiCG(ExtBiCG(optFrom(ctx, env)))
			if err := ctx.Err(); err != nil {
				return nil, err // canceled: never cache partial rows
			}
			s += "\nconvection-diffusion Peclet sweep (n=400, nonsymmetric):\n"
			s += RenderExtBiCGPeclet(pec)
			return &runner.Result{Body: s}, nil
		},
	})
	runner.Register(runner.Spec{
		ID:    "ext-gmres",
		Title: "extension: GMRES-IR vs plain IR corrections (§V-D2)",
		Run: func(ctx context.Context, env *runner.Env) (*runner.Result, error) {
			opt := optFrom(ctx, env)
			rows := ExtGMRES(opt)
			if err := ctx.Err(); err != nil {
				return nil, err // canceled: never cache partial rows
			}
			return &runner.Result{Body: RenderExtGMRES(rows, opt.fill().IRMaxIter)}, nil
		},
	})
}

// The paper's §VII names three future-work applications: FFT (expected
// to favor posits — narrow working range), Bi-CG (expected to resist
// rescaling — large iterates), and Sod's shock tube for CFD. These
// experiments implement all three.

// ExtFFTRow is the FFT accuracy comparison for one format.
type ExtFFTRow struct {
	Format string
	// ForwardErr is ‖F̂x − Fx‖₂/‖Fx‖₂ of the format transform against
	// the float64 reference.
	ForwardErr float64
	// RoundTripErr is the relative L2 error of inverse(forward(x)).
	RoundTripErr float64
}

// fftTestSignal synthesizes the three-tone unit-amplitude input in
// float64. A separate float64-only helper keeps the trig out of the
// format-generic ExtFFT (the signal is an exact input, rounded once
// into each format by the plan).
func fftTestSignal(n int) []float64 {
	sig := make([]float64, n)
	for i := range sig {
		x := float64(i) / float64(n)
		sig[i] = math.Sin(2*math.Pi*5*x) + 0.5*math.Cos(2*math.Pi*31*x) + 0.25*math.Sin(2*math.Pi*101*x)
	}
	return sig
}

// roundTripErrL2 is the relative L2 error of a complex round-trip
// against the real input, evaluated in float64 (reporting metric).
func roundTripErrL2(back []complex128, sig []float64) float64 {
	var num, den float64
	for i := range sig {
		d := real(back[i]) - sig[i]
		num += d*d + imag(back[i])*imag(back[i])
		den += sig[i] * sig[i]
	}
	return math.Sqrt(num / den)
}

// ExtFFT runs a 1024-point FFT of a three-tone unit-amplitude signal
// in each format.
func ExtFFT() ([]ExtFFTRow, error) {
	const n = 1024
	sig := fftTestSignal(n)
	ref := fft.ReferenceForward(sig)

	formats := []arith.Format{
		arith.Float64, arith.Float32, arith.Posit32e2, arith.Posit32e3,
		arith.Float16, arith.BFloat16, arith.Posit16e1, arith.Posit16e2,
		arith.FP8E5M2, arith.FP8E4M3,
		arith.MustByName("posit8es0"), arith.MustByName("posit8es1"),
	}
	var rows []ExtFFTRow
	for _, f := range formats {
		p, err := fft.NewPlan(f, n)
		if err != nil {
			return nil, fmt.Errorf("ext-fft: %s: %w", f.Name(), err)
		}
		x := fft.FromReal(f, sig)
		p.Forward(x)
		fwd := fft.RelErrorL2(fft.ToFloat64(f, x), ref)
		p.Inverse(x)
		rows = append(rows, ExtFFTRow{
			Format:       f.Name(),
			ForwardErr:   fwd,
			RoundTripErr: roundTripErrL2(fft.ToFloat64(f, x), sig),
		})
	}
	return rows, nil
}

// RenderExtFFT prints the FFT accuracy table.
func RenderExtFFT(rows []ExtFFTRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Format, report.Sci(r.ForwardErr), report.Sci(r.RoundTripErr)})
	}
	return report.Table([]string{"Format", "forward err", "round-trip err"}, out)
}

// ExtShockRow is the shock-tube accuracy comparison for one format.
type ExtShockRow struct {
	Format string
	// DensityErr is the relative L2 error of the final density profile
	// against the float64 reference.
	DensityErr float64
	Steps      int
	Failed     bool
}

// ExtShock runs Sod's problem at 200 cells to t=0.2 in each format.
func ExtShock() ([]ExtShockRow, error) {
	cfg := shocktube.Config{Cells: 200}
	ref, _, failed := shocktube.Run(arith.Float64, cfg)
	if failed {
		return nil, fmt.Errorf("ext-shock: float64 shock tube reference failed")
	}
	refRho := ref.Density()
	formats := []arith.Format{
		arith.Float64, arith.Float32, arith.Posit32e2,
		arith.Float16, arith.BFloat16, arith.Posit16e1, arith.Posit16e2,
		arith.FP8E5M2, arith.FP8E4M3,
		arith.MustByName("posit8es0"), arith.MustByName("posit8es1"),
	}
	var rows []ExtShockRow
	for _, f := range formats {
		s, steps, failed := shocktube.Run(f, cfg)
		row := ExtShockRow{Format: f.Name(), Steps: steps, Failed: failed}
		if !failed {
			row.DensityErr = shocktube.RelErrorL2(s.Density(), refRho)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExtShock prints the shock-tube table.
func RenderExtShock(rows []ExtShockRow) string {
	var out [][]string
	for _, r := range rows {
		errCell := report.Sci(r.DensityErr)
		if r.Failed {
			errCell = "-"
		}
		out = append(out, []string{r.Format, errCell, fmt.Sprintf("%d", r.Steps)})
	}
	return report.Table([]string{"Format", "density L2 err", "steps"}, out)
}

// ExtGMRESRow compares plain IR against GMRES-IR corrections for one
// matrix and format — §V-D2's remark that the Table II failure cases
// "would be less likely to occur" with GMRES solving the correction
// equation.
type ExtGMRESRow struct {
	Matrix string
	// Plain and GMRES results per format, parallel to IRFormats.
	Plain, GMRES []solvers.IRResult
}

// ExtGMRES runs the naive (Table II) configuration with both
// correction solvers.
func ExtGMRES(opt Options) []ExtGMRESRow {
	opt = opt.fill()
	var rows []ExtGMRESRow
	for _, m := range suite(opt.Matrices) {
		if opt.canceled() {
			return rows
		}
		row := ExtGMRESRow{
			Matrix: m.Target.Name,
			Plain:  make([]solvers.IRResult, len(IRFormats)),
			GMRES:  make([]solvers.IRResult, len(IRFormats)),
		}
		for i, f := range IRFormats {
			fi := opt.format(f)
			iopt := solvers.IROptions{Tol: opt.IRTol, MaxIter: opt.IRMaxIter}
			row.Plain[i] = solvers.MixedIR(m.A, m.B, fi, solvers.IRScaling{}, iopt)
			row.GMRES[i] = solvers.MixedIRGMRES(m.A, m.B, fi, solvers.IRScaling{}, iopt, solvers.GMRESOptions{})
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderExtGMRES prints plain-vs-GMRES cells side by side.
func RenderExtGMRES(rows []ExtGMRESRow, cap int) string {
	hdr := []string{"Matrix"}
	for _, f := range IRFormats {
		hdr = append(hdr, f.Name()+" IR", f.Name()+" GMRES-IR")
	}
	var out [][]string
	for _, r := range rows {
		row := []string{r.Matrix}
		for i := range IRFormats {
			row = append(row, irCell(r.Plain[i], cap), irCell(r.GMRES[i], cap))
		}
		out = append(out, row)
	}
	return report.Table(hdr, out)
}

// ExtBiCGRow compares CG and BiCG iterate growth on one matrix — the
// §VI hypothesis that Bi-CG's larger iterates limit rescaling.
type ExtBiCGRow struct {
	Matrix string
	// MaxIterate per solver in posit(32,2) on the rescaled system, and
	// iteration counts.
	CGIters, BiCGIters         int
	CGConverged, BiCGConverged bool
	BiCGMaxIterate             float64
}

// ExtBiCG runs both solvers in posit(32,2) on rescaled suite systems.
func ExtBiCG(opt Options) []ExtBiCGRow {
	opt = opt.fill()
	f := opt.format(arith.Posit32e2)
	var rows []ExtBiCGRow
	for _, m := range suite(opt.Matrices) {
		if opt.canceled() {
			return rows
		}
		a := m.A.Clone()
		b := append([]float64(nil), m.B...)
		// Same rescaling as Fig. 7.
		scaling.RescaleSystemCG(a, b)
		an := a.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, b)
		cap := opt.CGCapFactor * a.N
		cg := solvers.CG(an, bn, opt.CGTol, cap)
		bicg := solvers.BiCG(an, bn, opt.CGTol, cap)
		rows = append(rows, ExtBiCGRow{
			Matrix:         m.Target.Name,
			CGIters:        cg.Iterations,
			BiCGIters:      bicg.Iterations,
			CGConverged:    cg.Converged,
			BiCGConverged:  bicg.Converged,
			BiCGMaxIterate: bicg.MaxIterate,
		})
	}
	return rows
}

// RenderExtBiCG prints the CG/BiCG comparison.
func RenderExtBiCG(rows []ExtBiCGRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Matrix,
			report.FormatCount(r.CGIters, r.CGConverged, false, r.CGIters),
			report.FormatCount(r.BiCGIters, r.BiCGConverged, false, r.BiCGIters),
			report.Sci(r.BiCGMaxIterate),
		})
	}
	return report.Table([]string{"Matrix", "CG iters", "BiCG iters", "BiCG max |iterate|"}, out)
}

// ExtBiCGPecletRow is the nonsymmetric iterate-growth experiment: BiCG
// on the convection-diffusion operator at increasing Peclet number in
// posit(32,2) and Float32, unscaled and pow2-rescaled. It probes §VI's
// hypothesis that Bi-CG's "even larger iterates than traditional CG
// may limit the potential for re-scaling as a means to stabilize
// Posit".
type ExtBiCGPecletRow struct {
	Peclet float64
	// Per format: iterations and peak |iterate| magnitude, unscaled;
	// the posit run is repeated after the Fig. 7 rescaling. Float64
	// is the reference showing the iteration count the method needs
	// when precision is not the limit.
	Float64Iters, Float32Iters, PositIters                                     int
	Float64MaxIterate, Float32MaxIterate, PositMaxIterate                      float64
	PositRescaledIters                                                         int
	PositRescaledMaxIterate                                                    float64
	Float64Converged, Float32Converged, PositConverged, PositRescaledConverged bool
}

// uniformUnitVec is the unit-norm constant vector x̂ used as the known
// solution, built in float64 (exact input construction, kept out of
// the format-generic sweep).
func uniformUnitVec(n int) []float64 {
	xhat := make([]float64, n)
	for i := range xhat {
		xhat[i] = 1 / math.Sqrt(float64(n))
	}
	return xhat
}

// ExtBiCGPeclet runs the convection-diffusion sweep (n = 400).
func ExtBiCGPeclet(peclets []float64) ([]ExtBiCGPecletRow, error) {
	if peclets == nil {
		peclets = []float64{0, 1, 10, 100, 1000}
	}
	const n = 400
	var rows []ExtBiCGPecletRow
	for _, p := range peclets {
		a, err := matgen.ConvectionDiffusion1D(n, p)
		if err != nil {
			return nil, fmt.Errorf("ext-bicg: %w", err)
		}
		xhat := uniformUnitVec(n)
		b := make([]float64, n)
		a.MatVecF64(xhat, b)

		run := func(f arith.Format, mat *linalg.Sparse, rhs []float64) solvers.BiCGResult {
			return solvers.BiCG(mat.ToFormat(f, false), linalg.VecFromFloat64(f, rhs), 1e-5, 10*n)
		}
		row := ExtBiCGPecletRow{Peclet: p}
		r64 := run(arith.Float64, a, b)
		row.Float64Iters, row.Float64MaxIterate, row.Float64Converged = r64.Iterations, r64.MaxIterate, r64.Converged
		r32 := run(arith.Float32, a, b)
		row.Float32Iters, row.Float32MaxIterate, row.Float32Converged = r32.Iterations, r32.MaxIterate, r32.Converged
		rp := run(arith.Posit32e2, a, b)
		row.PositIters, row.PositMaxIterate, row.PositConverged = rp.Iterations, rp.MaxIterate, rp.Converged

		a2 := a.Clone()
		b2 := append([]float64(nil), b...)
		scaling.RescaleSystemCG(a2, b2)
		rs := run(arith.Posit32e2, a2, b2)
		row.PositRescaledIters, row.PositRescaledMaxIterate, row.PositRescaledConverged = rs.Iterations, rs.MaxIterate, rs.Converged
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExtBiCGPeclet prints the Peclet sweep.
func RenderExtBiCGPeclet(rows []ExtBiCGPecletRow) string {
	hdr := []string{"Peclet", "Float64", "max|it|", "Float32", "max|it|", "Posit(32,2)", "max|it|", "Posit rescaled", "max|it|"}
	var out [][]string
	cell := func(it int, conv bool) string {
		return report.FormatCount(it, conv, false, it)
	}
	for _, r := range rows {
		out = append(out, []string{
			report.Sci(r.Peclet),
			cell(r.Float64Iters, r.Float64Converged),
			report.Sci(r.Float64MaxIterate),
			cell(r.Float32Iters, r.Float32Converged),
			report.Sci(r.Float32MaxIterate),
			cell(r.PositIters, r.PositConverged),
			report.Sci(r.PositMaxIterate),
			cell(r.PositRescaledIters, r.PositRescaledConverged),
			report.Sci(r.PositRescaledMaxIterate),
		})
	}
	return report.Table(hdr, out)
}
