package matgen_test

import (
	"math"
	"testing"

	"positlab/internal/linalg"
	"positlab/internal/matgen"
)

func TestPoisson2D(t *testing.T) {
	s, err := matgen.Poisson2D(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 48 {
		t.Fatalf("N = %d", s.N)
	}
	if !s.IsSymmetric(1e-15) {
		t.Fatal("not symmetric")
	}
	// Analytic spectrum: λ = 4 - 2cos(iπ/(nx+1)) - 2cos(jπ/(ny+1)).
	eigs, err := linalg.SymEigenvaluesSparse(s)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := 4 - 2*math.Cos(math.Pi/9) - 2*math.Cos(math.Pi/7)
	wantMax := 4 - 2*math.Cos(8*math.Pi/9) - 2*math.Cos(6*math.Pi/7)
	if math.Abs(eigs[0]-wantMin) > 1e-10 {
		t.Errorf("λmin = %.12g, want %.12g", eigs[0], wantMin)
	}
	if math.Abs(eigs[len(eigs)-1]-wantMax) > 1e-10 {
		t.Errorf("λmax = %.12g, want %.12g", eigs[len(eigs)-1], wantMax)
	}
	if _, err := matgen.Poisson2D(0, 5); err == nil {
		t.Error("invalid grid must error")
	}
}

func TestRandomSPD(t *testing.T) {
	s, err := matgen.RandomSPD(120, 1e6, 5e3, 6, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 120 || !s.IsSymmetric(1e-12) {
		t.Fatal("shape wrong")
	}
	if norm := linalg.Norm2Est(s); math.Abs(norm-5e3)/5e3 > 1e-6 {
		t.Errorf("norm = %g, want 5e3", norm)
	}
	if cond := linalg.CondViaCholesky(s); math.Abs(math.Log10(cond)-6) > 0.15 {
		t.Errorf("cond = %g, want ~1e6", cond)
	}
	// Determinism.
	s2, _ := matgen.RandomSPD(120, 1e6, 5e3, 6, 50, 42)
	for i := range s.Val {
		if s.Val[i] != s2.Val[i] {
			t.Fatal("not deterministic")
		}
	}
	if _, err := matgen.RandomSPD(1, 10, 1, 2, 0, 1); err == nil {
		t.Error("n=1 must error")
	}
	if _, err := matgen.RandomSPD(10, 0.5, 1, 2, 0, 1); err == nil {
		t.Error("cond<1 must error")
	}
}

func TestConvectionDiffusion1D(t *testing.T) {
	// p = 0 degenerates to the symmetric Laplacian.
	s, err := matgen.ConvectionDiffusion1D(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsSymmetric(1e-15) || s.At(0, 0) != 2 || s.At(0, 1) != -1 {
		t.Fatal("p=0 must be the Laplacian")
	}
	// p > 0 is nonsymmetric with the upwind stencil.
	p := 10.0
	n := 9
	s, err = matgen.ConvectionDiffusion1D(n, p)
	if err != nil {
		t.Fatal(err)
	}
	h := 1.0 / float64(n+1)
	c := 2 * p * h
	if s.At(1, 1) != 2+c || s.At(1, 0) != -(1+c) || s.At(1, 2) != -1 {
		t.Fatalf("stencil wrong: %g %g %g", s.At(1, 1), s.At(1, 0), s.At(1, 2))
	}
	if s.IsSymmetric(1e-15) {
		t.Fatal("p>0 must be nonsymmetric")
	}
	// Row sums of interior rows vanish except for the convection bias.
	if _, err := matgen.ConvectionDiffusion1D(1, 0); err == nil {
		t.Error("n=1 must error")
	}
	if _, err := matgen.ConvectionDiffusion1D(10, -1); err == nil {
		t.Error("negative Peclet must error")
	}
}

func TestDiagonal(t *testing.T) {
	s, err := matgen.Diagonal(64, 1e8, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	eigs, err := linalg.SymEigenvaluesSparse(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eigs[len(eigs)-1]-2.0) > 1e-12 {
		t.Errorf("λmax = %g", eigs[len(eigs)-1])
	}
	if math.Abs(eigs[0]-2e-8) > 1e-20 {
		t.Errorf("λmin = %g", eigs[0])
	}
	if s.NNZ() != 64 {
		t.Errorf("NNZ = %d", s.NNZ())
	}
	if _, err := matgen.Diagonal(0, 10, 1, 1); err == nil {
		t.Error("n=0 must error")
	}
}
