package matgen_test

import (
	"math"
	"testing"

	"positlab/internal/linalg"
	"positlab/internal/matgen"
)

func TestTableIComplete(t *testing.T) {
	if len(matgen.TableI) != 19 {
		t.Fatalf("TableI has %d entries, want 19", len(matgen.TableI))
	}
	// The paper lists matrices in increasing ‖A‖₂ order.
	for i := 1; i < len(matgen.TableI); i++ {
		if matgen.TableI[i].Norm2 < matgen.TableI[i-1].Norm2 {
			t.Errorf("TableI order broken at %s", matgen.TableI[i].Name)
		}
	}
	seen := map[uint64]string{}
	for _, tgt := range matgen.TableI {
		if prev, dup := seen[tgt.Seed]; dup {
			t.Errorf("seed %d reused by %s and %s", tgt.Seed, prev, tgt.Name)
		}
		seen[tgt.Seed] = tgt.Name
	}
}

func TestTargetByName(t *testing.T) {
	tgt, err := matgen.TargetByName("nos1")
	if err != nil || tgt.N != 237 || tgt.Cond != 2e7 {
		t.Fatalf("TargetByName(nos1) = %+v, %v", tgt, err)
	}
	if _, err := matgen.TargetByName("does_not_exist"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestGenerateSmallTargets(t *testing.T) {
	for _, name := range []string{"bcsstk01", "bcsstk02", "lund_b", "lund_a", "nos1"} {
		tgt, _ := matgen.TargetByName(name)
		m := matgen.Generate(tgt)
		a := m.A
		if a.N != tgt.N {
			t.Errorf("%s: N = %d, want %d", name, a.N, tgt.N)
		}
		if !a.IsSymmetric(1e-12) {
			t.Errorf("%s: not symmetric", name)
		}
		// NNZ within a factor of the Table I target.
		ratio := float64(a.NNZ()) / float64(tgt.NNZ)
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("%s: NNZ = %d vs target %d (ratio %.2f)", name, a.NNZ(), tgt.NNZ, ratio)
		}
		// ‖A‖₂ is exact by construction; Lanczos must confirm it.
		lmax := linalg.Norm2Est(a)
		if math.Abs(lmax-tgt.Norm2)/tgt.Norm2 > 1e-6 {
			t.Errorf("%s: ‖A‖₂ = %g, want %g", name, lmax, tgt.Norm2)
		}
		// Diagonal of an SPD matrix is strictly positive.
		for i, v := range a.Diag() {
			if v <= 0 {
				t.Errorf("%s: diagonal entry %d = %g not positive", name, i, v)
				break
			}
		}
		// b = A·x̂ and ‖x̂‖₂ = 1.
		if math.Abs(linalg.Norm2F64(m.XHat)-1) > 1e-12 {
			t.Errorf("%s: ‖x̂‖ = %g", name, linalg.Norm2F64(m.XHat))
		}
		y := make([]float64, a.N)
		a.MatVecF64(m.XHat, y)
		for i := range y {
			if y[i] != m.B[i] {
				t.Errorf("%s: b != A·x̂ at %d", name, i)
				break
			}
		}
	}
}

// Condition number is exact by construction for moderate conditioning,
// where Lanczos can resolve λmin.
func TestGenerateCondition(t *testing.T) {
	for _, name := range []string{"lund_b", "bcsstk02", "nos5"} {
		tgt, _ := matgen.TargetByName(name)
		m := matgen.Generate(tgt)
		cond := linalg.CondEst(m.A)
		if math.IsNaN(cond) {
			t.Fatalf("%s: CondEst failed", name)
		}
		if math.Abs(math.Log10(cond)-math.Log10(tgt.Cond)) > 0.1 {
			t.Errorf("%s: cond = %.3g, want %.3g", name, cond, tgt.Cond)
		}
	}
}

// Full-spectrum check with the dense symmetric eigensolver: every
// eigenvalue positive (SPD), extremes matching the target norm and
// condition number.
func TestGenerateFullSpectrum(t *testing.T) {
	for _, name := range []string{"bcsstk01", "lund_b", "bcsstk02"} {
		tgt, _ := matgen.TargetByName(name)
		m := matgen.Generate(tgt)
		eigs, err := linalg.SymEigenvaluesSparse(m.A)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if eigs[0] <= 0 {
			t.Fatalf("%s: λmin = %g, not SPD", name, eigs[0])
		}
		lmax := eigs[len(eigs)-1]
		if math.Abs(lmax-tgt.Norm2)/tgt.Norm2 > 1e-6 {
			t.Errorf("%s: λmax = %g, want %g", name, lmax, tgt.Norm2)
		}
		cond := lmax / eigs[0]
		if math.Abs(math.Log10(cond)-math.Log10(tgt.Cond)) > 0.15 {
			t.Errorf("%s: full-spectrum cond = %.3g, want %.3g", name, cond, tgt.Cond)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tgt, _ := matgen.TargetByName("bcsstk01")
	a := matgen.Generate(tgt).A
	b := matgen.Generate(tgt).A
	if a.NNZ() != b.NNZ() {
		t.Fatal("regeneration changed NNZ")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.Col[i] != b.Col[i] {
			t.Fatal("regeneration is not bit-identical")
		}
	}
}

func TestSuiteByNames(t *testing.T) {
	ms, err := matgen.SuiteByNames([]string{"bcsstk01", "lund_b"})
	if err != nil || len(ms) != 2 || ms[0].Target.Name != "bcsstk01" {
		t.Fatalf("SuiteByNames failed: %v", err)
	}
	if _, err := matgen.SuiteByNames([]string{"nope"}); err == nil {
		t.Fatal("unknown name must error")
	}
}
