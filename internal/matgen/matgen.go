// Package matgen generates the synthetic replica of the paper's Table I
// matrix suite. The original study used 19 symmetric positive-definite
// matrices downloaded from the Matrix Market repository; this module is
// offline, so each matrix is replaced by a synthetic SPD stand-in with
// the same name, dimension N, spectral condition number k(A), 2-norm
// ‖A‖₂, and approximately the same number of nonzeros.
//
// Construction: an explicit log-uniform spectrum Λ between ‖A‖₂/k and
// ‖A‖₂ is mixed by s sweeps of disjoint random Givens rotations,
// A = G_m … G_1 Λ G_1ᵀ … G_mᵀ, with s ≈ log₂(NNZ/N) so each row's
// pattern grows to roughly 2^s entries. Orthogonal similarity keeps the
// spectrum — and hence k(A) and ‖A‖₂ — exact to float64 roundoff, while
// the sweep count tunes sparsity. The phenomena the paper studies are
// driven exactly by these quantities plus the entry-magnitude scale, so
// the substitution preserves the experimental behaviour (see DESIGN.md).
package matgen

import (
	"fmt"
	"math"

	"positlab/internal/linalg"
)

// Target describes one matrix of the paper's Table I.
//
// IntrinsicCond splits the condition number into two parts, matching
// how real engineering matrices are conditioned: the generated matrix
// is A = s·D·M·D where M is an orthogonally mixed SPD core with
// condition IntrinsicCond (ill-conditioning that diagonal equilibration
// cannot remove) and D is a log-uniform diagonal sized so the overall
// condition approximates Cond (ill-conditioning from row/column
// scaling, which Higham's Algorithm 5 removes). IntrinsicCond per
// matrix is calibrated so the mixed-precision refinement behaviour
// tracks the paper's Tables II/III: small values converge in a few
// iterations after scaling, values beyond ~4000 defeat Float16 IR.
type Target struct {
	Name          string
	Cond          float64 // k(A), spectral condition number
	N             int
	Norm2         float64 // ‖A‖₂ = λmax
	NNZ           int     // nonzeros reported by Matrix Market (both triangles)
	IntrinsicCond float64 // condition of the equilibrated core M
	Seed          uint64
}

// TableI lists the paper's 19 matrices in its order: increasing ‖A‖₂.
var TableI = []Target{
	{Name: "plat362", Cond: 2.2e11, N: 362, Norm2: 7.7e-01, NNZ: 5786, IntrinsicCond: 5e4, Seed: 1001},
	{Name: "mhd416b", Cond: 5.1e9, N: 416, Norm2: 2.2e0, NNZ: 2312, IntrinsicCond: 12, Seed: 1002},
	{Name: "662_bus", Cond: 7.9e5, N: 662, Norm2: 4.0e3, NNZ: 2474, IntrinsicCond: 2500, Seed: 1003},
	{Name: "lund_b", Cond: 3e4, N: 147, Norm2: 7.4e3, NNZ: 2441, IntrinsicCond: 12, Seed: 1004},
	{Name: "bcsstk02", Cond: 4.3e3, N: 66, Norm2: 1.8e4, NNZ: 4356, IntrinsicCond: 280, Seed: 1005},
	{Name: "685_bus", Cond: 4.2e5, N: 685, Norm2: 2.6e4, NNZ: 3249, IntrinsicCond: 580, Seed: 1006},
	{Name: "1138_bus", Cond: 8.6e6, N: 1138, Norm2: 3.0e4, NNZ: 4054, IntrinsicCond: 3e4, Seed: 1007},
	{Name: "494_bus", Cond: 2.4e6, N: 494, Norm2: 3.0e4, NNZ: 1666, IntrinsicCond: 4500, Seed: 1008},
	{Name: "nos5", Cond: 1.1e4, N: 468, Norm2: 5.8e5, NNZ: 5172, IntrinsicCond: 170, Seed: 1009},
	{Name: "bcsstk22", Cond: 1.1e5, N: 138, Norm2: 5.9e6, NNZ: 696, IntrinsicCond: 520, Seed: 1010},
	{Name: "nos6", Cond: 7.7e6, N: 685, Norm2: 7.7e6, NNZ: 3255, IntrinsicCond: 8000, Seed: 1011},
	{Name: "bcsstk09", Cond: 9.5e3, N: 1083, Norm2: 6.8e7, NNZ: 18437, IntrinsicCond: 2300, Seed: 1012},
	{Name: "lund_a", Cond: 2.8e6, N: 147, Norm2: 2.2e8, NNZ: 2449, IntrinsicCond: 890, Seed: 1013},
	{Name: "nos1", Cond: 2e7, N: 237, Norm2: 2.5e9, NNZ: 1017, IntrinsicCond: 1e4, Seed: 1014},
	{Name: "bcsstk01", Cond: 8.8e5, N: 48, Norm2: 3.0e9, NNZ: 400, IntrinsicCond: 170, Seed: 1015},
	{Name: "bcsstk06", Cond: 7.6e6, N: 420, Norm2: 3.5e9, NNZ: 7860, IntrinsicCond: 1740, Seed: 1016},
	{Name: "msc00726", Cond: 4.2e5, N: 726, Norm2: 4.2e9, NNZ: 34518, IntrinsicCond: 520, Seed: 1017},
	{Name: "bcsstk08", Cond: 2.6e7, N: 1074, Norm2: 7.7e10, NNZ: 12960, IntrinsicCond: 580, Seed: 1018},
	{Name: "nos2", Cond: 5.1e9, N: 957, Norm2: 1.57e11, NNZ: 4137, IntrinsicCond: 1e5, Seed: 1019},
}

// TargetByName looks a Table I target up by its matrix name.
func TargetByName(name string) (Target, error) {
	for _, t := range TableI {
		if t.Name == name {
			return t, nil
		}
	}
	return Target{}, fmt.Errorf("matgen: unknown matrix %q", name)
}

// Matrix is one generated suite member: the float64 master matrix, the
// reference solution x̂ = (1/√n, …)ᵀ of the paper's §V-A, and the right
// hand side b = A·x̂.
type Matrix struct {
	Target Target
	A      *linalg.Sparse
	XHat   []float64
	B      []float64
}

// rng is a splitmix64 generator: tiny, seedable and bit-stable across
// platforms and Go versions, so the suite is reproducible forever.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// perm returns a random permutation of 0..n-1 (Fisher–Yates).
func (r *rng) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Generate builds the synthetic SPD matrix for a target. The sweep
// count is chosen empirically: fill propagates faster than the naive
// doubling model (rotating pair (i,j) also links every row adjacent to
// i or j), so candidate sweep counts are generated and the one whose
// NNZ lands closest to the Table I target is kept. The winner is then
// rescaled so ‖A‖₂ hits the Table I value (Lanczos estimate of λmax,
// accurate to ~1e-10 relative).
func Generate(t Target) *Matrix {
	best := generateWithSweeps(t, 1, 1)
	bestErr := math.Abs(math.Log(float64(best.NNZ()) / float64(t.NNZ)))
	bestSweeps := 1
	for s := 2; s <= 10; s++ {
		a := generateWithSweeps(t, s, 1)
		err := math.Abs(math.Log(float64(a.NNZ()) / float64(t.NNZ)))
		if err < bestErr {
			best, bestErr, bestSweeps = a, err, s
		}
		if a.NNZ() >= t.NNZ || a.NNZ() >= t.N*t.N*9/10 {
			break // fill only grows; no point sweeping further
		}
	}

	// Calibration passes on the diagonal range: cond(D·M·D) falls
	// somewhat short of cond(D)²·cond(M), so measure and boost the D
	// ratio until the Table I condition number lands within a few
	// percent.
	adjust := 1.0
	for pass := 0; pass < 3; pass++ {
		measured := linalg.CondViaCholesky(best)
		if !(measured > 1) || math.IsNaN(measured) {
			break
		}
		step := math.Sqrt(t.Cond / measured)
		if step < 1.02 && step > 0.98 {
			break
		}
		adjust *= step
		best = generateWithSweeps(t, bestSweeps, adjust)
	}

	if lmax := linalg.Norm2Est(best); lmax > 0 && !math.IsNaN(lmax) {
		best.Scale(t.Norm2 / lmax)
	}

	xhat := make([]float64, t.N)
	for i := range xhat {
		xhat[i] = 1 / math.Sqrt(float64(t.N))
	}
	b := make([]float64, t.N)
	best.MatVecF64(xhat, b)
	return &Matrix{Target: t, A: best, XHat: xhat, B: b}
}

// generateWithSweeps builds the unnormalized SPD matrix D·M·D with a
// fixed sweep count, deterministically from the target's seed.
// ratioAdjust multiplies the diagonal range (calibration knob).
func generateWithSweeps(t Target, sweeps int, ratioAdjust float64) *linalg.Sparse {
	if t.N < 2 {
		// Targets are compile-time tables validated by matgen_test;
		// a bad dimension is a bug in the table, not a runtime input.
		panic("matgen: target dimension must be >= 2") //lint:allow panics target tables are static, validated by tests
	}
	r := &rng{state: t.Seed}
	n := t.N

	m0 := t.IntrinsicCond
	if m0 <= 1 {
		m0 = math.Min(t.Cond, 100)
	}
	if m0 > t.Cond {
		m0 = t.Cond
	}

	// Core spectrum: log-uniform in [1/m0, 1] with exact extremes and
	// light jitter so the spectrum is simple.
	lambda := make([]float64, n)
	logMin := math.Log(1 / m0)
	for i := range lambda {
		f := float64(i) / float64(n-1)
		jit := 0.0
		if i != 0 && i != n-1 {
			jit = (r.float() - 0.5) / float64(4*n) // < quarter of a slot
		}
		lambda[i] = math.Exp(logMin * (1 - f - jit))
	}
	lambda[0] = 1 / m0
	lambda[n-1] = 1

	// Scatter the spectrum over the diagonal so the extremes are not
	// adjacent and sweeps mix them with distant rows.
	d := make([]float64, n)
	for i, p := range r.perm(n) {
		d[p] = lambda[i]
	}
	dense := linalg.NewDense(n)
	for i := 0; i < n; i++ {
		dense.Set(i, i, d[i])
	}

	// Sweeps of disjoint Givens rotations; fill grows with each sweep.
	// Orthogonal similarity keeps the core spectrum exact.
	for s := 0; s < sweeps; s++ {
		p := r.perm(n)
		for k := 0; k+1 < n; k += 2 {
			i, j := p[k], p[k+1]
			// Angles bounded away from 0 and π/2 keep the fill real.
			theta := 0.2 + 1.1*r.float()
			if r.next()&1 == 0 {
				theta = -theta
			}
			applyGivensSym(dense, i, j, math.Cos(theta), math.Sin(theta))
		}
	}

	// Scaling-induced conditioning: wrap the core in a log-uniform
	// diagonal D with ratio sqrt(Cond/m0), so cond(D·M·D) lands near
	// the Table I value while equilibration (Higham's Algorithm 5)
	// recovers conditioning ~m0 — the structure of real engineering
	// matrices, whose wild condition numbers largely come from units.
	ratio := math.Sqrt(t.Cond/m0) * ratioAdjust
	if ratio < 1 {
		ratio = 1
	}
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = math.Exp(r.float() * math.Log(ratio))
	}
	// Pin the extremes so the D range is deterministic and full.
	if ratio > 1 {
		lo := int(r.next() % uint64(n))
		diag[lo] = 1
		for {
			k := int(r.next() % uint64(n))
			if k != lo {
				diag[k] = ratio
				break
			}
		}
	}

	// Harvest the sparse pattern of D·M·D: untouched entries are
	// exactly 0.0.
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if v := dense.At(i, j); v != 0 {
				entries = append(entries, linalg.Entry{Row: i, Col: j, Val: v * diag[i] * diag[j]})
			}
		}
	}
	a, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		// The entry list is constructed in-bounds just above; an error
		// here means generateWithSweeps itself is broken.
		panic(err) //lint:allow panics unreachable unless the generator itself is buggy
	}
	return a
}

// applyGivensSym applies the symmetric similarity A ← G A Gᵀ where G
// rotates coordinates (i, j): row/col i gets c·aᵢ + s·aⱼ, row/col j
// gets -s·aᵢ + c·aⱼ.
func applyGivensSym(a *linalg.Dense, i, j int, c, s float64) {
	n := a.N
	// Rows.
	for k := 0; k < n; k++ {
		ai, aj := a.At(i, k), a.At(j, k)
		a.Set(i, k, c*ai+s*aj)
		a.Set(j, k, -s*ai+c*aj)
	}
	// Columns.
	for k := 0; k < n; k++ {
		ai, aj := a.At(k, i), a.At(k, j)
		a.Set(k, i, c*ai+s*aj)
		a.Set(k, j, -s*ai+c*aj)
	}
	// Restore exact symmetry on the rotated cross entries (roundoff
	// can leave a one-ulp asymmetry that symmetric solvers dislike).
	for k := 0; k < n; k++ {
		v := 0.5 * (a.At(i, k) + a.At(k, i))
		a.Set(i, k, v)
		a.Set(k, i, v)
		w := 0.5 * (a.At(j, k) + a.At(k, j))
		a.Set(j, k, w)
		a.Set(k, j, w)
	}
}

// Suite generates all 19 Table I replicas.
func Suite() []*Matrix {
	out := make([]*Matrix, len(TableI))
	for i, t := range TableI {
		out[i] = Generate(t)
	}
	return out
}

// SuiteByNames generates the named subset in the given order.
func SuiteByNames(names []string) ([]*Matrix, error) {
	out := make([]*Matrix, 0, len(names))
	for _, name := range names {
		t, err := TargetByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Generate(t))
	}
	return out, nil
}
