package matgen

import (
	"fmt"
	"math"

	"positlab/internal/linalg"
)

// General-purpose SPD generators for users bringing their own
// workloads, beyond the Table I replica suite.

// Poisson2D builds the standard 5-point finite-difference Laplacian on
// an nx×ny grid (Dirichlet boundaries): SPD, condition number
// ~(4/π²)·max(nx,ny)², the classic PDE test matrix.
func Poisson2D(nx, ny int) (*linalg.Sparse, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("matgen: grid %dx%d invalid", nx, ny)
	}
	n := nx * ny
	idx := func(i, j int) int { return i*ny + j }
	var entries []linalg.Entry
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			entries = append(entries, linalg.Entry{Row: idx(i, j), Col: idx(i, j), Val: 4})
			if i+1 < nx {
				entries = append(entries, linalg.Entry{Row: idx(i, j), Col: idx(i+1, j), Val: -1})
			}
			if j+1 < ny {
				entries = append(entries, linalg.Entry{Row: idx(i, j), Col: idx(i, j+1), Val: -1})
			}
		}
	}
	return linalg.NewSparseFromEntries(n, entries, true)
}

// RandomSPD builds a synthetic SPD matrix with a prescribed condition
// number, 2-norm and approximate per-row fill, using the same
// spectrum + Givens-sweep construction as the Table I replicas.
// IntrinsicCond controls how much of the conditioning survives
// diagonal equilibration (<= 0 picks min(cond, 100)).
func RandomSPD(n int, cond, norm2 float64, nnzPerRow int, intrinsicCond float64, seed uint64) (*linalg.Sparse, error) {
	if n < 2 {
		return nil, fmt.Errorf("matgen: n = %d too small", n)
	}
	if cond < 1 || norm2 <= 0 {
		return nil, fmt.Errorf("matgen: cond %g / norm %g invalid", cond, norm2)
	}
	if nnzPerRow < 1 {
		nnzPerRow = 4
	}
	t := Target{
		Name:          fmt.Sprintf("random-%d", seed),
		Cond:          cond,
		N:             n,
		Norm2:         norm2,
		NNZ:           n * nnzPerRow,
		IntrinsicCond: intrinsicCond,
		Seed:          seed,
	}
	m := Generate(t)
	return m.A, nil
}

// ConvectionDiffusion1D builds the upwind finite-difference
// discretization of -u” + 2p·u' on n interior points: the tridiagonal
// nonsymmetric matrix with diagonal 2+2ph, subdiagonal -(1+2ph) and
// superdiagonal -1 (h = 1/(n+1), p the Peclet number). At p = 0 it is
// the symmetric Laplacian; growing p makes it increasingly
// nonsymmetric, the regime where Bi-CG's iterates grow (paper §VI).
func ConvectionDiffusion1D(n int, peclet float64) (*linalg.Sparse, error) {
	if n < 2 {
		return nil, fmt.Errorf("matgen: n = %d too small", n)
	}
	if peclet < 0 {
		return nil, fmt.Errorf("matgen: negative Peclet number %g", peclet)
	}
	h := 1.0 / float64(n+1)
	c := 2 * peclet * h
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2 + c})
		if i > 0 {
			entries = append(entries, linalg.Entry{Row: i, Col: i - 1, Val: -(1 + c)})
		}
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	return linalg.NewSparseFromEntries(n, entries, false)
}

// Diagonal builds a diagonal SPD matrix with a log-uniform spectrum —
// the trivially-solvable extreme of the study, useful as a control.
func Diagonal(n int, cond, norm2 float64, seed uint64) (*linalg.Sparse, error) {
	if n < 1 || cond < 1 || norm2 <= 0 {
		return nil, fmt.Errorf("matgen: invalid diagonal parameters")
	}
	r := &rng{state: seed}
	var entries []linalg.Entry
	logMin := math.Log(norm2 / cond)
	logMax := math.Log(norm2)
	for i := 0; i < n; i++ {
		f := 0.0
		if n > 1 {
			f = float64(i) / float64(n-1)
		}
		v := math.Exp(logMin + (logMax-logMin)*f)
		if i == 0 {
			v = norm2 / cond
		}
		if i == n-1 {
			v = norm2
		}
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: v})
	}
	// Shuffle positions so the extremes are not adjacent.
	p := r.perm(n)
	for i := range entries {
		entries[i].Row = p[i]
		entries[i].Col = p[i]
	}
	return linalg.NewSparseFromEntries(n, entries, false)
}
