package matgen_test

import (
	"os"
	"path/filepath"
	"testing"

	"positlab/internal/matgen"
	"positlab/internal/mmarket"
)

// The checked-in fixture files under testdata/suite are golden copies
// of generator output (written by cmd/matgen). Regeneration must match
// them bit for bit — the determinism contract that makes every
// experiment in EXPERIMENTS.md reproducible.
func TestGoldenSuiteFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "suite")
	for _, name := range []string{"bcsstk01", "lund_b"} {
		path := filepath.Join(dir, name+".mtx")
		if _, err := os.Stat(path); err != nil {
			t.Skipf("fixture %s not present: %v", path, err)
		}
		golden, _, err := mmarket.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		tgt, err := matgen.TargetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := matgen.Generate(tgt)
		if golden.NNZ() != m.A.NNZ() || golden.N != m.A.N {
			t.Fatalf("%s: shape drifted: golden %dx nnz %d, regenerated nnz %d",
				name, golden.N, golden.NNZ(), m.A.NNZ())
		}
		for i := range golden.Val {
			if golden.Val[i] != m.A.Val[i] || golden.Col[i] != m.A.Col[i] {
				t.Fatalf("%s: value drifted at entry %d: golden %v, regenerated %v",
					name, i, golden.Val[i], m.A.Val[i])
			}
		}
	}
}
