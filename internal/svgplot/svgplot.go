// Package svgplot renders line charts, grouped bar charts and scatter
// plots as standalone SVG documents using only the standard library —
// the harness uses it to regenerate the paper's figures as actual
// figures next to the textual tables.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// palette holds distinguishable series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// Series is one named line or point set.
type Series struct {
	Name string
	X, Y []float64
	// Points draws markers without a connecting line (scatter).
	Points bool
}

// Plot is a 2-D chart with numeric axes.
type Plot struct {
	Title          string
	XLabel, YLabel string
	Series         []Series
	LogX, LogY     bool
	W, H           int
}

const (
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 50
)

// SVG renders the plot as a complete SVG document.
func (p *Plot) SVG() string {
	w, h := p.W, p.H
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 440
	}
	var xs, ys []float64
	for _, s := range p.Series {
		for i := range s.X {
			x, y := p.tx(s.X[i]), p.ty(s.Y[i])
			if valid(x) && valid(y) {
				xs = append(xs, x)
				ys = append(ys, y)
			}
		}
	}
	xmin, xmax := bounds(xs)
	ymin, ymax := bounds(ys)

	var b strings.Builder
	openSVG(&b, w, h)
	title(&b, w, p.Title)

	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)
	sx := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return float64(marginT) + (ymax-y)/(ymax-ymin)*plotH }

	// Frame, ticks and grid.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	for _, t := range ticks(xmin, xmax, 8) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			x, marginT, x, float64(marginT)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, float64(marginT)+plotH+16, p.tickLabel(t, p.LogX))
	}
	for _, t := range ticks(ymin, ymax, 6) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, float64(marginL)+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, p.tickLabel(t, p.LogY))
	}
	axisLabels(&b, w, h, p.XLabel, p.YLabel)

	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		if s.Points {
			for i := range s.X {
				x, y := p.tx(s.X[i]), p.ty(s.Y[i])
				if !valid(x) || !valid(y) {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n", sx(x), sy(y), color)
			}
		} else {
			var pts []string
			for i := range s.X {
				x, y := p.tx(s.X[i]), p.ty(s.Y[i])
				if !valid(x) || !valid(y) {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(x), sy(y)))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// Legend entry.
		lx := marginL + 12
		ly := marginT + 16 + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="4" fill="%s"/>`+"\n", lx, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", lx+18, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func (p *Plot) tx(x float64) float64 {
	if p.LogX {
		return math.Log10(x)
	}
	return x
}

func (p *Plot) ty(y float64) float64 {
	if p.LogY {
		return math.Log10(y)
	}
	return y
}

func (p *Plot) tickLabel(t float64, log bool) string {
	if log {
		return fmt.Sprintf("1e%d", int(math.Round(t)))
	}
	return trimNum(t)
}

// BarChart is a grouped bar chart over categorical labels.
type BarChart struct {
	Title  string
	YLabel string
	Labels []string
	// Groups maps series name to one value per label; iteration order
	// follows GroupOrder.
	Groups     map[string][]float64
	GroupOrder []string
	W, H       int
}

// SVG renders the bar chart as a complete SVG document.
func (c *BarChart) SVG() string {
	w, h := c.W, c.H
	if w == 0 {
		w = 900
	}
	if h == 0 {
		h = 440
	}
	var all []float64
	for _, name := range c.GroupOrder {
		for _, v := range c.Groups[name] {
			if valid(v) {
				all = append(all, v)
			}
		}
	}
	ymin, ymax := bounds(all)
	if ymin > 0 {
		ymin = 0
	}
	if ymax < 0 {
		ymax = 0
	}

	var b strings.Builder
	openSVG(&b, w, h)
	title(&b, w, c.Title)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)
	sy := func(y float64) float64 { return float64(marginT) + (ymax-y)/(ymax-ymin)*plotH }

	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	for _, t := range ticks(ymin, ymax, 6) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, float64(marginL)+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, trimNum(t))
	}
	// Zero axis.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
		marginL, sy(0), float64(marginL)+plotW, sy(0))

	ng := len(c.GroupOrder)
	nl := len(c.Labels)
	slot := plotW / float64(nl)
	barW := slot * 0.8 / float64(max(ng, 1))
	for li, label := range c.Labels {
		x0 := float64(marginL) + slot*float64(li) + slot*0.1
		for gi, gname := range c.GroupOrder {
			vs := c.Groups[gname]
			if li >= len(vs) || !valid(vs[li]) {
				continue
			}
			v := vs[li]
			yTop := sy(math.Max(v, 0))
			height := math.Abs(sy(0) - sy(v))
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x0+barW*float64(gi), yTop, barW*0.92, height, palette[gi%len(palette)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			x0+slot*0.4, float64(marginT)+plotH+14, x0+slot*0.4, float64(marginT)+plotH+14, escape(label))
	}
	for gi, gname := range c.GroupOrder {
		lx := marginL + 12 + 130*gi
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			lx, marginT+6, palette[gi%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", lx+18, marginT+16, escape(gname))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			h/2, h/2, escape(c.YLabel))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// --- shared helpers ---

func openSVG(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
}

func title(b *strings.Builder, w int, t string) {
	if t != "" {
		fmt.Fprintf(b, `<text x="%d" y="22" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
			w/2, escape(t))
	}
}

func axisLabels(b *strings.Builder, w, h int, xl, yl string) {
	if xl != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			w/2, h-12, escape(xl))
	}
	if yl != "" {
		fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			h/2, h/2, escape(yl))
	}
}

func valid(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func bounds(vs []float64) (lo, hi float64) {
	if len(vs) == 0 {
		return 0, 1
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	// A little headroom.
	pad := (hi - lo) * 0.05
	return lo - pad, hi + pad
}

// ticks picks ~n round tick values spanning [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || !(hi > lo) {
		return nil
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e9; t += step {
		out = append(out, t)
	}
	return out
}

func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
