package svgplot_test

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"positlab/internal/svgplot"
)

// wellFormed checks the output parses as XML end to end.
func wellFormed(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("not well-formed XML: %v\n%s", err, s[:min(len(s), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPlotSVG(t *testing.T) {
	p := &svgplot.Plot{
		Title:  "digits & <escapes>",
		XLabel: "log10(x)",
		YLabel: "digits",
		Series: []svgplot.Series{
			{Name: "posit(32,2)", X: []float64{-2, -1, 0, 1, 2}, Y: []float64{6, 7, 8.4, 7, 6}},
			{Name: "float32", X: []float64{-2, -1, 0, 1, 2}, Y: []float64{7.2, 7.2, 7.2, 7.2, 7.2}},
			{Name: "scatter", X: []float64{0, 1}, Y: []float64{5, 6}, Points: true},
		},
	}
	s := p.SVG()
	wellFormed(t, s)
	for _, want := range []string{"<svg", "polyline", "circle", "posit(32,2)", "&lt;escapes&gt;"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestPlotLogAxes(t *testing.T) {
	p := &svgplot.Plot{
		LogX: true, LogY: true,
		Series: []svgplot.Series{
			{Name: "err", X: []float64{1, 10, 100, 1000}, Y: []float64{1e-8, 1e-7, 1e-6, 1e-5}},
		},
	}
	s := p.SVG()
	wellFormed(t, s)
	if !strings.Contains(s, "1e") {
		t.Error("log tick labels missing")
	}
}

func TestPlotHandlesBadValues(t *testing.T) {
	p := &svgplot.Plot{
		Series: []svgplot.Series{
			{Name: "holes", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), math.Inf(1)}},
		},
	}
	wellFormed(t, p.SVG()) // must not panic or emit NaN coordinates
	if strings.Contains(p.SVG(), "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := &svgplot.BarChart{
		Title:  "improvement",
		YLabel: "%",
		Labels: []string{"a", "b", "c"},
		Groups: map[string][]float64{
			"posit(32,2)": {10, -20, 30},
			"posit(32,3)": {5, 15, math.NaN()},
		},
		GroupOrder: []string{"posit(32,2)", "posit(32,3)"},
	}
	s := c.SVG()
	wellFormed(t, s)
	if strings.Count(s, "<rect") < 6 { // frame + background + >=4 bars + legend
		t.Errorf("too few rects:\n%s", s)
	}
	if !strings.Contains(s, "rotate(-45") {
		t.Error("labels not rotated")
	}
}

func TestEmptyInputs(t *testing.T) {
	wellFormed(t, (&svgplot.Plot{}).SVG())
	wellFormed(t, (&svgplot.BarChart{}).SVG())
}
