package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"positlab/internal/faultfs"
)

// cacheSchema versions the on-disk entry layout. Bump it whenever
// Result or the key material changes shape; stale-schema entries are
// treated as misses and overwritten.
const cacheSchema = "positlab-cache/v1"

// Cache is a content-addressed on-disk result cache. The key is a
// SHA-256 over the experiment ID plus the canonical JSON of the
// driver's option value (which includes the matrix subset), so a
// re-run with identical inputs skips all solver work and replays the
// stored body and artifacts.
type Cache struct {
	dir string
	fs  faultfs.FS
}

// cacheEntry is the stored JSON envelope.
type cacheEntry struct {
	Schema string  `json:"schema"`
	ID     string  `json:"id"`
	Key    string  `json:"key"`
	Result *Result `json:"result"`
}

// OpenCache opens (creating if needed) a cache rooted at dir on the
// real filesystem.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheFS(faultfs.OS, dir)
}

// OpenCacheFS is OpenCache over an explicit filesystem seam — the
// entry point the chaos suite uses to put the cache on a fault
// injector.
func OpenCacheFS(fsys faultfs.FS, dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache dir")
	}
	fsys = faultfs.OrOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	return &Cache{dir: dir, fs: fsys}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Key derives the content address for one experiment under the given
// option value. keyData must be JSON-marshalable; drivers pass a
// canonicalized options value so equivalent spellings share entries.
func (c *Cache) Key(id string, keyData any) (string, error) {
	material, err := json.Marshal(struct {
		Schema string `json:"schema"`
		ID     string `json:"id"`
		Opts   any    `json:"opts"`
	}{cacheSchema, id, keyData})
	if err != nil {
		return "", fmt.Errorf("runner: cache key for %s: %w", id, err)
	}
	sum := sha256.Sum256(material)
	// Prefix the hash with the ID so cache directories are browsable.
	return id + "-" + hex.EncodeToString(sum[:16]), nil
}

// path places an entry under a two-character fan-out of its hash tail
// to keep directories small on big sweeps.
func (c *Cache) path(key string) string {
	shard := key[len(key)-2:]
	return filepath.Join(c.dir, shard, key+".json")
}

// Get returns the cached result for key, reporting ok=false on a miss.
// Undecodable or stale-schema entries are misses, not errors.
func (c *Cache) Get(key string) (*Result, bool, error) {
	data, err := c.fs.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchema || e.Result == nil {
		return nil, false, nil
	}
	return e.Result, true, nil
}

// Put stores res under key, atomically (temp file + fsync + rename via
// faultfs.WriteFileAtomic) so a crashed or canceled run never leaves a
// torn entry, and a failed cleanup of the temp file is surfaced rather
// than swallowed.
func (c *Cache) Put(key string, res *Result) error {
	path := c.path(key)
	if err := c.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cacheEntry{Schema: cacheSchema, ID: keyID(key), Key: key, Result: res}, "", " ")
	if err != nil {
		return err
	}
	return faultfs.WriteFileAtomic(c.fs, path, data)
}

// keyID recovers the experiment ID prefix of a cache key.
func keyID(key string) string {
	if i := len(key) - 33; i > 0 && key[i] == '-' {
		return key[:i]
	}
	return key
}
