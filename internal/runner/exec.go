package runner

import (
	"context"
	"fmt"
)

// Executor is the programmatic entry point for cached single-spec
// execution: where the CLI drives Registry.Run over a whole selection,
// long-running callers (the positd serving layer) ask for one
// experiment at a time and want its result, its job report, and a
// real error instead of a report to post-process.
//
// The zero value executes against the Default registry with no cache;
// set Config to share a disk cache, options, and instrumentation
// across calls. An Executor is safe for concurrent use: each Execute
// runs its own scheduler pass, and the on-disk cache tolerates
// concurrent readers and writers (entries are written atomically).
type Executor struct {
	// Registry to execute from; nil means Default.
	Registry *Registry
	// Config is passed to every Registry.Run invocation. Its Events
	// callback, if any, must be safe for concurrent use when Execute
	// is called from multiple goroutines.
	Config Config
}

// Execute runs the spec registered under id (plus its transitive
// dependencies) through the scheduler, consulting and filling the
// configured cache, and returns the spec's result and job report.
// Unknown IDs, dependency cycles, per-job failures, and context
// cancellation all surface as errors; the report is returned whenever
// the job ran (or was skipped) so callers can still see wall time and
// cache state.
func (e *Executor) Execute(ctx context.Context, id string) (*Result, *JobReport, error) {
	reg := e.Registry
	if reg == nil {
		reg = Default
	}
	results, rep, runErr := reg.Run(ctx, []string{id}, e.Config)
	if rep == nil {
		// Run-level failure before any job started (unknown ID, cycle).
		return nil, nil, runErr
	}
	var jr *JobReport
	for i := range rep.Jobs {
		if rep.Jobs[i].ID == id {
			jr = &rep.Jobs[i]
			break
		}
	}
	if jr == nil {
		if runErr != nil {
			return nil, nil, runErr
		}
		return nil, nil, fmt.Errorf("runner: no job report for %q", id)
	}
	if jr.Err != "" {
		return nil, jr, fmt.Errorf("runner: %s: %s", id, jr.Err)
	}
	if runErr != nil {
		return nil, jr, runErr
	}
	res := results[id]
	if res == nil {
		return nil, jr, fmt.Errorf("runner: %s: no result", id)
	}
	return res, jr, nil
}
