package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"positlab/internal/faultfs"
)

// The cache chaos suite drives Put/Get sequences under randomized
// fault schedules and asserts the cache contract after each:
//
//   - an entry whose Put was acknowledged is served back deep-equal;
//   - any other key is either a miss or deep-equal to what was written
//     — never a torn or wrong entry (atomic replace + schema check);
//   - runs.json written through WriteFileFS is either absent, the old
//     version, or the complete new version.
//
// Reproduce a failure with the seed it prints:
//
//	POSITLAB_CHAOS_REPLAY=<seed> go test -run TestChaosCache ./internal/runner/

func chaosResult(i int) *Result {
	return &Result{
		Body: fmt.Sprintf("body-%d: %s", i, string(make([]byte, 64+i*13))),
		Metrics: map[string]float64{
			"iters": float64(100 + i),
			"rows":  float64(i),
		},
	}
}

type cacheModel struct {
	keys  []string
	acked map[string]int // key -> result index of acked Put
	runs  bool           // runs.json write acked
}

func chaosCacheWorkload(fsys faultfs.FS, dir string, m *cacheModel) error {
	tol := func(err error) error {
		if err == nil || errors.Is(err, faultfs.ErrInjected) {
			return nil
		}
		return err
	}
	c, err := OpenCacheFS(fsys, dir)
	if err != nil {
		return tol(err)
	}
	for i := 0; i < 6; i++ {
		key, err := c.Key("chaos", map[string]int{"i": i})
		if err != nil {
			return err
		}
		m.keys = append(m.keys, key)
		if err := c.Put(key, chaosResult(i)); err != nil {
			if terr := tol(err); terr != nil {
				return terr
			}
			continue
		}
		m.acked[key] = i
		// Interleaved read-back through the sick disk: errors and
		// misses are tolerated, a wrong result is not.
		if res, ok, gerr := c.Get(key); gerr == nil && ok {
			if res.Body != chaosResult(i).Body {
				return fmt.Errorf("cache served wrong body for %s right after Put", key)
			}
		}
	}
	// Overwrite one key with newer content (index 10): after this,
	// either version is valid for that key, but nothing else is.
	if len(m.keys) > 0 {
		if err := c.Put(m.keys[0], chaosResult(10)); err == nil {
			m.acked[m.keys[0]] = 10
		} else if terr := tol(err); terr != nil {
			return terr
		}
	}
	rep := &RunReport{Schema: RunsSchema, Workers: 3}
	if err := rep.WriteFileFS(fsys, filepath.Join(dir, "runs.json")); err == nil {
		m.runs = true
	} else if terr := tol(err); terr != nil {
		return terr
	}
	return nil
}

func verifyCacheInvariants(dir string, m *cacheModel) error {
	c, err := OpenCache(dir)
	if err != nil {
		return fmt.Errorf("reopen cache after faults: %w", err)
	}
	for _, key := range m.keys {
		res, ok, err := c.Get(key)
		if err != nil {
			return fmt.Errorf("Get(%s) on clean disk: %w", key, err)
		}
		idx, acked := m.acked[key]
		if acked && !ok {
			return fmt.Errorf("acknowledged cache entry %s lost", key)
		}
		if !ok {
			continue
		}
		// Present entries must deep-equal some version actually
		// written: the acked one, or (for the overwritten key) either
		// generation — never torn, never mixed.
		want := chaosResult(idx)
		if !acked {
			// Unacked writes may still have committed whole.
			for i := 0; i <= 10; i++ {
				if reflect.DeepEqual(res, chaosResult(i)) {
					want = chaosResult(i)
					break
				}
			}
		}
		if !reflect.DeepEqual(res, want) && !(key == m.keys[0] && reflect.DeepEqual(res, chaosResult(0))) {
			return fmt.Errorf("cache entry %s torn or wrong: got body %q", key, res.Body)
		}
	}
	if m.runs {
		rep := &RunReport{}
		data, err := faultfs.OS.ReadFile(filepath.Join(dir, "runs.json"))
		if err != nil {
			return fmt.Errorf("acknowledged runs.json lost: %w", err)
		}
		if err := json.Unmarshal(data, rep); err != nil || rep.Schema != RunsSchema || rep.Workers != 3 {
			return fmt.Errorf("acknowledged runs.json torn: %v (schema %q)", err, rep.Schema)
		}
	}
	return nil
}

// TestChaosCache is the CI chaos gate for the runner's durable
// artifacts (result cache + runs.json).
func TestChaosCache(t *testing.T) {
	opts := faultfs.OptionsFromEnv(300, t.Logf)
	opts.Horizon = 40
	root := t.TempDir()
	var (
		cur   *cacheModel
		dir   string
		runID int
	)
	err := faultfs.Explore(opts,
		func(seed int64, fsys faultfs.FS) error {
			runID++
			dir = filepath.Join(root, fmt.Sprintf("s%06d", runID))
			cur = &cacheModel{acked: map[string]int{}}
			return chaosCacheWorkload(fsys, dir, cur)
		},
		func(seed int64, crashed bool) error {
			return verifyCacheInvariants(dir, cur)
		})
	if err != nil {
		t.Fatal(err)
	}
}
