package runner

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"positlab/internal/arith"
)

// Config tunes one Registry.Run invocation.
type Config struct {
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Timeout bounds the whole run; 0 means no limit.
	Timeout time.Duration
	// Cache, when non-nil, is consulted before each job and updated
	// after each successful one.
	Cache *Cache
	// Options is passed to every job via Env.Options.
	Options any
	// KeyData is the value hashed (together with each experiment ID)
	// into cache keys. Nil means use Options. Drivers should pass a
	// canonicalized options value here so that equivalent option
	// spellings share cache entries.
	KeyData any
	// Instrument allocates a per-job arith.AtomicOpCounts and exposes
	// it via Env.Ops, so job reports carry operation counts.
	Instrument bool
	// Events, when non-nil, receives progress events. It is called
	// from worker goroutines; the callback must be safe for
	// concurrent use (Progress from this package is).
	Events func(Event)
}

// readyJob is one dispatchable job: its spec plus a snapshot of its
// dependencies' results, taken by the coordinator so workers never
// touch the shared results map.
type readyJob struct {
	spec Spec
	deps map[string]*Result
}

// jobDone carries one finished job from a worker to the coordinator.
type jobDone struct {
	id     string
	result *Result
	report JobReport
}

// Run executes the requested experiment IDs plus their transitive
// dependencies. Independent jobs run concurrently on a worker pool;
// dependents start only after their deps succeed. A failing job fails
// its dependents but does not stop unrelated jobs. The results map
// holds an entry per successful job; per-job errors are surfaced in
// the report, and the returned error covers run-level problems only
// (unknown IDs, dependency cycles, context cancellation).
func (r *Registry) Run(ctx context.Context, ids []string, cfg Config) (map[string]*Result, *RunReport, error) {
	specs, err := r.resolve(ids)
	if err != nil {
		return nil, nil, err
	}
	order, err := topoSort(specs)
	if err != nil {
		return nil, nil, err
	}
	workers := cfg.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}

	rep := &RunReport{Schema: RunsSchema, Workers: workers, Started: time.Now()}
	emit := func(e Event) {
		if cfg.Events != nil {
			cfg.Events(e)
		}
	}

	results := map[string]*Result{}
	reports := map[string]*JobReport{}

	// Dependency bookkeeping, owned by the coordinator loop below.
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, s := range specs {
		for _, d := range s.Deps {
			if _, in := specs[d]; !in {
				continue
			}
			indeg[s.ID]++
			dependents[d] = append(dependents[d], s.ID)
		}
	}

	readyCh := make(chan readyJob, len(order))
	doneCh := make(chan jobDone)
	for i := 0; i < workers; i++ {
		go func() {
			for j := range readyCh {
				doneCh <- runJob(ctx, j, cfg, emit)
			}
		}()
	}

	// enqueue snapshots the job's dep results (the coordinator owns
	// the results map; workers only see these per-job copies).
	enqueue := func(s Spec) {
		deps := map[string]*Result{}
		for _, d := range s.Deps {
			if res, ok := results[d]; ok {
				deps[d] = res
			}
		}
		readyCh <- readyJob{spec: s, deps: deps}
	}

	// Seed initially-ready jobs in topological order.
	for _, id := range order {
		if indeg[id] == 0 {
			enqueue(specs[id])
		}
	}

	finalized := 0
	var finalize func(d jobDone)
	finalize = func(d jobDone) {
		finalized++
		reports[d.id] = &d.report
		if d.report.Err == "" {
			results[d.id] = d.result
		}
		for _, dep := range dependents[d.id] {
			indeg[dep]--
			if indeg[dep] > 0 {
				continue
			}
			if d.report.Err != "" {
				// Cascade: fail the dependent without running it.
				skip := jobDone{id: dep, report: JobReport{
					ID: dep, Title: specs[dep].Title,
					Err: fmt.Sprintf("skipped: dependency %s failed: %s", d.id, d.report.Err),
				}}
				emit(Event{Kind: JobFailed, ID: dep, Title: specs[dep].Title, Err: skip.report.Err})
				finalize(skip)
				continue
			}
			enqueue(specs[dep])
		}
	}
	for finalized < len(order) {
		finalize(<-doneCh)
	}
	close(readyCh)

	rep.Finished = time.Now()
	rep.TotalWallMS = float64(rep.Finished.Sub(rep.Started)) / float64(time.Millisecond)
	for _, id := range order {
		if jr := reports[id]; jr != nil {
			rep.Jobs = append(rep.Jobs, *jr)
		}
	}
	if err := ctx.Err(); err != nil {
		return results, rep, err
	}
	return results, rep, nil
}

// runJob executes one spec: cache lookup, run with panic recovery,
// cache store, events, and report assembly.
func runJob(ctx context.Context, j readyJob, cfg Config, emit func(Event)) (d jobDone) {
	s := j.spec
	jr := JobReport{ID: s.ID, Title: s.Title, Start: time.Now()}
	defer func() {
		jr.End = time.Now()
		jr.WallMS = float64(jr.End.Sub(jr.Start)) / float64(time.Millisecond)
		d = jobDone{id: s.ID, result: d.result, report: jr}
		kind, elapsed := JobDone, jr.End.Sub(jr.Start)
		switch {
		case jr.Err != "":
			kind = JobFailed
		case jr.Cached:
			kind = JobCached
		}
		emit(Event{Kind: kind, ID: s.ID, Title: s.Title, Elapsed: elapsed, Err: jr.Err})
	}()

	if err := ctx.Err(); err != nil {
		jr.Err = "canceled: " + err.Error()
		return
	}
	emit(Event{Kind: JobStart, ID: s.ID, Title: s.Title})

	keyData := cfg.KeyData
	if keyData == nil {
		keyData = cfg.Options
	}
	var key string
	if cfg.Cache != nil {
		k, err := cfg.Cache.Key(s.ID, keyData)
		if err != nil {
			jr.Err = "cache key: " + err.Error()
			return
		}
		key = k
		if res, ok, err := cfg.Cache.Get(key); err != nil {
			jr.Err = "cache read: " + err.Error()
			return
		} else if ok {
			jr.Cached = true
			jr.Metrics = res.Metrics
			d.result = res
			return
		}
	}

	env := &Env{Options: cfg.Options, Deps: j.deps}
	if cfg.Instrument {
		env.Ops = &arith.AtomicOpCounts{}
	}

	res, err := safeRun(ctx, s, env)
	if err != nil {
		jr.Err = err.Error()
		return
	}
	if env.Ops != nil {
		ops := env.Ops.Snapshot()
		jr.Ops = &ops
	}
	jr.Metrics = res.Metrics
	if cfg.Cache != nil {
		if err := cfg.Cache.Put(key, res); err != nil {
			jr.Err = "cache write: " + err.Error()
			return
		}
	}
	d.result = res
	return
}

// safeRun invokes the spec, converting a panic (e.g. an unknown
// matrix name deep in suite generation) into a job error so one bad
// job cannot take down the whole run.
func safeRun(ctx context.Context, s Spec, env *Env) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	res, err = s.Run(ctx, env)
	if err == nil && res == nil {
		err = fmt.Errorf("spec %s returned neither result nor error", s.ID)
	}
	return
}

// resolve maps the requested IDs plus their transitive deps to specs.
func (r *Registry) resolve(ids []string) (map[string]Spec, error) {
	specs := map[string]Spec{}
	var add func(id, via string) error
	add = func(id, via string) error {
		if _, seen := specs[id]; seen {
			return nil
		}
		s, ok := r.Lookup(id)
		if !ok {
			if via != "" {
				return fmt.Errorf("runner: unknown experiment %q (dependency of %s)", id, via)
			}
			return fmt.Errorf("runner: unknown experiment %q", id)
		}
		specs[id] = s
		for _, d := range s.Deps {
			if err := add(d, id); err != nil {
				return err
			}
		}
		return nil
	}
	for _, id := range ids {
		if err := add(id, ""); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// topoSort orders the selected specs so every dep precedes its
// dependents, breaking ties by ID for determinism, and reports cycles.
func topoSort(specs map[string]Spec) ([]string, error) {
	indeg := map[string]int{}
	dependents := map[string][]string{}
	var ids []string
	for id := range specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, d := range specs[id].Deps {
			if _, in := specs[d]; in {
				indeg[id]++
				dependents[d] = append(dependents[d], id)
			}
		}
	}
	var ready, order []string
	for _, id := range ids {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var unlocked []string
		for _, dep := range dependents[id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				unlocked = append(unlocked, dep)
			}
		}
		sort.Strings(unlocked)
		ready = append(ready, unlocked...)
	}
	if len(order) != len(ids) {
		var stuck []string
		for _, id := range ids {
			if indeg[id] > 0 {
				stuck = append(stuck, id)
			}
		}
		return nil, fmt.Errorf("runner: dependency cycle among %v", stuck)
	}
	return order, nil
}
