package runner

import (
	"context"
	"errors"
	"testing"
)

func TestExecutorComputesThenHitsCache(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	mustRegister(t, reg, Spec{
		ID:    "exec-a",
		Title: "a",
		Run: func(ctx context.Context, env *Env) (*Result, error) {
			calls++
			return &Result{Body: "body-a"}, nil
		},
	})
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	ex := &Executor{Registry: reg, Config: Config{Cache: cache}}

	res, jr, err := ex.Execute(context.Background(), "exec-a")
	if err != nil {
		t.Fatalf("first Execute: %v", err)
	}
	if res.Body != "body-a" {
		t.Fatalf("Body = %q, want body-a", res.Body)
	}
	if jr == nil || jr.Cached {
		t.Fatalf("first run: report %+v, want uncached", jr)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}

	res, jr, err = ex.Execute(context.Background(), "exec-a")
	if err != nil {
		t.Fatalf("second Execute: %v", err)
	}
	if res.Body != "body-a" {
		t.Fatalf("cached Body = %q, want body-a", res.Body)
	}
	if jr == nil || !jr.Cached {
		t.Fatalf("second run: report %+v, want cached", jr)
	}
	if calls != 1 {
		t.Fatalf("calls after cache hit = %d, want 1", calls)
	}
}

func TestExecutorUnknownID(t *testing.T) {
	ex := &Executor{Registry: NewRegistry()}
	if _, _, err := ex.Execute(context.Background(), "no-such-spec"); err == nil {
		t.Fatal("Execute(unknown) = nil error")
	}
}

func TestExecutorJobError(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("boom")
	mustRegister(t, reg, Spec{
		ID:    "exec-fail",
		Title: "fails",
		Run: func(ctx context.Context, env *Env) (*Result, error) {
			return nil, boom
		},
	})
	ex := &Executor{Registry: reg}
	res, jr, err := ex.Execute(context.Background(), "exec-fail")
	if err == nil {
		t.Fatal("Execute(failing spec) = nil error")
	}
	if res != nil {
		t.Fatalf("result = %+v, want nil", res)
	}
	if jr == nil || jr.Err == "" {
		t.Fatalf("job report %+v, want recorded error", jr)
	}
}

func TestExecutorCanceledContext(t *testing.T) {
	reg := NewRegistry()
	mustRegister(t, reg, Spec{
		ID:    "exec-ctx",
		Title: "ctx",
		Run: func(ctx context.Context, env *Env) (*Result, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return &Result{Body: "ok"}, nil
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Executor{Registry: reg}
	if _, _, err := ex.Execute(ctx, "exec-ctx"); err == nil {
		t.Fatal("Execute(canceled ctx) = nil error")
	}
}

func mustRegister(t *testing.T, reg *Registry, s Spec) {
	t.Helper()
	if err := reg.Register(s); err != nil {
		t.Fatalf("Register(%s): %v", s.ID, err)
	}
}
