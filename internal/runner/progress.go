package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"positlab/internal/arith"
	"positlab/internal/faultfs"
)

// RunsSchema identifies the runs.json layout.
const RunsSchema = "positlab-runs/v1"

// EventKind classifies a progress event.
type EventKind int

const (
	// JobStart fires when a worker picks the job up (after the cache
	// miss check has not yet happened — cached jobs also start).
	JobStart EventKind = iota
	// JobDone fires when a job computed successfully.
	JobDone
	// JobCached fires when a job was satisfied from the cache.
	JobCached
	// JobFailed fires when a job errored, panicked, was canceled, or
	// was skipped because a dependency failed.
	JobFailed
)

// Event is one scheduler progress notification.
type Event struct {
	Kind    EventKind
	ID      string
	Title   string
	Elapsed time.Duration
	Err     string
}

// JobReport is the per-job entry of the final run report.
type JobReport struct {
	ID     string    `json:"id"`
	Title  string    `json:"title"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	WallMS float64   `json:"wall_ms"`
	// Cached marks a job satisfied from the on-disk cache (no solver
	// work performed).
	Cached bool `json:"cached,omitempty"`
	// Err is empty for successful jobs; "skipped: ..." for jobs whose
	// dependency failed, "canceled: ..." for jobs hit by cancellation.
	Err string `json:"err,omitempty"`
	// Metrics are experiment-reported scalars (e.g. total solver
	// iterations).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Ops counts the arithmetic performed by this job when the run
	// was instrumented (see arith.AtomicOpCounts).
	Ops *arith.OpCounts `json:"ops,omitempty"`
}

// RunReport is the machine-readable summary written as runs.json.
type RunReport struct {
	Schema      string      `json:"schema"`
	Started     time.Time   `json:"started"`
	Finished    time.Time   `json:"finished"`
	Workers     int         `json:"workers"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Jobs        []JobReport `json:"jobs"`
}

// Counts tallies job outcomes.
func (r *RunReport) Counts() (ok, cached, failed int) {
	for _, j := range r.Jobs {
		switch {
		case j.Err != "":
			failed++
		case j.Cached:
			cached++
		default:
			ok++
		}
	}
	return
}

// Summary renders the final one-line human summary.
func (r *RunReport) Summary() string {
	ok, cached, failed := r.Counts()
	s := fmt.Sprintf("%d jobs: %d computed, %d cached, %d failed in %v on %d workers",
		len(r.Jobs), ok, cached, failed,
		time.Duration(r.TotalWallMS*float64(time.Millisecond)).Round(time.Millisecond),
		r.Workers)
	return s
}

// JSON encodes the report for runs.json.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", " ")
}

// WriteFile writes runs.json atomically next to its final path:
// write to a temp file, fsync, then rename, so a crash between the
// write and the rename cannot leave a torn (but plausibly complete)
// report behind.
func (r *RunReport) WriteFile(path string) error {
	return r.WriteFileFS(faultfs.OS, path)
}

// WriteFileFS is WriteFile over an explicit filesystem seam.
func (r *RunReport) WriteFileFS(fsys faultfs.FS, path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	return faultfs.WriteFileAtomic(faultfs.OrOS(fsys), path, append(data, '\n'))
}

// Progress returns an Events callback that renders a live per-job
// summary line to w ("[done/total] state id (elapsed)"). It is safe
// for concurrent use by scheduler workers.
func Progress(w io.Writer, total int) func(Event) {
	var mu sync.Mutex
	done := 0
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.Kind {
		// Progress output is advisory: a broken pipe must not fail
		// the run, so write errors are deliberately dropped.
		case JobStart:
			_, _ = fmt.Fprintf(w, "[%2d/%d] start  %-10s %s\n", done, total, e.ID, e.Title)
			return
		case JobDone:
			done++
			_, _ = fmt.Fprintf(w, "[%2d/%d] done   %-10s (%v)\n", done, total, e.ID, e.Elapsed.Round(time.Millisecond))
		case JobCached:
			done++
			_, _ = fmt.Fprintf(w, "[%2d/%d] cached %-10s\n", done, total, e.ID)
		case JobFailed:
			done++
			_, _ = fmt.Fprintf(w, "[%2d/%d] FAILED %-10s %s\n", done, total, e.ID, e.Err)
		}
	}
}
