// Package runner is the experiment-orchestration subsystem: a typed
// registry of experiment specs, a dependency-aware worker-pool
// scheduler, a content-addressed on-disk result cache, and a
// progress/metrics layer that renders live events and a final
// machine-readable report.
//
// Experiments register themselves (typically from init functions) into
// the Default registry:
//
//	runner.Register(runner.Spec{
//		ID:    "fig6",
//		Title: "CG iterations, unscaled",
//		Run:   func(ctx context.Context, env *runner.Env) (*runner.Result, error) { ... },
//	})
//
// and a driver executes any subset with Registry.Run, which
// topologically orders specs by Deps, fans independent jobs out across
// a worker pool, consults the cache, and reports per-job wall time and
// operation counts.
package runner

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"positlab/internal/arith"
)

// Spec is one registered experiment.
type Spec struct {
	// ID is the unique experiment identifier ("fig6", "table1", ...).
	ID string
	// Title is the human-readable one-line description.
	Title string
	// Deps lists experiment IDs that must complete before this one
	// starts. Declared deps that are selected for a run are always
	// scheduled first; a failed dep fails its dependents without
	// running them.
	Deps []string
	// Run computes the experiment. Its final rendered text and
	// artifacts go into the Result; solver work should respect ctx
	// cancellation where practical.
	Run func(ctx context.Context, env *Env) (*Result, error)
}

// Env is the per-job environment handed to Spec.Run.
type Env struct {
	// Options is the run-wide option value supplied by the driver
	// (for this repo, an experiments.Options). Nil when none was set.
	Options any
	// Deps holds the results of this spec's declared dependencies
	// that were part of the same run, keyed by experiment ID.
	Deps map[string]*Result
	// Ops, when non-nil, is the job's operation counter; experiments
	// thread it through arith.InstrumentAtomic so runs.json can report
	// per-job arithmetic work. Nil when instrumentation is off.
	Ops *arith.AtomicOpCounts
}

// Artifact kinds, matching the CLI's output sinks.
const (
	CSV = "csv"
	SVG = "svg"
)

// Artifact is one file-shaped output of an experiment (a CSV of the
// rows or an SVG rendering).
type Artifact struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Content string `json:"content"`
}

// Result is the cacheable outcome of one experiment job.
type Result struct {
	// Body is the rendered text table/figure, exactly as the serial
	// CLI printed it.
	Body string `json:"body"`
	// Artifacts are the experiment's CSV/SVG outputs; on a cache hit
	// they are written back out without recomputing any rows.
	Artifacts []Artifact `json:"artifacts,omitempty"`
	// Metrics are experiment-reported scalars (solver iteration
	// totals, row counts) surfaced into the run report.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Registry holds experiment specs in registration order.
type Registry struct {
	mu    sync.Mutex
	specs map[string]Spec
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: map[string]Spec{}}
}

// Default is the process-wide registry that package experiments
// registers into.
var Default = NewRegistry()

// Register adds a spec. It rejects empty or duplicate IDs and specs
// without a Run function.
func (r *Registry) Register(s Spec) error {
	if s.ID == "" {
		return fmt.Errorf("runner: spec with empty ID")
	}
	if s.Run == nil {
		return fmt.Errorf("runner: spec %q has no Run function", s.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.ID]; dup {
		return fmt.Errorf("runner: duplicate spec %q", s.ID)
	}
	r.specs[s.ID] = s
	r.order = append(r.order, s.ID)
	return nil
}

// Register adds a spec to the Default registry and panics on misuse
// (duplicate or empty ID) — registration happens at init time, where
// a panic is the useful failure mode.
func Register(s Spec) {
	if err := Default.Register(s); err != nil {
		panic(err) //lint:allow panics init-time registration; a panic is the documented failure mode
	}
}

// Lookup returns the spec registered under id.
func (r *Registry) Lookup(id string) (Spec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.specs[id]
	return s, ok
}

// IDs returns all registered IDs in registration order.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// SortedIDs returns all registered IDs sorted lexically.
func (r *Registry) SortedIDs() []string {
	ids := r.IDs()
	sort.Strings(ids)
	return ids
}
