package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// okSpec returns a spec whose Run records its ID into order (under mu)
// and returns a body derived from the ID.
func okSpec(id string, deps []string, mu *sync.Mutex, order *[]string) Spec {
	return Spec{
		ID:    id,
		Title: "test " + id,
		Deps:  deps,
		Run: func(ctx context.Context, env *Env) (*Result, error) {
			mu.Lock()
			*order = append(*order, id)
			mu.Unlock()
			return &Result{Body: "body-" + id}, nil
		},
	}
}

func indexOf(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func TestRegistryRejectsBadSpecs(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Spec{ID: "", Run: func(context.Context, *Env) (*Result, error) { return nil, nil }}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := r.Register(Spec{ID: "x"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	if err := r.Register(Spec{ID: "x", Run: func(context.Context, *Env) (*Result, error) { return &Result{}, nil }}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Spec{ID: "x", Run: func(context.Context, *Env) (*Result, error) { return &Result{}, nil }}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if got := r.IDs(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("IDs = %v", got)
	}
}

func TestSchedulerRespectsDeps(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var order []string
	// Diamond: d depends on b and c, which both depend on a; e is
	// independent.
	r.Register(okSpec("a", nil, &mu, &order))
	r.Register(okSpec("b", []string{"a"}, &mu, &order))
	r.Register(okSpec("c", []string{"a"}, &mu, &order))
	r.Register(okSpec("d", []string{"b", "c"}, &mu, &order))
	r.Register(okSpec("e", nil, &mu, &order))

	results, rep, err := r.Run(context.Background(), []string{"d", "e"}, Config{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// d and its transitive deps ran; e too.
	if len(order) != 5 {
		t.Fatalf("ran %v, want 5 jobs", order)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if indexOf(order, pair[0]) > indexOf(order, pair[1]) {
			t.Errorf("%s ran after %s: %v", pair[0], pair[1], order)
		}
	}
	if results["d"] == nil || results["d"].Body != "body-d" {
		t.Fatalf("missing result for d: %+v", results["d"])
	}
	if ok, cached, failed := rep.Counts(); ok != 5 || cached != 0 || failed != 0 {
		t.Fatalf("counts = %d/%d/%d", ok, cached, failed)
	}
}

func TestSchedulerPassesDepResults(t *testing.T) {
	r := NewRegistry()
	r.Register(Spec{ID: "base", Run: func(ctx context.Context, env *Env) (*Result, error) {
		return &Result{Body: "base-body"}, nil
	}})
	r.Register(Spec{ID: "top", Deps: []string{"base"}, Run: func(ctx context.Context, env *Env) (*Result, error) {
		dep := env.Deps["base"]
		if dep == nil {
			return nil, errors.New("dep result missing")
		}
		return &Result{Body: "saw " + dep.Body}, nil
	}})
	results, _, err := r.Run(context.Background(), []string{"top"}, Config{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results["top"].Body != "saw base-body" {
		t.Fatalf("top body = %q", results["top"].Body)
	}
}

func TestSchedulerRunsIndependentJobsConcurrently(t *testing.T) {
	r := NewRegistry()
	const n = 4
	gate := make(chan struct{})
	var arrived sync.WaitGroup
	arrived.Add(n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j%d", i)
		r.Register(Spec{ID: id, Run: func(ctx context.Context, env *Env) (*Result, error) {
			arrived.Done()
			// Block until every job is in flight at once; a serial
			// scheduler would deadlock here (caught by the timeout).
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{Body: id}, nil
		}})
	}
	go func() {
		arrived.Wait()
		close(gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, _, err := r.Run(ctx, r.IDs(), Config{Jobs: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results", len(results))
	}
}

func TestSchedulerFailureCascadesToDependentsOnly(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var order []string
	r.Register(Spec{ID: "bad", Run: func(ctx context.Context, env *Env) (*Result, error) {
		return nil, errors.New("boom")
	}})
	r.Register(okSpec("child", []string{"bad"}, &mu, &order))
	r.Register(okSpec("grandchild", []string{"child"}, &mu, &order))
	r.Register(okSpec("bystander", nil, &mu, &order))

	results, rep, err := r.Run(context.Background(), []string{"grandchild", "bystander"}, Config{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "bystander" {
		t.Fatalf("ran %v, want only bystander", order)
	}
	if results["bystander"] == nil {
		t.Fatal("bystander result missing")
	}
	byID := map[string]JobReport{}
	for _, j := range rep.Jobs {
		byID[j.ID] = j
	}
	if !strings.Contains(byID["bad"].Err, "boom") {
		t.Errorf("bad.Err = %q", byID["bad"].Err)
	}
	for _, id := range []string{"child", "grandchild"} {
		if !strings.Contains(byID[id].Err, "skipped: dependency") {
			t.Errorf("%s.Err = %q, want skip marker", id, byID[id].Err)
		}
	}
}

func TestSchedulerPanicBecomesJobError(t *testing.T) {
	r := NewRegistry()
	r.Register(Spec{ID: "panics", Run: func(ctx context.Context, env *Env) (*Result, error) {
		panic("unknown matrix")
	}})
	var mu sync.Mutex
	var order []string
	r.Register(okSpec("fine", nil, &mu, &order))
	results, rep, err := r.Run(context.Background(), []string{"panics", "fine"}, Config{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results["fine"] == nil {
		t.Fatal("healthy job lost to sibling panic")
	}
	var got string
	for _, j := range rep.Jobs {
		if j.ID == "panics" {
			got = j.Err
		}
	}
	if !strings.Contains(got, "panic: unknown matrix") {
		t.Fatalf("panic err = %q", got)
	}
}

func TestSchedulerCancellationStopsInFlightAndPendingJobs(t *testing.T) {
	r := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	r.Register(Spec{ID: "inflight", Run: func(ctx context.Context, env *Env) (*Result, error) {
		close(started)
		<-ctx.Done() // an in-flight job observing cancellation
		return nil, ctx.Err()
	}})
	r.Register(Spec{ID: "after", Deps: []string{"inflight"}, Run: func(ctx context.Context, env *Env) (*Result, error) {
		return &Result{Body: "should never run"}, nil
	}})
	go func() {
		<-started
		cancel()
	}()
	results, rep, err := r.Run(ctx, []string{"after"}, Config{Jobs: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 0 {
		t.Fatalf("results = %v, want none", results)
	}
	if ok, _, failed := rep.Counts(); ok != 0 || failed != 2 {
		t.Fatalf("counts ok=%d failed=%d, want 0/2", ok, failed)
	}
}

func TestSchedulerTimeout(t *testing.T) {
	r := NewRegistry()
	r.Register(Spec{ID: "slow", Run: func(ctx context.Context, env *Env) (*Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return &Result{Body: "too late"}, nil
		}
	}})
	_, _, err := r.Run(context.Background(), []string{"slow"}, Config{Jobs: 1, Timeout: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestSchedulerErrorsOnUnknownIDAndCycle(t *testing.T) {
	r := NewRegistry()
	r.Register(Spec{ID: "a", Deps: []string{"b"}, Run: func(context.Context, *Env) (*Result, error) { return &Result{}, nil }})
	if _, _, err := r.Run(context.Background(), []string{"nope"}, Config{}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown id err = %v", err)
	}
	if _, _, err := r.Run(context.Background(), []string{"a"}, Config{}); err == nil || !strings.Contains(err.Error(), `unknown experiment "b"`) {
		t.Fatalf("unknown dep err = %v", err)
	}
	r2 := NewRegistry()
	r2.Register(Spec{ID: "x", Deps: []string{"y"}, Run: func(context.Context, *Env) (*Result, error) { return &Result{}, nil }})
	r2.Register(Spec{ID: "y", Deps: []string{"x"}, Run: func(context.Context, *Env) (*Result, error) { return &Result{}, nil }})
	if _, _, err := r2.Run(context.Background(), []string{"x"}, Config{}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestCacheRoundTripAndMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := c.Key("fig6", map[string]any{"matrices": []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key, "fig6-") {
		t.Fatalf("key = %q, want id prefix", key)
	}
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("expected clean miss, got ok=%v err=%v", ok, err)
	}
	want := &Result{
		Body:      "hello",
		Artifacts: []Artifact{{Name: "fig6.csv", Kind: CSV, Content: "a,b\n"}},
		Metrics:   map[string]float64{"iters": 42},
	}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if got.Body != want.Body || len(got.Artifacts) != 1 || got.Artifacts[0].Content != "a,b\n" || got.Metrics["iters"] != 42 {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// Different options or ID must hash differently.
	k2, _ := c.Key("fig6", map[string]any{"matrices": []string{"a"}})
	k3, _ := c.Key("fig7", map[string]any{"matrices": []string{"a", "b"}})
	if k2 == key || k3 == key {
		t.Fatal("distinct inputs collided")
	}

	// A corrupted entry degrades to a miss, not an error.
	if err := os.WriteFile(c.path(key), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("corrupt entry: ok=%v err=%v, want miss", ok, err)
	}
}

func TestSchedulerCacheHitSkipsWork(t *testing.T) {
	dir := t.TempDir()
	newReg := func(runs *int32, mu *sync.Mutex) *Registry {
		r := NewRegistry()
		r.Register(Spec{ID: "exp", Title: "cached experiment", Run: func(ctx context.Context, env *Env) (*Result, error) {
			mu.Lock()
			*runs++
			mu.Unlock()
			return &Result{
				Body:      "expensive-body",
				Artifacts: []Artifact{{Name: "exp.csv", Kind: CSV, Content: "r1\nr2\n"}},
			}, nil
		}})
		return r
	}
	var mu sync.Mutex
	var runs int32
	r := newReg(&runs, &mu)
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Jobs: 2, Cache: cache, Options: "opts-v1"}

	cold, rep1, err := r.Run(context.Background(), []string{"exp"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 || rep1.Jobs[0].Cached {
		t.Fatalf("cold run: runs=%d cached=%v", runs, rep1.Jobs[0].Cached)
	}

	// Fresh registry simulates a new process; the cache must satisfy
	// the job without invoking Run.
	r2 := newReg(&runs, &mu)
	warm, rep2, err := r2.Run(context.Background(), []string{"exp"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("warm run recomputed: runs=%d", runs)
	}
	if !rep2.Jobs[0].Cached {
		t.Fatal("warm run not marked cached")
	}
	if warm["exp"].Body != cold["exp"].Body || warm["exp"].Artifacts[0].Content != cold["exp"].Artifacts[0].Content {
		t.Fatal("cached result differs from cold result")
	}

	// Changing the option value must miss.
	cfg.Options = "opts-v2"
	if _, _, err := newReg(&runs, &mu).Run(context.Background(), []string{"exp"}, cfg); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("changed options should recompute, runs=%d", runs)
	}
}

func TestProgressRendersEvents(t *testing.T) {
	var sb strings.Builder
	p := Progress(&sb, 3)
	p(Event{Kind: JobStart, ID: "fig6", Title: "CG"})
	p(Event{Kind: JobDone, ID: "fig6", Elapsed: 1500 * time.Millisecond})
	p(Event{Kind: JobCached, ID: "fig7"})
	p(Event{Kind: JobFailed, ID: "fig8", Err: "boom"})
	out := sb.String()
	for _, want := range []string{"start  fig6", "done   fig6", "(1.5s)", "cached fig7", "FAILED fig8", "[ 3/3]"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReportJSONAndSummary(t *testing.T) {
	rep := &RunReport{
		Schema:      RunsSchema,
		Workers:     4,
		TotalWallMS: 1234,
		Jobs: []JobReport{
			{ID: "a", WallMS: 10},
			{ID: "b", Cached: true},
			{ID: "c", Err: "boom"},
		},
	}
	if ok, cached, failed := rep.Counts(); ok != 1 || cached != 1 || failed != 1 {
		t.Fatalf("counts = %d/%d/%d", ok, cached, failed)
	}
	s := rep.Summary()
	if !strings.Contains(s, "3 jobs: 1 computed, 1 cached, 1 failed") {
		t.Fatalf("summary = %q", s)
	}
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), RunsSchema) {
		t.Fatal("runs.json missing schema marker")
	}
}
