// Package fpcore implements the exact significand pipelines shared by
// the posit and minifloat packages: magnitude add/sub/mul/div/sqrt on
// 1.63 fixed-point significands, computed in 128-bit integer arithmetic
// with a sticky bit for everything below, so each format needs to round
// exactly once.
package fpcore

import (
	"math"
	"math/bits"
)

// Mag is a positive magnitude: value = (Sig / 2^63) * 2^Scale with Sig
// in [2^63, 2^64).
type Mag struct {
	Scale int
	Sig   uint64
}

// Normalize builds a Mag from an arbitrary nonzero significand whose
// top set bit may be anywhere, interpreting value = sig * 2^(scale-63).
func Normalize(scale int, sig uint64) Mag {
	lz := bits.LeadingZeros64(sig)
	return Mag{Scale: scale - lz, Sig: sig << uint(lz)}
}

// Add returns the exact a+b as a truncated Mag plus sticky.
func Add(a, b Mag) (Mag, bool) {
	if a.Scale < b.Scale {
		a, b = b, a
	}
	d := uint(a.Scale - b.Scale)
	bhi, blo, lost := shr128(b.Sig, 0, d)

	lo := blo
	hi, carryHi := bits.Add64(a.Sig, bhi, 0)
	scale := a.Scale
	if carryHi != 0 {
		// Sum reached [2, 4): renormalize right by one.
		if lo&1 != 0 {
			lost = true
		}
		lo = lo>>1 | hi<<63
		hi = hi>>1 | 1<<63
		scale++
	}
	if lo != 0 {
		lost = true
	}
	return Mag{Scale: scale, Sig: hi}, lost
}

// Sub returns the exact |a-b| as a truncated Mag plus sticky. zero
// reports exact cancellation; swapped reports that b was the larger
// magnitude (the result's sign follows b).
func Sub(a, b Mag) (r Mag, sticky, zero, swapped bool) {
	if a.Scale < b.Scale || (a.Scale == b.Scale && a.Sig < b.Sig) {
		a, b = b, a
		swapped = true
	}
	if a.Scale == b.Scale && a.Sig == b.Sig {
		return Mag{}, false, true, false
	}
	d := uint(a.Scale - b.Scale)
	bhi, blo, lost := shr128(b.Sig, 0, d)
	if lost {
		// The true subtrahend is (b128 + tail) with 0 < tail < 1 ulp:
		// borrow one ulp so the truncated difference plus the sticky
		// tail brackets the exact value from below.
		var carry uint64
		blo, carry = bits.Add64(blo, 1, 0)
		bhi, _ = bits.Add64(bhi, 0, carry)
	}
	lo, borrowLo := bits.Sub64(0, blo, 0)
	hi, _ := bits.Sub64(a.Sig, bhi, borrowLo)

	// Normalize. Massive cancellation only happens when d <= 1, where
	// the difference is exact (lost requires d > 64).
	scale := a.Scale
	lz := leadingZeros128(hi, lo)
	if lz > 0 {
		hi, lo = shl128(hi, lo, uint(lz))
		scale -= lz
	}
	if lo != 0 {
		lost = true
	}
	return Mag{Scale: scale, Sig: hi}, lost, false, swapped
}

// Mul returns the exact a*b as a truncated Mag plus sticky.
func Mul(a, b Mag) (Mag, bool) {
	hi, lo := bits.Mul64(a.Sig, b.Sig) // in [2^126, 2^128)
	scale := a.Scale + b.Scale
	if hi&(1<<63) != 0 {
		return Mag{Scale: scale + 1, Sig: hi}, lo != 0
	}
	return Mag{Scale: scale, Sig: hi<<1 | lo>>63}, lo<<1 != 0
}

// Div returns the exact a/b as a truncated Mag plus sticky.
func Div(a, b Mag) (Mag, bool) {
	if a.Sig >= b.Sig {
		// Quotient in [1, 2): q = floor(sigA * 2^63 / sigB).
		q, r := bits.Div64(a.Sig>>1, a.Sig<<63, b.Sig)
		return Mag{Scale: a.Scale - b.Scale, Sig: q}, r != 0
	}
	// Quotient in (1/2, 1): q = floor(sigA * 2^64 / sigB).
	q, r := bits.Div64(a.Sig, 0, b.Sig)
	return Mag{Scale: a.Scale - b.Scale - 1, Sig: q}, r != 0
}

// Sqrt returns the exact square root of a as a truncated Mag plus
// sticky.
func Sqrt(a Mag) (Mag, bool) {
	// Fold the scale's parity into the mantissa so the remaining
	// exponent is even: X = m' * 2^126 with m' in [1, 4).
	var hi, lo uint64
	if a.Scale&1 != 0 {
		hi, lo = a.Sig, 0 // m' = 2m: X = sig << 64
	} else {
		hi, lo = a.Sig>>1, a.Sig<<63 // m' = m: X = sig << 63
	}
	rscale := a.Scale >> 1 // floor division (arithmetic shift)
	root, exact := isqrt128(hi, lo)
	return Mag{Scale: rscale, Sig: root}, !exact
}

// isqrt128 returns floor(sqrt(X)) for the 128-bit X = hi.lo, which must
// be at least 2^126 so the root is a normalized 1.63 significand, and
// whether the root is exact.
func isqrt128(hi, lo uint64) (root uint64, exact bool) {
	// Float estimate, then guarded integer Newton, then exact fixup.
	f := math.Ldexp(float64(hi), 64) + float64(lo)
	r := uint64(math.Sqrt(f))
	if r < 1<<63 {
		r = 1 << 63
	}
	for i := 0; i < 4; i++ {
		if hi >= r {
			break // X/r would overflow 64 bits; estimate far low
		}
		q, _ := bits.Div64(hi, lo, r)
		nr := r/2 + q/2 + (r&q)&1
		if nr == r {
			break
		}
		r = nr
	}
	// Exact correction: at most a few steps after Newton.
	for {
		phi, plo := bits.Mul64(r, r)
		if phi > hi || (phi == hi && plo > lo) {
			r--
			continue
		}
		// r^2 <= X; check (r+1)^2 > X.
		if r != math.MaxUint64 {
			qhi, qlo := bits.Mul64(r+1, r+1)
			if qhi < hi || (qhi == hi && qlo <= lo) {
				r++
				continue
			}
		}
		return r, phi == hi && plo == lo
	}
}

// --- 128-bit helpers ---

func shr128(hi, lo uint64, d uint) (rhi, rlo uint64, lost bool) {
	switch {
	case d == 0:
		return hi, lo, false
	case d < 64:
		lost = lo<<(64-d) != 0
		return hi >> d, hi<<(64-d) | lo>>d, lost
	case d == 64:
		return 0, hi, lo != 0
	case d < 128:
		lost = lo != 0 || hi<<(128-d) != 0
		return 0, hi >> (d - 64), lost
	default:
		return 0, 0, hi != 0 || lo != 0
	}
}

func shl128(hi, lo uint64, d uint) (rhi, rlo uint64) {
	switch {
	case d == 0:
		return hi, lo
	case d < 64:
		return hi<<d | lo>>(64-d), lo << d
	default:
		return lo << (d - 64), 0
	}
}

func leadingZeros128(hi, lo uint64) int {
	if hi != 0 {
		return bits.LeadingZeros64(hi)
	}
	return 64 + bits.LeadingZeros64(lo)
}
