package fpcore_test

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"positlab/internal/fpcore"
)

// magValue reconstructs value = Sig/2^63 * 2^Scale exactly.
func magValue(m fpcore.Mag) *big.Float {
	z := new(big.Float).SetPrec(512).SetUint64(m.Sig)
	return z.SetMantExp(z, m.Scale-63)
}

// checkTruncation verifies that (result, sticky) is the truncation of
// the exact value: result <= exact < result + 1 ulp, with sticky true
// iff strict.
func checkTruncation(t *testing.T, name string, exact *big.Float, r fpcore.Mag, sticky bool) {
	t.Helper()
	rv := magValue(r)
	cmp := rv.Cmp(exact)
	if cmp > 0 {
		t.Fatalf("%s: truncation %v exceeds exact %v", name, rv, exact)
	}
	if (cmp != 0) != sticky {
		t.Fatalf("%s: sticky=%v but truncation %s exact (r=%v exact=%v)",
			name, sticky, map[bool]string{true: "!=", false: "=="}[cmp != 0], rv, exact)
	}
	// Within one ulp: exact < rv + 2^(Scale-63).
	ulp := new(big.Float).SetPrec(512).SetMantExp(big.NewFloat(1), r.Scale-63)
	upper := new(big.Float).SetPrec(512).Add(rv, ulp)
	if exact.Cmp(upper) >= 0 {
		t.Fatalf("%s: exact %v >= truncation+ulp %v", name, exact, upper)
	}
}

func randMag(r *rand.Rand) fpcore.Mag {
	return fpcore.Mag{
		Scale: r.Intn(200) - 100,
		Sig:   r.Uint64() | 1<<63,
	}
}

func TestAddTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a, b := randMag(r), randMag(r)
		res, sticky := fpcore.Add(a, b)
		exact := new(big.Float).SetPrec(512).Add(magValue(a), magValue(b))
		checkTruncation(t, "Add", exact, res, sticky)
	}
}

func TestSubTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 5000; i++ {
		a, b := randMag(r), randMag(r)
		res, sticky, zero, swapped := fpcore.Sub(a, b)
		exact := new(big.Float).SetPrec(512).Sub(magValue(a), magValue(b))
		if zero {
			if exact.Sign() != 0 {
				t.Fatalf("Sub: reported zero, exact %v", exact)
			}
			continue
		}
		if swapped != (exact.Sign() < 0) {
			t.Fatalf("Sub: swapped=%v but exact sign %d", swapped, exact.Sign())
		}
		exact.Abs(exact)
		checkTruncation(t, "Sub", exact, res, sticky)
	}
}

func TestMulTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 5000; i++ {
		a, b := randMag(r), randMag(r)
		res, sticky := fpcore.Mul(a, b)
		exact := new(big.Float).SetPrec(512).Mul(magValue(a), magValue(b))
		checkTruncation(t, "Mul", exact, res, sticky)
	}
}

func TestDivTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for i := 0; i < 5000; i++ {
		a, b := randMag(r), randMag(r)
		res, sticky := fpcore.Div(a, b)
		// Compare via multiplication to stay exact: res <= a/b
		// iff res*b <= a.
		rv := magValue(res)
		lhs := new(big.Float).SetPrec(512).Mul(rv, magValue(b))
		cmp := lhs.Cmp(magValue(a))
		if cmp > 0 {
			t.Fatalf("Div: truncation exceeds quotient")
		}
		if (cmp != 0) != sticky {
			t.Fatalf("Div: sticky=%v, cmp=%d", sticky, cmp)
		}
		// (res + ulp)*b > a.
		ulp := new(big.Float).SetPrec(512).SetMantExp(big.NewFloat(1), res.Scale-63)
		upper := new(big.Float).SetPrec(512).Add(rv, ulp)
		upper.Mul(upper, magValue(b))
		if upper.Cmp(magValue(a)) <= 0 {
			t.Fatalf("Div: quotient not within one ulp")
		}
	}
}

func TestSqrtTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	for i := 0; i < 5000; i++ {
		a := randMag(r)
		res, sticky := fpcore.Sqrt(a)
		rv := magValue(res)
		sq := new(big.Float).SetPrec(512).Mul(rv, rv)
		cmp := sq.Cmp(magValue(a))
		if cmp > 0 {
			t.Fatalf("Sqrt: truncation squared exceeds input")
		}
		if (cmp != 0) != sticky {
			t.Fatalf("Sqrt: sticky=%v, cmp=%d (a=%+v)", sticky, cmp, a)
		}
		ulp := new(big.Float).SetPrec(512).SetMantExp(big.NewFloat(1), res.Scale-63)
		upper := new(big.Float).SetPrec(512).Add(rv, ulp)
		upper.Mul(upper, upper)
		if upper.Cmp(magValue(a)) <= 0 {
			t.Fatalf("Sqrt: root not within one ulp")
		}
	}
}

func TestNormalize(t *testing.T) {
	m := fpcore.Normalize(10, 1) // value = 1 * 2^(10-63)
	if m.Sig != 1<<63 || m.Scale != 10-63 {
		t.Fatalf("Normalize(10, 1) = %+v", m)
	}
	m = fpcore.Normalize(0, 1<<63)
	if m.Sig != 1<<63 || m.Scale != 0 {
		t.Fatalf("Normalize(0, 2^63) = %+v", m)
	}
	// Known sqrt: sqrt(4) = 2.
	r, sticky := fpcore.Sqrt(fpcore.Mag{Scale: 2, Sig: 1 << 63})
	if sticky || r.Scale != 1 || r.Sig != 1<<63 {
		t.Fatalf("sqrt(4) = %+v sticky=%v", r, sticky)
	}
}

// Property: Add is commutative at the representation level.
func TestPropAddCommutative(t *testing.T) {
	f := func(s1, s2 uint64, e1, e2 int16) bool {
		a := fpcore.Mag{Scale: int(e1 % 200), Sig: s1 | 1<<63}
		b := fpcore.Mag{Scale: int(e2 % 200), Sig: s2 | 1<<63}
		r1, st1 := fpcore.Add(a, b)
		r2, st2 := fpcore.Add(b, a)
		return r1 == r2 && st1 == st2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Mul of exact powers of two is exact.
func TestMulPowersOfTwoExact(t *testing.T) {
	for _, e1 := range []int{-50, -1, 0, 1, 63} {
		for _, e2 := range []int{-10, 0, 7} {
			a := fpcore.Mag{Scale: e1, Sig: 1 << 63}
			b := fpcore.Mag{Scale: e2, Sig: 1 << 63}
			r, sticky := fpcore.Mul(a, b)
			if sticky || r.Scale != e1+e2 || r.Sig != 1<<63 {
				t.Fatalf("2^%d * 2^%d = %+v sticky=%v", e1, e2, r, sticky)
			}
		}
	}
}

func TestDivSelfIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 200; i++ {
		a := randMag(r)
		res, sticky := fpcore.Div(a, a)
		if sticky || res.Scale != 0 || res.Sig != 1<<63 {
			t.Fatalf("a/a = %+v sticky=%v for a=%+v", res, sticky, a)
		}
	}
}

func TestMathSanity(t *testing.T) {
	// 1.5 + 2.5 = 4 exactly.
	mk := func(v float64) fpcore.Mag {
		fr, exp := math.Frexp(v)
		return fpcore.Mag{Scale: exp - 1, Sig: uint64(fr * (1 << 63) * 2)}
	}
	r, sticky := fpcore.Add(mk(1.5), mk(2.5))
	if sticky || magToFloat(r) != 4 {
		t.Fatalf("1.5+2.5 = %g sticky=%v", magToFloat(r), sticky)
	}
	d, sticky, zero, _ := fpcore.Sub(mk(4), mk(1.5))
	if sticky || zero || magToFloat(d) != 2.5 {
		t.Fatalf("4-1.5 = %g", magToFloat(d))
	}
}

func magToFloat(m fpcore.Mag) float64 {
	return math.Ldexp(float64(m.Sig), m.Scale-63)
}
