package shadow_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"positlab/internal/arith"
	"positlab/internal/shadow"
	"positlab/internal/solvers"
)

// The shadow wrapper's overhead contract: full measurement (every
// operation replayed against the reference) stays within ~10x of the
// unwrapped run, and the default sampling stride within ~2x. The
// benchmarks here measure exactly that on the two canonical workloads,
// and the gated report test publishes BENCH_shadow.json.

func dotOperands(f arith.Format, n int) (x, y []arith.Num) {
	x = make([]arith.Num, n)
	y = make([]arith.Num, n)
	for i := range x {
		x[i] = f.FromFloat64(1 + float64(i%97)/7)
		y[i] = f.FromFloat64(2 - float64(i%89)/11)
	}
	return x, y
}

func benchDot(b *testing.B, f arith.Format, every int) {
	if every > 0 {
		sf, _ := shadow.Wrap(f, shadow.Config{SampleEvery: every})
		f = sf
	}
	x, y := dotOperands(f, 1024)
	bk := arith.BulkOf(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bk.DotKernel(x, y)
	}
}

func BenchmarkDot1024Posit16e2Off(b *testing.B) { benchDot(b, arith.Posit16e2, 0) }
func BenchmarkDot1024Posit16e2Sampled(b *testing.B) {
	benchDot(b, arith.Posit16e2, shadow.DefaultSampleEvery)
}
func BenchmarkDot1024Posit16e2Full(b *testing.B) { benchDot(b, arith.Posit16e2, 1) }

func benchCholesky(b *testing.B, f arith.Format, every int) {
	if every > 0 {
		sf, _ := shadow.Wrap(f, shadow.Config{SampleEvery: every})
		f = sf
	}
	ad := laplacian1D(200).ToDense().ToFormat(f, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solvers.Cholesky(ad); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky200Posit16e2Off(b *testing.B) { benchCholesky(b, arith.Posit16e2, 0) }
func BenchmarkCholesky200Posit16e2Sampled(b *testing.B) {
	benchCholesky(b, arith.Posit16e2, shadow.DefaultSampleEvery)
}
func BenchmarkCholesky200Posit16e2Full(b *testing.B) { benchCholesky(b, arith.Posit16e2, 1) }

// timeWorkload reports the per-run wall time of fn over enough
// repetitions to smooth scheduler noise.
func timeWorkload(minRuns int, fn func()) time.Duration {
	fn() // warm-up: table builds, allocator steady state
	start := time.Now()
	runs := 0
	for runs < minRuns || time.Since(start) < 200*time.Millisecond {
		fn()
		runs++
	}
	return time.Since(start) / time.Duration(runs)
}

// TestWriteShadowBenchReport regenerates BENCH_shadow.json at the repo
// root and asserts the overhead contract. Gated behind
// POSITLAB_BENCH_SHADOW=1 so ordinary test runs stay fast;
// `make bench-shadow` sets it.
func TestWriteShadowBenchReport(t *testing.T) {
	if os.Getenv("POSITLAB_BENCH_SHADOW") != "1" {
		t.Skip("set POSITLAB_BENCH_SHADOW=1 to regenerate BENCH_shadow.json")
	}
	f := arith.Posit16e2

	type run struct {
		Name       string  `json:"name"`
		Mode       string  `json:"mode"`
		PerRunUS   float64 `json:"per_run_us"`
		Overhead   float64 `json:"overhead_vs_off"`
		SampleEvry int     `json:"sample_every,omitempty"`
	}
	var runs []run
	workload := func(name string, mk func(g arith.Format) func()) (off, sampled, full float64) {
		offD := timeWorkload(10, mk(f))
		sf, _ := shadow.Wrap(f, shadow.Config{SampleEvery: shadow.DefaultSampleEvery})
		sampD := timeWorkload(10, mk(sf))
		ff, _ := shadow.Wrap(f, shadow.Config{SampleEvery: 1})
		fullD := timeWorkload(10, mk(ff))
		us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		off, sampled, full = us(offD), us(sampD), us(fullD)
		runs = append(runs,
			run{Name: name, Mode: "off", PerRunUS: off, Overhead: 1},
			run{Name: name, Mode: "sampled", PerRunUS: sampled, Overhead: sampled / off, SampleEvry: shadow.DefaultSampleEvery},
			run{Name: name, Mode: "full", PerRunUS: full, Overhead: full / off, SampleEvry: 1},
		)
		return off, sampled, full
	}

	workload("dot n=1024", func(g arith.Format) func() {
		x, y := dotOperands(g, 1024)
		bk := arith.BulkOf(g)
		return func() { _ = bk.DotKernel(x, y) }
	})
	choOff, choSampled, choFull := workload("cholesky n=200", func(g arith.Format) func() {
		ad := laplacian1D(200).ToDense().ToFormat(g, false)
		return func() {
			if _, err := solvers.Cholesky(ad); err != nil {
				t.Fatal(err)
			}
		}
	})

	// The acceptance bounds, with headroom for a loaded CI host: the
	// measured ratios on an idle machine run well under them.
	if r := choSampled / choOff; r > 2 {
		t.Errorf("default sampling overhead on cholesky200 = %.2fx, bound 2x", r)
	}
	if r := choFull / choOff; r > 10 {
		t.Errorf("full shadow overhead on cholesky200 = %.2fx, bound 10x", r)
	}

	report := map[string]any{
		"benchmark": "shadow wrapper overhead: unwrapped vs default sampling (every 64th op) vs full measurement, per-workload wall time",
		"format":    f.Name(),
		"date":      time.Now().Format("2006-01-02"),
		"host": map[string]any{
			"os":         runtime.GOOS + "/" + runtime.GOARCH,
			"go":         runtime.Version(),
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"contract": map[string]any{
			"sampled_max_overhead": 2.0,
			"full_max_overhead":    10.0,
			"workload":             "cholesky n=200",
		},
		"runs": runs,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join("..", "..")) // internal/shadow -> repo root
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_shadow.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
	for _, r := range runs {
		fmt.Printf("  %-16s %-8s %10.1f us  %5.2fx\n", r.Name, r.Mode, r.PerRunUS, r.Overhead)
	}
}
