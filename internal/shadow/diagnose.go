package shadow

// Shadow diagnosis: run one solver workload twice — once in the
// requested format under the shadow wrapper, once in Float64 as the
// shadow-precision reference — and report where and how fast the two
// trajectories diverge, alongside the per-operation error telemetry
// the wrapper accumulated. The format run itself is bit-identical to
// an undiagnosed run; everything here observes, nothing steers.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

// Options configures one Diagnose run.
type Options struct {
	// Solver is "cg", "cholesky", or "ir".
	Solver string
	// Format is the working (cg, cholesky) or factorization (ir) format.
	Format arith.Format
	// Sample tunes the shadow measurement (SampleEvery 1 = full shadow).
	Sample Config
	// Tol and MaxIter follow the solvers' defaults when zero
	// (cg: 1e-5 / 10·N; ir: 1e-15 / 1000).
	Tol     float64
	MaxIter int
	// Rescale applies the paper's power-of-two system rescaling before
	// cg/cholesky; Higham applies Algorithm 5 equilibration with the
	// format-aware μ before ir.
	Rescale bool
	Higham  bool
	// TracePoints bounds the divergence-trace length (default 32): the
	// first TracePoints iterations are traced densely, later ones at a
	// stride that keeps the total near 2·TracePoints.
	TracePoints int
}

// TracePoint is one entry of the per-iteration divergence trace.
type TracePoint struct {
	Iter int `json:"iter"`
	// Divergence is ‖x_fmt − x_ref‖₂/‖x_ref‖₂ against the
	// shadow-precision iterate of the same iteration (cg) or the
	// shadow-precision solution (ir: the forward-error decay).
	Divergence Float `json:"divergence"`
	// Residual is the iterate's true float64 residual — ‖b−A·x‖₂/‖b‖₂
	// for cg, the normwise relative backward error for ir — measured
	// against the float64 master system, not the format's recurrence.
	Residual Float `json:"residual"`
	// ShadowResidual is the same metric for the shadow-precision
	// iterate: the floor the format run is being compared against.
	ShadowResidual Float `json:"shadow_residual"`
}

// ColumnDiag localizes Cholesky digit loss: the relative error of one
// factor column against the shadow-precision factor, and the decimal
// digits that error leaves.
type ColumnDiag struct {
	Col    int   `json:"col"`
	RelErr Float `json:"rel_err"`
	Digits Float `json:"digits"`
}

// EnvelopeCheck compares the achieved decimal accuracy against the
// format's decimal-digits envelope (the paper's Fig. 3 curves) at the
// solution's representative magnitude.
type EnvelopeCheck struct {
	// Magnitude is the median |x_ref| the envelope is evaluated at.
	Magnitude Float `json:"magnitude"`
	// EnvelopeDigits is what the format can represent at that
	// magnitude; AchievedDigits is −log10 of the forward error.
	EnvelopeDigits Float `json:"envelope_digits"`
	AchievedDigits Float `json:"achieved_digits"`
	// Ratio is achieved/envelope: ≈1 means the solve delivered the
	// format's full representational accuracy, >1 (ir) means
	// refinement recovered digits beyond the factorization format.
	Ratio Float `json:"ratio"`
}

// Report is the result of one shadow diagnosis.
type Report struct {
	Matrix string `json:"matrix"`
	Solver string `json:"solver"`
	Format string `json:"format"`
	N      int    `json:"n"`
	// SampleEvery echoes the effective sampling stride.
	SampleEvery int `json:"sample_every"`
	// Solver progress of the format run (bit-identical to an
	// undiagnosed run of the same request).
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	Failed     bool `json:"failed"`
	// FinalResidual is the format run's final metric (cg: relative
	// residual; cholesky/ir: backward error); ShadowFinalResidual the
	// shadow-precision run's, the attainable floor.
	FinalResidual       Float `json:"final_residual"`
	ShadowFinalResidual Float `json:"shadow_final_residual"`
	// ForwardError is ‖x_fmt − x_ref‖₂/‖x_ref‖₂ of the final iterates.
	ForwardError Float          `json:"forward_error"`
	Envelope     *EnvelopeCheck `json:"envelope,omitempty"`
	Trace        []TracePoint   `json:"trace,omitempty"`
	// Columns carries the worst Cholesky factor columns by relative
	// error (cholesky only), ascending by column index.
	Columns []ColumnDiag `json:"columns,omitempty"`
	// Telemetry is the shadow wrapper's per-op error telemetry.
	Telemetry Snapshot `json:"telemetry"`
	WallMS    float64  `json:"wall_ms"`
}

// maxColumnDiags bounds the Columns section: all columns are measured,
// the worst by relative error are reported.
const maxColumnDiags = 32

// Diagnose runs one shadow-diagnosed solve of A·x = b and returns the
// report. matrix is a display name only. The context cancels both the
// reference and the format run.
func Diagnose(ctx context.Context, a *linalg.Sparse, b []float64, matrix string, opt Options) (*Report, error) {
	if opt.Format == nil {
		return nil, fmt.Errorf("shadow: Diagnose needs a format")
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("shadow: b has %d entries, matrix is %d×%d", len(b), a.N, a.N)
	}
	if opt.TracePoints <= 0 {
		opt.TracePoints = 32
	}
	solver := strings.ToLower(strings.TrimSpace(opt.Solver))
	rep := &Report{Matrix: matrix, Solver: solver, Format: opt.Format.Name(), N: a.N}
	start := time.Now()
	var err error
	switch solver {
	case "cg":
		err = diagnoseCG(ctx, a, b, opt, rep)
	case "cholesky":
		err = diagnoseCholesky(ctx, a, b, opt, rep)
	case "ir":
		err = diagnoseIR(ctx, a, b, opt, rep)
	default:
		return nil, fmt.Errorf("shadow: unknown solver %q (known: cg, cholesky, ir)", opt.Solver)
	}
	if err != nil {
		return nil, err
	}
	rep.SampleEvery = rep.Telemetry.SampleEvery
	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rep, nil
}

// traceStride picks the sparse-tail stride so a full-length run yields
// about 2·tp trace entries (tp dense + maxIter/stride sparse).
func traceStride(maxIter, tp int) int {
	s := maxIter / tp
	if s < 1 {
		s = 1
	}
	return s
}

func shouldTrace(iter, tp, stride int) bool {
	return iter <= tp || iter%stride == 0
}

func diagnoseCG(ctx context.Context, a *linalg.Sparse, b []float64, opt Options, rep *Report) error {
	if opt.Rescale {
		a = a.Clone()
		b = append([]float64(nil), b...)
		scaling.RescaleSystemCG(a, b)
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-5
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 10 * a.N
	}
	stride := traceStride(maxIter, opt.TracePoints)

	// Shadow-precision run: plain Float64, same algorithm, same
	// tolerance. Iterates at the trace points are retained so the
	// format run can be compared iteration-for-iteration.
	f64 := arith.Float64
	refX := map[int][]float64{}
	refRes, err := solvers.CGCheckpointed(ctx, a.ToFormat(f64, false), linalg.VecFromFloat64(f64, b),
		tol, maxIter, solvers.CGCheckpointOptions{
			OnIteration: func(iter int, x, _ []arith.Num) {
				if shouldTrace(iter, opt.TracePoints, stride) {
					refX[iter] = linalg.VecToFloat64(f64, x)
				}
			},
		})
	if err != nil {
		return err
	}

	// Format run under the shadow wrapper. Past the reference run's
	// convergence point the divergence is taken against its final
	// iterate (the trajectory the format run failed to follow).
	sf, rec := Wrap(opt.Format, opt.Sample)
	rec.SetLabel("cg")
	normB := linalg.Norm2F64(b)
	scratch := make([]float64, a.N)
	var trace []TracePoint
	res, err := solvers.CGCheckpointed(ctx, a.ToFormat(sf, false), linalg.VecFromFloat64(sf, b),
		tol, maxIter, solvers.CGCheckpointOptions{
			OnIteration: func(iter int, x, _ []arith.Num) {
				if !shouldTrace(iter, opt.TracePoints, stride) {
					return
				}
				xf := linalg.VecToFloat64(sf, x)
				ref := refX[iter]
				if ref == nil {
					ref = refRes.X
				}
				trace = append(trace, TracePoint{
					Iter:           iter,
					Divergence:     Float(relDist(xf, ref)),
					Residual:       Float(trueResidual(a, b, xf, scratch, normB)),
					ShadowResidual: Float(trueResidual(a, b, ref, scratch, normB)),
				})
			},
		})
	if err != nil {
		return err
	}
	rep.Iterations = res.Iterations
	rep.Converged = res.Converged
	rep.Failed = res.Failed
	rep.FinalResidual = Float(res.RelResidual)
	rep.ShadowFinalResidual = Float(refRes.RelResidual)
	rep.ForwardError = Float(relDist(res.X, refRes.X))
	rep.Trace = trace
	fillEnvelope(rep, opt.Format, refRes.X)
	rep.Telemetry = rec.Snapshot()
	return nil
}

func diagnoseCholesky(ctx context.Context, a *linalg.Sparse, b []float64, opt Options, rep *Report) error {
	if opt.Rescale {
		a = a.Clone()
		b = append([]float64(nil), b...)
		scaling.RescaleSystemCholesky(a, b)
	}
	ad := a.ToDense()

	// Shadow-precision factorization and solve in Float64.
	f64 := arith.Float64
	rRef, err := solvers.CholeskyCtx(ctx, ad.ToFormat(f64, false))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// Not positive definite even at shadow precision: the request
		// is unsolvable, which is a diagnosis, not a server error.
		rep.Failed = true
		return nil
	}
	xRef := linalg.VecToFloat64(f64,
		solvers.SolveUpper(rRef, solvers.SolveLowerT(rRef, linalg.VecFromFloat64(f64, b))))
	rep.ShadowFinalResidual = Float(solvers.BackwardError(a, b, xRef))

	// Format factorization under the shadow wrapper.
	sf, rec := Wrap(opt.Format, opt.Sample)
	rec.SetLabel("factor")
	rFmt, err := solvers.CholeskyCtx(ctx, ad.ToFormat(sf, false))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// Breakdown in the working format — the '-' entries of the
		// paper's tables. The telemetry up to the failing column is
		// the interesting part of this report.
		rep.Failed = true
		rep.Telemetry = rec.Snapshot()
		return nil
	}
	rep.Columns = columnDiags(rFmt.ToFloat64(), rRef.ToFloat64())

	rec.SetLabel("solve")
	x := solvers.SolveUpper(rFmt, solvers.SolveLowerT(rFmt, linalg.VecFromFloat64(sf, b)))
	xf := linalg.VecToFloat64(sf, x)
	rep.Converged = true
	rep.FinalResidual = Float(solvers.BackwardError(a, b, xf))
	rep.ForwardError = Float(relDist(xf, xRef))
	fillEnvelope(rep, opt.Format, xRef)
	rep.Telemetry = rec.Snapshot()
	return nil
}

func diagnoseIR(ctx context.Context, a *linalg.Sparse, b []float64, opt Options, rep *Report) error {
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-15
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 1000
	}
	sc := solvers.IRScaling{}
	if opt.Higham {
		sc = solvers.IRScaling{
			R:  scaling.HighamEquilibrate(a, 1e-8, 100),
			Mu: scaling.MuFor(opt.Format),
		}
	}

	// Shadow-precision solution: a dense Float64 Cholesky solve of the
	// unscaled system, the target the refinement is converging toward.
	f64 := arith.Float64
	var xRef []float64
	xr, err := solvers.CholeskySolveCtx(ctx, a.ToDense().ToFormat(f64, false), linalg.VecFromFloat64(f64, b))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// No shadow solution (not positive definite at Float64):
		// divergence entries stay null, the run itself proceeds.
	} else {
		xRef = linalg.VecToFloat64(f64, xr)
		rep.ShadowFinalResidual = Float(solvers.BackwardError(a, b, xRef))
	}

	sf, rec := Wrap(opt.Format, opt.Sample)
	rec.SetLabel("factor")
	stride := traceStride(maxIter, opt.TracePoints)
	var trace []TracePoint
	res, err := solvers.MixedIRCheckpointed(ctx, a, b, sf, sc,
		solvers.IROptions{Tol: tol, MaxIter: maxIter},
		solvers.IRCheckpointOptions{
			OnIteration: func(iter int, x []float64, eta float64) {
				if !shouldTrace(iter, opt.TracePoints, stride) {
					return
				}
				div := math.NaN()
				if xRef != nil {
					div = relDist(x, xRef)
				}
				trace = append(trace, TracePoint{
					Iter:           iter,
					Divergence:     Float(div),
					Residual:       Float(eta),
					ShadowResidual: rep.ShadowFinalResidual,
				})
			},
		})
	if err != nil {
		return err
	}
	rep.Iterations = res.Iterations
	rep.Converged = res.Converged
	rep.Failed = res.FactorFailed
	rep.FinalResidual = Float(res.BackwardError)
	rep.Trace = trace
	if xRef != nil && res.X != nil {
		rep.ForwardError = Float(relDist(res.X, xRef))
		fillEnvelope(rep, opt.Format, xRef)
	}
	rep.Telemetry = rec.Snapshot()
	return nil
}

// --- float64-only metric helpers ---

// relDist is ‖x − ref‖₂/‖ref‖₂ (absolute when ref is zero).
func relDist(x, ref []float64) float64 {
	var num, den float64
	for i := range x {
		d := x[i] - ref[i]
		num += d * d
		den += ref[i] * ref[i]
	}
	num = math.Sqrt(num)
	if den == 0 {
		return num
	}
	return num / math.Sqrt(den)
}

// trueResidual is ‖b − A·x‖₂/‖b‖₂ against the float64 master matrix.
func trueResidual(a *linalg.Sparse, b, x, scratch []float64, normB float64) float64 {
	a.MatVecF64(x, scratch)
	var s float64
	for i := range scratch {
		d := b[i] - scratch[i]
		s += d * d
	}
	r := math.Sqrt(s)
	if normB == 0 {
		return r
	}
	return r / normB
}

// columnDiags measures each upper-factor column against the reference
// factor and returns the worst maxColumnDiags by relative error,
// ascending by column index.
func columnDiags(rf, ref *linalg.Dense) []ColumnDiag {
	n := rf.N
	out := make([]ColumnDiag, 0, n)
	for j := 0; j < n; j++ {
		var num, den float64
		for i := 0; i <= j; i++ {
			d := rf.At(i, j) - ref.At(i, j)
			num += d * d
			den += ref.At(i, j) * ref.At(i, j)
		}
		e := math.Sqrt(num)
		if den > 0 {
			e /= math.Sqrt(den)
		}
		out = append(out, ColumnDiag{Col: j, RelErr: Float(e), Digits: Float(digitsFromErr(e))})
	}
	if len(out) > maxColumnDiags {
		sort.Slice(out, func(i, j int) bool { return float64(out[i].RelErr) > float64(out[j].RelErr) })
		out = out[:maxColumnDiags]
		sort.Slice(out, func(i, j int) bool { return out[i].Col < out[j].Col })
	}
	return out
}

// digitsFromErr converts a relative error to decimal digits; zero
// error reads as NaN (rendered null: "no digit loss observed").
func digitsFromErr(e float64) float64 {
	if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
		return math.NaN()
	}
	return -math.Log10(e)
}

// fillEnvelope evaluates the format's decimal-digits envelope at the
// reference solution's median magnitude and compares the achieved
// accuracy against it.
func fillEnvelope(rep *Report, f arith.Format, xRef []float64) {
	mag := medianAbs(xRef)
	if mag == 0 || math.IsNaN(mag) || math.IsInf(mag, 0) {
		return
	}
	env := envelopeDigits(f, mag)
	if env <= 0 || math.IsNaN(env) {
		return
	}
	ach := digitsFromErr(float64(rep.ForwardError))
	rep.Envelope = &EnvelopeCheck{
		Magnitude:      Float(mag),
		EnvelopeDigits: Float(env),
		AchievedDigits: Float(ach),
		Ratio:          Float(ach / env),
	}
}

// envelopeDigits is the format's decimal-digits-of-accuracy envelope
// at magnitude v — posit.Config.DecimalDigitsAt for posits (the
// paper's Fig. 3 curves), the minifloat equivalent for IEEE
// minifloats, and the analytic ulp formula for binary32/64.
func envelopeDigits(f arith.Format, v float64) float64 {
	if c, ok := arith.PositConfig(f); ok {
		return c.DecimalDigitsAt(v)
	}
	if m, ok := arith.MiniConfig(f); ok {
		return m.DecimalDigitsAt(v)
	}
	return ieeeDigits(ulpFnFor(f), v)
}

// ieeeDigits is −log10(ulp(v)/(2v)), the digit count of a format with
// local grid spacing ulp(v) — the same half-bracket convention
// DecimalDigitsAt uses.
func ieeeDigits(ulp func(float64) float64, v float64) float64 {
	u := ulp(math.Abs(v))
	if u <= 0 {
		return 0
	}
	return -math.Log10(u / (2 * math.Abs(v)))
}

// medianAbs is the median of |x| over the nonzero entries.
func medianAbs(x []float64) float64 {
	vs := make([]float64, 0, len(x))
	for _, v := range x {
		a := math.Abs(v)
		if a > 0 && !math.IsNaN(a) && !math.IsInf(a, 0) {
			vs = append(vs, a)
		}
	}
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	return vs[len(vs)/2]
}
