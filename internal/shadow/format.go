package shadow

import "positlab/internal/arith"

// shadowed wraps a Format with shadow measurement. Results — scalar
// and kernel — always come from the underlying format, so a shadowed
// solve is bit-identical to an unshadowed one; measurement happens on
// the side, on the sampled subset of operations.
//
// Slice kernels dispatch to the underlying format's BulkFormat fast
// path unconditionally. For the elementwise kernels (axpy, scale,
// muladd, trailing update, div) the kernel's own outputs are the
// measured results: the wrapper captures the overwritten operand
// values at the sampled indices beforehand, so nothing is recomputed.
// The reduction kernels (dot, matvec) carry a running accumulator, so
// a sampled call replays the defining scalar MulAdd chain — which is
// bit-identical to the kernel by the BulkFormat contract — to recover
// the intermediate accumulator values it measures against.
type shadowed struct {
	arith.Format
	bk  arith.BulkFormat
	rec *Recorder
}

// Wrap pairs f with a reference engine and returns the shadow-wrapped
// format together with the Recorder accumulating its telemetry. The
// wrapped format implements arith.BulkFormat, is safe for concurrent
// use wherever f is (measurement is internally synchronized), and is
// bit-transparent: every operation returns exactly f's result.
//
// Compose instrumentation outside the wrapper
// (arith.InstrumentAtomic(shadow.Wrap(f, cfg))): the wrapper's replay
// of sampled reduction chains re-runs scalar operations on the format
// it wraps, which would inflate an inner instrumented count.
func Wrap(f arith.Format, cfg Config) (arith.Format, *Recorder) {
	rec := newRecorder(f, cfg)
	return shadowed{Format: f, bk: arith.BulkOf(f), rec: rec}, rec
}

// --- scalar operations ---

func (s shadowed) Add(a, b arith.Num) arith.Num {
	r := s.Format.Add(a, b)
	s.rec.noteScalar(OpAdd, a, b, 0, r)
	return r
}

func (s shadowed) Sub(a, b arith.Num) arith.Num {
	r := s.Format.Sub(a, b)
	s.rec.noteScalar(OpSub, a, b, 0, r)
	return r
}

func (s shadowed) Mul(a, b arith.Num) arith.Num {
	r := s.Format.Mul(a, b)
	s.rec.noteScalar(OpMul, a, b, 0, r)
	return r
}

func (s shadowed) Div(a, b arith.Num) arith.Num {
	r := s.Format.Div(a, b)
	s.rec.noteScalar(OpDiv, a, b, 0, r)
	return r
}

func (s shadowed) Sqrt(a arith.Num) arith.Num {
	r := s.Format.Sqrt(a)
	s.rec.noteScalar(OpSqrt, a, 0, 0, r)
	return r
}

func (s shadowed) MulAdd(a, b, c arith.Num) arith.Num {
	r := s.Format.MulAdd(a, b, c)
	s.rec.noteScalar(OpMulAdd, a, b, c, r)
	return r
}

// --- reduction kernels ---

func (s shadowed) DotKernel(x, y []arith.Num) arith.Num {
	res := s.bk.DotKernel(x, y)
	if start, any := s.rec.window(uint64(len(x))); any {
		s.replayChain("dot", start, x, y)
	}
	return res
}

// replayChain re-runs the dot accumulator chain
// acc = MulAdd(x[i], y[i], acc) with the underlying format's scalar
// operations and measures the fused operations at the sampled indices.
func (s shadowed) replayChain(site string, start uint64, x, y []arith.Num) {
	f, rec := s.Format, s.rec
	rp := rec.beginReplay(site)
	next := rec.firstSample(start)
	acc := f.Zero()
	for i := range x {
		prev := acc
		acc = f.MulAdd(x[i], y[i], prev)
		if uint64(i) == next {
			rp.note(OpMulAdd, x[i], y[i], prev, acc)
			next += rec.stride
		}
	}
	rp.end()
}

func (s shadowed) MatVecKernel(rowPtr, col []int, val []arith.Num, x, y []arith.Num) {
	s.bk.MatVecKernel(rowPtr, col, val, x, y)
	if len(rowPtr) < 2 {
		return
	}
	base := rowPtr[0]
	nnz := uint64(rowPtr[len(rowPtr)-1] - base)
	start, any := s.rec.window(nnz)
	if !any {
		return
	}
	f, rec := s.Format, s.rec
	rp := rec.beginReplay("matvec")
	next := rec.firstSample(start)
	for i := 0; i+1 < len(rowPtr) && next < nnz; i++ {
		// Rows are independent accumulator chains: only rows that
		// contain a sampled operation are replayed.
		if next >= uint64(rowPtr[i+1]-base) {
			continue
		}
		acc := f.Zero()
		for idx := rowPtr[i]; idx < rowPtr[i+1]; idx++ {
			prev := acc
			acc = f.MulAdd(val[idx], x[col[idx]], prev)
			if uint64(idx-base) == next {
				rp.note(OpMulAdd, val[idx], x[col[idx]], prev, acc)
				next += rec.stride
			}
		}
	}
	rp.end()
}

// --- elementwise kernels ---

// capture copies v's values at indices first, first+stride, ... before
// the kernel overwrites them.
func capture(v []arith.Num, first, stride uint64) []arith.Num {
	n := uint64(len(v))
	if first >= n {
		return nil
	}
	out := make([]arith.Num, 0, (n-first+stride-1)/stride)
	for i := first; i < n; i += stride {
		out = append(out, v[i])
	}
	return out
}

func (s shadowed) AxpyKernel(alpha arith.Num, x, y []arith.Num) {
	start, any := s.rec.window(uint64(len(x)))
	if !any {
		s.bk.AxpyKernel(alpha, x, y)
		return
	}
	rec := s.rec
	first := rec.firstSample(start)
	pre := capture(y, first, rec.stride)
	s.bk.AxpyKernel(alpha, x, y)
	rp := rec.beginReplay("axpy")
	for j, i := 0, first; i < uint64(len(y)); j, i = j+1, i+rec.stride {
		rp.note(OpMulAdd, alpha, x[i], pre[j], y[i])
	}
	rp.end()
}

func (s shadowed) MulAddKernel(alpha arith.Num, x, y, dst []arith.Num) {
	start, any := s.rec.window(uint64(len(x)))
	if !any {
		s.bk.MulAddKernel(alpha, x, y, dst)
		return
	}
	rec := s.rec
	first := rec.firstSample(start)
	// dst may alias x or y elementwise: capture both operands first.
	preX := capture(x, first, rec.stride)
	preY := capture(y, first, rec.stride)
	s.bk.MulAddKernel(alpha, x, y, dst)
	rp := rec.beginReplay("muladd")
	for j, i := 0, first; i < uint64(len(dst)); j, i = j+1, i+rec.stride {
		rp.note(OpMulAdd, alpha, preX[j], preY[j], dst[i])
	}
	rp.end()
}

func (s shadowed) ScaleKernel(alpha arith.Num, x []arith.Num) {
	start, any := s.rec.window(uint64(len(x)))
	if !any {
		s.bk.ScaleKernel(alpha, x)
		return
	}
	rec := s.rec
	first := rec.firstSample(start)
	pre := capture(x, first, rec.stride)
	s.bk.ScaleKernel(alpha, x)
	rp := rec.beginReplay("scale")
	for j, i := 0, first; i < uint64(len(x)); j, i = j+1, i+rec.stride {
		rp.note(OpMul, alpha, pre[j], 0, x[i])
	}
	rp.end()
}

func (s shadowed) TrailingUpdateKernel(nalpha arith.Num, x, w []arith.Num) {
	start, any := s.rec.window(uint64(len(x)))
	if !any {
		s.bk.TrailingUpdateKernel(nalpha, x, w)
		return
	}
	rec := s.rec
	first := rec.firstSample(start)
	pre := capture(w, first, rec.stride)
	s.bk.TrailingUpdateKernel(nalpha, x, w)
	rp := rec.beginReplay("trailing")
	for j, i := 0, first; i < uint64(len(w)); j, i = j+1, i+rec.stride {
		rp.note(OpMulAdd, nalpha, x[i], pre[j], w[i])
	}
	rp.end()
}

func (s shadowed) DivKernel(alpha arith.Num, x []arith.Num) {
	start, any := s.rec.window(uint64(len(x)))
	if !any {
		s.bk.DivKernel(alpha, x)
		return
	}
	rec := s.rec
	first := rec.firstSample(start)
	pre := capture(x, first, rec.stride)
	s.bk.DivKernel(alpha, x)
	rp := rec.beginReplay("div")
	for j, i := 0, first; i < uint64(len(x)); j, i = j+1, i+rec.stride {
		rp.note(OpDiv, pre[j], alpha, 0, x[i])
	}
	rp.end()
}
