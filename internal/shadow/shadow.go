// Package shadow implements shadow-precision execution: it pairs any
// arith.Format with a high-precision reference engine and records
// per-operation rounding-error telemetry while the wrapped format
// computes exactly what it would have computed unwrapped.
//
// Every operation dispatched through the wrapper returns the
// underlying format's result bit-for-bit — wrapping never perturbs a
// solver trajectory — but a configurable fraction of operations is
// *measured*: the same operands are re-evaluated in the reference
// precision (float64 for formats of 16 bits or fewer, whose products
// and sums are exact in binary64; 256-bit big.Float above that) and
// the format result's relative error and ulp error are accumulated
// into log2-bucketed histograms keyed by operation kind and call-site
// label. A bounded top-K heap retains the worst individual operations
// with their operand values, so a diagnosis can point at the exact
// multiply or subtract where digits were lost.
//
// Memory is bounded by construction: histograms are fixed-size arrays,
// the per-label cell map is capped (overflow collapses into an "other"
// cell), and the worst-op list holds at most TopK entries. Overhead is
// bounded by sampling: slice kernels run through the format's
// BulkFormat fast path unconditionally, and only a sampled kernel call
// replays its defining scalar sequence for measurement.
package shadow

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"positlab/internal/arith"
)

// Op identifies a format operation kind in the telemetry.
type Op uint8

// Operation kinds. OpMulAdd is the fused dispatch fl(fl(a·b)+c); its
// reference is the exact a·b+c, so its error can legitimately exceed
// half an ulp (two roundings against one).
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpSqrt
	OpMulAdd
	opCount
)

var opNames = [opCount]string{"add", "sub", "mul", "div", "sqrt", "muladd"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Config tunes a Recorder. The zero value gets defaults from fill.
type Config struct {
	// SampleEvery measures every SampleEvery-th operation (1 = every
	// operation, the full-shadow mode). <= 0 means DefaultSampleEvery.
	SampleEvery int
	// TopK bounds the worst-operations list. <= 0 means 16.
	TopK int
	// MaxLabels bounds the number of distinct call-site labels with
	// their own histogram cells; later labels collapse into "other".
	// <= 0 means 64.
	MaxLabels int
}

// DefaultSampleEvery is the sampling stride used when Config leaves it
// unset: cheap enough for production solves (the replay cost amortizes
// to well under the kernel cost) while still seeing tens of thousands
// of operations in one factorization.
const DefaultSampleEvery = 64

func (c Config) fill() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.TopK <= 0 {
		c.TopK = 16
	}
	if c.MaxLabels <= 0 {
		c.MaxLabels = 64
	}
	return c
}

// Histogram bucket layout: relative error is bucketed by
// floor(log2(rel)) clamped to [relMin, relMax]; ulp error likewise
// into [ulpMin, ulpMax]. Exactly-rounded-to-reference results (error
// zero) are tallied separately.
const (
	relMin, relMax = -72, 7
	ulpMin, ulpMax = -40, 23
	relBuckets     = relMax - relMin + 1
	ulpBuckets     = ulpMax - ulpMin + 1
)

// cellKey identifies one histogram cell: a caller-supplied phase
// label, the kernel site the operation ran in ("scalar" for direct
// Format calls), and the operation kind.
type cellKey struct {
	label string
	site  string
	op    Op
}

// cell accumulates measurements for one (label, site, op) key.
type cell struct {
	count  uint64 // measured operations
	exact  uint64 // of which error-free vs the reference
	bad    uint64 // operations producing or consuming NaR/NaN/Inf
	maxRel float64
	maxUlp float64
	rel    [relBuckets]uint64
	ulp    [ulpBuckets]uint64
}

// OpSample is one measured operation, retained when it ranks among the
// worst by relative error. Operand and result values are exact float64
// images of the format values; Ref is the reference result rounded to
// float64 for display.
type OpSample struct {
	Label string  `json:"label"`
	Site  string  `json:"site"`
	Op    string  `json:"op"`
	A     Float   `json:"a"`
	B     Float   `json:"b"`
	C     Float   `json:"c,omitempty"`
	Got   Float   `json:"got"`
	Ref   Float   `json:"ref"`
	Rel   Float   `json:"rel"`
	Ulp   Float   `json:"ulp"`
	rel   float64 // ranking key (Rel, kept unboxed)
}

// Recorder accumulates shadow telemetry for one wrapped format. It is
// safe for concurrent use: the sampling decision is an atomic counter
// and measured samples are folded in under a mutex (sampled paths
// only, so contention scales with the sampling rate, not the op rate).
type Recorder struct {
	cfg    Config
	f      arith.Format
	eng    refEngine
	ulp    func(v float64) float64
	stride uint64
	tick   atomic.Uint64 // global operation index
	total  atomic.Uint64 // operations seen (sampled or not)

	mu       sync.Mutex
	label    string
	cells    map[cellKey]*cell
	measured uint64
	worst    []OpSample // sorted descending by rel
}

func newRecorder(f arith.Format, cfg Config) *Recorder {
	cfg = cfg.fill()
	return &Recorder{
		cfg:    cfg,
		f:      f,
		eng:    engineFor(f),
		ulp:    ulpFnFor(f),
		stride: uint64(cfg.SampleEvery),
		label:  "run",
		cells:  map[cellKey]*cell{},
	}
}

// SetLabel names the current execution phase; subsequent measurements
// are keyed under it. Call it at phase boundaries (e.g. "factor",
// "refine"), not per operation.
func (r *Recorder) SetLabel(label string) {
	r.mu.Lock()
	r.label = label
	r.mu.Unlock()
}

// window advances the global operation index by n and reports the
// pre-advance index plus whether any index in [start, start+n) is a
// sampling point ((idx+1) % stride == 0).
func (r *Recorder) window(n uint64) (start uint64, any bool) {
	if n == 0 {
		return 0, false
	}
	r.total.Add(n)
	start = r.tick.Add(n) - n
	if r.stride <= 1 {
		return start, true
	}
	// First sampling point at or after start is the next multiple of
	// stride minus 1 (0-based indices i with (i+1)%stride == 0).
	first := (start/r.stride+1)*r.stride - 1
	return start, first < start+n
}

// sampledAt reports whether global op index idx is a sampling point.
func (r *Recorder) sampledAt(idx uint64) bool {
	return r.stride <= 1 || (idx+1)%r.stride == 0
}

// firstSample returns the offset within a window starting at global
// index start of the first sampled operation (which may be past the
// window's end — callers bound the iteration).
func (r *Recorder) firstSample(start uint64) uint64 {
	if r.stride <= 1 {
		return 0
	}
	return (start/r.stride+1)*r.stride - 1 - start
}

// cellFor returns the histogram cell for key, respecting the label
// cap. Caller holds mu.
func (r *Recorder) cellFor(key cellKey) *cell {
	if c := r.cells[key]; c != nil {
		return c
	}
	if len(r.cells) >= r.cfg.MaxLabels*int(opCount) {
		key.label = "other"
		if c := r.cells[key]; c != nil {
			return c
		}
	}
	c := &cell{}
	r.cells[key] = c
	return c
}

// measureNums converts the operands and result to their exact float64
// images and measures the result against the reference engine. The
// values measured are exactly the values the format computed with; the
// error arithmetic itself lives in the float64-only engine helpers.
func (r *Recorder) measureNums(op Op, a, b, c, got arith.Num) measurement {
	f := r.f
	av := f.ToFloat64(a)
	bv := f.ToFloat64(b)
	cv := f.ToFloat64(c)
	gv := f.ToFloat64(got)
	m := measurement{a: av, b: bv, c: cv, got: gv}
	if !finiteOps(op, av, bv, cv) || !finite(gv) {
		m.bad = true
		return m
	}
	ref, rel, ok := r.eng.measure(op, av, bv, cv, gv)
	if !ok {
		m.bad = true
		return m
	}
	m.ref, m.rel = ref, rel
	if rel > 0 {
		if u := r.ulp(math.Abs(ref)); u > 0 {
			m.ulp = math.Abs(gv-ref) / u
		}
	}
	return m
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// finiteOps checks the operands op actually reads.
func finiteOps(op Op, a, b, c float64) bool {
	switch op {
	case OpSqrt:
		return finite(a)
	case OpMulAdd:
		return finite(a) && finite(b) && finite(c)
	default:
		return finite(a) && finite(b)
	}
}

// noteScalar measures one directly dispatched scalar operation if its
// global index is a sampling point. Unused operands are Num(0), a
// valid zero in every supported format.
func (r *Recorder) noteScalar(op Op, a, b, c, got arith.Num) {
	if _, any := r.window(1); !any {
		return
	}
	m := r.measureNums(op, a, b, c, got)
	r.mu.Lock()
	cl := r.cellFor(cellKey{label: r.label, site: "scalar", op: op})
	r.foldLocked(cl, "scalar", op, m)
	r.mu.Unlock()
}

// replay batches the measurements of one sampled kernel call under a
// single lock acquisition with the hot cells cached.
type replay struct {
	rec   *Recorder
	site  string
	cells [opCount]*cell
}

func (r *Recorder) beginReplay(site string) replay {
	r.mu.Lock()
	return replay{rec: r, site: site}
}

func (p *replay) note(op Op, a, b, c, got arith.Num) {
	r := p.rec
	m := r.measureNums(op, a, b, c, got)
	cl := p.cells[op]
	if cl == nil {
		cl = r.cellFor(cellKey{label: r.label, site: p.site, op: op})
		p.cells[op] = cl
	}
	r.foldLocked(cl, p.site, op, m)
}

func (p *replay) end() { p.rec.mu.Unlock() }

// foldLocked folds one measurement into its cell, the histograms, and
// the worst list. Caller holds mu.
func (r *Recorder) foldLocked(c *cell, site string, op Op, m measurement) {
	r.measured++
	c.count++
	if m.bad {
		c.bad++
		return
	}
	if m.rel == 0 {
		c.exact++
		return
	}
	c.rel[bucketIdx(m.rel, relMin, relMax)]++
	if m.ulp > 0 {
		c.ulp[bucketIdx(m.ulp, ulpMin, ulpMax)]++
	}
	if m.rel > c.maxRel {
		c.maxRel = m.rel
	}
	if m.ulp > c.maxUlp {
		c.maxUlp = m.ulp
	}
	r.noteWorst(site, op, m)
}

func (r *Recorder) noteWorst(site string, op Op, m measurement) {
	k := r.cfg.TopK
	if len(r.worst) == k && r.worst[k-1].rel >= m.rel {
		return
	}
	s := OpSample{
		Label: r.label, Site: site, Op: op.String(),
		A: Float(m.a), B: Float(m.b), C: Float(m.c),
		Got: Float(m.got), Ref: Float(m.ref),
		Rel: Float(m.rel), Ulp: Float(m.ulp),
		rel: m.rel,
	}
	i := sort.Search(len(r.worst), func(i int) bool { return r.worst[i].rel < m.rel })
	if len(r.worst) < k {
		r.worst = append(r.worst, OpSample{})
	}
	copy(r.worst[i+1:], r.worst[i:])
	r.worst[i] = s
}

// bucketIdx maps a positive error magnitude to its clamped log2
// bucket's array index.
func bucketIdx(v float64, min, max int) int {
	e := math.Ilogb(v)
	if e < min {
		e = min
	} else if e > max {
		e = max
	}
	return e - min
}

// Bucket is one non-empty histogram bucket: Count errors with
// floor(log2(err)) == Log2 (clamped at the extremes).
type Bucket struct {
	Log2  int    `json:"log2"`
	Count uint64 `json:"count"`
}

// OpStats summarizes one (label, site, op) histogram cell.
type OpStats struct {
	Label string `json:"label"`
	Site  string `json:"site"`
	Op    string `json:"op"`
	// Count is the number of measured operations; Exact of those had
	// zero error vs the reference; Bad produced or consumed an
	// exceptional value (NaR/NaN/Inf) and carry no error measurement.
	Count uint64 `json:"count"`
	Exact uint64 `json:"exact"`
	Bad   uint64 `json:"bad,omitempty"`
	// MaxRel/MaxUlp are the largest observed relative and ulp errors.
	MaxRel Float `json:"max_rel"`
	MaxUlp Float `json:"max_ulp"`
	// RelHist/UlpHist are the non-empty log2 buckets, ascending.
	RelHist []Bucket `json:"rel_hist"`
	UlpHist []Bucket `json:"ulp_hist"`
}

// Snapshot is a point-in-time copy of a Recorder's telemetry.
type Snapshot struct {
	Format      string `json:"format"`
	Reference   string `json:"reference"`
	SampleEvery int    `json:"sample_every"`
	// TotalOps counts every format operation dispatched through the
	// wrapper; MeasuredOps is how many of them were measured against
	// the reference.
	TotalOps    uint64     `json:"total_ops"`
	MeasuredOps uint64     `json:"measured_ops"`
	Stats       []OpStats  `json:"stats"`
	Worst       []OpSample `json:"worst"`
}

// Snapshot returns the telemetry accumulated so far. Safe to call
// while the wrapped format is in use.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Format:      r.f.Name(),
		Reference:   r.eng.name(),
		SampleEvery: int(r.stride),
		TotalOps:    r.total.Load(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.MeasuredOps = r.measured
	keys := make([]cellKey, 0, len(r.cells))
	for k := range r.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.label != b.label {
			return a.label < b.label
		}
		if a.site != b.site {
			return a.site < b.site
		}
		return a.op < b.op
	})
	for _, k := range keys {
		c := r.cells[k]
		st := OpStats{
			Label: k.label, Site: k.site, Op: k.op.String(),
			Count: c.count, Exact: c.exact, Bad: c.bad,
			MaxRel: Float(c.maxRel), MaxUlp: Float(c.maxUlp),
		}
		for i, n := range c.rel {
			if n > 0 {
				st.RelHist = append(st.RelHist, Bucket{Log2: i + relMin, Count: n})
			}
		}
		for i, n := range c.ulp {
			if n > 0 {
				st.UlpHist = append(st.UlpHist, Bucket{Log2: i + ulpMin, Count: n})
			}
		}
		s.Stats = append(s.Stats, st)
	}
	s.Worst = append([]OpSample(nil), r.worst...)
	return s
}

// Float is a float64 that marshals NaN and ±Inf as null (JSON has no
// representation for them); diagnosis reports are full of residuals
// and divergences that can legitimately be non-finite.
type Float float64

// MarshalJSON renders finite values as numbers and non-finite as null.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return fmt.Appendf(nil, "%g", v), nil
}
