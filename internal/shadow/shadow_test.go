package shadow_test

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/shadow"
	"positlab/internal/solvers"
)

func laplacian1D(n int) *linalg.Sparse {
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	s, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		panic(err)
	}
	return s
}

func onesRHS(a *linalg.Sparse) []float64 {
	x := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	b := make([]float64, a.N)
	a.MatVecF64(x, b)
	return b
}

// TestWrapBitIdentityCG is the wrapper's core contract: a shadowed CG
// run returns exactly the unshadowed result — same iterate bits, same
// iteration count, same residual — at every sampling rate, for both
// reference engines (f64 for 16-bit formats, big.Float for 32-bit).
func TestWrapBitIdentityCG(t *testing.T) {
	a := laplacian1D(60)
	rhs := onesRHS(a)
	for _, f := range []arith.Format{arith.Posit16e2, arith.Float16, arith.Posit32e2} {
		for _, every := range []int{1, 7, 64} {
			plain := solvers.CG(a.ToFormat(f, false), linalg.VecFromFloat64(f, rhs), 1e-5, 10*a.N)
			sf, rec := shadow.Wrap(f, shadow.Config{SampleEvery: every})
			got := solvers.CG(a.ToFormat(sf, false), linalg.VecFromFloat64(sf, rhs), 1e-5, 10*a.N)
			if got.Iterations != plain.Iterations || got.Converged != plain.Converged ||
				got.Failed != plain.Failed || got.RelResidual != plain.RelResidual {
				t.Fatalf("%s every=%d: shadowed run diverged: %+v vs %+v", f.Name(), every, got, plain)
			}
			for i := range got.X {
				if got.X[i] != plain.X[i] {
					t.Fatalf("%s every=%d: x[%d] = %g, plain %g", f.Name(), every, i, got.X[i], plain.X[i])
				}
			}
			snap := rec.Snapshot()
			if snap.TotalOps == 0 || snap.MeasuredOps == 0 {
				t.Fatalf("%s every=%d: no telemetry recorded: %+v", f.Name(), every, snap)
			}
		}
	}
}

// TestWrapBitIdentityCholesky checks the factor itself: every entry of
// the shadowed factorization matches the plain one exactly.
func TestWrapBitIdentityCholesky(t *testing.T) {
	ad := laplacian1D(40).ToDense()
	f := arith.Posit16e1
	plain, err := solvers.Cholesky(ad.ToFormat(f, false))
	if err != nil {
		t.Fatal(err)
	}
	sf, rec := shadow.Wrap(f, shadow.Config{SampleEvery: 1})
	got, err := solvers.Cholesky(ad.ToFormat(sf, false))
	if err != nil {
		t.Fatal(err)
	}
	pf, gf := plain.ToFloat64(), got.ToFloat64()
	for i := 0; i < pf.N; i++ {
		for j := 0; j < pf.N; j++ {
			if pf.At(i, j) != gf.At(i, j) {
				t.Fatalf("factor[%d,%d] = %g, plain %g", i, j, gf.At(i, j), pf.At(i, j))
			}
		}
	}
	if snap := rec.Snapshot(); snap.MeasuredOps != snap.TotalOps {
		t.Fatalf("full sampling measured %d of %d ops", snap.MeasuredOps, snap.TotalOps)
	}
}

// TestScalarTelemetry exercises the scalar dispatch path under full
// sampling: counts, exactness classification, label keying, and the
// bad-op tally for NaR operands.
func TestScalarTelemetry(t *testing.T) {
	f := arith.Posit16e1
	sf, rec := shadow.Wrap(f, shadow.Config{SampleEvery: 1})
	one := sf.One()
	two := sf.Add(one, one)   // exact in every format
	third := sf.Div(one, two) // 0.5: exact
	rec.SetLabel("phase2")
	x := sf.FromFloat64(1.0 / 3.0)
	_ = sf.Mul(x, x) // 1/9 rounds in posit16
	_ = sf.Div(one, sf.Sub(one, one))
	_ = third

	snap := rec.Snapshot()
	if snap.Format != f.Name() || snap.Reference != "float64" || snap.SampleEvery != 1 {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if snap.TotalOps != 5 || snap.MeasuredOps != 5 {
		t.Fatalf("ops: total %d measured %d, want 5/5", snap.TotalOps, snap.MeasuredOps)
	}
	byKey := map[string]shadow.OpStats{}
	for _, s := range snap.Stats {
		byKey[s.Label+"/"+s.Site+"/"+s.Op] = s
	}
	if s := byKey["run/scalar/add"]; s.Count != 1 || s.Exact != 1 {
		t.Fatalf("add cell: %+v", s)
	}
	if s := byKey["phase2/scalar/mul"]; s.Count != 1 || s.Exact != 0 || float64(s.MaxRel) <= 0 || len(s.RelHist) != 1 {
		t.Fatalf("mul cell: %+v", s)
	}
	// Division by an exact zero has no defined reference: a bad op.
	if s := byKey["phase2/scalar/div"]; s.Count != 1 || s.Bad != 1 {
		t.Fatalf("div-by-zero cell: %+v", s)
	}
	// The inexact multiply must rank in the worst list with its operands.
	found := false
	for _, w := range snap.Worst {
		if w.Op == "mul" && w.Label == "phase2" {
			found = true
			if float64(w.Rel) <= 0 || float64(w.Got) == float64(w.Ref) {
				t.Fatalf("worst sample not measuring an error: %+v", w)
			}
		}
	}
	if !found {
		t.Fatalf("inexact mul missing from worst list: %+v", snap.Worst)
	}
}

// TestSamplingStride checks the global stride: measuring every 4th of
// 100 operations must record exactly 25 measurements.
func TestSamplingStride(t *testing.T) {
	sf, rec := shadow.Wrap(arith.Posit16e2, shadow.Config{SampleEvery: 4})
	one := sf.One()
	for i := 0; i < 100; i++ {
		_ = sf.Add(one, one)
	}
	snap := rec.Snapshot()
	if snap.TotalOps != 100 || snap.MeasuredOps != 25 {
		t.Fatalf("total %d measured %d, want 100/25", snap.TotalOps, snap.MeasuredOps)
	}
}

// TestKernelSites checks that kernel dispatch lands in per-site cells
// and that full sampling measures every kernel lane exactly once.
func TestKernelSites(t *testing.T) {
	f := arith.Posit16e2
	sf, rec := shadow.Wrap(f, shadow.Config{SampleEvery: 1})
	bk, ok := sf.(arith.BulkFormat)
	if !ok {
		t.Fatal("shadow-wrapped format must implement arith.BulkFormat")
	}
	n := 33
	x := make([]arith.Num, n)
	y := make([]arith.Num, n)
	for i := range x {
		x[i] = sf.FromFloat64(1 + float64(i)/7)
		y[i] = sf.FromFloat64(2 - float64(i)/11)
	}
	_ = bk.DotKernel(x, y)
	bk.AxpyKernel(sf.FromFloat64(0.3), x, y)
	bk.ScaleKernel(sf.FromFloat64(1.0/3), x)

	snap := rec.Snapshot()
	want := map[string]uint64{"dot": uint64(n), "axpy": uint64(n), "scale": uint64(n)}
	got := map[string]uint64{}
	for _, s := range snap.Stats {
		got[s.Site] += s.Count
	}
	for site, n := range want {
		if got[site] != n {
			t.Errorf("site %s: %d measured ops, want %d (stats %+v)", site, got[site], n, snap.Stats)
		}
	}
	if snap.TotalOps != uint64(3*n) {
		t.Errorf("TotalOps = %d, want %d", snap.TotalOps, 3*n)
	}
}

// TestWorstBounded checks the top-K list: bounded length, sorted
// descending by relative error.
func TestWorstBounded(t *testing.T) {
	sf, rec := shadow.Wrap(arith.Posit16e1, shadow.Config{SampleEvery: 1, TopK: 4})
	for i := 0; i < 50; i++ {
		v := sf.FromFloat64(1.0/3.0 + float64(i)*0.01)
		_ = sf.Mul(v, v)
	}
	worst := rec.Snapshot().Worst
	if len(worst) == 0 || len(worst) > 4 {
		t.Fatalf("worst list has %d entries, want 1..4", len(worst))
	}
	for i := 1; i < len(worst); i++ {
		if float64(worst[i].Rel) > float64(worst[i-1].Rel) {
			t.Fatalf("worst not sorted descending: %+v", worst)
		}
	}
}

// TestLabelCap checks bounded memory: past MaxLabels, new labels
// collapse into the "other" cell instead of growing the map.
func TestLabelCap(t *testing.T) {
	sf, rec := shadow.Wrap(arith.Posit16e2, shadow.Config{SampleEvery: 1, MaxLabels: 1})
	one := sf.One()
	// Fill the single allowed label's op cells (cap is MaxLabels ×
	// number of op kinds = 6 cells).
	rec.SetLabel("a")
	_ = sf.Add(one, one)
	_ = sf.Sub(one, one)
	_ = sf.Mul(one, one)
	_ = sf.Div(one, one)
	_ = sf.Sqrt(one)
	_ = sf.MulAdd(one, one, one)
	rec.SetLabel("b")
	_ = sf.Add(one, one)
	labels := map[string]bool{}
	for _, s := range rec.Snapshot().Stats {
		labels[s.Label] = true
	}
	if !labels["other"] || labels["b"] {
		t.Fatalf("label cap not enforced: %v", labels)
	}
}

// TestFloatJSON checks the null encoding of non-finite values.
func TestFloatJSON(t *testing.T) {
	b, err := json.Marshal(struct {
		A shadow.Float `json:"a"`
		B shadow.Float `json:"b"`
		C shadow.Float `json:"c"`
		D shadow.Float `json:"d"`
	}{shadow.Float(math.NaN()), shadow.Float(math.Inf(1)), shadow.Float(math.Inf(-1)), 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); got != `{"a":null,"b":null,"c":null,"d":1.5}` {
		t.Fatalf("marshal = %s", got)
	}
}

func TestDiagnoseCG(t *testing.T) {
	a := laplacian1D(50)
	rhs := onesRHS(a)
	rep, err := shadow.Diagnose(context.Background(), a, rhs, "lap50", shadow.Options{
		Solver: "cg", Format: arith.Posit32e2, Sample: shadow.Config{SampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matrix != "lap50" || rep.Solver != "cg" || rep.Format != arith.Posit32e2.Name() || rep.N != 50 {
		t.Fatalf("report header: %+v", rep)
	}
	if !rep.Converged || rep.Failed || rep.Iterations == 0 {
		t.Fatalf("cg run: %+v", rep)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no divergence trace")
	}
	last := rep.Trace[len(rep.Trace)-1]
	if last.Iter != rep.Iterations {
		t.Errorf("trace ends at iter %d, run had %d", last.Iter, rep.Iterations)
	}
	if fe := float64(rep.ForwardError); !(fe >= 0 && fe < 1e-3) {
		t.Errorf("forward error vs shadow solution: %g", fe)
	}
	if rep.Envelope == nil || float64(rep.Envelope.EnvelopeDigits) <= 0 {
		t.Fatalf("envelope missing: %+v", rep.Envelope)
	}
	if rep.Telemetry.Reference != "bigfp256" {
		t.Errorf("32-bit format must use the big.Float engine, got %s", rep.Telemetry.Reference)
	}
	if len(rep.Telemetry.Stats) == 0 || rep.SampleEvery != 1 {
		t.Fatalf("telemetry: %+v", rep.Telemetry)
	}
	// Artifacts render non-empty for a traced run.
	if js, err := rep.JSON(); err != nil || !json.Valid(js) {
		t.Fatalf("JSON artifact: %v", err)
	}
	if csv := rep.TraceCSV(); !strings.HasPrefix(csv, "iter,divergence,residual,shadow_residual") {
		t.Fatalf("trace CSV: %q", csv)
	}
	if !strings.Contains(rep.StatsCSV(), "muladd") {
		t.Fatalf("stats CSV: %q", rep.StatsCSV())
	}
	if svg := rep.DecaySVG(); !strings.Contains(svg, "<svg") {
		t.Fatalf("decay SVG: %q", svg)
	}
}

func TestDiagnoseCholesky(t *testing.T) {
	a := laplacian1D(30)
	rhs := onesRHS(a)
	rep, err := shadow.Diagnose(context.Background(), a, rhs, "lap30", shadow.Options{
		Solver: "cholesky", Format: arith.Posit16e1, Sample: shadow.Config{SampleEvery: 1}, Rescale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Failed {
		t.Fatalf("cholesky run: %+v", rep)
	}
	if len(rep.Columns) == 0 || len(rep.Columns) > 32 {
		t.Fatalf("column diagnostics: %d entries", len(rep.Columns))
	}
	for i := 1; i < len(rep.Columns); i++ {
		if rep.Columns[i].Col <= rep.Columns[i-1].Col {
			t.Fatalf("columns not ascending: %+v", rep.Columns)
		}
	}
	labels := map[string]bool{}
	for _, s := range rep.Telemetry.Stats {
		labels[s.Label] = true
	}
	if !labels["factor"] || !labels["solve"] {
		t.Fatalf("phase labels missing: %v", labels)
	}
	if !strings.HasPrefix(rep.ColumnsCSV(), "col,rel_err,digits") {
		t.Fatalf("columns CSV: %q", rep.ColumnsCSV())
	}
	if fr := float64(rep.FinalResidual); !(fr > 0 && fr < 1e-1) {
		t.Errorf("backward error: %g", fr)
	}
	if sr := float64(rep.ShadowFinalResidual); !(sr >= 0 && sr < 1e-12) {
		t.Errorf("shadow backward error: %g", sr)
	}
}

func TestDiagnoseIR(t *testing.T) {
	a := laplacian1D(40)
	rhs := onesRHS(a)
	rep, err := shadow.Diagnose(context.Background(), a, rhs, "lap40", shadow.Options{
		Solver: "ir", Format: arith.Posit16e1, Sample: shadow.Config{SampleEvery: 1}, Higham: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Failed {
		t.Fatalf("ir run: %+v", rep)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no refinement trace")
	}
	// Refinement recovers float64-level backward error from a 16-bit
	// factorization (the paper's Table II/III premise).
	if be := float64(rep.FinalResidual); !(be > 0 && be < 1e-14) {
		t.Errorf("refined backward error: %g", be)
	}
	if rep.Envelope == nil {
		t.Fatal("envelope missing")
	}
	// IR converges past the factorization format's envelope: achieved
	// digits come from float64 refinement, not the 16-bit factor.
	if r := float64(rep.Envelope.Ratio); !(r > 1) {
		t.Errorf("envelope ratio = %g, want > 1 for refined ir", r)
	}
}

// TestDiagnoseIterationsMatchPlain: the diagnosed format run is the
// same run — iteration counts must match an undiagnosed solve of the
// same request exactly.
func TestDiagnoseIterationsMatchPlain(t *testing.T) {
	a := laplacian1D(40)
	rhs := onesRHS(a)
	f := arith.Posit16e2
	plain := solvers.MixedIR(a, rhs, f, solvers.IRScaling{}, solvers.IROptions{Tol: 1e-15, MaxIter: 1000})
	rep, err := shadow.Diagnose(context.Background(), a, rhs, "lap40", shadow.Options{
		Solver: "ir", Format: f,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != plain.Iterations {
		t.Fatalf("diagnosed ir took %d corrections, plain run %d", rep.Iterations, plain.Iterations)
	}
	if float64(rep.FinalResidual) != plain.BackwardError {
		t.Fatalf("diagnosed backward error %g, plain %g", float64(rep.FinalResidual), plain.BackwardError)
	}
	if rep.SampleEvery != shadow.DefaultSampleEvery {
		t.Errorf("default sampling stride = %d, want %d", rep.SampleEvery, shadow.DefaultSampleEvery)
	}
}

func TestDiagnoseValidation(t *testing.T) {
	a := laplacian1D(10)
	rhs := onesRHS(a)
	if _, err := shadow.Diagnose(context.Background(), a, rhs, "x", shadow.Options{Solver: "cg"}); err == nil {
		t.Error("nil format accepted")
	}
	if _, err := shadow.Diagnose(context.Background(), a, rhs[:5], "x", shadow.Options{Solver: "cg", Format: arith.Float16}); err == nil {
		t.Error("mismatched rhs accepted")
	}
	if _, err := shadow.Diagnose(context.Background(), a, rhs, "x", shadow.Options{Solver: "lu", Format: arith.Float16}); err == nil {
		t.Error("unknown solver accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := shadow.Diagnose(ctx, a, rhs, "x", shadow.Options{Solver: "cg", Format: arith.Float16}); err == nil {
		t.Error("canceled context not propagated")
	}
}

func TestGauges(t *testing.T) {
	var g shadow.Gauges
	sf, rec := shadow.Wrap(arith.Posit16e1, shadow.Config{SampleEvery: 1})
	v := sf.FromFloat64(1.0 / 3.0)
	_ = sf.Mul(v, v)
	_ = sf.Div(sf.One(), sf.Sub(sf.One(), sf.One())) // one bad op
	snap := rec.Snapshot()
	g.Merge(&snap)
	g.Merge(&snap)
	gs := g.Snapshot()
	if gs.Runs != 2 || gs.ShadowedOps != 2*snap.TotalOps || gs.MeasuredOps != 2*snap.MeasuredOps {
		t.Fatalf("gauges: %+v (snap %+v)", gs, snap)
	}
	if gs.BadOps != 2 {
		t.Errorf("bad ops = %d, want 2", gs.BadOps)
	}
	if float64(gs.MaxRel) <= 0 {
		t.Errorf("max rel = %g, want > 0", float64(gs.MaxRel))
	}
}
