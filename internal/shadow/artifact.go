package shadow

// Report artifacts: JSON for the API, CSV for spreadsheet analysis of
// the traces and histograms, and an SVG error-decay figure in the
// style of the repo's other regenerated paper figures. Plus the
// process-wide Gauges the serving layer publishes to /debug/metrics.

import (
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"

	"positlab/internal/report"
	"positlab/internal/svgplot"
)

// JSON renders the report as indented JSON (non-finite values as
// null).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// TraceCSV renders the divergence trace as CSV.
func (r *Report) TraceCSV() string {
	rows := make([][]string, 0, len(r.Trace))
	for _, t := range r.Trace {
		rows = append(rows, []string{
			fmt.Sprintf("%d", t.Iter),
			report.Sci(float64(t.Divergence)),
			report.Sci(float64(t.Residual)),
			report.Sci(float64(t.ShadowResidual)),
		})
	}
	return report.CSV([]string{"iter", "divergence", "residual", "shadow_residual"}, rows)
}

// ColumnsCSV renders the Cholesky column diagnostics as CSV.
func (r *Report) ColumnsCSV() string {
	rows := make([][]string, 0, len(r.Columns))
	for _, c := range r.Columns {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Col),
			report.Sci(float64(c.RelErr)),
			fmt.Sprintf("%.2f", float64(c.Digits)),
		})
	}
	return report.CSV([]string{"col", "rel_err", "digits"}, rows)
}

// StatsCSV renders the telemetry histogram cells as CSV, one row per
// (label, site, op) cell.
func (r *Report) StatsCSV() string {
	rows := make([][]string, 0, len(r.Telemetry.Stats))
	for _, s := range r.Telemetry.Stats {
		rows = append(rows, []string{
			s.Label, s.Site, s.Op,
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%d", s.Exact),
			fmt.Sprintf("%d", s.Bad),
			report.Sci(float64(s.MaxRel)),
			report.Sci(float64(s.MaxUlp)),
		})
	}
	return report.CSV([]string{"label", "site", "op", "count", "exact", "bad", "max_rel", "max_ulp"}, rows)
}

// DecaySVG renders the divergence trace as a log-scale error-decay
// figure: divergence from the shadow trajectory, the true residual,
// and the shadow-precision residual floor, per iteration. Empty when
// the report has no trace (cholesky, failed runs).
func (r *Report) DecaySVG() string {
	if len(r.Trace) == 0 {
		return ""
	}
	div := svgplot.Series{Name: "divergence"}
	res := svgplot.Series{Name: "residual"}
	ref := svgplot.Series{Name: "shadow residual"}
	for _, t := range r.Trace {
		x := float64(t.Iter)
		appendFinite(&div, x, float64(t.Divergence))
		appendFinite(&res, x, float64(t.Residual))
		appendFinite(&ref, x, float64(t.ShadowResidual))
	}
	p := svgplot.Plot{
		Title:  fmt.Sprintf("%s / %s / %s: error decay", r.Matrix, r.Solver, r.Format),
		XLabel: "iteration",
		YLabel: "relative error",
		LogY:   true,
	}
	for _, s := range []svgplot.Series{div, res, ref} {
		if len(s.X) > 0 {
			p.Series = append(p.Series, s)
		}
	}
	if len(p.Series) == 0 {
		return ""
	}
	return p.SVG()
}

// appendFinite adds a point, skipping non-finite and non-positive
// values (the plot's log axis cannot place them).
func appendFinite(s *svgplot.Series, x, y float64) {
	if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
		return
	}
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Gauges aggregates shadow telemetry across diagnosis runs for the
// serving layer's metrics endpoints. All methods are safe for
// concurrent use.
type Gauges struct {
	runs     atomic.Uint64
	ops      atomic.Uint64
	measured atomic.Uint64
	bad      atomic.Uint64
	maxRel   atomic.Uint64 // float64 bits, monotone max
}

// Merge folds one run's telemetry into the gauges.
func (g *Gauges) Merge(s *Snapshot) {
	g.runs.Add(1)
	g.ops.Add(s.TotalOps)
	g.measured.Add(s.MeasuredOps)
	var bad uint64
	maxRel := 0.0
	for _, st := range s.Stats {
		bad += st.Bad
		if v := float64(st.MaxRel); v > maxRel {
			maxRel = v
		}
	}
	g.bad.Add(bad)
	for {
		old := g.maxRel.Load()
		if math.Float64frombits(old) >= maxRel {
			return
		}
		if g.maxRel.CompareAndSwap(old, math.Float64bits(maxRel)) {
			return
		}
	}
}

// GaugesSnapshot is a point-in-time copy of the gauges.
type GaugesSnapshot struct {
	// Runs counts completed diagnosis runs; ShadowedOps the format
	// operations they dispatched; MeasuredOps those measured against
	// the reference; BadOps the measured operations involving
	// NaR/NaN/Inf.
	Runs        uint64 `json:"runs"`
	ShadowedOps uint64 `json:"shadowed_ops"`
	MeasuredOps uint64 `json:"measured_ops"`
	BadOps      uint64 `json:"bad_ops"`
	// MaxRel is the largest relative error observed by any run.
	MaxRel Float `json:"max_rel"`
}

// Snapshot returns the current gauge values.
func (g *Gauges) Snapshot() GaugesSnapshot {
	return GaugesSnapshot{
		Runs:        g.runs.Load(),
		ShadowedOps: g.ops.Load(),
		MeasuredOps: g.measured.Load(),
		BadOps:      g.bad.Load(),
		MaxRel:      Float(math.Float64frombits(g.maxRel.Load())),
	}
}
