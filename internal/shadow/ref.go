package shadow

// Reference engines. A measured operation re-evaluates the same
// operand values in a higher precision and compares the format's
// result against it. Operand values are handed over as float64, which
// is exact: every supported format's finite values (posits up to 32
// bits, minifloats, float32) embed exactly in binary64.
//
// Formats of 16 bits or fewer use the float64 engine: their products
// are exact in binary64 and every other reference operation is
// correctly rounded at 2^-53, four-plus orders of magnitude below the
// smallest format ulp being measured. Wider formats (posit32*,
// float32, float64 itself) use 256-bit big.Float arithmetic so the
// reference stays far beyond the measured precision.

import (
	"math"
	"math/big"

	"positlab/internal/arith"
)

// measurement is one measured operation: exact operand/result images,
// the reference result (rounded to float64 for display), and the
// relative and ulp errors of the format result against the reference.
type measurement struct {
	a, b, c  float64
	got, ref float64
	rel, ulp float64
	bad      bool
}

type refEngine interface {
	name() string
	// measure returns the reference result of op applied to the exact
	// operand values and the relative error of got against it; ok is
	// false when the reference is undefined (division by zero, square
	// root of a negative), which callers count as a bad operation.
	measure(op Op, a, b, c, got float64) (ref, rel float64, ok bool)
}

// engineFor selects the reference engine by format width.
func engineFor(f arith.Format) refEngine {
	if widthOf(f) <= 16 {
		return f64Engine{}
	}
	return bigEngine{}
}

// widthOf returns the format's encoding width in bits (64 for unknown
// formats, which conservatively selects the big.Float engine).
func widthOf(f arith.Format) int {
	if c, ok := arith.PositConfig(f); ok {
		return c.N()
	}
	if m, ok := arith.MiniConfig(f); ok {
		return m.Width()
	}
	switch f.Name() {
	case "Float32":
		return 32
	case "Float64":
		return 64
	}
	return 64
}

// --- float64 engine ---

type f64Engine struct{}

func (f64Engine) name() string { return "float64" }

func (f64Engine) measure(op Op, a, b, c, got float64) (float64, float64, bool) {
	var ref float64
	switch op {
	case OpAdd:
		ref = a + b
	case OpSub:
		ref = a - b
	case OpMul:
		ref = a * b
	case OpDiv:
		if b == 0 {
			return 0, 0, false
		}
		ref = a / b
	case OpSqrt:
		if a < 0 {
			return 0, 0, false
		}
		ref = math.Sqrt(a)
	case OpMulAdd:
		ref = math.FMA(a, b, c)
	default:
		return 0, 0, false
	}
	return ref, relErr(got, ref), true
}

// relErr is |got − ref| / |ref|, with 0/0 = 0 and x/0 = +Inf (which
// the histograms clamp into the top bucket).
func relErr(got, ref float64) float64 {
	if got == ref {
		return 0
	}
	d := math.Abs(got - ref)
	if ref == 0 {
		return math.Inf(1)
	}
	return d / math.Abs(ref)
}

// --- 256-bit big.Float engine ---

type bigEngine struct{}

// bigPrec is the reference precision for wide formats: 256 bits keeps
// even a chain of posit32 values (≤ 28 significand bits each) exact
// through a fused multiply-add and leaves ~200 guard bits for division
// and square root.
const bigPrec = 256

func (bigEngine) name() string { return "bigfp256" }

func bf(x float64) *big.Float {
	return new(big.Float).SetPrec(bigPrec).SetFloat64(x)
}

func (bigEngine) measure(op Op, a, b, c, got float64) (float64, float64, bool) {
	z := new(big.Float).SetPrec(bigPrec)
	switch op {
	case OpAdd:
		z.Add(bf(a), bf(b))
	case OpSub:
		z.Sub(bf(a), bf(b))
	case OpMul:
		z.Mul(bf(a), bf(b))
	case OpDiv:
		if b == 0 {
			return 0, 0, false
		}
		z.Quo(bf(a), bf(b))
	case OpSqrt:
		if a < 0 {
			return 0, 0, false
		}
		z.Sqrt(bf(a))
	case OpMulAdd:
		z.Mul(bf(a), bf(b))
		z.Add(z, bf(c))
	default:
		return 0, 0, false
	}
	ref, _ := z.Float64()
	if got == ref {
		// Bit-equal after rounding the reference to float64: for a
		// float64-format operand set this means an exact match; the
		// sub-2^-53 discrepancy for wider-than-reference cases is far
		// below every bucket floor.
		if z.Cmp(bf(got)) == 0 {
			return ref, 0, true
		}
	}
	d := new(big.Float).SetPrec(bigPrec).Sub(bf(got), z)
	d.Abs(d)
	if z.Sign() == 0 {
		return ref, math.Inf(1), true
	}
	az := new(big.Float).SetPrec(bigPrec).Abs(z)
	rel, _ := d.Quo(d, az).Float64()
	return ref, rel, true
}

// --- local grid spacing (ulp) ---

// ulpFnFor builds a closure returning the format's local grid spacing
// (the gap between adjacent representable magnitudes) at a given
// positive magnitude, computed analytically from the format's
// scale/fraction geometry — no encode round trip, so it is cheap
// enough to run per measured operation. The closure captures plain
// integers only.
//
// For tapered formats the spacing is taken at the magnitude's own
// binade (floor(log2 v)); a reference value that rounds across a
// regime or binade boundary can land one bucket off, which is within
// the histograms' log2 resolution. In tapered tails where a posit has
// zero fraction bits the spacing is floored at one scale step, which
// understates the true inter-regime gap — ulp errors there read large,
// deliberately flagging the precision cliff.
func ulpFnFor(f arith.Format) func(v float64) float64 {
	if c, ok := arith.PositConfig(f); ok {
		minS, maxS := c.MinScale(), c.MaxScale()
		fbAt := c.FracBitsAtScale
		return func(v float64) float64 {
			s := math.Ilogb(v)
			if s < minS || s > maxS {
				return 0
			}
			return math.Ldexp(1, s-fbAt(s))
		}
	}
	if m, ok := arith.MiniConfig(f); ok {
		emin, emax, frac := m.Emin(), m.Emax(), m.FracBits()
		return ieeeUlpFn(emin, emax, frac)
	}
	switch f.Name() {
	case "Float32":
		return ieeeUlpFn(-126, 127, 23)
	case "Float64":
		return ieeeUlpFn(-1022, 1023, 52)
	}
	return func(float64) float64 { return 0 }
}

func ieeeUlpFn(emin, emax, frac int) func(v float64) float64 {
	return func(v float64) float64 {
		e := math.Ilogb(v)
		if e > emax {
			return 0
		}
		if e < emin {
			e = emin // subnormal range: fixed spacing 2^(emin-frac)
		}
		return math.Ldexp(1, e-frac)
	}
}
