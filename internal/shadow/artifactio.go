package shadow

import (
	"fmt"
	"path/filepath"
	"strings"

	"positlab/internal/faultfs"
)

// artifactSlug builds the file-name stem for a report's artifact set
// from its identifying fields, normalized to filesystem-safe runes.
func (r *Report) artifactSlug() string {
	slug := fmt.Sprintf("%s_%s_%s", r.Matrix, r.Solver, r.Format)
	slug = strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-' || c == '_' || c == '.':
			return c
		default:
			return '-'
		}
	}, slug)
	if slug == "__" || slug == "" {
		slug = "report"
	}
	return slug
}

// WriteArtifacts renders every diagnostic artifact of the report —
// report JSON, per-sample trace CSV, per-column summary CSV, stats
// CSV, and the error-decay SVG — into dir through the faultfs seam,
// each with the atomic-replace protocol, and returns the paths
// written. A nil fsys means the real filesystem.
//
// Artifacts are regenerable (re-running the diagnosis recreates them
// bit-for-bit), so a failed write aborts with an error rather than
// leaving a silent gap: the caller decides whether a missing artifact
// is fatal.
func (r *Report) WriteArtifacts(fsys faultfs.FS, dir string) ([]string, error) {
	fsys = faultfs.OrOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shadow: artifacts dir: %w", err)
	}
	js, err := r.JSON()
	if err != nil {
		return nil, fmt.Errorf("shadow: marshal report: %w", err)
	}
	slug := r.artifactSlug()
	files := []struct {
		suffix string
		body   []byte
	}{
		{"report.json", js},
		{"trace.csv", []byte(r.TraceCSV())},
		{"columns.csv", []byte(r.ColumnsCSV())},
		{"stats.csv", []byte(r.StatsCSV())},
		{"decay.svg", []byte(r.DecaySVG())},
	}
	var written []string
	for _, f := range files {
		path := filepath.Join(dir, slug+"_"+f.suffix)
		if err := faultfs.WriteFileAtomic(fsys, path, f.body); err != nil {
			return written, fmt.Errorf("shadow: write %s: %w", filepath.Base(path), err)
		}
		written = append(written, path)
	}
	return written, nil
}
