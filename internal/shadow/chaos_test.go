package shadow_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/faultfs"
	"positlab/internal/shadow"
)

// TestChaosArtifacts drives the report artifact writer under
// randomized fault schedules: every artifact file present afterwards
// must be bit-identical to its expected rendering (each file is an
// independent atomic replace), and once WriteArtifacts acknowledged
// success the full set must survive even a later crash.
//
// Reproduce a failure with the seed it prints:
//
//	POSITLAB_CHAOS_REPLAY=<seed> go test -run TestChaosArtifacts ./internal/shadow/
func TestChaosArtifacts(t *testing.T) {
	rep := chaosReport(t)

	// Expected renderings, computed once on a clean path.
	cleanDir := t.TempDir()
	cleanPaths, err := rep.WriteArtifacts(nil, cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{} // base name -> content
	for _, p := range cleanPaths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		want[filepath.Base(p)] = b
	}

	opts := faultfs.OptionsFromEnv(150, t.Logf)
	opts.Horizon = 24
	root := t.TempDir()
	var (
		dir   string
		acked bool
		runID int
	)
	err = faultfs.Explore(opts,
		func(seed int64, fsys faultfs.FS) error {
			runID++
			dir = filepath.Join(root, fmt.Sprintf("s%06d", runID))
			acked = false
			_, werr := rep.WriteArtifacts(fsys, dir)
			if werr == nil {
				acked = true
				return nil
			}
			if errors.Is(werr, faultfs.ErrInjected) {
				return nil
			}
			return werr
		},
		func(seed int64, crashed bool) error {
			for name, body := range want {
				got, rerr := os.ReadFile(filepath.Join(dir, name))
				if rerr != nil {
					if acked {
						return fmt.Errorf("acknowledged artifact %s lost (crashed=%v): %w", name, crashed, rerr)
					}
					continue
				}
				if !bytes.Equal(got, body) {
					return fmt.Errorf("artifact %s torn: %d bytes vs %d expected", name, len(got), len(body))
				}
			}
			// No half-written temp files may leak into the artifact
			// dir on the non-crash paths (a crash legitimately strands
			// its in-flight temp).
			if !crashed {
				ents, derr := os.ReadDir(dir)
				if derr != nil {
					return nil // dir never created: nothing to check
				}
				for _, e := range ents {
					if _, expected := want[e.Name()]; !expected {
						return fmt.Errorf("stray file %s left behind without a crash", e.Name())
					}
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// chaosReport builds a small but non-trivial report via the public
// diagnosis path so the artifacts have real samples in them.
func chaosReport(t *testing.T) *shadow.Report {
	t.Helper()
	a := laplacian1D(24)
	rep, err := shadow.Diagnose(context.Background(), a, onesRHS(a), "lap24", shadow.Options{
		Solver: "cg", Format: arith.Posit32e2, Sample: shadow.Config{SampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
