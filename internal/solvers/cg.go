// Package solvers implements the paper's three solver workloads over
// any arith.Format: the conjugate gradient method (Algorithm 1),
// Cholesky factorization with triangular solves (Algorithm 2), and
// mixed-precision iterative refinement with a low-precision
// factorization and Float64 refinement (§IV-E, §V-D).
package solvers

import (
	"context"

	"positlab/internal/arith"
	"positlab/internal/linalg"
)

// CGResult reports a conjugate-gradient run.
type CGResult struct {
	// Iterations performed (the paper's Fig. 6/7 y-axis).
	Iterations int
	// Converged reports that the recurrence residual satisfied
	// ‖r‖ ≤ tol·‖b‖ within the iteration cap.
	Converged bool
	// Failed reports an arithmetic exception (posit NaR, IEEE NaN/Inf)
	// during the iteration, which also means not converged.
	Failed bool
	// RelResidual is the final recurrence-residual ratio ‖r‖/‖b‖ as
	// computed in the working format.
	RelResidual float64
	// History records ‖r‖/‖b‖ after each completed iteration, measured
	// in float64 like every reporting metric. History[k] is the state
	// after iteration k+1; a run that fails mid-iteration has no entry
	// for the failing step.
	History []float64
	// X is the computed solution, exact float64 images of the format
	// iterates.
	X []float64
}

// CG runs Algorithm 1 of the paper in the matrix's format: plain
// conjugate gradients with the residual maintained by the recurrence
// r ← r − α·A·p and the convergence test ‖r‖ ≤ tol·‖b‖ evaluated on the
// recurrence residual (the paper notes and accepts the slight
// premature-convergence bias this brings, §IV-C).
func CG(a *linalg.SparseNum, b []arith.Num, tol float64, maxIter int) CGResult {
	res, _ := CGCtx(context.Background(), a, b, tol, maxIter)
	return res
}

// CGCtx is CG with a cancellation checkpoint at the top of every
// iteration: when ctx expires the loop stops promptly and the partial
// result is returned together with the context's error. The iterates
// are bit-identical to CG's for the iterations that did run.
func CGCtx(ctx context.Context, a *linalg.SparseNum, b []arith.Num, tol float64, maxIter int) (CGResult, error) {
	return CGCheckpointed(ctx, a, b, tol, maxIter, CGCheckpointOptions{})
}

// CGCheckpointed is CGCtx with durable-checkpoint support: with
// ck.Every > 0 it hands the complete iteration state to
// ck.OnCheckpoint at that cadence, and with ck.Resume set it continues
// a previous run from its checkpoint instead of starting at x₀ = 0.
// Checkpoint emission never perturbs the iteration, and a resumed run
// produces iterates bit-identical to the uninterrupted run's from the
// checkpointed iteration onward.
func CGCheckpointed(ctx context.Context, a *linalg.SparseNum, b []arith.Num, tol float64, maxIter int, ck CGCheckpointOptions) (CGResult, error) {
	f := a.F
	n := a.N

	var (
		x, r, p []arith.Num
		rr      arith.Num
		normB2  float64
	)
	ap := linalg.NewVec(f, n)
	start := 0
	res := CGResult{}

	if ck.Resume != nil {
		if err := ck.Resume.valid(n); err != nil {
			return res, err
		}
		x = copyNums(ck.Resume.X)
		r = copyNums(ck.Resume.R)
		p = copyNums(ck.Resume.P)
		rr = ck.Resume.RR
		start = ck.Resume.Iter
		res.Iterations = start
		res.History = copyFloats(ck.Resume.History)
		// ‖b‖² is not part of the checkpoint: recompute it exactly as
		// the fresh path does (x₀ = 0 ⇒ r₀ = b there), so the threshold
		// and the float64 history denominators are identical.
		normB2 = f.ToFloat64(linalg.Dot(f, b, b))
	} else {
		x = linalg.NewVec(f, n)
		r = append([]arith.Num(nil), b...)
		p = append([]arith.Num(nil), b...)
		rr = linalg.Dot(f, r, r)
		normB2 = f.ToFloat64(rr) // x₀ = 0 ⇒ r₀ = b
	}
	thresh := tol * tol * normB2

	if ck.Resume == nil {
		if f.Bad(rr) {
			res.Failed = true
			res.X = linalg.VecToFloat64(f, x)
			return res, nil
		}
		if f.ToFloat64(rr) <= thresh {
			res.Converged = true
			res.X = linalg.VecToFloat64(f, x)
			return res, nil
		}
	}

	for k := start; k < maxIter; k++ {
		if err := ctx.Err(); err != nil {
			res.X = linalg.VecToFloat64(f, x)
			return res, err
		}
		a.MatVec(p, ap)
		pap := linalg.Dot(f, p, ap)
		alpha := f.Div(rr, pap)
		if f.Bad(alpha) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		linalg.Axpy(f, alpha, p, x)         // x += α p
		linalg.Axpy(f, f.Neg(alpha), ap, r) // r -= α Ap
		rrNew := linalg.Dot(f, r, r)
		if f.Bad(rrNew) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		res.Iterations = k + 1
		// Reporting metric, not iteration state: the per-iteration
		// residual history is measured in float64 (normB2 > 0 inside
		// the loop: rr > thresh ≥ 0 at entry).
		res.History = append(res.History, sqrtf(f.ToFloat64(rrNew)/normB2)) //lint:allow precision residual history is a float64 reporting metric
		if ck.OnIteration != nil {
			ck.OnIteration(k+1, x, r)
		}
		if f.ToFloat64(rrNew) <= thresh {
			res.Converged = true
			rr = rrNew
			break
		}
		beta := f.Div(rrNew, rr)
		if f.Bad(beta) {
			res.Failed = true
			break
		}
		// p = r + β p (one fused kernel pass; fl(fl(β·p)+r) is
		// bit-identical to the scalar Add(r, Mul(β, p)) form).
		linalg.MulAddVec(f, beta, p, r, p)
		rr = rrNew
		// The loop state for iteration k+1 is now complete — the only
		// point where a snapshot can resume without re-running any
		// arithmetic of iteration k.
		if ck.Every > 0 && ck.OnCheckpoint != nil && (k+1)%ck.Every == 0 {
			cp := &CGCheckpoint{
				Iter:    k + 1,
				X:       copyNums(x),
				R:       copyNums(r),
				P:       copyNums(p),
				RR:      rr,
				History: copyFloats(res.History),
			}
			if err := ck.OnCheckpoint(cp); err != nil {
				res.X = linalg.VecToFloat64(f, x)
				return res, err
			}
		}
	}
	res.X = linalg.VecToFloat64(f, x)
	if normB2 > 0 {
		// Reporting metric, not iteration state: the final relative
		// residual is measured in float64 like every other metric.
		res.RelResidual = sqrtf(f.ToFloat64(rr) / normB2) //lint:allow precision final residual is a float64 reporting metric
	}
	return res, nil
}

func sqrtf(x float64) float64 {
	if x < 0 {
		return 0
	}
	return sqrt64(x)
}
