package solvers_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/posit"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func newQuireSolver(c posit.Config, a *linalg.Sparse) *solvers.CGQuire {
	return solvers.NewCGQuire(c, a.RowPtr, a.Col, a.Val)
}

func positRHS(c posit.Config, b []float64) []posit.Bits {
	out := make([]posit.Bits, len(b))
	for i, v := range b {
		out[i] = c.FromFloat64(v)
	}
	return out
}

func TestCGQuireConverges(t *testing.T) {
	a := laplacian1D(50)
	want, b := onesRHS(a)
	for _, c := range []posit.Config{posit.Posit32e2, posit.Posit16e2} {
		res := newQuireSolver(c, a).Solve(positRHS(c, b), 1e-4, 10*a.N)
		if res.Failed || !res.Converged {
			t.Fatalf("%v: %+v", c, res)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-2 {
				t.Fatalf("%v: x[%d] = %g", c, i, res.X[i])
			}
		}
	}
}

// The deferred-rounding ablation: on an ill-scaled suite matrix the
// quire-fused CG must converge at least as fast as round-per-op CG in
// the same posit format (exact reductions can only help).
func TestCGQuireVsRoundPerOp(t *testing.T) {
	tgt, err := matgen.TargetByName("bcsstk01")
	if err != nil {
		t.Fatal(err)
	}
	m := matgen.Generate(tgt)
	a := m.A.Clone()
	b := append([]float64(nil), m.B...)
	scaling.RescaleSystemCG(a, b)

	c := posit.Posit32e2
	cap := 10 * a.N
	quire := newQuireSolver(c, a).Solve(positRHS(c, b), 1e-5, cap)
	if !quire.Converged {
		t.Fatalf("quire CG did not converge: %+v", quire)
	}

	f := arith.Posit32e2
	plain := solvers.CG(a.ToFormat(f, false), linalg.VecFromFloat64(f, b), 1e-5, cap)
	if !plain.Converged {
		t.Fatalf("plain CG did not converge: %+v", plain)
	}
	t.Logf("posit(32,2) on rescaled bcsstk01: plain %d, quire %d iterations",
		plain.Iterations, quire.Iterations)
	if quire.Iterations > plain.Iterations+plain.Iterations/10+2 {
		t.Errorf("quire CG slower than plain: %d vs %d", quire.Iterations, plain.Iterations)
	}
}

func TestCGQuireZeroRHS(t *testing.T) {
	a := laplacian1D(8)
	c := posit.Posit16e2
	res := newQuireSolver(c, a).Solve(make([]posit.Bits, 8), 1e-5, 100)
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("%+v", res)
	}
}
