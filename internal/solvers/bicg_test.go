package solvers_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

func TestBiCGConverges(t *testing.T) {
	a := laplacian1D(40)
	want, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2} {
		an := a.ToFormat(f, false)
		res := solvers.BiCG(an, linalg.VecFromFloat64(f, b), 1e-5, 10*a.N)
		if res.Failed || !res.Converged {
			t.Fatalf("%s: %+v", f.Name(), res)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-3 {
				t.Fatalf("%s: x[%d] = %g", f.Name(), i, res.X[i])
			}
		}
		if res.MaxIterate <= 0 {
			t.Errorf("%s: MaxIterate not tracked", f.Name())
		}
	}
}

// On SPD systems BiCG follows the same Krylov space as CG; iteration
// counts should be comparable and the residual recurrences consistent.
func TestBiCGMatchesCGOnSPD(t *testing.T) {
	a := laplacian1D(60)
	_, b := onesRHS(a)
	f := arith.Float64
	an := a.ToFormat(f, false)
	bn := linalg.VecFromFloat64(f, b)
	cg := solvers.CG(an, bn, 1e-5, 10*a.N)
	bicg := solvers.BiCG(an, bn, 1e-5, 10*a.N)
	if !cg.Converged || !bicg.Converged {
		t.Fatal("both must converge")
	}
	diff := bicg.Iterations - cg.Iterations
	if diff < -2 || diff > 2 {
		t.Errorf("BiCG %d vs CG %d iterations on SPD", bicg.Iterations, cg.Iterations)
	}
}

// BiCG must solve genuinely nonsymmetric systems (convection-diffusion)
// where CG is inapplicable.
func TestBiCGNonsymmetric(t *testing.T) {
	n := 60
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2.4})
		if i > 0 {
			entries = append(entries, linalg.Entry{Row: i, Col: i - 1, Val: -1.4})
		}
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	a, err := linalg.NewSparseFromEntries(n, entries, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + float64(i%5)
	}
	b := make([]float64, n)
	a.MatVecF64(want, b)
	f := arith.Float64
	res := solvers.BiCG(a.ToFormat(f, false), linalg.VecFromFloat64(f, b), 1e-10, 20*n)
	if res.Failed || !res.Converged {
		t.Fatalf("%+v", res)
	}
	if be := solvers.BackwardError(a, b, res.X); be > 1e-9 {
		t.Fatalf("backward error %g", be)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], want[i])
		}
	}
}

func TestBiCGZeroRHS(t *testing.T) {
	a := laplacian1D(10)
	f := arith.Float64
	res := solvers.BiCG(a.ToFormat(f, false), linalg.NewVec(f, 10), 1e-5, 100)
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
}

func TestBiCGFailurePath(t *testing.T) {
	var entries []linalg.Entry
	n := 8
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 1e8})
	}
	a, _ := linalg.NewSparseFromEntries(n, entries, true)
	f := arith.Float16
	b := make([]float64, n)
	for i := range b {
		b[i] = 1e8
	}
	res := solvers.BiCG(a.ToFormat(f, false), linalg.VecFromFloat64(f, b), 1e-5, 100)
	if !res.Failed || res.Converged {
		t.Fatalf("expected failure: %+v", res)
	}
}
