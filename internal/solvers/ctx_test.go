package solvers_test

import (
	"context"
	"errors"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

// A context that reports expiry after a fixed number of Err calls,
// so cancellation lands deterministically mid-loop.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.DeadlineExceeded
}

func TestCGCtxMatchesCG(t *testing.T) {
	a := laplacian1D(40)
	_, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float64, arith.Posit32e2} {
		an := a.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, b)
		plain := solvers.CG(an, bn, 1e-5, 10*a.N)
		got, err := solvers.CGCtx(context.Background(), an, bn, 1e-5, 10*a.N)
		if err != nil {
			t.Fatalf("%s: CGCtx: %v", f.Name(), err)
		}
		if got.Iterations != plain.Iterations || got.Converged != plain.Converged ||
			got.RelResidual != plain.RelResidual {
			t.Fatalf("%s: CGCtx diverged from CG: %+v vs %+v", f.Name(), got, plain)
		}
		for i := range got.X {
			if got.X[i] != plain.X[i] {
				t.Fatalf("%s: x[%d] differs", f.Name(), i)
			}
		}
		if len(got.History) != got.Iterations {
			t.Fatalf("%s: history has %d entries for %d iterations", f.Name(), len(got.History), got.Iterations)
		}
		if got.History[len(got.History)-1] != got.RelResidual {
			t.Fatalf("%s: final history entry %g != RelResidual %g",
				f.Name(), got.History[len(got.History)-1], got.RelResidual)
		}
	}
}

func TestCGCtxCancelsPromptly(t *testing.T) {
	a := laplacian1D(60)
	_, b := onesRHS(a)
	an := a.ToFormat(arith.Float64, false)
	bn := linalg.VecFromFloat64(arith.Float64, b)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := solvers.CGCtx(ctx, an, bn, 1e-12, 10*a.N)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Fatalf("pre-canceled ctx ran %d iterations", res.Iterations)
	}

	// Cancellation mid-run stops at the checkpoint, keeping the
	// iterations already done.
	res, err = solvers.CGCtx(&countdownCtx{context.Background(), 5}, an, bn, 1e-12, 10*a.N)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("countdown ctx: err = %v, want deadline exceeded", err)
	}
	if res.Iterations != 5 {
		t.Fatalf("countdown ctx stopped after %d iterations, want 5", res.Iterations)
	}
}

func TestCholeskyCtxCancel(t *testing.T) {
	a := laplacian1D(30).ToDense().ToFormat(arith.Float64, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := solvers.CholeskyCtx(ctx, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("CholeskyCtx: err = %v, want context.Canceled", err)
	}
	if errors.Is(solvers.ErrNotPositiveDefinite, context.Canceled) {
		t.Fatal("sanity: breakdown error must stay distinguishable from cancellation")
	}
	// Uncanceled: bit-identical to the plain entry point.
	want, err := solvers.Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := solvers.CholeskyCtx(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.A {
		if want.A[i] != got.A[i] {
			t.Fatalf("factor entry %d differs", i)
		}
	}
}

func TestMixedIRCtxCancel(t *testing.T) {
	a := laplacian1D(30)
	_, b := onesRHS(a)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := solvers.MixedIRCtx(ctx, a, b, arith.Float16, solvers.IRScaling{}, solvers.IROptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MixedIRCtx: err = %v, want context.Canceled", err)
	}

	plain := solvers.MixedIR(a, b, arith.Float16, solvers.IRScaling{}, solvers.IROptions{})
	got, err := solvers.MixedIRCtx(context.Background(), a, b, arith.Float16, solvers.IRScaling{}, solvers.IROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != plain.Iterations || got.Converged != plain.Converged ||
		got.BackwardError != plain.BackwardError {
		t.Fatalf("MixedIRCtx diverged from MixedIR: %+v vs %+v", got, plain)
	}
	if len(got.History) == 0 {
		t.Fatal("MixedIRCtx recorded no backward-error history")
	}
	if got.History[len(got.History)-1] != got.BackwardError {
		t.Fatalf("final history entry %g != BackwardError %g",
			got.History[len(got.History)-1], got.BackwardError)
	}
}
