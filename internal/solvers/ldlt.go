package solvers

import (
	"positlab/internal/arith"
	"positlab/internal/linalg"
)

// LDLT computes the square-root-free factorization A = LᵀDL (unit
// upper-triangular L stored in the strict upper triangle, D on the
// diagonal) in the matrix's format.
//
// The paper attributes its power-of-four μ rounding to Cholesky's use
// of the square-root operator (§V-D2: "Cholesky factorization, unlike
// LU, makes use of the square-root operator"). LDLᵀ takes no square
// roots, so comparing the two factorizations under power-of-two vs
// power-of-four shifts isolates that explanation — see
// BenchmarkAblationLDLTShift.
func LDLT(a *linalg.DenseNum) (*linalg.DenseNum, error) {
	f := a.F
	n := a.N
	out := linalg.NewDenseNum(f, n)
	zero := f.Zero()

	for j := 0; j < n; j++ {
		// d_j = a_jj - Σ_{k<j} d_k · l_kj².
		dj := a.At(j, j)
		for k := 0; k < j; k++ {
			lkj := out.At(k, j)
			dj = f.Sub(dj, f.Mul(out.At(k, k), f.Mul(lkj, lkj)))
		}
		if f.Bad(dj) || f.IsZero(dj) || f.Less(dj, zero) {
			return nil, ErrNotPositiveDefinite
		}
		out.Set(j, j, dj)
		// l_ji = (a_ji - Σ_{k<j} d_k · l_kj · l_ki) / d_j.
		for i := j + 1; i < n; i++ {
			t := a.At(j, i)
			for k := 0; k < j; k++ {
				t = f.Sub(t, f.Mul(out.At(k, k), f.Mul(out.At(k, j), out.At(k, i))))
			}
			q := f.Div(t, dj)
			if f.Bad(q) {
				return nil, ErrNotPositiveDefinite
			}
			out.Set(j, i, q)
		}
	}
	return out, nil
}

// LDLTSolve solves A·x = b given the LDLT output: forward substitution
// with unit Lᵀ, diagonal scaling, back substitution with unit L.
func LDLTSolve(ld *linalg.DenseNum, b []arith.Num) []arith.Num {
	f := ld.F
	n := ld.N
	y := append([]arith.Num(nil), b...)
	// Lᵀ y = b (unit lower-triangular Lᵀ: entries ld[j][i] for j<i).
	for i := 0; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s = f.Sub(s, f.Mul(ld.At(j, i), y[j]))
		}
		y[i] = s
	}
	// D z = y.
	for i := 0; i < n; i++ {
		y[i] = f.Div(y[i], ld.At(i, i))
	}
	// L x = z (unit upper-triangular).
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s = f.Sub(s, f.Mul(ld.At(i, j), y[j]))
		}
		y[i] = s
	}
	return y
}

// LDLTDirectSolve factors and solves in one pass, the square-root-free
// analogue of CholeskySolve.
func LDLTDirectSolve(a *linalg.DenseNum, b []arith.Num) ([]arith.Num, error) {
	ld, err := LDLT(a)
	if err != nil {
		return nil, err
	}
	x := LDLTSolve(ld, b)
	if linalg.HasBad(a.F, x) {
		return nil, ErrNotPositiveDefinite
	}
	return x, nil
}
