package solvers

import (
	"positlab/internal/arith"
	"positlab/internal/linalg"
)

// PCG runs the conjugate gradient method with Jacobi (diagonal)
// preconditioning in the matrix's format.
//
// This exists as an ablation against the paper's rescaling strategy:
// Jacobi preconditioning improves the *conditioning* of the iteration
// like two-sided diagonal scaling would, but leaves the matrix entries
// and iterate magnitudes where they are — so if posit(32,2)'s trouble
// on large-norm systems were a conditioning problem, PCG would fix it,
// and if it is a representation-range problem (the paper's claim),
// only the explicit rescaling will. The ablation benchmark
// (BenchmarkAblationPrecondVsRescale) measures exactly this.
func PCG(a *linalg.SparseNum, diag []arith.Num, b []arith.Num, tol float64, maxIter int) CGResult {
	f := a.F
	n := a.N

	// Inverse diagonal; a zero or exceptional pivot fails immediately.
	invD := make([]arith.Num, n)
	for i := range invD {
		invD[i] = f.Div(f.One(), diag[i])
		if f.Bad(invD[i]) {
			return CGResult{Failed: true, X: make([]float64, n)}
		}
	}
	applyPrec := func(dst, src []arith.Num) {
		for i := range dst {
			dst[i] = f.Mul(invD[i], src[i])
		}
	}

	x := linalg.NewVec(f, n)
	r := append([]arith.Num(nil), b...)
	z := linalg.NewVec(f, n)
	applyPrec(z, r)
	p := append([]arith.Num(nil), z...)
	ap := linalg.NewVec(f, n)

	rz := linalg.Dot(f, r, z)
	normB2 := f.ToFloat64(linalg.Dot(f, b, b))
	thresh := tol * tol * normB2

	res := CGResult{}
	if f.Bad(rz) {
		res.Failed = true
		res.X = linalg.VecToFloat64(f, x)
		return res
	}
	if f.ToFloat64(linalg.Dot(f, r, r)) <= thresh {
		res.Converged = true
		res.X = linalg.VecToFloat64(f, x)
		return res
	}

	for k := 0; k < maxIter; k++ {
		a.MatVec(p, ap)
		pap := linalg.Dot(f, p, ap)
		alpha := f.Div(rz, pap)
		if f.Bad(alpha) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		linalg.Axpy(f, alpha, p, x)
		linalg.Axpy(f, f.Neg(alpha), ap, r)
		rr := linalg.Dot(f, r, r)
		if f.Bad(rr) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		res.Iterations = k + 1
		if f.ToFloat64(rr) <= thresh {
			res.Converged = true
			if normB2 > 0 {
				// Reporting metric, not iteration state (same contract
				// as CG).
				res.RelResidual = sqrtf(f.ToFloat64(rr) / normB2) //lint:allow precision final residual is a float64 reporting metric
			}
			break
		}
		applyPrec(z, r)
		rzNew := linalg.Dot(f, r, z)
		beta := f.Div(rzNew, rz)
		if f.Bad(beta) {
			res.Failed = true
			break
		}
		for i := range p {
			p[i] = f.Add(z[i], f.Mul(beta, p[i]))
		}
		rz = rzNew
	}
	res.X = linalg.VecToFloat64(f, x)
	return res
}
