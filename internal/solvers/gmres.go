package solvers

import (
	"math"

	"positlab/internal/arith"
	"positlab/internal/linalg"
)

// GMRES-IR: the paper notes (§V-D2) that its Table II failure cases
// "would be less likely to occur" with GMRES solving the correction
// equation instead of a plain triangular solve — the Carson–Higham
// GMRES-IR scheme. MixedIRGMRES implements it: the low-precision
// Cholesky factor preconditions a Float64 GMRES that solves each
// correction equation A·d = r, so a low-quality factorization still
// yields usable corrections.

// GMRESOptions tunes the inner correction solver.
type GMRESOptions struct {
	// InnerIter caps the Krylov dimension per correction solve
	// (default 20; no restarts — IR's outer loop plays that role).
	InnerIter int
	// InnerTol is the relative residual reduction demanded of the
	// preconditioned system (default 1e-4).
	InnerTol float64
}

func (o GMRESOptions) fill() GMRESOptions {
	if o.InnerIter == 0 {
		o.InnerIter = 20
	}
	if o.InnerTol == 0 {
		o.InnerTol = 1e-4
	}
	return o
}

// MixedIRGMRES runs mixed-precision iterative refinement with
// left-preconditioned GMRES corrections. The factorization stage and
// the scaling semantics are identical to MixedIR; only the correction
// solve differs.
func MixedIRGMRES(a *linalg.Sparse, b []float64, low arith.Format, sc IRScaling, opt IROptions, gopt GMRESOptions) IRResult {
	n := a.N
	gopt = gopt.fill()
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-15
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 1000
	}
	mu := sc.Mu
	if mu <= 0 {
		mu = 1
	}

	ah := a.ToDense()
	if sc.R != nil {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ah.Set(i, j, ah.At(i, j)*sc.R[i]*sc.R[j])
			}
		}
	}
	if mu != 1 {
		for i := range ah.A {
			ah.A[i] *= mu
		}
	}
	ahLow := ah.ToFormat(low, true)
	rLow, err := Cholesky(ahLow)
	res := IRResult{}
	if err != nil {
		res.FactorFailed = true
		return res
	}
	res.FactorError = FactorizationError(ah, rLow)
	rf := rLow.ToFloat64()

	// Preconditioner application: M⁻¹v = µ·R∘(Â⁻¹(R∘v)), the same map
	// MixedIR uses as its whole correction.
	applyM := func(v []float64) []float64 {
		u := make([]float64, n)
		if sc.R != nil {
			for i := range u {
				u[i] = sc.R[i] * v[i]
			}
		} else {
			copy(u, v)
		}
		w := solveCholF64(rf, u)
		if sc.R != nil {
			for i := range w {
				w[i] = mu * sc.R[i] * w[i]
			}
		} else if mu != 1 {
			for i := range w {
				w[i] = mu * w[i]
			}
		}
		return w
	}

	x := make([]float64, n)
	r := make([]float64, n)
	ax := make([]float64, n)
	normAF := a.NormFrob()
	normB := linalg.Norm2F64(b)

	for k := 1; k <= maxIter; k++ {
		a.MatVecF64(x, ax)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		eta := linalg.Norm2F64(r) / (normAF*linalg.Norm2F64(x) + normB)
		res.BackwardError = eta
		res.Iterations = k - 1
		res.X = append(res.X[:0], x...)
		if eta <= tol {
			res.Converged = true
			return res
		}
		if math.IsNaN(eta) || math.IsInf(eta, 0) {
			return res
		}
		d := gmresSolve(a, applyM, r, gopt)
		for i := range x {
			x[i] += d[i]
		}
	}
	res.Iterations = maxIter
	a.MatVecF64(x, ax)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	res.BackwardError = linalg.Norm2F64(r) / (normAF*linalg.Norm2F64(x) + normB)
	res.Converged = res.BackwardError <= tol
	res.X = x
	return res
}

// gmresSolve runs left-preconditioned GMRES on A·d = r in Float64:
// minimize ‖M⁻¹(r − A·d)‖ over the Krylov space of M⁻¹A.
func gmresSolve(a *linalg.Sparse, applyM func([]float64) []float64, r []float64, opt GMRESOptions) []float64 {
	n := a.N
	m := opt.InnerIter

	z0 := applyM(r)
	beta := linalg.Norm2F64(z0)
	d := make([]float64, n)
	if beta == 0 || math.IsNaN(beta) {
		return d
	}

	// Arnoldi with modified Gram-Schmidt and Givens-rotated
	// Hessenberg for the least-squares residual.
	v := make([][]float64, 1, m+1)
	v[0] = make([]float64, n)
	for i := range z0 {
		v[0][i] = z0[i] / beta
	}
	h := make([][]float64, 0, m) // h[j] has length j+2
	cs := make([]float64, 0, m)
	sn := make([]float64, 0, m)
	g := make([]float64, 1, m+1)
	g[0] = beta

	iters := 0
	for j := 0; j < m; j++ {
		w := make([]float64, n)
		a.MatVecF64(v[j], w)
		w = applyM(w)
		hj := make([]float64, j+2)
		for i := 0; i <= j; i++ {
			hj[i] = linalg.DotF64(w, v[i])
			linalg.AxpyF64(-hj[i], v[i], w)
		}
		wnorm := linalg.Norm2F64(w)
		hj[j+1] = wnorm

		// Apply accumulated rotations to the new column, then a new
		// rotation annihilating the subdiagonal entry.
		for i := 0; i < j; i++ {
			t := cs[i]*hj[i] + sn[i]*hj[i+1]
			hj[i+1] = -sn[i]*hj[i] + cs[i]*hj[i+1]
			hj[i] = t
		}
		denom := math.Hypot(hj[j], hj[j+1])
		var c, s float64
		if denom == 0 {
			c, s = 1, 0
		} else {
			c, s = hj[j]/denom, hj[j+1]/denom
		}
		cs = append(cs, c)
		sn = append(sn, s)
		hj[j] = denom
		hj[j+1] = 0
		h = append(h, hj)
		g = append(g, -s*g[j])
		g[j] = c * g[j]
		iters = j + 1

		// Converged, broke down, or found an invariant subspace.
		if math.Abs(g[j+1])/beta <= opt.InnerTol ||
			wnorm == 0 || math.IsNaN(wnorm) || denom == 0 {
			break
		}
		vj := make([]float64, n)
		for i := range w {
			vj[i] = w[i] / wnorm
		}
		v = append(v, vj)
	}

	// Back-substitute y from the triangular system H y = g.
	y := make([]float64, iters)
	for i := iters - 1; i >= 0; i-- {
		s := g[i]
		for j2 := i + 1; j2 < iters; j2++ {
			s -= h[j2][i] * y[j2]
		}
		if h[i][i] == 0 {
			y[i] = 0
			continue
		}
		y[i] = s / h[i][i]
	}
	for i := 0; i < iters; i++ {
		linalg.AxpyF64(y[i], v[i], d)
	}
	return d
}
