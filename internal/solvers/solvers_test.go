package solvers_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

func laplacian1D(n int) *linalg.Sparse {
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1})
		}
	}
	s, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		panic(err)
	}
	return s
}

// rhs for the known solution x = (1, 1, ..., 1).
func onesRHS(a *linalg.Sparse) ([]float64, []float64) {
	x := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	b := make([]float64, a.N)
	a.MatVecF64(x, b)
	return x, b
}

func TestCGConvergesAllFormats(t *testing.T) {
	a := laplacian1D(50)
	want, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2, arith.Posit32e3} {
		an := a.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, b)
		res := solvers.CG(an, bn, 1e-5, 10*a.N)
		if !res.Converged || res.Failed {
			t.Fatalf("%s: CG did not converge: %+v", f.Name(), res)
		}
		// 1D Laplacian with exact arithmetic converges in <= n steps.
		if res.Iterations > a.N+5 {
			t.Errorf("%s: CG took %d iterations", f.Name(), res.Iterations)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-3 {
				t.Fatalf("%s: x[%d] = %g, want 1", f.Name(), i, res.X[i])
			}
		}
		if be := solvers.BackwardError(a, b, res.X); be > 1e-5 {
			t.Errorf("%s: backward error %g > 1e-5", f.Name(), be)
		}
	}
}

func TestCGExactStart(t *testing.T) {
	// b = 0 means x = 0 converges immediately.
	a := laplacian1D(10)
	f := arith.Float64
	an := a.ToFormat(f, false)
	res := solvers.CG(an, linalg.NewVec(f, 10), 1e-5, 100)
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
}

func TestCGFailurePath(t *testing.T) {
	// A matrix far outside Float16 range, cast unclamped: the matvec
	// meets Inf and CG must flag failure, not loop or lie.
	var entries []linalg.Entry
	n := 8
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 1e8})
	}
	a, _ := linalg.NewSparseFromEntries(n, entries, true)
	f := arith.Float16
	an := a.ToFormat(f, false)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1e8
	}
	res := solvers.CG(an, linalg.VecFromFloat64(f, b), 1e-5, 100)
	if !res.Failed {
		t.Fatalf("expected arithmetic failure, got %+v", res)
	}
	if res.Converged {
		t.Fatal("failed run must not report convergence")
	}
}

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4, 2], [2, 5]] = RᵀR with R = [[2, 1], [0, 2]].
	d := linalg.NewDense(2)
	d.Set(0, 0, 4)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 5)
	for _, f := range []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2, arith.Float16, arith.Posit16e2} {
		r, err := solvers.Cholesky(d.ToFormat(f, false))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		rf := r.ToFloat64()
		if rf.At(0, 0) != 2 || rf.At(0, 1) != 1 || rf.At(1, 1) != 2 || rf.At(1, 0) != 0 {
			t.Fatalf("%s: R = %v", f.Name(), rf.A)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	a := laplacian1D(30)
	want, b := onesRHS(a)
	d := a.ToDense()
	for _, f := range []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2, arith.Posit32e3} {
		x, err := solvers.CholeskySolve(d.ToFormat(f, false), linalg.VecFromFloat64(f, b))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		xf := linalg.VecToFloat64(f, x)
		for i := range want {
			if math.Abs(xf[i]-want[i]) > 1e-3 {
				t.Fatalf("%s: x[%d] = %g", f.Name(), i, xf[i])
			}
		}
		if be := solvers.BackwardError(a, b, xf); be > 1e-5 {
			t.Errorf("%s: backward error %g", f.Name(), be)
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	d := linalg.NewDense(2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := solvers.Cholesky(d.ToFormat(arith.Float64, false)); err == nil {
		t.Fatal("indefinite matrix must fail")
	}
	z := linalg.NewDense(2) // zero matrix: zero pivot
	if _, err := solvers.Cholesky(z.ToFormat(arith.Float64, false)); err == nil {
		t.Fatal("zero matrix must fail")
	}
}

func TestTriangularSolves(t *testing.T) {
	f := arith.Float64
	// R = [[2, 1, 0], [0, 3, 1], [0, 0, 4]].
	r := linalg.NewDenseNum(f, 3)
	set := func(i, j int, v float64) { r.Set(i, j, f.FromFloat64(v)) }
	set(0, 0, 2)
	set(0, 1, 1)
	set(1, 1, 3)
	set(1, 2, 1)
	set(2, 2, 4)
	// Solve R x = y for y = R*(1,2,3): y = (4, 9, 12).
	y := linalg.VecFromFloat64(f, []float64{4, 9, 12})
	x := linalg.VecToFloat64(f, solvers.SolveUpper(r, y))
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-14 {
			t.Fatalf("SolveUpper: x = %v", x)
		}
	}
	// Rᵀ z = c for c = Rᵀ(1,2,3): c = (2, 7, 14).
	c := linalg.VecFromFloat64(f, []float64{2, 7, 14})
	z := linalg.VecToFloat64(f, solvers.SolveLowerT(r, c))
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(z[i]-want) > 1e-14 {
			t.Fatalf("SolveLowerT: z = %v", z)
		}
	}
}

func TestFactorizationError(t *testing.T) {
	a := laplacian1D(20).ToDense()
	r, err := solvers.Cholesky(a.ToFormat(arith.Float64, false))
	if err != nil {
		t.Fatal(err)
	}
	if fe := solvers.FactorizationError(a, r); fe > 1e-14 {
		t.Fatalf("float64 factorization error = %g", fe)
	}
	// Low precision factor has commensurately larger error.
	r16, err := solvers.Cholesky(a.ToFormat(arith.Float16, false))
	if err != nil {
		t.Fatal(err)
	}
	fe := solvers.FactorizationError(a, r16)
	if fe < 1e-6 || fe > 1e-2 {
		t.Fatalf("float16 factorization error = %g, expected ~1e-4", fe)
	}
}

func TestMixedIRConverges(t *testing.T) {
	a := laplacian1D(40)
	want, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float16, arith.Posit16e1, arith.Posit16e2, arith.BFloat16} {
		res := solvers.MixedIR(a, b, f, solvers.IRScaling{}, solvers.IROptions{})
		if res.FactorFailed || !res.Converged {
			t.Fatalf("%s: %+v", f.Name(), res)
		}
		if res.Iterations < 1 || res.Iterations > 50 {
			t.Errorf("%s: %d iterations", f.Name(), res.Iterations)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-10 {
				t.Fatalf("%s: x[%d] = %g", f.Name(), i, res.X[i])
			}
		}
		if res.FactorError <= 0 || res.FactorError > 1e-2 {
			t.Errorf("%s: factor error %g", f.Name(), res.FactorError)
		}
	}
	// Float64 "low" precision converges in one step.
	res := solvers.MixedIR(a, b, arith.Float64, solvers.IRScaling{}, solvers.IROptions{})
	if !res.Converged || res.Iterations > 2 {
		t.Fatalf("float64 IR: %+v", res)
	}
}

func TestMixedIRFactorFailureAndRescue(t *testing.T) {
	// Tridiagonal SPD matrix with entries around 1e9, far beyond
	// Float16's 65504: clamping flattens diagonal and off-diagonal to
	// the same value, destroying positive definiteness, so the naive
	// Float16 factorization must fail — while posit(16,2)'s reach
	// (maxpos 2^56) loads it unharmed. This is the Table II mechanism.
	n := 6
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 1e9})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: 0.49e9})
		}
	}
	a, _ := linalg.NewSparseFromEntries(n, entries, true)
	_, b := onesRHS(a)

	naive := solvers.MixedIR(a, b, arith.Float16, solvers.IRScaling{}, solvers.IROptions{})
	if !naive.FactorFailed && naive.Converged {
		t.Fatalf("naive Float16 IR unexpectedly converged on out-of-range matrix: %+v", naive)
	}

	// Posit(16,2) has the reach to load this matrix (max ~7.2e16).
	p := solvers.MixedIR(a, b, arith.Posit16e2, solvers.IRScaling{}, solvers.IROptions{})
	if p.FactorFailed {
		t.Fatalf("posit(16,2) IR factorization failed: %+v", p)
	}
}

func TestBackwardErrorZeroRHS(t *testing.T) {
	a := laplacian1D(4)
	x := make([]float64, 4)
	b := make([]float64, 4)
	if be := solvers.BackwardError(a, b, x); be != 0 {
		t.Fatalf("zero system backward error = %g", be)
	}
}
