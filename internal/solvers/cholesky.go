package solvers

import (
	"context"
	"errors"
	"math"

	"positlab/internal/arith"
	"positlab/internal/linalg"
)

func sqrt64(x float64) float64 { return math.Sqrt(x) }

// ErrNotPositiveDefinite reports a Cholesky breakdown: a pivot that is
// zero, negative, or an arithmetic exception in the working format.
// In the mixed-precision tables this is the "arithmetic error
// encountered during factorization" case rendered as '-'.
var ErrNotPositiveDefinite = errors.New("solvers: matrix not positive definite in working precision")

// Cholesky computes the upper-triangular factor R with A = RᵀR in the
// matrix's format, rounding after every operation. Only the upper
// triangle of a is read. The returned matrix has R in its upper
// triangle and zeros below.
//
// The factorization is right-looking: after row j of R is formed, the
// trailing upper triangle is updated row by row through the format's
// TrailingUpdateKernel, W[i][l] ← fl(W[i][l] − fl(R[j][i]·R[j][l])).
// Each trailing element accumulates exactly the same rounded
// subtraction chain, in the same k-order, as the classic left-looking
// dot-product form, so results are bit-identical to the scalar
// reference (asserted by the differential tests) — but the inner loops
// now run over contiguous rows with batched dispatch, and the
// trailing-update rows are independent, so they shard across the
// linalg worker pool deterministically.
func Cholesky(a *linalg.DenseNum) (*linalg.DenseNum, error) {
	return CholeskyCtx(context.Background(), a)
}

// CholeskyCtx is Cholesky with a cancellation checkpoint before each
// pivot column: when ctx expires mid-factorization the function stops
// promptly and returns the context's error (distinguishable from
// ErrNotPositiveDefinite with errors.Is). The factor is bit-identical
// to Cholesky's when the context never fires.
func CholeskyCtx(ctx context.Context, a *linalg.DenseNum) (*linalg.DenseNum, error) {
	f := a.F
	bk := arith.BulkOf(f)
	n := a.N
	r := linalg.NewDenseNum(f, n)
	zero := f.Zero()

	// Working copy: the upper triangle of a, updated in place as
	// factored rows are eliminated. Entry (j,i) holds
	// a[j][i] − Σ_{k<done} R[k][j]·R[k][i].
	for i := 0; i < n; i++ {
		copy(r.Row(i)[i:], a.Row(i)[i:])
	}

	for j := 0; j < n; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rj := r.Row(j)
		// Pivot: R[j][j] = sqrt(a[j][j] − Σ_{k<j} R[k][j]²), with the
		// sum already folded in by the trailing updates of steps k < j.
		s := rj[j]
		if f.Bad(s) || f.IsZero(s) || f.Less(s, zero) {
			return nil, ErrNotPositiveDefinite
		}
		piv := f.Sqrt(s)
		if f.Bad(piv) || f.IsZero(piv) {
			return nil, ErrNotPositiveDefinite
		}
		rj[j] = piv
		// Row j of R: R[j][i] = (a[j][i] − Σ_{k<j} R[k][j]·R[k][i]) / pivot,
		// batched through the format's DivKernel (tabulated or value-
		// domain for the fast formats). A division overflowing to an
		// exceptional value is a breakdown, as in the scalar form.
		bk.DivKernel(piv, rj[j+1:])
		if linalg.HasBad(f, rj[j+1:]) {
			return nil, ErrNotPositiveDefinite
		}
		// Trailing update: W[i][i:] ← W[i][i:] − R[j][i]·R[j][i:] for
		// every i > j. Rows are independent chains; shard them.
		rows := n - (j + 1)
		if rows > 0 {
			linalg.ParRows(rows, rows*(rows+1)/2, func(lo, hi int) {
				for t := lo; t < hi; t++ {
					i := j + 1 + t
					nalpha := f.Neg(rj[i])
					bk.TrailingUpdateKernel(nalpha, rj[i:], r.Row(i)[i:])
				}
			})
		}
	}
	return r, nil
}

// SolveUpper solves R·x = y for upper-triangular R by back
// substitution in R's format.
func SolveUpper(r *linalg.DenseNum, y []arith.Num) []arith.Num {
	f := r.F
	n := r.N
	x := append([]arith.Num(nil), y...)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s = f.Sub(s, f.Mul(r.At(i, j), x[j]))
		}
		x[i] = f.Div(s, r.At(i, i))
	}
	return x
}

// SolveLowerT solves Rᵀ·y = b (forward substitution on the transpose of
// upper-triangular R) in R's format.
func SolveLowerT(r *linalg.DenseNum, b []arith.Num) []arith.Num {
	f := r.F
	n := r.N
	y := append([]arith.Num(nil), b...)
	for i := 0; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s = f.Sub(s, f.Mul(r.At(j, i), y[j]))
		}
		y[i] = f.Div(s, r.At(i, i))
	}
	return y
}

// CholeskySolve factors A and solves A·x = b entirely in A's format:
// one pass of Algorithm 2 (factor, forward substitution, back
// substitution) with no refinement, the configuration of the paper's
// single-precision direct-solver experiments (§IV-D).
func CholeskySolve(a *linalg.DenseNum, b []arith.Num) ([]arith.Num, error) {
	return CholeskySolveCtx(context.Background(), a, b)
}

// CholeskySolveCtx is CholeskySolve with the factorization's
// cancellation checkpoints (see CholeskyCtx).
func CholeskySolveCtx(ctx context.Context, a *linalg.DenseNum, b []arith.Num) ([]arith.Num, error) {
	r, err := CholeskyCtx(ctx, a)
	if err != nil {
		return nil, err
	}
	y := SolveLowerT(r, b)
	x := SolveUpper(r, y)
	if linalg.HasBad(a.F, x) {
		return nil, ErrNotPositiveDefinite
	}
	return x, nil
}

// BackwardError returns the relative backward error ‖b − A·x‖₂ / ‖b‖₂
// evaluated in float64 against the float64 master matrix (the paper's
// Cholesky metric, §IV-D).
func BackwardError(a *linalg.Sparse, b, x []float64) float64 {
	n := a.N
	ax := make([]float64, n)
	a.MatVecF64(x, ax)
	r := make([]float64, n)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	nb := linalg.Norm2F64(b)
	if nb == 0 {
		return linalg.Norm2F64(r)
	}
	return linalg.Norm2F64(r) / nb
}

// FactorizationError returns ‖RᵀR − A‖_F / ‖A‖_F in float64, the
// factorization backward error of Fig. 10(b).
func FactorizationError(a *linalg.Dense, r *linalg.DenseNum) float64 {
	n := a.N
	rf := r.ToFloat64()
	var num, den float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (RᵀR)[i][j] = Σ_k R[k][i]·R[k][j], k ≤ min(i,j).
			m := i
			if j < m {
				m = j
			}
			s := 0.0
			for k := 0; k <= m; k++ {
				s += rf.At(k, i) * rf.At(k, j)
			}
			d := s - a.At(i, j)
			num += d * d
			den += a.At(i, j) * a.At(i, j)
		}
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
