package solvers_test

import (
	"context"
	"errors"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

// resultsEqual asserts two CG results are bit-identical in every
// deterministic field.
func cgResultsEqual(t *testing.T, label string, got, want solvers.CGResult) {
	t.Helper()
	if got.Iterations != want.Iterations || got.Converged != want.Converged ||
		got.Failed != want.Failed || got.RelResidual != want.RelResidual {
		t.Fatalf("%s: result diverged: %+v vs %+v", label, got, want)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history length %d vs %d", label, len(got.History), len(want.History))
	}
	for i := range got.History {
		if got.History[i] != want.History[i] {
			t.Fatalf("%s: history[%d] = %g vs %g", label, i, got.History[i], want.History[i])
		}
	}
	for i := range got.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("%s: x[%d] differs: %g vs %g", label, i, got.X[i], want.X[i])
		}
	}
}

func TestCGResumeBitIdentical(t *testing.T) {
	a := laplacian1D(40)
	_, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float64, arith.Posit32e2, arith.Float16} {
		an := a.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, b)
		tol, cap := 1e-6, 10*a.N

		want, err := solvers.CGCtx(context.Background(), an, bn, tol, cap)
		if err != nil {
			t.Fatalf("%s: CGCtx: %v", f.Name(), err)
		}

		// Capture checkpoints every 3 iterations; the checkpointed run
		// itself must match the plain one exactly.
		var ckpts []*solvers.CGCheckpoint
		got, err := solvers.CGCheckpointed(context.Background(), an, bn, tol, cap,
			solvers.CGCheckpointOptions{Every: 3, OnCheckpoint: func(c *solvers.CGCheckpoint) error {
				ckpts = append(ckpts, c)
				return nil
			}})
		if err != nil {
			t.Fatalf("%s: CGCheckpointed: %v", f.Name(), err)
		}
		cgResultsEqual(t, f.Name()+" checkpointing run", got, want)
		if len(ckpts) == 0 {
			t.Fatalf("%s: no checkpoints emitted over %d iterations", f.Name(), want.Iterations)
		}

		// Resuming from every captured checkpoint reproduces the
		// uninterrupted result bit for bit.
		for _, c := range ckpts {
			res, err := solvers.CGCheckpointed(context.Background(), an, bn, tol, cap,
				solvers.CGCheckpointOptions{Resume: c})
			if err != nil {
				t.Fatalf("%s: resume at iter %d: %v", f.Name(), c.Iter, err)
			}
			cgResultsEqual(t, f.Name()+" resume", res, want)
		}
	}
}

func TestCGCheckpointAbort(t *testing.T) {
	a := laplacian1D(40)
	_, b := onesRHS(a)
	an := a.ToFormat(arith.Float64, false)
	bn := linalg.VecFromFloat64(arith.Float64, b)

	boom := errors.New("journal full")
	res, err := solvers.CGCheckpointed(context.Background(), an, bn, 1e-12, 10*a.N,
		solvers.CGCheckpointOptions{Every: 4, OnCheckpoint: func(*solvers.CGCheckpoint) error { return boom }})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checkpoint sink's error", err)
	}
	if res.Iterations != 4 {
		t.Fatalf("aborted after %d iterations, want 4", res.Iterations)
	}
	if len(res.X) != a.N {
		t.Fatalf("partial result has no iterate (|x| = %d)", len(res.X))
	}
}

func TestCGResumeShapeMismatch(t *testing.T) {
	a := laplacian1D(20)
	_, b := onesRHS(a)
	an := a.ToFormat(arith.Float64, false)
	bn := linalg.VecFromFloat64(arith.Float64, b)
	bad := &solvers.CGCheckpoint{Iter: 1, X: make([]arith.Num, 3), R: make([]arith.Num, 3), P: make([]arith.Num, 3)}
	if _, err := solvers.CGCheckpointed(context.Background(), an, bn, 1e-6, 10, solvers.CGCheckpointOptions{Resume: bad}); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}

func TestIRResumeBitIdentical(t *testing.T) {
	a := laplacian1D(30)
	_, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float16, arith.Posit16e1} {
		want, err := solvers.MixedIRCtx(context.Background(), a, b, f, solvers.IRScaling{}, solvers.IROptions{})
		if err != nil {
			t.Fatalf("%s: MixedIRCtx: %v", f.Name(), err)
		}
		if want.FactorFailed {
			t.Fatalf("%s: factorization failed; pick a tamer test matrix", f.Name())
		}

		var ckpts []*solvers.IRCheckpoint
		got, err := solvers.MixedIRCheckpointed(context.Background(), a, b, f, solvers.IRScaling{}, solvers.IROptions{},
			solvers.IRCheckpointOptions{Every: 2, OnCheckpoint: func(c *solvers.IRCheckpoint) error {
				ckpts = append(ckpts, c)
				return nil
			}})
		if err != nil {
			t.Fatalf("%s: MixedIRCheckpointed: %v", f.Name(), err)
		}
		if got.Iterations != want.Iterations || got.Converged != want.Converged ||
			got.BackwardError != want.BackwardError || got.FactorError != want.FactorError {
			t.Fatalf("%s: checkpointing run diverged: %+v vs %+v", f.Name(), got, want)
		}
		if len(ckpts) == 0 {
			t.Skipf("%s: converged in %d passes, no checkpoint emitted", f.Name(), want.Iterations)
		}

		for _, c := range ckpts {
			res, err := solvers.MixedIRCheckpointed(context.Background(), a, b, f, solvers.IRScaling{}, solvers.IROptions{},
				solvers.IRCheckpointOptions{Resume: c})
			if err != nil {
				t.Fatalf("%s: resume at pass %d: %v", f.Name(), c.Iter, err)
			}
			if res.Iterations != want.Iterations || res.Converged != want.Converged ||
				res.BackwardError != want.BackwardError {
				t.Fatalf("%s: resumed run diverged: %+v vs %+v", f.Name(), res, want)
			}
			if len(res.History) != len(want.History) {
				t.Fatalf("%s: resumed history length %d vs %d", f.Name(), len(res.History), len(want.History))
			}
			for i := range res.History {
				if res.History[i] != want.History[i] {
					t.Fatalf("%s: history[%d] = %g vs %g", f.Name(), i, res.History[i], want.History[i])
				}
			}
			for i := range res.X {
				if res.X[i] != want.X[i] {
					t.Fatalf("%s: x[%d] differs", f.Name(), i)
				}
			}
		}
	}
}
