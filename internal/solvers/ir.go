package solvers

import (
	"context"
	"math"

	"positlab/internal/arith"
	"positlab/internal/linalg"
)

// IRScaling configures the matrix preparation for mixed-precision
// iterative refinement.
//
// Nil R and Mu <= 0 (or 1) is the naive Table II configuration: the
// matrix is cast directly to the low-precision format with overflow
// clamped to the largest finite value.
//
// With R set (Higham's Algorithm 5 equilibration) and Mu set (the
// Algorithm 4 shift: a power of 4 near 0.1·max for Float16, USEED for
// posits), the factored matrix is fl_low(Mu·R·A·R) — Algorithm 4 of the
// paper.
type IRScaling struct {
	R  []float64
	Mu float64
}

// IROptions controls the refinement loop.
type IROptions struct {
	// Tol is the convergence threshold on the normwise relative
	// backward error ‖b−Ax‖₂/(‖A‖_F·‖x‖₂+‖b‖₂), evaluated in Float64.
	// Zero means 1e-15 (solution accurate to working precision, the
	// paper's Higham-style criterion).
	Tol float64
	// MaxIter caps refinement iterations. Zero means 1000, the paper's
	// "1000+" cap.
	MaxIter int
}

// IRResult reports a mixed-precision iterative refinement run.
type IRResult struct {
	// Iterations until convergence (or the cap).
	Iterations int
	// Converged: backward error reached Tol within MaxIter.
	Converged bool
	// FactorFailed: the low-precision Cholesky broke down (the '-'
	// entries of Tables II/III).
	FactorFailed bool
	// FactorError is ‖R̃ᵀR̃ − Â‖_F/‖Â‖_F of the low-precision factor
	// against the (scaled) matrix it factored — Fig. 10(b).
	FactorError float64
	// BackwardError is the final normwise relative backward error.
	BackwardError float64
	// History records the backward error measured before each
	// correction step (History[0] is the error of the un-refined
	// direct solve), in float64.
	History []float64
	// X is the computed solution (in the original, unscaled variables).
	X []float64
}

// MixedIR runs Algorithm 2 as mixed-precision iterative refinement:
// Cholesky factorization of the (optionally Higham-scaled) matrix in
// the low format, refinement arithmetic entirely in Float64 (the
// paper's working precision, §IV-E).
func MixedIR(a *linalg.Sparse, b []float64, low arith.Format, sc IRScaling, opt IROptions) IRResult {
	res, _ := MixedIRCtx(context.Background(), a, b, low, sc, opt)
	return res
}

// MixedIRCtx is MixedIR with cancellation checkpoints in the
// factorization (per pivot column, see CholeskyCtx) and at the top of
// every refinement iteration: when ctx expires the partial result is
// returned together with the context's error. Results are
// bit-identical to MixedIR's when the context never fires.
func MixedIRCtx(ctx context.Context, a *linalg.Sparse, b []float64, low arith.Format, sc IRScaling, opt IROptions) (IRResult, error) {
	return MixedIRCheckpointed(ctx, a, b, low, sc, opt, IRCheckpointOptions{})
}

// MixedIRCheckpointed is MixedIRCtx with durable-checkpoint support:
// with ck.Every > 0 it hands the refinement state (current iterate and
// backward-error history) to ck.OnCheckpoint at that cadence, and with
// ck.Resume set it refactors the same scaled matrix (deterministic,
// hence identical) and continues refinement from the checkpointed
// iterate. Results are bit-identical to an uninterrupted run.
func MixedIRCheckpointed(ctx context.Context, a *linalg.Sparse, b []float64, low arith.Format, sc IRScaling, opt IROptions, ck IRCheckpointOptions) (IRResult, error) {
	n := a.N
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-15
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 1000
	}
	mu := sc.Mu
	if mu <= 0 {
		mu = 1
	}

	// Â = μ·R·A·R in float64, dense.
	ah := a.ToDense()
	if sc.R != nil {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ah.Set(i, j, ah.At(i, j)*sc.R[i]*sc.R[j])
			}
		}
	}
	if mu != 1 {
		for i := range ah.A {
			ah.A[i] *= mu
		}
	}

	// Cast with the paper's clamping rule and factor in low precision.
	ahLow := ah.ToFormat(low, true)
	rLow, err := CholeskyCtx(ctx, ahLow)
	res := IRResult{}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return res, cerr
		}
		res.FactorFailed = true
		return res, nil
	}
	res.FactorError = FactorizationError(ah, rLow)

	// Promote the factor to float64 for the refinement solves.
	rf := rLow.ToFloat64()

	x := make([]float64, n)
	r := make([]float64, n)
	ax := make([]float64, n)
	normAF := a.NormFrob()
	normB := linalg.Norm2F64(b)

	startK := 1
	if ck.Resume != nil {
		if err := ck.Resume.valid(n); err != nil {
			return res, err
		}
		copy(x, ck.Resume.X)
		res.History = copyFloats(ck.Resume.History)
		res.Iterations = ck.Resume.Iter
		res.X = append([]float64(nil), x...)
		startK = ck.Resume.Iter + 1
	}

	for k := startK; k <= maxIter; k++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// r = b − A·x against the float64 master matrix.
		a.MatVecF64(x, ax)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		eta := linalg.Norm2F64(r) / (normAF*linalg.Norm2F64(x) + normB)
		res.BackwardError = eta
		res.History = append(res.History, eta)
		res.Iterations = k - 1
		res.X = append(res.X[:0], x...)
		if ck.OnIteration != nil {
			ck.OnIteration(k-1, x, eta)
		}
		if eta <= tol {
			res.Converged = true
			return res, nil
		}
		if math.IsNaN(eta) || math.IsInf(eta, 0) {
			return res, nil // diverged
		}
		// Correction: Â·v = μ·R∘r, then d = μ·R∘v maps back to the
		// original variables (d = μ·R·Â⁻¹·R·r solves A·d ≈ r).
		u := make([]float64, n)
		if sc.R != nil {
			for i := range u {
				u[i] = sc.R[i] * r[i]
			}
		} else {
			copy(u, r)
		}
		v := solveCholF64(rf, u)
		if sc.R != nil {
			for i := range v {
				v[i] = mu * sc.R[i] * v[i]
			}
		} else if mu != 1 {
			for i := range v {
				v[i] = mu * v[i]
			}
		}
		for i := range x {
			x[i] += v[i]
		}
		// Pass k is complete: x is the iterate pass k+1 will refine, so
		// this is the resumable snapshot point.
		if ck.Every > 0 && ck.OnCheckpoint != nil && k%ck.Every == 0 {
			cp := &IRCheckpoint{Iter: k, X: copyFloats(x), History: copyFloats(res.History)}
			if err := ck.OnCheckpoint(cp); err != nil {
				return res, err
			}
		}
	}
	res.Iterations = maxIter
	// One final residual check at the cap.
	a.MatVecF64(x, ax)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	res.BackwardError = linalg.Norm2F64(r) / (normAF*linalg.Norm2F64(x) + normB)
	res.History = append(res.History, res.BackwardError)
	res.Converged = res.BackwardError <= tol
	res.X = x
	if ck.OnIteration != nil {
		ck.OnIteration(maxIter, x, res.BackwardError)
	}
	return res, nil
}

// solveCholF64 solves (RᵀR)·x = b in float64 given the upper factor.
func solveCholF64(r *linalg.Dense, b []float64) []float64 {
	n := r.N
	y := append([]float64(nil), b...)
	// Forward: Rᵀ·y = b.
	for i := 0; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= r.At(j, i) * y[j]
		}
		y[i] = s / r.At(i, i)
	}
	// Backward: R·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * y[j]
		}
		y[i] = s / r.At(i, i)
	}
	return y
}
