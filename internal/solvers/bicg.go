package solvers

import (
	"positlab/internal/arith"
	"positlab/internal/linalg"
)

// BiCGResult reports a biconjugate-gradient run. The paper's analysis
// section (§VI) hypothesizes that Bi-CG's larger intermediate iterates
// limit rescaling as a stabilization tool; MaxIterate records the
// largest |component| seen across all iterate vectors so the
// dynamic-range claim can be measured directly.
type BiCGResult struct {
	Iterations  int
	Converged   bool
	Failed      bool
	RelResidual float64
	// MaxIterate is the largest magnitude that appeared in any of x,
	// r, r̂, p, p̂ during the run (as float64).
	MaxIterate float64
	X          []float64
}

// BiCG runs the unpreconditioned biconjugate gradient method in the
// matrix's format, with the dual recurrence driven by true Aᵀ
// products, so general (nonsymmetric) systems are supported — e.g. the
// convection-diffusion operators of the §VI iterate-growth experiment.
// Breakdown (zero <r̂,r> or <p̂,Ap>) reports Failed.
func BiCG(a *linalg.SparseNum, b []arith.Num, tol float64, maxIter int) BiCGResult {
	f := a.F
	n := a.N

	x := linalg.NewVec(f, n)
	r := append([]arith.Num(nil), b...)
	rh := append([]arith.Num(nil), b...)
	p := append([]arith.Num(nil), b...)
	ph := append([]arith.Num(nil), b...)
	ap := linalg.NewVec(f, n)
	atph := linalg.NewVec(f, n)

	res := BiCGResult{}
	track := func(vs ...[]arith.Num) {
		for _, v := range vs {
			m := f.ToFloat64(linalg.NormInf(f, v))
			if m > res.MaxIterate {
				res.MaxIterate = m
			}
		}
	}
	track(r, p)

	rho := linalg.Dot(f, rh, r)
	normB2 := f.ToFloat64(linalg.Dot(f, b, b))
	thresh := tol * tol * normB2
	if f.Bad(rho) {
		res.Failed = true
		res.X = linalg.VecToFloat64(f, x)
		return res
	}
	if f.ToFloat64(linalg.Dot(f, r, r)) <= thresh {
		res.Converged = true
		res.X = linalg.VecToFloat64(f, x)
		return res
	}

	for k := 0; k < maxIter; k++ {
		a.MatVec(p, ap)
		a.MatVecT(ph, atph)
		den := linalg.Dot(f, ph, ap)
		alpha := f.Div(rho, den)
		if f.Bad(alpha) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		linalg.Axpy(f, alpha, p, x)
		linalg.Axpy(f, f.Neg(alpha), ap, r)
		linalg.Axpy(f, f.Neg(alpha), atph, rh)
		track(x, r, rh)

		rr := linalg.Dot(f, r, r)
		if f.Bad(rr) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		res.Iterations = k + 1
		res.RelResidual = safeRatioSqrt(f.ToFloat64(rr), normB2) //lint:allow xprecision RelResidual is a float64 reporting metric, not iteration state
		if f.ToFloat64(rr) <= thresh {
			res.Converged = true
			break
		}
		rhoNew := linalg.Dot(f, rh, r)
		beta := f.Div(rhoNew, rho)
		if f.Bad(beta) || f.IsZero(rhoNew) {
			res.Failed = true
			break
		}
		for i := range p {
			p[i] = f.Add(r[i], f.Mul(beta, p[i]))
			ph[i] = f.Add(rh[i], f.Mul(beta, ph[i]))
		}
		track(p, ph)
		rho = rhoNew
	}
	res.X = linalg.VecToFloat64(f, x)
	return res
}

func safeRatioSqrt(num, den float64) float64 {
	if den <= 0 || num < 0 {
		return 0
	}
	return sqrt64(num / den)
}
