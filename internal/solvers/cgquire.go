package solvers

import (
	"positlab/internal/posit"
)

// CGQuire is conjugate gradients for posit formats with every inner
// product and matrix-vector row sum accumulated exactly in the quire
// and rounded once — the deferred-rounding configuration the paper
// deliberately excluded from its headline comparison (§II-C: "we offer
// our experiments operate without this assumption"). Running it next
// to the round-per-op CG quantifies exactly what that methodology
// choice cost posits.
type CGQuire struct {
	C posit.Config
	// RowPtr/Col/Val: CSR matrix in the posit format.
	RowPtr []int
	Col    []int
	Val    []posit.Bits
	N      int
}

// NewCGQuire casts a float64 CSR (rowPtr/col/val triplets) into the
// format.
func NewCGQuire(c posit.Config, rowPtr, col []int, val []float64) *CGQuire {
	v := make([]posit.Bits, len(val))
	for i, x := range val {
		v[i] = c.FromFloat64(x)
	}
	return &CGQuire{C: c, RowPtr: rowPtr, Col: col, Val: v, N: len(rowPtr) - 1}
}

// matVec computes y = A·x with one quire per row (fused dot product).
func (m *CGQuire) matVec(q *posit.Quire, x, y []posit.Bits) {
	for i := 0; i < m.N; i++ {
		q.Reset()
		for idx := m.RowPtr[i]; idx < m.RowPtr[i+1]; idx++ {
			q.AddProduct(m.Val[idx], x[m.Col[idx]])
		}
		y[i] = q.Round()
	}
}

// dot computes <x, y> through the quire.
func (m *CGQuire) dot(q *posit.Quire, x, y []posit.Bits) posit.Bits {
	q.Reset()
	for i := range x {
		q.AddProduct(x[i], y[i])
	}
	return q.Round()
}

// Solve runs Algorithm 1 with quire-fused reductions. Vector updates
// (axpy) still round per element, as fused vector updates are not part
// of the posit standard's quire contract.
func (m *CGQuire) Solve(b []posit.Bits, tol float64, maxIter int) CGResult {
	c := m.C
	n := m.N
	q := c.NewQuire()

	x := make([]posit.Bits, n)
	for i := range x {
		x[i] = c.Zero()
	}
	r := append([]posit.Bits(nil), b...)
	p := append([]posit.Bits(nil), b...)
	ap := make([]posit.Bits, n)

	rr := m.dot(q, r, r)
	normB2 := c.ToFloat64(rr)
	thresh := tol * tol * normB2

	res := CGResult{}
	bad := func(v posit.Bits) bool { return c.IsNaR(v) }
	if bad(rr) {
		res.Failed = true
		res.X = toFloat64s(c, x)
		return res
	}
	if c.ToFloat64(rr) <= thresh {
		res.Converged = true
		res.X = toFloat64s(c, x)
		return res
	}

	for k := 0; k < maxIter; k++ {
		m.matVec(q, p, ap)
		pap := m.dot(q, p, ap)
		alpha := c.Div(rr, pap)
		if bad(alpha) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		negAlpha := c.Neg(alpha)
		for i := range x {
			x[i] = c.Add(x[i], c.Mul(alpha, p[i]))
			r[i] = c.Add(r[i], c.Mul(negAlpha, ap[i]))
		}
		rrNew := m.dot(q, r, r)
		if bad(rrNew) {
			res.Iterations = k + 1
			res.Failed = true
			break
		}
		res.Iterations = k + 1
		if c.ToFloat64(rrNew) <= thresh {
			res.Converged = true
			rr = rrNew
			break
		}
		beta := c.Div(rrNew, rr)
		if bad(beta) {
			res.Failed = true
			break
		}
		for i := range p {
			p[i] = c.Add(r[i], c.Mul(beta, p[i]))
		}
		rr = rrNew
	}
	res.X = toFloat64s(c, x)
	if normB2 > 0 {
		res.RelResidual = sqrtf(c.ToFloat64(rr) / normB2)
	}
	return res
}

func toFloat64s(c posit.Config, x []posit.Bits) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = c.ToFloat64(x[i])
	}
	return out
}
