package solvers_test

import (
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

// The paper's mixed-precision motivation (§III): factorization is the
// O(n³) stage, refinement is O(n²) per iteration. Measure the actual
// operation counts of our Cholesky and triangular solves and check the
// scaling exponents.
func TestOpCountScaling(t *testing.T) {
	countsFor := func(n int) (factor, solve uint64) {
		a := laplacian1D(n)
		_, b := onesRHS(a)
		f, c := arith.Instrument(arith.Posit16e2)
		an := a.ToDense().ToFormat(f, false)
		r, err := solvers.Cholesky(an)
		if err != nil {
			t.Fatal(err)
		}
		factor = c.Total()
		bn := linalg.VecFromFloat64(f, b)
		before := c.Total()
		y := solvers.SolveLowerT(r, bn)
		_ = solvers.SolveUpper(r, y)
		solve = c.Total() - before
		return factor, solve
	}

	f1, s1 := countsFor(40)
	f2, s2 := countsFor(80)

	// Factorization ~ n³/3 pairs: doubling n multiplies work by ~8.
	factRatio := float64(f2) / float64(f1)
	if factRatio < 5.5 || factRatio > 9.5 {
		t.Errorf("factorization op ratio at 2x n = %.2f, want ~8 (O(n³))", factRatio)
	}
	// Triangular solves ~ n²: doubling n multiplies work by ~4.
	solveRatio := float64(s2) / float64(s1)
	if solveRatio < 3.2 || solveRatio > 4.8 {
		t.Errorf("solve op ratio at 2x n = %.2f, want ~4 (O(n²))", solveRatio)
	}
	// And the split is lopsided the way the paper's motivation needs.
	if f2 < 5*s2 {
		t.Errorf("factorization (%d ops) should dwarf one solve (%d ops)", f2, s2)
	}
}
