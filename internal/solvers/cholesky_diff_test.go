package solvers_test

import (
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/posit"
	"positlab/internal/solvers"
)

// refCholesky is the pre-kernel left-looking factorization, verbatim:
// every element is a sequential Sub/Mul chain over At/Set scalars. The
// production right-looking kernel Cholesky must reproduce it bit for
// bit, including which breakdowns it reports.
func refCholesky(a *linalg.DenseNum) (*linalg.DenseNum, error) {
	f := a.F
	n := a.N
	r := linalg.NewDenseNum(f, n)
	zero := f.Zero()
	for j := 0; j < n; j++ {
		s := a.At(j, j)
		for k := 0; k < j; k++ {
			rkj := r.At(k, j)
			s = f.Sub(s, f.Mul(rkj, rkj))
		}
		if f.Bad(s) || f.IsZero(s) || f.Less(s, zero) {
			return nil, solvers.ErrNotPositiveDefinite
		}
		piv := f.Sqrt(s)
		if f.Bad(piv) || f.IsZero(piv) {
			return nil, solvers.ErrNotPositiveDefinite
		}
		r.Set(j, j, piv)
		for i := j + 1; i < n; i++ {
			t := a.At(j, i)
			for k := 0; k < j; k++ {
				t = f.Sub(t, f.Mul(r.At(k, j), r.At(k, i)))
			}
			q := f.Div(t, piv)
			if f.Bad(q) {
				return nil, solvers.ErrNotPositiveDefinite
			}
			r.Set(j, i, q)
		}
	}
	return r, nil
}

// spdDense builds a deterministic dense SPD matrix: diagonally
// dominant with awkward (non-dyadic) off-diagonal values so every
// format actually rounds.
func spdDense(n int) *linalg.Dense {
	d := linalg.NewDense(n)
	x := uint64(0x853C49E6748FEA9B)
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%2000)/1000 - 1 // [-1, 1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := next() / 3
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		d.Set(i, i, float64(n)) // dominance => SPD
	}
	return d
}

func choleskyFormats() []arith.Format {
	return []arith.Format{
		arith.Float64,
		arith.Float32,
		arith.Float16,
		arith.BFloat16,
		arith.Posit32e2,
		arith.Posit16e2,
		arith.Posit16e1,
		arith.Posit(posit.Posit16e2), // slow reference impl => scalar-fallback kernels
	}
}

// TestCholeskyMatchesReference differentially checks the right-looking
// kernel Cholesky against the left-looking scalar reference on an SPD
// matrix, per format, requiring identical bits in the whole factor.
func TestCholeskyMatchesReference(t *testing.T) {
	d := spdDense(40)
	for _, f := range choleskyFormats() {
		a := d.ToFormat(f, true)
		want, errW := refCholesky(a)
		got, errG := solvers.Cholesky(a)
		if errW != errG {
			t.Fatalf("%s: error mismatch: ref %v, kernel %v", f.Name(), errW, errG)
		}
		if errW != nil {
			continue
		}
		for i := range want.A {
			if got.A[i] != want.A[i] {
				t.Fatalf("%s: factor differs at flat index %d: %#x vs %#x",
					f.Name(), i, got.A[i], want.A[i])
			}
		}
	}
}

// TestCholeskyBreakdownMatchesReference checks the failure paths: an
// indefinite matrix, and a Float16 matrix whose trailing updates
// overflow to Inf mid-factorization, must fail identically in both
// implementations.
func TestCholeskyBreakdownMatchesReference(t *testing.T) {
	for _, f := range choleskyFormats() {
		// Indefinite: a negative diagonal entry past the first pivot.
		d := spdDense(8)
		d.Set(5, 5, -3)
		a := d.ToFormat(f, true)
		if _, err := refCholesky(a); err != solvers.ErrNotPositiveDefinite {
			t.Fatalf("%s: reference accepted an indefinite matrix", f.Name())
		}
		if _, err := solvers.Cholesky(a); err != solvers.ErrNotPositiveDefinite {
			t.Fatalf("%s: kernel Cholesky accepted an indefinite matrix", f.Name())
		}
	}
	// Mid-factorization overflow in a narrow IEEE format: huge
	// off-diagonal over a tiny pivot makes the divided row overflow.
	f := arith.Format(arith.Float16)
	d := linalg.NewDense(3)
	d.Set(0, 0, 1.0/1024)
	d.Set(0, 1, 60000)
	d.Set(1, 0, 60000)
	d.Set(1, 1, 2)
	d.Set(2, 2, 2)
	a := d.ToFormat(f, false)
	_, errW := refCholesky(a)
	_, errG := solvers.Cholesky(a)
	if errW != errG {
		t.Fatalf("overflow case: ref %v, kernel %v", errW, errG)
	}
	if errW == nil {
		t.Fatal("overflow case unexpectedly factored")
	}
}

// TestCholeskyParallelDeterminism asserts the factor is bit-identical
// for worker counts 1, 2, and 8 at a size where the trailing-update
// sharding genuinely engages (first columns carry ~n²/2 elements of
// trailing work).
func TestCholeskyParallelDeterminism(t *testing.T) {
	prev := linalg.Workers()
	defer linalg.SetWorkers(prev)
	n := 240
	if testing.Short() {
		n = 120
	}
	d := spdDense(n)
	for _, f := range []arith.Format{arith.Posit32e2, arith.Float32} {
		a := d.ToFormat(f, true)
		var ref *linalg.DenseNum
		for _, w := range []int{1, 2, 8} {
			linalg.SetWorkers(w)
			r, err := solvers.Cholesky(a)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", f.Name(), w, err)
			}
			if ref == nil {
				ref = r
				continue
			}
			for i := range r.A {
				if r.A[i] != ref.A[i] {
					t.Fatalf("%s: factor with %d workers differs at flat index %d", f.Name(), w, i)
				}
			}
		}
	}
	// Sanity: the factor is a real Cholesky factor of the rounded input.
	fe := solvers.FactorizationError(d, mustChol(t, d.ToFormat(arith.Float64, false)))
	if fe > 1e-13 {
		t.Fatalf("float64 factorization error = %g", fe)
	}
}

func mustChol(t *testing.T, a *linalg.DenseNum) *linalg.DenseNum {
	t.Helper()
	r, err := solvers.Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
