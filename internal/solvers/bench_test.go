package solvers_test

import (
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

func benchCholesky(b *testing.B, f arith.Format) {
	a := laplacian1D(100).ToDense().ToFormat(f, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solvers.Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky100Float64(b *testing.B)   { benchCholesky(b, arith.Float64) }
func BenchmarkCholesky100Float32(b *testing.B)   { benchCholesky(b, arith.Float32) }
func BenchmarkCholesky100Float16(b *testing.B)   { benchCholesky(b, arith.Float16) }
func BenchmarkCholesky100Posit32e2(b *testing.B) { benchCholesky(b, arith.Posit32e2) }
func BenchmarkCholesky100Posit16e2(b *testing.B) { benchCholesky(b, arith.Posit16e2) }

func benchCG(b *testing.B, f arith.Format) {
	a := laplacian1D(200)
	_, rhs := onesRHS(a)
	an := a.ToFormat(f, false)
	bn := linalg.VecFromFloat64(f, rhs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := solvers.CG(an, bn, 1e-5, 10*a.N)
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

func BenchmarkCG200Float64(b *testing.B)   { benchCG(b, arith.Float64) }
func BenchmarkCG200Float32(b *testing.B)   { benchCG(b, arith.Float32) }
func BenchmarkCG200Posit32e2(b *testing.B) { benchCG(b, arith.Posit32e2) }

func benchMixedIR(b *testing.B, f arith.Format) {
	a := laplacian1D(100)
	_, rhs := onesRHS(a)
	for i := 0; i < b.N; i++ {
		res := solvers.MixedIR(a, rhs, f, solvers.IRScaling{}, solvers.IROptions{})
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

func BenchmarkMixedIRFloat16(b *testing.B)   { benchMixedIR(b, arith.Float16) }
func BenchmarkMixedIRBFloat16(b *testing.B)  { benchMixedIR(b, arith.BFloat16) }
func BenchmarkMixedIRPosit16e1(b *testing.B) { benchMixedIR(b, arith.Posit16e1) }
func BenchmarkMixedIRPosit16e2(b *testing.B) { benchMixedIR(b, arith.Posit16e2) }

func BenchmarkGMRESIRFloat16(b *testing.B) {
	a := laplacian1D(100)
	_, rhs := onesRHS(a)
	for i := 0; i < b.N; i++ {
		res := solvers.MixedIRGMRES(a, rhs, arith.Float16, solvers.IRScaling{}, solvers.IROptions{}, solvers.GMRESOptions{})
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}
