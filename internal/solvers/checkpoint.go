package solvers

import (
	"fmt"

	"positlab/internal/arith"
)

// This file defines the resumable iteration state of the long-running
// solver loops. A checkpoint captures, as exact format bit patterns,
// everything the loop reads at the top of an iteration; resuming from
// it replays the remaining iterations with arithmetic bit-identical to
// an uninterrupted run. The durable job subsystem (internal/jobs)
// journals these at a configurable cadence so a crashed or drained job
// continues from its last checkpoint instead of restarting.

// CGCheckpoint is the complete CG iteration state at the top of
// iteration Iter (0-based: Iter iterations have fully completed).
// X, R, P and RR are bit patterns in the matrix's format; History is
// the float64 reporting series accumulated so far. A resumed run's
// remaining iterates are bit-identical to the uninterrupted run's.
type CGCheckpoint struct {
	Iter    int         `json:"iter"`
	X       []arith.Num `json:"x"`
	R       []arith.Num `json:"r"`
	P       []arith.Num `json:"p"`
	RR      arith.Num   `json:"rr"`
	History []float64   `json:"history"`
}

// CGCheckpointOptions configures checkpoint emission and resume for
// CGCheckpointed. The zero value checkpoints nothing and starts fresh,
// making CGCheckpointed identical to CGCtx.
type CGCheckpointOptions struct {
	// Every emits a checkpoint after every Every completed iterations
	// (<= 0: never). Emission never changes the iterates.
	Every int
	// OnCheckpoint receives each emitted checkpoint; the slices are
	// fresh copies the callee may retain. A non-nil error aborts the
	// run and is returned to the caller (the partial result carries the
	// iterations completed so far).
	OnCheckpoint func(*CGCheckpoint) error
	// Resume, when non-nil, restarts the loop from a previously emitted
	// checkpoint instead of from x0 = 0. The caller must pass the same
	// system (a, b), tolerance, and cap as the original run.
	Resume *CGCheckpoint
	// OnIteration, when non-nil, observes the state after each
	// completed iteration iter (1-based): the current iterate and
	// recurrence residual as format bit patterns. The slices are the
	// live loop state — read-only views the callee must not modify or
	// retain past the call. Observation never perturbs the iterates;
	// the shadow-diagnosis divergence traces hang off this hook.
	OnIteration func(iter int, x, r []arith.Num)
}

// valid reports a structurally sound checkpoint for an n-dimensional
// system.
func (c *CGCheckpoint) valid(n int) error {
	if c.Iter < 0 || len(c.X) != n || len(c.R) != n || len(c.P) != n {
		return fmt.Errorf("solvers: CG checkpoint shape (iter=%d, |x|=%d, |r|=%d, |p|=%d) does not match n=%d",
			c.Iter, len(c.X), len(c.R), len(c.P), n)
	}
	if len(c.History) < c.Iter {
		return fmt.Errorf("solvers: CG checkpoint history has %d entries for %d iterations", len(c.History), c.Iter)
	}
	return nil
}

// IRCheckpoint is the mixed-precision iterative-refinement state after
// Iter completed refinement passes: the current float64 iterate and the
// backward-error history. The low-precision factorization is not
// stored — it is recomputed deterministically on resume, so the resumed
// run remains bit-identical to an uninterrupted one.
type IRCheckpoint struct {
	Iter    int       `json:"iter"`
	X       []float64 `json:"x"`
	History []float64 `json:"history"`
}

// IRCheckpointOptions configures checkpoint emission and resume for
// MixedIRCheckpointed; the zero value makes it identical to MixedIRCtx.
type IRCheckpointOptions struct {
	// Every emits a checkpoint after every Every completed refinement
	// passes (<= 0: never).
	Every int
	// OnCheckpoint receives each emitted checkpoint (fresh copies); a
	// non-nil error aborts the run.
	OnCheckpoint func(*IRCheckpoint) error
	// Resume restarts refinement from a prior checkpoint; the
	// factorization is recomputed from the same inputs first.
	Resume *IRCheckpoint
	// OnIteration, when non-nil, observes each refinement pass at the
	// point its backward error is recorded: iter corrections have been
	// applied to x (0 for the un-refined start), and eta is the
	// backward error of that iterate. x is live loop state — a
	// read-only view the callee must not modify or retain.
	OnIteration func(iter int, x []float64, eta float64)
}

func (c *IRCheckpoint) valid(n int) error {
	if c.Iter < 0 || len(c.X) != n {
		return fmt.Errorf("solvers: IR checkpoint shape (iter=%d, |x|=%d) does not match n=%d", c.Iter, len(c.X), n)
	}
	if len(c.History) < c.Iter {
		return fmt.Errorf("solvers: IR checkpoint history has %d entries for %d passes", len(c.History), c.Iter)
	}
	return nil
}

func copyNums(v []arith.Num) []arith.Num { return append([]arith.Num(nil), v...) }

func copyFloats(v []float64) []float64 {
	if v == nil {
		return nil
	}
	return append([]float64(nil), v...)
}
