package solvers_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/solvers"
)

// Randomized-instance properties over the RandomSPD generator: these
// assert the numerical-analysis contracts the experiments rely on.

func randomInstances(t *testing.T) []*linalg.Sparse {
	t.Helper()
	var out []*linalg.Sparse
	for _, cfg := range []struct {
		n     int
		cond  float64
		norm  float64
		seed  uint64
		intri float64
	}{
		{30, 1e2, 1.0, 11, 10},
		{50, 1e4, 1e3, 12, 50},
		{70, 1e6, 1e-2, 13, 100},
		{40, 1e3, 1e6, 14, 30},
	} {
		a, err := matgen.RandomSPD(cfg.n, cfg.cond, cfg.norm, 5, cfg.intri, cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

// Cholesky in float64 is backward stable: relative backward error
// O(n·eps) regardless of conditioning.
func TestPropCholeskyBackwardStable(t *testing.T) {
	for _, a := range randomInstances(t) {
		_, b := onesRHS(a)
		x, err := solvers.CholeskySolve(a.ToDense().ToFormat(arith.Float64, false), linalg.VecFromFloat64(arith.Float64, b))
		if err != nil {
			t.Fatalf("n=%d: %v", a.N, err)
		}
		be := solvers.BackwardError(a, b, linalg.VecToFloat64(arith.Float64, x))
		if be > float64(a.N)*1e-14 {
			t.Errorf("n=%d: backward error %g exceeds n*eps budget", a.N, be)
		}
	}
}

// LDLT and Cholesky solve to comparable backward error on the same
// instance in the same format.
func TestPropLDLTComparableToCholesky(t *testing.T) {
	for _, a := range randomInstances(t) {
		_, b := onesRHS(a)
		for _, f := range []arith.Format{arith.Float64, arith.Posit32e2} {
			an := a.ToDense().ToFormat(f, false)
			bn := linalg.VecFromFloat64(f, b)
			xc, err1 := solvers.CholeskySolve(an, bn)
			xl, err2 := solvers.LDLTDirectSolve(an, bn)
			if err1 != nil || err2 != nil {
				t.Fatalf("n=%d %s: %v %v", a.N, f.Name(), err1, err2)
			}
			bec := solvers.BackwardError(a, b, linalg.VecToFloat64(f, xc))
			bel := solvers.BackwardError(a, b, linalg.VecToFloat64(f, xl))
			if bel > 100*bec+1e-13 || bec > 100*bel+1e-13 {
				t.Errorf("n=%d %s: cholesky %g vs ldlt %g", a.N, f.Name(), bec, bel)
			}
		}
	}
}

// CG in float64 converges within the theoretical sqrt(cond) budget
// (with slack) and the recurrence residual tracks the true residual.
func TestPropCGConvergesWithinBudget(t *testing.T) {
	for _, a := range randomInstances(t) {
		_, b := onesRHS(a)
		f := arith.Float64
		res := solvers.CG(a.ToFormat(f, false), linalg.VecFromFloat64(f, b), 1e-6, 20*a.N)
		if !res.Converged {
			t.Fatalf("n=%d: no convergence", a.N)
		}
		be := solvers.BackwardError(a, b, res.X)
		// Recurrence residual may drift from truth; allow an order.
		if be > 1e-4 {
			t.Errorf("n=%d: converged flag but true backward error %g", a.N, be)
		}
	}
}

// Mixed IR with a 16-bit factorization still reaches Float64-level
// backward error whenever the factorization succeeds, independent of
// the matrix's scale (the refinement does the precision work).
func TestPropMixedIRReachesWorkingPrecision(t *testing.T) {
	for _, a := range randomInstances(t) {
		_, b := onesRHS(a)
		res := solvers.MixedIR(a, b, arith.Posit16e2, solvers.IRScaling{}, solvers.IROptions{})
		if res.FactorFailed {
			continue // out of the 16-bit format's reach: allowed
		}
		if res.Converged && res.BackwardError > 1e-14 {
			t.Errorf("n=%d: converged at backward error %g", a.N, res.BackwardError)
		}
	}
}

// Solutions are invariant (to rounding) under the paper's power-of-two
// system rescaling for float64.
func TestPropRescaleInvariance(t *testing.T) {
	for _, a := range randomInstances(t) {
		_, b := onesRHS(a)
		f := arith.Float64
		x1, err := solvers.CholeskySolve(a.ToDense().ToFormat(f, false), linalg.VecFromFloat64(f, b))
		if err != nil {
			t.Fatal(err)
		}
		a2 := a.Clone()
		b2 := append([]float64(nil), b...)
		a2.Scale(0.25)
		for i := range b2 {
			b2[i] *= 0.25
		}
		x2, err := solvers.CholeskySolve(a2.ToDense().ToFormat(f, false), linalg.VecFromFloat64(f, b2))
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			v1, v2 := f.ToFloat64(x1[i]), f.ToFloat64(x2[i])
			if math.Abs(v1-v2) > 1e-12*(math.Abs(v1)+1e-300) {
				t.Fatalf("n=%d: power-of-two rescale changed the solution at %d: %g vs %g", a.N, i, v1, v2)
			}
		}
	}
}
