package solvers_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

func TestGMRESIRConverges(t *testing.T) {
	a := laplacian1D(40)
	want, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float16, arith.Posit16e1, arith.Posit16e2} {
		res := solvers.MixedIRGMRES(a, b, f, solvers.IRScaling{}, solvers.IROptions{}, solvers.GMRESOptions{})
		if res.FactorFailed || !res.Converged {
			t.Fatalf("%s: %+v", f.Name(), res)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-10 {
				t.Fatalf("%s: x[%d] = %g", f.Name(), i, res.X[i])
			}
		}
	}
}

// GMRES corrections must need no more (usually fewer) outer iterations
// than plain triangular-solve corrections.
func TestGMRESIRBeatsPlainIR(t *testing.T) {
	// Moderately conditioned system where the 16-bit factor is rough.
	n := 60
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		// Diagonally dominant (diag >= 5 > 4 = max off-diag row sum),
		// so the matrix stays PD even after Float16 rounding.
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 8 + 3*math.Sin(float64(i))})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -1.5})
		}
		if i+2 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 2, Val: 0.5 * math.Cos(float64(i))})
		}
	}
	a, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	_, b := onesRHS(a)
	f := arith.Float16
	plain := solvers.MixedIR(a, b, f, solvers.IRScaling{}, solvers.IROptions{})
	gm := solvers.MixedIRGMRES(a, b, f, solvers.IRScaling{}, solvers.IROptions{}, solvers.GMRESOptions{})
	if plain.FactorFailed || gm.FactorFailed {
		t.Fatal("factorization failed")
	}
	if !gm.Converged {
		t.Fatalf("GMRES-IR did not converge: %+v", gm)
	}
	if plain.Converged && gm.Iterations > plain.Iterations {
		t.Errorf("GMRES-IR %d outer iterations > plain IR %d", gm.Iterations, plain.Iterations)
	}
}

// The paper's §V-D2 remark: GMRES corrections rescue cases where plain
// IR stalls on a poor factorization.
func TestGMRESIRRescuesStalledIR(t *testing.T) {
	// A system whose Float16 factorization is poor enough that plain
	// IR stalls (cond ~ few thousand after clamping).
	n := 50
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		d := 1.0 + 1e-3*float64(i*i%17)
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: d})
		if i+1 < n {
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -0.4999})
		}
	}
	a, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	_, b := onesRHS(a)
	f := arith.Float16
	plain := solvers.MixedIR(a, b, f, solvers.IRScaling{}, solvers.IROptions{MaxIter: 200})
	gm := solvers.MixedIRGMRES(a, b, f, solvers.IRScaling{}, solvers.IROptions{MaxIter: 200}, solvers.GMRESOptions{})
	if gm.FactorFailed {
		t.Fatal("factorization failed")
	}
	if !gm.Converged {
		t.Fatalf("GMRES-IR must converge here: %+v", gm)
	}
	t.Logf("plain: conv=%v iters=%d; gmres: iters=%d", plain.Converged, plain.Iterations, gm.Iterations)
	if plain.Converged && gm.Iterations > plain.Iterations {
		t.Errorf("GMRES-IR should not be slower: %d vs %d", gm.Iterations, plain.Iterations)
	}
}
