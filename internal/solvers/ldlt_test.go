package solvers_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/solvers"
)

func TestLDLTKnownFactor(t *testing.T) {
	// A = [[4, 2], [2, 5]]: d = (4, 4), l01 = 0.5.
	d := linalg.NewDense(2)
	d.Set(0, 0, 4)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 5)
	for _, f := range []arith.Format{arith.Float64, arith.Posit32e2, arith.Float16} {
		ld, err := solvers.LDLT(d.ToFormat(f, false))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		g := ld.ToFloat64()
		if g.At(0, 0) != 4 || g.At(0, 1) != 0.5 || g.At(1, 1) != 4 {
			t.Fatalf("%s: LDLT = %v", f.Name(), g.A)
		}
	}
}

func TestLDLTSolveMatchesCholesky(t *testing.T) {
	a := laplacian1D(30)
	want, b := onesRHS(a)
	dense := a.ToDense()
	for _, f := range []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2, arith.Posit16e2} {
		an := dense.ToFormat(f, false)
		bn := linalg.VecFromFloat64(f, b)
		x, err := solvers.LDLTDirectSolve(an, bn)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		xf := linalg.VecToFloat64(f, x)
		for i := range want {
			if math.Abs(xf[i]-want[i]) > 1e-2 {
				t.Fatalf("%s: x[%d] = %g", f.Name(), i, xf[i])
			}
		}
		// Same ballpark backward error as the Cholesky path.
		xc, err := solvers.CholeskySolve(an, bn)
		if err != nil {
			t.Fatal(err)
		}
		beL := solvers.BackwardError(a, b, xf)
		beC := solvers.BackwardError(a, b, linalg.VecToFloat64(f, xc))
		if beL > 50*beC+1e-12 {
			t.Errorf("%s: LDLT backward error %g far above Cholesky %g", f.Name(), beL, beC)
		}
	}
}

func TestLDLTNotPD(t *testing.T) {
	d := linalg.NewDense(2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 1)
	if _, err := solvers.LDLT(d.ToFormat(arith.Float64, false)); err == nil {
		t.Fatal("indefinite matrix must fail")
	}
}

// The paper rounds µ to a power of four because Cholesky takes square
// roots: a power-of-two scale s makes √s irrational in binary, costing
// the factor entries a rounding. LDLᵀ has no square roots, so its
// factor quality must be insensitive to power-of-two vs power-of-four
// scaling, while Cholesky prefers the perfect square. This test checks
// the mechanism the paper invokes: scaling by 2 changes Cholesky's
// factor entries (×√2 each) but leaves LDLᵀ's L factor bit-identical
// (D simply doubles).
func TestLDLTScaleInvariance(t *testing.T) {
	a := laplacian1D(20).ToDense()
	a2 := a.Clone()
	for i := range a2.A {
		a2.A[i] *= 2
	}
	f := arith.Posit16e2
	ld1, err := solvers.LDLT(a.ToFormat(f, false))
	if err != nil {
		t.Fatal(err)
	}
	ld2, err := solvers.LDLT(a2.ToFormat(f, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ld1.N; i++ {
		for j := i + 1; j < ld1.N; j++ {
			if ld1.At(i, j) != ld2.At(i, j) {
				t.Fatalf("L factor changed under power-of-two scaling at (%d,%d)", i, j)
			}
		}
		want := f.Mul(f.FromFloat64(2), ld1.At(i, i))
		if ld2.At(i, i) != want {
			t.Fatalf("D did not scale exactly at %d", i)
		}
	}
}
