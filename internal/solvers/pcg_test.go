package solvers_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

func diagOf(f arith.Format, a *linalg.Sparse) []arith.Num {
	return linalg.VecFromFloat64(f, a.Diag())
}

func TestPCGConverges(t *testing.T) {
	a := laplacian1D(50)
	want, b := onesRHS(a)
	for _, f := range []arith.Format{arith.Float64, arith.Float32, arith.Posit32e2} {
		an := a.ToFormat(f, false)
		res := solvers.PCG(an, diagOf(f, a), linalg.VecFromFloat64(f, b), 1e-5, 10*a.N)
		if res.Failed || !res.Converged {
			t.Fatalf("%s: %+v", f.Name(), res)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-3 {
				t.Fatalf("%s: x[%d] = %g", f.Name(), i, res.X[i])
			}
		}
	}
}

// On a badly diagonally-scaled SPD system, Jacobi PCG must converge in
// far fewer iterations than plain CG.
func TestPCGBeatsCGOnGradedSystem(t *testing.T) {
	n := 80
	var entries []linalg.Entry
	for i := 0; i < n; i++ {
		d := math.Pow(10, 4*float64(i)/float64(n-1)) // diag from 1 to 1e4
		entries = append(entries, linalg.Entry{Row: i, Col: i, Val: 2 * d})
		if i+1 < n {
			off := math.Sqrt(math.Pow(10, 4*float64(i)/float64(n-1)) * math.Pow(10, 4*float64(i+1)/float64(n-1)))
			entries = append(entries, linalg.Entry{Row: i, Col: i + 1, Val: -0.9 * off})
		}
	}
	a, err := linalg.NewSparseFromEntries(n, entries, true)
	if err != nil {
		t.Fatal(err)
	}
	_, b := onesRHS(a)
	f := arith.Float64
	an := a.ToFormat(f, false)
	bn := linalg.VecFromFloat64(f, b)
	cg := solvers.CG(an, bn, 1e-8, 50*n)
	pcg := solvers.PCG(an, diagOf(f, a), bn, 1e-8, 50*n)
	if !pcg.Converged {
		t.Fatalf("PCG did not converge: %+v", pcg)
	}
	if cg.Converged && pcg.Iterations >= cg.Iterations {
		t.Errorf("PCG %d iterations !< CG %d on graded system", pcg.Iterations, cg.Iterations)
	}
}

func TestPCGZeroDiagonalFails(t *testing.T) {
	a := laplacian1D(5)
	f := arith.Float64
	d := diagOf(f, a)
	d[2] = f.Zero()
	res := solvers.PCG(a.ToFormat(f, false), d, linalg.VecFromFloat64(f, onesB(a)), 1e-5, 100)
	if !res.Failed {
		t.Fatal("zero diagonal must fail")
	}
}

func onesB(a *linalg.Sparse) []float64 {
	_, b := onesRHS(a)
	return b
}

// Ablation: on a large-norm suite matrix posit(32,2) CG struggles; the
// paper's remedy is a global power-of-two rescale. Jacobi PCG attacks
// the same problem per-row, and on replicas whose conditioning is
// scaling-induced (like real engineering matrices) it rescues
// convergence at least as well as the global rescale — both must beat
// plain CG decisively. This sharpens the paper's picture: when the
// norm problem comes from row/column scaling, preconditioning subsumes
// the scalar rescale.
func TestPrecondVsRescaleAblation(t *testing.T) {
	tgt, err := matgen.TargetByName("bcsstk01") // ‖A‖₂ = 3e9
	if err != nil {
		t.Fatal(err)
	}
	m := matgen.Generate(tgt)
	f := arith.Posit32e2
	an := m.A.ToFormat(f, false)
	bn := linalg.VecFromFloat64(f, m.B)
	cap := 10 * m.A.N

	plain := solvers.CG(an, bn, 1e-5, cap)
	pcg := solvers.PCG(an, diagOf(f, m.A), bn, 1e-5, cap)

	a2 := m.A.Clone()
	b2 := append([]float64(nil), m.B...)
	scaling.RescaleSystemCG(a2, b2)
	rescaled := solvers.CG(a2.ToFormat(f, false), linalg.VecFromFloat64(f, b2), 1e-5, cap)

	if !rescaled.Converged {
		t.Fatalf("rescaled CG must converge: %+v", rescaled)
	}
	if !pcg.Converged {
		t.Fatalf("Jacobi PCG must converge: %+v", pcg)
	}
	t.Logf("posit(32,2) on bcsstk01: plain CG %d, Jacobi-PCG %d, rescaled CG %d iterations",
		plain.Iterations, pcg.Iterations, rescaled.Iterations)
	if plain.Converged && rescaled.Iterations >= plain.Iterations {
		t.Errorf("rescaling (%d) did not beat plain CG (%d)", rescaled.Iterations, plain.Iterations)
	}
	if plain.Converged && pcg.Iterations >= plain.Iterations {
		t.Errorf("Jacobi PCG (%d) did not beat plain CG (%d)", pcg.Iterations, plain.Iterations)
	}
}
