package shocktube_test

import (
	"math"
	"testing"

	"positlab/internal/arith"
	"positlab/internal/shocktube"
)

func TestSodInitialState(t *testing.T) {
	s := shocktube.NewSod(arith.Float64, 100)
	rho := s.Density()
	if rho[0] != 1 || rho[99] != 0.125 {
		t.Fatalf("initial densities %g, %g", rho[0], rho[99])
	}
}

func TestFloat64ReferenceRun(t *testing.T) {
	s, steps, failed := shocktube.Run(arith.Float64, shocktube.Config{Cells: 200})
	if failed {
		t.Fatal("float64 run failed")
	}
	if steps < 50 {
		t.Fatalf("only %d steps", steps)
	}
	rho := s.Density()
	// Physical sanity at t=0.2: density bounded by initial extremes,
	// left state undisturbed, and a rarefaction/contact/shock structure
	// in between (monotone decrease from 1.0 to 0.125 for first-order
	// Rusanov).
	for i, r := range rho {
		if r < 0.1 || r > 1.01 {
			t.Fatalf("unphysical density %g at cell %d", r, i)
		}
	}
	if math.Abs(rho[0]-1) > 1e-6 {
		t.Errorf("left state disturbed: %g", rho[0])
	}
	if math.Abs(rho[199]-0.125) > 1e-6 {
		t.Errorf("right state disturbed: %g", rho[199])
	}
	// Sod's exact contact/shock plateau densities are ~0.426 and
	// ~0.266; a first-order scheme at 200 cells lands near them.
	mid := rho[120]
	if mid < 0.2 || mid > 0.5 {
		t.Errorf("post-shock region density %g implausible", mid)
	}
}

// Every format completes the run; error vs the float64 reference ranks
// by precision, and the narrow working range keeps 16-bit formats
// usable (the paper's §VII intuition).
func TestFormatsRankByPrecision(t *testing.T) {
	ref, _, failed := shocktube.Run(arith.Float64, shocktube.Config{Cells: 100})
	if failed {
		t.Fatal("reference failed")
	}
	refRho := ref.Density()
	errOf := func(f arith.Format) float64 {
		s, _, failed := shocktube.Run(f, shocktube.Config{Cells: 100})
		if failed {
			t.Fatalf("%s run failed", f.Name())
		}
		return shocktube.RelErrorL2(s.Density(), refRho)
	}
	e32 := errOf(arith.Float32)
	ep32 := errOf(arith.Posit32e2)
	e16 := errOf(arith.Float16)
	ep16 := errOf(arith.Posit16e2)
	if !(e32 < e16 && ep32 < ep16) {
		t.Errorf("32-bit should beat 16-bit: %g vs %g, %g vs %g", e32, e16, ep32, ep16)
	}
	if !(ep32 < e32) {
		t.Errorf("posit(32,2) error %g should beat float32 %g in the golden-zone regime", ep32, e32)
	}
	if e16 > 0.05 || ep16 > 0.05 {
		t.Errorf("16-bit formats should stay usable: float16 %g, posit16 %g", e16, ep16)
	}
}

func TestConfigDefaults(t *testing.T) {
	s, steps, failed := shocktube.Run(arith.Float64, shocktube.Config{Cells: 50, TEnd: 0.05})
	if failed || steps == 0 || len(s.Rho) != 50 {
		t.Fatalf("short run: steps=%d failed=%v", steps, failed)
	}
}
