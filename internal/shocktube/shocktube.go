// Package shocktube implements the 1-D Sod shock tube, the CFD
// application the paper names as future work (§VII): compressible
// Euler equations on a uniform grid, solved by a first-order
// finite-volume scheme with Rusanov (local Lax–Friedrichs) fluxes and
// explicit time stepping, with every arithmetic operation rounded in
// the chosen format.
package shocktube

import (
	"math"

	"positlab/internal/arith"
)

// State is the conserved-variable field: density, momentum, total
// energy per cell, in a format.
type State struct {
	F    arith.Format
	Rho  []arith.Num
	Mom  []arith.Num
	Ener []arith.Num
}

// Config describes a run. Defaults follow Sod's classic setup: tube
// [0,1], diaphragm at 0.5, left (ρ,p) = (1,1), right (0.125, 0.1),
// γ = 1.4, final time 0.2.
type Config struct {
	Cells int     // grid cells (default 200)
	TEnd  float64 // final time (default 0.2)
	CFL   float64 // CFL number (default 0.45)
}

func (c Config) fill() Config {
	if c.Cells == 0 {
		c.Cells = 200
	}
	if c.TEnd == 0 {
		c.TEnd = 0.2
	}
	if c.CFL == 0 {
		c.CFL = 0.45
	}
	return c
}

const gamma = 1.4

// NewSod initializes the Sod state in format f.
func NewSod(f arith.Format, cells int) *State {
	s := &State{
		F:    f,
		Rho:  make([]arith.Num, cells),
		Mom:  make([]arith.Num, cells),
		Ener: make([]arith.Num, cells),
	}
	for i := 0; i < cells; i++ {
		rho, p := 1.0, 1.0
		if float64(i)+0.5 > float64(cells)/2 {
			rho, p = 0.125, 0.1
		}
		s.Rho[i] = f.FromFloat64(rho)
		s.Mom[i] = f.Zero()
		s.Ener[i] = f.FromFloat64(p / (gamma - 1))
	}
	return s
}

// Run advances the Sod problem to TEnd and returns the final state.
// The time-step size is chosen in float64 from the format state (the
// controller is not the numerics under study); all flux and update
// arithmetic happens in the format. failed reports that the state went
// exceptional (NaR/NaN/Inf) or unphysical mid-run.
func Run(f arith.Format, cfg Config) (s *State, steps int, failed bool) {
	cfg = cfg.fill()
	n := cfg.Cells
	s = NewSod(f, n)
	dx := 1.0 / float64(n)

	t := 0.0
	for t < cfg.TEnd {
		// Wave-speed estimate for the CFL condition.
		smax := 0.0
		for i := 0; i < n; i++ {
			rho := f.ToFloat64(s.Rho[i])
			if !(rho > 0) || math.IsNaN(rho) || math.IsInf(rho, 0) {
				return s, steps, true
			}
			// The CFL time-step control is deliberately computed in
			// float64 (§V of the paper: only the state update runs in
			// the format under test); dt feeds back through
			// FromFloat64 below, never into the state directly.
			u := f.ToFloat64(s.Mom[i]) / rho //lint:allow precision CFL control path is float64 by design
			p := pressureF64(f, s, i)
			if !(p > 0) || math.IsNaN(p) {
				return s, steps, true
			}
			c := math.Sqrt(gamma * p / rho) //lint:allow precision CFL control path is float64 by design
			if v := math.Abs(u) + c; v > smax {
				smax = v
			}
		}
		dt := cfg.CFL * dx / smax
		if t+dt > cfg.TEnd {
			dt = cfg.TEnd - t
		}
		if stepOnce(f, s, f.FromFloat64(dt/dx)) {
			return s, steps, true
		}
		t += dt
		steps++
	}
	return s, steps, false
}

// pressureF64 evaluates pressure of cell i in float64 for the
// controller.
func pressureF64(f arith.Format, s *State, i int) float64 {
	rho := f.ToFloat64(s.Rho[i])
	mom := f.ToFloat64(s.Mom[i])
	e := f.ToFloat64(s.Ener[i])
	return (gamma - 1) * (e - 0.5*mom*mom/rho)
}

// stepOnce applies one explicit Euler step with Rusanov fluxes and
// outflow boundaries, entirely in the format. Reports failure on
// exceptional values.
func stepOnce(f arith.Format, s *State, lambda arith.Num) bool {
	n := len(s.Rho)
	half := f.FromFloat64(0.5)
	gm1 := f.FromFloat64(gamma - 1)
	g := f.FromFloat64(gamma)

	// Primitive and flux evaluation per cell.
	type cellFlux struct {
		fRho, fMom, fEner arith.Num
		speed             arith.Num // |u| + c
	}
	fluxes := make([]cellFlux, n)
	for i := 0; i < n; i++ {
		rho, mom, e := s.Rho[i], s.Mom[i], s.Ener[i]
		u := f.Div(mom, rho)
		// p = (γ-1)(E - ½ρu²) = (γ-1)(E - ½·mom·u)
		ke := f.Mul(half, f.Mul(mom, u))
		p := f.Mul(gm1, f.Sub(e, ke))
		c := f.Sqrt(f.Div(f.Mul(g, p), rho))
		au := u
		if f.Less(au, f.Zero()) {
			au = f.Neg(au)
		}
		fluxes[i] = cellFlux{
			fRho:  mom,
			fMom:  f.Add(f.Mul(mom, u), p),
			fEner: f.Mul(u, f.Add(e, p)),
			speed: f.Add(au, c),
		}
		if f.Bad(p) || f.Bad(c) {
			return true
		}
	}

	// Interface fluxes: Rusanov. Boundary cells copy themselves
	// (outflow).
	numRho := make([]arith.Num, n+1)
	numMom := make([]arith.Num, n+1)
	numEner := make([]arith.Num, n+1)
	iface := func(l, r int) (arith.Num, arith.Num, arith.Num) {
		a := fluxes[l].speed
		if f.Less(a, fluxes[r].speed) {
			a = fluxes[r].speed
		}
		avg := func(fl, fr, ul, ur arith.Num) arith.Num {
			central := f.Mul(half, f.Add(fl, fr))
			diss := f.Mul(half, f.Mul(a, f.Sub(ur, ul)))
			return f.Sub(central, diss)
		}
		return avg(fluxes[l].fRho, fluxes[r].fRho, s.Rho[l], s.Rho[r]),
			avg(fluxes[l].fMom, fluxes[r].fMom, s.Mom[l], s.Mom[r]),
			avg(fluxes[l].fEner, fluxes[r].fEner, s.Ener[l], s.Ener[r])
	}
	for i := 1; i < n; i++ {
		numRho[i], numMom[i], numEner[i] = iface(i-1, i)
	}
	// Outflow boundaries: interface flux equals the cell flux.
	numRho[0], numMom[0], numEner[0] = fluxes[0].fRho, fluxes[0].fMom, fluxes[0].fEner
	numRho[n], numMom[n], numEner[n] = fluxes[n-1].fRho, fluxes[n-1].fMom, fluxes[n-1].fEner

	for i := 0; i < n; i++ {
		s.Rho[i] = f.Sub(s.Rho[i], f.Mul(lambda, f.Sub(numRho[i+1], numRho[i])))
		s.Mom[i] = f.Sub(s.Mom[i], f.Mul(lambda, f.Sub(numMom[i+1], numMom[i])))
		s.Ener[i] = f.Sub(s.Ener[i], f.Mul(lambda, f.Sub(numEner[i+1], numEner[i])))
		if f.Bad(s.Rho[i]) || f.Bad(s.Mom[i]) || f.Bad(s.Ener[i]) {
			return true
		}
	}
	return false
}

// Density returns the density profile as float64.
func (s *State) Density() []float64 {
	out := make([]float64, len(s.Rho))
	for i := range s.Rho {
		out[i] = s.F.ToFloat64(s.Rho[i])
	}
	return out
}

// RelErrorL2 compares two profiles: ‖a-b‖₂/‖b‖₂.
func RelErrorL2(a, b []float64) float64 {
	var num, den float64
	for i := range b {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
