package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// factcache.go is the persistent layer of the interprocedural engine.
// A cache entry stores, per package, the exported function summaries
// AND the final (allow-filtered, audited) diagnostics, keyed by a
// content hash that covers the engine schema, the enabled rule set,
// every source file of the package, and — transitively, through the
// dep keys — every source file the package can see. A warm run over an
// unchanged repo therefore never parses a function body or touches
// go/types at all: it hashes sources, replays cached diagnostics, and
// merges cached facts. Editing a leaf package changes its key, which
// changes every dependent's key, so exactly the affected slice of the
// import graph re-analyzes.

const cacheSchemaVersion = "positlint-factcache/v1"

// RepoStats reports what RunRepo did.
type RepoStats struct {
	Packages    int `json:"packages"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
}

// RepoResult is a full-module analysis: sorted diagnostics plus cache
// accounting.
type RepoResult struct {
	Diags []Diagnostic
	Stats RepoStats
}

// modPkg is one package discovered by the module scanner: enough to
// compute its cache key without type-checking it.
type modPkg struct {
	importPath string
	dir        string
	files      []string // sorted absolute paths, non-test .go
	fileHashes []string // hex SHA-256, parallel to files
	deps       []string // module-internal imports, sorted
	key        string   // hex cache key, set by computeKeys
}

// RunRepo analyzes the whole module rooted at root with the given
// rules, consulting (and refreshing) the fact cache in cacheDir.
// An empty cacheDir disables caching: every package is analyzed cold.
func RunRepo(root, cacheDir string, rules []Rule) (*RepoResult, error) {
	modPath, absRoot, err := moduleInfo(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := scanModule(modPath, absRoot)
	if err != nil {
		return nil, err
	}
	computeKeys(pkgs, rules)
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("lint: fact cache: %w", err)
		}
	}
	res := &RepoResult{Stats: RepoStats{Packages: len(pkgs)}}
	facts := NewFacts()
	var loader *Loader
	for _, mp := range pkgs {
		if cacheDir != "" {
			if ent := readCacheEntry(cacheDir, mp); ent != nil {
				res.Stats.CacheHits++
				facts.Merge(ent.Facts)
				for _, cd := range ent.Diags {
					res.Diags = append(res.Diags, cd.toDiagnostic())
				}
				continue
			}
		}
		res.Stats.CacheMisses++
		if loader == nil {
			loader, err = NewLoader(absRoot)
			if err != nil {
				return nil, err
			}
		}
		pkg, err := loader.LoadDir(mp.importPath, mp.dir)
		if err != nil {
			return nil, err
		}
		ComputeFacts(pkg, facts)
		diags := runPackage(absRoot, pkg, rules, facts)
		res.Diags = append(res.Diags, diags...)
		if cacheDir != "" {
			if err := writeCacheEntry(cacheDir, mp, facts.Export(mp.importPath), diags); err != nil {
				return nil, err
			}
		}
	}
	SortDiagnostics(res.Diags)
	return res, nil
}

// moduleInfo resolves the module path and absolute root of the module
// at dir from its go.mod.
func moduleInfo(dir string) (modPath, absDir string, err error) {
	absDir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	data, err := os.ReadFile(filepath.Join(absDir, "go.mod"))
	if err != nil {
		return "", "", fmt.Errorf("lint: module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("lint: no module line in %s/go.mod", absDir)
	}
	return modPath, absDir, nil
}

// scanModule discovers every package directory of the module and scans
// packages concurrently: each file is read once, hashed, and parsed in
// imports-only mode to recover the module-internal dependency edges.
// The result is topologically sorted (dependencies first).
func scanModule(modPath, root string) ([]*modPkg, error) {
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") && !strings.HasPrefix(d.Name(), ".") {
			if dir := filepath.Dir(p); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*modPkg, len(dirs))
	for i, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs[i] = &modPkg{importPath: importPath, dir: dir}
	}

	// Scan packages in parallel: hashing and imports-only parsing are
	// embarrassingly parallel, and on a warm run they ARE the analysis.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, mp := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(mp *modPkg) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := mp.scan(modPath); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(mp)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return topoModPkgs(pkgs), nil
}

// scan reads, hashes, and imports-only-parses the package's files.
func (mp *modPkg) scan(modPath string) error {
	entries, err := os.ReadDir(mp.dir)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	depSet := map[string]bool{}
	fset := token.NewFileSet()
	for _, name := range names {
		abs := filepath.Join(mp.dir, name)
		data, err := os.ReadFile(abs)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		sum := sha256.Sum256(data)
		mp.files = append(mp.files, abs)
		mp.fileHashes = append(mp.fileHashes, hex.EncodeToString(sum[:]))
		f, err := parser.ParseFile(fset, abs, data, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				depSet[p] = true
			}
		}
	}
	for d := range depSet {
		if d != mp.importPath {
			mp.deps = append(mp.deps, d)
		}
	}
	sort.Strings(mp.deps)
	return nil
}

// topoModPkgs orders packages dependencies-first (ties broken by
// import path, matching topoPackages on loaded packages).
func topoModPkgs(pkgs []*modPkg) []*modPkg {
	byPath := make(map[string]*modPkg, len(pkgs))
	for _, mp := range pkgs {
		byPath[mp.importPath] = mp
	}
	var out []*modPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(mp *modPkg)
	visit = func(mp *modPkg) {
		if state[mp.importPath] != 0 {
			return
		}
		state[mp.importPath] = 1
		for _, d := range mp.deps {
			if dep, ok := byPath[d]; ok {
				visit(dep)
			}
		}
		state[mp.importPath] = 2
		out = append(out, mp)
	}
	for _, mp := range pkgs { // pkgs already path-sorted
		visit(mp)
	}
	return out
}

// computeKeys derives each package's cache key in topo order, folding
// in the dep keys so invalidation is transitive.
func computeKeys(topo []*modPkg, rules []Rule) {
	keys := map[string]string{}
	var ruleNames []string
	for _, r := range rules {
		ruleNames = append(ruleNames, r.Name())
	}
	ruleSpec := strings.Join(ruleNames, ",")
	for _, mp := range topo {
		h := sha256.New()
		fmt.Fprintf(h, "%s\n%s\n%s\n%s\n", cacheSchemaVersion, factsSchema, ruleSpec, mp.importPath)
		for i, f := range mp.files {
			fmt.Fprintf(h, "%s %s\n", filepath.Base(f), mp.fileHashes[i])
		}
		for _, d := range mp.deps {
			fmt.Fprintf(h, "dep %s %s\n", d, keys[d])
		}
		mp.key = hex.EncodeToString(h.Sum(nil))
		keys[mp.importPath] = mp.key
	}
}

// cacheDiag mirrors Diagnostic with the Fix serialized (Diagnostic
// hides it from -json output; the cache must keep it so a warm -fix
// run still has edits to apply).
type cacheDiag struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	Fix     *Fix   `json:"fix,omitempty"`
}

func (cd cacheDiag) toDiagnostic() Diagnostic {
	return Diagnostic{
		Rule: cd.Rule, File: cd.File, Line: cd.Line, Col: cd.Col,
		Message: cd.Message, Fixable: cd.Fix != nil, Fix: cd.Fix,
	}
}

// cacheEntry is the on-disk record of one analyzed package.
type cacheEntry struct {
	Schema     string               `json:"schema"`
	ImportPath string               `json:"import_path"`
	Key        string               `json:"key"`
	Facts      map[string]FuncFacts `json:"facts,omitempty"`
	Diags      []cacheDiag          `json:"diags,omitempty"`
}

// cachePath maps an import path to its entry file. Slashes become
// double underscores so entries stay flat and legible in the cache dir.
func cachePath(cacheDir, importPath string) string {
	return filepath.Join(cacheDir, strings.ReplaceAll(importPath, "/", "__")+".json")
}

// readCacheEntry returns the entry for mp iff it exists and its key
// matches; any mismatch or decode error reads as a miss.
func readCacheEntry(cacheDir string, mp *modPkg) *cacheEntry {
	data, err := os.ReadFile(cachePath(cacheDir, mp.importPath))
	if err != nil {
		return nil
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil
	}
	if ent.Schema != cacheSchemaVersion || ent.Key != mp.key {
		return nil
	}
	return &ent
}

// writeCacheEntry persists one package's analysis atomically
// (write-to-temp, sync, rename), so a crashed run never leaves a
// half-written entry that a later run would trust.
func writeCacheEntry(cacheDir string, mp *modPkg, facts map[string]FuncFacts, diags []Diagnostic) error {
	cds := make([]cacheDiag, 0, len(diags))
	for _, d := range diags {
		cds = append(cds, cacheDiag{
			Rule: d.Rule, File: d.File, Line: d.Line, Col: d.Col,
			Message: d.Message, Fix: d.Fix,
		})
	}
	data, err := json.Marshal(cacheEntry{
		Schema:     cacheSchemaVersion,
		ImportPath: mp.importPath,
		Key:        mp.key,
		Facts:      facts,
		Diags:      cds,
	})
	if err != nil {
		return fmt.Errorf("lint: fact cache: %w", err)
	}
	final := cachePath(cacheDir, mp.importPath)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lint: fact cache: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("lint: fact cache: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("lint: fact cache: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lint: fact cache: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lint: fact cache: %w", err)
	}
	return nil
}
