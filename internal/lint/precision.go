package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// precisionScope is the set of format-generic packages (by import-path
// base): packages whose compute paths must dispatch every rounding
// operation through arith.Format. The format implementations themselves
// (arith, posit, minifloat, fpcore, bigfp) legitimately use float64
// internals and are deliberately out of scope — that includes the slice
// kernels in arith/kernels.go, whose float64 value-domain intermediates
// re-round after every operation by construction. Scoped packages get
// kernel speed the sanctioned way: arith.BulkOf(f).DotKernel(...), never
// by inlining float64 loops over ToFloat64 results (which this rule
// flags as laundering).
// The shadow-execution package is scoped too: its float64 reference
// math is load-bearing, but the sanctioned idiom keeps it behind the
// Format-free refEngine seam (see testdata/src/shadow) — inline
// reference arithmetic in format-handling methods is still laundering.
var precisionScope = []string{"solvers", "linalg", "scaling", "experiments", "shocktube", "fft", "shadow"}

// precisionDeny lists the math functions that perform a rounded
// computation. Calling one of these in a function that also handles
// arith.Format values computes in IEEE binary64 regardless of the
// format under test — "precision laundering", the exact bug class that
// invalidates a Posit-vs-IEEE comparison. Exact or classifying
// helpers (Abs, IsNaN, IsInf, Signbit, Copysign, Ldexp, Float64bits,
// Min/Max, NaN, Inf, ...) stay allowed.
var precisionDeny = map[string]bool{
	"Sqrt": true, "Cbrt": true, "Hypot": true, "Pow": true, "Pow10": true,
	"Exp": true, "Exp2": true, "Expm1": true,
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Sin": true, "Cos": true, "Tan": true, "Sincos": true,
	"Asin": true, "Acos": true, "Atan": true, "Atan2": true,
	"Sinh": true, "Cosh": true, "Tanh": true,
	"Asinh": true, "Acosh": true, "Atanh": true,
	"FMA": true, "Mod": true, "Remainder": true,
	"Gamma": true, "Lgamma": true, "Erf": true, "Erfc": true,
	"Erfinv": true, "Erfcinv": true,
	"J0": true, "J1": true, "Jn": true, "Y0": true, "Y1": true, "Yn": true,
}

// precisionRule flags float64 computation inside format-generic
// functions: math.* calls from the deny list, and raw float arithmetic
// applied directly to Format.ToFloat64 results. Both silently compute
// in binary64 on a path that is supposed to round in the format under
// test. Audited reporting sites (final residuals, digit counts) carry
// a //lint:allow precision comment instead.
type precisionRule struct{}

func (precisionRule) Name() string { return "precision" }
func (precisionRule) Doc() string {
	return "forbid raw float64 math (math.Sqrt, math.Pow, ...) and arithmetic on ToFloat64 results inside format-generic functions"
}

func (precisionRule) Check(p *Pass) {
	if !scoped(p.Pkg, precisionScope...) {
		return
	}
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		if !usesArithFormat(info, fd) {
			return
		}
		name := funcDisplayName(fd)
		ast.Inspect(fd, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, e); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "math" && precisionDeny[fn.Name()] {
					p.Reportf(e.Pos(), "math.%s computes in float64 inside format-generic %s; dispatch through the arith.Format (f.Sqrt, ...) or move the float64 reporting into a float64-only helper", fn.Name(), name)
				}
			case *ast.BinaryExpr:
				switch e.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
				default:
					return true
				}
				if !isFloatExpr(info, e) {
					return true
				}
				if isToFloat64Call(info, e.X) || isToFloat64Call(info, e.Y) {
					p.Reportf(e.OpPos, "raw %s arithmetic on a Format.ToFloat64 result launders precision inside format-generic %s; compute in the format and convert once at the end", e.Op, name)
				}
			}
			return true
		})
	})
}

// usesArithFormat reports whether the function's signature or body
// mentions any arith.Format-typed value — the marker of a
// format-generic compute path.
func usesArithFormat(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		switch obj.(type) {
		case *types.Var, *types.Func:
			if isArithFormat(obj.Type()) {
				found = true
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Results() != nil {
				for i := 0; i < sig.Results().Len(); i++ {
					if isArithFormat(sig.Results().At(i).Type()) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isToFloat64Call matches f.ToFloat64(x) where f is an arith.Format
// (unwrapping parentheses and unary minus).
func isToFloat64Call(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ToFloat64" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isArithFormat(sig.Recv().Type())
}
