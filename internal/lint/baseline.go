package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// baseline.go implements finding suppression by baseline file: a
// recorded snapshot of known findings that `positlint -baseline`
// subtracts from a run, so a repo can adopt a new rule without first
// burning down every historical hit. Matching is on (rule, file,
// message) — deliberately NOT on line/column, so unrelated edits that
// shift a finding a few lines do not resurrect it.

const baselineSchema = "positlint-baseline/v1"

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

type baselineFile struct {
	Schema  string          `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// WriteBaseline serializes the diagnostics as a baseline file.
// Duplicate (rule, file, message) triples collapse to one entry; the
// output is sorted and stable.
func WriteBaseline(path string, diags []Diagnostic) error {
	seen := map[BaselineEntry]bool{}
	var entries []BaselineEntry
	for _, d := range diags {
		e := BaselineEntry{Rule: d.Rule, File: d.File, Message: d.Message}
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(baselineFile{Schema: baselineSchema, Entries: entries}, "", "  ")
	if err != nil {
		return fmt.Errorf("lint: write baseline: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (map[BaselineEntry]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: load baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("lint: load baseline %s: %w", path, err)
	}
	if bf.Schema != baselineSchema {
		return nil, fmt.Errorf("lint: baseline %s has schema %q, want %q", path, bf.Schema, baselineSchema)
	}
	set := make(map[BaselineEntry]bool, len(bf.Entries))
	for _, e := range bf.Entries {
		set[e] = true
	}
	return set, nil
}

// FilterBaseline drops diagnostics present in the baseline, returning
// the survivors and how many were suppressed.
func FilterBaseline(diags []Diagnostic, baseline map[BaselineEntry]bool) (kept []Diagnostic, suppressed int) {
	if len(baseline) == 0 {
		return diags, 0
	}
	kept = diags[:0:0]
	for _, d := range diags {
		if baseline[BaselineEntry{Rule: d.Rule, File: d.File, Message: d.Message}] {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
