package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// facts.go is the interprocedural layer of positlint: a per-function
// summary ("fact") table computed bottom-up over the module's packages
// in dependency order. Rules consult facts to see one call past the
// function they are inspecting — the helper that launders precision,
// the journal writer that fsyncs, the solver loop that blocks — while
// staying stdlib-only (go/ast + go/types, no x/tools, no SSA).
//
// Facts are deliberately coarse (per-function bits and one parameter
// bitmask) so they serialize into the on-disk fact cache and compose
// across packages: analyzing package P only needs the fact tables of
// P's imports, never their syntax trees.

// factsSchema versions the serialized fact layout; it participates in
// cache keys so a fact-shape change invalidates every entry. v2: added
// the faultfs.File.Sync interface model, which changes the Syncs facts
// of everything calling through the seam.
const factsSchema = "positlint-facts/v2"

// FuncFacts is the summary of one function. The zero value means "no
// interesting behavior known", which is the safe default for unknown
// callees: interprocedural rules under-approximate rather than guess.
type FuncFacts struct {
	// Launder is a bitmask over the function's parameters (positional,
	// receiver excluded, capped at 64): bit i set means parameter i is
	// a float that flows through a rounded float64 operation (binary
	// arithmetic or a deny-listed math call) into a return value. A
	// caller passing a Format.ToFloat64 result into such a parameter
	// launders precision one call away.
	Launder uint64 `json:"launder,omitempty"`
	// Blocking: the function (transitively) performs a channel
	// send/receive/select, sleeps, waits on a WaitGroup, or does
	// network I/O. sync.Cond.Wait is deliberately excluded: it is
	// called while holding its own mutex by contract.
	Blocking bool `json:"blocking,omitempty"`
	// Syncs: the function (transitively) calls (*os.File).Sync, i.e.
	// it is durability evidence before a rename.
	Syncs bool `json:"syncs,omitempty"`
	// UsesCtx: the function has a context.Context parameter and
	// actually consults it (the parameter appears in the body).
	// Passing context.Background() to such a function severs the
	// caller's cancellation chain.
	UsesCtx bool `json:"uses_ctx,omitempty"`
	// DropsWriterErr: the function has an io.Writer-shaped parameter
	// and silently discards the error of an output operation on it
	// (an `_ =` acknowledgment does not count as dropping).
	DropsWriterErr bool `json:"drops_writer_err,omitempty"`
}

// Facts is the global fact table, keyed by types.Func FullName (e.g.
// "positlab/internal/jobs.openJournal" or
// "(*positlab/internal/jobs.journal).append").
type Facts struct {
	m map[string]FuncFacts
}

// NewFacts returns an empty table.
func NewFacts() *Facts { return &Facts{m: map[string]FuncFacts{}} }

// Len reports the number of analyzed functions in the table.
func (fa *Facts) Len() int { return len(fa.m) }

// Export returns the facts recorded for one package, keyed by function
// full name, for cache serialization.
func (fa *Facts) Export(pkgPath string) map[string]FuncFacts {
	out := map[string]FuncFacts{}
	prefix1 := pkgPath + "."
	prefix2 := "(" + pkgPath + "."  // methods: (pkg.T).M
	prefix3 := "(*" + pkgPath + "." // pointer methods: (*pkg.T).M
	for _, k := range sortedKeys(fa.m) {
		if strings.HasPrefix(k, prefix1) || strings.HasPrefix(k, prefix2) || strings.HasPrefix(k, prefix3) {
			out[k] = fa.m[k]
		}
	}
	return out
}

// Merge loads externally computed facts (from the cache) into the
// table.
func (fa *Facts) Merge(m map[string]FuncFacts) {
	for _, k := range sortedKeys(m) {
		fa.m[k] = m[k] // zero facts carry meaning: the function was analyzed
	}
}

// sortedKeys returns the map's keys in sorted order, for
// deterministic iteration.
func sortedKeys(m map[string]FuncFacts) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ForCall resolves the facts of a callee: module functions from the
// computed table, standard-library functions from the built-in models.
func (fa *Facts) ForCall(fn *types.Func) FuncFacts {
	if fn == nil || fn.Pkg() == nil {
		return FuncFacts{}
	}
	if ff, ok := fa.m[fn.FullName()]; ok {
		return ff
	}
	return stdlibFacts(fn)
}

// stdlibFacts models the standard library: which functions round
// floats, block, sync files, or consume contexts. The models are
// conservative allowlists — an unmodeled stdlib call simply has zero
// facts.
func stdlibFacts(fn *types.Func) FuncFacts {
	pkg := fn.Pkg()
	if pkg == nil {
		return FuncFacts{}
	}
	var ff FuncFacts
	sig, _ := fn.Type().(*types.Signature)
	path, name := pkg.Path(), fn.Name()
	recvName := ""
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj() != nil {
			recvName = n.Obj().Name()
		}
	}
	switch path {
	case "math":
		if precisionDeny[name] && sig != nil {
			for i := 0; i < sig.Params().Len() && i < 64; i++ {
				if b, ok := sig.Params().At(i).Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					ff.Launder |= 1 << uint(i)
				}
			}
		}
	case "time":
		if name == "Sleep" {
			ff.Blocking = true
		}
	case "sync":
		if name == "Wait" && recvName == "WaitGroup" {
			ff.Blocking = true
		}
	case "net":
		if recvName != "" || strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") {
			ff.Blocking = true
		}
	case "net/http":
		switch {
		case recvName == "Client",
			recvName == "Transport" && name == "RoundTrip",
			recvName == "Server" && (name == "Serve" || name == "ListenAndServe" || name == "ListenAndServeTLS" || name == "Shutdown"),
			recvName == "" && (name == "Get" || name == "Head" || name == "Post" || name == "PostForm" || name == "ListenAndServe"):
			ff.Blocking = true
		}
	case "os/exec":
		if recvName == "Cmd" && (name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput") {
			ff.Blocking = true
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull":
			ff.Blocking = true
		}
	case "os":
		if recvName == "File" && name == "Sync" {
			ff.Syncs = true
		}
	case "positlab/internal/faultfs":
		// The faultfs.File interface method has no body to analyze, so
		// model it like (*os.File).Sync: every implementation (the os
		// passthrough and the fault injector alike) performs — or
		// deliberately simulates — an fsync here.
		if recvName == "File" && name == "Sync" {
			ff.Syncs = true
		}
	}
	if sig != nil && ctxParamIndex(sig) >= 0 {
		// A stdlib (or otherwise unanalyzed) function that accepts a
		// context is assumed to honor it.
		ff.UsesCtx = true
	}
	return ff
}

// ctxParamIndex returns the index of the first context.Context
// parameter of sig, or -1.
func ctxParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg().Path() == "context"
}

// isWriterish reports types with a Write method (io.Writer
// implementations and interfaces embedding it) — the parameter shape
// the DropsWriterErr fact tracks.
func isWriterish(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Write")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() >= 1 && sig.Results().Len() >= 1
}

// ComputeFacts analyzes every function of pkg and records its facts,
// iterating to a fixpoint so same-package (including mutually
// recursive) helper chains converge. Cross-package facts must already
// be present in fa — callers analyze packages in dependency order.
func ComputeFacts(pkg *Package, fa *Facts) {
	type fdecl struct {
		key string
		fd  *ast.FuncDecl
		fn  *types.Func
	}
	var funcs []fdecl
	forEachFunc(pkg, func(fd *ast.FuncDecl) {
		fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		funcs = append(funcs, fdecl{fn.FullName(), fd, fn})
	})
	// Bounded fixpoint: each round can only set more bits, and the
	// lattice is tiny, so convergence is fast; the bound is a guard.
	// Zero facts are stored too: presence in the table means "analyzed",
	// which stops ForCall from falling through to the conservative
	// stdlib models for module functions (e.g. a function that ignores
	// its ctx parameter must NOT be presumed to consume it).
	for round := 0; round < 8; round++ {
		changed := false
		for _, f := range funcs {
			ff := analyzeFunc(pkg, f.fd, f.fn, fa)
			if old, seen := fa.m[f.key]; !seen || ff != old {
				fa.m[f.key] = ff
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// analyzeFunc computes the facts of one function against the current
// table.
func analyzeFunc(pkg *Package, fd *ast.FuncDecl, fn *types.Func, fa *Facts) FuncFacts {
	info := pkg.Info
	var ff FuncFacts
	ff.Launder = launderMask(pkg, fd, fn, fa)

	sig, _ := fn.Type().(*types.Signature)

	// UsesCtx: the context parameter appears anywhere in the body
	// (including closures — capturing ctx is consuming it).
	if sig != nil {
		if ci := ctxParamIndex(sig); ci >= 0 {
			ctxObj := sig.Params().At(ci)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && info.Uses[id] == ctxObj {
					ff.UsesCtx = true
					return false
				}
				return !ff.UsesCtx
			})
		}
	}

	// Writer parameters, for DropsWriterErr.
	writerParams := map[types.Object]bool{}
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if isWriterish(p.Type()) {
				writerParams[p] = true
			}
		}
	}

	// Blocking, Syncs, DropsWriterErr: one walk over the body,
	// skipping function literals (a closure's channel op happens when
	// the closure runs, not when the enclosing function does).
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SendStmt:
			ff.Blocking = true
		case *ast.SelectStmt:
			// A select with a default clause never blocks, and neither
			// do the comm operations of a select once it has chosen a
			// case — only the clause bodies can block.
			if !selectHasDefault(e) {
				ff.Blocking = true
			}
			for _, cl := range e.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						walkSkipFuncLit(s, visit)
					}
				}
			}
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				ff.Blocking = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ff.Blocking = true
				}
			}
		case *ast.ExprStmt:
			if call, ok := e.X.(*ast.CallExpr); ok {
				if dropsWriterErrCall(info, call, writerParams) {
					ff.DropsWriterErr = true
				}
			}
		case *ast.CallExpr:
			cf := calleeFunc(info, e)
			cff := fa.ForCall(cf)
			if cff.Blocking {
				ff.Blocking = true
			}
			if cff.Syncs {
				ff.Syncs = true
			}
		}
		return true
	}
	walkSkipFuncLit(fd.Body, visit)
	return ff
}

// selectHasDefault reports whether the select carries a default clause
// (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// dropsWriterErrCall reports an output-op call on a writer parameter
// whose error result is discarded by appearing as a statement.
func dropsWriterErrCall(info *types.Info, call *ast.CallExpr, writerParams map[types.Object]bool) bool {
	if len(writerParams) == 0 || !returnsErrorLast(info, call) {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	onParam := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && writerParams[info.Uses[id]]
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if !errcheckMethods[fn.Name()] {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && onParam(sel.X)
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && onParam(call.Args[0])
		}
	}
	return false
}

// walkSkipFuncLit is ast.Inspect that does not descend into function
// literals.
func walkSkipFuncLit(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// taintVal tracks, for one expression or local, which float parameters
// it derives from and whether a rounding operation happened on the
// way.
type taintVal struct {
	mask    uint64
	rounded bool
}

func (a taintVal) union(b taintVal) taintVal {
	return taintVal{a.mask | b.mask, a.rounded || b.rounded}
}

// launderMask runs a small forward taint pass over the function body:
// float parameters are sources, rounded float64 operations (binary
// arithmetic, deny-listed math calls, calls into already-summarized
// laundering helpers) mark the value, return statements are sinks.
func launderMask(pkg *Package, fd *ast.FuncDecl, fn *types.Func, fa *Facts) uint64 {
	info := pkg.Info
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 {
		return 0
	}
	taint := map[types.Object]taintVal{}
	nFloatParams := 0
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		p := sig.Params().At(i)
		if b, ok := p.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			taint[p] = taintVal{mask: 1 << uint(i)}
			nFloatParams++
		}
	}
	if nFloatParams == 0 {
		return 0
	}

	var launder uint64
	var eval func(e ast.Expr) taintVal
	eval = func(e ast.Expr) taintVal {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return taint[info.ObjectOf(x)]
		case *ast.UnaryExpr:
			if x.Op == token.SUB || x.Op == token.ADD {
				return eval(x.X)
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloatExpr(info, x) {
					v := eval(x.X).union(eval(x.Y))
					if v.mask != 0 {
						v.rounded = true
					}
					return v
				}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				return eval(x.Args[0]) // conversion: taint flows through
			}
			cf := calleeFunc(info, x)
			cff := fa.ForCall(cf)
			if cff.Launder != 0 {
				var v taintVal
				for i, arg := range x.Args {
					if i >= 64 {
						break
					}
					if cff.Launder&(1<<uint(i)) != 0 {
						v = v.union(eval(arg))
					}
				}
				if v.mask != 0 {
					v.rounded = true
				}
				return v
			}
		}
		return taintVal{}
	}

	assign := func(lhs ast.Expr, v taintVal) {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				if merged := taint[obj].union(v); merged != (taintVal{}) {
					taint[obj] = merged
				}
			}
		}
	}

	var walkStmts func(n ast.Node)
	walkStmts = func(root ast.Node) {
		walkSkipFuncLit(root, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) == len(s.Lhs) {
					for i := range s.Rhs {
						assign(s.Lhs[i], eval(s.Rhs[i]))
					}
				}
			case *ast.ValueSpec:
				if len(s.Values) == len(s.Names) {
					for i := range s.Values {
						assign(s.Names[i], eval(s.Values[i]))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range s.Results {
					if v := eval(r); v.rounded && v.mask != 0 {
						launder |= v.mask
					}
				}
			}
			return true
		})
	}

	// Two passes handle loop-carried and use-before-def-order taint;
	// the lattice is monotone so extra passes only add bits.
	for pass := 0; pass < 3; pass++ {
		before := launder
		sizeBefore := len(taint)
		var bits uint64
		for _, v := range taint {
			bits |= v.mask
			if v.rounded {
				bits |= 1 << 63
			}
		}
		walkStmts(fd.Body)
		var bitsAfter uint64
		for _, v := range taint {
			bitsAfter |= v.mask
			if v.rounded {
				bitsAfter |= 1 << 63
			}
		}
		if launder == before && len(taint) == sizeBefore && bits == bitsAfter {
			break
		}
	}
	return launder
}

// topoPackages orders pkgs so every package appears after the packages
// it imports (restricted to the given set). Ties and roots keep their
// incoming (sorted-by-path) order for determinism.
func topoPackages(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			return
		}
		state[p.ImportPath] = 1
		if p.Types != nil {
			imps := p.Types.Imports()
			paths := make([]string, 0, len(imps))
			for _, imp := range imps {
				paths = append(paths, imp.Path())
			}
			sort.Strings(paths)
			for _, path := range paths {
				if dep, ok := byPath[path]; ok {
					visit(dep)
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}
