package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// arithFormatPath is the import path of the format-dispatch interface
// every compute kernel must go through.
const arithFormatPath = "positlab/internal/arith"

// isArithFormat reports whether t is (or directly contains, through
// pointers, slices, arrays or maps) the arith.Format interface.
func isArithFormat(t types.Type) bool {
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		return obj != nil && obj.Name() == "Format" && obj.Pkg() != nil && obj.Pkg().Path() == arithFormatPath
	case *types.Pointer:
		return isArithFormat(u.Elem())
	case *types.Slice:
		return isArithFormat(u.Elem())
	case *types.Array:
		return isArithFormat(u.Elem())
	case *types.Map:
		return isArithFormat(u.Elem())
	}
	return false
}

// calleeFunc resolves the called function or method of a call, or nil
// for calls of function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports a call to package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		(fn.Type() == nil || fn.Type().(*types.Signature).Recv() == nil)
}

// isBuiltinOrConversion reports calls with no runtime side effects of
// their own: builtins (append, len, delete, ...) and type conversions.
func isBuiltinOrConversion(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok {
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.Builtin); ok {
			return true
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// lockTypes are the sync primitives that must never be copied or
// acquired in surprising ways.
var lockTypes = map[string]bool{
	"sync.Mutex":          true,
	"sync.RWMutex":        true,
	"sync.WaitGroup":      true,
	"sync.Once":           true,
	"sync.Cond":           true,
	"sync.Map":            true,
	"sync.Pool":           true,
	"sync/atomic.Bool":    true,
	"sync/atomic.Int32":   true,
	"sync/atomic.Int64":   true,
	"sync/atomic.Uint32":  true,
	"sync/atomic.Uint64":  true,
	"sync/atomic.Uintptr": true,
	"sync/atomic.Pointer": true,
	"sync/atomic.Value":   true,
}

// containsLock reports whether a value of type t embeds a sync
// primitive by value, returning the offending type's name.
func containsLock(t types.Type) (string, bool) {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil {
			key := obj.Pkg().Path() + "." + obj.Name()
			if lockTypes[key] {
				return obj.Pkg().Name() + "." + obj.Name(), true
			}
		}
		return containsLockSeen(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsLockSeen(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return "", false
}

// scoped reports whether the package's import-path base is one of the
// rule's target packages.
func scoped(p *Package, bases ...string) bool {
	base := p.Base()
	for _, b := range bases {
		if base == b {
			return true
		}
	}
	return false
}

// funcDisplayName renders a function name for diagnostics, including
// the receiver type for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	ast.Inspect(fd.Recv.List[0].Type, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if b.Len() > 0 {
				b.WriteByte('.')
			}
			b.WriteString(id.Name)
		}
		return true
	})
	return b.String() + "." + fd.Name.Name
}
