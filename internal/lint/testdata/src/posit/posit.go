// Package posit is a lint fixture: the panics rule exempts the posit
// bit-twiddling package, whose invariant panics are its documented
// contract.
package posit

// Decode panics freely; the package is out of the panics rule's scope.
func Decode(bits uint64) uint64 {
	if bits == 0 {
		panic("posit: zero has no regime")
	}
	return bits - 1
}
