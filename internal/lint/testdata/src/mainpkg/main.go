// Command mainpkg is a lint fixture: main packages are exempt from the
// panics rule (CLI argument handling panics/exits by design).
package main

func main() {
	run()
}

func run() {
	panic("usage: mainpkg <arg>")
}
