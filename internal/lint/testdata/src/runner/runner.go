// Package runner is a lint fixture standing in for the real experiment
// registry: the registry rule matches any package-level Register
// function in a package whose import-path base is "runner".
package runner

// Spec mirrors the real runner.Spec shape the registry rule reads.
type Spec struct {
	ID   string
	Deps []string
}

var registry = map[string]Spec{}

// Register records a spec, like the real registry does at init time.
func Register(s Spec) {
	registry[s.ID] = s
}
