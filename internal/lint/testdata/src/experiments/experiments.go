// Package experiments is a lint fixture for the registry and maporder
// rules.
package experiments

import (
	"fmt"
	"io"

	"positlab/internal/lint/testdata/src/runner"
)

func init() {
	runner.Register(runner.Spec{ID: "alpha", Deps: []string{"beta"}})
	runner.Register(runner.Spec{ID: "beta"})
	runner.Register(runner.Spec{ID: "beta"})                           // want: registry duplicate
	runner.Register(runner.Spec{ID: "gamma", Deps: []string{"gamma"}}) // want: registry self-dep
	runner.Register(runner.Spec{ID: "delta", Deps: []string{"ghost"}}) // want: registry missing dep
	runner.Register(helperSpec("epsilon", "alpha"))
}

// helperSpec is the one-level helper idiom the rule resolves: ID and
// Deps bound to the literal call arguments.
func helperSpec(id, dep string) runner.Spec {
	return runner.Spec{ID: id, Deps: []string{dep}}
}

// Dump leaks randomized map order into writer output.
func Dump(w io.Writer, m map[string]float64) {
	for k, v := range m { // want: maporder
		_, _ = fmt.Fprintf(w, "%s=%g\n", k, v)
	}
}

// CollectKeys only collects; pure collection bodies are allowed.
func CollectKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// DumpAllowed carries the escape hatch on the line above the loop.
func DumpAllowed(w io.Writer, m map[string]float64) {
	//lint:allow maporder fixture: order checked by the caller
	for k, v := range m {
		_, _ = fmt.Fprintf(w, "%s=%g\n", k, v)
	}
}
