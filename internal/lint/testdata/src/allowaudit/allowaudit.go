// Package allowaudit is the unusedallow fixture: escape hatches in
// every state of repair. Used directives are invisible; stale and
// misspelled ones are findings, and fully-dead directives carry a
// deletion fix that -fix applies.
package allowaudit

// Quiet carries a directive for a rule that has nothing to suppress
// here: stale, and removable because every listed name is dead.
func Quiet() int {
	x := 1 //lint:allow maporder left behind after a refactor
	return x
}

// Typo names a rule that does not exist — the directive never worked.
func Typo() int {
	y := 2 //lint:allow mapodrer misspelled since day one
	return y
}

// Checked is a live allow: the panics rule fires on this line without
// it, so the directive is doing its job and stays silent.
func Checked(n int) {
	if n < 0 {
		panic("negative") //lint:allow panics fixture invariant check
	}
}

// Mixed is half-live: panics suppresses a finding, maporder is dead.
// The directive is reported but not auto-removable (deleting it would
// unsilence the live panic finding).
func Mixed(n int) {
	if n > 0 {
		panic("positive") //lint:allow panics,maporder live and dead names on one directive
	}
}
