// Package shadow is a lint fixture mimicking the real shadow-execution
// package — the one scoped package where float64 reference math is
// load-bearing: shadow measurement recomputes each format operation in
// higher precision to quantify its rounding error. The idiom that keeps
// that legal under the precision rules: every rounded reference
// operation lives in a Format-free helper behind the engine seam, and
// format-handling methods only convert operands and hand them over.
// Inlining the reference arithmetic (or laundering it one call away)
// is flagged like anywhere else in scope.
package shadow

import (
	"fmt"
	"io"
	"math"

	"positlab/internal/arith"
)

// engine is the Format-free measurement seam: implementations own the
// float64 (or big.Float) reference arithmetic.
type engine interface {
	measure(a, b, got float64) (ref, rel float64)
}

// f64Engine recomputes operations in native binary64. It never
// mentions arith.Format, so float64 math is its job — the same
// contract as the real refEngine implementations.
type f64Engine struct{}

func (f64Engine) measure(a, b, got float64) (ref, rel float64) {
	ref = a + b
	return ref, relErr(got, ref)
}

// relErr is a Format-free float64 helper: legal reference math.
func relErr(got, ref float64) float64 {
	if ref == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-ref) / math.Abs(ref)
}

// refAdd rounds its float parameters into the result — a laundering
// helper when scoped format-handling code feeds it ToFloat64 values.
func refAdd(a, b float64) float64 { return a + b }

// rec pairs a format with its reference engine, like shadow.Recorder.
type rec struct {
	f   arith.Format
	eng engine
}

// NoteGood is the sanctioned mixing idiom: convert the operands to
// float64 locals once, pass them through the engine interface, and
// keep every rounded reference operation out of this method.
func (r *rec) NoteGood(a, b, got arith.Num) float64 {
	av := r.f.ToFloat64(a)
	bv := r.f.ToFloat64(b)
	gv := r.f.ToFloat64(got)
	_, rel := r.eng.measure(av, bv, gv)
	return rel
}

// NoteBadInline computes the reference inline instead: raw float64
// arithmetic on ToFloat64 results inside a format-handling method is
// laundering, shadow scope or not.
func (r *rec) NoteBadInline(a, b arith.Num) float64 {
	return r.f.ToFloat64(a) + r.f.ToFloat64(b) // want: precision raw + on ToFloat64
}

// NoteBadMath reaches for a deny-listed math call directly.
func (r *rec) NoteBadMath(x arith.Num) float64 {
	return math.Sqrt(r.f.ToFloat64(x)) // want: precision math.Sqrt
}

// NoteBadLaundered hides the inline reference one call away: refAdd
// rounds both arguments in binary64, so feeding it ToFloat64-derived
// values launders exactly like NoteBadInline.
func (r *rec) NoteBadLaundered(a, b arith.Num) float64 {
	av := r.f.ToFloat64(a)
	return refAdd(av, r.f.ToFloat64(b)) // want: xprecision both args
}

// DigitsAllowed carries the audited escape hatch for a reporting
// metric (the twin of NoteBadMath's flagged call).
func (r *rec) DigitsAllowed(x arith.Num) float64 {
	return -math.Log10(r.f.ToFloat64(x)) //lint:allow precision audited telemetry digit count
}

// WriteTrace streams a divergence-trace artifact; a dropped write
// error would truncate the artifact while still looking like one.
func WriteTrace(w io.Writer, rel []float64) {
	fmt.Fprintln(w, "iter,rel") // want: errcheck
	for i, r := range rel {
		fmt.Fprintf(w, "%d,%g\n", i, r) // want: errcheck
	}
	_ = writeFooter(w) // acknowledged discard stays clean
}

// writeFooter returns its write error for the caller to handle.
func writeFooter(w io.Writer) error {
	_, err := io.WriteString(w, "end\n")
	return err
}
