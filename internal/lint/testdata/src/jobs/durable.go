package jobs

import (
	"bytes"
	"os"

	"positlab/internal/lint/testdata/src/floatutil"
)

// SaveTorn renames without any fsync evidence: after a crash the
// "atomically replaced" file can be empty while the rename already
// committed.
func SaveTorn(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want: durability rename without sync
}

// SaveDirect syncs through the method itself; clean.
func SaveDirect(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// SaveViaHelper gets its fsync evidence interprocedurally: FSync lives
// a package away, and only its summary says it syncs.
func SaveViaHelper(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := floatutil.FSync(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// WriteHeader hands the journal file to a helper whose summary says it
// drops write errors — the torn-artifact bug entering sideways.
func WriteHeader(f *os.File) {
	floatutil.DropWrites(f) // want: durability writer handoff
}

// WriteHeaderChecked hands the file to the honest twin; clean.
func WriteHeaderChecked(f *os.File) error {
	return floatutil.WriteChecked(f)
}

// BufferHeader hands an infallible sink to the error-dropping helper;
// a bytes.Buffer write cannot fail, so this is clean.
func BufferHeader(b *bytes.Buffer) {
	floatutil.DropWrites(b)
}

// CleanupBlind blank-discards the Remove error in a cleanup path: on a
// sick disk the temp files of failed atomic writes accrete silently.
func CleanupBlind(tmp string) {
	_ = os.Remove(tmp) // want: durability blank remove
}

// CleanupJoined routes the removal error into the return value; clean.
func CleanupJoined(tmp string, err error) error {
	if rerr := os.Remove(tmp); rerr != nil {
		return rerr
	}
	return err
}
