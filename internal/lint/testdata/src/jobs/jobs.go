// Package jobs is a lint fixture for the errcheck rule's journal
// coverage: a job journal is the durability story, so a dropped
// Write/Sync/Close error means a record that was never on disk while
// the store believes it was — the job silently evaporates on replay.
package jobs

import (
	"encoding/json"
	"fmt"
	"os"
)

// Append journals one record, dropping every error the rule cares
// about.
func Append(f *os.File, rec any) {
	json.NewEncoder(f).Encode(rec) // want: errcheck statement Encode
	f.Write([]byte("\n"))          // want: errcheck statement Write
	f.Sync()                       // want: errcheck statement Sync
	defer f.Close()                // want: errcheck defer Close
	fmt.Fprintf(f, "trailer\n")    // want: errcheck statement Fprintf
}

// AppendChecked is the journal writer the rule wants: every failure
// surfaces to the caller, so durability claims stay honest.
func AppendChecked(f *os.File, line []byte) error {
	if _, err := f.Write(line); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// Acknowledged discard: close-after-successful-sync cannot lose
	// data that matters.
	_ = f.Close()
	return nil
}
