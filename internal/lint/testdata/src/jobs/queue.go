package jobs

import (
	"sync"
	"time"

	"positlab/internal/lint/testdata/src/floatutil"
)

// Queue is the mutexio fixture: a mutex-guarded structure whose
// methods mix lock windows with channel traffic.
type Queue struct {
	mu    sync.Mutex
	ch    chan int
	items []int
}

// PushBlocked sends on the channel with mu held: if the receiver needs
// mu to drain, this deadlocks.
func (q *Queue) PushBlocked(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.ch <- v // want: mutexio channel send under q.mu
	q.mu.Unlock()
}

// PushUnlocked releases the lock before the send; clean.
func (q *Queue) PushUnlocked(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.ch <- v
}

// WaitBlocked blocks interprocedurally: BlockOn's channel receive is a
// package away, visible only through its Blocking summary.
func (q *Queue) WaitBlocked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return floatutil.BlockOn(q.ch) // want: mutexio blocking call under q.mu
}

// PollHeld calls the select-with-default helper; polling never blocks,
// so holding the lock is fine.
func (q *Queue) PollHeld() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return floatutil.Poll(q.ch)
}

// SleepHeld parks the goroutine with the lock held, stalling every
// other Queue user for the duration.
func (q *Queue) SleepHeld() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want: mutexio blocking call under q.mu
	q.mu.Unlock()
}

// SleepBranch unlocks on the fast path before sleeping: the branch
// copy of the held set must not leak the outer lock window into it.
func (q *Queue) SleepBranch(fast bool) {
	q.mu.Lock()
	if fast {
		q.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	q.items = q.items[:0]
	q.mu.Unlock()
}
