// Package lib is a lint fixture for the locks and panics rules
// (unscoped rules that apply to any library package).
package lib

import "sync"

// Counter embeds a mutex; copying it breaks mutual exclusion.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Bump has a value receiver: every call copies the lock.
func (c Counter) Bump() { // want: locks value receiver
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// BumpPtr is the correct pointer-receiver form.
func (c *Counter) BumpPtr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Snapshot copies the lock through a by-value parameter.
func Snapshot(c Counter) int { // want: locks by-value param
	return c.n
}

// Guarded defers an acquire instead of a release.
func Guarded(mu *sync.Mutex) {
	defer mu.Lock() // want: locks defer Lock
}

// Explode panics in library code where an error return belongs.
func Explode(x int) int {
	if x < 0 {
		panic("negative input") // want: panics
	}
	return x
}

// MustPositive is a Must*-named wrapper: panicking is its documented
// purpose, so the rule exempts it.
func MustPositive(x int) int {
	if x < 0 {
		panic("negative input")
	}
	return x
}

// CheckedInvariant carries an audited escape hatch.
func CheckedInvariant(x int) int {
	if x < 0 {
		panic("negative input") //lint:allow panics fixture audited invariant
	}
	return x
}
