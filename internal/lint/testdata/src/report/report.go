// Package report is a lint fixture for the errcheck rule (scoped to
// output-owning packages by import-path base).
package report

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Render discards output errors in every way the rule catches.
func Render(w io.Writer, bw *bufio.Writer, file *os.File) {
	fmt.Fprintf(w, "header\n") // want: errcheck statement Fprintf
	bw.Flush()                 // want: errcheck statement Flush
	defer file.Close()         // want: errcheck defer Close
	go file.Sync()             // want: errcheck go Sync
	fmt.Fprintln(w, "footer")  //lint:allow errcheck fixture escape hatch
}

// RenderChecked handles or acknowledges every error.
func RenderChecked(w io.Writer, bw *bufio.Writer) error {
	if _, err := fmt.Fprintf(w, "header\n"); err != nil {
		return err
	}
	_ = bw.Flush()
	return nil
}

// BuildString writes into infallible destinations; exempt by contract.
func BuildString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "body")
	sb.WriteString("!")
	return sb.String()
}
