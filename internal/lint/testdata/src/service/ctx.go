package service

import (
	"context"
	"time"

	"positlab/internal/lint/testdata/src/floatutil"
)

// HandleDetached has a perfectly good ctx and hands the consumer a
// detached one: the callee never sees the request's cancellation.
func HandleDetached(ctx context.Context) error {
	return floatutil.WithCtx(context.Background()) // want: ctxprop detached context
}

// HandlePropagated threads its own ctx; clean.
func HandlePropagated(ctx context.Context) error {
	return floatutil.WithCtx(ctx)
}

// HandleDerivedDetached launders the detach through a With* chain: the
// timeout child of Background() is still detached from ctx.
func HandleDerivedDetached(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return floatutil.WithCtx(dctx) // want: ctxprop derived detached local
}

// HandleChildOK derives its child from the real ctx; clean.
func HandleChildOK(ctx context.Context) error {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return floatutil.WithCtx(cctx)
}

// HandleIgnoredParam passes Background to a callee whose summary says
// it never reads its ctx parameter — nothing is lost, so no finding.
func HandleIgnoredParam(ctx context.Context) int {
	return floatutil.NoCtx(context.Background(), 1)
}

// HandleAllowed is the audited detach pattern (compare the real
// server's drain deadline after its parent ctx is canceled).
func HandleAllowed(ctx context.Context) error {
	//lint:allow ctxprop fixture audit: deliberate detach
	return floatutil.WithCtx(context.Background())
}
