// Package service is a lint fixture for the errcheck rule's HTTP
// coverage: response writers fail too (client hangs up mid-body), and
// a discarded write error turns a truncated response into something
// that parses as success on retry caches.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Serve discards http.ResponseWriter errors in the ways the rule
// catches.
func Serve(w http.ResponseWriter) {
	w.Write([]byte(`{"status":"ok"}`))          // want: errcheck statement Write
	fmt.Fprintf(w, "count=%d\n", 3)             // want: errcheck statement Fprintf
	json.NewEncoder(w).Encode(map[string]int{}) // want: errcheck statement Encode
	w.Write([]byte("\n"))                       //lint:allow errcheck fixture escape hatch
}

// ServeChecked handles or acknowledges every write error.
func ServeChecked(w http.ResponseWriter) error {
	if _, err := w.Write([]byte("body")); err != nil {
		return err
	}
	// Acknowledged discard: the client disconnected; nothing to do.
	_, _ = fmt.Fprintf(w, "trailer\n")
	return nil
}
