// Package solvers is a lint fixture that mimics the real format-generic
// solver package (the rule scopes by import-path base). Lines marked
// `want:` in golden.txt must be flagged; everything else must stay
// clean.
package solvers

import (
	"math"

	"positlab/internal/arith"
)

// NormBad launders precision: the accumulation runs in the format, but
// the final square root is computed by math.Sqrt in float64.
func NormBad(f arith.Format, xs []arith.Num) float64 {
	s := f.Zero()
	for _, x := range xs {
		s = f.Add(s, f.Mul(x, x))
	}
	return math.Sqrt(f.ToFloat64(s)) // want: precision math.Sqrt
}

// RatioBad applies raw float64 division directly to ToFloat64 results.
func RatioBad(f arith.Format, a, b arith.Num) float64 {
	return f.ToFloat64(a) / f.ToFloat64(b) // want: precision raw / on ToFloat64
}

// NormGood dispatches the square root through the format.
func NormGood(f arith.Format, xs []arith.Num) float64 {
	s := f.Zero()
	for _, x := range xs {
		s = f.Add(s, f.Mul(x, x))
	}
	return f.ToFloat64(f.Sqrt(s))
}

// ClassifyGood uses an allowed classification helper; IsNaN is exact.
func ClassifyGood(f arith.Format, a arith.Num) bool {
	return math.IsNaN(f.ToFloat64(a))
}

// ReportAllowed carries an audited escape hatch.
func ReportAllowed(f arith.Format, a arith.Num) float64 {
	return math.Log10(f.ToFloat64(a)) //lint:allow precision audited reporting metric
}

// DotBad hand-inlines a "kernel" in raw float64: the loop never
// re-rounds into the format, so the result is a binary64 dot product no
// matter which format is under test.
func DotBad(f arith.Format, x, y []arith.Num) float64 {
	s := 0.0
	for i := range x {
		s += f.ToFloat64(x[i]) * f.ToFloat64(y[i]) // want: precision raw * on ToFloat64
	}
	return s
}

// DotGood gets kernel speed the sanctioned way: the slice kernel layer
// in arith owns the float64 value-domain intermediates and re-rounds
// after every operation, so scoped code just dispatches to it.
func DotGood(f arith.Format, x, y []arith.Num) float64 {
	return f.ToFloat64(arith.BulkOf(f).DotKernel(x, y))
}

// Float64Helper never touches a Format, so float64 math is its job.
func Float64Helper(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}
