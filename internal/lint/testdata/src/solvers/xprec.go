package solvers

import (
	"positlab/internal/arith"
	"positlab/internal/lint/testdata/src/floatutil"
)

// ResidualBad launders across the package boundary: the local code
// never calls math, but floatutil.Hyp's summary says both parameters
// are re-rounded in float64 — inside a format-generic function that is
// the same bug as calling math.Hypot directly.
func ResidualBad(f arith.Format, a, b arith.Num) float64 {
	return floatutil.Hyp(f.ToFloat64(a), f.ToFloat64(b)) // want: xprecision both args laundered by Hyp
}

// ScaledBad reaches a laundering helper through a local: the taint
// survives the assignment.
func ScaledBad(f arith.Format, a arith.Num) float64 {
	v := f.ToFloat64(a)
	return floatutil.Scale(v, 2.0) // want: xprecision local v is ToFloat64-derived
}

// ClampGood passes a ToFloat64 result to a helper that only compares
// and forwards — no laundering summary, no finding.
func ClampGood(f arith.Format, a arith.Num) float64 {
	return floatutil.Clamp(f.ToFloat64(a), 0, 1)
}

// PlainArgsGood calls a laundering helper with values that never came
// out of a Format: float64 helpers doing float64 math is their job.
func PlainArgsGood(f arith.Format, x, y float64) float64 {
	_ = f
	return floatutil.Hyp(x, y)
}

// AllowedResidual carries an audited escape hatch for a reporting
// metric.
func AllowedResidual(f arith.Format, a, b arith.Num) float64 {
	return floatutil.Hyp(f.ToFloat64(a), f.ToFloat64(b)) //lint:allow xprecision audited reporting metric
}
