// Package floatutil is the lint fixture's shared helper package: the
// cross-package half of every interprocedural fixture. Nothing here is
// flagged directly (the package base is outside every rule scope) —
// what matters are the function summaries the fact engine derives and
// the findings they trigger at call sites in the scoped fixture
// packages (solvers, jobs, service).
package floatutil

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
)

// Hyp launders precision: float64 arithmetic plus a deny-listed math
// call. Its summary says "rounds parameters 0 and 1 in float64", which
// the xprecision rule surfaces at format-generic call sites.
func Hyp(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

// Scale launders through a plain binary float64 op — no math call
// needed for the taint to stick.
func Scale(x, k float64) float64 {
	return x * k
}

// Clamp only compares and forwards its argument: the value is never
// re-rounded, so passing a ToFloat64 result through it is exact and
// must NOT be flagged.
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FSync is sync evidence two calls deep: callers renaming after FSync
// satisfy the durability rule without touching (*os.File).Sync
// themselves.
func FSync(f *os.File) error {
	return f.Sync()
}

// DropWrites receives a writer and silently discards its write errors
// — the DropsWriterErr summary the durability rule's handoff facet
// reports at call sites that pass it a fallible writer.
func DropWrites(w io.Writer) {
	fmt.Fprintln(w, "header")
}

// WriteChecked is the honest twin: the error surfaces, so handing it a
// writer is clean.
func WriteChecked(w io.Writer) error {
	_, err := fmt.Fprintln(w, "header")
	return err
}

// BlockOn blocks on a channel receive; calling it with a mutex held is
// a mutexio finding even though the channel op is a package away.
func BlockOn(ch chan int) int {
	return <-ch
}

// Poll never blocks: the select has a default clause, so holding a
// lock across it is fine.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// WithCtx consumes its context (UsesCtx): handing it a detached
// context from a function that already has one is a ctxprop finding.
func WithCtx(ctx context.Context) error {
	return ctx.Err()
}

// NoCtx ignores its context parameter entirely, so callers may pass
// anything without dropping cancellation.
func NoCtx(_ context.Context, n int) int {
	return n + 1
}
