package lint

import (
	"go/ast"
	"go/types"
)

// maporderRule flags `range` over a map whose body does more than
// collect keys/values: Go randomizes map iteration order, so any call
// made inside such a loop (writing CSV/SVG/report output, registering,
// appending through a function, ...) makes output order differ between
// runs — and the experiment harness guarantees parallel runs stay
// byte-identical to serial ones. The sanctioned idiom is to collect
// the keys, sort them, and iterate the sorted slice; pure collection
// bodies (append, assignment, arithmetic) are therefore allowed.
type maporderRule struct{}

func (maporderRule) Name() string { return "maporder" }
func (maporderRule) Doc() string {
	return "forbid map iteration that feeds calls (writers, registries); collect keys and sort first"
}

func (maporderRule) Check(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if call := firstEffectCall(info, rs.Body); call != nil {
				callee := "a function"
				if fn := calleeFunc(info, call); fn != nil {
					callee = fn.FullName()
				}
				p.Reportf(rs.For, "map iteration order is randomized but this loop calls %s; collect the keys, sort, then iterate the sorted slice", callee)
			}
			return true
		})
	}
}

// firstEffectCall returns the first call in the body that is neither a
// builtin nor a type conversion — the point where randomized iteration
// order escapes into observable behavior.
func firstEffectCall(info *types.Info, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinOrConversion(info, call) {
			return true
		}
		found = call
		return false
	})
	return found
}
