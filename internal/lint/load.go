package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the path the package was loaded under. Rules scope
	// themselves by its last element, so fixture corpora can mimic real
	// packages ("fixture/solvers" is scoped like "positlab/internal/solvers").
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Base returns the last import-path element, the scoping key rules use.
func (p *Package) Base() string { return path.Base(p.ImportPath) }

// IsMain reports a main package.
func (p *Package) IsMain() bool { return p.Types != nil && p.Types.Name() == "main" }

// Loader parses and type-checks packages of one module from source,
// resolving in-module imports from the module tree and everything else
// (the standard library) through go/importer's source importer. It
// memoizes by import path, so a whole-repo load type-checks each
// package once.
type Loader struct {
	ModulePath string
	ModuleDir  string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at dir (its go.mod
// names the module path).
func NewLoader(dir string) (*Loader, error) {
	modPath, abs, err := moduleInfo(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  abs,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else falls through to the source importer.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if importPath == l.ModulePath || strings.HasPrefix(importPath, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
		pkg, err := l.LoadDir(importPath, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(importPath)
}

// LoadDir parses and type-checks the non-test Go files of dir under
// the given import path.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Parse the package's files in parallel: token.FileSet is safe for
	// concurrent use, and parsing is the load path's embarrassingly
	// parallel half (type-checking below stays sequential because the
	// importer recurses through this loader).
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadAll loads every package of the module tree (skipping testdata,
// hidden directories, and directories without non-test Go files) and
// returns them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(l.ModuleDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			if dir := filepath.Dir(p); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(importPath, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
