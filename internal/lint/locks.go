package lint

import (
	"go/ast"
	"go/types"
)

// locksRule enforces sync hygiene beyond go vet's copylocks: the
// runner's scheduler and registry share mutex-guarded state across
// worker goroutines, where a copied lock or a deferred acquire turns
// into silent loss of mutual exclusion.
//
// It flags (1) methods declared on a value receiver whose type
// contains a sync primitive — every call copies the lock, so two
// callers no longer exclude each other; (2) function parameters that
// pass a lock-containing type by value; and (3) `defer mu.Lock()`,
// which acquires at function exit (almost always a typo for Unlock or
// for an immediate Lock).
type locksRule struct{}

func (locksRule) Name() string { return "locks" }
func (locksRule) Doc() string {
	return "forbid by-value copies of lock-containing types (receivers, params) and deferred Lock calls"
}

func (locksRule) Check(p *Pass) {
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		name := funcDisplayName(fd)
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			rt := info.TypeOf(fd.Recv.List[0].Type)
			if _, isPtr := rt.(*types.Pointer); !isPtr && rt != nil {
				if lock, ok := containsLock(rt); ok {
					p.Reportf(fd.Recv.List[0].Pos(), "method %s has a value receiver containing %s: every call copies the lock; use a pointer receiver", name, lock)
				}
			}
		}
		for _, field := range fd.Type.Params.List {
			ft := info.TypeOf(field.Type)
			if ft == nil {
				continue
			}
			if _, isPtr := ft.(*types.Pointer); isPtr {
				continue
			}
			if lock, ok := containsLock(ft); ok {
				p.Reportf(field.Pos(), "parameter of %s passes %s by value, copying the lock; pass a pointer", name, lock)
			}
		}
	})
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			def, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(def.Call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			p.Reportf(def.Pos(), "defer %s.%s acquires the lock at function exit; did you mean an immediate %s or a deferred Unlock?", types.ExprString(sel.X), sel.Sel.Name, sel.Sel.Name)
			return true
		})
	}
}
