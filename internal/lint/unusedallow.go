package lint

import (
	"sort"
	"strings"
)

// unusedallowRule audits the escape hatches themselves: a
// //lint:allow directive that no longer suppresses any finding is
// stale — the code it excused was fixed or moved, and the comment now
// only misleads readers into thinking a finding exists. Stale allows
// are findings with a mechanical fix (-fix deletes the comment), so
// the audit trail stays exactly as large as the set of real audited
// sites.
//
// The audit is evidence-based, so it only judges what it can see: a
// rule name is checked only when that rule ran in this invocation, and
// `all` directives are checked only when the full suite ran. Running
// `positlint -rules unusedallow` alone therefore reports nothing.
type unusedallowRule struct{}

func (unusedallowRule) Name() string { return "unusedallow" }
func (unusedallowRule) Doc() string {
	return "flag //lint:allow directives that suppress no finding of the rules that ran (stale or unknown rule names)"
}

// Check is a no-op: the audit is driver-integrated (runPackage calls
// auditAllowComments after the other rules ran and suppression was
// recorded), because it needs the post-filter suppression bookkeeping
// no ordinary Pass carries.
func (unusedallowRule) Check(p *Pass) {}

// auditAllowComments inspects every allow directive of the package
// after the rule passes ran, reporting names that suppressed nothing.
func auditAllowComments(pkg *Package, rules []Rule, allows map[allowKey]*allowComment) []rawDiag {
	known := map[string]bool{}
	for _, r := range AllRules() {
		known[r.Name()] = true
	}
	enabled := map[string]bool{}
	enabledCount := 0
	for _, r := range rules {
		if _, ok := r.(unusedallowRule); ok {
			continue
		}
		enabled[r.Name()] = true
		enabledCount++
	}
	fullSuite := enabledCount == len(AllRules())-1

	keys := make([]allowKey, 0, len(allows))
	for k := range allows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})

	var out []rawDiag
	for _, k := range keys {
		ac := allows[k]
		var stale, unknown []string
		removable := true // every listed name judged and found dead
		for _, name := range ac.rules {
			switch {
			case name == "all":
				if !fullSuite {
					removable = false
				} else if !ac.used["all"] {
					stale = append(stale, name)
				} else {
					removable = false
				}
			case !known[name]:
				unknown = append(unknown, name)
			case !enabled[name]:
				removable = false // can't judge a rule that didn't run
			case !ac.used[name]:
				stale = append(stale, name)
			default:
				removable = false // genuinely suppressing
			}
		}
		if len(stale) == 0 && len(unknown) == 0 {
			continue
		}
		var parts []string
		if len(unknown) > 0 {
			parts = append(parts, "unknown rule(s) "+strings.Join(unknown, ", "))
		}
		if len(stale) > 0 {
			parts = append(parts, "rule(s) "+strings.Join(stale, ", ")+" suppressed no finding here")
		}
		d := rawDiag{
			rule: "unusedallow",
			pos:  pkg.Fset.Position(ac.pos),
			msg:  "stale //lint:allow: " + strings.Join(parts, "; ") + "; delete the directive or fix its rule list",
		}
		if removable {
			d.fix = &Fix{
				Path:  d.pos.Filename,
				Start: pkg.Fset.Position(ac.pos).Offset,
				End:   pkg.Fset.Position(ac.end).Offset,
				Text:  "",
			}
		}
		out = append(out, d)
	}
	return out
}
