package lint

import (
	"go/ast"
	"go/types"
)

// xprecisionRule is the interprocedural half of the precision rule:
// laundering hidden one call away. The intraprocedural rule catches
// math.Sqrt and raw arithmetic on ToFloat64 results *inside* a
// format-generic function; it cannot see
//
//	func hyp(a, b float64) float64 { return math.Sqrt(a*a + b*b) }
//	...
//	r := hyp(f.ToFloat64(x), f.ToFloat64(y)) // rounds in binary64!
//
// because hyp never mentions arith.Format and the caller performs no
// arithmetic of its own. The fact engine summarizes hyp as "params 0
// and 1 flow through rounded float64 operations into the result"
// (FuncFacts.Launder), and this rule flags any call in a
// format-generic function that feeds a Format.ToFloat64-derived value
// into such a parameter — whether the helper lives in the same
// package, another module package, or (via the deny list) math.
//
// Arguments recognized as ToFloat64-derived: a direct f.ToFloat64(x)
// call, or a local variable assigned from one. Calls directly into
// package math are left to the intraprocedural rule so each site is
// reported exactly once.
type xprecisionRule struct{}

func (xprecisionRule) Name() string { return "xprecision" }
func (xprecisionRule) Doc() string {
	return "forbid cross-function precision laundering: passing Format.ToFloat64-derived values to helpers that round them in float64"
}

func (xprecisionRule) Check(p *Pass) {
	if !scoped(p.Pkg, precisionScope...) || p.Facts == nil {
		return
	}
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		if !usesArithFormat(info, fd) {
			return
		}
		name := funcDisplayName(fd)
		derived := toFloat64Locals(info, fd)
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == "math" {
				return true
			}
			ff := p.Facts.ForCall(fn)
			if ff.Launder == 0 {
				return true
			}
			for i, arg := range call.Args {
				if i >= 64 {
					break
				}
				if ff.Launder&(1<<uint(i)) == 0 {
					continue
				}
				if isToFloat64Call(info, arg) || isDerivedIdent(info, arg, derived) {
					p.Reportf(arg.Pos(), "passing a Format.ToFloat64-derived value to %s, which rounds it in float64 (cross-function precision laundering inside format-generic %s); compute in the format and convert once at the end", fn.FullName(), name)
				}
			}
			return true
		})
	})
}

// toFloat64Locals collects local variables whose (only tracked)
// assignment is a direct Format.ToFloat64 call.
func toFloat64Locals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	derived := map[types.Object]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			if !isToFloat64Call(info, as.Rhs[i]) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj := info.ObjectOf(id); obj != nil {
					derived[obj] = true
				}
			}
		}
		return true
	})
	return derived
}

func isDerivedIdent(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && derived[info.ObjectOf(id)]
}
