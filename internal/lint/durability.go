package lint

import (
	"go/ast"
	"go/token"
)

// durabilityScope: the packages that own crash-durable state — the job
// journal/snapshot, the runner's result cache and runs.json, the
// filesystem seam itself, the arith table cache, and the shadow
// artifact writer — where the write-fsync-rename ordering is the whole
// correctness story.
var durabilityScope = []string{"jobs", "runner", "faultfs", "arith", "shadow"}

// durabilityRule enforces the atomic-replace protocol on durable
// files: a file that is renamed into its final place must have been
// fsynced first, otherwise the rename can land while the data is still
// in the page cache — after a crash the "atomically replaced" file is
// empty or torn, which is precisely the torn-artifact class the job
// journal exists to prevent.
//
// The check is interprocedural through the fact engine: a call to any
// helper that transitively reaches (*os.File).Sync counts as sync
// evidence, so `syncAndClose(f); os.Rename(tmp, final)` is clean even
// when the Sync lives two packages away. A second facet uses the
// writer-drop summaries: handing a durable writer to a helper that
// silently discards its write errors is the same bug entering through
// the side door, and is flagged at the call site (in all
// artifact-owning packages, the errcheck scope).
type durabilityRule struct{}

func (durabilityRule) Name() string { return "durability" }
func (durabilityRule) Doc() string {
	return "require fsync evidence before os.Rename in journal/cache code; forbid handing writers to error-dropping helpers; forbid blank-discarded Remove errors in cleanup paths"
}

func (durabilityRule) Check(p *Pass) {
	if p.Facts == nil {
		return
	}
	info := p.Pkg.Info
	if scoped(p.Pkg, durabilityScope...) {
		forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
			name := funcDisplayName(fd)
			var syncPositions, renamePositions []token.Pos
			walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				if isPkgFunc(fn, "os", "Rename") {
					renamePositions = append(renamePositions, call.Pos())
					return true
				}
				if p.Facts.ForCall(fn).Syncs {
					syncPositions = append(syncPositions, call.Pos())
				}
				return true
			})
			for _, rp := range renamePositions {
				synced := false
				for _, sp := range syncPositions {
					if sp < rp {
						synced = true
						break
					}
				}
				if !synced {
					p.Reportf(rp, "os.Rename in %s without a prior fsync: the rename can commit before the data reaches disk, leaving a torn file after a crash; call File.Sync (directly or via a syncing helper) before renaming", name)
				}
			}
		})
	}
	if scoped(p.Pkg, durabilityScope...) {
		checkBlankRemove(p)
	}
	if scoped(p.Pkg, errcheckScope...) {
		checkWriterHandoff(p)
	}
}

// checkBlankRemove flags `_ = X.Remove(...)` in durable packages. The
// errcheck rule accepts `_ =` as an acknowledged discard, but for
// Remove in a cleanup path the acknowledgment is still a bug: on a
// sick disk the temp files of failed atomic writes silently accrete
// until the volume fills, turning one transient fault into a permanent
// outage. Join the removal error into the returned error (the
// faultfs.WriteFileAtomic idiom) or count it.
func checkBlankRemove(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "Remove" || !returnsErrorLast(info, call) {
				return true
			}
			p.Reportf(as.Pos(), "cleanup discards the %s error: failed removals of temp files accrete silently on a sick disk; join the error into the return value or count it", fn.FullName())
			return true
		})
	}
}

// checkWriterHandoff flags calls that pass a writer-typed value to a
// function whose summary says it silently drops that writer's output
// errors.
func checkWriterHandoff(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !p.Facts.ForCall(fn).DropsWriterErr {
				return true
			}
			for _, arg := range call.Args {
				// Infallible sinks (strings.Builder, bytes.Buffer) make
				// the dropped error a non-event by contract.
				if t := info.TypeOf(arg); isWriterish(t) && !isInfallibleBuilder(t) {
					p.Reportf(call.Pos(), "%s silently discards write errors on the writer passed here; a failed write would look like a complete artifact — have the helper return the error", fn.FullName())
					break
				}
			}
			return true
		})
	}
}
