// Package lint implements positlint, the repo-specific static-analysis
// suite. The paper's Posit-vs-IEEE comparison is only meaningful when
// every experiment computation flows through the format-dispatched
// arithmetic of internal/arith and when parallel runs stay
// byte-identical to serial ones; positlint machine-checks those
// invariants (plus lock hygiene, error discipline on output paths,
// panic discipline, durability ordering, context propagation, and
// experiment-registry consistency) on every `make verify`.
//
// The driver is built only on the standard library: go/parser and
// go/types with a source importer, honoring the module's
// zero-dependency constraint. Rules operate per package with full type
// information and report position-accurate diagnostics. On top of the
// per-package passes sits an interprocedural layer (facts.go): function
// summaries propagated bottom-up in package dependency order, with a
// persistent on-disk fact cache (factcache.go) so warm re-runs skip
// unchanged packages entirely.
//
// A finding at an audited site is silenced with an escape-hatch
// comment on the flagged line or the line above it:
//
//	//lint:allow <rule>[,<rule>...] [reason]
//	//lint:allow all [reason]
//
// The reason is free text; writing one is strongly encouraged so the
// audit trail lives next to the code. The unusedallow rule keeps the
// escape hatches honest: an allow that no longer suppresses anything
// is itself a finding (with an automatic fix under -fix).
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// diagnosticsSchema names the versioned -json output layout.
const diagnosticsSchema = "positlint-diagnostics/v1"

// Diagnostic is one finding, positioned at a source location.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // slash-separated, relative to the module root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Fixable reports that the diagnostic carries a mechanical
	// suggested fix that `positlint -fix` can apply.
	Fixable bool `json:"fixable"`
	// Fix is the suggested edit (nil when Fixable is false). It is
	// serialized into the fact cache but not into -json output.
	Fix *Fix `json:"-"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one analysis pass. Check is called once per loaded package
// and reports findings through the Pass.
type Rule interface {
	Name() string
	// Doc is a one-line description shown by `positlint -list` and the
	// docs.
	Doc() string
	Check(p *Pass)
}

// Pass hands one package to one rule.
type Pass struct {
	Pkg *Package
	// Facts is the interprocedural summary table, populated for the
	// analyzed set (and, on cached runs, for every module package).
	// Legacy rules ignore it; the cross-function rules consult it.
	Facts *Facts
	rule  string
	out   *[]rawDiag
}

type rawDiag struct {
	rule string
	pos  token.Position // absolute filename
	msg  string
	fix  *Fix // optional suggested edit, offsets into pos.Filename
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, rawDiag{
		rule: p.rule,
		pos:  p.Pkg.Fset.Position(pos),
		msg:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a suggested edit that
// replaces the source bytes [start, end) with text.
func (p *Pass) ReportFix(pos token.Pos, start, end token.Pos, text, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.out = append(*p.out, rawDiag{
		rule: p.rule,
		pos:  position,
		msg:  fmt.Sprintf(format, args...),
		fix: &Fix{
			Path:  position.Filename,
			Start: p.Pkg.Fset.Position(start).Offset,
			End:   p.Pkg.Fset.Position(end).Offset,
			Text:  text,
		},
	})
}

// AllRules returns the full suite in a fixed order: the six original
// per-package rules, then the interprocedural rules, then the allow
// audit.
func AllRules() []Rule {
	return []Rule{
		precisionRule{},
		maporderRule{},
		locksRule{},
		errcheckRule{},
		panicsRule{},
		registryRule{},
		xprecisionRule{},
		durabilityRule{},
		ctxpropRule{},
		mutexioRule{},
		unusedallowRule{},
	}
}

// LegacyRuleNames lists the original intraprocedural suite (useful for
// differential testing of the engine).
func LegacyRuleNames() []string {
	return []string{"precision", "maporder", "locks", "errcheck", "panics", "registry"}
}

// RuleNames returns the names of the full suite in order.
func RuleNames() []string {
	var names []string
	for _, r := range AllRules() {
		names = append(names, r.Name())
	}
	return names
}

// SelectRules resolves a comma-separated rule list ("all" or names,
// optionally prefixed with '-' to drop a rule from the set).
func SelectRules(spec string) ([]Rule, error) {
	all := AllRules()
	byName := map[string]Rule{}
	for _, r := range all {
		byName[r.Name()] = r
	}
	enabled := map[string]bool{}
	sawPositive := false
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		neg := strings.HasPrefix(tok, "-")
		name := strings.TrimPrefix(tok, "-")
		if name == "all" {
			for n := range byName {
				enabled[n] = !neg
			}
			if !neg {
				sawPositive = true
			}
			continue
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
		}
		enabled[name] = !neg
		if !neg {
			sawPositive = true
		}
	}
	if !sawPositive {
		// Pure-negative spec ("-maporder") means "all but these".
		for n := range byName {
			if _, set := enabled[n]; !set {
				enabled[n] = true
			}
		}
	}
	var out []Rule
	for _, r := range all {
		if enabled[r.Name()] {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no rules selected from %q", spec)
	}
	return out, nil
}

// Options tunes a Run.
type Options struct {
	// DisableFacts skips the interprocedural summary computation,
	// reducing every rule to its purely per-package behavior. The
	// legacy six rules must produce identical output either way (the
	// differential tests assert it); the cross-function rules go
	// quiet. For benchmarking and testing only.
	DisableFacts bool
}

// Run checks every package with every rule, filters findings through
// //lint:allow comments, and returns them sorted by position. File
// paths are reported relative to root. Interprocedural facts are
// computed over the given set in dependency order before any rule
// runs.
func Run(root string, pkgs []*Package, rules []Rule) []Diagnostic {
	return RunWith(root, pkgs, rules, Options{})
}

// RunWith is Run with explicit Options.
func RunWith(root string, pkgs []*Package, rules []Rule, opts Options) []Diagnostic {
	facts := NewFacts()
	ordered := topoPackages(pkgs)
	if !opts.DisableFacts {
		for _, pkg := range ordered {
			ComputeFacts(pkg, facts)
		}
	}
	var diags []Diagnostic
	for _, pkg := range ordered {
		diags = append(diags, runPackage(root, pkg, rules, facts)...)
	}
	SortDiagnostics(diags)
	return diags
}

// runPackage runs the rule set over one package: rule passes, allow
// filtering, and the allow audit. Returned diagnostics are rebased
// relative to root and unsorted.
func runPackage(root string, pkg *Package, rules []Rule, facts *Facts) []Diagnostic {
	allows := collectAllows(pkg)
	var raw []rawDiag
	auditAllows := false
	for _, r := range rules {
		if _, ok := r.(unusedallowRule); ok {
			auditAllows = true
			continue // driver-integrated; see below
		}
		r.Check(&Pass{Pkg: pkg, Facts: facts, rule: r.Name(), out: &raw})
	}
	kept := filterAllowed(raw, allows)
	if auditAllows {
		kept = append(kept, auditAllowComments(pkg, rules, allows)...)
	}
	diags := make([]Diagnostic, 0, len(kept))
	for _, d := range kept {
		file := d.pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fix := d.fix
		if fix != nil {
			f := *fix
			if rel, err := filepath.Rel(root, f.Path); err == nil && !strings.HasPrefix(rel, "..") {
				f.Path = filepath.ToSlash(rel)
			}
			fix = &f
		}
		diags = append(diags, Diagnostic{
			Rule:    d.rule,
			File:    filepath.ToSlash(file),
			Line:    d.pos.Line,
			Col:     d.pos.Column,
			Message: d.msg,
			Fixable: fix != nil,
			Fix:     fix,
		})
	}
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column, rule, and
// message — the documented stable order of every output mode.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// jsonReport is the versioned envelope of -json output.
type jsonReport struct {
	Schema      string       `json:"schema"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// JSON renders diagnostics in the documented machine-readable form: a
// versioned envelope holding the sorted diagnostic list (never null),
// each entry carrying its rule id and fix availability.
func JSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(jsonReport{Schema: diagnosticsSchema, Diagnostics: diags}, "", "  ")
}

// allowComment is one //lint:allow directive: where it is, which rules
// it names, and which of those names actually suppressed a finding
// during this run.
type allowComment struct {
	file  string
	line  int
	pos   token.Pos
	end   token.Pos
	rules []string
	used  map[string]bool
}

// allowKey identifies one line of one file.
type allowKey struct {
	file string
	line int
}

var allowRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_,-]+)(?:\s|$)`)

// collectAllows finds every allow directive in the package, indexed by
// file:line for suppression lookup.
func collectAllows(pkg *Package) map[allowKey]*allowComment {
	allows := map[allowKey]*allowComment{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := allowKey{pos.Filename, pos.Line}
				ac := allows[key]
				if ac == nil {
					ac = &allowComment{
						file: pos.Filename, line: pos.Line,
						pos: c.Pos(), end: c.End(),
						used: map[string]bool{},
					}
					allows[key] = ac
				}
				for _, name := range strings.Split(m[1], ",") {
					ac.rules = append(ac.rules, strings.TrimSpace(name))
				}
			}
		}
	}
	return allows
}

// filterAllowed drops diagnostics that carry an allow comment on their
// own line or the line directly above, recording which rule names did
// the suppressing.
func filterAllowed(raw []rawDiag, allows map[allowKey]*allowComment) []rawDiag {
	if len(allows) == 0 {
		return raw
	}
	kept := raw[:0]
	for _, d := range raw {
		if allowedAt(allows, d.pos.Filename, d.pos.Line, d.rule) ||
			allowedAt(allows, d.pos.Filename, d.pos.Line-1, d.rule) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func allowedAt(allows map[allowKey]*allowComment, file string, line int, rule string) bool {
	ac := allows[allowKey{file, line}]
	if ac == nil {
		return false
	}
	for _, name := range ac.rules {
		if name == rule || name == "all" {
			ac.used[name] = true
			return true
		}
	}
	return false
}

// forEachFunc visits every function declaration with a body in the
// package, handing rules a uniform entry point.
func forEachFunc(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
