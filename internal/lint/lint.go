// Package lint implements positlint, the repo-specific static-analysis
// suite. The paper's Posit-vs-IEEE comparison is only meaningful when
// every experiment computation flows through the format-dispatched
// arithmetic of internal/arith and when parallel runs stay
// byte-identical to serial ones; positlint machine-checks those
// invariants (plus lock hygiene, error discipline on output paths,
// panic discipline, and experiment-registry consistency) on every
// `make verify`.
//
// The driver is built only on the standard library: go/parser and
// go/types with a source importer, honoring the module's
// zero-dependency constraint. Rules operate per package with full type
// information and report position-accurate diagnostics.
//
// A finding at an audited site is silenced with an escape-hatch
// comment on the flagged line or the line above it:
//
//	//lint:allow <rule>[,<rule>...] [reason]
//	//lint:allow all [reason]
//
// The reason is free text; writing one is strongly encouraged so the
// audit trail lives next to the code.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a source location.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // slash-separated, relative to the module root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one analysis pass. Check is called once per loaded package
// and reports findings through the Pass.
type Rule interface {
	Name() string
	// Doc is a one-line description shown by `positlint -list` and the
	// docs.
	Doc() string
	Check(p *Pass)
}

// Pass hands one package to one rule.
type Pass struct {
	Pkg  *Package
	rule string
	out  *[]rawDiag
}

type rawDiag struct {
	rule string
	pos  token.Position // absolute filename
	msg  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, rawDiag{
		rule: p.rule,
		pos:  p.Pkg.Fset.Position(pos),
		msg:  fmt.Sprintf(format, args...),
	})
}

// AllRules returns the full suite in a fixed order.
func AllRules() []Rule {
	return []Rule{
		precisionRule{},
		maporderRule{},
		locksRule{},
		errcheckRule{},
		panicsRule{},
		registryRule{},
	}
}

// RuleNames returns the names of the full suite in order.
func RuleNames() []string {
	var names []string
	for _, r := range AllRules() {
		names = append(names, r.Name())
	}
	return names
}

// SelectRules resolves a comma-separated rule list ("all" or names,
// optionally prefixed with '-' to drop a rule from the set).
func SelectRules(spec string) ([]Rule, error) {
	all := AllRules()
	byName := map[string]Rule{}
	for _, r := range all {
		byName[r.Name()] = r
	}
	enabled := map[string]bool{}
	sawPositive := false
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		neg := strings.HasPrefix(tok, "-")
		name := strings.TrimPrefix(tok, "-")
		if name == "all" {
			for n := range byName {
				enabled[n] = !neg
			}
			if !neg {
				sawPositive = true
			}
			continue
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
		}
		enabled[name] = !neg
		if !neg {
			sawPositive = true
		}
	}
	if !sawPositive {
		// Pure-negative spec ("-maporder") means "all but these".
		for n := range byName {
			if _, set := enabled[n]; !set {
				enabled[n] = true
			}
		}
	}
	var out []Rule
	for _, r := range all {
		if enabled[r.Name()] {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no rules selected from %q", spec)
	}
	return out, nil
}

// Run checks every package with every rule, filters findings through
// //lint:allow comments, and returns them sorted by position. File
// paths are reported relative to root.
func Run(root string, pkgs []*Package, rules []Rule) []Diagnostic {
	var raw []rawDiag
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		start := len(raw)
		for _, r := range rules {
			r.Check(&Pass{Pkg: pkg, rule: r.Name(), out: &raw})
		}
		raw = filterAllowed(raw, start, allows)
	}
	diags := make([]Diagnostic, 0, len(raw))
	for _, d := range raw {
		file := d.pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		diags = append(diags, Diagnostic{
			Rule:    d.rule,
			File:    filepath.ToSlash(file),
			Line:    d.pos.Line,
			Col:     d.pos.Column,
			Message: d.msg,
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags
}

// JSON renders diagnostics as a JSON array (never null, for stable
// tooling).
func JSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}

// allowKey identifies one line of one file.
type allowKey struct {
	file string
	line int
}

var allowRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_,-]+)(?:\s|$)`)

// collectAllows maps file:line to the set of rule names allowed there.
func collectAllows(pkg *Package) map[allowKey]map[string]bool {
	allows := map[allowKey]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := allowKey{pos.Filename, pos.Line}
				set := allows[key]
				if set == nil {
					set = map[string]bool{}
					allows[key] = set
				}
				for _, name := range strings.Split(m[1], ",") {
					set[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return allows
}

// filterAllowed drops diagnostics (from index start on) that carry an
// allow comment on their own line or the line directly above.
func filterAllowed(raw []rawDiag, start int, allows map[allowKey]map[string]bool) []rawDiag {
	if len(allows) == 0 {
		return raw
	}
	kept := raw[:start]
	for _, d := range raw[start:] {
		if allowedAt(allows, d.pos.Filename, d.pos.Line, d.rule) ||
			allowedAt(allows, d.pos.Filename, d.pos.Line-1, d.rule) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func allowedAt(allows map[allowKey]map[string]bool, file string, line int, rule string) bool {
	set := allows[allowKey{file, line}]
	return set != nil && (set[rule] || set["all"])
}

// forEachFunc visits every function declaration with a body in the
// package, handing rules a uniform entry point.
func forEachFunc(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
