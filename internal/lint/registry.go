package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
)

// registryRule checks experiment-registry consistency: every
// runner.Register(runner.Spec{...}) call in a package declares Deps
// that are themselves registered by that package, IDs are unique, and
// no spec depends on itself. A missing dep only surfaces at run time
// as a scheduler error ("unknown dependency"), long after the
// registration bug was written; this rule moves it to `make verify`.
//
// Spec construction through a local helper is resolved one level deep
// (the table2/table3 idiom: Register(irSpec("table2", ...)) where
// irSpec returns a runner.Spec literal with ID bound to its
// parameter). If any Register call's ID cannot be resolved
// statically, missing-dep checking is skipped for the package —
// duplicate and self-dependency checks still run on what is known.
type registryRule struct{}

func (registryRule) Name() string { return "registry" }
func (registryRule) Doc() string {
	return "every runner.Register dep must exist in the package's registrations; IDs unique, no self-deps"
}

// regDep is one declared dependency with the position to blame.
type regDep struct {
	name string
	pos  token.Pos
}

// regSpec is one statically resolved registration.
type regSpec struct {
	id   string
	pos  token.Pos
	deps []regDep
}

func (registryRule) Check(p *Pass) {
	info := p.Pkg.Info
	helpers := collectFuncBodies(p.Pkg)

	var specs []regSpec
	unresolved := 0
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "Register" || fn.Pkg() == nil ||
				path.Base(fn.Pkg().Path()) != "runner" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			spec, ok := resolveSpec(info, helpers, call.Args[0])
			if !ok {
				unresolved++
				return true
			}
			spec.pos = call.Pos()
			specs = append(specs, spec)
			return true
		})
	}
	if len(specs) == 0 {
		return
	}

	ids := map[string]bool{}
	for _, s := range specs {
		if ids[s.id] {
			p.Reportf(s.pos, "duplicate experiment registration %q", s.id)
			continue
		}
		ids[s.id] = true
	}
	for _, s := range specs {
		for _, d := range s.deps {
			pos := d.pos
			if pos == token.NoPos {
				pos = s.pos
			}
			if d.name == s.id {
				p.Reportf(pos, "experiment %q depends on itself", s.id)
				continue
			}
			if unresolved == 0 && !ids[d.name] {
				p.Reportf(pos, "experiment %q depends on %q, which this package never registers", s.id, d.name)
			}
		}
	}
}

// isRunnerSpec matches the runner package's Spec type.
func isRunnerSpec(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Spec" && path.Base(named.Obj().Pkg().Path()) == "runner"
}

// collectFuncBodies indexes package functions (declarations and
// function-literal assignments) by their object, for one-level helper
// resolution.
func collectFuncBodies(pkg *Package) map[types.Object]*funcBody {
	out := map[types.Object]*funcBody{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if obj := pkg.Info.Defs[d.Name]; obj != nil && d.Body != nil {
					out[obj] = &funcBody{params: d.Type.Params, body: d.Body}
				}
			case *ast.AssignStmt:
				for i, rhs := range d.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(d.Lhs) {
						continue
					}
					if id, ok := d.Lhs[i].(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							out[obj] = &funcBody{params: lit.Type.Params, body: lit.Body}
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range d.Values {
					lit, ok := v.(*ast.FuncLit)
					if !ok || i >= len(d.Names) {
						continue
					}
					if obj := pkg.Info.Defs[d.Names[i]]; obj != nil {
						out[obj] = &funcBody{params: lit.Type.Params, body: lit.Body}
					}
				}
			}
			return true
		})
	}
	return out
}

type funcBody struct {
	params *ast.FieldList
	body   *ast.BlockStmt
}

// resolveSpec statically evaluates the ID and Deps of a Register
// argument: a runner.Spec composite literal, or a call to a local
// helper returning one.
func resolveSpec(info *types.Info, helpers map[types.Object]*funcBody, arg ast.Expr) (regSpec, bool) {
	arg = ast.Unparen(arg)
	if lit, ok := arg.(*ast.CompositeLit); ok && isRunnerSpec(info.TypeOf(lit)) {
		return specFromLit(info, lit, nil)
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return regSpec{}, false
	}
	var calleeID *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		calleeID = fun
	case *ast.SelectorExpr:
		calleeID = fun.Sel
	default:
		return regSpec{}, false
	}
	obj := info.ObjectOf(calleeID)
	fb := helpers[obj]
	if fb == nil {
		return regSpec{}, false
	}
	// Bind parameter names to the literal arguments of this call.
	binding := map[string]ast.Expr{}
	i := 0
	for _, field := range fb.params.List {
		for _, name := range field.Names {
			if i < len(call.Args) {
				binding[name.Name] = call.Args[i]
			}
			i++
		}
	}
	var spec regSpec
	found := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		lit, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit)
		if !ok || !isRunnerSpec(info.TypeOf(lit)) {
			return true
		}
		if s, ok := specFromLit(info, lit, binding); ok {
			spec = s
			found = true
		}
		return !found
	})
	return spec, found
}

// specFromLit extracts ID and Deps from a Spec composite literal,
// substituting identifiers through binding (helper params to call
// args).
func specFromLit(info *types.Info, lit *ast.CompositeLit, binding map[string]ast.Expr) (regSpec, bool) {
	var spec regSpec
	idOK := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return regSpec{}, false // positional Spec literal: not used in this repo
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "ID":
			if s, ok := stringConst(info, kv.Value, binding); ok {
				spec.id, idOK = s, true
			}
		case "Deps":
			depsLit, ok := ast.Unparen(kv.Value).(*ast.CompositeLit)
			if !ok {
				return regSpec{}, false
			}
			for _, d := range depsLit.Elts {
				s, ok := stringConst(info, d, binding)
				if !ok {
					return regSpec{}, false
				}
				pos := d.Pos()
				if _, isLit := ast.Unparen(d).(*ast.BasicLit); !isLit {
					pos = token.NoPos // substituted: blame the Register call
				}
				spec.deps = append(spec.deps, regDep{name: s, pos: pos})
			}
		}
	}
	return spec, idOK
}

// stringConst evaluates a string literal, a constant, or a
// binding-substituted identifier.
func stringConst(info *types.Info, e ast.Expr, binding map[string]ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	if id, ok := e.(*ast.Ident); ok && binding != nil {
		if sub, ok := binding[id.Name]; ok {
			return stringConst(info, sub, nil)
		}
	}
	return "", false
}
