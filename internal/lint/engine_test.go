package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"positlab/internal/lint"
)

// TestDifferentialLegacyRules pins the engine's compatibility contract:
// the original six intraprocedural rules must produce byte-identical
// diagnostics whether or not the interprocedural fact layer runs. The
// new rules go quiet without facts; the old ones must not notice.
func TestDifferentialLegacyRules(t *testing.T) {
	root := moduleRoot(t)
	legacy, err := lint.SelectRules(strings.Join(lint.LegacyRuleNames(), ","))
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, pkgs []*lint.Package) {
		withFacts := lint.Run(root, pkgs, legacy)
		withoutFacts := lint.RunWith(root, pkgs, legacy, lint.Options{DisableFacts: true})
		if !reflect.DeepEqual(withFacts, withoutFacts) {
			t.Errorf("legacy rules diverge with facts enabled:\nwith:    %v\nwithout: %v", withFacts, withoutFacts)
		}
	}

	t.Run("fixtures", func(t *testing.T) {
		check(t, fixturePackages(t, root))
	})
	t.Run("repo", func(t *testing.T) {
		if testing.Short() {
			t.Skip("full-repo type check")
		}
		loader, err := lint.NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		check(t, pkgs)
	})
}

// TestFactSummaries asserts the per-function summaries the engine
// derives for the floatutil fixture helpers — the ground truth every
// interprocedural rule builds on.
func TestFactSummaries(t *testing.T) {
	root := moduleRoot(t)
	pkgs := fixturePackages(t, root)
	facts := lint.NewFacts()
	for _, pkg := range pkgs {
		lint.ComputeFacts(pkg, facts)
	}
	const fu = "positlab/internal/lint/testdata/src/floatutil"
	exported := facts.Export(fu)
	want := map[string]lint.FuncFacts{
		fu + ".Hyp":          {Launder: 0b11},
		fu + ".Scale":        {Launder: 0b11},
		fu + ".Clamp":        {}, // analyzed, provably boring
		fu + ".FSync":        {Syncs: true},
		fu + ".DropWrites":   {DropsWriterErr: true},
		fu + ".WriteChecked": {},
		fu + ".BlockOn":      {Blocking: true},
		fu + ".Poll":         {}, // select with default: non-blocking
		fu + ".WithCtx":      {UsesCtx: true},
		fu + ".NoCtx":        {}, // ignores its ctx parameter
	}
	for name, w := range want {
		got, ok := exported[name]
		if !ok {
			t.Errorf("%s: no fact entry (zero facts must still be recorded)", name)
			continue
		}
		if got != w {
			t.Errorf("%s: facts = %+v, want %+v", name, got, w)
		}
	}
}

// writeTempModule lays out a small three-package module:
//
//	jobs   (leaf)   — WriteSync: write+fsync helper
//	runner (depends on jobs) — SaveAtomic: WriteSync then os.Rename
//	util   (independent)     — carries a stale //lint:allow
func writeTempModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"jobs/jobs.go": `package jobs

import "os"

// WriteSync writes data and fsyncs — callers renaming after it have
// durability evidence.
func WriteSync(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}
`,
		"runner/runner.go": `package runner

import (
	"os"

	"tmpmod/jobs"
)

// SaveAtomic relies on jobs.WriteSync for its fsync.
func SaveAtomic(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := jobs.WriteSync(f, data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}
`,
		"util/util.go": `package util

// Pad is unrelated to jobs and runner.
func Pad(n int) int {
	m := n + 1 //lint:allow maporder stale on purpose
	return m
}
`,
	}
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestFactCacheInvalidation drives the cache through its life cycle:
// cold run populates, identical warm run is all hits with identical
// diagnostics, and editing a leaf package re-analyzes exactly the leaf
// and its dependents — observable both in the stats and in a new
// interprocedural finding that only a re-analysis could produce.
func TestFactCacheInvalidation(t *testing.T) {
	root := writeTempModule(t)
	cache := filepath.Join(root, ".positlint-cache")
	rules := lint.AllRules()

	cold, err := lint.RunRepo(root, cache, rules)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheHits != 0 || cold.Stats.CacheMisses != 3 {
		t.Fatalf("cold stats = %+v, want 0 hits / 3 misses", cold.Stats)
	}
	// The only cold finding: util's stale allow.
	if len(cold.Diags) != 1 || cold.Diags[0].Rule != "unusedallow" {
		t.Fatalf("cold diags = %v, want one unusedallow finding", cold.Diags)
	}

	warm, err := lint.RunRepo(root, cache, rules)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != 3 || warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm stats = %+v, want 3 hits / 0 misses", warm.Stats)
	}
	if !reflect.DeepEqual(stripFixes(cold.Diags), stripFixes(warm.Diags)) {
		t.Fatalf("warm diags diverge from cold:\ncold: %v\nwarm: %v", cold.Diags, warm.Diags)
	}

	// Edit the leaf: WriteSync stops syncing. The leaf AND its
	// dependent must re-analyze (util stays cached), and runner's
	// rename loses its interprocedural fsync evidence.
	leaf := filepath.Join(root, "jobs", "jobs.go")
	src, err := os.ReadFile(leaf)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(src), "return f.Sync()", "return nil", 1)
	if edited == string(src) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(leaf, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	dirty, err := lint.RunRepo(root, cache, rules)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Stats.CacheHits != 1 || dirty.Stats.CacheMisses != 2 {
		t.Fatalf("dirty stats = %+v, want 1 hit (util) / 2 misses (jobs, runner)", dirty.Stats)
	}
	var foundDurability bool
	for _, d := range dirty.Diags {
		if d.Rule == "durability" && strings.Contains(d.File, "runner") {
			foundDurability = true
		}
	}
	if !foundDurability {
		t.Fatalf("dependent re-analysis missed the new durability finding: %v", dirty.Diags)
	}
}

// stripFixes normalizes diagnostics for equality checks (the Fix
// pointer differs by identity between runs).
func stripFixes(diags []lint.Diagnostic) []lint.Diagnostic {
	out := make([]lint.Diagnostic, len(diags))
	for i, d := range diags {
		d.Fix = nil
		out[i] = d
	}
	return out
}

// TestWarmRunIsFaster pins the acceptance criterion: a fully-warm
// fact-cached analysis of the real repository must be at least 2x
// faster than the cold run, because it skips parsing bodies and
// type-checking entirely.
func TestWarmRunIsFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo type check")
	}
	root := moduleRoot(t)
	cache := t.TempDir()
	rules := lint.AllRules()

	start := time.Now()
	cold, err := lint.RunRepo(root, cache, rules)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	if cold.Stats.CacheHits != 0 {
		t.Fatalf("cold run hit the cache: %+v", cold.Stats)
	}

	start = time.Now()
	warm, err := lint.RunRepo(root, cache, rules)
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(start)
	if warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed the cache: %+v", warm.Stats)
	}
	if !reflect.DeepEqual(stripFixes(cold.Diags), stripFixes(warm.Diags)) {
		t.Fatalf("warm diags diverge from cold")
	}
	if warmDur*2 > coldDur {
		t.Errorf("warm run not >=2x faster: cold=%v warm=%v", coldDur, warmDur)
	}
	t.Logf("cold=%v warm=%v (%.1fx)", coldDur, warmDur, float64(coldDur)/float64(warmDur))
}

// TestApplyFixes drives -fix end to end on a throwaway module: an
// errcheck statement discard gains its `_, _ =` acknowledgment, the
// stale allow comment is deleted, and a re-run comes back clean.
func TestApplyFixes(t *testing.T) {
	root := writeTempModule(t)
	// Add a report package with a fixable errcheck finding.
	reportSrc := `package report

import (
	"fmt"
	"os"
)

// Render drops the Fprintf error.
func Render(f *os.File) {
	fmt.Fprintf(f, "header\n")
}
`
	if err := os.MkdirAll(filepath.Join(root, "report"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "report", "report.go"), []byte(reportSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := lint.RunRepo(root, "", lint.AllRules())
	if err != nil {
		t.Fatal(err)
	}
	if lint.FixableCount(res.Diags) != 2 {
		t.Fatalf("want 2 fixable findings (errcheck + unusedallow), got %d in %v", lint.FixableCount(res.Diags), res.Diags)
	}
	applied, files, err := lint.ApplyFixes(root, res.Diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 || len(files) != 2 {
		t.Fatalf("applied=%d files=%v", applied, files)
	}

	fixed, err := os.ReadFile(filepath.Join(root, "report", "report.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), `_, _ = fmt.Fprintf(f, "header\n")`) {
		t.Errorf("errcheck fix not applied:\n%s", fixed)
	}
	utilFixed, err := os.ReadFile(filepath.Join(root, "util", "util.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(utilFixed), "lint:allow") {
		t.Errorf("stale allow not deleted:\n%s", utilFixed)
	}

	rerun, err := lint.RunRepo(root, "", lint.AllRules())
	if err != nil {
		t.Fatal(err)
	}
	if len(rerun.Diags) != 0 {
		t.Errorf("tree not clean after fixes: %v", rerun.Diags)
	}
}

// TestSARIFOutput checks the SARIF 2.1.0 rendering: version, driver
// rule metadata, result locations, and determinism.
func TestSARIFOutput(t *testing.T) {
	rules := lint.AllRules()
	diags := []lint.Diagnostic{
		{Rule: "durability", File: "internal/jobs/journal.go", Line: 10, Col: 3, Message: "m1"},
		{Rule: "precision", File: "internal/solvers/cg.go", Line: 20, Col: 5, Message: "m2"},
	}
	data, err := lint.SARIF(diags, rules)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "positlint" || len(run.Tool.Driver.Rules) != len(rules) {
		t.Errorf("driver %q with %d rules", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 || run.Results[0].RuleID != "durability" {
		t.Fatalf("results: %+v", run.Results)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/jobs/journal.go" || loc.Region.StartLine != 10 {
		t.Errorf("location: %+v", loc)
	}
	again, err := lint.SARIF(diags, rules)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("SARIF output is not deterministic")
	}
}

// TestBaselineRoundTrip covers -write-baseline / -baseline semantics:
// matching on (rule, file, message) but not line, schema validation,
// and exact suppression accounting.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []lint.Diagnostic{
		{Rule: "errcheck", File: "a.go", Line: 3, Col: 1, Message: "dropped"},
		{Rule: "mutexio", File: "b.go", Line: 9, Col: 2, Message: "held"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := lint.WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	baseline, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// The same finding on a different line still matches.
	moved := []lint.Diagnostic{
		{Rule: "errcheck", File: "a.go", Line: 30, Col: 7, Message: "dropped"},
		{Rule: "errcheck", File: "a.go", Line: 31, Col: 7, Message: "new finding"},
	}
	kept, suppressed := lint.FilterBaseline(moved, baseline)
	if suppressed != 1 || len(kept) != 1 || kept[0].Message != "new finding" {
		t.Fatalf("kept=%v suppressed=%d", kept, suppressed)
	}
	// A wrong-schema file is rejected, not silently tolerated.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(bad); err == nil {
		t.Error("wrong-schema baseline accepted")
	}
}

// TestGoldenJSON pins the machine-readable envelope byte-for-byte over
// the fixture corpus (regenerate with -update).
func TestGoldenJSON(t *testing.T) {
	root := moduleRoot(t)
	pkgs := fixturePackages(t, root)
	diags := lint.Run(root, pkgs, lint.AllRules())
	data, err := lint.JSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data) + "\n"
	goldenPath := filepath.Join(root, "internal", "lint", "testdata", "golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(wantBytes) {
		t.Errorf("JSON envelope diverges from golden.json\n--- got ---\n%s--- want ---\n%s", got, wantBytes)
	}
}
