package lint

import "encoding/json"

// sarif.go renders diagnostics as SARIF 2.1.0, the interchange format
// GitHub code scanning (and most CI annotation tooling) consumes. The
// output is deterministic: rules in suite order, results in the
// documented diagnostic sort order, no timestamps.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders the diagnostics as a SARIF 2.1.0 log for the given
// rule set. Diagnostics must already be sorted (Run returns them so).
func SARIF(diags []Diagnostic, rules []Rule) ([]byte, error) {
	driver := sarifDriver{
		Name:           "positlint",
		InformationURI: "https://positlab.invalid/positlint", // repo-internal tool; no public homepage
	}
	ruleIndex := map[string]int{}
	for i, r := range rules {
		ruleIndex[r.Name()] = i
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name(),
			ShortDescription: sarifMessage{Text: r.Doc()},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Rule]
		if !ok {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	return json.MarshalIndent(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}, "", "  ")
}
