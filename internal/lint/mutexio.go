package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mutexioScope: the concurrency-heavy packages (job pool/store,
// scheduler, HTTP layer) where a mutex held across a blocking
// operation serializes unrelated work at best and deadlocks at worst
// (the classic shape: a lock held across a channel send whose receiver
// needs the same lock to drain).
var mutexioScope = []string{"jobs", "service", "runner"}

// mutexioRule flags blocking operations performed while a
// sync.Mutex/RWMutex is held: channel sends/receives/selects, ranges
// over channels, and calls to functions the fact engine summarized as
// Blocking (sleeps, WaitGroup waits, network I/O — transitively, so
// the blocking call can hide any number of helpers away).
//
// Held-lock tracking is a linear scan per function: x.Lock() opens a
// window that x.Unlock() closes; `defer x.Unlock()` leaves it open to
// the end of the function. Branch bodies are analyzed with a copy of
// the held set, so a conditional early-unlock-and-return does not leak
// into the fallthrough path. Plain file writes under a lock are NOT
// flagged: guarding a journal/file with its own mutex (the monitor
// pattern, e.g. the fsynced job journal) is this repo's documented
// design. sync.Cond.Wait is likewise exempt — it holds its mutex by
// contract.
type mutexioRule struct{}

func (mutexioRule) Name() string { return "mutexio" }
func (mutexioRule) Doc() string {
	return "forbid blocking operations (channel ops, selects, blocking calls) while holding a sync.Mutex/RWMutex"
}

func (mutexioRule) Check(p *Pass) {
	if !scoped(p.Pkg, mutexioScope...) || p.Facts == nil {
		return
	}
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		name := funcDisplayName(fd)
		report := func(pos token.Pos, what string, held map[string]bool) {
			lock := ""
			for k := range held {
				if lock == "" || k < lock {
					lock = k
				}
			}
			p.Reportf(pos, "%s while %s is locked in %s: a blocked holder stalls every other user of the lock (and can deadlock if the unblocking party needs it); release the mutex first", what, lock, name)
		}
		var process func(stmts []ast.Stmt, held map[string]bool)
		scan := func(n ast.Node, held map[string]bool) {
			if n == nil || len(held) == 0 {
				return
			}
			var visit func(m ast.Node) bool
			visit = func(m ast.Node) bool {
				switch e := m.(type) {
				case *ast.SendStmt:
					report(e.Pos(), "channel send", held)
				case *ast.UnaryExpr:
					if e.Op == token.ARROW {
						report(e.Pos(), "channel receive", held)
					}
				case *ast.SelectStmt:
					// A select with a default clause polls without
					// blocking, and a chosen case's comm op has already
					// unblocked — only clause bodies can still block.
					if !selectHasDefault(e) {
						report(e.Pos(), "select", held)
					}
					for _, cl := range e.Body.List {
						if cc, ok := cl.(*ast.CommClause); ok {
							for _, s := range cc.Body {
								walkSkipFuncLit(s, visit)
							}
						}
					}
					return false
				case *ast.CallExpr:
					if fn := calleeFunc(info, e); fn != nil && p.Facts.ForCall(fn).Blocking {
						report(e.Pos(), "call to blocking "+fn.FullName(), held)
					}
				}
				return true
			}
			walkSkipFuncLit(n, visit)
		}
		copyHeld := func(held map[string]bool) map[string]bool {
			c := make(map[string]bool, len(held))
			for k := range held {
				c[k] = true
			}
			return c
		}
		process = func(stmts []ast.Stmt, held map[string]bool) {
			for _, s := range stmts {
				switch st := s.(type) {
				case *ast.ExprStmt:
					if key, locking, ok := lockOp(info, st.X); ok {
						if locking {
							held[key] = true
						} else {
							delete(held, key)
						}
						continue
					}
					scan(st, held)
				case *ast.DeferStmt:
					// defer x.Unlock() keeps the window open to the
					// end; deferred blocking calls run at return,
					// outside any linear window we can reason about.
				case *ast.GoStmt:
					// The spawned goroutine does not block this one.
				case *ast.BlockStmt:
					process(st.List, held)
				case *ast.IfStmt:
					scan(st.Init, held)
					scan(st.Cond, held)
					process(st.Body.List, copyHeld(held))
					if st.Else != nil {
						process([]ast.Stmt{st.Else}, copyHeld(held))
					}
				case *ast.ForStmt:
					scan(st.Init, held)
					scan(st.Cond, held)
					process(st.Body.List, copyHeld(held))
				case *ast.RangeStmt:
					if len(held) > 0 {
						if t := info.TypeOf(st.X); t != nil {
							if _, isChan := t.Underlying().(*types.Chan); isChan {
								report(st.For, "range over channel", held)
							}
						}
					}
					process(st.Body.List, copyHeld(held))
				case *ast.SwitchStmt:
					scan(st.Init, held)
					scan(st.Tag, held)
					process(st.Body.List, copyHeld(held))
				case *ast.TypeSwitchStmt:
					process(st.Body.List, copyHeld(held))
				case *ast.CaseClause:
					process(st.Body, copyHeld(held))
				case *ast.LabeledStmt:
					process([]ast.Stmt{st.Stmt}, held)
				default:
					scan(s, held)
				}
			}
		}
		process(fd.Body.List, map[string]bool{})
	})
}

// lockOp matches x.Lock()/x.RLock() (locking=true) and
// x.Unlock()/x.RUnlock() (locking=false) on sync.Mutex/sync.RWMutex,
// returning the lock's expression string as its identity.
func lockOp(info *types.Info, e ast.Expr) (key string, locking, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	return types.ExprString(sel.X), locking, true
}
