package lint_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"positlab/internal/lint"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current fixture diagnostics")

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// fixturePackages loads every fixture package under testdata/src with
// the repo loader, so fixtures can import real positlab packages.
func fixturePackages(t testing.TB, root string) []*lint.Package {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(root, "internal", "lint", "testdata", "src")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var pkgs []*lint.Package
	for _, name := range names {
		importPath := "positlab/internal/lint/testdata/src/" + name
		pkg, err := loader.LoadDir(importPath, filepath.Join(srcDir, name))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestGoldenDiagnostics runs the full rule suite over the fixture
// corpus and compares the rendered diagnostics line-for-line against
// testdata/golden.txt (regenerate with `go test -run Golden -update`).
func TestGoldenDiagnostics(t *testing.T) {
	root := moduleRoot(t)
	pkgs := fixturePackages(t, root)
	diags := lint.Run(root, pkgs, lint.AllRules())

	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()

	goldenPath := filepath.Join(root, "internal", "lint", "testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	want := string(wantBytes)
	if got != want {
		t.Errorf("diagnostics diverge from golden.txt\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEveryRuleFires guards against a rule silently going dead: each
// rule of the suite must produce at least one fixture diagnostic.
func TestEveryRuleFires(t *testing.T) {
	root := moduleRoot(t)
	pkgs := fixturePackages(t, root)
	diags := lint.Run(root, pkgs, lint.AllRules())
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Rule] = true
	}
	for _, name := range lint.RuleNames() {
		if !fired[name] {
			t.Errorf("rule %q produced no fixture diagnostics", name)
		}
	}
}

// TestAllowSuppresses verifies the escape hatch: fixture lines carrying
// //lint:allow (same line or the line above) must not be reported, and
// removing the filter is observable because each allowed site pairs
// with a flagged twin elsewhere in the same fixture.
func TestAllowSuppresses(t *testing.T) {
	root := moduleRoot(t)
	pkgs := fixturePackages(t, root)
	diags := lint.Run(root, pkgs, lint.AllRules())
	counts := map[string]int{}
	for _, d := range diags {
		counts[filepath.Base(filepath.Dir(d.File))+"/"+filepath.Base(d.File)+":"+d.Rule]++
	}
	// Exact per-file, per-rule counts: one extra means an allow leaked.
	wantCounts := map[string]int{
		"solvers/solvers.go:precision":         3,
		"solvers/xprec.go:xprecision":          3,
		"shadow/shadow.go:precision":           2,
		"shadow/shadow.go:xprecision":          2,
		"shadow/shadow.go:errcheck":            2,
		"report/report.go:errcheck":            4,
		"service/service.go:errcheck":          3,
		"service/ctx.go:ctxprop":               2,
		"jobs/jobs.go:errcheck":                5,
		"jobs/durable.go:durability":           3,
		"jobs/queue.go:mutexio":                3,
		"lib/lib.go:locks":                     3,
		"lib/lib.go:panics":                    1,
		"experiments/experiments.go:maporder":  1,
		"experiments/experiments.go:registry":  3,
		"allowaudit/allowaudit.go:unusedallow": 3,
	}
	for key, want := range wantCounts {
		if counts[key] != want {
			t.Errorf("%s: got %d diagnostics, want %d", key, counts[key], want)
		}
	}
	for key, n := range counts {
		if _, ok := wantCounts[key]; !ok {
			t.Errorf("unexpected diagnostics %s (%d)", key, n)
		}
	}
}

// TestSelectRules covers the -rules grammar: all, names, and negation.
func TestSelectRules(t *testing.T) {
	names := func(rules []lint.Rule) []string {
		var out []string
		for _, r := range rules {
			out = append(out, r.Name())
		}
		return out
	}
	all, err := lint.SelectRules("all")
	if err != nil || len(all) != len(lint.RuleNames()) {
		t.Fatalf("all: %v %v", names(all), err)
	}
	one, err := lint.SelectRules("precision")
	if err != nil || len(one) != 1 || one[0].Name() != "precision" {
		t.Fatalf("single: %v %v", names(one), err)
	}
	two, err := lint.SelectRules("maporder, locks")
	if err != nil || len(two) != 2 {
		t.Fatalf("pair: %v %v", names(two), err)
	}
	neg, err := lint.SelectRules("-maporder")
	if err != nil || len(neg) != len(all)-1 {
		t.Fatalf("negation: %v %v", names(neg), err)
	}
	for _, r := range neg {
		if r.Name() == "maporder" {
			t.Error("negated rule still selected")
		}
	}
	combo, err := lint.SelectRules("all,-errcheck")
	if err != nil || len(combo) != len(all)-1 {
		t.Fatalf("all,-errcheck: %v %v", names(combo), err)
	}
	if _, err := lint.SelectRules("bogus"); err == nil {
		t.Error("unknown rule accepted")
	}
	var negateAll []string
	for _, name := range lint.RuleNames() {
		negateAll = append(negateAll, "-"+name)
	}
	if _, err := lint.SelectRules(strings.Join(negateAll, ",")); err == nil {
		t.Error("empty selection accepted")
	}
}

// TestJSONOutput checks the documented envelope: a versioned schema
// string plus the diagnostic list (never null), each entry carrying
// its rule id and fix availability.
func TestJSONOutput(t *testing.T) {
	type envelope struct {
		Schema      string            `json:"schema"`
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	empty, err := lint.JSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), `"diagnostics": []`) {
		t.Fatalf("empty envelope must render [] not null:\n%s", empty)
	}
	in := []lint.Diagnostic{{Rule: "panics", File: "a/b.go", Line: 3, Col: 7, Message: "m", Fixable: true}}
	data, err := lint.JSON(in)
	if err != nil {
		t.Fatal(err)
	}
	var out envelope
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != "positlint-diagnostics/v1" {
		t.Errorf("schema = %q", out.Schema)
	}
	if len(out.Diagnostics) != 1 || out.Diagnostics[0] != in[0] {
		t.Fatalf("round-trip: %+v", out.Diagnostics)
	}
	if !strings.Contains(string(data), `"fixable": true`) {
		t.Errorf("fix availability missing from envelope:\n%s", data)
	}
}

// TestRepoIsClean lints the real repository tree with every rule; the
// tree must stay free of findings (audited sites carry //lint:allow).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo type check")
	}
	root := moduleRoot(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(root, pkgs, lint.AllRules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
