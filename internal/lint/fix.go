package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Fix is one mechanical suggested edit: replace the bytes [Start, End)
// of Path with Text. Paths are slash-separated and relative to the
// module root once a Diagnostic leaves the driver (absolute while
// in-flight inside a Pass). Offsets are byte offsets into the file as
// analyzed — applying fixes to a file that changed since the analysis
// is refused by re-checking bounds, not detected semantically, so run
// -fix against a fresh analysis.
type Fix struct {
	Path  string `json:"path"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// ApplyFixes applies the suggested fixes of the given diagnostics to
// the files under root, returning how many fixes were applied and the
// (root-relative) files rewritten. Overlapping fixes are applied
// first-wins; a fix whose offsets fall outside the current file is
// skipped with an error. Deleting a fix's bytes may leave an empty
// line (a removed //lint:allow comment that owned its line); such
// lines are removed, and trailing whitespace left before a deleted
// line-end comment is trimmed.
func ApplyFixes(root string, diags []Diagnostic) (applied int, files []string, err error) {
	byFile := map[string][]*Fix{}
	for i := range diags {
		if diags[i].Fix != nil {
			f := diags[i].Fix
			byFile[f.Path] = append(byFile[f.Path], f)
		}
	}
	paths := make([]string, 0, len(byFile))
	for p := range byFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, rel := range paths {
		abs := filepath.Join(root, filepath.FromSlash(rel))
		data, rerr := os.ReadFile(abs)
		if rerr != nil {
			return applied, files, fmt.Errorf("lint: apply fixes: %w", rerr)
		}
		fixes := byFile[rel]
		// Apply back-to-front so earlier offsets stay valid.
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].Start > fixes[j].Start })
		out := data
		lastStart := len(data) + 1
		n := 0
		for _, f := range fixes {
			if f.Start < 0 || f.End > len(data) || f.Start > f.End || f.End > lastStart {
				continue // stale offsets or overlap with an already-applied fix
			}
			start, end := f.Start, f.End
			if f.Text == "" {
				start, end = widenDeletion(out, start, end)
			}
			out = append(out[:start:start], append([]byte(f.Text), out[end:]...)...)
			lastStart = start
			n++
		}
		if n == 0 {
			continue
		}
		info, serr := os.Stat(abs)
		mode := os.FileMode(0o644)
		if serr == nil {
			mode = info.Mode().Perm()
		}
		if werr := os.WriteFile(abs, out, mode); werr != nil {
			return applied, files, fmt.Errorf("lint: apply fixes: %w", werr)
		}
		applied += n
		files = append(files, rel)
	}
	return applied, files, nil
}

// widenDeletion grows a pure deletion to swallow the whitespace it
// would strand: leading spaces/tabs before the deleted region, and —
// when the deletion then owns the whole line — the line itself.
func widenDeletion(data []byte, start, end int) (int, int) {
	s := start
	for s > 0 && (data[s-1] == ' ' || data[s-1] == '\t') {
		s--
	}
	atLineStart := s == 0 || data[s-1] == '\n'
	atLineEnd := end >= len(data) || data[end] == '\n'
	if atLineStart && atLineEnd && end < len(data) {
		return s, end + 1 // comment owned the line: delete the line
	}
	if atLineEnd {
		return s, end // trailing comment: trim the spaces before it too
	}
	return start, end
}

// FixableCount reports how many diagnostics carry a suggested fix.
func FixableCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Fix != nil {
			n++
		}
	}
	return n
}
