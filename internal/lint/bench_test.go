package lint_test

import (
	"os"
	"testing"

	"positlab/internal/lint"
)

// BenchmarkLoadRepo measures the full driver cost: parse and type-check
// the entire module from source (what `make lint` pays end to end).
func BenchmarkLoadRepo(b *testing.B) {
	root := moduleRoot(b)
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(pkgs) == 0 {
			b.Fatal("no packages")
		}
	}
}

// BenchmarkRunRules measures the analysis passes alone over the loaded,
// type-checked repository.
func BenchmarkRunRules(b *testing.B) {
	root := moduleRoot(b)
	loader, err := lint.NewLoader(root)
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		b.Fatal(err)
	}
	rules := lint.AllRules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := lint.Run(root, pkgs, rules); len(diags) != 0 {
			b.Fatalf("repo not clean: %d findings", len(diags))
		}
	}
}

// BenchmarkRepoCold measures a full-module analysis with an empty fact
// cache: scan, type-check, compute facts, run rules, write entries.
func BenchmarkRepoCold(b *testing.B) {
	root := moduleRoot(b)
	rules := lint.AllRules()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := os.MkdirTemp("", "positlint-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := lint.RunRepo(root, cache, rules)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if res.Stats.CacheHits != 0 {
			b.Fatalf("cold run hit the cache: %+v", res.Stats)
		}
		os.RemoveAll(cache)
		b.StartTimer()
	}
}

// BenchmarkRepoWarm measures the fully-cached re-run: content hashing
// and diagnostic replay, no parsing of function bodies, no go/types.
func BenchmarkRepoWarm(b *testing.B) {
	root := moduleRoot(b)
	rules := lint.AllRules()
	cache, err := os.MkdirTemp("", "positlint-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(cache)
	if _, err := lint.RunRepo(root, cache, rules); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lint.RunRepo(root, cache, rules)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.CacheMisses != 0 {
			b.Fatalf("warm run missed the cache: %+v", res.Stats)
		}
	}
}
