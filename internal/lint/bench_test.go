package lint_test

import (
	"testing"

	"positlab/internal/lint"
)

// BenchmarkLoadRepo measures the full driver cost: parse and type-check
// the entire module from source (what `make lint` pays end to end).
func BenchmarkLoadRepo(b *testing.B) {
	root := moduleRoot(b)
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(pkgs) == 0 {
			b.Fatal("no packages")
		}
	}
}

// BenchmarkRunRules measures the analysis passes alone over the loaded,
// type-checked repository.
func BenchmarkRunRules(b *testing.B) {
	root := moduleRoot(b)
	loader, err := lint.NewLoader(root)
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		b.Fatal(err)
	}
	rules := lint.AllRules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := lint.Run(root, pkgs, rules); len(diags) != 0 {
			b.Fatalf("repo not clean: %d findings", len(diags))
		}
	}
}
