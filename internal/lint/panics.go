package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// panicsRule forbids panic in library code. Experiments run inside
// scheduler worker goroutines; a library panic there is an abrupt
// process-wide failure mode where a returned error would have been
// reported per job. Exempt by design: main packages (CLI argument
// handling), internal/posit (bit-level invariant checks are that
// package's documented contract), and Must*-named wrappers (the
// panicking variant is their documented purpose). Audited invariant
// checks elsewhere carry //lint:allow panics.
type panicsRule struct{}

func (panicsRule) Name() string { return "panics" }
func (panicsRule) Doc() string {
	return "forbid panic outside main packages, internal/posit, and Must*-named wrappers"
}

func (panicsRule) Check(p *Pass) {
	if p.Pkg.IsMain() || scoped(p.Pkg, "posit") {
		return
	}
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		if strings.HasPrefix(fd.Name.Name, "Must") || strings.HasPrefix(fd.Name.Name, "must") {
			return
		}
		name := funcDisplayName(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			p.Reportf(call.Pos(), "panic in library function %s; return an error (or //lint:allow panics for an audited invariant check)", name)
			return true
		})
	})
}
