package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errcheckScope: the packages that own durable outputs — rendered
// reports, SVG figures, the runner's cache/runs.json, the HTTP
// serving layer's response bodies, and the job journal — where a
// silently dropped write error means a truncated artifact (or
// response, or journal record) that looks like a result.
var errcheckScope = []string{"report", "svgplot", "runner", "positio", "service", "jobs", "shadow", "faultfs"}

// errcheckRule flags statements that discard the error result of an
// output operation: fmt.Fprint* to a real writer, io/os calls, and
// Write/Close/Flush/Sync-shaped methods. Writes into strings.Builder
// and bytes.Buffer are exempt (their errors are always nil by
// contract), and an explicit `_ =` assignment is an acknowledged
// discard that the rule accepts.
type errcheckRule struct{}

func (errcheckRule) Name() string { return "errcheck" }
func (errcheckRule) Doc() string {
	return "forbid silently discarded errors from io.Writer/os calls in output-owning packages"
}

// errcheckMethods are the method names treated as output operations.
var errcheckMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "WriteAll": true, "Close": true, "Flush": true,
	"Sync": true, "Encode": true,
}

func (errcheckRule) Check(p *Pass) {
	if !scoped(p.Pkg, errcheckScope...) {
		return
	}
	info := p.Pkg.Info
	check := func(call *ast.CallExpr, how string, fixable bool) {
		if !returnsErrorLast(info, call) {
			return
		}
		fn := calleeFunc(info, call)
		if fn == nil || !isOutputCall(info, call, fn) {
			return
		}
		msg := "%s discards the error of %s; handle it or acknowledge with `_ =`"
		if !fixable {
			p.Reportf(call.Pos(), msg, how, fn.FullName())
			return
		}
		// Mechanical fix: acknowledge the discard explicitly. Only a
		// plain statement can take the `_ =` prefix (defer/go cannot).
		sig, _ := info.TypeOf(call.Fun).(*types.Signature)
		text := strings.Repeat("_, ", sig.Results().Len()-1) + "_ = "
		p.ReportFix(call.Pos(), call.Pos(), call.Pos(), text, msg, how, fn.FullName())
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "statement", true)
				}
			case *ast.DeferStmt:
				check(s.Call, "defer", false)
			case *ast.GoStmt:
				check(s.Call, "go statement", false)
			}
			return true
		})
	}
}

func returnsErrorLast(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// isOutputCall classifies the callee as an output operation whose
// error matters.
func isOutputCall(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if !errcheckMethods[fn.Name()] {
			return false
		}
		return !isInfallibleBuilder(sig.Recv().Type())
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "fmt":
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			// Exempt when the destination cannot fail.
			if len(call.Args) > 0 && isInfallibleBuilder(info.TypeOf(call.Args[0])) {
				return false
			}
			return true
		}
		return false
	case "os", "io", "bufio":
		return true
	}
	return false
}

// isInfallibleBuilder reports *strings.Builder / *bytes.Buffer (whose
// Write-family methods never return a non-nil error).
func isInfallibleBuilder(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return key == "strings.Builder" || key == "bytes.Buffer"
}
