package lint

import (
	"go/ast"
	"go/types"
)

// ctxpropScope: the packages whose long-running calls (solvers, job
// pool, scheduler, HTTP layer) are cancellation points. Everything
// here threads a context; a dropped one turns graceful drain and
// request timeouts into hangs.
var ctxpropScope = []string{"service", "jobs", "runner", "solvers"}

// ctxpropRule flags context non-propagation: a function that receives
// a context.Context but invokes a context-consuming callee with
// context.Background() (or context.TODO()) instead. The callee then
// never observes the caller's cancellation or deadline — a solve
// outlives its HTTP request, a drained pool waits on work that cannot
// be interrupted.
//
// The callee side is interprocedural: a module function counts as
// context-consuming when the fact engine saw it actually use its ctx
// parameter (UsesCtx); standard-library callees with a ctx parameter
// are assumed to honor it. The caller side tracks simple laundering:
// locals assigned from context.Background()/TODO(), including through
// context.With* chains, are flagged wherever they are passed.
// Detaching deliberately (e.g. a drain deadline after the parent ctx
// is already canceled) is an audited //lint:allow ctxprop site.
type ctxpropRule struct{}

func (ctxpropRule) Name() string { return "ctxprop" }
func (ctxpropRule) Doc() string {
	return "forbid passing context.Background()/TODO() to context-consuming calls from functions that already have a ctx"
}

func (ctxpropRule) Check(p *Pass) {
	if !scoped(p.Pkg, ctxpropScope...) || p.Facts == nil {
		return
	}
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || ctxParamIndex(sig) < 0 {
			return
		}
		name := funcDisplayName(fd)
		tainted := backgroundLocals(info, fd)
		walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() == "context" {
				return true // context.With* only propagates; reported at the real consumer
			}
			if !p.Facts.ForCall(callee).UsesCtx {
				return true
			}
			for _, arg := range call.Args {
				if isBackgroundExpr(info, arg, tainted) {
					p.Reportf(arg.Pos(), "%s drops its caller's context: %s consumes a ctx but receives context.Background()/TODO(); propagate ctx so cancellation and deadlines reach it", name, callee.FullName())
				}
			}
			return true
		})
	})
}

// backgroundLocals collects locals holding a detached context:
// assigned from context.Background()/TODO() or derived from one
// through context.With* (whose first result is a child of its first
// argument). Two passes pick up chains written out of order.
func backgroundLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for pass := 0; pass < 2; pass++ {
		walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			var derived bool
			switch fn.Name() {
			case "Background", "TODO":
				derived = true
			case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithoutCancel":
				derived = len(call.Args) > 0 && isBackgroundExpr(info, call.Args[0], tainted)
			}
			if !derived {
				return true
			}
			if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				if obj := info.ObjectOf(id); obj != nil {
					tainted[obj] = true
				}
			}
			return true
		})
	}
	return tainted
}

// isBackgroundExpr matches a direct context.Background()/TODO() call
// or a local known to hold a detached context.
func isBackgroundExpr(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		return tainted[info.ObjectOf(id)]
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}
