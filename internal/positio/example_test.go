package positio_test

import (
	"fmt"

	"positlab/internal/posit"
	"positlab/internal/positio"
)

func ExampleParse() {
	p, _ := positio.Parse(posit.Posit16e2, "3.14159")
	fmt.Printf("%#04x %s\n", uint64(p), positio.Format(posit.Posit16e2, p))
	// Output: 0x4c91 3.142
}

func ExampleFormat_shortest() {
	c := posit.Posit16e2
	third := c.Div(c.One(), c.FromFloat64(3))
	// The shortest decimal that round-trips the pattern — far fewer
	// digits than float64 would need.
	fmt.Println(positio.Format(c, third))
	// Output: 0.3334
}

func ExampleFields() {
	c := posit.Posit8e1
	fmt.Println(positio.Fields(c, c.FromFloat64(2)))
	// Output: 0 10 1 0000
}
