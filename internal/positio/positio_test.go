package positio_test

import (
	"strconv"
	"strings"
	"testing"

	"positlab/internal/posit"
	"positlab/internal/positio"
)

func TestParseBasics(t *testing.T) {
	c := posit.Posit16e2
	cases := []struct {
		in   string
		want float64
	}{
		{"0", 0},
		{"1", 1},
		{"-1", -1},
		{"2.5", 2.5},
		{"1e3", 1000},
		{" 0.5 ", 0.5},
	}
	for _, tc := range cases {
		p, err := positio.Parse(c, tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := c.ToFloat64(p); got != tc.want {
			t.Errorf("Parse(%q) = %g, want %g", tc.in, got, tc.want)
		}
	}
	for _, nar := range []string{"NaR", "nar", "NaN"} {
		p, err := positio.Parse(c, nar)
		if err != nil || !c.IsNaR(p) {
			t.Errorf("Parse(%q) = %#x, %v", nar, uint64(p), err)
		}
	}
	if _, err := positio.Parse(c, "not a number"); err == nil {
		t.Error("garbage must error")
	}
}

// Parse must agree with the library's correctly rounded conversion for
// decimals that are exactly float64 values.
func TestParseMatchesFromFloat64(t *testing.T) {
	c := posit.Posit32e2
	for _, v := range []float64{3.14159, 1e-30, 7.25e18, 123456.789, 2.3283064365386963e-10, -0.1} {
		want := c.FromFloat64(v)
		got := positio.MustParse(c, strconv.FormatFloat(v, 'g', 17, 64))
		if got != want {
			t.Errorf("Parse(%v) = %#x, FromFloat64 = %#x", v, uint64(got), uint64(want))
		}
	}
}

// Midpoint decimals round to the even pattern: the adversarial case
// for any float64-mediated parser, which this package must get right.
func TestParseExactMidpoints(t *testing.T) {
	c := posit.Posit8e0
	// Between 1.0 (0x40) and 1.03125 (0x41): midpoint 1.015625 -> even
	// pattern 0x40. Between 0x41 and 0x42: midpoint 1.046875 -> 0x42.
	if got := positio.MustParse(c, "1.015625"); uint64(got) != 0x40 {
		t.Errorf("midpoint tie-down = %#x, want 0x40", uint64(got))
	}
	if got := positio.MustParse(c, "1.046875"); uint64(got) != 0x42 {
		t.Errorf("midpoint tie-up = %#x, want 0x42", uint64(got))
	}
	// A hair above the first midpoint must round up even with a long
	// decimal tail.
	if got := positio.MustParse(c, "1.0156250000000000000000000000001"); uint64(got) != 0x41 {
		t.Errorf("just above midpoint = %#x, want 0x41", uint64(got))
	}
}

// Format produces the shortest decimal that parses back to the same
// pattern, for every pattern of the 8- and 16-bit formats.
func TestFormatRoundTripExhaustive(t *testing.T) {
	for _, c := range []posit.Config{posit.Posit8e0, posit.Posit8e2, posit.Posit16e1} {
		limit := uint64(1) << uint(c.N())
		for pat := uint64(0); pat < limit; pat++ {
			p := posit.Bits(pat)
			s := positio.Format(c, p)
			back, err := positio.Parse(c, s)
			if err != nil {
				t.Fatalf("%v: Format(%#x) = %q does not parse: %v", c, pat, s, err)
			}
			if back != p {
				t.Fatalf("%v: %#x -> %q -> %#x", c, pat, s, uint64(back))
			}
		}
	}
}

func TestFormatShortness(t *testing.T) {
	c := posit.Posit16e2
	if s := positio.Format(c, c.One()); s != "1" {
		t.Errorf("Format(1) = %q", s)
	}
	if s := positio.Format(c, c.NaR()); s != "NaR" {
		t.Errorf("Format(NaR) = %q", s)
	}
	if s := positio.Format(c, c.Zero()); s != "0" {
		t.Errorf("Format(0) = %q", s)
	}
	// A third needs only enough digits to pick the right pattern, far
	// fewer than float64's 17.
	third := c.FromFloat64(1.0 / 3.0)
	s := positio.Format(c, third)
	if len(s) > 9 {
		t.Errorf("Format(1/3) = %q, suspiciously long", s)
	}
}

func TestFields(t *testing.T) {
	c := posit.Posit8e1
	// 2.0 = 0 10 1 0000: sign 0, regime 10, exponent 1, fraction 0000.
	p := c.FromFloat64(2)
	if got := positio.Fields(c, p); got != "0 10 1 0000" {
		t.Errorf("Fields(2.0) = %q", got)
	}
	// Zero and NaR render whole.
	if got := positio.Fields(c, c.Zero()); got != "00000000" {
		t.Errorf("Fields(0) = %q", got)
	}
	if got := positio.Fields(c, c.NaR()); got != "10000000" {
		t.Errorf("Fields(NaR) = %q", got)
	}
	// maxpos: regime consumes the whole body.
	if got := positio.Fields(c, c.MaxPos()); got != "0 1111111" {
		t.Errorf("Fields(maxpos) = %q", got)
	}
	// Field strings reassemble to the original pattern.
	for pat := uint64(0); pat < 256; pat++ {
		s := positio.Fields(c, posit.Bits(pat))
		joined := strings.ReplaceAll(s, " ", "")
		back, err := strconv.ParseUint(joined, 2, 64)
		if err != nil || back != pat {
			t.Fatalf("Fields(%#x) = %q does not reassemble", pat, s)
		}
	}
}
