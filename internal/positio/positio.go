// Package positio converts posits to and from decimal strings: exact
// correctly rounded parsing at any precision, shortest-round-trip
// formatting, and binary field rendering for inspection tools.
package positio

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"positlab/internal/bigfp"
	"positlab/internal/posit"
)

// Parse reads a decimal string (strconv syntax: "3.14", "-2.5e-7",
// "NaR" case-insensitively) into the nearest posit with a single
// correct rounding. The decimal is parsed into a big.Float whose
// precision scales with the input length, so even adversarial
// near-midpoint strings round correctly.
func Parse(c posit.Config, s string) (posit.Bits, error) {
	trimmed := strings.TrimSpace(s)
	if strings.EqualFold(trimmed, "nar") || strings.EqualFold(trimmed, "nan") {
		return c.NaR(), nil
	}
	// Precision: 4 bits per input character covers any decimal digit
	// (log2(10) < 4) with the exponent and sign for free; floor at 64.
	prec := uint(4 * len(trimmed))
	if prec < 64 {
		prec = 64
	}
	v, _, err := big.ParseFloat(trimmed, 10, prec, big.ToNearestEven)
	if err != nil {
		return 0, fmt.Errorf("positio: parsing %q: %w", s, err)
	}
	return bigfp.RoundToPosit(c, v), nil
}

// Format renders a posit as the shortest decimal string that parses
// back to the same pattern. NaR renders as "NaR".
func Format(c posit.Config, p posit.Bits) string {
	if c.IsNaR(p) {
		return "NaR"
	}
	if c.IsZero(p) {
		return "0"
	}
	v := c.ToFloat64(p) // exact for every supported format
	for prec := 1; prec <= 17; prec++ {
		s := strconv.FormatFloat(v, 'g', prec, 64)
		if back, err := Parse(c, s); err == nil && back == p {
			return s
		}
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Fields renders the pattern's binary decomposition with fields
// separated by spaces: "sign regime [exponent] [fraction]", e.g.
// "0 10 1 0010011" for a posit(11,1). Zero and NaR render their
// special patterns whole.
func Fields(c posit.Config, p posit.Bits) string {
	n := c.N()
	bits := fmt.Sprintf("%0*b", n, uint64(p))
	if c.IsZero(p) || c.IsNaR(p) {
		return bits
	}
	// Regime length: run of identical bits after the sign, plus the
	// terminating opposite bit (when present).
	body := bits[1:]
	run := 1
	for run < len(body) && body[run] == body[0] {
		run++
	}
	rlen := run
	if run < len(body) {
		rlen++ // terminator
	}
	var parts []string
	parts = append(parts, bits[:1], body[:rlen])
	rest := body[rlen:]
	es := c.ES()
	if es > len(rest) {
		es = len(rest)
	}
	if es > 0 {
		parts = append(parts, rest[:es])
	}
	if frac := rest[es:]; len(frac) > 0 {
		parts = append(parts, frac)
	}
	return strings.Join(parts, " ")
}

// MustParse is Parse that panics, for tests and literals.
func MustParse(c posit.Config, s string) posit.Bits {
	p, err := Parse(c, s)
	if err != nil {
		panic(err)
	}
	return p
}
