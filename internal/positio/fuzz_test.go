package positio_test

import (
	"testing"

	"positlab/internal/posit"
	"positlab/internal/positio"
)

// FuzzParse: arbitrary strings must parse or error, never panic; and
// anything accepted must re-format and re-parse to the same pattern.
func FuzzParse(f *testing.F) {
	f.Add("3.14", byte(1))
	f.Add("-2.5e-7", byte(4))
	f.Add("NaR", byte(0))
	f.Add("1e999999", byte(2))
	f.Add("0x1p4", byte(3))
	f.Fuzz(func(t *testing.T, s string, sel byte) {
		cfgs := []posit.Config{
			posit.Posit8e0, posit.Posit16e1, posit.Posit16e2,
			posit.Posit32e2, posit.MustNew(6, 3),
		}
		c := cfgs[int(sel)%len(cfgs)]
		p, err := positio.Parse(c, s)
		if err != nil {
			return
		}
		if !c.Canonical(p) {
			t.Fatalf("Parse(%q) produced non-canonical pattern %#x", s, uint64(p))
		}
		out := positio.Format(c, p)
		back, err := positio.Parse(c, out)
		if err != nil {
			t.Fatalf("Format(%#x) = %q does not re-parse: %v", uint64(p), out, err)
		}
		if back != p {
			t.Fatalf("Parse(%q) = %#x, re-parse of %q = %#x", s, uint64(p), out, uint64(back))
		}
	})
}

// FuzzPatternRoundTrip: every pattern formats and parses back exactly.
func FuzzPatternRoundTrip(f *testing.F) {
	f.Add(uint64(0x4000), byte(2))
	f.Add(uint64(0xffff), byte(3))
	f.Fuzz(func(t *testing.T, pat uint64, sel byte) {
		cfgs := []posit.Config{
			posit.Posit8e1, posit.Posit16e1, posit.Posit16e2, posit.Posit32e2,
		}
		c := cfgs[int(sel)%len(cfgs)]
		p := posit.Bits(pat & (uint64(1)<<uint(c.N()) - 1))
		s := positio.Format(c, p)
		back, err := positio.Parse(c, s)
		if err != nil || back != p {
			t.Fatalf("%v: %#x -> %q -> %#x (%v)", c, uint64(p), s, uint64(back), err)
		}
	})
}
