package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("v"), nil }

	v, cached, err := c.Do(context.Background(), "k", compute)
	if err != nil || cached || string(v) != "v" {
		t.Fatalf("first Do = %q cached=%v err=%v", v, cached, err)
	}
	v, cached, err = c.Do(context.Background(), "k", compute)
	if err != nil || !cached || string(v) != "v" {
		t.Fatalf("second Do = %q cached=%v err=%v", v, cached, err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Shared != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheSingleflight deterministically exercises the dedup path:
// the first caller blocks inside compute, a second caller for the
// same key must register as Shared and then receive the first
// caller's bytes.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(4)
	enter := make(chan struct{})
	release := make(chan struct{})
	computes := 0

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, cached, err := c.Do(context.Background(), "k", func() ([]byte, error) {
			computes++
			close(enter)
			<-release
			return []byte("once"), nil
		})
		if err != nil || cached || string(v) != "once" {
			t.Errorf("leader Do = %q cached=%v err=%v", v, cached, err)
		}
	}()
	<-enter // the leader is inside compute

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, cached, err := c.Do(context.Background(), "k", func() ([]byte, error) {
			t.Error("follower computed despite in-flight leader")
			return nil, nil
		})
		if err != nil || !cached || string(v) != "once" {
			t.Errorf("follower Do = %q cached=%v err=%v", v, cached, err)
		}
	}()

	// The follower increments Shared before blocking on ready.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Shared == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never registered as shared")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	if st := c.Stats(); st.Shared != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want shared=1 misses=1", st)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	boom := errors.New("boom")
	fail := func() ([]byte, error) { calls++; return nil, boom }
	if _, _, err := c.Do(context.Background(), "k", fail); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.Do(context.Background(), "k", fail); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (errors must not be cached)", calls)
	}
}

func TestCachePanicBecomesError(t *testing.T) {
	c := NewCache(4)
	_, _, err := c.Do(context.Background(), "k", func() ([]byte, error) { panic("kaboom") })
	if err == nil || err.Error() != "compute panicked: kaboom" {
		t.Fatalf("err = %v", err)
	}
	// The key is free again.
	v, cached, err := c.Do(context.Background(), "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || cached || string(v) != "ok" {
		t.Fatalf("after panic: %q cached=%v err=%v", v, cached, err)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	mk := func(k string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(k), nil }
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := c.Do(context.Background(), k, mk(k)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 eviction", st)
	}
	// "a" was least recently used: recomputed. "c" still cached.
	if _, cached, _ := c.Do(context.Background(), "c", mk("c")); !cached {
		t.Fatal("c evicted prematurely")
	}
	if _, cached, _ := c.Do(context.Background(), "a", mk("a")); cached {
		t.Fatal("a survived eviction")
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache(4)
	enter := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() ([]byte, error) {
			close(enter)
			<-release
			return []byte("late"), nil
		})
	}()
	<-enter
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "k", func() ([]byte, error) { return nil, nil })
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%16)
				want := key + "!"
				v, _, err := c.Do(context.Background(), key, func() ([]byte, error) {
					return []byte(want), nil
				})
				if err != nil || string(v) != want {
					t.Errorf("Do(%s) = %q, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
