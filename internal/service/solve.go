package service

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"positlab/internal/arith"
	"positlab/internal/experiments"
	"positlab/internal/linalg"
	"positlab/internal/matgen"
	"positlab/internal/mmarket"
	"positlab/internal/scaling"
	"positlab/internal/solvers"
)

// solveRequest is the POST /v1/solve body.
type solveRequest struct {
	// Matrix names a Table I suite matrix (e.g. "bcsstk01");
	// MatrixMarket uploads one inline instead. Exactly one must be
	// set.
	Matrix       string `json:"matrix,omitempty"`
	MatrixMarket string `json:"matrix_market,omitempty"`
	// B is the right-hand side; when omitted it defaults to the
	// suite's b for named matrices and to A·1 for uploads.
	B []float64 `json:"b,omitempty"`
	// Solver is "cg", "cholesky", or "ir".
	Solver string `json:"solver"`
	// Format is the working (cg, cholesky) or factorization (ir)
	// format name.
	Format string `json:"format"`
	// Tol is the convergence threshold (cg: relative residual,
	// default 1e-5; ir: backward error, default 1e-15).
	Tol float64 `json:"tol,omitempty"`
	// MaxIter caps iterations (cg: default 10·N; ir: default 1000).
	MaxIter int `json:"max_iter,omitempty"`
	// Rescale applies the paper's power-of-two system rescaling
	// before cg/cholesky (Fig. 7 / Fig. 9 preparation).
	Rescale bool `json:"rescale,omitempty"`
	// Higham applies Algorithm 5 equilibration with the format-aware
	// μ before ir (Table III preparation).
	Higham bool `json:"higham,omitempty"`
	// ReturnX includes the solution vector in the response. Off by
	// default: x has N entries and most callers only want the
	// convergence metrics.
	ReturnX bool `json:"return_x,omitempty"`
}

// solveResponse is the POST /v1/solve body on success.
type solveResponse struct {
	Solver string `json:"solver"`
	Format string `json:"format"`
	Matrix string `json:"matrix"`
	N      int    `json:"n"`
	// Iterations/Converged/Failed: solver progress. Failed covers
	// arithmetic exceptions (cg) and factorization breakdown
	// (cholesky, ir).
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	Failed     bool `json:"failed"`
	// RelResidual is cg's final ‖r‖/‖b‖; BackwardError the
	// normwise relative backward error (cholesky, ir); FactorError
	// ir's low-precision factorization error. Null when not
	// applicable or non-finite.
	RelResidual   jsonFloat `json:"rel_residual,omitempty"`
	BackwardError jsonFloat `json:"backward_error,omitempty"`
	FactorError   jsonFloat `json:"factor_error,omitempty"`
	// History is the per-iteration residual (cg) or backward-error
	// (ir) series.
	History []jsonFloat `json:"history,omitempty"`
	// X is the solution vector, present only with return_x.
	X []jsonFloat `json:"x,omitempty"`
	// Ops counts the format arithmetic this request performed.
	Ops    arith.OpCounts `json:"ops"`
	WallMS float64        `json:"wall_ms"`
}

// solveError carries an HTTP status with a failed solve so both
// callers of runSolve (the synchronous handler and the job executor)
// can map it to their own error model.
type solveError struct {
	status int
	msg    string
}

func (e *solveError) Error() string { return e.msg }

// solveCheckpointing threads the job subsystem's checkpoint cadence and
// resume state into the solver loops. The zero value (the synchronous
// /v1/solve path) checkpoints nothing.
type solveCheckpointing struct {
	cg solvers.CGCheckpointOptions
	ir solvers.IRCheckpointOptions
}

// handleSolve implements POST /v1/solve: one solver run, in the
// requested format, on a named suite matrix or an uploaded
// MatrixMarket system. The request context (per-request timeout,
// client disconnect, server drain) is threaded into the solver's
// per-iteration checkpoints.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, serr := s.runSolve(r.Context(), &req, solveCheckpointing{})
	if serr != nil {
		httpError(w, serr.status, serr.msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// validateSolve resolves the request's format and solver names,
// normalizing req.Solver. It is called both at HTTP time and at job
// submission so bad specs are rejected before they are journaled.
func validateSolve(req *solveRequest) (arith.Format, *solveError) {
	f, err := arith.ByName(req.Format)
	if err != nil {
		return nil, &solveError{http.StatusBadRequest, err.Error()}
	}
	solver := strings.ToLower(strings.TrimSpace(req.Solver))
	switch solver {
	case "cg", "cholesky", "ir":
	default:
		return nil, &solveError{http.StatusBadRequest,
			fmt.Sprintf("unknown solver %q (known: cg, cholesky, ir)", req.Solver)}
	}
	req.Solver = solver
	return f, nil
}

// runSolve executes one solver request. It is the shared engine of the
// synchronous POST /v1/solve handler and the async job executor; the
// latter passes checkpoint cadence and resume state through ck. Because
// the whole pipeline — system construction, rescaling, format
// conversion, solver loop — is deterministic, a run resumed from a
// checkpoint returns results bit-identical to an uninterrupted one.
func (s *Server) runSolve(ctx context.Context, req *solveRequest, ck solveCheckpointing) (solveResponse, *solveError) {
	var resp solveResponse
	f, serr := validateSolve(req)
	if serr != nil {
		return resp, serr
	}
	a, b, name, err := s.loadSystem(req)
	if err != nil {
		return resp, &solveError{http.StatusBadRequest, err.Error()}
	}

	reqOps := &arith.AtomicOpCounts{}
	// Nested instrumentation: the inner wrapper feeds the server-wide
	// kernel counters, the outer one this request's report. Both see
	// the same tally; results stay bit-identical.
	fi := arith.InstrumentAtomic(arith.InstrumentAtomic(f, s.metrics.Ops), reqOps)

	resp = solveResponse{Solver: req.Solver, Format: f.Name(), Matrix: name, N: a.N}
	start := time.Now()
	switch req.Solver {
	case "cg":
		tol := req.Tol
		if tol == 0 {
			tol = 1e-5
		}
		maxIter := req.MaxIter
		if maxIter == 0 {
			maxIter = 10 * a.N
		}
		if req.Rescale {
			a = a.Clone()
			b = append([]float64(nil), b...)
			scaling.RescaleSystemCG(a, b)
		}
		an := a.ToFormat(fi, false)
		bn := linalg.VecFromFloat64(fi, b)
		res, err := solvers.CGCheckpointed(ctx, an, bn, tol, maxIter, ck.cg)
		if err != nil {
			return resp, &solveError{statusFromCtx(err), "solve canceled: " + err.Error()}
		}
		resp.Iterations = res.Iterations
		resp.Converged = res.Converged
		resp.Failed = res.Failed
		resp.RelResidual = jsonFloat(res.RelResidual)
		resp.History = jsonFloats(res.History)
		if req.ReturnX {
			resp.X = jsonFloats(res.X)
		}

	case "cholesky":
		if req.Rescale {
			a = a.Clone()
			b = append([]float64(nil), b...)
			scaling.RescaleSystemCholesky(a, b)
		}
		an := a.ToDense().ToFormat(fi, false)
		bn := linalg.VecFromFloat64(fi, b)
		x, err := solvers.CholeskySolveCtx(ctx, an, bn)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return resp, &solveError{statusFromCtx(ctxErr), "solve canceled: " + ctxErr.Error()}
			}
			// Breakdown in the working format: a result, not a server
			// error (the '-' entries of the paper's tables).
			resp.Failed = true
			break
		}
		xf := linalg.VecToFloat64(f, x)
		resp.Converged = true
		resp.BackwardError = jsonFloat(solvers.BackwardError(a, b, xf))
		if req.ReturnX {
			resp.X = jsonFloats(xf)
		}

	case "ir":
		sc := solvers.IRScaling{}
		if req.Higham {
			sc = solvers.IRScaling{
				R:  scaling.HighamEquilibrate(a, 1e-8, 100),
				Mu: scaling.MuFor(f),
			}
		}
		res, err := solvers.MixedIRCheckpointed(ctx, a, b, fi, sc, solvers.IROptions{
			Tol:     req.Tol,
			MaxIter: req.MaxIter,
		}, ck.ir)
		if err != nil {
			return resp, &solveError{statusFromCtx(err), "solve canceled: " + err.Error()}
		}
		resp.Iterations = res.Iterations
		resp.Converged = res.Converged
		resp.Failed = res.FactorFailed
		resp.BackwardError = jsonFloat(res.BackwardError)
		resp.FactorError = jsonFloat(res.FactorError)
		resp.History = jsonFloats(res.History)
		if req.ReturnX {
			resp.X = jsonFloats(res.X)
		}
	}
	resp.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	resp.Ops = reqOps.Snapshot()
	return resp, nil
}

// loadSystem resolves the request's linear system: a named Table I
// replica (generated once per process and shared with the experiment
// paths) or an uploaded MatrixMarket matrix.
func (s *Server) loadSystem(req *solveRequest) (*linalg.Sparse, []float64, string, error) {
	switch {
	case req.Matrix != "" && req.MatrixMarket != "":
		return nil, nil, "", fmt.Errorf("set either matrix or matrix_market, not both")
	case req.Matrix != "":
		// Validate the name first: experiments.Suite panics on unknown
		// names (it serves the runner, which recovers panics).
		if _, err := matgen.TargetByName(req.Matrix); err != nil {
			return nil, nil, "", err
		}
		m := experiments.Suite([]string{req.Matrix})[0]
		b := req.B
		if b == nil {
			b = m.B
		} else if len(b) != m.A.N {
			return nil, nil, "", fmt.Errorf("b has %d entries, matrix is %d×%d", len(b), m.A.N, m.A.N)
		}
		return m.A, b, req.Matrix, nil
	case req.MatrixMarket != "":
		a, _, err := mmarket.Read(strings.NewReader(req.MatrixMarket))
		if err != nil {
			return nil, nil, "", fmt.Errorf("matrix_market: %v", err)
		}
		if a.N > s.cfg.MaxMatrixN {
			return nil, nil, "", fmt.Errorf("matrix dimension %d exceeds the %d limit", a.N, s.cfg.MaxMatrixN)
		}
		if !a.IsSymmetric(1e-12) {
			return nil, nil, "", fmt.Errorf("matrix_market: matrix is not symmetric; the solvers require SPD systems")
		}
		b := req.B
		if b == nil {
			// Default rhs: b = A·1, matching the suite's known-solution
			// convention.
			ones := make([]float64, a.N)
			for i := range ones {
				ones[i] = 1
			}
			b = make([]float64, a.N)
			a.MatVecF64(ones, b)
		} else if len(b) != a.N {
			return nil, nil, "", fmt.Errorf("b has %d entries, matrix is %d×%d", len(b), a.N, a.N)
		}
		return a, b, "uploaded", nil
	default:
		return nil, nil, "", fmt.Errorf("set matrix (a Table I name) or matrix_market (inline upload)")
	}
}
