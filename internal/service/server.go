// Package service is positd's HTTP serving layer over the experiment
// and solver stack: batch format conversion, on-demand solver runs,
// and cached experiment results behind a stdlib-only net/http server
// with admission control, per-request timeouts, structured access
// logs, panic recovery, and expvar metrics.
//
// The layering mirrors the offline pipeline: handlers call the same
// solvers/experiments entry points the CLI does, experiment requests
// go through runner.Executor (and therefore the on-disk result
// cache), and an in-memory LRU with per-key singleflight fronts both
// so identical concurrent requests are computed once and answered
// byte-identically.
package service

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"positlab/internal/jobs"
	"positlab/internal/runner"
)

// Defaults for Config zero values.
const (
	DefaultMaxInflight    = 64
	DefaultCacheEntries   = 256
	DefaultRequestTimeout = 120 * time.Second
	DefaultMaxBatch       = 65536
	DefaultMaxBodyBytes   = 8 << 20
	// DefaultMaxMatrixN bounds uploaded systems: the Cholesky path
	// densifies the matrix, so N is the resource knob that matters.
	DefaultMaxMatrixN = 2048
	// DefaultJobWorkers is the async job pool size; solver jobs are
	// CPU-bound, so a small pool avoids starving interactive requests.
	DefaultJobWorkers = 2
	// DefaultJobCheckpointEvery is the solver-iteration cadence at
	// which running jobs journal resumable state.
	DefaultJobCheckpointEvery = 50
	// DefaultMaxQueuedJobs bounds the job backlog; submissions beyond
	// it are refused with 429.
	DefaultMaxQueuedJobs = 1024
)

// Config tunes a Server. The zero value serves the Default runner
// registry with the documented defaults and no access log.
type Config struct {
	// Registry backing /v1/experiments; nil means runner.Default.
	Registry *runner.Registry
	// RunnerConfig is passed to the runner for experiment requests
	// (disk cache, options, instrumentation). Its Timeout field is
	// ignored: the per-request timeout governs.
	RunnerConfig runner.Config
	// MaxInflight bounds concurrently admitted /v1 requests; excess
	// requests are refused with 429 + Retry-After. <= 0 means 64.
	MaxInflight int
	// CacheEntries bounds the in-memory response LRU. <= 0 means 256.
	CacheEntries int
	// RequestTimeout bounds each /v1 request; the deadline context is
	// threaded into solver loops, so expiry cancels in-flight work
	// promptly. <= 0 means 120s.
	RequestTimeout time.Duration
	// MaxBatch bounds /v1/convert values per request. <= 0 means 65536.
	MaxBatch int
	// MaxBodyBytes bounds request bodies. <= 0 means 8 MiB.
	MaxBodyBytes int64
	// MaxMatrixN bounds the dimension of uploaded /v1/solve systems.
	// <= 0 means 2048.
	MaxMatrixN int
	// AccessLog, when non-nil, receives one JSON line per request.
	AccessLog io.Writer

	// Jobs is the durable job store backing /v1/jobs. nil means an
	// ephemeral in-memory store (jobs do not survive a restart); the
	// positd binary opens a journaled store when -jobs-dir is set.
	Jobs *jobs.Store
	// JobWorkers bounds concurrent async job execution. <= 0 means 2.
	JobWorkers int
	// JobRetryBackoff is the base delay before retrying a transiently
	// failed job (doubles per retry). <= 0 means the pool default.
	JobRetryBackoff time.Duration
	// JobCheckpointEvery is the default solver-iteration checkpoint
	// cadence for jobs that do not set their own. <= 0 means 50.
	JobCheckpointEvery int
	// MaxQueuedJobs bounds the queued-job backlog; submissions beyond
	// it get 429. <= 0 means 1024.
	MaxQueuedJobs int

	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ (positd's -pprof flag). Off by default: profiling
	// endpoints expose internals and can run for tens of seconds, so
	// they are opt-in like the other debug surfaces.
	EnablePprof bool
}

func (c Config) fill() Config {
	if c.Registry == nil {
		c.Registry = runner.Default
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxMatrixN <= 0 {
		c.MaxMatrixN = DefaultMaxMatrixN
	}
	if c.Jobs == nil {
		// Open with an empty dir never fails: the store is ephemeral.
		c.Jobs, _ = jobs.Open("", jobs.Config{})
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = DefaultJobWorkers
	}
	if c.JobCheckpointEvery <= 0 {
		c.JobCheckpointEvery = DefaultJobCheckpointEvery
	}
	if c.MaxQueuedJobs <= 0 {
		c.MaxQueuedJobs = DefaultMaxQueuedJobs
	}
	c.RunnerConfig.Timeout = 0 // the per-request deadline governs
	return c
}

// Server is one positd instance. Create with New; serve via Handler
// (tests) or Run (production, with graceful drain).
type Server struct {
	cfg     Config
	exec    *runner.Executor
	cache   *Cache
	metrics *Metrics
	sem     chan struct{}
	handler http.Handler
	jobPool *jobs.Pool
}

// New builds a Server from cfg and starts its job workers (recovered
// queued jobs from cfg.Jobs begin executing immediately).
func New(cfg Config) *Server {
	cfg = cfg.fill()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		metrics: NewMetrics(),
		sem:     make(chan struct{}, cfg.MaxInflight),
	}
	s.exec = &runner.Executor{Registry: cfg.Registry, Config: cfg.RunnerConfig}
	s.jobPool = jobs.NewPool(cfg.Jobs, &jobExecutor{s: s}, jobs.PoolConfig{
		Workers:      cfg.JobWorkers,
		RetryBackoff: cfg.JobRetryBackoff,
	})
	s.jobPool.Start()
	s.handler = s.buildHandler()
	publishExpvar(s)
	return s
}

// Cache exposes the response cache (tests assert on its stats).
func (s *Server) Cache() *Cache { return s.cache }

// Metrics exposes the serving metrics.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the fully-wrapped root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Jobs exposes the worker pool (tests and the drain path).
func (s *Server) Jobs() *jobs.Pool { return s.jobPool }

func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/convert", s.handleConvert)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	mux.HandleFunc("GET /v1/experiments/{name}", s.handleExperiment)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.cfg.EnablePprof {
		// Explicit registration on this mux (not the side-effect
		// DefaultServeMux registration) so the handlers exist only when
		// asked for. Debug routes bypass admission and the /v1 request
		// timeout, so a 30 s CPU profile is not cut short.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	var h http.Handler = mux
	h = s.timeoutMiddleware(h)
	h = s.admissionMiddleware(h)
	h = s.observeMiddleware(h)
	h = s.recoverMiddleware(h)
	return h
}

// Run serves on ln until ctx is canceled (typically by SIGTERM via
// signal.NotifyContext), then drains: no new connections are accepted
// and in-flight requests get up to drainTimeout to finish. A clean
// drain returns nil.
func (s *Server) Run(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx := context.Background()
	if drainTimeout > 0 {
		var cancel context.CancelFunc
		shutdownCtx, cancel = context.WithTimeout(shutdownCtx, drainTimeout)
		defer cancel()
	}
	//lint:allow ctxprop deliberate detach: ctx is already canceled here, a child of it would cut the drain short
	err := srv.Shutdown(shutdownCtx)
	<-errCh // Serve has returned http.ErrServerClosed
	// Drain the job pool last: in-flight jobs are canceled and
	// requeued with their checkpoints, so a restarted process resumes
	// them instead of redoing the work.
	jobDrain := drainTimeout
	if jobDrain <= 0 {
		jobDrain = 30 * time.Second
	}
	if !s.jobPool.Drain(jobDrain) && err == nil {
		err = fmt.Errorf("service: job pool did not drain within %v", jobDrain)
	}
	return err
}

// --- middleware ---

// statusRecorder captures the response status and size for logs and
// metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// recoverMiddleware converts a handler panic into a 500 so one bad
// request cannot take the process down. (Computation panics are
// already recovered closer to the work — runner.safeRun, Cache.Do —
// this is the last line of defense.)
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.logLine(map[string]any{
					"event": "panic",
					"path":  r.URL.Path,
					"panic": fmt.Sprint(p),
					"stack": string(debug.Stack()),
				})
				httpError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// observeMiddleware maintains the in-flight gauge, per-route latency
// metrics, and the structured access log.
func (s *Server) observeMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		s.metrics.Enter()
		defer func() {
			d := time.Since(start)
			s.metrics.Leave()
			route := routeOf(r)
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			s.metrics.Observe(route, status, d)
			s.logLine(map[string]any{
				"time":   start.UTC().Format(time.RFC3339Nano),
				"method": r.Method,
				"path":   r.URL.Path,
				"route":  route,
				"status": status,
				"ms":     float64(d) / float64(time.Millisecond),
				"bytes":  rec.bytes,
				"remote": r.RemoteAddr,
			})
		}()
		next.ServeHTTP(rec, r)
	})
}

// routeOf maps a request to its metrics key. Wildcard routes collapse
// to their pattern so /v1/experiments/{name} aggregates across names.
// (http.Request.Pattern would do this exactly, but it needs Go 1.23
// and the module pins 1.22.)
func routeOf(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/experiments/") {
		path = "/v1/experiments/{name}"
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		path = "/v1/jobs/{id}"
	}
	return r.Method + " " + path
}

// logLine writes one JSON access-log line. Logging is advisory: a
// full disk or closed pipe must not fail the request, so write errors
// are deliberately dropped.
func (s *Server) logLine(fields map[string]any) {
	if s.cfg.AccessLog == nil {
		return
	}
	b, err := json.Marshal(fields)
	if err != nil {
		return
	}
	_, _ = s.cfg.AccessLog.Write(append(b, '\n'))
}

// admissionMiddleware bounds concurrent /v1 work with a semaphore:
// when MaxInflight requests are already admitted, the request is
// refused immediately with 429 and Retry-After rather than queued,
// keeping latency bounded under overload (health and debug endpoints
// bypass admission so operators can always see in).
func (s *Server) admissionMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		// Job-control requests bypass the semaphore: the heavy work runs
		// on the bounded worker pool, not in the request, and a long-poll
		// GET holding an admission slot would starve the synchronous
		// endpoints. The queue itself is bounded (MaxQueuedJobs).
		if r.URL.Path == "/v1/jobs" || strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "server saturated; retry later")
		}
	})
}

// timeoutMiddleware installs the per-request deadline on /v1 routes.
// Handlers thread this context into solver loops, so expiry cancels
// in-flight numerical work promptly rather than abandoning it.
func (s *Server) timeoutMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusFromCtx maps a request-context failure to its HTTP status:
// deadline expiry is the server's timeout (504), cancellation means
// the client went away or the server is draining (503).
func statusFromCtx(err error) int {
	if err == context.DeadlineExceeded {
		return http.StatusGatewayTimeout
	}
	return http.StatusServiceUnavailable
}

// --- health and metrics handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	qi, qb := s.jobPool.Store().QueueDepths()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"experiments": len(s.cfg.Registry.IDs()),
		"jobs_queued": qi + qb,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// snapshotMetrics renders the serving metrics with the job subsystem
// section attached (shared by /debug/metrics and expvar).
func (s *Server) snapshotMetrics() MetricsSnapshot {
	snap := s.metrics.Snapshot(s.cache)
	js := s.jobPool.Metrics()
	snap.Jobs = &js
	return snap
}

// expvar's registry is process-global and panics on duplicate names,
// so only the first Server instance publishes there (tests construct
// many servers per process). /debug/metrics is per-server regardless.
var publishOnce sync.Once

func publishExpvar(s *Server) {
	publishOnce.Do(func() {
		expvar.Publish("positd", expvar.Func(func() any {
			return s.snapshotMetrics()
		}))
	})
}
