package service

import (
	"net/http"

	"positlab/internal/arith"
	"positlab/internal/shadow"
)

// diagnoseRequest is the POST /v1/diagnose body: the same system
// selection as /v1/solve plus shadow-measurement knobs.
type diagnoseRequest struct {
	// Matrix / MatrixMarket / B select the system exactly like
	// /v1/solve: a Table I suite name, or an inline upload.
	Matrix       string    `json:"matrix,omitempty"`
	MatrixMarket string    `json:"matrix_market,omitempty"`
	B            []float64 `json:"b,omitempty"`
	// Solver is "cg", "cholesky", or "ir"; Format the working
	// (cg, cholesky) or factorization (ir) format.
	Solver string `json:"solver"`
	Format string `json:"format"`
	// Tol / MaxIter / Rescale / Higham follow /v1/solve's semantics.
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`
	Rescale bool    `json:"rescale,omitempty"`
	Higham  bool    `json:"higham,omitempty"`
	// SampleEvery measures every SampleEvery-th format operation
	// (1 = full shadow; 0 = the default stride of 64). TopK bounds the
	// worst-operations list, TracePoints the divergence trace.
	SampleEvery int `json:"sample_every,omitempty"`
	TopK        int `json:"top_k,omitempty"`
	TracePoints int `json:"trace_points,omitempty"`
	// IncludeSVG / IncludeCSV attach the rendered error-decay figure
	// and CSV artifacts to the response.
	IncludeSVG bool `json:"include_svg,omitempty"`
	IncludeCSV bool `json:"include_csv,omitempty"`
}

// diagnoseResponse is the shadow report with optional rendered
// artifacts attached.
type diagnoseResponse struct {
	*shadow.Report
	SVG        string `json:"svg,omitempty"`
	TraceCSV   string `json:"trace_csv,omitempty"`
	ColumnsCSV string `json:"columns_csv,omitempty"`
	StatsCSV   string `json:"stats_csv,omitempty"`
}

// handleDiagnose implements POST /v1/diagnose: one shadow-diagnosed
// solver run. The format run inside is bit-identical to the /v1/solve
// run of the same request; the response additionally carries the
// divergence trace, per-op error telemetry, and envelope comparison.
// Runs under the same admission control and per-request timeout as
// /v1/solve; completed runs feed the shadow gauges in /debug/metrics.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	var req diagnoseRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	f, err := arith.ByName(req.Format)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	a, b, name, err := s.loadSystem(&solveRequest{
		Matrix: req.Matrix, MatrixMarket: req.MatrixMarket, B: req.B,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rep, err := shadow.Diagnose(r.Context(), a, b, name, shadow.Options{
		Solver:      req.Solver,
		Format:      f,
		Sample:      shadow.Config{SampleEvery: req.SampleEvery, TopK: req.TopK},
		Tol:         req.Tol,
		MaxIter:     req.MaxIter,
		Rescale:     req.Rescale,
		Higham:      req.Higham,
		TracePoints: req.TracePoints,
	})
	if err != nil {
		if cerr := r.Context().Err(); cerr != nil {
			httpError(w, statusFromCtx(cerr), "diagnose canceled: "+cerr.Error())
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.Shadow.Merge(&rep.Telemetry)
	resp := diagnoseResponse{Report: rep}
	if req.IncludeSVG {
		resp.SVG = rep.DecaySVG()
	}
	if req.IncludeCSV {
		resp.TraceCSV = rep.TraceCSV()
		resp.ColumnsCSV = rep.ColumnsCSV()
		resp.StatsCSV = rep.StatsCSV()
	}
	writeJSON(w, http.StatusOK, resp)
}
