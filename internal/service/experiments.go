package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"positlab/internal/runner"
)

// experimentResponse is the GET /v1/experiments/{name} body.
type experimentResponse struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Body is the rendered table/figure text, exactly as the CLI
	// prints it.
	Body string `json:"body"`
	// Metrics are the experiment-reported scalars; null entries are
	// non-finite measurements.
	Metrics map[string]jsonFloat `json:"metrics,omitempty"`
	// Artifacts (with ?artifacts=1) are the CSV/SVG outputs.
	Artifacts []runner.Artifact `json:"artifacts,omitempty"`
}

// handleExperiment implements GET /v1/experiments/{name}: execute the
// named registered spec through the runner (consulting the on-disk
// result cache) and serve its rendered rows. The in-memory LRU fronts
// the whole thing, so a warm experiment is served without touching the
// runner at all, and a thundering herd on a cold one computes once.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec, ok := s.cfg.Registry.Lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf(
			"unknown experiment %q (known: %s)", name, strings.Join(s.cfg.Registry.SortedIDs(), ", ")))
		return
	}
	withArtifacts := r.URL.Query().Get("artifacts") == "1"

	key := fmt.Sprintf("experiment|%s|artifacts=%v", name, withArtifacts)
	body, cached, err := s.cache.Do(r.Context(), key, func() ([]byte, error) {
		res, _, err := s.exec.Execute(r.Context(), name)
		if err != nil {
			return nil, err
		}
		resp := experimentResponse{ID: name, Title: spec.Title, Body: res.Body}
		if len(res.Metrics) > 0 {
			resp.Metrics = make(map[string]jsonFloat, len(res.Metrics))
			for k, v := range res.Metrics {
				resp.Metrics[k] = jsonFloat(v)
			}
		}
		if withArtifacts {
			resp.Artifacts = res.Artifacts
		}
		return json.Marshal(resp)
	})
	if err != nil {
		// Provenance on errors too: "hit" here means this request joined
		// an in-flight computation that failed rather than starting its
		// own, which matters when debugging a thundering herd on a
		// broken experiment.
		if cached {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		if ctxErr := r.Context().Err(); ctxErr != nil {
			httpError(w, statusFromCtx(ctxErr), "experiment canceled: "+ctxErr.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeCached(w, body, cached)
}
