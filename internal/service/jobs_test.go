package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"positlab/internal/jobs"
)

// laplacianMM renders the 1D Laplacian (2 on the diagonal, -1 off) as
// a MatrixMarket upload — a cheap SPD system whose CG solve runs long
// enough to checkpoint when max_iter is raised and tol lowered.
func laplacianMM(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%%%%MatrixMarket matrix coordinate real symmetric\n%d %d %d\n", n, n, 2*n-1)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, "%d %d 2\n", i, i)
	}
	for i := 2; i <= n; i++ {
		fmt.Fprintf(&sb, "%d %d -1\n", i, i-1)
	}
	return sb.String()
}

func del(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response, wantStatus int) jobView {
	t.Helper()
	body := readBody(t, resp)
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d: %s", resp.StatusCode, wantStatus, body)
	}
	var v jobView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("decode job view: %v (%s)", err, body)
	}
	return v
}

// pollJob GETs the job until pred is satisfied or the deadline hits.
func pollJob(t *testing.T, base, id string, pred func(jobView) bool) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := decodeJob(t, get(t, base+"/v1/jobs/"+id), 200)
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the wanted condition; last view %+v", id, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobSolveLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := mustJSON(t, map[string]any{
		"solve":    map[string]any{"matrix_market": laplacianMM(20), "solver": "cg", "format": "float64"},
		"priority": "interactive",
	})
	v := decodeJob(t, post(t, ts.URL+"/v1/jobs", body), http.StatusAccepted)
	if v.ID == "" || v.Kind != "solve" || v.State != "queued" || v.Priority != "interactive" {
		t.Fatalf("submit view = %+v", v)
	}

	// Long-poll to completion.
	done := decodeJob(t, get(t, ts.URL+"/v1/jobs/"+v.ID+"?wait=25s"), 200)
	if done.State != "succeeded" || done.FinishedAt == "" {
		t.Fatalf("job = %+v, want succeeded", done)
	}
	var out solveResponse
	if err := json.Unmarshal(done.Result, &out); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if !out.Converged || out.N != 20 || out.Solver != "cg" {
		t.Fatalf("result = %+v, want converged cg n=20", out)
	}

	// The result must match the synchronous endpoint's, field for
	// field, modulo timing and op counters.
	sync := post(t, ts.URL+"/v1/solve",
		mustJSON(t, map[string]any{"matrix_market": laplacianMM(20), "solver": "cg", "format": "float64"}))
	syncBody := readBody(t, sync)
	if sync.StatusCode != 200 {
		t.Fatalf("sync solve: %d %s", sync.StatusCode, syncBody)
	}
	if !reflect.DeepEqual(scrubTiming(t, done.Result), scrubTiming(t, []byte(syncBody))) {
		t.Fatalf("async result diverges from sync:\n%s\nvs\n%s", done.Result, syncBody)
	}
}

// scrubTiming decodes a solveResponse JSON to a map without the
// fields that legitimately differ between two runs.
func scrubTiming(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	delete(m, "wall_ms")
	delete(m, "ops")
	return m
}

func TestJobExperimentLifecycle(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	body := `{"experiment":{"name":"demo","artifacts":true}}`
	v := decodeJob(t, post(t, ts.URL+"/v1/jobs", body), http.StatusAccepted)
	done := pollJob(t, ts.URL, v.ID, func(v jobView) bool { return v.State == "succeeded" })
	var out experimentResponse
	if err := json.Unmarshal(done.Result, &out); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if out.ID != "demo" || out.Body != "demo body\n" || len(out.Artifacts) != 1 {
		t.Fatalf("result = %+v", out)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	cases := []struct {
		name, body string
	}{
		{"neither kind", `{}`},
		{"both kinds", `{"solve":{"matrix":"bcsstk01","solver":"cg","format":"float32"},"experiment":{"name":"demo"}}`},
		{"bad priority", `{"experiment":{"name":"demo"},"priority":"urgent"}`},
		{"negative retries", `{"experiment":{"name":"demo"},"max_retries":-1}`},
		{"unknown experiment", `{"experiment":{"name":"nope"}}`},
		{"bad solver", `{"solve":{"matrix":"bcsstk01","solver":"qr","format":"float32"}}`},
		{"bad format", `{"solve":{"matrix":"bcsstk01","solver":"cg","format":"float99"}}`},
		{"bad system", `{"solve":{"matrix":"nope","solver":"cg","format":"float32"}}`},
	}
	for _, c := range cases {
		resp := post(t, ts.URL+"/v1/jobs", c.body)
		body := readBody(t, resp)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status = %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
	}
	// Nothing invalid reached the journal.
	if n := len(decodeJobList(t, get(t, ts.URL+"/v1/jobs")).Jobs); n != 0 {
		t.Fatalf("%d jobs stored after rejected submissions", n)
	}
}

type jobListResponse struct {
	Jobs  []jobView `json:"jobs"`
	Count int       `json:"count"`
}

func decodeJobList(t *testing.T, resp *http.Response) jobListResponse {
	t.Helper()
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("list status = %d: %s", resp.StatusCode, body)
	}
	var out jobListResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	return out
}

func TestJobListFilters(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	var ids []string
	for i := 0; i < 3; i++ {
		v := decodeJob(t, post(t, ts.URL+"/v1/jobs", `{"experiment":{"name":"demo"}}`), http.StatusAccepted)
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		pollJob(t, ts.URL, id, func(v jobView) bool { return v.State == "succeeded" })
	}
	all := decodeJobList(t, get(t, ts.URL+"/v1/jobs"))
	if all.Count != 3 || all.Jobs[0].ID != ids[2] {
		t.Fatalf("list = %+v, want 3 newest-first", all)
	}
	if l := decodeJobList(t, get(t, ts.URL+"/v1/jobs?limit=1")); l.Count != 1 {
		t.Fatalf("limit ignored: %+v", l)
	}
	if l := decodeJobList(t, get(t, ts.URL+"/v1/jobs?state=queued")); l.Count != 0 {
		t.Fatalf("state filter: %+v", l)
	}
	if l := decodeJobList(t, get(t, ts.URL+"/v1/jobs?kind=experiment&state=succeeded")); l.Count != 3 {
		t.Fatalf("kind+state filter: %+v", l)
	}
	if resp := get(t, ts.URL+"/v1/jobs?limit=x"); resp.StatusCode != 400 {
		t.Fatalf("bad limit status = %d", resp.StatusCode)
	} else {
		_ = readBody(t, resp)
	}
}

func TestJobCancelRunning(t *testing.T) {
	reg, started, release := testRegistry(t)
	defer close(release)
	_, ts := newTestServer(t, Config{Registry: reg})
	v := decodeJob(t, post(t, ts.URL+"/v1/jobs", `{"experiment":{"name":"block"}}`), http.StatusAccepted)
	<-started // the job's runner is now blocked inside the experiment
	got := decodeJob(t, del(t, ts.URL+"/v1/jobs/"+v.ID), 200)
	if got.ID != v.ID {
		t.Fatalf("cancel view = %+v", got)
	}
	final := pollJob(t, ts.URL, v.ID, func(v jobView) bool { return v.State != "queued" && v.State != "running" })
	if final.State != "canceled" {
		t.Fatalf("job = %+v, want canceled", final)
	}
	// Canceling again conflicts.
	resp := del(t, ts.URL+"/v1/jobs/"+v.ID)
	if body := readBody(t, resp); resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel = %d (%s), want 409", resp.StatusCode, body)
	}
	// Unknown job is 404 for GET and DELETE alike.
	for _, resp := range []*http.Response{get(t, ts.URL+"/v1/jobs/zzz"), del(t, ts.URL+"/v1/jobs/zzz")} {
		if body := readBody(t, resp); resp.StatusCode != 404 {
			t.Fatalf("unknown job = %d (%s), want 404", resp.StatusCode, body)
		}
	}
}

func TestJobQueueFull429(t *testing.T) {
	reg, started, release := testRegistry(t)
	defer close(release)
	_, ts := newTestServer(t, Config{Registry: reg, JobWorkers: 1, MaxQueuedJobs: 1})
	// First job occupies the single worker...
	decodeJob(t, post(t, ts.URL+"/v1/jobs", `{"experiment":{"name":"block"}}`), http.StatusAccepted)
	<-started
	// ...second fills the queue...
	decodeJob(t, post(t, ts.URL+"/v1/jobs", `{"experiment":{"name":"block"}}`), http.StatusAccepted)
	// ...third is refused.
	resp := post(t, ts.URL+"/v1/jobs", `{"experiment":{"name":"block"}}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestJobDrainResumeBitIdentical is the graceful half of the recovery
// contract: a checkpointing CG job is interrupted by a pool drain,
// the store is reopened by a second server, and the resumed job's
// result must be byte-identical (solution, history, iteration count)
// to an uninterrupted synchronous run.
func TestJobDrainResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	store1, err := jobs.Open(dir, jobs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Jobs: store1, JobWorkers: 1})

	// posit32es2 software arithmetic + a tolerance CG cannot reach keeps
	// the job running long enough to catch it mid-flight.
	spec := map[string]any{
		"matrix_market": laplacianMM(120), "solver": "cg", "format": "posit32es2",
		"tol": 1e-300, "max_iter": 3000, "return_x": true,
	}
	v := decodeJob(t, post(t, ts1.URL+"/v1/jobs", mustJSON(t, map[string]any{
		"solve": spec, "checkpoint_every": 10,
	})), http.StatusAccepted)

	// Wait for at least one durable checkpoint, then drain mid-run.
	pollJob(t, ts1.URL, v.ID, func(v jobView) bool { return v.CheckpointIter >= 10 })
	if !s1.Jobs().Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	g, _ := store1.Get(v.ID)
	if g.State != jobs.StateQueued || g.Recoveries != 1 || g.CheckpointIter < 10 {
		t.Fatalf("drained job = state=%s recoveries=%d ckpt=%d, want queued with checkpoint", g.State, g.Recoveries, g.CheckpointIter)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := jobs.Open(dir, jobs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := store2.ReplayStats(); st.Resumed != 0 || st.Restarted != 0 {
		// A drained job was requeued gracefully, not crash-recovered.
		t.Fatalf("replay stats = %+v, want no crash recoveries", st)
	}
	_, ts2 := newTestServer(t, Config{Jobs: store2, JobWorkers: 1})
	done := pollJob(t, ts2.URL, v.ID, func(v jobView) bool { return v.State == "succeeded" })
	if done.Recoveries != 1 {
		t.Fatalf("resumed job = %+v, want 1 recovery", done)
	}

	sync := post(t, ts2.URL+"/v1/solve", mustJSON(t, spec))
	syncBody := readBody(t, sync)
	if sync.StatusCode != 200 {
		t.Fatalf("sync solve: %d %s", sync.StatusCode, syncBody)
	}
	if !reflect.DeepEqual(scrubTiming(t, done.Result), scrubTiming(t, []byte(syncBody))) {
		t.Fatal("resumed result diverges from uninterrupted run")
	}
}

func TestJobMetricsSection(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	v := decodeJob(t, post(t, ts.URL+"/v1/jobs", `{"experiment":{"name":"demo"}}`), http.StatusAccepted)
	pollJob(t, ts.URL, v.ID, func(v jobView) bool { return v.State == "succeeded" })

	resp := get(t, ts.URL+"/debug/metrics")
	body := readBody(t, resp)
	var snap struct {
		Jobs *jobs.MetricsSnapshot `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if snap.Jobs == nil || snap.Jobs.Submitted != 1 || snap.Jobs.Completed != 1 {
		t.Fatalf("jobs metrics = %+v, want 1 submitted + completed", snap.Jobs)
	}
}

func TestExperimentErrorCarriesCacheProvenance(t *testing.T) {
	reg, _, _ := testRegistry(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	resp := get(t, ts.URL+"/v1/experiments/boom")
	body := readBody(t, resp)
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d (%s), want 500", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("X-Cache = %q on error response, want miss", xc)
	}
}
