package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"positlab/internal/arith"
)

// convertRequest is the POST /v1/convert body.
type convertRequest struct {
	// From and To are registered format names (arith.ByName spelling,
	// e.g. "float64", "posit32es2", "posit(16,1)").
	From string `json:"from"`
	To   string `json:"to"`
	// Values are the inputs, read as float64 (exact for every source
	// format) and first rounded into From.
	Values []float64 `json:"values"`
}

// convertResult is one value's conversion outcome.
type convertResult struct {
	// In is the request value as represented in From (the rounding
	// baseline: conversion error is measured against this, not the
	// raw JSON number).
	In jsonFloat `json:"in"`
	// Out is the value after re-rounding into To.
	Out jsonFloat `json:"out"`
	// Bits is To's bit pattern, hex.
	Bits string `json:"bits"`
	// AbsErr and RelErr measure Out against In; null when non-finite.
	AbsErr jsonFloat `json:"abs_err"`
	RelErr jsonFloat `json:"rel_err"`
	// Exact reports a lossless round trip: converting Out back into
	// From reproduces In's bit pattern.
	Exact bool `json:"exact"`
}

// convertStats aggregates a batch.
type convertStats struct {
	MaxAbsErr  jsonFloat `json:"max_abs_err"`
	MaxRelErr  jsonFloat `json:"max_rel_err"`
	MeanRelErr jsonFloat `json:"mean_rel_err"`
	// Exact counts losslessly round-tripped values.
	Exact int `json:"exact"`
}

// convertResponse is the POST /v1/convert body on success.
type convertResponse struct {
	From    string          `json:"from"`
	To      string          `json:"to"`
	Count   int             `json:"count"`
	Results []convertResult `json:"results"`
	Stats   convertStats    `json:"stats"`
}

// handleConvert implements POST /v1/convert: batch scalar conversion
// between two registered formats with per-value round-trip error
// analysis. Responses are rendered once and cached (LRU +
// singleflight), so identical concurrent batches are computed once
// and answered byte-identically.
func (s *Server) handleConvert(w http.ResponseWriter, r *http.Request) {
	var req convertRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Values) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d values exceeds the %d limit", len(req.Values), s.cfg.MaxBatch))
		return
	}
	from, err := arith.ByName(req.From)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	to, err := arith.ByName(req.To)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	body, cached, err := s.cache.Do(r.Context(), convertKey(from, to, req.Values), func() ([]byte, error) {
		return json.Marshal(s.convert(from, to, req.Values))
	})
	if err != nil {
		if ctxErr := r.Context().Err(); ctxErr != nil {
			httpError(w, statusFromCtx(ctxErr), ctxErr.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeCached(w, body, cached)
}

// convert performs the batch. Conversions are instrumented into the
// server-wide op counters.
func (s *Server) convert(from, to arith.Format, values []float64) convertResponse {
	fi := arith.InstrumentAtomic(from, s.metrics.Ops)
	ti := arith.InstrumentAtomic(to, s.metrics.Ops)
	resp := convertResponse{
		From:    from.Name(),
		To:      to.Name(),
		Count:   len(values),
		Results: make([]convertResult, 0, len(values)),
	}
	var maxAbs, maxRel, sumRel float64
	finiteRel := 0
	for _, v := range values {
		fn := fi.FromFloat64(v)
		in := from.ToFloat64(fn)
		tn := ti.FromFloat64(in)
		out := to.ToFloat64(tn)
		abs := math.Abs(out - in)
		rel := abs / math.Abs(in)
		if in == 0 && out == 0 {
			abs, rel = 0, 0
		}
		exact := from.FromFloat64(out) == fn
		bits, width := encodingBits(to, out)
		res := convertResult{
			In:     jsonFloat(in),
			Out:    jsonFloat(out),
			Bits:   fmt.Sprintf("0x%0*x", (width+3)/4, bits),
			AbsErr: jsonFloat(abs),
			RelErr: jsonFloat(rel),
			Exact:  exact,
		}
		resp.Results = append(resp.Results, res)
		if exact {
			resp.Stats.Exact++
		}
		if !math.IsNaN(abs) && !math.IsInf(abs, 0) && abs > maxAbs {
			maxAbs = abs
		}
		if !math.IsNaN(rel) && !math.IsInf(rel, 0) {
			if rel > maxRel {
				maxRel = rel
			}
			sumRel += rel
			finiteRel++
		}
	}
	resp.Stats.MaxAbsErr = jsonFloat(maxAbs)
	resp.Stats.MaxRelErr = jsonFloat(maxRel)
	if finiteRel > 0 {
		resp.Stats.MeanRelErr = jsonFloat(sumRel / float64(finiteRel))
	}
	return resp
}

// encodingBits returns x's canonical bit pattern in f's own encoding
// and the encoding width in bits. The fast value-domain formats store
// a float64 image in Num — not the format's pattern — so the encoding
// is recovered through the underlying posit/minifloat configuration;
// the native IEEE formats re-encode at their own width. x must
// already be representable in f (here it always is: x is the rounded
// Out), so this re-encoding is exact.
func encodingBits(f arith.Format, x float64) (uint64, int) {
	if t, ok := arith.TablesOf(f); ok {
		// Table-backed <=16-bit format: O(1) canonical encode through
		// the shared lookup-table engine.
		return uint64(t.Encode(x)), t.Width()
	}
	if c, ok := arith.PositConfig(f); ok {
		return uint64(c.FromFloat64(x)), c.N()
	}
	if m, ok := arith.MiniConfig(f); ok {
		return uint64(m.FromFloat64(x)), m.Width()
	}
	if f.Name() == "Float32" {
		return uint64(math.Float32bits(float32(x))), 32
	}
	return math.Float64bits(x), 64
}

// convertKey is the response-cache key: format names plus the exact
// bit patterns of the inputs (float64 semantics, not decimal
// spellings, so 1.0 and 1e0 share an entry and -0.0 does not alias
// 0.0).
func convertKey(from, to arith.Format, values []float64) string {
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "convert|%s|%s|", from.Name(), to.Name()) // hash.Hash writes cannot fail
	var buf [8]byte
	for _, v := range values {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:]) // hash.Hash writes cannot fail
	}
	return hex.EncodeToString(h.Sum(nil))
}

// decodeBody reads and decodes a JSON request body with the size
// limit applied, writing the 4xx response itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return false
	}
	return true
}

// writeCached writes a cache-managed response body with its
// provenance in the X-Cache header (the body itself must stay
// byte-identical between hit and miss).
func writeCached(w http.ResponseWriter, body []byte, cached bool) {
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	writeBody(w, body)
}
