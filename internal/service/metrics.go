package service

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"positlab/internal/arith"
	"positlab/internal/jobs"
	"positlab/internal/shadow"
)

// latWindow is the per-route latency reservoir size: quantiles are
// computed over the most recent latWindow observations.
const latWindow = 512

// Metrics aggregates serving-side observability: an in-flight gauge,
// per-route request counts, status tallies and latency quantiles over
// a sliding window, plus the shared kernel operation counters (every
// solver request routes its arithmetic through arith.InstrumentAtomic
// against Ops). Snapshot renders it all; the server additionally
// publishes the snapshot through expvar.
type Metrics struct {
	// Ops counts every format operation performed on behalf of
	// requests (atomic; written from handler goroutines directly).
	Ops *arith.AtomicOpCounts
	// Shadow aggregates the per-op error gauges of completed
	// /v1/diagnose runs (atomic, like Ops).
	Shadow *shadow.Gauges

	mu       sync.Mutex
	start    time.Time
	inFlight int
	routes   map[string]*routeStats
}

// routeStats is one route's mutable aggregate, guarded by Metrics.mu.
type routeStats struct {
	count    uint64
	statuses map[string]uint64
	lat      [latWindow]float64
	latN     int
}

// NewMetrics returns an empty metrics aggregate.
func NewMetrics() *Metrics {
	return &Metrics{
		Ops:    &arith.AtomicOpCounts{},
		Shadow: &shadow.Gauges{},
		start:  time.Now(),
		routes: map[string]*routeStats{},
	}
}

// Enter increments the in-flight gauge.
func (m *Metrics) Enter() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

// Leave decrements the in-flight gauge.
func (m *Metrics) Leave() {
	m.mu.Lock()
	m.inFlight--
	m.mu.Unlock()
}

// Observe records one finished request against its route pattern.
func (m *Metrics) Observe(route string, status int, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{statuses: map[string]uint64{}}
		m.routes[route] = rs
	}
	rs.count++
	rs.statuses[strconv.Itoa(status)]++
	rs.lat[rs.latN%latWindow] = ms
	rs.latN++
}

// RouteSnapshot is one route's rendered aggregate.
type RouteSnapshot struct {
	Count    uint64            `json:"count"`
	Statuses map[string]uint64 `json:"statuses"`
	P50MS    jsonFloat         `json:"p50_ms"`
	P99MS    jsonFloat         `json:"p99_ms"`
}

// MetricsSnapshot is the /debug/metrics response body.
type MetricsSnapshot struct {
	UptimeSec float64                  `json:"uptime_sec"`
	InFlight  int                      `json:"in_flight"`
	Routes    map[string]RouteSnapshot `json:"routes"`
	Cache     CacheSnapshot            `json:"cache"`
	Ops       arith.OpCounts           `json:"ops"`
	OpsTotal  uint64                   `json:"ops_total"`
	// Shadow is the /v1/diagnose error-gauge section: runs completed,
	// operations shadowed/measured, and the worst relative error seen.
	Shadow shadow.GaugesSnapshot `json:"shadow"`
	// Jobs is the async job subsystem section (queue depths, lifecycle
	// counters, wait/run latency quantiles, journal/replay health);
	// attached by the server, absent from bare Metrics snapshots.
	Jobs *jobs.MetricsSnapshot `json:"jobs,omitempty"`
}

// CacheSnapshot is the cache section of the metrics snapshot.
type CacheSnapshot struct {
	CacheStats
	HitRatio float64 `json:"hit_ratio"`
}

// Snapshot renders the aggregate. cache may be nil (no cache section
// counters beyond zeros).
func (m *Metrics) Snapshot(cache *Cache) MetricsSnapshot {
	snap := MetricsSnapshot{
		Routes: map[string]RouteSnapshot{},
	}
	if cache != nil {
		st := cache.Stats()
		snap.Cache = CacheSnapshot{CacheStats: st, HitRatio: st.HitRatio()}
	}
	snap.Ops = m.Ops.Snapshot()
	snap.OpsTotal = snap.Ops.Total()
	snap.Shadow = m.Shadow.Snapshot()

	m.mu.Lock()
	defer m.mu.Unlock()
	snap.UptimeSec = time.Since(m.start).Seconds()
	snap.InFlight = m.inFlight
	// Iterate routes in sorted key order: quantile computation is a
	// call, and map iteration order is randomized.
	keys := make([]string, 0, len(m.routes))
	for k := range m.routes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rs := m.routes[k]
		p50, p99 := rs.quantiles()
		statuses := make(map[string]uint64, len(rs.statuses))
		for code, n := range rs.statuses {
			statuses[code] = n
		}
		snap.Routes[k] = RouteSnapshot{
			Count:    rs.count,
			Statuses: statuses,
			P50MS:    jsonFloat(p50),
			P99MS:    jsonFloat(p99),
		}
	}
	return snap
}

// quantiles computes p50/p99 over the retained window (NaN before any
// observation — rendered null).
func (rs *routeStats) quantiles() (p50, p99 float64) {
	n := rs.latN
	if n > latWindow {
		n = latWindow
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	s := make([]float64, n)
	copy(s, rs.lat[:n])
	sort.Float64s(s)
	idx := func(q float64) float64 {
		i := int(q * float64(n-1))
		return s[i]
	}
	return idx(0.50), idx(0.99)
}
